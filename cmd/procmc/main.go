// Command procmc reproduces the section 8 process-variation analysis by
// Monte Carlo: it samples dies from young, mature, and second-tier
// fabrication lines, prints the speed distribution each line ships
// (worst-case rating, typical, fast bin), the speed-bin table a custom
// vendor would sell from, and the paper's headline comparisons.
//
// Usage:
//
//	procmc [-dies N] [-seed N] [-json]
//
// With -json the measured statistics are emitted in the gapd job-result
// envelope under kind "procvar" (a CLI-only kind: the numbers land in
// the result's tables map; the service itself does not run this kind).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/jobs"
	"repro/internal/procvar"
)

func main() {
	dies := flag.Int("dies", 20000, "dies per line to sample")
	seed := flag.Int64("seed", 42, "Monte Carlo seed")
	asJSON := flag.Bool("json", false, "emit the statistics as a gapd job result")
	flag.Parse()

	lines := []struct {
		name string
		slug string
		c    procvar.Components
	}{
		{"new process (ramp)", "new_process", procvar.NewProcess()},
		{"mature process", "mature_process", procvar.MatureProcess()},
		{"second-tier fab", "second_tier_fab", procvar.SecondTierFab()},
	}
	samples := make(map[string][]float64, len(lines))
	for i, l := range lines {
		samples[l.name] = l.c.Sample(*dies, *seed+int64(i))
	}

	if *asJSON {
		emitJSON(lines, samples, *dies, *seed)
		return
	}

	fmt.Printf("%-20s %7s %8s %8s %8s %8s %8s\n",
		"line", "rated", "median", "fast", "typ+%", "fast+%", "spread%")
	for _, l := range lines {
		r := procvar.Analyze(samples[l.name])
		fmt.Printf("%-20s %7.2f %8.2f %8.2f %7.0f%% %7.0f%% %7.0f%%\n",
			l.name, r.Rated, r.Median, r.Fast, 100*r.TypGain, 100*r.FastGain, 100*r.Spread)
	}

	fmt.Println("\nspeed-bin table, new process (custom vendor practice):")
	floors := []float64{0.80, 0.90, 1.00, 1.10}
	bins := procvar.SpeedBin(samples["new process (ramp)"], floors)
	for i, b := range bins {
		label := "discard"
		if i > 0 {
			label = fmt.Sprintf(">= %.2f", b.MinSpeed)
		}
		fmt.Printf("  bin %-8s %6d dies (%5.1f%%)\n", label, b.Count, 100*b.Frac)
	}

	newLine := samples["new process (ramp)"]
	mature := samples["mature process"]
	second := samples["second-tier fab"]
	fmt.Println("\npaper claims vs measured:")
	fmt.Printf("  typical over worst-case quote: measured +%.0f%% (paper: 60-70%%)\n",
		100*procvar.Analyze(newLine).TypGain)
	fmt.Printf("  fastest over typical (young):  measured +%.0f%% (paper: 20-40%%)\n",
		100*procvar.Analyze(newLine).FastGain)
	fmt.Printf("  new-process bin spread:        measured %.0f%% (paper: 30-40%%)\n",
		100*procvar.Analyze(newLine).Spread)
	fmt.Printf("  fab-to-fab median gap:         measured +%.0f%% (paper: 20-25%%)\n",
		100*procvar.FabToFabGap(mature, second))
	fmt.Printf("  tested-speed shipping gain:    measured +%.0f%% (paper: 30-40%%+)\n",
		100*procvar.TestedSpeedGain(second))
	fmt.Printf("  custom best vs ASIC rating:    measured +%.0f%% (paper: ~90%%)\n",
		100*procvar.CustomAdvantage(mature, second))
}

// emitJSON flattens the Monte Carlo statistics into the gapd job-result
// envelope under the CLI-only "procvar" kind.
func emitJSON(lines []struct {
	name string
	slug string
	c    procvar.Components
}, samples map[string][]float64, dies int, seed int64) {
	tables := map[string]float64{
		"dies_per_line": float64(dies),
	}
	for _, l := range lines {
		r := procvar.Analyze(samples[l.name])
		tables[l.slug+".rated"] = r.Rated
		tables[l.slug+".median"] = r.Median
		tables[l.slug+".fast"] = r.Fast
		tables[l.slug+".typ_gain"] = r.TypGain
		tables[l.slug+".fast_gain"] = r.FastGain
		tables[l.slug+".spread"] = r.Spread
	}
	newLine := samples["new process (ramp)"]
	mature := samples["mature process"]
	second := samples["second-tier fab"]
	tables["claims.typ_over_worst"] = procvar.Analyze(newLine).TypGain
	tables["claims.fast_over_typ_young"] = procvar.Analyze(newLine).FastGain
	tables["claims.new_process_spread"] = procvar.Analyze(newLine).Spread
	tables["claims.fab_to_fab_gap"] = procvar.FabToFabGap(mature, second)
	tables["claims.tested_speed_gain"] = procvar.TestedSpeedGain(second)
	tables["claims.custom_advantage"] = procvar.CustomAdvantage(mature, second)
	for i, b := range procvar.SpeedBin(newLine, []float64{0.80, 0.90, 1.00, 1.10}) {
		key := "bin.discard"
		if i > 0 {
			key = fmt.Sprintf("bin.ge_%.2f", b.MinSpeed)
		}
		tables[key+".frac"] = b.Frac
	}

	res := jobs.Result{
		Kind:     jobs.KindProcvar,
		Spec:     jobs.Spec{Kind: jobs.KindProcvar, Seed: seed},
		Tables:   tables,
		Attempts: 1,
		// procvar runs in-process (no pool), so its service counters are
		// structurally present but zero — consumers get a stable envelope.
		Service: &jobs.ServiceCounters{},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fmt.Fprintln(os.Stderr, "procmc:", err)
		os.Exit(1)
	}
}
