// Command procmc reproduces the section 8 process-variation analysis by
// Monte Carlo: it samples dies from young, mature, and second-tier
// fabrication lines, prints the speed distribution each line ships
// (worst-case rating, typical, fast bin), the speed-bin table a custom
// vendor would sell from, and the paper's headline comparisons.
//
// Usage:
//
//	procmc [-dies N] [-seed N]
package main

import (
	"flag"
	"fmt"

	"repro/internal/procvar"
)

func main() {
	dies := flag.Int("dies", 20000, "dies per line to sample")
	seed := flag.Int64("seed", 42, "Monte Carlo seed")
	flag.Parse()

	lines := []struct {
		name string
		c    procvar.Components
	}{
		{"new process (ramp)", procvar.NewProcess()},
		{"mature process", procvar.MatureProcess()},
		{"second-tier fab", procvar.SecondTierFab()},
	}
	samples := make(map[string][]float64, len(lines))

	fmt.Printf("%-20s %7s %8s %8s %8s %8s %8s\n",
		"line", "rated", "median", "fast", "typ+%", "fast+%", "spread%")
	for i, l := range lines {
		s := l.c.Sample(*dies, *seed+int64(i))
		samples[l.name] = s
		r := procvar.Analyze(s)
		fmt.Printf("%-20s %7.2f %8.2f %8.2f %7.0f%% %7.0f%% %7.0f%%\n",
			l.name, r.Rated, r.Median, r.Fast, 100*r.TypGain, 100*r.FastGain, 100*r.Spread)
	}

	fmt.Println("\nspeed-bin table, new process (custom vendor practice):")
	floors := []float64{0.80, 0.90, 1.00, 1.10}
	bins := procvar.SpeedBin(samples["new process (ramp)"], floors)
	for i, b := range bins {
		label := "discard"
		if i > 0 {
			label = fmt.Sprintf(">= %.2f", b.MinSpeed)
		}
		fmt.Printf("  bin %-8s %6d dies (%5.1f%%)\n", label, b.Count, 100*b.Frac)
	}

	newLine := samples["new process (ramp)"]
	mature := samples["mature process"]
	second := samples["second-tier fab"]
	fmt.Println("\npaper claims vs measured:")
	fmt.Printf("  typical over worst-case quote: measured +%.0f%% (paper: 60-70%%)\n",
		100*procvar.Analyze(newLine).TypGain)
	fmt.Printf("  fastest over typical (young):  measured +%.0f%% (paper: 20-40%%)\n",
		100*procvar.Analyze(newLine).FastGain)
	fmt.Printf("  new-process bin spread:        measured %.0f%% (paper: 30-40%%)\n",
		100*procvar.Analyze(newLine).Spread)
	fmt.Printf("  fab-to-fab median gap:         measured +%.0f%% (paper: 20-25%%)\n",
		100*procvar.FabToFabGap(mature, second))
	fmt.Printf("  tested-speed shipping gain:    measured +%.0f%% (paper: 30-40%%+)\n",
		100*procvar.TestedSpeedGain(second))
	fmt.Printf("  custom best vs ASIC rating:    measured +%.0f%% (paper: ~90%%)\n",
		100*procvar.CustomAdvantage(mature, second))
}
