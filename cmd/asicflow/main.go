// Command asicflow runs one circuit through the complete ASIC (or custom)
// implementation flow step by step — generate, map, size, buffer,
// pipeline, floorplan, resize, domino, analyze — printing what each stage
// did to the critical path. It is the toolkit's "look inside Evaluate"
// debugging and teaching tool.
//
// Usage:
//
//	asicflow [-circuit cla32|rca32|ks32|mult8|shifter32|alu32|datapath]
//	         [-lib rich|poor|custom] [-stages N] [-die mm] [-seed N] [-json]
//
// With -json the flags are mapped onto an evaluate job spec and the
// result is emitted as the same envelope the gapd service returns from
// POST /v1/evaluate (the step-by-step trace is suppressed).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/dynlogic"
	"repro/internal/jobs"
	"repro/internal/netlist"
	"repro/internal/pipeline"
	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/units"
	"repro/internal/wire"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "asicflow:", err)
	os.Exit(1)
}

func buildCircuit(name string, lib *cell.Library) (*netlist.Netlist, error) {
	switch name {
	case "cla32":
		a, err := circuits.CarryLookahead(lib, 32)
		if err != nil {
			return nil, err
		}
		return a.N, nil
	case "rca32":
		a, err := circuits.RippleCarry(lib, 32)
		if err != nil {
			return nil, err
		}
		return a.N, nil
	case "ks32":
		a, err := circuits.KoggeStone(lib, 32)
		if err != nil {
			return nil, err
		}
		return a.N, nil
	case "mult8":
		m, err := circuits.ArrayMultiplier(lib, 8)
		if err != nil {
			return nil, err
		}
		return m.N, nil
	case "shifter32":
		s, err := circuits.BarrelShifter(lib, 32)
		if err != nil {
			return nil, err
		}
		return s.N, nil
	case "alu32":
		a, err := circuits.NewALU(lib, 32)
		if err != nil {
			return nil, err
		}
		return a.N, nil
	case "datapath":
		return circuits.DatapathComb(lib, 16, 4)
	}
	return nil, fmt.Errorf("unknown circuit %q", name)
}

// jsonSpecs maps asicflow's flag vocabulary onto the jobs package's.
var (
	jsonCircuits = map[string]jobs.DesignSpec{
		"cla32":     {Name: "cla", Width: 32},
		"rca32":     {Name: "rca", Width: 32},
		"ks32":      {Name: "ks", Width: 32},
		"mult8":     {Name: "mult", Width: 8},
		"shifter32": {Name: "shifter", Width: 32},
		"alu32":     {Name: "alu", Width: 32},
		"datapath":  {Name: "datapath", Width: 16, Depth: 4},
	}
	jsonBases = map[string]string{
		"poor":   "typical-asic",
		"rich":   "best-practice-asic",
		"custom": "full-custom",
	}
)

// emitJSON runs the flag-equivalent evaluate job and prints the gapd
// result envelope.
func emitJSON(circuit, libName string, stages int, dieMM float64, seed int64) {
	design, ok := jsonCircuits[circuit]
	if !ok {
		fail(fmt.Errorf("unknown circuit %q", circuit))
	}
	base, ok := jsonBases[libName]
	if !ok {
		fail(fmt.Errorf("unknown library %q", libName))
	}
	res, err := jobs.RunService(context.Background(), jobs.Spec{
		Kind:        jobs.KindEvaluate,
		Design:      design,
		Methodology: jobs.MethSpec{Base: base, Stages: stages, DieSideMM: dieMM},
		Seed:        seed,
	}, 1)
	if err != nil {
		fail(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fail(err)
	}
}

func report(tag string, n *netlist.Netlist) {
	r, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		fail(err)
	}
	fmt.Printf("%-28s %6d gates %5d regs  depth %3d  worst %7.1f FO4\n",
		tag, n.NumGates(), n.NumRegs(), r.Depth(), r.CombFO4())
}

func main() {
	circuit := flag.String("circuit", "datapath", "circuit to implement")
	libName := flag.String("lib", "rich", "cell library: rich, poor, custom")
	stages := flag.Int("stages", 4, "pipeline stages")
	dieMM := flag.Float64("die", 0, "die side in mm (0 = auto)")
	seed := flag.Int64("seed", 1, "placement seed")
	dump := flag.String("dump", "", "write the final pipelined netlist as Verilog to this file")
	asJSON := flag.Bool("json", false, "emit the equivalent evaluate job result as JSON")
	flag.Parse()

	if *asJSON {
		emitJSON(*circuit, *libName, *stages, *dieMM, *seed)
		return
	}

	var lib *cell.Library
	switch *libName {
	case "rich":
		lib = cell.RichASIC()
	case "poor":
		lib = cell.PoorASIC()
	case "custom":
		lib = cell.Custom()
	default:
		fail(fmt.Errorf("unknown library %q", *libName))
	}
	fmt.Printf("library: %v\n\n", lib)

	raw, err := buildCircuit(*circuit, lib)
	if err != nil {
		fail(err)
	}
	report("generated", raw)

	raw, err = synth.Sweep(raw)
	if err != nil {
		fail(err)
	}
	report("swept (const-fold + DCE)", raw)

	mapped, err := synth.Map(raw, lib, synth.MapOptions{Objective: synth.MinDelay})
	if err != nil {
		fail(err)
	}
	report("tech-mapped", mapped)
	fmt.Printf("  cover: %s\n", synth.CoverStats(mapped))

	proc := units.ASIC025
	if lib.Continuous {
		proc = units.Custom025
	}
	wm := wire.NewModel(proc)
	wl := &wire.LoadModel{M: wm, BlockAreaMM2: 1}
	if err := synth.SelectDrives(mapped, lib, wl); err != nil {
		fail(err)
	}
	report("drive-selected (wire-load)", mapped)

	nbuf, err := synth.InsertBuffers(mapped, lib)
	if err != nil {
		fail(err)
	}
	if err := synth.SelectDrives(mapped, lib, nil); err != nil {
		fail(err)
	}
	report(fmt.Sprintf("buffered (+%d bufs)", nbuf), mapped)

	side := *dieMM
	if side <= 0 {
		side = 2
	}
	// Multi-block designs get block-level floorplanning; flat circuits
	// get detailed gate placement with measured per-net lengths.
	if len(place.BlockAreasMM2(mapped)) > 1 {
		pl := place.Floorplan(mapped, place.Die{SideMM: side}, place.Careful, *seed)
		pl.Annotate(mapped, place.AnnotateOptions{WireModel: wm, Repeaters: true, LocalMM: 0.05})
		if err := synth.SelectDrives(mapped, lib, nil); err != nil {
			fail(err)
		}
		report(fmt.Sprintf("floorplanned (%.1f mm HPWL)", pl.TotalHPWL(mapped)), mapped)
	} else {
		gp, err := place.PlaceGates(mapped, place.Careful, *seed)
		if err != nil {
			fail(err)
		}
		gp.Annotate(place.AnnotateOptions{WireModel: wm, Repeaters: true})
		if err := synth.SelectDrives(mapped, lib, nil); err != nil {
			fail(err)
		}
		report(fmt.Sprintf("placed gates (%.2f mm wire, %.3f mm2)", gp.TotalWireMM(), gp.AreaMM2), mapped)
	}

	sz, err := sizing.ContinuousTILOS(mapped, lib, sizing.DefaultOptions())
	if err != nil {
		fail(err)
	}
	if !lib.Continuous {
		if _, err := sizing.SnapToLibrary(mapped, lib, sizing.SnapNearest); err != nil {
			fail(err)
		}
	}
	report(fmt.Sprintf("sized (%s)", sz), mapped)

	if lib.HasDomino() {
		dres, err := dynlogic.Dominoize(mapped, dynlogic.DefaultOptions())
		if err != nil {
			fail(err)
		}
		report(fmt.Sprintf("dominoized (%d gates)", dres.Converted), mapped)
		if v := dynlogic.NoiseAudit(mapped, 40); len(v) > 0 {
			fmt.Printf("  noise audit: %d exposed domino inputs\n", len(v))
		}
	}

	piped, err := pipeline.Pipeline(mapped, pipeline.Options{
		Stages: *stages, Seq: lib.DefaultSeq(2), Method: pipeline.BalancedDelay,
	})
	if err != nil {
		fail(err)
	}
	pl2 := place.Floorplan(piped, place.Die{SideMM: side}, place.Careful, *seed)
	pl2.Annotate(piped, place.AnnotateOptions{WireModel: wm, Repeaters: true, LocalMM: 0.05})
	r, err := sta.Analyze(piped, sta.Options{})
	if err != nil {
		fail(err)
	}
	sd := pipeline.StageDelays(piped, r, *stages)
	cycle := pipeline.FFCycle(sd, sta.ASICClocking())
	fmt.Printf("\npipelined into %d stages:", *stages)
	for _, d := range sd {
		fmt.Printf(" %.1f", d.FO4())
	}
	fmt.Printf(" FO4\ncycle %.1f FO4 -> %.0f MHz in %v\n", cycle.FO4(), proc.FrequencyMHz(cycle), proc)
	fmt.Printf("power at that clock: %v\n",
		power.Estimate(piped, proc, power.DefaultOptions(proc.FrequencyMHz(cycle))))
	fmt.Printf("critical path: %s\n", r.PathString())

	hold, err := sta.HoldCheck(piped, sta.ASICClocking(), cycle)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%v\n", hold)

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := piped.WriteVerilog(f); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s\n", *dump)
	}
}
