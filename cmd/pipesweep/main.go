// Command pipesweep reproduces the section 4 pipelining analysis: it cuts
// a deep datapath into 1..N stages, prints the achievable cycle time and
// clock speedup per depth under flip-flop and latch-borrowing clocking,
// and then applies the section 4.1 workload model to show where deeper
// pipelines stop paying for DSP, integer, and bus-interface work.
//
// Usage:
//
//	pipesweep [-width N] [-depth N] [-max N] [-workload dsp|integer|bus|flat] [-json]
//
// With -json a depth sweep through the full best-practice flow is
// emitted as the same job-result envelope the gapd service returns from
// POST /v1/sweep.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/jobs"
	"repro/internal/pipeline"
	"repro/internal/sta"
	"repro/internal/units"
)

func main() {
	width := flag.Int("width", 16, "datapath word width")
	depth := flag.Int("depth", 4, "datapath slice depth")
	maxStages := flag.Int("max", 10, "deepest pipeline to try")
	workload := flag.String("workload", "integer", "workload for -json mode: dsp, integer, bus, flat")
	seed := flag.Int64("seed", 1, "placement seed for -json mode")
	asJSON := flag.Bool("json", false, "emit a best-practice depth sweep as a gapd job result")
	flag.Parse()

	if *asJSON {
		res, err := jobs.RunService(context.Background(), jobs.Spec{
			Kind:        jobs.KindSweep,
			Design:      jobs.DesignSpec{Name: "datapath", Width: *width, Depth: *depth},
			Methodology: jobs.MethSpec{Base: "best-practice"},
			MaxStages:   *maxStages,
			Workload:    *workload,
			Seed:        *seed,
		}, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pipesweep:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "pipesweep:", err)
			os.Exit(1)
		}
		return
	}

	lib := cell.RichASIC()
	n, err := circuits.DatapathComb(lib, *width, *depth)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipesweep:", err)
		os.Exit(1)
	}
	base, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipesweep:", err)
		os.Exit(1)
	}
	fmt.Printf("workload: %s, %.1f FO4 of logic end to end\n\n", n.Name, base.CombFO4())
	fmt.Printf("%6s %12s %9s %12s %9s %8s\n",
		"stages", "FF cycle", "speedup", "latch cycle", "speedup", "regs")

	clk := sta.ASICClocking()
	ffCycles := make([]float64, 0, *maxStages)
	var oneStage units.Tau
	for s := 1; s <= *maxStages; s++ {
		ffRep, _, err := pipeline.Evaluate(n, pipeline.Options{
			Stages: s, Seq: lib.DefaultSeq(2), Method: pipeline.BalancedDelay,
		}, clk, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pipesweep:", err)
			os.Exit(1)
		}
		latchRep, _, err := pipeline.Evaluate(n, pipeline.Options{
			Stages: s, Seq: cell.TransparentLatch(2), Method: pipeline.BalancedDelay,
		}, clk, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pipesweep:", err)
			os.Exit(1)
		}
		if s == 1 {
			oneStage = ffRep.Cycle
		}
		fmt.Printf("%6d %9.1f FO4 %8.2fx %9.1f FO4 %8.2fx %8d\n",
			s, ffRep.Cycle.FO4(), float64(oneStage)/float64(ffRep.Cycle),
			latchRep.Cycle.FO4(), float64(oneStage)/float64(latchRep.Cycle), ffRep.Regs)
		ffCycles = append(ffCycles, float64(ffRep.Cycle))
	}

	fmt.Println("\nsection 4.1: throughput vs depth by workload (relative ops/s)")
	fmt.Printf("%6s %10s %10s %10s\n", "stages", "DSP", "integer", "bus-if")
	cycleAt := func(s int) float64 { return ffCycles[s-1] }
	for s := 1; s <= *maxStages; s++ {
		rel := cycleAt(s) / cycleAt(1)
		fmt.Printf("%6d %10.2f %10.2f %10.2f\n", s,
			pipeline.DSPWorkload().Throughput(s, rel),
			pipeline.IntegerWorkload().Throughput(s, rel),
			pipeline.BusInterfaceWorkload().Throughput(s, rel))
	}
	for _, w := range []struct {
		name string
		wl   pipeline.Workload
	}{
		{"DSP", pipeline.DSPWorkload()},
		{"integer", pipeline.IntegerWorkload()},
		{"bus-interface", pipeline.BusInterfaceWorkload()},
	} {
		best, tput := w.wl.BestDepth(*maxStages, cycleAt)
		fmt.Printf("best depth for %-14s %2d stages (%.2fx throughput)\n", w.name+":", best, tput)
	}
}
