// Command gapload drives a running gapd node or cluster with
// deterministic, seeded load and reports SLO numbers: streaming
// p50/p95/p99/p999 latency, goodput vs. offered load, shed rate, and an
// error-taxonomy breakdown, sliced per job kind and per arrival-process
// phase. The request schedule — which spec is sent when — is a pure
// function of -seed, so a measurement is replayable: the same seed
// against the same build is the same experiment (see FINDINGS.md for
// the claim → run → verdict convention built on this).
//
// Usage:
//
//	gapload -target http://localhost:8080 [-seed 42]
//	        [-arrival poisson|burst|ramp|closed] [-rate 50] [-duration 10s]
//	        [-burst-rate R -on 1s -off 2s] [-peak-rate R]
//	        [-concurrency 8] [-requests 500]
//	        [-corpus mixed|adders|muxpaths|datapaths|sweeps|ladders|faultmix]
//	        [-corpus-size 48] [-corpus-seed N]
//	        [-report BENCH_loadgen_run.json] [-quiet]
//
// Inspection modes (no server needed):
//
//	gapload -dump-schedule   print the canonical request schedule and exit
//	gapload -dump-corpus     print the canonical scenario corpus and exit
//
// Two runs with the same -seed print byte-identical dumps — diff them
// to convince yourself before trusting any number this tool reports.
//
// The report is stamped with the target's build_info and uptime_seconds
// (scraped from /metrics) and its node count (from /v1/cluster), so a
// committed BENCH_loadgen_*.json names exactly what it measured.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "gapload: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	target := flag.String("target", "http://localhost:8080", "base URL of the gapd node under test")
	seed := flag.Int64("seed", 42, "plan seed; same seed = byte-identical schedule and corpus")
	arrival := flag.String("arrival", "closed", "arrival process: poisson, burst, ramp, or closed")
	rate := flag.Float64("rate", 50, "open-loop mean rate in req/s (poisson; calm rate for burst; start rate for ramp)")
	burstRate := flag.Float64("burst-rate", 0, "burst-phase rate in req/s (0 = 4x -rate)")
	onMean := flag.Duration("on", time.Second, "mean burst-phase duration")
	offMean := flag.Duration("off", 2*time.Second, "mean calm-phase duration")
	peakRate := flag.Float64("peak-rate", 0, "ramp's final rate in req/s (0 = 4x -rate)")
	duration := flag.Duration("duration", 10*time.Second, "open-loop schedule span; closed-loop wall-clock cap")
	concurrency := flag.Int("concurrency", 8, "closed-loop worker count")
	requests := flag.Int("requests", 500, "closed-loop schedule length")
	corpus := flag.String("corpus", "mixed", "scenario corpus family")
	corpusSize := flag.Int("corpus-size", 48, "distinct specs kept in the corpus")
	corpusSeed := flag.Int64("corpus-seed", 0, "corpus seed (0 inherits -seed)")
	shedRetries := flag.Int("max-shed-retries", 8, "closed-loop re-issues per arrival after 429 + Retry-After")
	reqTimeout := flag.Duration("request-timeout", 2*time.Minute, "per-request HTTP timeout")
	reportPath := flag.String("report", "", "write the canonical JSON report here (e.g. BENCH_loadgen_run.json)")
	dumpSchedule := flag.Bool("dump-schedule", false, "print the canonical request schedule and exit")
	dumpCorpus := flag.Bool("dump-corpus", false, "print the canonical scenario corpus and exit")
	quiet := flag.Bool("quiet", false, "suppress the human table (report file still written)")
	flag.Parse()

	plan := loadgen.Plan{
		Seed: *seed,
		Arrival: loadgen.ArrivalSpec{
			Process:     *arrival,
			Rate:        *rate,
			BurstRate:   *burstRate,
			OnMeanSec:   onMean.Seconds(),
			OffMeanSec:  offMean.Seconds(),
			PeakRate:    *peakRate,
			DurationSec: duration.Seconds(),
			Concurrency: *concurrency,
			Requests:    *requests,
		},
		Corpus: loadgen.CorpusSpec{
			Family: *corpus,
			Size:   *corpusSize,
			Seed:   *corpusSeed,
		},
	}
	cp, err := plan.Canon()
	if err != nil {
		return err
	}

	if *dumpCorpus || *dumpSchedule {
		c, err := loadgen.BuildCorpus(cp.Corpus)
		if err != nil {
			return err
		}
		if *dumpCorpus {
			b, err := c.Canonical()
			if err != nil {
				return err
			}
			os.Stdout.Write(b)
			return nil
		}
		s, err := loadgen.BuildSchedule(cp, c)
		if err != nil {
			return err
		}
		b, err := s.Canonical()
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := loadgen.Run(ctx, cp, loadgen.RunOptions{
		Target:         *target,
		MaxShedRetries: *shedRetries,
		RequestTimeout: *reqTimeout,
	})
	if err != nil {
		return err
	}

	// Stamp provenance: the exact server build and incarnation this
	// measured, plus the wall-clock moment the report was generated.
	if info, err := loadgen.FetchTargetInfo(ctx, nil, *target); err == nil {
		rep.Target = info
	} else {
		fmt.Fprintf(os.Stderr, "gapload: warning: report unstamped: %v\n", err)
	}
	rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)

	if err := rep.Validate(); err != nil {
		return fmt.Errorf("report failed its own invariants (bug): %w", err)
	}
	if !*quiet {
		fmt.Print(rep.Table())
	}
	if *reportPath != "" {
		b, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reportPath, b, 0o644); err != nil {
			return err
		}
		if !*quiet {
			fmt.Printf("\nreport written to %s\n", *reportPath)
		}
	}
	return nil
}
