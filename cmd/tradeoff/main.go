// Command tradeoff sweeps pipeline depth through the full methodology
// flow and prints clock, throughput (hazard-discounted), area, and power
// per depth — the whole section 4 trade surface, including the cost the
// paper explicitly set aside: the Alpha bought its clock with 90 W.
//
// Usage:
//
//	tradeoff [-flow asic|custom] [-max N] [-workload dsp|integer|bus] [-json]
//
// With -json the sweep is emitted as the same job-result envelope the
// gapd service returns from POST /v1/sweep.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/pipeline"
)

func main() {
	flow := flag.String("flow", "asic", "methodology: asic (best-practice) or custom")
	maxStages := flag.Int("max", 8, "deepest pipeline")
	workload := flag.String("workload", "integer", "workload: dsp, integer, bus")
	seed := flag.Int64("seed", 0, "placement seed")
	asJSON := flag.Bool("json", false, "emit the sweep as a gapd job result")
	flag.Parse()

	if *asJSON {
		base := map[string]string{"asic": "best-practice", "custom": "custom"}[*flow]
		if base == "" {
			fmt.Fprintf(os.Stderr, "tradeoff: unknown flow %q\n", *flow)
			os.Exit(1)
		}
		res, err := jobs.RunService(context.Background(), jobs.Spec{
			Kind:        jobs.KindSweep,
			Design:      jobs.DesignSpec{Name: "datapath", Width: 16, Depth: 4},
			Methodology: jobs.MethSpec{Base: base},
			MaxStages:   *maxStages,
			Workload:    *workload,
			Seed:        *seed,
		}, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tradeoff:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "tradeoff:", err)
			os.Exit(1)
		}
		return
	}

	var m core.Methodology
	switch *flow {
	case "asic":
		m = core.BestPracticeASIC()
	case "custom":
		m = core.FullCustom()
	default:
		fmt.Fprintf(os.Stderr, "tradeoff: unknown flow %q\n", *flow)
		os.Exit(1)
	}
	m.Seed = *seed
	var wl pipeline.Workload
	switch *workload {
	case "dsp":
		wl = pipeline.DSPWorkload()
	case "integer":
		wl = pipeline.IntegerWorkload()
	case "bus":
		wl = pipeline.BusInterfaceWorkload()
	default:
		fmt.Fprintf(os.Stderr, "tradeoff: unknown workload %q\n", *workload)
		os.Exit(1)
	}

	design := core.DatapathDesign(16, 4)
	fmt.Printf("flow %s on %s, %s workload:\n\n", m.Name, design.Name, *workload)
	fmt.Printf("%6s %10s %9s %9s %8s %9s %7s\n",
		"stages", "MHz", "ops rel", "regs", "area", "power", "mW/op")
	pts, err := core.DepthSweep(design, m, *maxStages, wl.CPI)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tradeoff:", err)
		os.Exit(1)
	}
	for _, p := range pts {
		ev := p.Eval
		opsRel := p.ThroughputRel
		mwPerOp := 0.0
		if opsRel > 0 {
			mwPerOp = 1000 * ev.PowerW / (opsRel * 100)
		}
		fmt.Printf("%6d %10.0f %8.2fx %9d %7.3fmm2 %8.3fW %7.2f\n",
			p.Stages, ev.ShippedMHz, opsRel, ev.Regs, ev.AreaMM2, ev.PowerW, mwPerOp)
	}
	best := core.BestDepth(pts)
	fmt.Printf("\nbest depth for this workload: %d stages (%.2fx)\n", best.Stages, best.ThroughputRel)
	fmt.Println("note the power column: clock rate is bought with registers and their")
	fmt.Println("clock pins — the paper's closing caveat that its analysis ignores the")
	fmt.Println("power axis, on which the 90 W Alpha and the 6.3 W IBM core differ 14x.")
}
