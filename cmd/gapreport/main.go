// Command gapreport reproduces the paper's headline analysis: the section
// 2 speed survey, the section 3 factor ladder measured on a real netlist
// pushed through progressively more custom methodologies, and the section
// 9 residual arithmetic.
//
// Usage:
//
//	gapreport [-width N] [-depth N] [-seed N] [-json]
//
// With -json the factor ladder is emitted as the same job-result
// envelope the gapd service returns from POST /v1/ladder.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/chips"
	"repro/internal/core"
	"repro/internal/jobs"
)

func main() {
	width := flag.Int("width", 16, "datapath word width")
	depth := flag.Int("depth", 4, "datapath slice depth")
	seed := flag.Int64("seed", 1, "seed for placement and Monte Carlo")
	asJSON := flag.Bool("json", false, "emit the factor ladder as a gapd job result")
	flag.Parse()

	if *asJSON {
		res, err := jobs.RunService(context.Background(), jobs.Spec{
			Kind:   jobs.KindLadder,
			Design: jobs.DesignSpec{Name: "datapath", Width: *width, Depth: *depth},
			Seed:   *seed,
		}, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gapreport:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "gapreport:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Println("== Section 2: published 0.25um silicon survey ==")
	fmt.Printf("%-22s %8s %9s %7s %7s %s\n", "chip", "MHz", "FO4/cyc", "stages", "skew", "family")
	for _, c := range chips.Survey() {
		fmt.Printf("%-22s %8.0f %9.0f %7d %6.0f%% %v\n",
			c.Name, c.ReportedMHz, c.FO4PerCycle, c.PipelineStages, 100*c.SkewFrac, c.Family)
	}
	fmt.Printf("\ncustom/ASIC gaps: IBM/typical %.1fx, Alpha/typical %.1fx (paper: 6-8x)\n\n",
		chips.Gap(chips.IBMPowerPC1GHz, chips.TypicalASIC),
		chips.Gap(chips.Alpha21264A, chips.TypicalASIC))

	design := core.DatapathDesign(*width, *depth)
	fmt.Printf("== Section 3: factor ladder (measured on %s) ==\n", design.Name)
	ladder, err := core.FactorLadder(design, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gapreport:", err)
		os.Exit(1)
	}
	fmt.Print(ladder)

	fmt.Println("\n== Section 9: residual analysis ==")
	rp := ladder.Residual(core.StepPipelining, core.StepProcess)
	rd := ladder.Residual(core.StepPipelining, core.StepProcess, core.StepDomino)
	fmt.Printf("after pipelining+process: %.2fx unexplained (paper: 2-3x)\n", rp)
	fmt.Printf("after also dynamic logic: %.2fx unexplained (paper: ~1.6x)\n", rd)

	fmt.Println("\n== Methodology endpoints ==")
	for _, m := range []core.Methodology{core.TypicalASIC2000(), core.BestPracticeASIC(), core.FullCustom()} {
		m.Seed = *seed
		ev, err := core.Evaluate(design, m)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gapreport:", err)
			os.Exit(1)
		}
		fmt.Printf("%-20s %7.1f FO4/cyc  %6.0f MHz nominal x %.2f = %6.0f MHz shipped  (%d gates, %d regs, %.2f W)\n",
			m.Name, ev.FO4PerCycle, ev.NominalMHz, ev.RatingMult, ev.ShippedMHz, ev.Gates, ev.Regs, ev.PowerW)
	}
}
