// Command netsim reads a structural Verilog netlist (the dialect
// cmd/asicflow -dump writes), resolves its cells against a library, and
// simulates it cycle by cycle: either with random input vectors or with
// vectors from a file (one line per cycle, `name=0/1` pairs separated by
// whitespace). Outputs are printed per cycle.
//
// Usage:
//
//	netsim -in design.v [-lib rich|poor|custom] [-cycles N] [-seed N] [-vectors file]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/cell"
	"repro/internal/netlist"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "netsim:", err)
	os.Exit(1)
}

func main() {
	in := flag.String("in", "", "Verilog netlist to simulate")
	libName := flag.String("lib", "rich", "cell library: rich, poor, custom")
	cycles := flag.Int("cycles", 16, "cycles to run with random vectors")
	seed := flag.Int64("seed", 1, "random vector seed")
	vectors := flag.String("vectors", "", "vector file (name=bit pairs per line)")
	flag.Parse()
	if *in == "" {
		fail(fmt.Errorf("no input file (-in)"))
	}

	var lib *cell.Library
	switch *libName {
	case "rich":
		lib = cell.RichASIC()
	case "poor":
		lib = cell.PoorASIC()
	case "custom":
		lib = cell.Custom()
	default:
		fail(fmt.Errorf("unknown library %q", *libName))
	}

	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	n, err := netlist.ReadVerilog(f, lib)
	f.Close()
	if err != nil {
		fail(err)
	}
	fmt.Printf("loaded %v\n", n)

	sim, err := netlist.NewSimulator(n)
	if err != nil {
		fail(err)
	}

	inputNames := make([]string, 0, len(n.Inputs()))
	for _, id := range n.Inputs() {
		inputNames = append(inputNames, n.Net(id).Name)
	}
	outputNames := make([]string, 0, len(n.Outputs()))
	for _, id := range n.Outputs() {
		outputNames = append(outputNames, n.Net(id).Name)
	}
	sort.Strings(outputNames)

	step := func(cyc int, in map[string]bool) {
		out, err := sim.Step(in)
		if err != nil {
			fail(err)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "cycle %3d:", cyc)
		for _, nm := range outputNames {
			v := 0
			if out[nm] {
				v = 1
			}
			fmt.Fprintf(&b, " %s=%d", nm, v)
		}
		fmt.Println(b.String())
	}

	if *vectors != "" {
		vf, err := os.Open(*vectors)
		if err != nil {
			fail(err)
		}
		defer vf.Close()
		sc := bufio.NewScanner(vf)
		cyc := 0
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			in := map[string]bool{}
			for _, nm := range inputNames {
				in[nm] = false
			}
			for _, tok := range strings.Fields(line) {
				parts := strings.SplitN(tok, "=", 2)
				if len(parts) != 2 {
					fail(fmt.Errorf("bad vector token %q", tok))
				}
				in[parts[0]] = parts[1] == "1"
			}
			step(cyc, in)
			cyc++
		}
		if err := sc.Err(); err != nil {
			fail(err)
		}
		return
	}

	rng := rand.New(rand.NewSource(*seed))
	for cyc := 0; cyc < *cycles; cyc++ {
		in := map[string]bool{}
		for _, nm := range inputNames {
			in[nm] = rng.Intn(2) == 1
		}
		step(cyc, in)
	}
}
