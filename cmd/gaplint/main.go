// Command gaplint runs the repo's project-specific static analysis
// (internal/analysis) over the whole module and exits non-zero on any
// finding. It enforces the invariants every quantitative claim in the
// reproduction rests on:
//
//	determinism  core evaluation packages stay a pure function of
//	             their inputs (no wall clock, no global rand)
//	errtaxonomy  service-boundary errors stay classifiable by the
//	             jobs failure taxonomy
//	ctxflow      contexts propagate instead of being re-minted
//	metricname   registered metric names are unique and snake_case
//
// Usage:
//
//	gaplint [packages]
//
// With no arguments or "./..." the whole module is checked. Directory
// arguments ("./internal/sta") restrict which packages' findings are
// reported — the whole module is still loaded, because metric-name
// uniqueness is a module-wide property.
//
// Deliberate exceptions carry an inline justification:
//
//	//gaplint:allow <analyzer> — <reason>
//
// on the offending line or the line above. Suppressions without a
// reason, and suppressions that no longer match a finding, are
// themselves findings.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gaplint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return err
	}
	findings := analysis.Run(pkgs, analysis.RepoAnalyzers("repro"))
	findings = filterFindings(findings, root, args)
	if len(findings) == 0 {
		return nil
	}
	os.Stdout.WriteString(analysis.Format(findings, root))
	os.Exit(1)
	return nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// filterFindings restricts findings to the requested package dirs.
// "./..." (or no args) keeps everything; "./internal/sta/..." and
// "./internal/sta" keep that subtree.
func filterFindings(fs []analysis.Finding, root string, args []string) []analysis.Finding {
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return fs
		}
		a = strings.TrimSuffix(a, "/...")
		dirs = append(dirs, filepath.Clean(filepath.Join(root, a)))
	}
	if len(dirs) == 0 {
		return fs
	}
	var out []analysis.Finding
	for _, f := range fs {
		for _, d := range dirs {
			if f.Pos.Filename == d || strings.HasPrefix(f.Pos.Filename, d+string(filepath.Separator)) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}
