// Command gaplint runs the repo's project-specific static analysis
// (internal/analysis) over the whole module and exits non-zero on any
// finding. It enforces the invariants every quantitative claim in the
// reproduction rests on:
//
//	determinism         core evaluation packages stay a pure function
//	                    of their inputs (no wall clock, no global rand)
//	errtaxonomy         service-boundary errors stay classifiable by
//	                    the jobs failure taxonomy
//	ctxflow             contexts propagate instead of being re-minted
//	metricname          registered metric names are unique, snake_case
//	lockdiscipline      a field guarded by a mutex at a majority of
//	                    sites is guarded at every site; no bare-Lock
//	                    early returns
//	goroutinelifecycle  every goroutine in the service packages has a
//	                    provable shutdown path
//	chanhygiene         no timer-per-iteration retry loops, closes of
//	                    handed-in channels, double-close shapes, or
//	                    receiverless sends
//
// Usage:
//
//	gaplint [flags] [packages]
//
//	-json         emit findings as newline-delimited JSON records
//	              {file, line, col, analyzer, message}
//	-list-allows  audit mode: list every //gaplint:allow directive
//	              with its reason instead of running the analyzers
//	-workers N    analysis worker count (0 = GOMAXPROCS; output is
//	              byte-identical at any value)
//
// With no arguments or "./..." the whole module is checked. Directory
// arguments ("./internal/sta") restrict which packages' findings are
// reported — the whole module is still loaded, because metric-name
// uniqueness is a module-wide property.
//
// Deliberate exceptions carry an inline justification:
//
//	//gaplint:allow <analyzer> — <reason>
//
// on the offending line or the line above. Suppressions without a
// reason, and suppressions that no longer match a finding, are
// themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gaplint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gaplint", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit findings as newline-delimited JSON")
	listAllows := fs.Bool("list-allows", false, "list every //gaplint:allow directive instead of running the analyzers")
	workers := fs.Int("workers", 0, "analysis worker count (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return err
	}
	if *listAllows {
		allows := filterAllows(analysis.CollectAllows(pkgs, root), fs.Args())
		if *asJSON {
			return writeAllowsJSON(allows)
		}
		os.Stdout.WriteString(analysis.FormatAllows(allows))
		return nil
	}
	findings := analysis.RunWorkers(pkgs, analysis.RepoAnalyzers("repro"), *workers)
	findings = filterFindings(findings, root, fs.Args())
	if len(findings) == 0 {
		return nil
	}
	if *asJSON {
		out, err := analysis.FormatJSON(findings, root)
		if err != nil {
			return err
		}
		os.Stdout.WriteString(out)
	} else {
		os.Stdout.WriteString(analysis.Format(findings, root))
	}
	os.Exit(1)
	return nil
}

// writeAllowsJSON emits the audit listing as NDJSON records.
func writeAllowsJSON(allows []analysis.Allow) error {
	enc := json.NewEncoder(os.Stdout)
	for _, a := range allows {
		if err := enc.Encode(a); err != nil {
			return err
		}
	}
	return nil
}

// filterAllows restricts the audit listing to the requested package
// dirs (module-relative slash paths).
func filterAllows(allows []analysis.Allow, args []string) []analysis.Allow {
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return allows
		}
		a = strings.TrimSuffix(a, "/...")
		dirs = append(dirs, filepath.ToSlash(filepath.Clean(a)))
	}
	if len(dirs) == 0 {
		return allows
	}
	var out []analysis.Allow
	for _, al := range allows {
		for _, d := range dirs {
			if al.File == d || strings.HasPrefix(al.File, d+"/") {
				out = append(out, al)
				break
			}
		}
	}
	return out
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// filterFindings restricts findings to the requested package dirs.
// "./..." (or no args) keeps everything; "./internal/sta/..." and
// "./internal/sta" keep that subtree.
func filterFindings(fs []analysis.Finding, root string, args []string) []analysis.Finding {
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return fs
		}
		a = strings.TrimSuffix(a, "/...")
		dirs = append(dirs, filepath.Clean(filepath.Join(root, a)))
	}
	if len(dirs) == 0 {
		return fs
	}
	var out []analysis.Finding
	for _, f := range fs {
		for _, d := range dirs {
			if f.Pos.Filename == d || strings.HasPrefix(f.Pos.Filename, d+string(filepath.Separator)) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}
