// Command libdump writes a library's Liberty-style characterization to
// stdout — the artifact a foundry ships and the concrete form of the
// paper's section 6 library-richness comparison (diff the rich and poor
// dumps to see exactly what an ASIC team was missing).
//
// Usage:
//
//	libdump [-lib rich|poor|custom|two-drive] [-process asic025|custom025|asic018]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cell"
	"repro/internal/units"
)

func main() {
	libName := flag.String("lib", "rich", "library: rich, poor, custom, two-drive")
	procName := flag.String("process", "asic025", "process: asic025, custom025, asic018")
	flag.Parse()

	var lib *cell.Library
	switch *libName {
	case "rich":
		lib = cell.RichASIC()
	case "poor":
		lib = cell.PoorASIC()
	case "custom":
		lib = cell.Custom()
	case "two-drive":
		lib = cell.RestrictDrives(cell.RichASIC(), 1, 4)
	default:
		fmt.Fprintf(os.Stderr, "libdump: unknown library %q\n", *libName)
		os.Exit(1)
	}
	var p units.Process
	switch *procName {
	case "asic025":
		p = units.ASIC025
	case "custom025":
		p = units.Custom025
	case "asic018":
		p = units.ASIC018
	default:
		fmt.Fprintf(os.Stderr, "libdump: unknown process %q\n", *procName)
		os.Exit(1)
	}
	if err := cell.WriteLiberty(os.Stdout, lib, p); err != nil {
		fmt.Fprintln(os.Stderr, "libdump:", err)
		os.Exit(1)
	}
}
