// Command gapd serves the evaluation engine over HTTP: POST a job spec
// to /v1/evaluate, /v1/ladder, or /v1/sweep and get the flow's result as
// JSON, with identical submissions answered from a content-addressed
// cache. See internal/serve for the route table and internal/jobs for
// the spec schema.
//
// Usage:
//
//	gapd [-addr :8080] [-workers N] [-parallel N] [-cache N] [-timeout 2m]
//	     [-journal DIR] [-store-dir DIR] [-store-segment-bytes N]
//	     [-store-max-bytes N] [-scrub-interval 1m] [-scrub-rate N]
//	     [-scrub-seed N] [-drain-timeout 30s] [-max-queue N]
//	     [-max-per-client N] [-node-id ID -peers ID=URL,...]
//	     [-hedge-after 50ms] [-replicas N] [-antientropy-interval 30s]
//	     [-gossip -advertise URL] [-gossip-interval 250ms]
//	     [-gossip-seed N] [-version]
//
// With -journal, every accepted job is written ahead to an fsynced JSONL
// log in DIR; on boot the journal is replayed — completed results re-warm
// the cache, jobs interrupted by a crash are re-executed — before the
// server starts listening. SIGHUP compacts the journal on demand. The
// server drains in-flight jobs and exits cleanly on SIGINT/SIGTERM,
// syncing the journal and logging the count of jobs still in flight when
// the drain deadline expires.
//
// With -store-dir, completed results also persist to a content-addressed
// segment store (internal/cas): the RAM cache becomes a promotion tier
// over the disk tier, cache misses consult the store before recomputing,
// and a warm restart rebuilds the full result corpus by scanning the
// segment index — no recompute, regardless of cache size. The journal
// then records slim "stored" pointers instead of full result bodies.
// -store-segment-bytes sets the rolling-segment size; -store-max-bytes
// budgets the store (compaction evicts the coldest records past it;
// 0 = unlimited).
//
// The store is continuously scrubbed: every -scrub-interval a background
// pass verifies -scrub-rate records against their CRCs and SHA-256
// digests, condemns any record that fails (it is quarantined, never
// served, and its segment is compacted), and the read path repairs
// condemned records from the replica set before recomputing. -scrub-seed
// varies the deterministic scan origin across nodes so a fleet does not
// scrub in lockstep; -scrub-interval 0 disables scrubbing.
//
// With -peers (a static membership of id=url pairs including this node,
// named by -node-id), N gapd processes become one sharded service: each
// spec has one owner by rendezvous hashing over its content address,
// requests are forwarded to their owners (hedged past -hedge-after), and
// a dead owner's slice is computed by the next node in order — see
// internal/cluster. Completed results are replicated to the first
// -replicas nodes in rendezvous order and repaired by a background
// anti-entropy sweep every -antientropy-interval, so a partitioned
// owner's finished work stays servable. Setting GAPD_NETFAULT to a
// netfault plan (e.g. "seed=7,partition=0.05,corrupt=0.01") injects
// deterministic network faults into every peer-facing request — the
// chaos drill for a real multi-process cluster.
//
// With -gossip, membership is dynamic instead of a boot list: the node
// advertises itself at -advertise, announces its join to the -peers
// seed contacts (none needed for the first node), and from then on the
// cluster converges by SWIM-style gossip over POST /v1/gossip — probe
// rounds every -gossip-interval, indirect ping-req probes, incarnation-
// numbered alive/suspect/dead states. Ownership re-ranks live as nodes
// join and leave, and completed results migrate to their new owners
// over the replication endpoints instead of being recomputed. On
// SIGTERM the node drains first: it announces the drain (new work flows
// to the next rendezvous rank), finishes in-flight jobs, hands every
// held result off, and only then leaves — a rolling restart loses
// nothing. POST /v1/drain triggers the same sequence remotely.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"net/url"

	"repro/internal/cas"
	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/netfault"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "flow evaluations per ladder/sweep job (0 = workers)")
	cache := flag.Int("cache", 0, "result-cache entries (0 = 512, negative disables)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-job wall-clock limit")
	reqTimeout := flag.Duration("request-timeout", 5*time.Minute, "per-request wait limit")
	maxBody := flag.Int64("max-body", 1<<20, "request body limit in bytes")
	journalDir := flag.String("journal", "", "crash-safe job journal directory (empty disables)")
	storeDir := flag.String("store-dir", "", "content-addressed result store directory: disk tier under the RAM cache (empty disables)")
	storeSegBytes := flag.Int64("store-segment-bytes", 0, "store rolling-segment size in bytes (0 = 64 MiB)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "store live-byte budget; compaction evicts the coldest records past it (0 = unlimited)")
	scrubInterval := flag.Duration("scrub-interval", time.Minute, "spacing of background store-integrity scrub steps (0 disables)")
	scrubRate := flag.Int("scrub-rate", 256, "records verified per scrub step")
	scrubSeed := flag.Int64("scrub-seed", 1, "seed for the scrubber's deterministic scan origin")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "shutdown drain limit for in-flight jobs")
	maxQueue := flag.Int("max-queue", 0, "admission queue depth beyond workers before shedding 429s (0 = 4x workers, negative disables)")
	maxPerClient := flag.Int("max-per-client", 0, "concurrent submissions per client (0 = 2x workers, negative disables)")
	maxAttempts := flag.Int("max-attempts", 0, "attempts per job incl. retries (0 = 3)")
	nodeID := flag.String("node-id", "", "this node's id within -peers (required with -peers)")
	peersFlag := flag.String("peers", "", "static cluster membership as comma-separated id=url pairs incl. this node (empty = single node); with -gossip, the seed contacts to announce the join to")
	gossipOn := flag.Bool("gossip", false, "dynamic SWIM-style membership: join via the -peers seed contacts, probe every -gossip-interval, hand ownership off on drain")
	advertise := flag.String("advertise", "", "this node's externally reachable base URL (required with -gossip)")
	gossipInterval := flag.Duration("gossip-interval", 250*time.Millisecond, "spacing of gossip protocol rounds")
	gossipSeed := flag.Int64("gossip-seed", 1, "seed for the deterministic probe/ping-req target selection")
	hedgeAfter := flag.Duration("hedge-after", 50*time.Millisecond, "latency threshold before a forwarded request is hedged to the next node in rendezvous order (negative disables)")
	replicas := flag.Int("replicas", 2, "replication factor: completed results are pushed to the first N nodes in rendezvous order (1 disables)")
	aeInterval := flag.Duration("antientropy-interval", 30*time.Second, "spacing of background replica-repair sweeps (0 disables)")
	showVersion := flag.Bool("version", false, "print build info and exit")
	flag.Parse()

	if *showVersion {
		v := serve.Version()
		fmt.Printf("gapd %s (%s, %s)", v.Version, v.Module, v.GoVersion)
		if v.Revision != "" {
			dirty := ""
			if v.Modified {
				dirty = "+dirty"
			}
			fmt.Printf(" rev %s%s", v.Revision, dirty)
		}
		fmt.Println()
		return
	}

	var journal *jobs.Journal
	if *journalDir != "" {
		j, err := jobs.OpenJournal(*journalDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gapd: %v\n", err)
			os.Exit(1)
		}
		journal = j
		defer journal.Close()
	}

	// Open the disk tier before the pool: boot is an index rebuild (a
	// header scan over the segment files), after which every result the
	// store holds is servable without recompute — the warm-restart path.
	var store *cas.Store
	if *storeDir != "" {
		s, err := cas.Open(cas.Options{
			Dir:          *storeDir,
			SegmentBytes: *storeSegBytes,
			MaxBytes:     *storeMaxBytes,
			ScrubSeed:    *scrubSeed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "gapd: %v\n", err)
			os.Exit(1)
		}
		store = s
		defer store.Close()
		st := store.Stats()
		log.Printf("gapd: result store: %d records in %d segments (%d bytes live, %d torn tails truncated) at %s",
			st.Records, st.Segments, st.LiveBytes, st.TornTails, *storeDir)
	}

	pool := jobs.NewPool(jobs.Options{
		Workers:      *workers,
		Parallelism:  *parallel,
		CacheEntries: *cache,
		JobTimeout:   *timeout,
		MaxAttempts:  *maxAttempts,
		Journal:      journal,
		Store:        store,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background integrity scrub: pace lives here (a plain ticker), while
	// the scrubber itself is purely operation-driven — ScrubStep(n)
	// verifies the next n records and the store handles condemnation,
	// quarantine, and compaction. Log lines appear only when a pass
	// completes with damage, so a healthy store scrubs silently.
	if store != nil && *scrubInterval > 0 {
		go func() {
			tick := time.NewTicker(*scrubInterval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					pr := store.ScrubStep(*scrubRate)
					if pr.Corrupt > 0 {
						log.Printf("gapd: scrub condemned %d of %d records this step (quarantined for repair; segment compaction triggered)",
							pr.Corrupt, pr.Scanned)
					}
				}
			}
		}()
	}

	// Replay the journal before listening: completed results re-warm the
	// cache, interrupted jobs re-execute, and the journal compacts to
	// the surviving state — so a kill-and-restart converges to the same
	// results the uninterrupted run would have served.
	if journal != nil {
		stats, err := jobs.RecoverFromJournal(ctx, pool, *journalDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gapd: journal recovery: %v\n", err)
			os.Exit(1)
		}
		if stats.WarmedCache+stats.WarmedStore+stats.Resubmitted+stats.SkippedTerminal+stats.ReplaysExhausted > 0 || stats.Truncated {
			log.Printf("gapd: journal replay: %d results re-warmed, %d resolved from the store, %d interrupted jobs re-run (%d failed again), %d terminal failures skipped, %d poison jobs failed terminally, truncated=%v",
				stats.WarmedCache, stats.WarmedStore, stats.Resubmitted, stats.FailedReplays,
				stats.SkippedTerminal, stats.ReplaysExhausted, stats.Truncated)
		}
	}

	// SIGHUP compacts the journal on demand: duplicate accepts and
	// terminal-failure history collapse while pending work survives.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if journal == nil {
				log.Printf("gapd: SIGHUP: no journal configured, nothing to compact")
				continue
			}
			st, err := journal.CompactNow()
			if err != nil {
				log.Printf("gapd: SIGHUP compaction failed: %v", err)
				continue
			}
			log.Printf("gapd: SIGHUP compaction: %d -> %d bytes (%d done kept, %d pending kept, %d failed dropped)",
				st.BeforeBytes, st.AfterBytes, st.Completed, st.PendingKept, st.DroppedFailed)
		}
	}()

	var clu *cluster.Cluster
	if *peersFlag != "" || *gossipOn {
		var peers []cluster.Peer
		if *peersFlag != "" {
			var err error
			peers, err = cluster.ParsePeers(*peersFlag)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gapd: %v\n", err)
				os.Exit(1)
			}
		}
		opts := cluster.Options{
			SelfID:              *nodeID,
			Peers:               peers,
			HedgeAfter:          *hedgeAfter,
			RequestTimeout:      *reqTimeout,
			Replicas:            *replicas,
			AntiEntropyInterval: *aeInterval,
			// The cluster's result set is the union of RAM and disk:
			// anti-entropy repair and drain handoff must cover results
			// the cache has evicted but the store still holds.
			Results: pool.StoredView(),
		}
		if *gossipOn {
			opts.Gossip = &cluster.GossipOptions{
				SelfURL:  *advertise,
				Seed:     *gossipSeed,
				Interval: *gossipInterval,
			}
		}
		// GAPD_NETFAULT injects deterministic network faults into every
		// peer-facing request — chaos drills against a real multi-process
		// cluster without touching iptables. The value is a netfault plan
		// ("seed=7,partition=0.05,corrupt=0.01,..."); peer URLs resolve to
		// peer IDs so fault sites are keyed by logical link, not address.
		if planStr := os.Getenv("GAPD_NETFAULT"); planStr != "" {
			plan, err := netfault.ParsePlan(planStr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gapd: GAPD_NETFAULT: %v\n", err)
				os.Exit(1)
			}
			hosts := make(map[string]string, len(peers))
			for _, p := range peers {
				if u, err := url.Parse(p.URL); err == nil {
					hosts[u.Host] = p.ID
				}
			}
			inj := netfault.New(plan)
			opts.WrapTransport = func(rt http.RoundTripper) http.RoundTripper {
				return inj.Transport(*nodeID, netfault.HostResolver(hosts), rt)
			}
			log.Printf("gapd: netfault enabled: %s", planStr)
		}
		c, err := cluster.New(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gapd: %v\n", err)
			os.Exit(1)
		}
		clu = c
		clu.Start(ctx)
		defer clu.Close()
	}

	handler := serve.NewHandler(serve.Options{
		Pool:           pool,
		Cluster:        clu,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *reqTimeout,
		MaxQueueDepth:  *maxQueue,
		MaxPerClient:   *maxPerClient,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		if clu != nil {
			log.Printf("gapd: node %s in a %d-node cluster (hedge after %v)",
				clu.Self(), len(clu.Ring().Peers()), *hedgeAfter)
		}
		log.Printf("gapd: listening on %s (%d workers, cache %d entries, job timeout %v, journal %q)",
			*addr, pool.Workers(), pool.Cache().Cap(), *timeout, *journalDir)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "gapd: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		log.Printf("gapd: shutting down (drain limit %v)", *drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Under gossip membership, drain before closing the listener:
		// announce the drain (ownership re-ranks away from this node,
		// fresh requests shed to the next rendezvous rank) and migrate
		// every held result to its new home while still serving.
		if clu != nil && clu.GossipEnabled() {
			if migrated, err := handler.StartDrain(shutdownCtx); err != nil {
				log.Printf("gapd: drain handoff incomplete (%d results migrated): %v", migrated, err)
			} else {
				log.Printf("gapd: drained: %d results migrated to new owners", migrated)
			}
		}
		// Shutdown waits for in-flight requests; since jobs run on the
		// request goroutine, this drains the worker pool too. Jobs still
		// running at the deadline keep their accept-only journal records,
		// so the next boot re-executes exactly those.
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("gapd: drain expired: %v", err)
		}
		// Replica pushes spawned off the response path may still be in
		// flight; wait for them before the final handoff sweep counts
		// what is left to migrate (and before Leave tears the peer down).
		handler.Quiesce()
		if clu != nil && clu.GossipEnabled() {
			// Results that completed during the drain window migrate in a
			// final sweep now that the server has quiesced; then announce
			// clean departure so peers record "left", not "dead".
			if migrated := clu.HandoffNow(shutdownCtx); migrated > 0 {
				log.Printf("gapd: final handoff: %d late results migrated", migrated)
			}
			clu.Leave(shutdownCtx)
		}
	}
	if err := journal.Sync(); err != nil {
		log.Printf("gapd: journal sync: %v", err)
	}
	log.Printf("gapd: bye (%d jobs in flight, %d queued)", pool.InFlight(), pool.QueueDepth())
}
