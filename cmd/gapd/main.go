// Command gapd serves the evaluation engine over HTTP: POST a job spec
// to /v1/evaluate, /v1/ladder, or /v1/sweep and get the flow's result as
// JSON, with identical submissions answered from a content-addressed
// cache. See internal/serve for the route table and internal/jobs for
// the spec schema.
//
// Usage:
//
//	gapd [-addr :8080] [-workers N] [-parallel N] [-cache N] [-timeout 2m]
//
// The server drains in-flight jobs and exits cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "flow evaluations per ladder/sweep job (0 = workers)")
	cache := flag.Int("cache", 0, "result-cache entries (0 = 512, negative disables)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-job wall-clock limit")
	reqTimeout := flag.Duration("request-timeout", 5*time.Minute, "per-request wait limit")
	maxBody := flag.Int64("max-body", 1<<20, "request body limit in bytes")
	flag.Parse()

	pool := jobs.NewPool(jobs.Options{
		Workers:      *workers,
		Parallelism:  *parallel,
		CacheEntries: *cache,
		JobTimeout:   *timeout,
	})
	handler := serve.NewHandler(serve.Options{
		Pool:           pool,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *reqTimeout,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("gapd: listening on %s (%d workers, cache %d entries, job timeout %v)",
			*addr, pool.Workers(), pool.Cache().Cap(), *timeout)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "gapd: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop()
		log.Printf("gapd: shutting down")
		// Shutdown waits for in-flight requests; since jobs run on the
		// request goroutine, this drains the worker pool too.
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "gapd: shutdown: %v\n", err)
			os.Exit(1)
		}
	}
	log.Printf("gapd: bye")
}
