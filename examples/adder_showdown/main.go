// Adder showdown: the paper's section 4.2 argument that predefined fast
// datapath macros (carry-lookahead, carry-select, parallel-prefix) beat
// what naive synthesis produces (a ripple chain) — and its section 9
// caveat that a fast element embedded in a full path matters less than it
// does in isolation.
//
// The example synthesizes four 32-bit adder structures onto the same rich
// ASIC library, sizes them identically, and compares delay, area, and
// power; then it embeds the same add inside an ALU path to show the
// dilution effect.
package main

import (
	"fmt"
	"log"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/units"
	"repro/internal/wire"
)

func flow(n *netlist.Netlist, lib *cell.Library) (*netlist.Netlist, *sta.Result, error) {
	m, err := synth.Map(n, lib, synth.MapOptions{Objective: synth.MinDelay})
	if err != nil {
		return nil, nil, err
	}
	wl := &wire.LoadModel{M: wire.NewModel(units.ASIC025), BlockAreaMM2: 1}
	if err := synth.SelectDrives(m, lib, wl); err != nil {
		return nil, nil, err
	}
	if _, err := synth.InsertBuffers(m, lib); err != nil {
		return nil, nil, err
	}
	if err := synth.SelectDrives(m, lib, nil); err != nil {
		return nil, nil, err
	}
	r, err := sta.Analyze(m, sta.Options{})
	if err != nil {
		return nil, nil, err
	}
	return m, r, nil
}

func main() {
	lib := cell.RichASIC()
	const w = 32

	type adderCase struct {
		name string
		n    *netlist.Netlist
	}
	var cases []adderCase
	if a, err := circuits.RippleCarry(lib, w); err == nil {
		cases = append(cases, adderCase{"ripple-carry (naive synthesis)", a.N})
	} else {
		log.Fatal(err)
	}
	if a, err := circuits.CarryLookahead(lib, w); err == nil {
		cases = append(cases, adderCase{"carry-lookahead macro", a.N})
	} else {
		log.Fatal(err)
	}
	if a, err := circuits.CarrySelect(lib, w, 8); err == nil {
		cases = append(cases, adderCase{"carry-select macro (g=8)", a.N})
	} else {
		log.Fatal(err)
	}
	if a, err := circuits.KoggeStone(lib, w); err == nil {
		cases = append(cases, adderCase{"Kogge-Stone prefix (custom)", a.N})
	} else {
		log.Fatal(err)
	}

	fmt.Printf("32-bit adders on %s:\n\n", lib.Name)
	fmt.Printf("%-32s %9s %7s %9s %9s\n", "structure", "delay", "depth", "area", "power@250")
	var ripple, ks float64
	for _, c := range cases {
		m, r, err := flow(c.n, lib)
		if err != nil {
			log.Fatal(err)
		}
		p := power.Estimate(m, units.ASIC025, power.DefaultOptions(250))
		fmt.Printf("%-32s %6.1f FO4 %7d %9.0f %7.1f mW\n",
			c.name, r.CombFO4(), r.Depth(), m.TotalArea(), 1000*p.TotalW())
		switch c.name {
		case "ripple-carry (naive synthesis)":
			ripple = r.CombFO4()
		case "Kogge-Stone prefix (custom)":
			ks = r.CombFO4()
		}
	}
	fmt.Printf("\nbest structure beats naive synthesis by %.1fx in isolation.\n\n", ripple/ks)

	// Section 9's caveat: embed the adder in an ALU path.
	alu, err := circuits.NewALU(lib, w)
	if err != nil {
		log.Fatal(err)
	}
	_, r, err := flow(alu.N, lib)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the same add inside a full ALU path: %.1f FO4 total.\n", r.CombFO4())
	fmt.Printf("swapping a %.1f FO4 adder improvement into that path moves the whole\n", ripple-ks)
	fmt.Println("path far less than its isolated ratio suggests — the paper's point that")
	fmt.Println("\"when such elements are integrated into an entire path ... their")
	fmt.Println("individual significance is naturally reduced.\"")
}
