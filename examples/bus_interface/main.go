// Bus interface: the paper's section 4.1 counterexample to "just pipeline
// it". A bus controller's next state depends on fresh primary inputs and
// its own previous state every cycle, so the register-to-register loop
// through the next-state logic cannot be cut: adding pipeline registers
// would change the protocol, and faster clocks do not let the FSM answer
// any sooner.
//
// The example builds the controller, shows that its critical path is the
// state loop, contrasts it with a datapath of the same logic depth that
// pipelines beautifully, and quantifies the best-depth difference with
// the workload model.
package main

import (
	"fmt"
	"log"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/pipeline"
	"repro/internal/sta"
)

func main() {
	lib := cell.RichASIC()

	busif, err := circuits.BusInterface(lib, 16, 8)
	if err != nil {
		log.Fatal(err)
	}
	r, err := sta.Analyze(busif, sta.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := r.MinCycle(sta.ASICClocking())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bus interface (%d state bits):\n", busif.NumRegs())
	fmt.Printf("  %v\n", rep)
	fmt.Printf("  critical path ends at a state register: the loop state -> logic -> state.\n")
	fmt.Printf("  cutting this loop with pipeline registers would delay grant decisions by\n")
	fmt.Printf("  a cycle and break the protocol — there is nothing to overlap, because\n")
	fmt.Printf("  every cycle consumes fresh request inputs (the paper's section 4.1 case).\n\n")

	// A datapath with comparable logic depth, by contrast:
	dp, err := circuits.DatapathComb(lib, 16, 2)
	if err != nil {
		log.Fatal(err)
	}
	base, err := sta.Analyze(dp, sta.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("datapath with %.0f FO4 of parallel work:\n", base.CombFO4())
	for _, stages := range []int{1, 2, 4} {
		pr, _, err := pipeline.Evaluate(dp, pipeline.Options{
			Stages: stages, Seq: lib.DefaultSeq(2), Method: pipeline.BalancedDelay,
		}, sta.ASICClocking(), false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d stages: cycle %5.1f FO4, speedup %.2fx\n", stages, pr.Cycle.FO4(), pr.Speedup)
	}

	fmt.Println("\nworkload model (section 4.1): best pipeline depth under a")
	fmt.Println("cycle model of comb/n + 6 FO4 overhead, max 16 stages:")
	cycleAt := func(n int) float64 { return float64(base.CombFO4())/float64(n) + 6 }
	for _, w := range []struct {
		name string
		wl   pipeline.Workload
	}{
		{"streaming DSP", pipeline.DSPWorkload()},
		{"integer code", pipeline.IntegerWorkload()},
		{"bus interface", pipeline.BusInterfaceWorkload()},
	} {
		depth, tput := w.wl.BestDepth(16, cycleAt)
		fmt.Printf("  %-14s best at %2d stages (%.2fx ops/s) — %v\n", w.name, depth, tput, w.wl)
	}
}
