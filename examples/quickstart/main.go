// Quickstart: build a circuit, run it through an ASIC flow and a custom
// flow, and print the resulting clock speeds — the toolkit's one-screen
// introduction to the ASIC-vs-custom gap.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// A 16-bit wide, four-slice-deep datapath: enough logic (~110 FO4)
	// to pipeline meaningfully.
	design := core.DatapathDesign(16, 4)

	// Three methodologies, from the paper's "average ASIC" to the
	// Alpha-class custom flow.
	flows := []core.Methodology{
		core.TypicalASIC2000(),
		core.BestPracticeASIC(),
		core.FullCustom(),
	}

	fmt.Printf("design: %s\n\n", design.Name)
	fmt.Printf("%-20s %10s %12s %10s %12s\n",
		"methodology", "FO4/cycle", "nominal MHz", "rating", "shipped MHz")
	var first float64
	for _, m := range flows {
		ev, err := core.Evaluate(design, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %10.1f %12.0f %10.2f %12.0f\n",
			m.Name, ev.FO4PerCycle, ev.NominalMHz, ev.RatingMult, ev.ShippedMHz)
		if first == 0 {
			first = ev.ShippedMHz
		} else if m.Name == "full-custom" {
			fmt.Printf("\nfull-custom over typical ASIC: %.1fx — the paper's section 2 gap,\n", ev.ShippedMHz/first)
			fmt.Println("decomposed factor by factor by `go run ./cmd/gapreport`.")
		}
	}
}
