// Binning: the economics behind the paper's section 8. A fab line
// produces a spread of die speeds; an ASIC vendor quotes the guard-banded
// worst case and leaves the distribution's upside on the table, while a
// custom vendor tests and bins every part, sells the fast tail at a
// premium, and down-bins to meet demand. This example samples a line,
// builds the bin table, and prices the difference.
package main

import (
	"fmt"

	"repro/internal/procvar"
)

func main() {
	const dies = 50000
	line := procvar.NewProcess()
	speeds := line.Sample(dies, 2026)
	rep := procvar.Analyze(speeds)

	fmt.Println("one fabrication line, 50k dies of the same design:")
	fmt.Printf("  %v\n\n", rep)

	// The ASIC path: one speed grade at the rated worst case.
	fmt.Printf("ASIC vendor: every part sold as %.2f (worst-case quote).\n", rep.Rated)
	fmt.Printf("  silicon left on the table: median die is %.0f%% faster than its label.\n\n",
		100*rep.TypGain)

	// The custom path: test, bin, price. Revenue in arbitrary units
	// where a nominal-speed part is worth 1.0 and value scales
	// superlinearly with clock (fast parts command premiums).
	floors := []float64{0.75, 0.85, 0.95, 1.05}
	bins := procvar.SpeedBin(speeds, floors)
	price := func(speed float64) float64 {
		if speed == 0 {
			return 0
		}
		return speed * speed // premium grows with the square of speed
	}
	fmt.Println("custom vendor: tested and binned —")
	totalRevenue := 0.0
	for i, b := range bins {
		label := "discard"
		p := 0.0
		if i > 0 {
			label = fmt.Sprintf("grade %.2f", b.MinSpeed)
			p = price(b.MinSpeed)
		}
		revenue := float64(b.Count) * p
		totalRevenue += revenue
		fmt.Printf("  %-11s %6d dies (%5.1f%%)  price %.2f  revenue %8.0f\n",
			label, b.Count, 100*b.Frac, p, revenue)
	}
	asicRevenue := float64(dies) * price(rep.Rated)
	fmt.Printf("\nrevenue: binned %.0f vs single-grade %.0f — %.1fx from the same wafers.\n",
		totalRevenue, asicRevenue, totalRevenue/asicRevenue)
	fmt.Println("this margin is why custom vendors fund the testing, and why the fastest")
	fmt.Println("bins (the 21264A's 750+ MHz parts) exist at all; the ASIC worst-case")
	fmt.Println("quote is the same silicon wearing a pessimistic label (section 8.3).")

	// Down-binning: when demand for slow grades outstrips their natural
	// yield, fast parts are sold under slow labels — the paper's remark
	// that over-clockable chips are evidence of down-binning.
	fastFrac := 0.0
	for i, b := range bins {
		if i >= 3 {
			fastFrac += b.Frac
		}
	}
	fmt.Printf("\n%.0f%% of dies qualify above grade %.2f; any sold at lower grades run\n",
		100*fastFrac, floors[2])
	fmt.Println("with headroom — exactly the parts hobbyists over-clock.")
}
