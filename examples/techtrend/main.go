// Techtrend: the paper's closing observation (section 8.3) — ASIC
// libraries refresh across and within technology generations, and a
// refreshed ASIC process (IBM's 0.18 um SA-27E class, FO4 ~57 ps) is
// close in raw speed to the previous generation's high-speed custom
// process (0.25 um at FO4 75 ps). ASICs retarget to new processes almost
// for free, while a custom design needs its transistors resized and
// circuits reworked; this portability is the ASIC side's structural
// advantage.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/procvar"
	"repro/internal/units"
)

func main() {
	design := core.DatapathDesign(16, 4)

	fmt.Println("the same best-practice ASIC design, retargeted across processes:")
	fmt.Printf("%-36s %8s %10s %12s\n", "process", "FO4", "nominal", "shipped")
	flows := []struct {
		name string
		p    units.Process
		fab  procvar.Components
	}{
		{"ASIC 0.25um (ramp fab)", units.ASIC025, procvar.NewProcess()},
		{"ASIC 0.25um (mature fab)", units.ASIC025, procvar.MatureProcess()},
		{"ASIC 0.18um refresh (SA-27E class)", units.ASIC018, procvar.MatureProcess()},
	}
	var asic025, asic018 float64
	for _, f := range flows {
		m := core.BestPracticeASIC()
		m.Process = f.p
		m.Fab = f.fab
		ev, err := core.Evaluate(design, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %5.0fps %7.0f MHz %9.0f MHz\n",
			f.name, f.p.FO4Picoseconds(), ev.NominalMHz, ev.ShippedMHz)
		switch f.p.Name {
		case units.ASIC025.Name:
			asic025 = ev.ShippedMHz
		case units.ASIC018.Name:
			asic018 = ev.ShippedMHz
		}
	}

	custom := core.FullCustom()
	ev, err := core.Evaluate(design, custom)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-36s %5.0fps %7.0f MHz %9.0f MHz\n",
		"full custom 0.25um (reference)", custom.Process.FO4Picoseconds(), ev.NominalMHz, ev.ShippedMHz)

	fmt.Printf("\nretargeting 0.25 -> 0.18 um bought the ASIC %.1fx for a library swap;\n", asic018/asic025)
	fmt.Printf("the refreshed ASIC reaches %.0f%% of the 0.25um custom design's clock.\n",
		100*asic018/ev.ShippedMHz)
	fmt.Println("the custom design must be re-engineered to move at all — the paper's")
	fmt.Println("point that easy process migration is the ASIC methodology's counterweight.")

	fmt.Println("\nwithin one generation, the same fab line drifts (section 8.1.1):")
	fmt.Printf("%8s %10s %10s %10s\n", "month", "rated", "median", "fast")
	for _, mo := range []float64{0, 6, 12, 24, 36} {
		rep := procvar.Analyze(procvar.ProcessAt(mo).Sample(20000, 11))
		fmt.Printf("%8.0f %10.2f %10.2f %10.2f\n", mo, rep.Rated, rep.Median, rep.Fast)
	}
	fmt.Printf("full generation range (end fast vs ramp slow): +%.0f%% (paper: 50-60%%)\n",
		100*procvar.GenerationRange(20000, 7))
}
