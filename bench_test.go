package repro

// Benchmark harness: one testing.B benchmark per experiment (E1-E9, see
// DESIGN.md), reporting the measured quantities via b.ReportMetric so the
// numbers appear alongside the timing in `go test -bench`. The Ablation
// benchmarks exercise the design choices DESIGN.md flags: cut method,
// repeater insertion, snap strategy, and mapping objective.

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/cell"
	"repro/internal/chips"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/dynlogic"
	"repro/internal/jobs"
	"repro/internal/pipeline"
	"repro/internal/place"
	"repro/internal/procvar"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/units"
	"repro/internal/wire"
)

// BenchmarkE1_SpeedSurvey regenerates the section 2 survey comparison:
// methodology endpoints vs the published chips.
func BenchmarkE1_SpeedSurvey(b *testing.B) {
	design := core.DatapathDesign(16, 4)
	var best, custom core.Evaluation
	for i := 0; i < b.N; i++ {
		var err error
		best, err = core.Evaluate(design, core.BestPracticeASIC())
		if err != nil {
			b.Fatal(err)
		}
		custom, err = core.Evaluate(design, core.FullCustom())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(best.ShippedMHz, "bestASIC_MHz")
	b.ReportMetric(custom.ShippedMHz, "custom_MHz")
	b.ReportMetric(chips.Gap(chips.IBMPowerPC1GHz, chips.TypicalASIC), "survey_gap_x")
}

// BenchmarkE2_FactorLadder regenerates the section 3 factor table.
func BenchmarkE2_FactorLadder(b *testing.B) {
	var l core.Ladder
	for i := 0; i < b.N; i++ {
		var err error
		l, err = core.FactorLadder(core.DatapathDesign(16, 4), 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range l.Steps {
		b.ReportMetric(s.Mult, s.Name+"_x")
	}
	b.ReportMetric(l.Total(), "total_x")
}

// BenchmarkE3_Pipelining regenerates the section 4 pipelining speedups.
func BenchmarkE3_Pipelining(b *testing.B) {
	lib := cell.RichASIC()
	n, err := circuits.DatapathComb(lib, 16, 4)
	if err != nil {
		b.Fatal(err)
	}
	var rep pipeline.Report
	for i := 0; i < b.N; i++ {
		rep, _, err = pipeline.Evaluate(n, pipeline.Options{
			Stages: 5, Seq: lib.DefaultSeq(2), Method: pipeline.BalancedDelay,
		}, sta.ASICClocking(), false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Speedup, "speedup5_x")
	b.ReportMetric(100*rep.OverheadFrac, "overhead_pct")
	b.ReportMetric(rep.Cycle.FO4(), "cycle_FO4")
}

// BenchmarkE4_SkewLatch regenerates the section 4.1 skew comparison.
func BenchmarkE4_SkewLatch(b *testing.B) {
	lib := cell.RichASIC()
	n, err := circuits.DatapathComb(lib, 16, 4)
	if err != nil {
		b.Fatal(err)
	}
	opts := pipeline.Options{Stages: 5, Seq: lib.DefaultSeq(2), Method: pipeline.BalancedDelay}
	var gain float64
	for i := 0; i < b.N; i++ {
		asic, _, err := pipeline.Evaluate(n, opts, sta.ASICClocking(), false)
		if err != nil {
			b.Fatal(err)
		}
		custom, _, err := pipeline.Evaluate(n, opts, sta.CustomClocking(), false)
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(asic.Cycle) / float64(custom.Cycle)
	}
	b.ReportMetric(gain, "skew_gain_x")
}

// BenchmarkE5_Floorplan regenerates the section 5 floorplanning study on
// a 100 mm^2 die.
func BenchmarkE5_Floorplan(b *testing.B) {
	lib := cell.RichASIC()
	wm := wire.NewModel(units.ASIC025)
	die := place.Die{SideMM: 10}
	var speedup float64
	for i := 0; i < b.N; i++ {
		n, err := circuits.DatapathChain(lib, 16, 8)
		if err != nil {
			b.Fatal(err)
		}
		measure := func(q place.Quality, seed int64) float64 {
			pl := place.Floorplan(n, die, q, seed)
			pl.Annotate(n, place.AnnotateOptions{WireModel: wm, Repeaters: true, LocalMM: 0.05})
			if err := synth.SelectDrives(n, lib, nil); err != nil {
				b.Fatal(err)
			}
			r, err := sta.Analyze(n, sta.Options{})
			if err != nil {
				b.Fatal(err)
			}
			return float64(r.WorstComb)
		}
		speedup = measure(place.Naive, 99) / measure(place.Careful, 1)
	}
	b.ReportMetric(100*(speedup-1), "speedup_pct")
}

// BenchmarkE6_Libraries regenerates the section 6 library-richness and
// sizing comparisons.
func BenchmarkE6_Libraries(b *testing.B) {
	rich := cell.RichASIC()
	two := cell.RestrictDrives(rich, 1, 4)
	custom := cell.Custom()
	wl := &wire.LoadModel{M: wire.NewModel(units.ASIC025), BlockAreaMM2: 1}

	delay := func(lib *cell.Library) float64 {
		ad, err := circuits.CarryLookahead(lib, 32)
		if err != nil {
			b.Fatal(err)
		}
		m, err := synth.Map(ad.N, lib, synth.MapOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := synth.SelectDrives(m, lib, wl); err != nil {
			b.Fatal(err)
		}
		if _, err := synth.InsertBuffers(m, lib); err != nil {
			b.Fatal(err)
		}
		if err := synth.SelectDrives(m, lib, nil); err != nil {
			b.Fatal(err)
		}
		r, err := sta.Analyze(m, sta.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return float64(r.WorstComb)
	}

	var twoPenalty, snapPenalty, tilos float64
	for i := 0; i < b.N; i++ {
		twoPenalty = delay(two)/delay(rich) - 1

		ad, err := circuits.CarryLookahead(custom, 32)
		if err != nil {
			b.Fatal(err)
		}
		m, err := synth.Map(ad.N, custom, synth.MapOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := synth.SelectDrives(m, custom, wl); err != nil {
			b.Fatal(err)
		}
		res, err := sizing.ContinuousTILOS(m, custom, sizing.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		tilos = res.Speedup()
		snapped, err := sizing.SnapToLibrary(m, rich, sizing.SnapNearest)
		if err != nil {
			b.Fatal(err)
		}
		snapPenalty = float64(snapped)/float64(res.After) - 1
	}
	b.ReportMetric(100*twoPenalty, "twodrive_pct")
	b.ReportMetric(100*snapPenalty, "snap_pct")
	b.ReportMetric(tilos, "tilos_x")
}

// BenchmarkE7_Domino regenerates the section 7 domino conversion.
func BenchmarkE7_Domino(b *testing.B) {
	var res dynlogic.Result
	for i := 0; i < b.N; i++ {
		ad, err := circuits.CarryLookahead(cell.RichASIC(), 32)
		if err != nil {
			b.Fatal(err)
		}
		res, err = dynlogic.Dominoize(ad.N, dynlogic.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup(), "domino_x")
	b.ReportMetric(float64(res.Converted), "converted")
}

// BenchmarkE8_ProcessVariation regenerates the section 8 Monte Carlo.
func BenchmarkE8_ProcessVariation(b *testing.B) {
	var rep procvar.SpeedReport
	var gap, adv float64
	for i := 0; i < b.N; i++ {
		young := procvar.NewProcess().Sample(20000, 1)
		mature := procvar.MatureProcess().Sample(20000, 2)
		second := procvar.SecondTierFab().Sample(20000, 3)
		rep = procvar.Analyze(young)
		gap = procvar.FabToFabGap(mature, second)
		adv = procvar.CustomAdvantage(mature, second)
	}
	b.ReportMetric(100*rep.TypGain, "typ_gain_pct")
	b.ReportMetric(100*rep.FastGain, "fast_gain_pct")
	b.ReportMetric(100*rep.Spread, "spread_pct")
	b.ReportMetric(100*gap, "fabgap_pct")
	b.ReportMetric(100*adv, "custom_adv_pct")
}

// BenchmarkE9_Residual regenerates the section 9 residual arithmetic.
func BenchmarkE9_Residual(b *testing.B) {
	var r1, r2 float64
	for i := 0; i < b.N; i++ {
		l, err := core.FactorLadder(core.DatapathDesign(16, 4), 1)
		if err != nil {
			b.Fatal(err)
		}
		r1 = l.Residual(core.StepPipelining, core.StepProcess)
		r2 = l.Residual(core.StepPipelining, core.StepProcess, core.StepDomino)
	}
	b.ReportMetric(r1, "resid_pipe_proc_x")
	b.ReportMetric(r2, "resid_plus_domino_x")
}

// BenchmarkAblation_CutMethod compares the balanced-delay cut against
// naive level slicing (DESIGN.md ablation).
func BenchmarkAblation_CutMethod(b *testing.B) {
	lib := cell.RichASIC()
	n, err := circuits.DatapathComb(lib, 16, 4)
	if err != nil {
		b.Fatal(err)
	}
	var bal, nai pipeline.Report
	for i := 0; i < b.N; i++ {
		bal, _, err = pipeline.Evaluate(n, pipeline.Options{
			Stages: 5, Seq: lib.DefaultSeq(2), Method: pipeline.BalancedDelay,
		}, sta.ASICClocking(), false)
		if err != nil {
			b.Fatal(err)
		}
		nai, _, err = pipeline.Evaluate(n, pipeline.Options{
			Stages: 5, Seq: lib.DefaultSeq(2), Method: pipeline.NaiveLevels,
		}, sta.ASICClocking(), false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bal.Cycle.FO4(), "balanced_FO4")
	b.ReportMetric(nai.Cycle.FO4(), "naive_FO4")
}

// BenchmarkAblation_Repeaters measures repeater insertion on the
// floorplanned chain (on vs off).
func BenchmarkAblation_Repeaters(b *testing.B) {
	lib := cell.RichASIC()
	wm := wire.NewModel(units.ASIC025)
	var on, off float64
	for i := 0; i < b.N; i++ {
		n, err := circuits.DatapathChain(lib, 16, 8)
		if err != nil {
			b.Fatal(err)
		}
		pl := place.Floorplan(n, place.Die{SideMM: 10}, place.Naive, 5)
		measure := func(rep bool) float64 {
			pl.Annotate(n, place.AnnotateOptions{WireModel: wm, Repeaters: rep, LocalMM: 0.05})
			r, err := sta.Analyze(n, sta.Options{})
			if err != nil {
				b.Fatal(err)
			}
			return r.CombFO4()
		}
		off = measure(false)
		on = measure(true)
	}
	b.ReportMetric(off, "noRepeaters_FO4")
	b.ReportMetric(on, "repeaters_FO4")
}

// BenchmarkAblation_SnapModes compares nearest vs round-up discrete
// snapping after continuous sizing.
func BenchmarkAblation_SnapModes(b *testing.B) {
	custom := cell.Custom()
	rich := cell.RichASIC()
	var nearest, up units.Tau
	for i := 0; i < b.N; i++ {
		ad, err := circuits.CarryLookahead(custom, 16)
		if err != nil {
			b.Fatal(err)
		}
		wl := wire.LoadModel{M: wire.NewModel(units.ASIC025), BlockAreaMM2: 1}
		for _, nt := range ad.N.Nets() {
			if fo := len(nt.Sinks) + len(nt.RegSinks); fo > 0 {
				nt.WireCap = wl.NetCap(fo)
			}
		}
		if _, err := sizing.ContinuousTILOS(ad.N, custom, sizing.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
		clone := ad.N.Clone()
		nearest, err = sizing.SnapToLibrary(ad.N, rich, sizing.SnapNearest)
		if err != nil {
			b.Fatal(err)
		}
		up, err = sizing.SnapToLibrary(clone, rich, sizing.SnapUp)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(nearest.FO4(), "nearest_FO4")
	b.ReportMetric(up.FO4(), "roundup_FO4")
}

// BenchmarkAblation_MapObjective compares min-delay vs min-area covering.
func BenchmarkAblation_MapObjective(b *testing.B) {
	lib := cell.RichASIC()
	var dArea, dDelay, aArea, aDelay float64
	for i := 0; i < b.N; i++ {
		ad, err := circuits.CarryLookahead(lib, 32)
		if err != nil {
			b.Fatal(err)
		}
		md, err := synth.Map(ad.N, lib, synth.MapOptions{Objective: synth.MinDelay})
		if err != nil {
			b.Fatal(err)
		}
		ma, err := synth.Map(ad.N, lib, synth.MapOptions{Objective: synth.MinArea})
		if err != nil {
			b.Fatal(err)
		}
		rd, err := sta.Analyze(md, sta.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ra, err := sta.Analyze(ma, sta.Options{})
		if err != nil {
			b.Fatal(err)
		}
		dArea, dDelay = md.TotalArea(), rd.CombFO4()
		aArea, aDelay = ma.TotalArea(), ra.CombFO4()
	}
	b.ReportMetric(dDelay, "minDelay_FO4")
	b.ReportMetric(dArea, "minDelay_area")
	b.ReportMetric(aDelay, "minArea_FO4")
	b.ReportMetric(aArea, "minArea_area")
}

// BenchmarkServiceThroughput measures end-to-end evaluations per second
// through the internal/jobs pool at different worker counts, cold
// (distinct specs, every submission runs the flow) and warm (one spec,
// everything after the first submission is a cache hit). This is the
// scaling story for the gapd service: warm throughput is bounded by the
// cache lookup, cold throughput by NumCPU-way flow evaluation.
func BenchmarkServiceThroughput(b *testing.B) {
	workerCounts := []int{1, runtime.NumCPU(), 2 * runtime.NumCPU()}
	for _, workers := range workerCounts {
		for _, warm := range []bool{false, true} {
			label := fmt.Sprintf("workers=%d/cold", workers)
			if warm {
				label = fmt.Sprintf("workers=%d/warm", workers)
			}
			b.Run(label, func(b *testing.B) {
				pool := jobs.NewPool(jobs.Options{
					Workers:      workers,
					Parallelism:  1,
					CacheEntries: 8192,
				})
				spec := func(i int) jobs.Spec {
					s := jobs.Spec{
						Kind:        jobs.KindEvaluate,
						Design:      jobs.DesignSpec{Name: "datapath", Width: 8, Depth: 2},
						Methodology: jobs.MethSpec{Base: "typical"},
					}
					if !warm {
						// Distinct seeds defeat the cache so every
						// submission runs the full flow.
						s.Seed = int64(i)
					}
					return s
				}
				if warm {
					// Populate the single cache entry up front.
					if _, err := pool.Do(context.Background(), spec(0)); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				var next atomic.Int64
				b.SetParallelism(workers)
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						i := int(next.Add(1))
						if _, err := pool.Do(context.Background(), spec(i)); err != nil {
							b.Fatal(err)
						}
					}
				})
				b.StopTimer()
				elapsed := b.Elapsed().Seconds()
				if elapsed > 0 {
					b.ReportMetric(float64(b.N)/elapsed, "jobs/s")
				}
			})
		}
	}
}

// BenchmarkSTA measures raw analyzer throughput on a mapped 32-bit CLA.
func BenchmarkSTA(b *testing.B) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 32)
	if err != nil {
		b.Fatal(err)
	}
	m, err := synth.Map(ad.N, lib, synth.MapOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sta.Analyze(m, sta.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTechMap measures mapper throughput.
func BenchmarkTechMap(b *testing.B) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Map(ad.N, lib, synth.MapOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
