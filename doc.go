// Package repro reproduces Chinnery & Keutzer, "Closing the Gap Between
// ASIC and Custom: An ASIC Perspective" (DAC 2000), as an executable EDA
// toolkit: standard-cell libraries, gate-level netlists and circuit
// generators, static timing analysis, technology mapping, gate sizing,
// floorplanning with a BACPAC-style interconnect model, pipelining,
// domino-logic conversion, and process-variation Monte Carlo — plus the
// paper's factor-decomposition gap model built on top (internal/core).
//
// The experiment suite in experiments_test.go and bench_test.go
// regenerates every quantified claim in the paper; EXPERIMENTS.md records
// paper-vs-measured values. See README.md for a tour.
package repro
