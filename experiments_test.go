package repro

// Integration tests: one test per experiment in DESIGN.md (E1-E9), each
// asserting the *shape* of the corresponding paper claim — who wins, by
// roughly what factor — on the simulated substrate, and logging the
// measured table for EXPERIMENTS.md.

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/chips"
	"repro/internal/circuits"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dynlogic"
	"repro/internal/netlist"
	"repro/internal/pipeline"
	"repro/internal/place"
	"repro/internal/procvar"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/units"
	"repro/internal/wire"
)

// E1 — section 2: the published survey spans a 6-8x custom/ASIC gap, and
// our methodology model reproduces the endpoints: a best-practice ASIC
// flow lands in the Xtensa class and the custom flow in the Alpha class.
func TestE1_SpeedSurvey(t *testing.T) {
	ibmGap := chips.Gap(chips.IBMPowerPC1GHz, chips.TypicalASIC)
	alphaGap := chips.Gap(chips.Alpha21264A, chips.TypicalASIC)
	t.Logf("survey gaps: IBM %.1fx, Alpha %.1fx (paper: 6-8x)", ibmGap, alphaGap)
	if ibmGap < 6 || ibmGap > 8.5 || alphaGap < 5 || alphaGap > 7 {
		t.Fatalf("survey gaps out of band: %.1f / %.1f", ibmGap, alphaGap)
	}

	design := core.DatapathDesign(16, 4)
	best, err := core.Evaluate(design, core.BestPracticeASIC())
	if err != nil {
		t.Fatal(err)
	}
	custom, err := core.Evaluate(design, core.FullCustom())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("model endpoints: best-ASIC %.0f MHz (Xtensa 250), custom %.0f MHz (Alpha 750, IBM 1000)",
		best.ShippedMHz, custom.ShippedMHz)
	if best.ShippedMHz < 180 || best.ShippedMHz > 450 {
		t.Errorf("best-practice ASIC = %.0f MHz, want Xtensa class (180-450)", best.ShippedMHz)
	}
	if custom.ShippedMHz < 550 || custom.ShippedMHz > 1100 {
		t.Errorf("full custom = %.0f MHz, want Alpha/IBM class (550-1100)", custom.ShippedMHz)
	}
	if custom.ShippedMHz/best.ShippedMHz < 1.5 {
		t.Error("custom should clearly outrun best-practice ASIC")
	}
}

// E2 — section 3: the factor ladder. Pipelining and process dominate;
// the stacked total is of the paper's 18x order (ours lands above it, as
// the paper's own sub-claims compound past their summary estimates).
func TestE2_FactorLadder(t *testing.T) {
	l, err := core.FactorLadder(core.DatapathDesign(16, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", l)
	if total := l.Total(); total < 15 || total > 70 {
		t.Errorf("ladder total = %.1fx, want 15-70x (paper ceiling: 17.8x)", total)
	}
	for _, s := range l.Steps {
		if s.Mult <= 1 {
			t.Errorf("factor %s = %.2f, every knob must help", s.Name, s.Mult)
		}
	}
}

// E3 — section 4: FO4 depths and pipelining speedups. The survey rows'
// FO4-per-cycle imply their clocks (the paper's footnote-1 rule), and a
// 5-stage balanced cut of a deep datapath yields the 3.8x-class speedup.
func TestE3_Pipelining(t *testing.T) {
	for _, c := range []chips.Chip{chips.IBMPowerPC1GHz, chips.TensilicaXtensa} {
		pred := c.PredictedMHz()
		ratio := pred / c.ReportedMHz
		t.Logf("%s: %.0f FO4/cycle -> %.0f MHz predicted vs %.0f reported", c.Name, c.FO4PerCycle, pred, c.ReportedMHz)
		if ratio < 0.85 || ratio > 1.20 {
			t.Errorf("%s FO4 calibration off by %.2fx", c.Name, ratio)
		}
	}

	lib := cell.RichASIC()
	n, err := circuits.DatapathComb(lib, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := pipeline.Evaluate(n, pipeline.Options{
		Stages: 5, Seq: lib.DefaultSeq(2), Method: pipeline.BalancedDelay,
	}, sta.ASICClocking(), false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("5-stage ASIC pipeline: cycle %.1f FO4, speedup %.2fx, overhead %.0f%% (paper: 3.8x at ~30%%)",
		rep.Cycle.FO4(), rep.Speedup, 100*rep.OverheadFrac)
	if rep.Speedup < 3.0 || rep.Speedup > 4.6 {
		t.Errorf("5-stage speedup = %.2f, want 3.0-4.6 (paper: ~3.8)", rep.Speedup)
	}
	if rep.OverheadFrac < 0.15 || rep.OverheadFrac > 0.45 {
		t.Errorf("overhead fraction = %.0f%%, want 15-45%% (paper: ~30%%)", 100*rep.OverheadFrac)
	}

	// Four custom stages at lower overhead: the IBM point (~3.4x).
	repC, _, err := pipeline.Evaluate(n, pipeline.Options{
		Stages: 4, Seq: cell.CustomPulseLatch(2), Method: pipeline.BalancedDelay,
	}, sta.CustomClocking(), false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("4-stage custom pipeline: speedup %.2fx, overhead %.0f%% (paper: 3.4x at ~20%%)",
		repC.Speedup, 100*repC.OverheadFrac)
	if repC.Speedup < 2.7 || repC.Speedup > 4.2 {
		t.Errorf("4-stage custom speedup = %.2f, want 2.7-4.2 (paper: ~3.4)", repC.Speedup)
	}
	if repC.OverheadFrac > rep.OverheadFrac {
		t.Error("custom sequencing overhead must undercut ASIC overhead")
	}
}

// E4 — section 4.1: skew and latch overheads. 10% vs 5% skew is worth
// about 10% in speed; custom latches take a mid-teens percent of a short
// custom cycle (the Alpha's 15%).
func TestE4_SkewLatch(t *testing.T) {
	lib := cell.RichASIC()
	n, err := circuits.DatapathComb(lib, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := pipeline.Options{Stages: 5, Seq: lib.DefaultSeq(2), Method: pipeline.BalancedDelay}
	asic, _, err := pipeline.Evaluate(n, opts, sta.ASICClocking(), false)
	if err != nil {
		t.Fatal(err)
	}
	custom, _, err := pipeline.Evaluate(n, opts, sta.CustomClocking(), false)
	if err != nil {
		t.Fatal(err)
	}
	gain := float64(asic.Cycle) / float64(custom.Cycle)
	t.Logf("skew-only gain (10%% -> 5%%): %.3fx (paper: ~1.10x comparing absolute skews)", gain)
	if gain < 1.04 || gain > 1.12 {
		t.Errorf("skew gain = %.3f, want 1.04-1.12", gain)
	}

	// Latch share of a custom-depth cycle.
	pulse := cell.CustomPulseLatch(2)
	cycle := units.FromFO4(15) // Alpha-class cycle
	share := float64(pulse.Overhead()) / float64(cycle)
	t.Logf("pulse-latch share of a 15 FO4 cycle: %.0f%% (paper: 15%% in the 21264)", 100*share)
	if share < 0.05 || share > 0.25 {
		t.Errorf("latch share = %.0f%%, want 5-25%%", 100*share)
	}

	// The skew fractions themselves are not assumptions: an H-tree over
	// a 100 mm^2 die with 40k registers derives them. The synthesized
	// tree at a typical-ASIC cycle lands near the 10% budget; the tuned
	// custom tree at an Alpha-class cycle lands near 5%.
	wm := wire.NewModel(units.ASIC025)
	asicTree := clock.Build(wm, 10, 40000, clock.ASICTree())
	customTree := clock.Build(wire.NewModel(units.Custom025), 10, 40000, clock.CustomTree())
	fa := asicTree.Clocking(units.FromFO4(82)).SkewFrac
	fc := customTree.Clocking(units.FromFO4(15)).SkewFrac
	t.Logf("derived skew: ASIC tree %.1f%% of an 82 FO4 cycle (assumed 10%%), custom tree %.1f%% of 15 FO4 (assumed 5%%)",
		100*fa, 100*fc)
	if fa < 0.05 || fa > 0.18 {
		t.Errorf("derived ASIC skew = %.0f%%, inconsistent with the 10%% budget", 100*fa)
	}
	if fc < 0.02 || fc > 0.10 {
		t.Errorf("derived custom skew = %.0f%%, inconsistent with the 5%% budget", 100*fc)
	}
}

// E5 — section 5: careful floorplanning of a critical path spread over a
// 100 mm^2 die buys up to ~25%.
func TestE5_Floorplan(t *testing.T) {
	lib := cell.RichASIC()
	n, err := circuits.DatapathChain(lib, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	die := place.Die{SideMM: 10}
	wm := wire.NewModel(units.ASIC025)

	measure := func(q place.Quality, seed int64) float64 {
		pl := place.Floorplan(n, die, q, seed)
		pl.Annotate(n, place.AnnotateOptions{WireModel: wm, Repeaters: true, LocalMM: 0.05})
		if err := synth.SelectDrives(n, lib, nil); err != nil {
			t.Fatal(err)
		}
		r, err := sta.Analyze(n, sta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.WorstComb)
	}
	naive := measure(place.Naive, 99)
	careful := measure(place.Careful, 1)
	speedup := naive / careful
	t.Logf("100mm^2 die: naive %.1f FO4 vs careful %.1f FO4 -> %.0f%% speedup (paper: up to 25%%)",
		units.Tau(naive).FO4(), units.Tau(careful).FO4(), 100*(speedup-1))
	if speedup < 1.03 || speedup > 1.6 {
		t.Errorf("floorplanning speedup = %.2f, want 1.03-1.6 (paper: up to 1.25)", speedup)
	}
}

// E6 — section 6: library and sizing claims. Two-drive libraries cost
// ~25%; discrete snap against continuous sizing costs single digits on a
// rich library; critical-path sizing and resynthesis buy ~20%.
func TestE6_Libraries(t *testing.T) {
	rich := cell.RichASIC()
	two := cell.RestrictDrives(rich, 1, 4)
	custom := cell.Custom()

	build := func(lib *cell.Library) *netlist.Netlist {
		ad, err := circuits.CarryLookahead(lib, 32)
		if err != nil {
			t.Fatal(err)
		}
		m, err := synth.Map(ad.N, lib, synth.MapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wl := &wire.LoadModel{M: wire.NewModel(units.ASIC025), BlockAreaMM2: 1}
		if err := synth.SelectDrives(m, lib, wl); err != nil {
			t.Fatal(err)
		}
		if _, err := synth.InsertBuffers(m, lib); err != nil {
			t.Fatal(err)
		}
		if err := synth.SelectDrives(m, lib, nil); err != nil {
			t.Fatal(err)
		}
		return m
	}
	delay := func(n *netlist.Netlist) float64 {
		r, err := sta.Analyze(n, sta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.WorstComb)
	}

	dRich := delay(build(rich))
	dTwo := delay(build(two))
	twoPenalty := dTwo/dRich - 1
	t.Logf("two-drive library penalty: +%.0f%% (paper: ~25%%)", 100*twoPenalty)
	if twoPenalty < 0.10 || twoPenalty > 0.90 {
		t.Errorf("two-drive penalty = %.0f%%, want 10-90%%", 100*twoPenalty)
	}

	// Continuous sizing, then snap to the rich ladder: 2-7% class.
	nC := build(custom)
	res, err := sizing.ContinuousTILOS(nC, custom, sizing.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	snapped, err := sizing.SnapToLibrary(nC.Clone(), rich, sizing.SnapNearest)
	if err != nil {
		t.Fatal(err)
	}
	snapPenalty := float64(snapped)/float64(res.After) - 1
	t.Logf("discrete snap penalty on rich ladder: +%.1f%% (paper: 2-7%%)", 100*snapPenalty)
	if snapPenalty < -0.02 || snapPenalty > 0.15 {
		t.Errorf("snap penalty = %.1f%%, want 0-15%%", 100*snapPenalty)
	}

	// TILOS critical-path sizing gain (paper: 20% or more).
	t.Logf("TILOS critical-path sizing: %.2fx (paper: >= 1.2x)", res.Speedup())
	if res.Speedup() < 1.10 {
		t.Errorf("TILOS speedup = %.2f, want >= 1.10", res.Speedup())
	}
}

// E7 — section 7: domino logic. Combinational domino is 50-100% faster;
// converted sequential paths land near 1.5x.
func TestE7_Domino(t *testing.T) {
	if s := cell.DominoSpeedup(); s < 1.5 || s > 2.0 {
		t.Fatalf("modeled combinational domino speedup = %.2f, want 1.5-2.0", s)
	}
	ad, err := circuits.CarryLookahead(cell.RichASIC(), 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dynlogic.Dominoize(ad.N, dynlogic.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("domino on critical paths: %v (paper: ~1.5x sequential)", res)
	if s := res.Speedup(); s < 1.25 || s > 2.0 {
		t.Errorf("path domino speedup = %.2f, want 1.25-2.0", s)
	}
}

// E8 — section 8: process variation bands.
func TestE8_ProcessVariation(t *testing.T) {
	const dies = 20000
	young := procvar.NewProcess().Sample(dies, 1)
	mature := procvar.MatureProcess().Sample(dies, 2)
	second := procvar.SecondTierFab().Sample(dies, 3)

	ry := procvar.Analyze(young)
	t.Logf("young line: %v", ry)
	if ry.TypGain < 0.45 || ry.TypGain > 0.95 {
		t.Errorf("typical-over-rated = %.0f%%, want 45-95%% (paper: 60-70%%)", 100*ry.TypGain)
	}
	if ry.FastGain < 0.10 || ry.FastGain > 0.45 {
		t.Errorf("fast tail = %.0f%%, want 10-45%% (paper: 20-40%%)", 100*ry.FastGain)
	}
	if ry.Spread < 0.25 || ry.Spread > 0.55 {
		t.Errorf("spread = %.0f%%, want 25-55%% (paper: 30-40%%)", 100*ry.Spread)
	}
	gap := procvar.FabToFabGap(mature, second)
	t.Logf("fab-to-fab gap: +%.0f%% (paper: 20-25%%)", 100*gap)
	if gap < 0.15 || gap > 0.45 {
		t.Errorf("fab gap = %.0f%%, want 15-45%%", 100*gap)
	}
	adv := procvar.CustomAdvantage(mature, second)
	t.Logf("custom best vs ASIC rating: +%.0f%% (paper: ~90%%)", 100*adv)
	if adv < 0.6 || adv > 1.6 {
		t.Errorf("custom advantage = %.0f%%, want 60-160%%", 100*adv)
	}
}

// E10 — section 9's closing caveat: "viewed from the standpoint of area
// our results and conclusions would be significantly different." The
// custom flow buys its clock with silicon and watts: bigger drives,
// dual-rail domino, more registers, always-switching precharge nodes.
func TestE10_AreaPowerCaveat(t *testing.T) {
	d := core.DatapathDesign(16, 4)
	typ, err := core.Evaluate(d, core.TypicalASIC2000())
	if err != nil {
		t.Fatal(err)
	}
	custom, err := core.Evaluate(d, core.FullCustom())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("typical: %.0f MHz, %.4f mm2, %.4f W; custom: %.0f MHz, %.4f mm2, %.4f W",
		typ.ShippedMHz, typ.AreaMM2, typ.PowerW,
		custom.ShippedMHz, custom.AreaMM2, custom.PowerW)
	// Custom is dramatically faster but burns an order of magnitude
	// more power on the same function (cf. Alpha 90 W vs IBM 6.3 W vs
	// ASIC-class fractions of a watt).
	if custom.PowerW < 8*typ.PowerW {
		t.Errorf("custom power (%.4f W) should be >=8x typical (%.4f W)", custom.PowerW, typ.PowerW)
	}
	// And it spends more silicon than the typical flow's min-size cells.
	if custom.AreaMM2 < typ.AreaMM2 {
		t.Errorf("custom area (%.4f mm2) should not undercut the min-sized typical flow (%.4f mm2)",
			custom.AreaMM2, typ.AreaMM2)
	}
	// Energy per operation: the speed gap shrinks drastically when
	// normalized — the caveat's quantitative content.
	speedGap := custom.ShippedMHz / typ.ShippedMHz
	efficiencyGap := (custom.ShippedMHz / custom.PowerW) / (typ.ShippedMHz / typ.PowerW)
	t.Logf("speed gap %.1fx vs MHz/W gap %.1fx", speedGap, efficiencyGap)
	if efficiencyGap > speedGap/2 {
		t.Errorf("efficiency gap (%.1fx) should be far below the speed gap (%.1fx)", efficiencyGap, speedGap)
	}
}

// E9 — section 9: residuals. Pipelining and process explain most of the
// gap; dynamic logic takes another bite.
func TestE9_Residual(t *testing.T) {
	l, err := core.FactorLadder(core.DatapathDesign(16, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	r1 := l.Residual(core.StepPipelining, core.StepProcess)
	r2 := l.Residual(core.StepPipelining, core.StepProcess, core.StepDomino)
	t.Logf("residual after pipe+process: %.2fx (paper: 2-3x); after +domino: %.2fx (paper: ~1.6x)", r1, r2)
	if r1 < 1.5 || r1 > 6.5 {
		t.Errorf("residual = %.2f, want 1.5-6.5", r1)
	}
	if r2 >= r1 {
		t.Error("domino must shrink the residual")
	}
	// Ranking: the paper says pipelining and process dominate. Our
	// sizing/circuit rung bundles library richness with them-adjacent
	// effects (see EXPERIMENTS.md), so the assertable shape is:
	// pipelining is the single largest factor, and both pipelining and
	// process beat the paper's smaller factors (floorplanning, domino).
	mult := map[string]float64{}
	for _, s := range l.Steps {
		mult[s.Name] = s.Mult
	}
	for name, m := range mult {
		if name != core.StepPipelining && m > mult[core.StepPipelining] {
			t.Errorf("%s (%.2f) outranks pipelining (%.2f)", name, m, mult[core.StepPipelining])
		}
	}
	for _, small := range []string{core.StepFloorplan, core.StepDomino} {
		if mult[core.StepProcess] <= mult[small] {
			t.Errorf("process (%.2f) should outrank %s (%.2f)",
				mult[core.StepProcess], small, mult[small])
		}
	}
}
