# Developer entry points. `make tier1` is the gate every change must
# pass: formatting (gofmt -s), vet, gaplint, a full build, the test
# suite under the race detector (the concurrency proof for the gapd job
# engine), and the chaos suite (the failure proof: deterministic fault
# injection at every pool/stage seam, journal kill-and-restart recovery,
# overload shedding).
#
# `make lint` runs cmd/gaplint, the repo's own static-analysis pass
# (internal/analysis): determinism (no wall clock / global rand in the
# core evaluation packages), errtaxonomy (service-boundary errors wrap
# the typed taxonomy), ctxflow (incoming contexts propagate; no
# context.Background in ctx-receiving functions), metricname
# (registered metric names unique and snake_case module-wide),
# lockdiscipline (a field guarded by a mutex at a majority of access
# sites is guarded at every site; no bare-Lock early returns),
# goroutinelifecycle (every goroutine in the service packages has a
# provable shutdown path), and chanhygiene (no timer-per-iteration
# retry loops, closes of handed-in channels, double-close shapes, or
# receiverless sends). The driver fans (analyzer, package) units over a
# bounded worker pool; output is byte-identical at any worker count.
# Deliberate exceptions are annotated in the source as
#
#     //gaplint:allow <analyzer> — <reason>
#
# on the offending line or the line directly above it. The reason is
# mandatory, and an allow that no longer suppresses anything is itself
# a finding — stale annotations cannot accumulate. `make lint-audit`
# lists every allow in the module with its reason for review.

GO ?= go

.PHONY: tier1 fmt vet lint lint-audit build test race bench chaos chaos-net chaos-rolling chaos-cas chaos-scrub soak-cas fuzz gapd load-smoke

tier1: fmt vet lint build race load-smoke chaos chaos-net chaos-rolling chaos-cas chaos-scrub

fmt:
	@out=$$(gofmt -s -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt -s needed on:"; echo "$$out"; exit 1; \
	fi

lint:
	$(GO) run ./cmd/gaplint ./...

# Audit mode: list every //gaplint:allow directive in the module with
# the reason its author gave — one reviewable inventory of deliberate
# exceptions. Not a gate; reasonless allows already fail `make lint`.
lint-audit:
	$(GO) run ./cmd/gaplint -list-allows ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The chaos suite under the race detector: every fault schedule is a
# pure function of the fixed seed matrix {1, 7, 42} baked into the
# tests, so failures reproduce exactly. -count=1 defeats test caching —
# a chaos proof from a previous build proves nothing about this one.
# internal/cluster contributes the sharding chaos tests: a 3-node
# in-process cluster with the owner killed mid-run (fallback) or running
# slow (hedged), results byte-identical to the single-node reference.
chaos:
	$(GO) test -race -count=1 \
		-run 'TestChaos|TestKillAndRestart|TestWatchdog|TestBreaker|TestOverload|TestPerClient|TestHealthzDegrades' \
		./internal/jobs/ ./internal/serve/ ./internal/cluster/

# The network chaos suite under the race detector: deterministic
# netfault injection on every peer link (partitions, corruption, resets)
# plus the partition-tolerance machinery it exercises — result
# replication, digest rejection, anti-entropy repair, hedge-loser
# cancellation, deadline-driven hedge suppression, and flap damping.
chaos-net:
	$(GO) test -race -count=1 ./internal/netfault/
	$(GO) test -race -count=1 \
		-run 'TestChaosNet|TestHedgeLoser|TestDeadline|TestFlapDamping|TestResponseDigest|TestResults' \
		./internal/cluster/ ./internal/serve/

# The dynamic-membership chaos suite under the race detector: a 5-node
# gossip cluster survives a rolling restart (every node drained, killed,
# rejoined cold) losing zero completed results with byte-identical
# answers and zero recomputes, plus the membership edge cases — join
# during a partition, suspect refutation by incarnation bump, stale
# views rejected on rejoin, and the drain gate's no-new-admissions
# guarantee.
chaos-rolling:
	$(GO) test -race -count=1 ./internal/gossip/
	$(GO) test -race -count=1 \
		-run 'TestChaosRollingRestart|TestGossip' \
		./internal/cluster/

# The result-store chaos suite under the race detector: the tiered CAS
# (internal/cas) unit and crash tests, plus the pool-level drills — a
# cache-cold restart serving a corpus 4x the RAM cache with exactly zero
# recomputes and >90% combined-tier hits, a kill mid-segment-write
# recovered by torn-tail truncation, and the crash window between the
# CAS fsync and the journal's stored pointer. Seeds {1, 7, 42}.
chaos-cas:
	$(GO) test -race -count=1 ./internal/cas/
	$(GO) test -race -count=1 -run 'TestChaosCAS' ./internal/jobs/

# The storage-integrity chaos suite under the race detector: seeded
# bit-flips (body, address, and digest bytes) injected into live segment
# files under a running 3-node cluster. The scrubber must condemn every
# injected fault, the read path must repair each from the replica set
# (or recompute exactly once when no replica holds it), every answer
# stays byte-identical to the serial reference, and the counter chain —
# scrub_corrupt, cas_corrupt_reads, cluster_read_repaired,
# scrub_repaired — matches the injected fault count exactly. /healthz
# quarantine degradation rides along from internal/serve.
chaos-scrub:
	$(GO) test -race -count=1 \
		-run 'TestChaosScrub|TestReadRepair|TestHealthzDegradesOnUnrepairableQuarantine' \
		./internal/cluster/ ./internal/serve/

# The storage endurance drill (not part of tier1): a million-record
# churn of puts, supersedes, budget evictions, and compactions with the
# scrubber running against it, asserting index-vs-disk consistency
# (including across a reopen), a bounded dead-byte fraction, and that
# the scrubber never condemns healthy data. GAP_SOAK_RECORDS scales it.
soak-cas:
	GAP_SOAK=1 $(GO) test -count=1 -timeout 30m -run 'TestSoakCAS' -v ./internal/cas/

# Short fuzz passes over the hardened trust boundaries: the
# structural-Verilog reader, job-spec canonicalization, the peer
# response decoder (every byte a peer sends crosses it), the CAS
# segment-record decoder (every byte the boot scan and compaction read
# crosses it), and the scrubber's per-record verdict (which must detect
# every single-bit flip of a valid record and never panic on garbage).
# CI-sized; raise -fuzztime for a real hunt.
fuzz:
	$(GO) test ./internal/netlist/ -run '^$$' -fuzz FuzzReadVerilog -fuzztime 30s
	$(GO) test ./internal/jobs/ -run '^$$' -fuzz FuzzJobSpecCanonical -fuzztime 30s
	$(GO) test ./internal/cluster/ -run '^$$' -fuzz FuzzPeerResponseDecode -fuzztime 30s
	$(GO) test ./internal/cas/ -run '^$$' -fuzz FuzzSegmentDecode -fuzztime 30s
	$(GO) test ./internal/cas/ -run '^$$' -fuzz FuzzScrubRecord -fuzztime 30s

# The load-generator smoke gate: a seeded closed-loop gapload run over
# the mixed corpus against an in-process gapd (capped at 5 s), asserting
# the SLO-report invariants (count partitions, quantile monotonicity,
# cache accounting). Every committed BENCH_loadgen_*.json flows through
# the code path this locks down. -count=1 because a cached result proves
# nothing about this build.
load-smoke:
	$(GO) test -race -count=1 -run 'TestLoadSmoke' ./internal/loadgen/

gapd:
	$(GO) run ./cmd/gapd
