# Developer entry points. `make tier1` is the gate every change must
# pass: formatting, vet, a full build, and the test suite under the race
# detector (the concurrency proof for the gapd job engine).

GO ?= go

.PHONY: tier1 fmt vet build test race bench gapd

tier1: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

gapd:
	$(GO) run ./cmd/gapd
