package cell

import (
	"fmt"

	"repro/internal/units"
)

// SeqKind distinguishes edge-triggered flip-flops from level-sensitive
// latches. Latches permit time borrowing across pipeline-stage boundaries
// when the clocking methodology supports it (section 4.1 of the paper);
// flip-flops give a hard boundary.
type SeqKind int

const (
	// FlipFlop is an edge-triggered register.
	FlipFlop SeqKind = iota
	// Latch is a level-sensitive latch, transparent for one clock phase.
	Latch
	// PulseLatch is a custom-style pulsed latch with logic folded into
	// the latch, the technique the paper credits for the Alpha 21264's
	// low sequencing overhead.
	PulseLatch
)

func (k SeqKind) String() string {
	switch k {
	case FlipFlop:
		return "flip-flop"
	case Latch:
		return "latch"
	case PulseLatch:
		return "pulse-latch"
	}
	return fmt.Sprintf("SeqKind(%d)", int(k))
}

// SeqCell is a sequential library element. Timing numbers are in tau.
//
// The per-cycle sequencing overhead of a flip-flop methodology is
// Setup + ClkToQ (plus the skew budget, which the clock tree owns, not the
// cell); for transparent latches the setup component can be hidden by time
// borrowing, which internal/pipeline models.
type SeqCell struct {
	Name   string
	Kind   SeqKind
	Drive  float64
	Setup  units.Tau
	Hold   units.Tau
	ClkToQ units.Tau
	// DCap is the data-pin input capacitance.
	DCap units.Cap
	// ClkCap is the clock-pin capacitance, which loads the clock tree.
	ClkCap units.Cap
	Area   float64
	LeakNW float64
}

// Overhead is the portion of every cycle consumed by the cell itself in an
// edge-clocked methodology: setup plus clock-to-Q.
func (s *SeqCell) Overhead() units.Tau { return s.Setup + s.ClkToQ }

// Delay returns clock-to-Q driving the given load, treating the output
// stage as a drive-strength-scaled inverter.
func (s *SeqCell) Delay(load units.Cap) units.Tau {
	return s.ClkToQ + units.Tau(float64(load)/s.Drive)
}

func (s *SeqCell) String() string { return s.Name }

// Sequencing-overhead presets, in FO4 units. The paper's calibration
// points: a custom design spends roughly 15% of a 15 FO4 cycle on the latch
// (about 2.3 FO4), while ASIC flip-flops carry guard banding against skew
// and process and cost noticeably more. Values below are per-cell; the
// skew budget is added by the clocking model.
const (
	asicFFSetupFO4  = 2.0
	asicFFClkQFO4   = 2.5
	asicFFHoldFO4   = 0.5
	customFFSetup   = 1.2
	customFFClkQ    = 1.6
	customFFHold    = 0.25
	customPulseSet  = 0.4
	customPulseClkQ = 1.2
	latchSetupFO4   = 1.0
	latchClkQFO4    = 1.5
)

// NewSeq builds a sequential cell with the given per-cell timing (FO4 units
// are converted by the caller via units.FromFO4 if needed).
func NewSeq(name string, kind SeqKind, drive float64, setup, hold, clkToQ units.Tau) *SeqCell {
	if drive <= 0 {
		panic(fmt.Sprintf("cell: non-positive drive %g for %s", drive, name))
	}
	return &SeqCell{
		Name:   name,
		Kind:   kind,
		Drive:  drive,
		Setup:  setup,
		Hold:   hold,
		ClkToQ: clkToQ,
		DCap:   units.Cap(drive * 1.2),
		ClkCap: units.Cap(drive * 0.8),
		Area:   12 * drive,
		LeakNW: 20 * drive,
	}
}

// ASICFlipFlop builds a guard-banded ASIC flip-flop at the given drive.
func ASICFlipFlop(drive float64) *SeqCell {
	return NewSeq(fmt.Sprintf("DFF_X%g", drive), FlipFlop, drive,
		units.FromFO4(asicFFSetupFO4), units.FromFO4(asicFFHoldFO4), units.FromFO4(asicFFClkQFO4))
}

// CustomFlipFlop builds a hand-tuned custom flip-flop.
func CustomFlipFlop(drive float64) *SeqCell {
	return NewSeq(fmt.Sprintf("CDFF_X%g", drive), FlipFlop, drive,
		units.FromFO4(customFFSetup), units.FromFO4(customFFHold), units.FromFO4(customFFClkQ))
}

// CustomPulseLatch builds a custom pulsed latch with near-zero setup, the
// lowest-overhead sequencing element in the toolkit.
func CustomPulseLatch(drive float64) *SeqCell {
	return NewSeq(fmt.Sprintf("PLAT_X%g", drive), PulseLatch, drive,
		units.FromFO4(customPulseSet), units.FromFO4(customFFHold), units.FromFO4(customPulseClkQ))
}

// TransparentLatch builds a level-sensitive latch at the given drive.
func TransparentLatch(drive float64) *SeqCell {
	return NewSeq(fmt.Sprintf("LAT_X%g", drive), Latch, drive,
		units.FromFO4(latchSetupFO4), units.FromFO4(asicFFHoldFO4), units.FromFO4(latchClkQFO4))
}
