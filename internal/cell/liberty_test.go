package cell

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/units"
)

func TestWriteLibertyStructure(t *testing.T) {
	var buf bytes.Buffer
	lib := RichASIC()
	if err := WriteLiberty(&buf, lib, units.ASIC025); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"library (rich-asic)", "time_unit", "cell (INV_X1)", "cell (NAND2_X32)",
		"cell (DFF_X2)", "setup_rising", "hold_rising", "rising_edge",
		"clock : true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("liberty output missing %q", want)
		}
	}
	// Every combinational cell appears exactly once.
	if got := strings.Count(out, "cell ("); got != lib.Size()+len(lib.SeqCells()) {
		t.Fatalf("emitted %d cells, want %d", got, lib.Size()+len(lib.SeqCells()))
	}
	// Braces balance.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Fatal("unbalanced braces")
	}
}

func TestWriteLibertyDominoCells(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLiberty(&buf, Custom(), units.Custom025); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "DOM_AND2_X1") {
		t.Fatal("domino cells missing from custom library dump")
	}
	if !strings.Contains(out, "precharged dynamic gate") {
		t.Fatal("domino annotation missing")
	}
}

func TestLibertyDelayValuesTrackModel(t *testing.T) {
	// The emitted X1 inverter delay at 4-unit load must be one FO4 in
	// the process: 0.0900 ns in asic-0.25um.
	var buf bytes.Buffer
	small := NewLibrary("tiny")
	small.Add(NewStatic(FuncInv, 1))
	if err := WriteLiberty(&buf, small, units.ASIC025); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.0900") {
		t.Fatalf("expected the FO4 point 0.0900 ns in table:\n%s", buf.String())
	}
}
