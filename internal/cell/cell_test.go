package cell

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestInverterFO4Identity(t *testing.T) {
	// An X1 inverter driving four copies of itself must take exactly
	// one FO4 = 5 tau. This anchors the whole delay calibration.
	inv := NewStatic(FuncInv, 1)
	load := units.Cap(4 * float64(inv.InputCap()))
	if got := inv.Delay(load); math.Abs(float64(got)-units.TauPerFO4) > 1e-12 {
		t.Fatalf("FO4 delay = %g tau, want %g", float64(got), units.TauPerFO4)
	}
}

func TestDriveScalingCancelsLoad(t *testing.T) {
	// Doubling drive must halve the effort component of delay.
	small := NewStatic(FuncNand2, 2)
	big := NewStatic(FuncNand2, 4)
	load := units.Cap(20)
	ds := small.Delay(load) - small.P
	db := big.Delay(load) - big.P
	if math.Abs(float64(ds)/float64(db)-2) > 1e-12 {
		t.Fatalf("effort ratio = %g, want 2", float64(ds)/float64(db))
	}
}

func TestSelfLoadedDelayIndependentOfDrive(t *testing.T) {
	// A gate driving a copy of itself has drive-independent delay:
	// d = p + g (h = 1). Property-check across drives and functions.
	f := func(driveSeed uint8, fnSeed uint8) bool {
		drive := 1 + float64(driveSeed%31)
		fns := []Func{FuncInv, FuncNand2, FuncNor3, FuncXor2, FuncAoi21}
		fn := fns[int(fnSeed)%len(fns)]
		c := NewStatic(fn, drive)
		d := c.Delay(c.InputCap())
		want := c.P + units.Tau(c.G)
		return math.Abs(float64(d-want)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInvertingClassification(t *testing.T) {
	cases := map[Func]bool{
		FuncInv: true, FuncNand2: true, FuncNor4: true, FuncXnor2: true,
		FuncAoi21: true, FuncOai22: true,
		FuncBuf: false, FuncAnd2: false, FuncOr4: false, FuncXor2: false,
		FuncMux2: false, FuncMaj3: false,
	}
	for f, want := range cases {
		if got := f.Inverting(); got != want {
			t.Errorf("%v.Inverting() = %v, want %v", f, got, want)
		}
	}
}

func TestDominoRejectsInvertingFunctions(t *testing.T) {
	if _, err := NewDomino(FuncNand2, 1); err == nil {
		t.Fatal("domino NAND2 should be rejected")
	}
	if _, err := NewDomino(FuncAnd2, 1); err != nil {
		t.Fatalf("domino AND2 should build: %v", err)
	}
}

func TestDominoFasterThanStatic(t *testing.T) {
	st := NewStatic(FuncAnd2, 4)
	dom, err := NewDomino(FuncAnd2, 4)
	if err != nil {
		t.Fatal(err)
	}
	load := units.Cap(16)
	ds := st.Delay(load)
	dd := dom.Delay(load)
	// The paper's band: 50% to 100% faster. Our model sits at 1.6x on
	// the p+g components; with equal drive the effort term ratio is
	// load-dependent, so compare at matched fanout-of-4 loading.
	load4 := units.Cap(4 * float64(st.InputCap()))
	ratio := float64(st.Delay(load4)) / float64(dom.Delay(units.Cap(4*float64(dom.InputCap()))))
	if ratio < 1.5 || ratio > 2.0 {
		t.Fatalf("domino speedup at FO4 loading = %.2f, want within [1.5, 2.0]", ratio)
	}
	_ = ds
	_ = dd
}

func TestFuncInputs(t *testing.T) {
	cases := map[Func]int{
		FuncInv: 1, FuncBuf: 1, FuncNand2: 2, FuncNand4: 4,
		FuncMux2: 3, FuncMaj3: 3, FuncAoi22: 4, FuncXor2: 2,
	}
	for f, want := range cases {
		if got := f.Inputs(); got != want {
			t.Errorf("%v.Inputs() = %d, want %d", f, got, want)
		}
	}
}

func TestSeqOverheads(t *testing.T) {
	asic := ASICFlipFlop(2)
	custom := CustomFlipFlop(2)
	pulse := CustomPulseLatch(2)
	if asic.Overhead() <= custom.Overhead() {
		t.Fatalf("ASIC FF overhead (%.1f FO4) should exceed custom (%.1f FO4)",
			asic.Overhead().FO4(), custom.Overhead().FO4())
	}
	if custom.Overhead() <= pulse.Overhead() {
		t.Fatalf("custom FF overhead should exceed pulse latch")
	}
	// ASIC FF overhead should be several FO4: the paper charges ~30%
	// of a short pipeline cycle to sequencing+skew for ASICs.
	if f := asic.Overhead().FO4(); f < 3 || f > 6 {
		t.Fatalf("ASIC FF overhead = %.2f FO4, want 3-6", f)
	}
}

func TestNewStaticPanicsOnBadDrive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on non-positive drive")
		}
	}()
	NewStatic(FuncInv, 0)
}

func TestFuncStringCoversAll(t *testing.T) {
	for f := FuncInv; f < numFuncs; f++ {
		if s := f.String(); s == "" || s[0] == 'F' && s != "FuncInvalid" && len(s) > 5 && s[:5] == "Func(" {
			t.Errorf("missing name for func %d: %q", int(f), s)
		}
	}
}

func TestDualRailDomino(t *testing.T) {
	// Dual-rail reaches inverting and XOR-class functions single-rail
	// cannot, at about twice the area and leak of single-rail, with the
	// same speed model.
	dr, err := NewDominoDualRail(FuncXor2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Family != Domino {
		t.Fatal("dual-rail must be a domino-family cell")
	}
	sr, err := NewDomino(FuncAnd2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if dr.P != NewStatic(FuncXor2, 4).P/units.Tau(DominoSpeedup()) {
		t.Fatalf("dual-rail parasitic should be static/%.1f", DominoSpeedup())
	}
	// Area ratio vs the corresponding single-rail template factor.
	if dr.Area <= sr.Area {
		t.Fatal("dual-rail XOR should cost more area than single-rail AND2")
	}
	if _, err := NewDominoDualRail(FuncNand2, 0); err == nil {
		t.Fatal("non-positive drive must be rejected")
	}
	if _, err := NewDominoDualRail(Func(99), 1); err == nil {
		t.Fatal("unknown function must be rejected")
	}
	// Inverting functions are exactly the point of dual-rail.
	if _, err := NewDominoDualRail(FuncNand3, 2); err != nil {
		t.Fatalf("dual-rail NAND3 should build: %v", err)
	}
}

func TestFamilyAndKindStrings(t *testing.T) {
	if Static.String() != "static" || Domino.String() != "domino" {
		t.Fatal("family strings wrong")
	}
	for _, k := range []SeqKind{FlipFlop, Latch, PulseLatch, SeqKind(9)} {
		if k.String() == "" {
			t.Fatal("empty kind string")
		}
	}
	if DominoSpeedup() != 1.6 {
		t.Fatalf("documented domino speedup = %g, want 1.6", DominoSpeedup())
	}
}
