package cell

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/units"
)

// Library is a characterized standard-cell library: for each function, the
// set of available drive strengths, plus the sequential elements, plus the
// methodology flags that govern what downstream tools may do with it.
type Library struct {
	Name string

	// Continuous reports that sizing tools may realize any drive
	// strength, not just the discrete cells present. This is the custom
	// transistor-level-design capability of section 6: a discrete
	// library only approximates continuous sizing.
	Continuous bool

	byFunc map[Func][]*Cell // static cells, sorted by Drive ascending
	domino map[Func][]*Cell // domino cells, sorted by Drive ascending
	seq    []*SeqCell
}

// NewLibrary creates an empty library.
func NewLibrary(name string) *Library {
	return &Library{
		Name:   name,
		byFunc: make(map[Func][]*Cell),
		domino: make(map[Func][]*Cell),
	}
}

// Add inserts a combinational cell, keeping drives sorted. Static and
// domino cells are kept in separate pools: mapping tools only draw from
// the static pool, and internal/dynlogic explicitly swaps critical-path
// gates into the domino pool.
func (l *Library) Add(c *Cell) {
	pool := l.byFunc
	if c.Family == Domino {
		pool = l.domino
	}
	cells := append(pool[c.Func], c)
	sort.Slice(cells, func(i, j int) bool { return cells[i].Drive < cells[j].Drive })
	pool[c.Func] = cells
}

// DominoCells returns the drive-sorted domino cells for f (nil if none).
func (l *Library) DominoCells(f Func) []*Cell { return l.domino[f] }

// HasDomino reports whether the library offers any domino cells.
func (l *Library) HasDomino() bool { return len(l.domino) > 0 }

// DominoForDrive returns the domino cell for f nearest the requested
// drive, synthesizing the exact drive when the library is continuous.
func (l *Library) DominoForDrive(f Func, drive float64) (*Cell, error) {
	cells := l.domino[f]
	if len(cells) == 0 {
		return nil, fmt.Errorf("cell: library %s has no domino cell for %v", l.Name, f)
	}
	if l.Continuous {
		return NewDomino(f, drive)
	}
	best := cells[0]
	bestDist := math.Abs(cells[0].Drive - drive)
	for _, c := range cells[1:] {
		d := math.Abs(c.Drive - drive)
		if d < bestDist || (d == bestDist && c.Drive > best.Drive) {
			best, bestDist = c, d
		}
	}
	return best, nil
}

// AddSeq inserts a sequential cell.
func (l *Library) AddSeq(s *SeqCell) { l.seq = append(l.seq, s) }

// Has reports whether any cell implements the function.
func (l *Library) Has(f Func) bool { return len(l.byFunc[f]) > 0 }

// Cells returns the drive-sorted cells implementing f (nil if none).
func (l *Library) Cells(f Func) []*Cell { return l.byFunc[f] }

// Functions returns the functions present, in a stable order.
func (l *Library) Functions() []Func {
	fs := make([]Func, 0, len(l.byFunc))
	for f := range l.byFunc {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i] < fs[j] })
	return fs
}

// Smallest returns the minimum-drive cell for f, or nil.
func (l *Library) Smallest(f Func) *Cell {
	cells := l.byFunc[f]
	if len(cells) == 0 {
		return nil
	}
	return cells[0]
}

// Largest returns the maximum-drive cell for f, or nil.
func (l *Library) Largest(f Func) *Cell {
	cells := l.byFunc[f]
	if len(cells) == 0 {
		return nil
	}
	return cells[len(cells)-1]
}

// TargetEffortDelay is the per-stage effort delay (in tau) drive selection
// aims for: the classic optimum stage effort of about 4 (an FO4-like
// stage). Since effort delay is load/drive in this model, the selected
// drive is the smallest with drive >= load/TargetEffortDelay.
const TargetEffortDelay = 4.0

// BestForLoad returns the smallest cell implementing f whose effort delay
// driving the load does not exceed TargetEffortDelay, or the largest cell
// when even it is overloaded. Minimizing delay alone would always pick the
// largest drive (parasitic delay is size-independent); targeting stage
// effort is what real sizing does, balancing this stage against the load
// it presents to its driver.
func (l *Library) BestForLoad(f Func, load units.Cap) (*Cell, error) {
	cells := l.byFunc[f]
	if len(cells) == 0 {
		return nil, fmt.Errorf("cell: library %s has no cell for %v", l.Name, f)
	}
	need := float64(load) / TargetEffortDelay
	if l.Continuous && need > cells[0].Drive {
		return NewStatic(f, need), nil
	}
	for _, c := range cells {
		if c.Drive >= need {
			return c, nil
		}
	}
	return cells[len(cells)-1], nil
}

// ForDrive returns the discrete cell for f whose drive is nearest the
// requested continuous drive, rounding up on ties (the conservative snap).
// When the library is Continuous it fabricates a cell at exactly that
// drive.
func (l *Library) ForDrive(f Func, drive float64) (*Cell, error) {
	cells := l.byFunc[f]
	if len(cells) == 0 {
		return nil, fmt.Errorf("cell: library %s has no cell for %v", l.Name, f)
	}
	if l.Continuous {
		return NewStatic(f, drive), nil
	}
	best := cells[0]
	bestDist := math.Abs(cells[0].Drive - drive)
	for _, c := range cells[1:] {
		d := math.Abs(c.Drive - drive)
		if d < bestDist || (d == bestDist && c.Drive > best.Drive) {
			best, bestDist = c, d
		}
	}
	return best, nil
}

// NextDriveUp returns the cell one discrete drive step above c, or nil if c
// is already the largest (or the library is continuous, in which case the
// caller should scale drives directly).
func (l *Library) NextDriveUp(c *Cell) *Cell {
	cells := l.byFunc[c.Func]
	for i, cand := range cells {
		if cand.Drive > c.Drive {
			return cells[i]
		}
	}
	return nil
}

// DefaultSeq returns the library's preferred register at drive nearest the
// request, or nil if the library has no sequential cells.
func (l *Library) DefaultSeq(drive float64) *SeqCell {
	if len(l.seq) == 0 {
		return nil
	}
	best := l.seq[0]
	for _, s := range l.seq[1:] {
		if math.Abs(s.Drive-drive) < math.Abs(best.Drive-drive) {
			best = s
		}
	}
	return best
}

// SeqCells returns all sequential cells.
func (l *Library) SeqCells() []*SeqCell { return l.seq }

// Size reports the number of combinational cells, static and domino.
func (l *Library) Size() int {
	n := 0
	for _, cells := range l.byFunc {
		n += len(cells)
	}
	for _, cells := range l.domino {
		n += len(cells)
	}
	return n
}

func (l *Library) String() string {
	return fmt.Sprintf("%s: %d cells, %d functions, %d sequential",
		l.Name, l.Size(), len(l.byFunc), len(l.seq))
}

// allStaticFuncs is the full dual-polarity function set of a rich library.
var allStaticFuncs = []Func{
	FuncInv, FuncBuf,
	FuncNand2, FuncNand3, FuncNand4,
	FuncNor2, FuncNor3, FuncNor4,
	FuncAnd2, FuncAnd3, FuncAnd4,
	FuncOr2, FuncOr3, FuncOr4,
	FuncXor2, FuncXnor2, FuncMux2,
	FuncAoi21, FuncAoi22, FuncOai21, FuncOai22,
	FuncMaj3,
}

// richDrives is a production-grade drive ladder.
var richDrives = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

// RichASIC builds a well-stocked ASIC library: dual polarities, complex
// gates, ten drive strengths, guard-banded flip-flops. This is the library
// the paper says ASIC designers *should* be using (section 6.2).
func RichASIC() *Library {
	l := NewLibrary("rich-asic")
	for _, f := range allStaticFuncs {
		for _, d := range richDrives {
			l.Add(NewStatic(f, d))
		}
	}
	for _, d := range []float64{1, 2, 4, 8} {
		l.AddSeq(ASICFlipFlop(d))
		l.AddSeq(TransparentLatch(d))
	}
	return l
}

// PoorASIC builds the impoverished library of section 6.1: inverting gates
// only (no dual polarity), two drive strengths, and the same guard-banded
// flip-flops. The paper estimates such a library costs roughly 25% in
// speed against a rich one.
func PoorASIC() *Library {
	l := NewLibrary("poor-asic")
	funcs := []Func{FuncInv, FuncNand2, FuncNand3, FuncNand4, FuncNor2, FuncNor3, FuncXnor2, FuncAoi21, FuncOai21}
	for _, f := range funcs {
		for _, d := range []float64{1, 4} {
			l.Add(NewStatic(f, d))
		}
	}
	for _, d := range []float64{1, 4} {
		l.AddSeq(ASICFlipFlop(d))
	}
	return l
}

// Custom builds a custom-methodology "library": the full static function
// set with continuous sizing permitted, low-overhead sequential elements,
// and domino cells available for critical paths.
func Custom() *Library {
	l := NewLibrary("custom")
	l.Continuous = true
	for _, f := range allStaticFuncs {
		for _, d := range richDrives {
			l.Add(NewStatic(f, d))
		}
	}
	for _, f := range allStaticFuncs {
		if f.Inverting() {
			continue
		}
		for _, d := range richDrives {
			dc, err := NewDomino(f, d)
			if err != nil {
				// Non-inverting functions always build; an error
				// here is a programming bug in the tables.
				panic(err)
			}
			l.Add(dc)
		}
	}
	for _, d := range []float64{1, 2, 4, 8} {
		l.AddSeq(CustomFlipFlop(d))
		l.AddSeq(CustomPulseLatch(d))
		l.AddSeq(TransparentLatch(d))
	}
	return l
}

// RestrictDrives derives a library containing only the requested drive
// strengths of src (keeping all functions and sequential cells). This
// isolates the paper's "library with only two drive strengths" comparison
// from the dual-polarity axis.
func RestrictDrives(src *Library, drives ...float64) *Library {
	keep := make(map[float64]bool, len(drives))
	for _, d := range drives {
		keep[d] = true
	}
	l := NewLibrary(fmt.Sprintf("%s-drives%v", src.Name, drives))
	for f, cells := range src.byFunc {
		for _, c := range cells {
			if keep[c.Drive] {
				l.Add(c)
			}
		}
		_ = f
	}
	for f, cells := range src.domino {
		for _, c := range cells {
			if keep[c.Drive] {
				l.Add(c)
			}
		}
		_ = f
	}
	for _, s := range src.seq {
		l.AddSeq(s)
	}
	return l
}

// DriveLadder reports the distinct drive strengths available for f.
func (l *Library) DriveLadder(f Func) []float64 {
	cells := l.byFunc[f]
	drives := make([]float64, 0, len(cells))
	for _, c := range cells {
		if len(drives) == 0 || drives[len(drives)-1] != c.Drive {
			drives = append(drives, c.Drive)
		}
	}
	return drives
}
