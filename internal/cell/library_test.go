package cell

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestRichASICContents(t *testing.T) {
	lib := RichASIC()
	if !lib.Has(FuncAnd2) || !lib.Has(FuncOr3) || !lib.Has(FuncBuf) {
		t.Fatal("rich library must have dual-polarity gates")
	}
	if got := len(lib.DriveLadder(FuncNand2)); got != len(richDrives) {
		t.Fatalf("rich NAND2 drive ladder has %d entries, want %d", got, len(richDrives))
	}
	if lib.Continuous {
		t.Fatal("ASIC library must not allow continuous sizing")
	}
	if lib.HasDomino() {
		t.Fatal("ASIC library must not offer domino cells")
	}
	if lib.DefaultSeq(2) == nil {
		t.Fatal("rich library needs sequential cells")
	}
}

func TestPoorASICContents(t *testing.T) {
	lib := PoorASIC()
	if lib.Has(FuncAnd2) || lib.Has(FuncOr2) || lib.Has(FuncBuf) {
		t.Fatal("poor library must lack dual-polarity gates")
	}
	if got := len(lib.DriveLadder(FuncNand2)); got != 2 {
		t.Fatalf("poor NAND2 ladder has %d drives, want 2", got)
	}
}

func TestCustomLibrary(t *testing.T) {
	lib := Custom()
	if !lib.Continuous {
		t.Fatal("custom library must permit continuous sizing")
	}
	if !lib.HasDomino() {
		t.Fatal("custom library must offer domino cells")
	}
	if len(lib.DominoCells(FuncAnd2)) == 0 {
		t.Fatal("custom library needs domino AND2")
	}
	if len(lib.DominoCells(FuncNand2)) != 0 {
		t.Fatal("domino pool must not contain inverting functions")
	}
}

func TestBestForLoadPicksLargerAtHighLoad(t *testing.T) {
	lib := RichASIC()
	small, err := lib.BestForLoad(FuncInv, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := lib.BestForLoad(FuncInv, 400)
	if err != nil {
		t.Fatal(err)
	}
	if big.Drive <= small.Drive {
		t.Fatalf("heavy load picked drive %g, light load %g", big.Drive, small.Drive)
	}
	if small.Drive != 1 {
		t.Fatalf("light load should pick X1, got X%g", small.Drive)
	}
}

func TestBestForLoadMeetsEffortTarget(t *testing.T) {
	lib := RichASIC()
	largest := lib.Largest(FuncNor2)
	f := func(loadSeed uint16) bool {
		load := units.Cap(1 + float64(loadSeed%1000))
		best, err := lib.BestForLoad(FuncNor2, load)
		if err != nil {
			return false
		}
		effort := float64(load) / best.Drive
		if effort > TargetEffortDelay && best != largest {
			return false // missed the target with headroom available
		}
		// No strictly smaller cell may also meet the target.
		for _, c := range lib.Cells(FuncNor2) {
			if c.Drive < best.Drive && float64(load)/c.Drive <= TargetEffortDelay {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBestForLoadContinuous(t *testing.T) {
	lib := Custom()
	c, err := lib.BestForLoad(FuncInv, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(100/c.Drive-TargetEffortDelay) > 1e-9 {
		t.Fatalf("continuous selection effort = %g, want %g", 100/c.Drive, TargetEffortDelay)
	}
}

func TestForDriveSnapsNearest(t *testing.T) {
	lib := RichASIC()
	c, err := lib.ForDrive(FuncNand2, 5.2)
	if err != nil {
		t.Fatal(err)
	}
	// Ladder has 4 and 6; 5.2 is nearer 6.
	if c.Drive != 6 {
		t.Fatalf("snap(5.2) = %g, want 6", c.Drive)
	}
	c, _ = lib.ForDrive(FuncNand2, 5.0) // tie: round up
	if c.Drive != 6 {
		t.Fatalf("snap(5.0) = %g, want 6 (round up on tie)", c.Drive)
	}
}

func TestForDriveContinuous(t *testing.T) {
	lib := Custom()
	c, err := lib.ForDrive(FuncNand2, 5.37)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Drive-5.37) > 1e-12 {
		t.Fatalf("continuous library returned drive %g, want 5.37", c.Drive)
	}
}

func TestNextDriveUp(t *testing.T) {
	lib := RichASIC()
	c, _ := lib.ForDrive(FuncInv, 4)
	up := lib.NextDriveUp(c)
	if up == nil || up.Drive != 6 {
		t.Fatalf("next drive above 4 should be 6, got %v", up)
	}
	top := lib.Largest(FuncInv)
	if lib.NextDriveUp(top) != nil {
		t.Fatal("largest cell must have no next drive")
	}
}

func TestDominoForDrive(t *testing.T) {
	lib := Custom()
	c, err := lib.DominoForDrive(FuncAnd2, 3.3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Family != Domino {
		t.Fatalf("got family %v, want domino", c.Family)
	}
	if math.Abs(c.Drive-3.3) > 1e-12 {
		t.Fatalf("continuous domino drive = %g, want 3.3", c.Drive)
	}
	if _, err := RichASIC().DominoForDrive(FuncAnd2, 1); err == nil {
		t.Fatal("rich ASIC should have no domino cells")
	}
}

func TestLibrarySizeAndString(t *testing.T) {
	lib := RichASIC()
	if lib.Size() != len(allStaticFuncs)*len(richDrives) {
		t.Fatalf("size = %d, want %d", lib.Size(), len(allStaticFuncs)*len(richDrives))
	}
	if lib.String() == "" {
		t.Fatal("empty library description")
	}
	if got := len(lib.Functions()); got != len(allStaticFuncs) {
		t.Fatalf("functions = %d, want %d", got, len(allStaticFuncs))
	}
}

func TestSmallestLargest(t *testing.T) {
	lib := RichASIC()
	if s := lib.Smallest(FuncXor2); s == nil || s.Drive != 1 {
		t.Fatalf("smallest XOR2 = %v, want X1", s)
	}
	if l := lib.Largest(FuncXor2); l == nil || l.Drive != 32 {
		t.Fatalf("largest XOR2 = %v, want X32", l)
	}
	if lib.Smallest(FuncInvalid) != nil {
		t.Fatal("missing function must return nil")
	}
}
