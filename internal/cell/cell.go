// Package cell models standard-cell libraries: combinational cells with
// logical-effort timing, sequential cells with setup/hold/clock-to-Q
// overheads, and builders for the library styles the paper contrasts
// (rich ASIC, impoverished two-drive ASIC, custom-quality, and domino).
//
// Delay follows the method of logical effort. A cell of drive strength s
// implementing a function with logical effort g and parasitic delay p has
// per-pin input capacitance Cin = s*g (in units of the minimum inverter's
// input capacitance) and pin-to-output delay
//
//	d = p + g * (Cload / Cin) = p + Cload/s   [tau]
//
// so richer drive selections directly buy effort delay, which is exactly
// the mechanism behind the paper's library-richness experiments (section 6).
package cell

import (
	"fmt"

	"repro/internal/units"
)

// Func identifies the logic function a combinational cell implements.
type Func int

// Combinational cell functions. AND/OR/buffer variants are the
// "dual polarity" cells: a library without them must burn an inverter to
// recover the positive sense of a signal.
const (
	FuncInvalid Func = iota
	FuncInv
	FuncBuf
	FuncNand2
	FuncNand3
	FuncNand4
	FuncNor2
	FuncNor3
	FuncNor4
	FuncAnd2
	FuncAnd3
	FuncAnd4
	FuncOr2
	FuncOr3
	FuncOr4
	FuncXor2
	FuncXnor2
	FuncMux2
	FuncAoi21
	FuncAoi22
	FuncOai21
	FuncOai22
	FuncMaj3 // majority-of-3: the full-adder carry function
	numFuncs
)

var funcNames = map[Func]string{
	FuncInv: "INV", FuncBuf: "BUF",
	FuncNand2: "NAND2", FuncNand3: "NAND3", FuncNand4: "NAND4",
	FuncNor2: "NOR2", FuncNor3: "NOR3", FuncNor4: "NOR4",
	FuncAnd2: "AND2", FuncAnd3: "AND3", FuncAnd4: "AND4",
	FuncOr2: "OR2", FuncOr3: "OR3", FuncOr4: "OR4",
	FuncXor2: "XOR2", FuncXnor2: "XNOR2", FuncMux2: "MUX2",
	FuncAoi21: "AOI21", FuncAoi22: "AOI22",
	FuncOai21: "OAI21", FuncOai22: "OAI22",
	FuncMaj3: "MAJ3",
}

func (f Func) String() string {
	if s, ok := funcNames[f]; ok {
		return s
	}
	return fmt.Sprintf("Func(%d)", int(f))
}

// Inputs returns the number of data inputs of the function.
func (f Func) Inputs() int {
	switch f {
	case FuncInv, FuncBuf:
		return 1
	case FuncNand2, FuncNor2, FuncAnd2, FuncOr2, FuncXor2, FuncXnor2:
		return 2
	case FuncNand3, FuncNor3, FuncAnd3, FuncOr3, FuncAoi21, FuncOai21, FuncMaj3, FuncMux2:
		return 3
	case FuncNand4, FuncNor4, FuncAnd4, FuncOr4, FuncAoi22, FuncOai22:
		return 4
	}
	return 0
}

// Inverting reports whether the function's output is the complemented sense
// of its inputs. Static CMOS implements inverting functions in one stage;
// the non-inverting variants below cost an internal inverter stage, which
// is reflected in their higher parasitic delay and effort.
func (f Func) Inverting() bool {
	switch f {
	case FuncInv, FuncNand2, FuncNand3, FuncNand4,
		FuncNor2, FuncNor3, FuncNor4,
		FuncXnor2, FuncAoi21, FuncAoi22, FuncOai21, FuncOai22:
		return true
	}
	return false
}

// Family distinguishes the circuit family a cell belongs to.
type Family int

const (
	// Static is conventional static CMOS.
	Static Family = iota
	// Domino is precharged dynamic logic. Domino cells are
	// non-inverting, faster, and carry noise/clocking restrictions that
	// internal/dynlogic enforces.
	Domino
)

func (fa Family) String() string {
	if fa == Domino {
		return "domino"
	}
	return "static"
}

// logicalEffort gives g per input for static CMOS, from the standard
// logical-effort tables (Sutherland/Sproull/Harris), assuming a 2:1 P:N
// mobility ratio. Non-inverting forms are the inverting form followed by an
// inverter sized into the cell.
var logicalEffort = map[Func]float64{
	FuncInv:   1.0,
	FuncBuf:   1.0, // first stage is an inverter
	FuncNand2: 4.0 / 3.0,
	FuncNand3: 5.0 / 3.0,
	FuncNand4: 6.0 / 3.0,
	FuncNor2:  5.0 / 3.0,
	FuncNor3:  7.0 / 3.0,
	FuncNor4:  9.0 / 3.0,
	FuncAnd2:  4.0 / 3.0,
	FuncAnd3:  5.0 / 3.0,
	FuncAnd4:  6.0 / 3.0,
	FuncOr2:   5.0 / 3.0,
	FuncOr3:   7.0 / 3.0,
	FuncOr4:   9.0 / 3.0,
	FuncXor2:  4.0,
	FuncXnor2: 4.0,
	FuncMux2:  2.0,
	FuncAoi21: 2.0,
	FuncAoi22: 2.0,
	FuncOai21: 2.0,
	FuncOai22: 2.0,
	FuncMaj3:  2.0,
}

// parasitic gives p in tau for static CMOS (p_inv = 1).
var parasitic = map[Func]float64{
	FuncInv:   1.0,
	FuncBuf:   2.0,
	FuncNand2: 2.0,
	FuncNand3: 3.0,
	FuncNand4: 4.0,
	FuncNor2:  2.0,
	FuncNor3:  3.0,
	FuncNor4:  4.0,
	FuncAnd2:  3.0,
	FuncAnd3:  4.0,
	FuncAnd4:  5.0,
	FuncOr2:   3.0,
	FuncOr3:   4.0,
	FuncOr4:   5.0,
	FuncXor2:  4.0,
	FuncXnor2: 4.0,
	FuncMux2:  3.0,
	FuncAoi21: 3.0,
	FuncAoi22: 4.0,
	FuncOai21: 3.0,
	FuncOai22: 4.0,
	FuncMaj3:  4.0,
}

// transistors gives an approximate transistor count per function, used for
// the area model.
var transistors = map[Func]int{
	FuncInv: 2, FuncBuf: 4,
	FuncNand2: 4, FuncNand3: 6, FuncNand4: 8,
	FuncNor2: 4, FuncNor3: 6, FuncNor4: 8,
	FuncAnd2: 6, FuncAnd3: 8, FuncAnd4: 10,
	FuncOr2: 6, FuncOr3: 8, FuncOr4: 10,
	FuncXor2: 10, FuncXnor2: 10, FuncMux2: 12,
	FuncAoi21: 6, FuncAoi22: 8, FuncOai21: 6, FuncOai22: 8,
	FuncMaj3: 12,
}

// dominoSpeedup is the ratio by which a domino implementation reduces both
// logical effort and parasitic delay relative to static CMOS. The paper
// (section 7, citing the IBM 1.0 GHz design) puts domino combinational
// logic at 50% to 100% faster than static with the same function; 1.6
// sits inside that band.
const dominoSpeedup = 1.6

// Cell is one library cell: a function at a particular drive strength.
type Cell struct {
	Name   string
	Func   Func
	Family Family

	// Drive is the size multiple s relative to a minimum template.
	Drive float64

	// G is the logical effort per input.
	G float64

	// P is the parasitic delay in tau.
	P units.Tau

	// Area is in minimum-inverter-equivalent units.
	Area float64

	// LeakNW is the leakage in arbitrary normalized units (scales with
	// transistor width); used by internal/power.
	LeakNW float64
}

// InputCap returns the capacitance presented by one input pin,
// in minimum-inverter input capacitance units.
func (c *Cell) InputCap() units.Cap {
	return units.Cap(c.Drive * c.G)
}

// Delay returns the pin-to-output delay driving the given load.
func (c *Cell) Delay(load units.Cap) units.Tau {
	return c.P + units.Tau(float64(load)/c.Drive)
}

// Inputs returns the number of data inputs of the cell.
func (c *Cell) Inputs() int { return c.Func.Inputs() }

func (c *Cell) String() string { return c.Name }

// NewStatic builds a static CMOS cell for the given function and drive.
// It panics on an unknown function; library construction is init-time
// configuration, not data-dependent work.
func NewStatic(f Func, drive float64) *Cell {
	g, ok := logicalEffort[f]
	if !ok {
		panic(fmt.Sprintf("cell: no logical effort data for %v", f))
	}
	if drive <= 0 {
		panic(fmt.Sprintf("cell: non-positive drive %g for %v", drive, f))
	}
	t := float64(transistors[f])
	return &Cell{
		Name:   fmt.Sprintf("%v_X%g", f, drive),
		Func:   f,
		Family: Static,
		Drive:  drive,
		G:      g,
		P:      units.Tau(parasitic[f]),
		Area:   t / 2 * drive,
		LeakNW: t * drive,
	}
}

// NewDomino builds a domino cell for the given function and drive.
// Domino implements only non-inverting functions (the output of a domino
// gate is taken after its static output inverter, so the composite gate
// computes AND/OR-class functions).
func NewDomino(f Func, drive float64) (*Cell, error) {
	if f.Inverting() {
		return nil, fmt.Errorf("cell: domino cannot implement inverting function %v", f)
	}
	g, ok := logicalEffort[f]
	if !ok {
		return nil, fmt.Errorf("cell: no logical effort data for %v", f)
	}
	t := float64(transistors[f]) * 0.75 // dynamic gates need no PMOS pull-up network
	return &Cell{
		Name:   fmt.Sprintf("DOM_%v_X%g", f, drive),
		Func:   f,
		Family: Domino,
		Drive:  drive,
		G:      g / dominoSpeedup,
		P:      units.Tau(parasitic[f] / dominoSpeedup),
		Area:   t / 2 * drive,
		LeakNW: t * drive * 1.5, // precharge clocking burns extra power
	}, nil
}

// DominoSpeedup reports the modeled static-to-domino combinational speedup
// ratio, exposed for the section 7 experiment.
func DominoSpeedup() float64 { return dominoSpeedup }

// NewDominoDualRail builds a dual-rail domino cell for any function,
// including inverting and XOR-class ones: dual-rail domino computes both
// polarities with two precharged networks, so it escapes the
// non-inverting restriction at roughly twice the area and power (this is
// how custom designs ran domino XORs and muxes). Speed matches
// single-rail domino.
func NewDominoDualRail(f Func, drive float64) (*Cell, error) {
	g, ok := logicalEffort[f]
	if !ok {
		return nil, fmt.Errorf("cell: no logical effort data for %v", f)
	}
	if drive <= 0 {
		return nil, fmt.Errorf("cell: non-positive drive %g for dual-rail %v", drive, f)
	}
	t := float64(transistors[f]) * 1.5 // two dynamic networks, no PMOS trees
	return &Cell{
		Name:   fmt.Sprintf("DOM2_%v_X%g", f, drive),
		Func:   f,
		Family: Domino,
		Drive:  drive,
		G:      g / dominoSpeedup,
		P:      units.Tau(parasitic[f] / dominoSpeedup),
		Area:   t / 2 * drive,
		LeakNW: t * drive * 2,
	}, nil
}
