package cell

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/units"
)

// WriteLiberty emits a Liberty-style characterization of the library for
// the given process: per-cell area, pin capacitances in fF, and
// delay-vs-load lookup tables in ns, the way foundry .lib releases
// describe the cells whose richness section 6 is about. The dialect is a
// readable subset (enough to diff two libraries or feed a course tool),
// not a full Liberty implementation.
func WriteLiberty(w io.Writer, l *Library, p units.Process) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library (%s) {\n", l.Name)
	fmt.Fprintf(bw, "  /* process %s */\n", p.Name)
	fmt.Fprintf(bw, "  time_unit : \"1ns\";\n")
	fmt.Fprintf(bw, "  capacitive_load_unit (1, ff);\n")
	fmt.Fprintf(bw, "  nom_voltage : %.2f;\n", p.Vdd)

	// Load points for the delay tables, in multiples of a minimum
	// inverter input.
	loads := []float64{1, 2, 4, 8, 16, 32}

	emitCell := func(c *Cell) {
		fmt.Fprintf(bw, "  cell (%s) {\n", c.Name)
		fmt.Fprintf(bw, "    area : %.2f;\n", c.Area)
		if c.Family == Domino {
			fmt.Fprintf(bw, "    /* domino: precharged dynamic gate */\n")
		}
		for i := 0; i < c.Inputs(); i++ {
			fmt.Fprintf(bw, "    pin (%c) { direction : input; capacitance : %.3f; }\n",
				'A'+rune(i), float64(c.InputCap())*p.CinFF)
		}
		fmt.Fprintf(bw, "    pin (Y) {\n      direction : output;\n      timing () {\n")
		fmt.Fprintf(bw, "        index_1 (\"")
		for i, ld := range loads {
			if i > 0 {
				fmt.Fprintf(bw, ", ")
			}
			fmt.Fprintf(bw, "%.1f", ld*p.CinFF)
		}
		fmt.Fprintf(bw, "\");\n        values (\"")
		for i, ld := range loads {
			if i > 0 {
				fmt.Fprintf(bw, ", ")
			}
			d := c.Delay(units.Cap(ld))
			fmt.Fprintf(bw, "%.4f", d.Picoseconds(p)/1000)
		}
		fmt.Fprintf(bw, "\");\n      }\n    }\n")
		fmt.Fprintf(bw, "  }\n")
	}

	for _, f := range l.Functions() {
		for _, c := range l.Cells(f) {
			emitCell(c)
		}
	}
	for _, f := range l.Functions() {
		for _, c := range l.DominoCells(f) {
			emitCell(c)
		}
	}
	for _, s := range l.SeqCells() {
		fmt.Fprintf(bw, "  cell (%s) {\n", s.Name)
		fmt.Fprintf(bw, "    area : %.2f;\n", s.Area)
		fmt.Fprintf(bw, "    ff (IQ) { clocked_on : CK; next_state : D; }\n")
		fmt.Fprintf(bw, "    pin (D) { direction : input; capacitance : %.3f;\n", float64(s.DCap)*p.CinFF)
		fmt.Fprintf(bw, "      timing () { timing_type : setup_rising; rise_constraint : %.4f; }\n",
			s.Setup.Picoseconds(p)/1000)
		fmt.Fprintf(bw, "      timing () { timing_type : hold_rising; rise_constraint : %.4f; }\n",
			s.Hold.Picoseconds(p)/1000)
		fmt.Fprintf(bw, "    }\n")
		fmt.Fprintf(bw, "    pin (CK) { direction : input; clock : true; capacitance : %.3f; }\n",
			float64(s.ClkCap)*p.CinFF)
		fmt.Fprintf(bw, "    pin (Q) { direction : output;\n")
		fmt.Fprintf(bw, "      timing () { timing_type : rising_edge; cell_rise : %.4f; }\n",
			s.ClkToQ.Picoseconds(p)/1000)
		fmt.Fprintf(bw, "    }\n  }\n")
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}
