package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Sweep performs constant propagation, algebraic simplification, and
// dead-code elimination: primary inputs named "const0"/"const1" (the
// tie-offs circuit generators emit for speculative carries and the like)
// are treated as constants and folded through the logic. A gate whose
// output is constant disappears; one whose output equals an input (or its
// complement) is replaced by a wire (or the input's inverter); everything
// unreachable from an output or register is dropped.
//
// The returned netlist preserves the primary interface (constant tie-off
// inputs are kept, possibly unused; outputs that fold to constants are
// wired to them).
func Sweep(n *netlist.Netlist) (*netlist.Netlist, error) {
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}

	// state per original net: known constant or symbolic.
	type state struct {
		isConst bool
		val     bool
		// root is the original net this one is equivalent to (possibly
		// inverted); defaults to itself.
		root netlist.NetID
		inv  bool
	}
	st := make([]state, n.NumNets())
	for i := range st {
		st[i] = state{root: netlist.NetID(i)}
	}
	// rewrite2 records nets whose residual function collapsed to a
	// 2-input library function of two symbolic roots (e.g. the carry
	// MAJ3(a,b,0) = AND2(a,b)).
	type rw2 struct {
		f    cell.Func
		a, b netlist.NetID
	}
	rewrite := map[netlist.NetID]rw2{}
	var constNet [2]netlist.NetID
	constNet[0], constNet[1] = netlist.None, netlist.None
	for _, id := range n.Inputs() {
		switch n.Net(id).Name {
		case "const0":
			st[id] = state{isConst: true, val: false, root: id}
			constNet[0] = id
		case "const1":
			st[id] = state{isConst: true, val: true, root: id}
			constNet[1] = id
		}
	}

	// Analyze every gate in topological order.
	for _, gid := range order {
		g := n.Gate(gid)
		// Resolve each input to (root, inv) or constant.
		type inref struct {
			isConst bool
			val     bool
			root    netlist.NetID
			inv     bool
		}
		ins := make([]inref, len(g.In))
		// Distinct symbolic roots, preserving correlation of repeated
		// inputs (XOR(x,x) must fold to 0).
		type symKey struct {
			root netlist.NetID
		}
		symIndex := map[symKey]int{}
		var syms []netlist.NetID
		for i, in := range g.In {
			s := st[in]
			if s.isConst {
				ins[i] = inref{isConst: true, val: s.val}
				continue
			}
			ins[i] = inref{root: s.root, inv: s.inv}
			k := symKey{s.root}
			if _, ok := symIndex[k]; !ok {
				symIndex[k] = len(syms)
				syms = append(syms, s.root)
			}
		}
		if len(syms) > 4 {
			continue // cannot happen (max 4 pins), defensive
		}
		// Enumerate assignments over distinct symbolic roots and
		// evaluate the gate.
		total := 1 << uint(len(syms))
		results := make([]bool, total)
		for a := 0; a < total; a++ {
			inVals := make([]bool, len(ins))
			for i, r := range ins {
				if r.isConst {
					inVals[i] = r.val
					continue
				}
				bit := a&(1<<uint(symIndex[symKey{r.root}])) != 0
				inVals[i] = bit != r.inv
			}
			v, err := netlist.EvalFunc(g.Cell.Func, inVals)
			if err != nil {
				return nil, err
			}
			results[a] = v
		}
		out := g.Out
		// Constant output?
		allSame := true
		for _, v := range results[1:] {
			if v != results[0] {
				allSame = false
				break
			}
		}
		if allSame {
			st[out] = state{isConst: true, val: results[0], root: out}
			continue
		}
		// Equal (or complement) to a single symbolic root?
		folded := false
		for si, root := range syms {
			eq, comp := true, true
			for a := 0; a < total; a++ {
				bit := a&(1<<uint(si)) != 0
				if results[a] != bit {
					eq = false
				}
				if results[a] != !bit {
					comp = false
				}
			}
			if eq {
				st[out] = state{root: root, inv: false}
				folded = true
				break
			}
			if comp {
				st[out] = state{root: root, inv: true}
				folded = true
				break
			}
		}
		if folded {
			continue
		}
		// Exactly two symbolic roots and a simpler gate than the
		// current one: match the 4-entry truth table against the basic
		// 2-input functions. Only rewrite when it actually simplifies
		// (wide gate, constant pins, or correlated pins).
		if len(syms) == 2 && (len(g.In) > 2 || len(syms) < len(g.In)) {
			tt := [4]bool{results[0], results[1], results[2], results[3]}
			if f, ok := match2(tt); ok {
				rewrite[out] = rw2{f: f, a: syms[0], b: syms[1]}
			}
		}
		// Otherwise the gate stays; out keeps itself as root.
	}

	// Rebuild, emitting only what outputs and registers need.
	out := netlist.New(n.Name + "_swept")
	newNet := make(map[netlist.NetID]netlist.NetID) // original root net -> new net
	for _, id := range n.Inputs() {
		newNet[id] = out.AddInput(n.Net(id).Name)
	}
	// Pre-allocate register Q nets (they are symbolic roots).
	for _, r := range n.Regs() {
		q := out.AllocNet(n.Net(r.Q).Name)
		newNet[r.Q] = q
	}

	invCache := map[netlist.NetID]netlist.NetID{}
	invCell := invFor(n)

	// emit returns the new net carrying the value of original net id.
	var emit func(id netlist.NetID) (netlist.NetID, error)
	emit = func(id netlist.NetID) (netlist.NetID, error) {
		s := st[id]
		if s.isConst {
			return emitConst(out, s.val), nil
		}
		root := s.root
		base, ok := newNet[root]
		if !ok {
			nt := n.Net(root)
			if rw, isRW := rewrite[root]; isRW {
				// Residual 2-input function of two roots.
				av, err := emit(rw.a)
				if err != nil {
					return netlist.None, err
				}
				bv, err := emit(rw.b)
				if err != nil {
					return netlist.None, err
				}
				nid, err := out.AddGate(cell.NewStatic(rw.f, 1), av, bv)
				if err != nil {
					return netlist.None, err
				}
				if nt.Driver != netlist.None {
					out.Gate(out.Net(nid).Driver).Block = n.Gate(nt.Driver).Block
				}
				out.Net(nid).Name = nt.Name
				newNet[root] = nid
				base = nid
			} else {
				// The root must be a gate output: emit the gate.
				if nt.Driver == netlist.None {
					return netlist.None, fmt.Errorf("synth: sweep lost net %s", nt.Name)
				}
				g := n.Gate(nt.Driver)
				ins := make([]netlist.NetID, len(g.In))
				for i, in := range g.In {
					nid, err := emit(in)
					if err != nil {
						return netlist.None, err
					}
					ins[i] = nid
				}
				nid, err := out.AddGate(g.Cell, ins...)
				if err != nil {
					return netlist.None, err
				}
				out.Gate(out.Net(nid).Driver).Block = g.Block
				out.Net(nid).Name = nt.Name
				newNet[root] = nid
				base = nid
			}
		}
		if !s.inv {
			return base, nil
		}
		if iv, ok := invCache[base]; ok {
			return iv, nil
		}
		iv, err := out.AddGate(invCell, base)
		if err != nil {
			return netlist.None, err
		}
		invCache[base] = iv
		return iv, nil
	}

	for _, r := range n.Regs() {
		d, err := emit(r.D)
		if err != nil {
			return nil, err
		}
		rid, err := out.AddRegTo(r.Cell, d, newNet[r.Q])
		if err != nil {
			return nil, err
		}
		out.Reg(rid).Block = r.Block
	}
	for _, id := range n.Outputs() {
		nid, err := emit(id)
		if err != nil {
			return nil, err
		}
		out.MarkOutput(nid)
		out.Net(nid).PortLoad = n.Net(id).PortLoad
	}
	if err := out.Check(); err != nil {
		return nil, fmt.Errorf("synth: sweep produced invalid netlist: %w", err)
	}
	return out, nil
}

// match2 maps a 4-entry truth table over roots (a, b), indexed a|b<<1,
// to a basic 2-input function.
func match2(tt [4]bool) (cell.Func, bool) {
	type cand struct {
		f  cell.Func
		tt [4]bool
	}
	// Index: bit0 = a, bit1 = b.
	cands := []cand{
		{cell.FuncAnd2, [4]bool{false, false, false, true}},
		{cell.FuncNand2, [4]bool{true, true, true, false}},
		{cell.FuncOr2, [4]bool{false, true, true, true}},
		{cell.FuncNor2, [4]bool{true, false, false, false}},
		{cell.FuncXor2, [4]bool{false, true, true, false}},
		{cell.FuncXnor2, [4]bool{true, false, false, true}},
	}
	for _, c := range cands {
		if c.tt == tt {
			return c.f, true
		}
	}
	return cell.FuncInvalid, false
}

// emitConst returns (creating if needed) a tie-off net of the given value
// in the rebuilt netlist.
func emitConst(out *netlist.Netlist, val bool) netlist.NetID {
	name := "const0"
	if val {
		name = "const1"
	}
	for _, id := range out.Inputs() {
		if out.Net(id).Name == name {
			return id
		}
	}
	return out.AddInput(name)
}

// invFor picks an inverter cell present in the design, falling back to a
// minimum static inverter.
func invFor(n *netlist.Netlist) *cell.Cell {
	for _, g := range n.Gates() {
		if g.Cell.Func == cell.FuncInv {
			return g.Cell
		}
	}
	return cell.NewStatic(cell.FuncInv, 1)
}
