package synth

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/sta"
)

func TestInsertScanStructure(t *testing.T) {
	lib := cell.RichASIC()
	n, err := circuits.DatapathChain(lib, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	regs := n.NumRegs()
	res, err := InsertScan(n, lib)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chained != regs || res.MuxesAdded != regs {
		t.Fatalf("chained %d / muxes %d, want %d", res.Chained, res.MuxesAdded, regs)
	}
	if res.AreaAfter <= res.AreaBefore {
		t.Fatal("scan must cost area")
	}
	if res.String() == "" {
		t.Fatal("empty result")
	}
	// Every register's D must now be a MUX2 output.
	for _, r := range n.Regs() {
		drv := n.Net(r.D).Driver
		if drv == netlist.None || n.Gate(drv).Cell.Func != cell.FuncMux2 {
			t.Fatalf("register %d not behind a scan mux", r.ID)
		}
	}
}

func TestScanShiftsPatternsThrough(t *testing.T) {
	// With scan_en high, the registers form a shift register: a pattern
	// clocked into scan_in appears at scan_out after NumRegs cycles.
	lib := cell.RichASIC()
	n, err := circuits.DatapathChain(lib, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InsertScan(n, lib); err != nil {
		t.Fatal(err)
	}
	regs := n.NumRegs()
	sim, err := netlist.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	baseIn := func() map[string]bool {
		in := map[string]bool{"scan_en": true, "scan_in": false, "const0": false}
		for _, id := range n.Inputs() {
			if _, ok := in[n.Net(id).Name]; !ok {
				in[n.Net(id).Name] = false
			}
		}
		return in
	}
	pattern := []bool{true, false, true, true, false, true, false, false}
	var got []bool
	scanOut := n.Outputs()[len(n.Outputs())-1]
	for c := 0; c < len(pattern)+regs; c++ {
		in := baseIn()
		if c < len(pattern) {
			in["scan_in"] = pattern[c]
		}
		if _, err := sim.Step(in); err != nil {
			t.Fatal(err)
		}
		got = append(got, sim.Value(scanOut))
	}
	for i, want := range pattern {
		if got[i+regs] != want {
			t.Fatalf("scan bit %d: got %v, want %v", i, got[i+regs], want)
		}
	}
}

func TestScanPreservesFunctionalMode(t *testing.T) {
	// With scan_en low, the design behaves exactly as before insertion.
	lib := cell.RichASIC()
	mk := func() *netlist.Netlist {
		n, err := circuits.DatapathChain(lib, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	plain := mk()
	scanned := mk()
	if _, err := InsertScan(scanned, lib); err != nil {
		t.Fatal(err)
	}
	simA, err := netlist.NewSimulator(plain)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := netlist.NewSimulator(scanned)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for c := 0; c < 30; c++ {
		in := map[string]bool{}
		for _, id := range plain.Inputs() {
			in[plain.Net(id).Name] = rng.Intn(2) == 1
		}
		oa, err := simA.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		inB := map[string]bool{"scan_en": false, "scan_in": false}
		for k, v := range in {
			inB[k] = v
		}
		ob, err := simB.Step(inB)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range oa {
			if ob[k] != v {
				t.Fatalf("cycle %d: functional output %s changed under scan", c, k)
			}
		}
	}
}

func TestScanTimingCost(t *testing.T) {
	// The scan mux adds measurable but modest delay to register paths
	// (the paper's testability tax).
	lib := cell.RichASIC()
	n, err := circuits.DatapathChain(lib, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	before, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InsertScan(n, lib); err != nil {
		t.Fatal(err)
	}
	after, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	penalty := float64(after.WorstComb)/float64(before.WorstComb) - 1
	if penalty <= 0 {
		t.Fatal("scan mux must cost delay")
	}
	if penalty > 0.30 {
		t.Fatalf("scan penalty %.0f%% implausibly high", 100*penalty)
	}
	t.Logf("scan timing penalty: +%.1f%%", 100*penalty)
}

func TestInsertScanValidation(t *testing.T) {
	lib := cell.RichASIC()
	n := netlist.New("comb")
	a := n.AddInput("a")
	n.MarkOutput(n.MustGate(lib.Smallest(cell.FuncInv), a))
	if _, err := InsertScan(n, lib); err == nil {
		t.Fatal("combinational netlist must be rejected")
	}
	poor := cell.PoorASIC() // has no MUX2
	r, err := circuits.DatapathChain(poor, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InsertScan(r, poor); err == nil {
		t.Fatal("library without MUX2 must be rejected")
	}
}
