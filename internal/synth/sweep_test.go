package synth

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
)

func TestSweepFoldsConstants(t *testing.T) {
	lib := cell.RichASIC()
	n := netlist.New("t")
	x := n.AddInput("x")
	zero := n.AddInput("const0")
	one := n.AddInput("const1")
	// AND(x, 0) = 0; OR(x, 1) = 1; XOR(x, 0) = x; MUX(a,b,1) = b.
	andOut := n.MustGate(lib.Smallest(cell.FuncAnd2), x, zero)
	orOut := n.MustGate(lib.Smallest(cell.FuncOr2), x, one)
	xorOut := n.MustGate(lib.Smallest(cell.FuncXor2), x, zero)
	b := n.AddInput("b")
	muxOut := n.MustGate(lib.Smallest(cell.FuncMux2), x, b, one)
	for _, id := range []netlist.NetID{andOut, orOut, xorOut, muxOut} {
		n.MarkOutput(id)
	}
	s, err := Sweep(n)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumGates() != 0 {
		t.Fatalf("all four gates should fold away, %d remain", s.NumGates())
	}
	// Outputs: const0, const1, x, b — verify by simulation.
	sim, err := netlist.NewSimulator(s)
	if err != nil {
		t.Fatal(err)
	}
	for vec := 0; vec < 4; vec++ {
		in := map[string]bool{
			"x": vec&1 != 0, "b": vec&2 != 0,
			"const0": false, "const1": true,
		}
		out, err := sim.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		want := []bool{false, true, in["x"], in["b"]}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("vec %d output %d = %v, want %v", vec, i, out[i], want[i])
			}
		}
	}
}

func TestSweepCorrelatedInputs(t *testing.T) {
	// XOR(x, x) = 0 and NAND(x, x) = NOT x: correlation must be kept.
	lib := cell.RichASIC()
	n := netlist.New("t")
	x := n.AddInput("x")
	n.MarkOutput(n.MustGate(lib.Smallest(cell.FuncXor2), x, x))
	n.MarkOutput(n.MustGate(lib.Smallest(cell.FuncNand2), x, x))
	s, err := Sweep(n)
	if err != nil {
		t.Fatal(err)
	}
	// XOR folds to const; NAND folds to an inverter.
	if s.NumGates() != 1 || s.Gates()[0].Cell.Func != cell.FuncInv {
		t.Fatalf("want exactly one inverter, got %d gates", s.NumGates())
	}
	sim, _ := netlist.NewSimulator(s)
	for _, xv := range []bool{false, true} {
		out, err := sim.Eval(map[string]bool{"x": xv, "const0": false})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != false || out[1] != !xv {
			t.Fatalf("x=%v: got %v/%v, want false/%v", xv, out[0], out[1], !xv)
		}
	}
}

func TestSweepShrinksCarrySelect(t *testing.T) {
	// The carry-select adder speculates on const0/const1 carries: sweep
	// folds the speculation logic's constant legs.
	lib := cell.RichASIC()
	ad, err := circuits.CarrySelect(lib, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := ad.N.NumGates()
	s, err := Sweep(ad.N)
	if err != nil {
		t.Fatal(err)
	}
	after := s.NumGates()
	if after >= before {
		t.Fatalf("sweep did not shrink: %d -> %d gates", before, after)
	}
	if s.TotalArea() >= ad.N.TotalArea()*0.96 {
		t.Fatalf("area barely moved: %.0f -> %.0f (MAJ3(a,b,const) should rewrite to AND2/OR2)",
			ad.N.TotalArea(), s.TotalArea())
	}
	maj := 0
	for _, g := range s.Gates() {
		if g.Cell.Func == cell.FuncMaj3 {
			maj++
		}
	}
	majBefore := 0
	for _, g := range ad.N.Gates() {
		if g.Cell.Func == cell.FuncMaj3 {
			majBefore++
		}
	}
	if maj >= majBefore {
		t.Fatalf("constant-fed MAJ3 carries were not rewritten: %d -> %d", majBefore, maj)
	}
	t.Logf("carry-select: %d -> %d gates, area %.0f -> %.0f", before, after, ad.N.TotalArea(), s.TotalArea())

	// Function preserved: compare against the original on vectors.
	simA, err := netlist.NewSimulator(ad.N)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := netlist.NewSimulator(s)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 60; v++ {
		in := map[string]bool{"cin": v%3 == 0, "const0": false, "const1": true}
		netlist.WordToInputs(in, "a", v*2654435761, 16)
		netlist.WordToInputs(in, "b", v*40503+7, 16)
		oa, err := simA.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := simB.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("vector %d: output %d changed", v, i)
			}
		}
	}
}

func TestSweepPreservesRegisters(t *testing.T) {
	lib := cell.RichASIC()
	n, err := circuits.DatapathChain(lib, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Sweep(n)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRegs() != n.NumRegs() {
		t.Fatalf("registers changed: %d -> %d", n.NumRegs(), s.NumRegs())
	}
	if _, err := s.Levelize(); err != nil {
		t.Fatal(err)
	}
}

func TestSweepDropsDeadLogic(t *testing.T) {
	lib := cell.RichASIC()
	n := netlist.New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	live := n.MustGate(lib.Smallest(cell.FuncNand2), a, b)
	n.MarkOutput(live)
	// Dead cone: never marked as output.
	d1 := n.MustGate(lib.Smallest(cell.FuncXor2), a, b)
	n.MustGate(lib.Smallest(cell.FuncInv), d1)
	s, err := Sweep(n)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumGates() != 1 {
		t.Fatalf("dead logic survived: %d gates", s.NumGates())
	}
}
