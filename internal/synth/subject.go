// Package synth implements logic synthesis for the toolkit: decomposition
// of a netlist into an INV/NAND2 subject graph, dynamic-programming tree
// covering onto a concrete cell library (technology mapping), post-mapping
// drive selection against a wire-load model, and buffer-tree insertion on
// over-loaded nets.
//
// This is the register-transfer-to-gates stage of the paper's ASIC flow:
// the quality of the available library shows up here (section 6 — a poor
// library forces deeper decompositions), and the wire-load guesses made
// here are what post-layout resizing (internal/sizing) later corrects.
package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// subjNode is one node of the subject graph: an inverter or a 2-input NAND.
type subjNode struct {
	id  int
	inv bool // true: INV, false: NAND2
	in  [2]int
	// ext is the external net this node corresponds to when it is a
	// start point (primary input or register Q), else netlist.None.
	ext netlist.NetID

	// block is the floorplan block of the gate this node came from.
	block string

	fanout int
}

// subjGraph is an INV/NAND2 decomposition of the combinational logic of a
// netlist, with leaves for primary inputs and register outputs.
// Construction hash-conses nodes (structural hashing, "strash"): two
// requests for the same NAND or INV of the same operands return the same
// node, so common subexpressions are shared before covering.
type subjGraph struct {
	nodes []subjNode
	// outOf maps each original net to its subject-graph node.
	outOf map[netlist.NetID]int
	// strash maps (inv, in0, in1) to an existing node (NAND operands
	// normalized to in0 <= in1).
	strash map[[3]int]int
	src    *netlist.Netlist
}

// leaf kinds use negative pseudo-ids in tree matching; real nodes are >= 0.

func (g *subjGraph) addLeaf(ext netlist.NetID) int {
	id := len(g.nodes)
	g.nodes = append(g.nodes, subjNode{id: id, ext: ext, in: [2]int{-1, -1}})
	return id
}

func (g *subjGraph) addInv(a int) int {
	// Inverter-pair elimination keeps the subject graph canonical: the
	// complement of an inverter is its input. This is what lets complex
	// patterns (AOI/OAI) match without spurious double inversions.
	if g.nodes[a].inv {
		return g.nodes[a].in[0]
	}
	key := [3]int{1, a, -1}
	if id, ok := g.strash[key]; ok {
		return id
	}
	id := len(g.nodes)
	g.nodes = append(g.nodes, subjNode{id: id, inv: true, in: [2]int{a, -1}, ext: netlist.None})
	g.nodes[a].fanout++
	g.strash[key] = id
	return id
}

func (g *subjGraph) addNand(a, b int) int {
	if b < a {
		a, b = b, a // NAND is commutative: normalize for sharing
	}
	key := [3]int{0, a, b}
	if id, ok := g.strash[key]; ok {
		return id
	}
	id := len(g.nodes)
	g.nodes = append(g.nodes, subjNode{id: id, in: [2]int{a, b}, ext: netlist.None})
	g.nodes[a].fanout++
	g.nodes[b].fanout++
	g.strash[key] = id
	return id
}

func (g *subjGraph) isLeaf(id int) bool {
	n := g.nodes[id]
	return n.in[0] < 0 && n.in[1] < 0
}

// and emits AND as NAND+INV, or as OR-of-complements when that is cheaper
// downstream; plain NAND+INV keeps the graph canonical.
func (g *subjGraph) and(a, b int) int { return g.addInv(g.addNand(a, b)) }
func (g *subjGraph) or(a, b int) int  { return g.addNand(g.addInv(a), g.addInv(b)) }
func (g *subjGraph) nor(a, b int) int { return g.addInv(g.or(a, b)) }

func (g *subjGraph) xor(a, b int) int {
	nab := g.addNand(a, b)
	return g.addNand(g.addNand(a, nab), g.addNand(b, nab))
}

func (g *subjGraph) mux(a, b, s int) int {
	ns := g.addInv(s)
	return g.addNand(g.addNand(a, ns), g.addNand(b, s))
}

// buildSubject decomposes the combinational logic of n into INV/NAND2.
func buildSubject(n *netlist.Netlist) (*subjGraph, error) {
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	g := &subjGraph{
		outOf:  make(map[netlist.NetID]int),
		strash: make(map[[3]int]int),
		src:    n,
	}
	for _, id := range n.Inputs() {
		g.outOf[id] = g.addLeaf(id)
	}
	for _, r := range n.Regs() {
		g.outOf[r.Q] = g.addLeaf(r.Q)
	}
	for _, gid := range order {
		gt := n.Gate(gid)
		in := make([]int, len(gt.In))
		for i, net := range gt.In {
			s, ok := g.outOf[net]
			if !ok {
				return nil, fmt.Errorf("synth: net %d of gate %d has no subject node", net, gid)
			}
			in[i] = s
		}
		first := len(g.nodes)
		out, err := g.emitFunc(gt.Cell.Func, in)
		if err != nil {
			return nil, fmt.Errorf("synth: gate %d: %w", gid, err)
		}
		for i := first; i < len(g.nodes); i++ {
			g.nodes[i].block = gt.Block
		}
		g.outOf[gt.Out] = out
	}
	return g, nil
}

// emitFunc decomposes one library function into subject nodes.
func (g *subjGraph) emitFunc(f cell.Func, in []int) (int, error) {
	switch f {
	case cell.FuncInv:
		return g.addInv(in[0]), nil
	case cell.FuncBuf:
		return g.addInv(g.addInv(in[0])), nil
	case cell.FuncNand2:
		return g.addNand(in[0], in[1]), nil
	case cell.FuncNand3:
		return g.addNand(g.and(in[0], in[1]), in[2]), nil
	case cell.FuncNand4:
		return g.addNand(g.and(in[0], in[1]), g.and(in[2], in[3])), nil
	case cell.FuncNor2:
		return g.nor(in[0], in[1]), nil
	case cell.FuncNor3:
		return g.nor(g.or(in[0], in[1]), in[2]), nil
	case cell.FuncNor4:
		return g.nor(g.or(in[0], in[1]), g.or(in[2], in[3])), nil
	case cell.FuncAnd2:
		return g.and(in[0], in[1]), nil
	case cell.FuncAnd3:
		return g.and(g.and(in[0], in[1]), in[2]), nil
	case cell.FuncAnd4:
		return g.and(g.and(in[0], in[1]), g.and(in[2], in[3])), nil
	case cell.FuncOr2:
		return g.or(in[0], in[1]), nil
	case cell.FuncOr3:
		return g.or(g.or(in[0], in[1]), in[2]), nil
	case cell.FuncOr4:
		return g.or(g.or(in[0], in[1]), g.or(in[2], in[3])), nil
	case cell.FuncXor2:
		return g.xor(in[0], in[1]), nil
	case cell.FuncXnor2:
		return g.addInv(g.xor(in[0], in[1])), nil
	case cell.FuncMux2:
		return g.mux(in[0], in[1], in[2]), nil
	case cell.FuncAoi21:
		// NOT(ab + c) = NAND(NAND(a,b), c') ... use nor(and(a,b), c).
		return g.nor(g.and(in[0], in[1]), in[2]), nil
	case cell.FuncAoi22:
		return g.nor(g.and(in[0], in[1]), g.and(in[2], in[3])), nil
	case cell.FuncOai21:
		return g.addNand(g.or(in[0], in[1]), in[2]), nil
	case cell.FuncOai22:
		return g.addNand(g.or(in[0], in[1]), g.or(in[2], in[3])), nil
	case cell.FuncMaj3:
		ab := g.addNand(in[0], in[1])
		ac := g.addNand(in[0], in[2])
		bc := g.addNand(in[1], in[2])
		// maj = NAND3(ab', ac', bc') in NAND2 basis.
		return g.addNand(g.and(ab, ac), bc), nil
	}
	return 0, fmt.Errorf("unsupported function %v", f)
}

// Stats about a subject graph, for tests and reports.
func (g *subjGraph) stats() (nands, invs, leaves int) {
	for _, n := range g.nodes {
		switch {
		case g.isLeaf(n.id):
			leaves++
		case n.inv:
			invs++
		default:
			nands++
		}
	}
	return
}
