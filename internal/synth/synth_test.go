package synth

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/wire"
)

func analyze(t *testing.T, n *netlist.Netlist) *sta.Result {
	t.Helper()
	r, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		t.Fatalf("%s: %v", n.Name, err)
	}
	return r
}

func TestSubjectGraphBasics(t *testing.T) {
	lib := cell.RichASIC()
	n := netlist.New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.MustGate(lib.Smallest(cell.FuncAnd2), a, b)
	n.MarkOutput(x)
	g, err := buildSubject(n)
	if err != nil {
		t.Fatal(err)
	}
	nands, invs, leaves := g.stats()
	if leaves != 2 || nands != 1 || invs != 1 {
		t.Fatalf("AND2 subject = %d nands, %d invs, %d leaves; want 1/1/2", nands, invs, leaves)
	}
}

func TestSubjectInverterPairElimination(t *testing.T) {
	lib := cell.RichASIC()
	n := netlist.New("t")
	a := n.AddInput("a")
	x := n.MustGate(lib.Smallest(cell.FuncInv), a)
	y := n.MustGate(lib.Smallest(cell.FuncInv), x)
	n.MarkOutput(y)
	g, err := buildSubject(n)
	if err != nil {
		t.Fatal(err)
	}
	// inv(inv(a)) must collapse to the leaf itself.
	if g.outOf[y] != g.outOf[a] {
		t.Fatal("double inversion not eliminated")
	}
}

func TestMapRoundTripPreservesInterface(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(ad.N, lib, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Check(); err != nil {
		t.Fatal(err)
	}
	if len(m.Inputs()) != len(ad.N.Inputs()) || len(m.Outputs()) != len(ad.N.Outputs()) {
		t.Fatalf("interface changed: %d/%d inputs, %d/%d outputs",
			len(m.Inputs()), len(ad.N.Inputs()), len(m.Outputs()), len(ad.N.Outputs()))
	}
}

func TestMapUsesComplexGates(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(ad.N, lib, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[cell.Func]int{}
	for _, g := range m.Gates() {
		counts[g.Cell.Func]++
	}
	complexUsed := counts[cell.FuncAoi21] + counts[cell.FuncOai21] +
		counts[cell.FuncAoi22] + counts[cell.FuncOai22] +
		counts[cell.FuncNand3] + counts[cell.FuncNand4] +
		counts[cell.FuncAnd3] + counts[cell.FuncAnd4] +
		counts[cell.FuncOr3] + counts[cell.FuncOr4]
	if complexUsed == 0 {
		t.Fatalf("mapping to a rich library used no complex gates: %s", CoverStats(m))
	}
}

func TestMapToPoorLibraryIsDeeper(t *testing.T) {
	rich := cell.RichASIC()
	poor := cell.PoorASIC()
	ad, err := circuits.CarryLookahead(rich, 16)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := Map(ad.N, rich, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := Map(ad.N, poor, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Run the realistic flow on both: wire loads, buffering, sizing.
	wl := &wire.LoadModel{M: wire.NewModel(units.ASIC025), BlockAreaMM2: 1}
	for _, step := range []struct {
		n   *netlist.Netlist
		lib *cell.Library
	}{{mr, rich}, {mp, poor}} {
		if err := SelectDrives(step.n, step.lib, wl); err != nil {
			t.Fatal(err)
		}
		if _, err := InsertBuffers(step.n, step.lib); err != nil {
			t.Fatal(err)
		}
		if err := SelectDrives(step.n, step.lib, nil); err != nil {
			t.Fatal(err)
		}
	}
	dr := analyze(t, mr).WorstComb
	dp := analyze(t, mp).WorstComb
	ratio := float64(dp) / float64(dr)
	// Section 6.1 puts the poor-library penalty at 25% or more; our
	// substrate lands above that under wire loading. Guard the shape:
	// strictly slower, not absurdly so.
	if ratio < 1.2 {
		t.Fatalf("poor/rich = %.2f, want >= 1.2 (paper: >= 1.25)", ratio)
	}
	if ratio > 4 {
		t.Fatalf("poor/rich = %.2f, implausibly large", ratio)
	}
}

func TestTwoDriveLibraryPenalty(t *testing.T) {
	// The isolated drive-granularity axis: same functions, drives
	// restricted to {1,4}.
	rich := cell.RichASIC()
	two := cell.RestrictDrives(rich, 1, 4)
	ad, err := circuits.CarryLookahead(rich, 32)
	if err != nil {
		t.Fatal(err)
	}
	wl := &wire.LoadModel{M: wire.NewModel(units.ASIC025), BlockAreaMM2: 1}
	var delays []float64
	for _, lib := range []*cell.Library{rich, two} {
		m, err := Map(ad.N, lib, MapOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := SelectDrives(m, lib, wl); err != nil {
			t.Fatal(err)
		}
		if _, err := InsertBuffers(m, lib); err != nil {
			t.Fatal(err)
		}
		if err := SelectDrives(m, lib, nil); err != nil {
			t.Fatal(err)
		}
		delays = append(delays, float64(analyze(t, m).WorstComb))
	}
	ratio := delays[1] / delays[0]
	if ratio < 1.1 {
		t.Fatalf("two-drive/rich = %.2f, want >= 1.1 (paper: ~1.25)", ratio)
	}
}

func TestMinAreaSmallerThanMinDelay(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 16)
	if err != nil {
		t.Fatal(err)
	}
	md, err := Map(ad.N, lib, MapOptions{Objective: MinDelay})
	if err != nil {
		t.Fatal(err)
	}
	ma, err := Map(ad.N, lib, MapOptions{Objective: MinArea})
	if err != nil {
		t.Fatal(err)
	}
	if ma.TotalArea() > md.TotalArea()*1.05 {
		t.Fatalf("min-area map (%.0f) larger than min-delay map (%.0f)",
			ma.TotalArea(), md.TotalArea())
	}
}

func TestMapPreservesRegisters(t *testing.T) {
	lib := cell.RichASIC()
	n, err := circuits.DatapathChain(lib, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(n, lib, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRegs() != n.NumRegs() {
		t.Fatalf("registers changed: %d -> %d", n.NumRegs(), m.NumRegs())
	}
	// The mapped netlist must still analyze.
	analyze(t, m)
}

func TestMapRejectsBasislessLibrary(t *testing.T) {
	lib := cell.RichASIC()
	n := netlist.New("t")
	a := n.AddInput("a")
	n.MarkOutput(n.MustGate(lib.Smallest(cell.FuncInv), a))
	empty := cell.NewLibrary("empty")
	if _, err := Map(n, empty, MapOptions{}); err == nil {
		t.Fatal("mapping to an empty library must fail")
	}
}

func TestSelectDrivesUpsizesLoadedGates(t *testing.T) {
	lib := cell.RichASIC()
	n := netlist.New("t")
	a := n.AddInput("a")
	// One driver, 30 sinks.
	d := n.MustGate(lib.Smallest(cell.FuncInv), a)
	for i := 0; i < 30; i++ {
		n.MarkOutput(n.MustGate(lib.Smallest(cell.FuncNand2), d, a))
	}
	before := analyze(t, n).WorstComb
	if err := SelectDrives(n, lib, nil); err != nil {
		t.Fatal(err)
	}
	after := analyze(t, n).WorstComb
	if n.Gate(0).Cell.Drive <= 1 {
		t.Fatal("heavily loaded driver was not upsized")
	}
	if after >= before {
		t.Fatalf("drive selection made timing worse: %.1f -> %.1f FO4", before.FO4(), after.FO4())
	}
}

func TestSelectDrivesWithWireLoadModel(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 16)
	if err != nil {
		t.Fatal(err)
	}
	wl := &wire.LoadModel{M: wire.NewModel(units.ASIC025), BlockAreaMM2: 4}
	if err := SelectDrives(ad.N, lib, wl); err != nil {
		t.Fatal(err)
	}
	anyWire := false
	for _, nt := range ad.N.Nets() {
		if nt.WireCap > 0 {
			anyWire = true
			break
		}
	}
	if !anyWire {
		t.Fatal("wire-load model applied no capacitance")
	}
}

func TestInsertBuffers(t *testing.T) {
	lib := cell.RichASIC()
	n := netlist.New("t")
	a := n.AddInput("a")
	d := n.MustGate(lib.Smallest(cell.FuncInv), a)
	// 2000 sinks: far beyond any single drive at target effort.
	for i := 0; i < 2000; i++ {
		n.MarkOutput(n.MustGate(lib.Smallest(cell.FuncNand2), d, a))
	}
	added, err := InsertBuffers(n, lib)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("no buffers inserted on a 200-fanout net")
	}
	if err := n.Check(); err != nil {
		t.Fatal(err)
	}
	// After buffering + sizing, timing must improve over unbuffered+sized.
	if err := SelectDrives(n, lib, nil); err != nil {
		t.Fatal(err)
	}
	buffered := analyze(t, n).WorstComb

	n2 := netlist.New("t2")
	a2 := n2.AddInput("a")
	d2 := n2.MustGate(lib.Smallest(cell.FuncInv), a2)
	for i := 0; i < 2000; i++ {
		n2.MarkOutput(n2.MustGate(lib.Smallest(cell.FuncNand2), d2, a2))
	}
	if err := SelectDrives(n2, lib, nil); err != nil {
		t.Fatal(err)
	}
	unbuffered := analyze(t, n2).WorstComb
	if buffered >= unbuffered {
		t.Fatalf("buffering did not help: %.1f vs %.1f FO4", buffered.FO4(), unbuffered.FO4())
	}
}

func TestMapDeterministic(t *testing.T) {
	lib := cell.RichASIC()
	ad, _ := circuits.CarryLookahead(lib, 8)
	a, err := Map(ad.N, lib, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Map(ad.N, lib, MapOptions{})
	if a.NumGates() != b.NumGates() || CoverStats(a) != CoverStats(b) {
		t.Fatal("mapping is not deterministic")
	}
}

func TestMappedEquivalenceSpotCheck(t *testing.T) {
	// Structural sanity: mapping an XOR-free circuit (all-NAND ripple
	// of ANDs) must produce identical simulation on a few vectors.
	lib := cell.RichASIC()
	n := netlist.New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	x := n.MustGate(lib.Smallest(cell.FuncAnd2), a, b)
	y := n.MustGate(lib.Smallest(cell.FuncNor2), x, c)
	z := n.MustGate(lib.Smallest(cell.FuncNand2), y, a)
	n.MarkOutput(z)

	m, err := Map(n, lib, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for vec := 0; vec < 8; vec++ {
		in := map[string]bool{
			"a": vec&1 != 0, "b": vec&2 != 0, "c": vec&4 != 0,
		}
		want := simulate(t, n, in)
		got := simulate(t, m, in)
		if len(want) != len(got) {
			t.Fatal("output count mismatch")
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("vector %03b: output %d mismatch (want %v got %v)", vec, i, want[i], got[i])
			}
		}
	}
}

// simulate evaluates the netlist's primary outputs for named input values.
func simulate(t *testing.T, n *netlist.Netlist, in map[string]bool) []bool {
	t.Helper()
	val := make([]bool, n.NumNets())
	for _, id := range n.Inputs() {
		v, ok := in[n.Net(id).Name]
		if !ok {
			t.Fatalf("missing input %s", n.Net(id).Name)
		}
		val[id] = v
	}
	order, err := n.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	for _, gid := range order {
		g := n.Gate(gid)
		ins := make([]bool, len(g.In))
		for i, net := range g.In {
			ins[i] = val[net]
		}
		val[g.Out] = evalFunc(t, g.Cell.Func, ins)
	}
	outs := make([]bool, len(n.Outputs()))
	for i, id := range n.Outputs() {
		outs[i] = val[id]
	}
	return outs
}

func evalFunc(t *testing.T, f cell.Func, in []bool) bool {
	t.Helper()
	and := func() bool {
		for _, v := range in {
			if !v {
				return false
			}
		}
		return true
	}
	or := func() bool {
		for _, v := range in {
			if v {
				return true
			}
		}
		return false
	}
	switch f {
	case cell.FuncInv:
		return !in[0]
	case cell.FuncBuf:
		return in[0]
	case cell.FuncNand2, cell.FuncNand3, cell.FuncNand4:
		return !and()
	case cell.FuncNor2, cell.FuncNor3, cell.FuncNor4:
		return !or()
	case cell.FuncAnd2, cell.FuncAnd3, cell.FuncAnd4:
		return and()
	case cell.FuncOr2, cell.FuncOr3, cell.FuncOr4:
		return or()
	case cell.FuncXor2:
		return in[0] != in[1]
	case cell.FuncXnor2:
		return in[0] == in[1]
	case cell.FuncMux2:
		if in[2] {
			return in[1]
		}
		return in[0]
	case cell.FuncAoi21:
		return !(in[0] && in[1] || in[2])
	case cell.FuncAoi22:
		return !(in[0] && in[1] || in[2] && in[3])
	case cell.FuncOai21:
		return !((in[0] || in[1]) && in[2])
	case cell.FuncOai22:
		return !((in[0] || in[1]) && (in[2] || in[3]))
	case cell.FuncMaj3:
		n := 0
		for _, v := range in {
			if v {
				n++
			}
		}
		return n >= 2
	}
	t.Fatalf("evalFunc: unsupported %v", f)
	return false
}

func TestStrashSharesCommonSubexpressions(t *testing.T) {
	// Build the same expression twice from the same inputs: the subject
	// graph must contain it once, and the mapped netlist must be much
	// smaller than two independent copies.
	lib := cell.RichASIC()
	n := netlist.New("dup")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	build := func() netlist.NetID {
		x := n.MustGate(lib.Smallest(cell.FuncAnd2), a, b)
		y := n.MustGate(lib.Smallest(cell.FuncOr2), x, c)
		return n.MustGate(lib.Smallest(cell.FuncXor2), y, a)
	}
	o1 := build()
	o2 := build()
	n.MarkOutput(o1)
	n.MarkOutput(o2)

	g, err := buildSubject(n)
	if err != nil {
		t.Fatal(err)
	}
	// Strash must collapse the duplicate cone to the same node.
	if g.outOf[o1] != g.outOf[o2] {
		t.Fatal("identical cones got distinct subject nodes")
	}
	m, err := Map(n, lib, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	single := netlist.New("single")
	a2 := single.AddInput("a")
	b2 := single.AddInput("b")
	c2 := single.AddInput("c")
	x := single.MustGate(lib.Smallest(cell.FuncAnd2), a2, b2)
	y := single.MustGate(lib.Smallest(cell.FuncOr2), x, c2)
	single.MarkOutput(single.MustGate(lib.Smallest(cell.FuncXor2), y, a2))
	ms, err := Map(single, lib, MapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGates() != ms.NumGates() {
		t.Fatalf("shared map has %d gates, single cone %d — sharing failed",
			m.NumGates(), ms.NumGates())
	}
}
