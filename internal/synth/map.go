package synth

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// MapOptions configures technology mapping.
type MapOptions struct {
	// Objective selects the covering cost: delay (critical-path depth
	// under nominal loading) or area.
	Objective Objective
}

// Objective is the mapping cost function.
type Objective int

// Mapping objectives.
const (
	MinDelay Objective = iota
	MinArea
)

// Map re-expresses the combinational logic of n onto the target library:
// decompose to an INV/NAND2 subject graph, then cover it with library
// patterns by dynamic programming. Registers are preserved (re-created
// with the target library's default sequential cell at the same drive).
//
// The target library must provide at least INV and NAND2.
func Map(n *netlist.Netlist, target *cell.Library, opt MapOptions) (*netlist.Netlist, error) {
	if !target.Has(cell.FuncInv) || !target.Has(cell.FuncNand2) {
		return nil, fmt.Errorf("synth: target library %s lacks the INV/NAND2 basis", target.Name)
	}
	g, err := buildSubject(n)
	if err != nil {
		return nil, err
	}

	// Usable patterns: those whose function exists in the target.
	var pats []pattern
	for _, p := range patternSet() {
		if target.Has(p.f) {
			pats = append(pats, p)
		}
	}

	// nominalDelay estimates a cell's stage delay at effort-4 loading.
	nominalDelay := func(f cell.Func) float64 {
		c := target.Smallest(f)
		return float64(c.P) + c.G*cell.TargetEffortDelay
	}
	nominalArea := func(f cell.Func) float64 { return target.Smallest(f).Area }

	type choice struct {
		pat  int   // index into pats
		bind []int // leaf nodes in pin order
	}
	// DP over nodes in id order (construction order is topological).
	cost := make([]float64, len(g.nodes))
	best := make([]choice, len(g.nodes))
	for i := range best {
		best[i].pat = -1
	}
	for id := range g.nodes {
		if g.isLeaf(id) {
			cost[id] = 0
			continue
		}
		cost[id] = math.Inf(1)
		for pi, p := range pats {
			for _, bind := range g.matches(p, id) {
				var c float64
				switch opt.Objective {
				case MinArea:
					c = nominalArea(p.f)
					for _, leaf := range bind {
						c += cost[leaf] / math.Max(1, float64(g.nodes[leaf].fanout))
					}
				default:
					c = nominalDelay(p.f)
					worst := 0.0
					for _, leaf := range bind {
						worst = math.Max(worst, cost[leaf])
					}
					c += worst
				}
				if c < cost[id] {
					cost[id] = c
					best[id] = choice{pat: pi, bind: bind}
				}
			}
		}
		if best[id].pat < 0 {
			return nil, fmt.Errorf("synth: node %d uncoverable (pattern set incomplete)", id)
		}
	}

	// Build the mapped netlist from the chosen cover, starting at the
	// original design's endpoints.
	out := netlist.New(n.Name + "@" + target.Name)
	mapped := make(map[int]netlist.NetID) // subject node -> new net

	// Recreate primary inputs in original order.
	for _, id := range n.Inputs() {
		mapped[g.outOf[id]] = out.AddInput(n.Net(id).Name)
	}
	// Pre-allocate register Q nets.
	type regPlan struct {
		src  *netlist.Reg
		q    netlist.NetID
		cell *cell.SeqCell
	}
	var regs []regPlan
	for _, r := range n.Regs() {
		q := out.AllocNet(n.Net(r.Q).Name)
		seq := target.DefaultSeq(r.Cell.Drive)
		if seq == nil {
			return nil, fmt.Errorf("synth: target library %s has no sequential cells", target.Name)
		}
		regs = append(regs, regPlan{src: r, q: q, cell: seq})
		mapped[g.outOf[r.Q]] = q
	}

	var emit func(id int) (netlist.NetID, error)
	emit = func(id int) (netlist.NetID, error) {
		if net, ok := mapped[id]; ok {
			return net, nil
		}
		ch := best[id]
		if ch.pat < 0 {
			return netlist.None, fmt.Errorf("synth: no cover chosen for node %d", id)
		}
		p := pats[ch.pat]
		ins := make([]netlist.NetID, len(ch.bind))
		for i, leaf := range ch.bind {
			net, err := emit(leaf)
			if err != nil {
				return netlist.None, err
			}
			ins[i] = net
		}
		c := target.Smallest(p.f)
		net, err := out.AddGate(c, ins...)
		if err != nil {
			return netlist.None, err
		}
		out.Gate(out.Net(net).Driver).Block = g.nodes[id].block
		mapped[id] = net
		return net, nil
	}

	// Emit logic for all endpoints: register D inputs and primary
	// outputs, in the original declaration order for determinism.
	for _, rp := range regs {
		d, err := emit(g.outOf[rp.src.D])
		if err != nil {
			return nil, err
		}
		rid, err := out.AddRegTo(rp.cell, d, rp.q)
		if err != nil {
			return nil, err
		}
		out.Reg(rid).Block = rp.src.Block
	}
	for _, id := range n.Outputs() {
		net, err := emit(g.outOf[id])
		if err != nil {
			return nil, err
		}
		out.MarkOutput(net)
		out.Net(net).PortLoad = n.Net(id).PortLoad
	}
	if err := out.Check(); err != nil {
		return nil, fmt.Errorf("synth: mapped netlist invalid: %w", err)
	}
	return out, nil
}

// CoverStats summarizes a mapping for reports: cells used per function.
func CoverStats(n *netlist.Netlist) string {
	counts := map[string]int{}
	for _, g := range n.Gates() {
		counts[g.Cell.Func.String()]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += fmt.Sprintf("%s:%d ", k, counts[k])
	}
	return s
}
