package synth

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
)

// sameFunction compares two netlists with identical interfaces over
// random input vectors using the netlist simulator.
func sameFunction(t *testing.T, a, b *netlist.Netlist, vectors int, seed int64) {
	t.Helper()
	simA, err := netlist.NewSimulator(a)
	if err != nil {
		t.Fatal(err)
	}
	simB, err := netlist.NewSimulator(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Outputs()) != len(b.Outputs()) {
		t.Fatalf("output counts differ: %d vs %d", len(a.Outputs()), len(b.Outputs()))
	}
	rng := rand.New(rand.NewSource(seed))
	for v := 0; v < vectors; v++ {
		in := map[string]bool{}
		for _, id := range a.Inputs() {
			in[a.Net(id).Name] = rng.Intn(2) == 1
		}
		oa, err := simA.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := simB.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("vector %d: output %d differs (%s vs %s)",
					v, i, a.Name, b.Name)
			}
		}
	}
}

// TestMapEquivalenceOnRandomLogic is the mapper's correctness check: for
// seeded random control netlists, technology mapping to the rich and the
// poor library must both preserve function exactly.
func TestMapEquivalenceOnRandomLogic(t *testing.T) {
	rich := cell.RichASIC()
	poor := cell.PoorASIC()
	for _, seed := range []int64{1, 2, 3, 4} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			src, err := circuits.RandomLogic(rich, 10, 150, seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, target := range []*cell.Library{rich, poor} {
				m, err := Map(src, target, MapOptions{})
				if err != nil {
					t.Fatalf("map to %s: %v", target.Name, err)
				}
				sameFunction(t, src, m, 120, seed*31+7)
			}
		})
	}
}

// TestMapEquivalenceOnAdders verifies mapping preserves arithmetic: a
// mapped carry-lookahead adder still adds.
func TestMapEquivalenceOnAdders(t *testing.T) {
	rich := cell.RichASIC()
	ad, err := circuits.CarryLookahead(rich, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []*cell.Library{rich, cell.PoorASIC(), cell.Custom()} {
		m, err := Map(ad.N, target, MapOptions{})
		if err != nil {
			t.Fatalf("map to %s: %v", target.Name, err)
		}
		sameFunction(t, ad.N, m, 150, 99)
	}
}

// TestMinAreaMapEquivalence checks the area-objective cover too.
func TestMinAreaMapEquivalence(t *testing.T) {
	rich := cell.RichASIC()
	src, err := circuits.RandomLogic(rich, 8, 120, 42)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(src, rich, MapOptions{Objective: MinArea})
	if err != nil {
		t.Fatal(err)
	}
	sameFunction(t, src, m, 120, 5)
}

// TestBufferingPreservesFunction: buffer trees are logically transparent.
func TestBufferingPreservesFunction(t *testing.T) {
	lib := cell.RichASIC()
	src, err := circuits.RandomLogic(lib, 8, 200, 77)
	if err != nil {
		t.Fatal(err)
	}
	clone := src.Clone()
	// Force heavy fanout by pointing many sinks at one net, then buffer.
	if _, err := InsertBuffers(clone, lib); err != nil {
		t.Fatal(err)
	}
	sameFunction(t, src, clone, 120, 13)
}
