package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// ScanResult reports a scan-insertion pass.
type ScanResult struct {
	// Chained is the number of registers stitched into the chain.
	Chained int
	// MuxesAdded counts the scan muxes inserted before D pins.
	MuxesAdded int
	// AreaBefore/AreaAfter capture the silicon cost.
	AreaBefore, AreaAfter float64
}

func (r ScanResult) String() string {
	return fmt.Sprintf("scan: %d registers chained, +%d muxes, area %.0f -> %.0f (+%.1f%%)",
		r.Chained, r.MuxesAdded, r.AreaBefore, r.AreaAfter,
		100*(r.AreaAfter-r.AreaBefore)/r.AreaBefore)
}

// InsertScan stitches every register into a scan chain: a MUX2 in front of
// each D pin selects between functional data and the previous register's Q
// (scan_in for the first), controlled by a new scan_en input; the last Q
// is exposed as scan_out. This is the testability machinery behind the
// paper's section 8.3 option — shipping parts at their measured speed
// requires being able to test them — and its cost is real: one mux delay
// and its area on every register path, which the returned result and the
// netlist's timing make visible.
func InsertScan(n *netlist.Netlist, lib *cell.Library) (ScanResult, error) {
	res := ScanResult{AreaBefore: n.TotalArea()}
	if n.NumRegs() == 0 {
		return res, fmt.Errorf("synth: no registers to chain")
	}
	mux := lib.Smallest(cell.FuncMux2)
	if mux == nil {
		return res, fmt.Errorf("synth: library %s has no MUX2 for scan", lib.Name)
	}

	scanEn := n.AddInput("scan_en")
	scanIn := n.AddInput("scan_in")

	prev := scanIn
	for _, r := range n.Regs() {
		// MUX2(functional, scan, scan_en): sel=1 selects the chain.
		out, err := n.AddGate(mux, r.D, prev, scanEn)
		if err != nil {
			return res, err
		}
		n.Gate(n.Net(out).Driver).Block = r.Block
		n.RewireRegD(r.ID, out)
		prev = r.Q
		res.Chained++
		res.MuxesAdded++
	}
	n.MarkOutput(prev)
	if n.Net(prev).Name == "" {
		n.Net(prev).Name = "scan_out"
	}
	if err := n.Check(); err != nil {
		return res, fmt.Errorf("synth: scan insertion broke the netlist: %w", err)
	}
	res.AreaAfter = n.TotalArea()
	return res, nil
}
