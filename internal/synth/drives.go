package synth

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/wire"
)

// SelectDrives walks the netlist and re-selects each gate's drive strength
// against its actual load (sink pins plus the wire-load estimate), and
// iterates to a fixpoint since resizing a gate changes the load its
// drivers see. This is the "initial logic synthesis chooses drive
// strengths using estimations for wire lengths" step of section 6.2.
//
// When wl is non-nil, each net's WireCap is refreshed from the wire-load
// model by fanout; pass nil to size against already-annotated parasitics
// (the post-layout resizing case).
func SelectDrives(n *netlist.Netlist, lib *cell.Library, wl *wire.LoadModel) error {
	if wl != nil {
		for _, nt := range n.Nets() {
			fanout := len(nt.Sinks) + len(nt.RegSinks)
			if fanout > 0 {
				nt.WireCap = wl.NetCap(fanout)
			}
		}
	}
	const maxIters = 12
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for _, g := range n.Gates() {
			load := n.Load(g.Out)
			best, err := lib.BestForLoad(g.Cell.Func, load)
			if err != nil {
				return fmt.Errorf("synth: sizing gate %d: %w", g.ID, err)
			}
			if best != g.Cell && best.Drive != g.Cell.Drive {
				g.Cell = best
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return nil
}

// InsertBuffers splits high-fanout nets by inserting buffer trees so that
// no gate sees an effort delay above the library target on its output.
// Sinks are distributed round-robin over the new buffers. Returns the
// number of buffers added.
func InsertBuffers(n *netlist.Netlist, lib *cell.Library) (int, error) {
	bufFunc := cell.FuncBuf
	if !lib.Has(bufFunc) {
		// Inverting libraries buffer with inverter pairs; to keep
		// polarity we insert two stages below.
		bufFunc = cell.FuncInv
	}
	big := lib.Largest(bufFunc)
	if big == nil {
		return 0, fmt.Errorf("synth: library %s has no buffer or inverter", lib.Name)
	}

	added := 0
	// Repeat until no net is overloaded: buffers inserted in one pass
	// can themselves need a second level, forming a tree.
	for pass := 0; pass < 8; pass++ {
		addedThisPass := 0
		// Iterate over a snapshot: inserting buffers appends gates.
		gateCount := n.NumGates()
		for i := 0; i < gateCount; i++ {
			g := n.Gate(netlist.GateID(i))
			driver := lib.Largest(g.Cell.Func)
			load := n.Load(g.Out)
			// Worst acceptable load for the largest available drive.
			limit := cell.TargetEffortDelay * driver.Drive * 2
			if float64(load) <= limit {
				continue
			}
			nt := n.Net(g.Out)
			sinks := append([]netlist.Pin(nil), nt.Sinks...)
			if len(sinks) < 4 {
				continue // load is one huge pin or wire; buffering won't split it
			}
			// Split sinks into groups, each driven by a buffer (or
			// inverter pair when the library lacks BUF).
			groups := int(float64(load)/limit) + 1
			if groups > len(sinks) {
				groups = len(sinks)
			}
			// Detach all sinks from the net.
			nt.Sinks = nil
			for gi := 0; gi < groups; gi++ {
				var bufOut netlist.NetID
				var err error
				if bufFunc == cell.FuncBuf {
					bufOut, err = n.AddGate(big, g.Out)
					addedThisPass++
				} else {
					var mid netlist.NetID
					mid, err = n.AddGate(big, g.Out)
					if err == nil {
						bufOut, err = n.AddGate(big, mid)
					}
					addedThisPass += 2
				}
				if err != nil {
					return added + addedThisPass, err
				}
				bg := n.Net(bufOut).Driver
				n.Gate(bg).Block = g.Block
				// Reattach this group's sinks to the buffer output.
				for si := gi; si < len(sinks); si += groups {
					p := sinks[si]
					n.Gate(p.Gate).In[p.Index] = bufOut
					bnt := n.Net(bufOut)
					bnt.Sinks = append(bnt.Sinks, p)
				}
			}
		}
		added += addedThisPass
		if addedThisPass == 0 {
			break
		}
	}
	if added > 0 {
		if err := n.Check(); err != nil {
			return added, fmt.Errorf("synth: buffering broke the netlist: %w", err)
		}
	}
	return added, nil
}
