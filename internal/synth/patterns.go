package synth

import (
	"fmt"

	"repro/internal/cell"
)

// pnode is a node of a pattern tree over the INV/NAND2 subject basis.
type pnode struct {
	kind pkind
	kids []*pnode
}

type pkind int

const (
	pLeaf pkind = iota
	pInv
	pNand
)

func leafP() *pnode        { return &pnode{kind: pLeaf} }
func invP(a *pnode) *pnode { return &pnode{kind: pInv, kids: []*pnode{a}} }
func nandP(a, b *pnode) *pnode {
	return &pnode{kind: pNand, kids: []*pnode{a, b}}
}

// pattern ties a library function to its subject-graph shape. Leaves are
// the cell's input pins, in order.
type pattern struct {
	f    cell.Func
	tree *pnode
	// stages is the pattern's internal stage count, used as a
	// load-independent depth estimate during covering.
	stages int
}

// patternSet builds the matchable patterns. XOR-class cells are excluded:
// their subject decomposition is a DAG (the shared NAND), which tree
// covering cannot represent; XOR cells enter designs through direct
// generation instead.
func patternSet() []pattern {
	and2 := func(a, b *pnode) *pnode { return invP(nandP(a, b)) }
	or2 := func(a, b *pnode) *pnode { return nandP(invP(a), invP(b)) }

	return []pattern{
		{f: cell.FuncInv, tree: invP(leafP()), stages: 1},
		{f: cell.FuncNand2, tree: nandP(leafP(), leafP()), stages: 1},
		{f: cell.FuncAnd2, tree: and2(leafP(), leafP()), stages: 2},
		{f: cell.FuncOr2, tree: or2(leafP(), leafP()), stages: 2},
		{f: cell.FuncNor2, tree: invP(or2(leafP(), leafP())), stages: 2},
		{f: cell.FuncNand3, tree: nandP(and2(leafP(), leafP()), leafP()), stages: 2},
		{f: cell.FuncAnd3, tree: invP(nandP(and2(leafP(), leafP()), leafP())), stages: 2},
		{f: cell.FuncNand4, tree: nandP(and2(leafP(), leafP()), and2(leafP(), leafP())), stages: 2},
		{f: cell.FuncAnd4, tree: invP(nandP(and2(leafP(), leafP()), and2(leafP(), leafP()))), stages: 2},
		{f: cell.FuncOr3, tree: nandP(invP(or2(leafP(), leafP())), invP(leafP())), stages: 2},
		{f: cell.FuncNor3, tree: invP(nandP(invP(or2(leafP(), leafP())), invP(leafP()))), stages: 2},
		{f: cell.FuncOr4, tree: nandP(invP(or2(leafP(), leafP())), invP(or2(leafP(), leafP()))), stages: 2},
		{f: cell.FuncNor4, tree: invP(nandP(invP(or2(leafP(), leafP())), invP(or2(leafP(), leafP())))), stages: 2},
		{f: cell.FuncAoi21, tree: invP(nandP(nandP(leafP(), leafP()), invP(leafP()))), stages: 1},
		{f: cell.FuncOai21, tree: nandP(or2(leafP(), leafP()), leafP()), stages: 1},
		{f: cell.FuncAoi22, tree: invP(nandP(nandP(leafP(), leafP()), nandP(leafP(), leafP()))), stages: 1},
		{f: cell.FuncOai22, tree: nandP(or2(leafP(), leafP()), or2(leafP(), leafP())), stages: 1},
	}
}

// match attempts to overlay the pattern tree rooted at p onto the subject
// graph at node s. A pattern leaf matches any node and records a binding.
// Internal pattern nodes must match node kinds, and a subject node covered
// by the interior of a pattern must not be multi-fanout (its value would
// be needed elsewhere) — except at the match root itself.
//
// Each successful alternative appends its leaf bindings (in pin order) to
// out; NAND commutativity is explored both ways.
func (g *subjGraph) match(p *pnode, s int, root bool, bind []int) ([][]int, []int) {
	var results [][]int
	n := &g.nodes[s]
	if p.kind == pLeaf {
		cp := append(append([]int(nil), bind...), s)
		return [][]int{cp}, cp
	}
	if !root && n.fanout > 1 {
		return nil, bind
	}
	if g.isLeaf(s) {
		return nil, bind
	}
	switch p.kind {
	case pInv:
		if !n.inv {
			return nil, bind
		}
		r, _ := g.match(p.kids[0], n.in[0], false, bind)
		results = append(results, r...)
	case pNand:
		if n.inv {
			return nil, bind
		}
		// Try both input orders.
		for _, ord := range [][2]int{{0, 1}, {1, 0}} {
			left, _ := g.match(p.kids[0], n.in[ord[0]], false, bind)
			for _, lb := range left {
				right, _ := g.match(p.kids[1], n.in[ord[1]], false, lb)
				results = append(results, right...)
			}
		}
	}
	return results, bind
}

// matches returns all leaf bindings for pattern p rooted at subject node s.
func (g *subjGraph) matches(p pattern, s int) [][]int {
	r, _ := g.match(p.tree, s, true, nil)
	// Deduplicate identical bindings (commutativity can produce repeats
	// when both orders bind the same way).
	seen := map[string]bool{}
	var out [][]int
	for _, b := range r {
		key := fmt.Sprint(b)
		if !seen[key] {
			seen[key] = true
			out = append(out, b)
		}
	}
	return out
}
