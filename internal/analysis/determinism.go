package analysis

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the replay invariant in the core evaluation
// packages: every quantitative result (factor-ladder rungs, chaos-suite
// outputs at fixed seeds, journal replays, replica digests) is proven by
// byte-identical re-execution, so the flow arithmetic must be a pure
// function of its inputs. Inside the configured packages it forbids:
//
//   - wall-clock reads: time.Now, time.Since, time.Until;
//   - the global math/rand stream: any package-level math/rand (or
//     math/rand/v2) function other than the explicit constructors
//     New, NewSource, and NewZipf — rand.Intn(3) draws from a process
//     -global source that replay cannot pin;
//   - unseeded generators: rand.New(src) where src is not a literal
//     rand.NewSource(seed) call, so every stream's seed is visible at
//     the construction site.
//
// Methods on an explicit *rand.Rand stay legal: r.Intn(3) on a
// rand.New(rand.NewSource(seed)) generator is the blessed pattern.
type Determinism struct {
	core map[string]bool
}

// NewDeterminism builds the analyzer for the given core package import
// paths; packages outside the list are ignored.
func NewDeterminism(corePkgs ...string) *Determinism {
	m := make(map[string]bool, len(corePkgs))
	for _, p := range corePkgs {
		m[p] = true
	}
	return &Determinism{core: m}
}

// Name implements Analyzer.
func (d *Determinism) Name() string { return "determinism" }

// forbiddenClock are the wall-clock reads replay cannot reproduce.
var forbiddenClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the math/rand package-level functions that stay
// legal: they build explicit generators rather than draw from the
// global stream.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

// Package implements Analyzer.
func (d *Determinism) Package(p *Pass) {
	if !d.core[p.Pkg.Path] {
		return
	}
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn := pkgLevelFunc(p, n)
				if fn == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if forbiddenClock[fn.Name()] {
						p.Reportf(d.Name(), n.Pos(),
							"wall-clock read time.%s in a core evaluation package breaks deterministic replay; thread timing through an observer or annotate with //gaplint:allow", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !randConstructors[fn.Name()] {
						p.Reportf(d.Name(), n.Pos(),
							"global rand.%s draws from the process-wide stream; use a seeded rand.New(rand.NewSource(seed)) generator", fn.Name())
					}
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := pkgLevelFunc(p, sel)
				if fn == nil || fn.Name() != "New" {
					return true
				}
				if pp := fn.Pkg().Path(); pp != "math/rand" && pp != "math/rand/v2" {
					return true
				}
				if len(n.Args) == 1 && isRandSourceCall(p, n.Args[0]) {
					return true
				}
				p.Reportf(d.Name(), n.Pos(),
					"rand.New must be seeded at the construction site: rand.New(rand.NewSource(seed))")
			}
			return true
		})
	}
}

// pkgLevelFunc resolves sel to a package-level function (receiver-less
// *types.Func with a package), or nil.
func pkgLevelFunc(p *Pass, sel *ast.SelectorExpr) *types.Func {
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	return fn
}

// isRandSourceCall reports whether e is a direct call to a math/rand
// source constructor (NewSource, NewPCG, NewChaCha8).
func isRandSourceCall(p *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn := pkgLevelFunc(p, sel)
	if fn == nil {
		return false
	}
	pp := fn.Pkg().Path()
	if pp != "math/rand" && pp != "math/rand/v2" {
		return false
	}
	switch fn.Name() {
	case "NewSource", "NewPCG", "NewChaCha8":
		return true
	}
	return false
}
