package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
)

// MetricName keeps the /metrics contract coherent module-wide. Metric
// names are registered in two shapes: string literals passed as the
// first argument to a (*Metrics).Observe call (histogram names), and
// string-literal keys of map literals inside a (*Metrics).Counters
// method (flat counter names). Dashboards and the chaos suite address
// both by exact string, so every registered literal must be snake_case
// ([a-z0-9_], starting with a letter) and unique across the module —
// two packages silently registering the same name would merge unrelated
// series. Dynamic names ("stage_"+stage) are out of scope by design:
// they namespace with a literal prefix that the static sites own.
type MetricName struct {
	// mu guards sites: under the parallel driver, Package runs
	// concurrently for different packages. Finish sorts by a total
	// position key, so accumulation order never shows in the output.
	mu    sync.Mutex
	sites []metricSite
}

type metricSite struct {
	name string
	pos  token.Position
}

// NewMetricName builds the analyzer.
func NewMetricName() *MetricName { return &MetricName{} }

// Name implements Analyzer.
func (a *MetricName) Name() string { return "metricname" }

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// Package implements Analyzer: it records registration sites and flags
// malformed names; uniqueness waits for Finish.
func (a *MetricName) Package(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				a.observeCall(p, n)
			case *ast.FuncDecl:
				if n.Name.Name == "Counters" && recvNamed(p, n) == "Metrics" {
					a.countersKeys(p, n)
				}
			}
			return true
		})
	}
}

// observeCall records the literal first argument of Metrics.Observe.
func (a *MetricName) observeCall(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Observe" || len(call.Args) == 0 {
		return
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || namedOf(sig.Recv().Type()) != "Metrics" {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return // dynamic name: namespaced by a literal prefix elsewhere
	}
	a.record(p, lit)
}

// countersKeys records every string-literal map key inside a Counters
// method body.
func (a *MetricName) countersKeys(p *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if _, ok := types.Unalias(p.Pkg.Info.Types[cl].Type).Underlying().(*types.Map); !ok {
			return true
		}
		for _, el := range cl.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if lit, ok := kv.Key.(*ast.BasicLit); ok && lit.Kind == token.STRING {
				a.record(p, lit)
			}
		}
		return true
	})
}

// record validates one literal registration site and stores it for the
// module-wide uniqueness pass.
func (a *MetricName) record(p *Pass, lit *ast.BasicLit) {
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	pos := p.Pkg.Fset.Position(lit.Pos())
	if !snakeCase.MatchString(name) {
		p.Reportf(a.Name(), lit.Pos(),
			"metric name %q is not snake_case (want [a-z][a-z0-9_]*)", name)
		return
	}
	a.mu.Lock()
	a.sites = append(a.sites, metricSite{name: name, pos: pos})
	a.mu.Unlock()
}

// Finish implements Finisher: duplicate names across the whole run are
// reported at every site after the first.
func (a *MetricName) Finish(report func(Finding)) {
	sort.SliceStable(a.sites, func(i, j int) bool {
		si, sj := a.sites[i], a.sites[j]
		if si.pos.Filename != sj.pos.Filename {
			return si.pos.Filename < sj.pos.Filename
		}
		if si.pos.Line != sj.pos.Line {
			return si.pos.Line < sj.pos.Line
		}
		if si.pos.Column != sj.pos.Column {
			return si.pos.Column < sj.pos.Column
		}
		return si.name < sj.name
	})
	first := make(map[string]token.Position)
	for _, s := range a.sites {
		if prev, ok := first[s.name]; ok {
			report(Finding{Pos: s.pos, Analyzer: a.Name(),
				Message: fmt.Sprintf("metric name %q already registered at %s; metric names must be unique module-wide", s.name, shortPos(prev))})
			continue
		}
		first[s.name] = s.pos
	}
	a.sites = nil
}

func shortPos(p token.Position) string {
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

// recvNamed returns the named type of fd's receiver, or "".
func recvNamed(p *Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	tv, ok := p.Pkg.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return ""
	}
	return namedOf(tv.Type)
}

// namedOf unwraps pointers and returns the named type's name, or "".
func namedOf(t types.Type) string {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
