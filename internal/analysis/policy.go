package analysis

// This file is the repo's lint policy: which packages each analyzer
// guards. cmd/gaplint, the fixture-independent tests, and
// BenchmarkGaplint all share it so the lists cannot drift.

// CorePackages are the deterministic evaluation packages (relative to
// internal/): everything a factor-ladder rung, chaos replay, or replica
// digest re-executes must be a pure function of its inputs.
var CorePackages = []string{
	"core", "wire", "sta", "sizing", "place", "pipeline", "dynlogic",
	"procvar", "power", "clock", "cell", "circuits", "netlist", "synth",
	"units", "chips",
}

// ServicePackages are the boundary packages (relative to internal/)
// whose exported errors feed jobs.Classify, the circuit breakers, and
// the HTTP status mapping.
var ServicePackages = []string{"jobs", "serve", "cluster"}

// MeasurementPackages extend the determinism guarantee to the load
// generator: schedules, corpora, and item picks must be pure functions
// of the plan seed (seeded rand.New only), so the same gapload seed
// replays the identical experiment. The single sanctioned wall-clock
// seam — latency measurement — is annotated in loadgen/clock.go.
var MeasurementPackages = []string{"loadgen"}

// StoragePackages extend the determinism guarantee to the result
// store: segment layout, record encoding, admission estimates,
// compaction order, and the integrity scrubber's cursor walk must be
// pure functions of the operation sequence, so two stores that saw the
// same Puts compact to byte-identical segments, a restart rebuilds the
// identical index, and a scrub pass condemns the same records on
// replay. The scrubber's only randomness is its seeded first-pass
// origin (rand.New(rand.NewSource(seed)), which the determinism
// analyzer permits); its pacing lives in cmd/gapd, so the single
// sanctioned wall-clock seam — the opened_at display timestamp on
// Stats — remains the one annotated in cas/clock.go.
var StoragePackages = []string{"cas"}

// ConcurrencyPackages are the deeply concurrent service packages the
// concurrency-hygiene analyzers guard: every goroutine must have a
// provable shutdown path (goroutinelifecycle), every majority-guarded
// struct field must be guarded at all sites (lockdiscipline), and the
// channel leak/panic patterns are barred (chanhygiene). `go test
// -race` proves only the interleavings the tests execute; these
// analyzers prove the invariants on all code, every run.
var ConcurrencyPackages = []string{
	"jobs", "cluster", "gossip", "cas", "serve", "loadgen",
}

// MembershipPackages extend the determinism guarantee to the gossip
// membership protocol: probe order, ping-req proxy picks, and state
// transitions are driven by rounds, not wall time, and must be pure
// functions of the seed and the observed events. The single sanctioned
// wall-clock seam — the display timestamp on view snapshots — is
// annotated in gossip/clock.go. The ctxflow analyzer covers the
// package too, by being module-wide.
var MembershipPackages = []string{"gossip"}

// RepoAnalyzers builds the full analyzer set for a module rooted at
// modPath ("repro" in this repo).
func RepoAnalyzers(modPath string) []Analyzer {
	prefix := func(names []string) []string {
		out := make([]string, len(names))
		for i, n := range names {
			out[i] = modPath + "/internal/" + n
		}
		return out
	}
	return []Analyzer{
		NewDeterminism(append(append(append(prefix(CorePackages),
			prefix(MeasurementPackages)...), prefix(MembershipPackages)...),
			prefix(StoragePackages)...)...),
		NewErrTaxonomy(prefix(ServicePackages)...),
		NewCtxFlow(),
		NewMetricName(),
		NewLockDiscipline(prefix(ConcurrencyPackages)...),
		NewGoroutineLifecycle(prefix(ConcurrencyPackages)...),
		NewChanHygiene(prefix(ConcurrencyPackages)...),
	}
}
