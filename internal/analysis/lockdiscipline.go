package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockDiscipline infers the mutex-guarding contract of every struct in
// the configured packages and enforces it at each access site. The
// premise: `go test -race` proves only the interleavings the tests
// happen to execute, but the guarding rule itself — "field f of T is
// only touched under T.mu" — is a static property the gate can prove on
// all code, every run.
//
// Inference, per struct type T declaring a sync.Mutex/RWMutex field:
//
//  1. every method body is walked with an abstract lock state (which
//     mutex fields of the receiver are held), flow-sensitively: Lock /
//     RLock acquire, Unlock / RUnlock release, defer Unlock holds to
//     function exit, branches merge by intersection, and a branch that
//     returns does not pollute the fall-through state;
//  2. the walk is interprocedural within the package: a method whose
//     every call site holds T.mu analyzes its own body with T.mu held
//     at entry (fixpointed), so locked helpers like a cursor-advance
//     called under the scrub lock need no annotation;
//  3. methods reachable only from the function that constructs the
//     value (receiver built from a composite literal in the caller)
//     are pre-publication — no other goroutine can hold a reference —
//     and are exempt, so boot/init helpers stay clean.
//
// A field guarded by one mutex at a strict majority of its access
// sites must be guarded at every site: each uncovered access is
// reported. Independently, a return reachable while a bare Lock (no
// deferred Unlock) is still held is reported — the shape that deadlocks
// the next caller when an early-return path is added later. TryLock is
// deliberately untracked: its conditional-acquire and lock-handoff
// patterns (single-flight latches) are not amenable to this analysis.
type LockDiscipline struct {
	pkgs map[string]bool
}

// NewLockDiscipline builds the analyzer for the given package import
// paths; packages outside the list are ignored.
func NewLockDiscipline(pkgPaths ...string) *LockDiscipline {
	m := make(map[string]bool, len(pkgPaths))
	for _, p := range pkgPaths {
		m[p] = true
	}
	return &LockDiscipline{pkgs: m}
}

// Name implements Analyzer.
func (a *LockDiscipline) Name() string { return "lockdiscipline" }

// lockedStruct is one struct type under analysis: its mutex fields and
// the plain fields whose guarding contract is inferred.
type lockedStruct struct {
	named   *types.Named
	mutexes []*types.Var
	isMutex map[*types.Var]bool
}

// fieldAccess is one read or write of a plain field through a method
// receiver.
type fieldAccess struct {
	field *types.Var
	pos   token.Pos
	held  map[*types.Var]bool // locally held mutexes at the site
	owner *methodFacts
}

// methodCall is one intra-type call site: method m called on the
// receiver with the given lock state.
type methodCall struct {
	callee *types.Func
	held   map[*types.Var]bool
	owner  *methodFacts
	prePub bool
}

// lockedReturn is a return statement reached while a bare Lock is held.
type lockedReturn struct {
	mutex *types.Var
	pos   token.Pos
}

// methodFacts is the per-method summary the fixpoint refines.
type methodFacts struct {
	fn        *types.Func
	accesses  []*fieldAccess
	returns   []lockedReturn
	entryHeld map[*types.Var]bool // mutexes held at every call site
	sites     int                 // intra-package call sites seen
	preOnly   bool                // every call site is pre-publication
}

// Package implements Analyzer.
func (a *LockDiscipline) Package(p *Pass) {
	if !a.pkgs[p.Pkg.Path] {
		return
	}
	structs := findLockedStructs(p)
	if len(structs) == 0 {
		return
	}
	for _, ls := range structs {
		a.checkStruct(p, ls)
	}
}

// findLockedStructs collects the package's struct types that declare a
// direct sync.Mutex or sync.RWMutex field.
func findLockedStructs(p *Pass) []*lockedStruct {
	var out []*lockedStruct
	scope := p.Pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		ls := &lockedStruct{named: named, isMutex: make(map[*types.Var]bool)}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isSyncMutex(f.Type()) {
				ls.mutexes = append(ls.mutexes, f)
				ls.isMutex[f] = true
			}
		}
		if len(ls.mutexes) > 0 {
			out = append(out, ls)
		}
	}
	return out
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkStruct runs the whole pipeline for one struct type.
func (a *LockDiscipline) checkStruct(p *Pass, ls *lockedStruct) {
	facts := make(map[*types.Func]*methodFacts)
	var calls []*methodCall

	// Pass 1: walk every function in the package. Methods of ls
	// contribute accesses and locked returns; every function contributes
	// call sites on ls-typed values (with pre-publication detection).
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			w := newLockWalker(p, ls, fd, fn)
			if w == nil {
				continue
			}
			w.walkStmts(fd.Body.List, newLockState())
			if w.facts != nil {
				facts[fn] = w.facts
			}
			calls = append(calls, w.calls...)
		}
	}

	// Pass 2: fixpoint the entry-held sets. A method's entry set is the
	// intersection of the held sets at all its non-pre-publication call
	// sites; call-site held sets include the caller's own entry set.
	// Pre-publication is transitive: a call made by a method that is
	// itself only reachable pre-publication (boot calling a shared
	// helper) is pre-publication too, so construction paths never drag a
	// dual-use helper's entry set down to empty.
	for f := range facts {
		facts[f].entryHeld = nil // unknown until a site is seen
	}
	for iter := 0; iter < len(facts)+2; iter++ {
		changed := false
		agg := make(map[*types.Func]*methodFacts, len(facts))
		for fn, mf := range facts {
			agg[fn] = &methodFacts{fn: fn, preOnly: true}
			_ = mf
		}
		for _, c := range calls {
			tgt, ok := agg[c.callee]
			if !ok {
				continue
			}
			tgt.sites++
			if c.prePub || (c.owner != nil && facts[c.owner.fn] != nil && facts[c.owner.fn].preOnly) {
				continue
			}
			tgt.preOnly = false
			held := unionHeld(c.held, callerEntry(facts, c.owner))
			if tgt.entryHeld == nil {
				tgt.entryHeld = copyHeld(held)
			} else {
				tgt.entryHeld = intersectHeld(tgt.entryHeld, held)
			}
		}
		for fn, mf := range facts {
			na := agg[fn]
			ne := na.entryHeld
			if na.sites == 0 {
				ne = nil
				na.preOnly = false
			}
			if !sameHeld(mf.entryHeld, ne) || mf.preOnly != (na.preOnly && na.sites > 0) || mf.sites != na.sites {
				changed = true
			}
			mf.entryHeld = ne
			mf.sites = na.sites
			mf.preOnly = na.preOnly && na.sites > 0
		}
		if !changed {
			break
		}
	}

	// Pass 3: majority vote per field, then report uncovered sites and
	// locked returns.
	type siteInfo struct {
		pos     token.Pos
		heldBy  map[*types.Var]bool
		skipped bool
	}
	byField := make(map[*types.Var][]siteInfo)
	var fieldOrder []*types.Var
	for _, mf := range facts {
		if mf.preOnly {
			continue // construction path: value not yet published
		}
		for _, acc := range mf.accesses {
			eff := unionHeld(acc.held, mf.entryHeld)
			if _, seen := byField[acc.field]; !seen {
				fieldOrder = append(fieldOrder, acc.field)
			}
			byField[acc.field] = append(byField[acc.field], siteInfo{pos: acc.pos, heldBy: eff})
		}
		for _, lr := range mf.returns {
			p.Reportf(a.Name(), lr.pos,
				"return while %s.%s is locked with no deferred unlock; an early-return path here deadlocks the next caller — use defer %s.Unlock() or unlock before returning",
				ls.named.Obj().Name(), lr.mutex.Name(), lr.mutex.Name())
		}
	}
	sort.Slice(fieldOrder, func(i, j int) bool { return fieldOrder[i].Name() < fieldOrder[j].Name() })
	for _, f := range fieldOrder {
		sites := byField[f]
		total := len(sites)
		for _, mu := range ls.mutexes {
			guarded := 0
			for _, s := range sites {
				if s.heldBy[mu] {
					guarded++
				}
			}
			if guarded*2 <= total || guarded == total {
				continue // no strict majority under mu, or fully covered
			}
			for _, s := range sites {
				if !s.heldBy[mu] {
					p.Reportf(a.Name(), s.pos,
						"field %s.%s is guarded by %s at %d of %d access sites but not here; hold %s (or annotate with //gaplint:allow lockdiscipline — <reason>)",
						ls.named.Obj().Name(), f.Name(), mu.Name(), guarded, total, mu.Name())
				}
			}
			break // attribute each field to its dominant mutex once
		}
	}
}

// callerEntry returns the entry-held set of the calling method, or nil
// for call sites in plain functions.
func callerEntry(facts map[*types.Func]*methodFacts, owner *methodFacts) map[*types.Var]bool {
	if owner == nil {
		return nil
	}
	if mf, ok := facts[owner.fn]; ok {
		return mf.entryHeld
	}
	return nil
}

func newLockState() map[*types.Var]bool { return make(map[*types.Var]bool) }

func copyHeld(m map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool, len(m))
	for k, v := range m {
		if v {
			out[k] = true
		}
	}
	return out
}

func unionHeld(a, b map[*types.Var]bool) map[*types.Var]bool {
	out := copyHeld(a)
	for k, v := range b {
		if v {
			out[k] = true
		}
	}
	return out
}

func intersectHeld(a, b map[*types.Var]bool) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for k := range a {
		if a[k] && b[k] {
			out[k] = true
		}
	}
	return out
}

func sameHeld(a, b map[*types.Var]bool) bool {
	if len(copyHeld(a)) != len(copyHeld(b)) {
		return false
	}
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// lockWalker walks one function body tracking the receiver's lock
// state. For methods of the tracked struct, recv is the receiver
// object and facts accumulates the summary; for plain functions only
// call sites (with pre-publication marking) are collected.
type lockWalker struct {
	p     *Pass
	ls    *lockedStruct
	recv  types.Object // receiver var for methods of ls, else nil
	facts *methodFacts
	calls []*methodCall
	// construct holds locals initialized from a composite literal of
	// ls's type in this function — values not yet published.
	construct map[types.Object]bool
	// deferred marks mutexes with a registered deferred unlock.
	deferred map[*types.Var]bool
}

// newLockWalker prepares a walker for fd, or returns nil when the
// function can contribute nothing (no receiver of ls and no mention of
// ls-typed locals).
func newLockWalker(p *Pass, ls *lockedStruct, fd *ast.FuncDecl, fn *types.Func) *lockWalker {
	w := &lockWalker{p: p, ls: ls, construct: make(map[types.Object]bool), deferred: make(map[*types.Var]bool)}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		tv, ok := p.Pkg.Info.Types[fd.Recv.List[0].Type]
		if ok && namedType(tv.Type) == ls.named.Obj() {
			if names := fd.Recv.List[0].Names; len(names) == 1 {
				w.recv = p.Pkg.Info.Defs[names[0]]
				w.facts = &methodFacts{fn: fn}
			}
		}
	}
	// Record construction sites so calls on a just-built value are
	// recognized as pre-publication.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Pkg.Info.Defs[id]
			if obj == nil {
				continue
			}
			if isCompositeOf(p, as.Rhs[i], w.ls.named.Obj()) {
				w.construct[obj] = true
			}
		}
		return true
	})
	return w
}

// namedType unwraps pointers and returns the named type's TypeName.
func namedType(t types.Type) *types.TypeName {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// isCompositeOf reports whether e constructs a value of type tn:
// T{...}, &T{...}, or new(T).
func isCompositeOf(p *Pass, e ast.Expr, tn *types.TypeName) bool {
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return isCompositeOf(p, e.X, tn)
		}
	case *ast.CompositeLit:
		if tv, ok := p.Pkg.Info.Types[e]; ok {
			return namedType(tv.Type) == tn
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" && len(e.Args) == 1 {
			if tv, ok := p.Pkg.Info.Types[e.Args[0]]; ok {
				return namedType(tv.Type) == tn
			}
		}
	}
	return false
}

// walkStmts interprets a statement list, mutating state in place and
// reporting whether the list always terminates (ends in return).
func (w *lockWalker) walkStmts(stmts []ast.Stmt, state map[*types.Var]bool) (terminated bool) {
	for _, s := range stmts {
		if w.walkStmt(s, state) {
			return true
		}
	}
	return false
}

// walkStmt interprets one statement; true means control never falls
// through (return).
func (w *lockWalker) walkStmt(s ast.Stmt, state map[*types.Var]bool) bool {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, state)
	case *ast.ExprStmt:
		w.scanExpr(s.X, state)
		w.applyLockOps(s.X, state)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e, state)
			w.applyLockOps(e, state)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e, state)
		}
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.scanExpr(e, state)
				return false
			}
			return true
		})
	case *ast.IncDecStmt:
		w.scanExpr(s.X, state)
	case *ast.SendStmt:
		w.scanExpr(s.Chan, state)
		w.scanExpr(s.Value, state)
	case *ast.DeferStmt:
		if mu := w.unlockTarget(s.Call); mu != nil {
			w.deferred[mu] = true
			return false
		}
		for _, arg := range s.Call.Args {
			w.scanExpr(arg, state)
		}
		// Other deferred bodies run at exit under an unknowable lock
		// state; skip them rather than misclassify.
	case *ast.GoStmt:
		// The spawned body runs concurrently: no lock held.
		fresh := newLockState()
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			saved := w.deferred
			w.deferred = make(map[*types.Var]bool)
			w.walkStmts(fl.Body.List, fresh)
			w.deferred = saved
			for _, arg := range s.Call.Args {
				w.scanExpr(arg, fresh)
			}
		} else {
			w.scanExpr(s.Call, fresh)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e, state)
			w.applyLockOps(e, state)
		}
		if w.facts != nil {
			for _, mu := range w.ls.mutexes {
				if state[mu] && !w.deferred[mu] {
					w.facts.returns = append(w.facts.returns, lockedReturn{mutex: mu, pos: s.Pos()})
				}
			}
		}
		return true
	case *ast.BlockStmt:
		return w.walkStmts(s.List, state)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, state)
		}
		w.scanExpr(s.Cond, state)
		w.applyLockOps(s.Cond, state)
		thenState := copyHeld(state)
		thenTerm := w.walkStmts(s.Body.List, thenState)
		var elseState map[*types.Var]bool
		elseTerm := false
		if s.Else != nil {
			elseState = copyHeld(state)
			elseTerm = w.walkStmt(s.Else, elseState)
		}
		switch {
		case s.Else == nil:
			if !thenTerm {
				merge(state, intersectHeld(state, thenState))
			}
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			merge(state, elseState)
		case elseTerm:
			merge(state, thenState)
		default:
			merge(state, intersectHeld(thenState, elseState))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, state)
		}
		body := copyHeld(state)
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
		merge(state, intersectHeld(state, body))
	case *ast.RangeStmt:
		w.scanExpr(s.X, state)
		body := copyHeld(state)
		w.walkStmts(s.Body.List, body)
		merge(state, intersectHeld(state, body))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.walkBranches(s, state)
	}
	return false
}

// walkBranches handles switch/type-switch/select: each clause runs
// from the entry state; the merged exit is the intersection across
// clauses and the entry (a switch may match nothing).
func (w *lockWalker) walkBranches(s ast.Stmt, state map[*types.Var]bool) {
	var clauses []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, state)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	exit := copyHeld(state)
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e, state)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm, copyHeld(state))
			}
			body = c.Body
		}
		cs := copyHeld(state)
		if !w.walkStmts(body, cs) {
			exit = intersectHeld(exit, cs)
		}
	}
	merge(state, exit)
}

// merge overwrites dst with src in place.
func merge(dst, src map[*types.Var]bool) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		if v {
			dst[k] = true
		}
	}
}

// applyLockOps updates state for any mu.Lock/RLock/Unlock/RUnlock
// calls inside e (statement-level expressions only).
func (w *lockWalker) applyLockOps(e ast.Expr, state map[*types.Var]bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	mu, op := w.lockOp(call)
	if mu == nil {
		return
	}
	switch op {
	case "Lock", "RLock":
		state[mu] = true
	case "Unlock", "RUnlock":
		delete(state, mu)
	}
}

// lockOp matches recv.mu.Lock()-shaped calls on the walker's receiver
// and returns the mutex field and operation name. TryLock and
// TryRLock are deliberately not matched.
func (w *lockWalker) lockOp(call *ast.CallExpr) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	if !w.isReceiver(inner.X) {
		return nil, ""
	}
	fsel, ok := w.p.Pkg.Info.Selections[inner]
	if !ok || fsel.Kind() != types.FieldVal {
		return nil, ""
	}
	f, ok := fsel.Obj().(*types.Var)
	if !ok || !w.ls.isMutex[f] {
		return nil, ""
	}
	return f, op
}

// unlockTarget matches defer recv.mu.Unlock()/RUnlock().
func (w *lockWalker) unlockTarget(call *ast.CallExpr) *types.Var {
	mu, op := w.lockOp(call)
	if mu != nil && (op == "Unlock" || op == "RUnlock") {
		return mu
	}
	return nil
}

// isReceiver reports whether e is the method's receiver identifier.
func (w *lockWalker) isReceiver(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok || w.recv == nil {
		return false
	}
	return w.p.Pkg.Info.Uses[id] == w.recv
}

// baseObject resolves e to the object of a plain identifier.
func (w *lockWalker) baseObject(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := w.p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return w.p.Pkg.Info.Defs[id]
}

// scanExpr records field accesses and intra-type method calls inside e
// under the current state. Function literals are walked inline under
// the caller's state (callbacks like sort.Slice run synchronously);
// go-statement bodies are handled separately with a fresh state.
func (w *lockWalker) scanExpr(e ast.Expr, state map[*types.Var]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.walkStmts(n.Body.List, copyHeld(state))
			return false
		case *ast.CallExpr:
			w.recordCall(n, state)
		case *ast.SelectorExpr:
			w.recordAccess(n, state)
		}
		return true
	})
}

// recordAccess notes a plain-field selection on the method receiver.
func (w *lockWalker) recordAccess(sel *ast.SelectorExpr, state map[*types.Var]bool) {
	if w.facts == nil || !w.isReceiver(sel.X) {
		return
	}
	fsel, ok := w.p.Pkg.Info.Selections[sel]
	if !ok || fsel.Kind() != types.FieldVal {
		return
	}
	f, ok := fsel.Obj().(*types.Var)
	if !ok || w.ls.isMutex[f] || !declaredOn(w.ls.named, f) {
		return
	}
	if isSyncType(f.Type()) {
		return // WaitGroups, Onces, atomics: safe without the mutex
	}
	w.facts.accesses = append(w.facts.accesses, &fieldAccess{
		field: f, pos: sel.Sel.Pos(), held: copyHeld(state), owner: w.facts,
	})
}

// declaredOn reports whether f is a direct field of named's struct.
func declaredOn(named *types.Named, f *types.Var) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == f {
			return true
		}
	}
	return false
}

// isSyncType reports whether t is a sync or sync/atomic type (or a
// channel), all of which have their own synchronization story.
func isSyncType(t types.Type) bool {
	t = types.Unalias(t)
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "sync" || pkg.Path() == "sync/atomic"
}

// recordCall notes x.m(...) where m is a method of the tracked struct,
// with the current lock state and pre-publication marking.
func (w *lockWalker) recordCall(call *ast.CallExpr, state map[*types.Var]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	msel, ok := w.p.Pkg.Info.Selections[sel]
	if !ok || msel.Kind() != types.MethodVal {
		return
	}
	fn, ok := msel.Obj().(*types.Func)
	if !ok {
		return
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv == nil || namedType(recv.Type()) != w.ls.named.Obj() {
		return
	}
	base := w.baseObject(sel.X)
	if base == nil {
		return
	}
	onReceiver := w.recv != nil && base == w.recv
	prePub := !onReceiver && w.construct[base]
	if !onReceiver && !prePub {
		// A call on some other reachable value: treat as an unlocked
		// external site so entry-held stays sound.
		w.calls = append(w.calls, &methodCall{callee: fn, held: newLockState(), owner: nil})
		return
	}
	var owner *methodFacts
	if onReceiver {
		owner = w.facts
	}
	w.calls = append(w.calls, &methodCall{callee: fn, held: copyHeld(state), owner: owner, prePub: prePub})
}
