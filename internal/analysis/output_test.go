package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestFormatJSONRecords checks the -json rendering: one valid JSON
// object per line, fields matching the findings, paths base-relative.
func TestFormatJSONRecords(t *testing.T) {
	src := filepath.Join("testdata", "src")
	pkgs, err := LoadDirs(src, "fixture", "chanhyg")
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs, []Analyzer{NewChanHygiene("fixture/chanhyg")})
	if len(findings) == 0 {
		t.Fatal("fixture produced no findings; JSON test is vacuous")
	}
	out, err := FormatJSON(findings, mustAbs(t, src))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != len(findings) {
		t.Fatalf("got %d JSON lines for %d findings", len(lines), len(findings))
	}
	for i, line := range lines {
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		f := findings[i]
		if r.File != "chanhyg/chanhyg.go" {
			t.Errorf("line %d: file = %q, want base-relative fixture path", i, r.File)
		}
		if r.Line != f.Pos.Line || r.Col != f.Pos.Column || r.Analyzer != f.Analyzer || r.Message != f.Message {
			t.Errorf("line %d: record %+v does not match finding %+v", i, r, f)
		}
	}
}

// TestCollectAllows checks the -list-allows audit: every directive is
// listed (reasoned or not), sorted by position, and the text rendering
// calls out missing reasons.
func TestCollectAllows(t *testing.T) {
	src := filepath.Join("testdata", "src")
	pkgs, err := LoadDirs(src, "fixture", "suppress", "lockdisc")
	if err != nil {
		t.Fatal(err)
	}
	allows := CollectAllows(pkgs, mustAbs(t, src))
	byFile := map[string]int{}
	reasonless := 0
	for i, a := range allows {
		byFile[a.File]++
		if a.Reason == "" {
			reasonless++
		}
		if i > 0 {
			prev := allows[i-1]
			if prev.File > a.File || (prev.File == a.File && prev.Line > a.Line) {
				t.Errorf("allows out of order: %s:%d after %s:%d", a.File, a.Line, prev.File, prev.Line)
			}
		}
	}
	if byFile["suppress/suppress.go"] != 3 {
		t.Errorf("suppress fixture: %d allows listed, want 3 (reasoned, reasonless, stale)", byFile["suppress/suppress.go"])
	}
	if byFile["lockdisc/lockdisc.go"] != 1 {
		t.Errorf("lockdisc fixture: %d allows listed, want 1", byFile["lockdisc/lockdisc.go"])
	}
	if reasonless != 1 {
		t.Errorf("%d reasonless allows, want exactly 1 (the suppress fixture's)", reasonless)
	}
	text := FormatAllows(allows)
	if !strings.Contains(text, "no reason given") {
		t.Error("FormatAllows does not call out the reasonless directive")
	}
	if !strings.Contains(text, "[lockdiscipline] monitoring-only read") {
		t.Errorf("FormatAllows missing the lockdisc entry:\n%s", text)
	}
}

// TestRunWorkersDeterministic is the parallel-driver contract: the
// formatted output is byte-identical at any worker count, including
// the serial debugging mode and the GOMAXPROCS default.
func TestRunWorkersDeterministic(t *testing.T) {
	src := filepath.Join("testdata", "src")
	dirs := []string{"det", "notcore", "errtax", "ctxflow", "metricname", "metricname2",
		"suppress", "lockdisc", "goroutine", "chanhyg"}
	pkgs, err := LoadDirs(src, "fixture", dirs...)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh analyzers per run: MetricName accumulates sites.
	mk := func() []Analyzer {
		return []Analyzer{
			NewDeterminism("fixture/det", "fixture/suppress"),
			NewErrTaxonomy("fixture/errtax"),
			NewCtxFlow(),
			NewMetricName(),
			NewLockDiscipline("fixture/lockdisc"),
			NewGoroutineLifecycle("fixture/goroutine"),
			NewChanHygiene("fixture/chanhyg"),
		}
	}
	base := Format(RunWorkers(pkgs, mk(), 1), mustAbs(t, src))
	if base == "" {
		t.Fatal("no findings across the fixtures; determinism test is vacuous")
	}
	for _, workers := range []int{1, 2, 3, 8, 0} {
		for round := 0; round < 3; round++ {
			got := Format(RunWorkers(pkgs, mk(), workers), mustAbs(t, src))
			if got != base {
				t.Fatalf("workers=%d round %d: output differs from serial run\n--- got ---\n%s--- want ---\n%s",
					workers, round, got, base)
			}
		}
	}
}
