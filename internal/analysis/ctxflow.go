package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context propagation: deadlines, cancellation, stage
// observers, fault-injection hooks, and netfault plans all ride the
// context, so a function that receives a context.Context and then
// manufactures a fresh one silently detaches its callees from the
// caller's deadline and from every chaos seam the tests rely on.
// Two rules, applied module-wide:
//
//  1. a function with an incoming ctx parameter (or a closure inside
//     one) must not call context.Background() or context.TODO();
//  2. within such a function, a callee that takes a context.Context
//     parameter must be passed a context derived from the incoming one
//     (the parameter itself, or a local produced from it via
//     context.WithCancel/WithTimeout/WithValue chains).
//
// Detached work that deliberately outlives a request (background
// replication, anti-entropy) is annotated at the call site with
// //gaplint:allow ctxflow so the detachment is visible in review.
type CtxFlow struct{}

// NewCtxFlow builds the analyzer.
func NewCtxFlow() *CtxFlow { return &CtxFlow{} }

// Name implements Analyzer.
func (a *CtxFlow) Name() string { return "ctxflow" }

// frame tracks one function's view of the incoming context: the ctx
// parameters plus every local derived from them, chained to the
// enclosing function for closures.
type frame struct {
	parent  *frame
	derived map[types.Object]bool
	hasCtx  bool
}

func (fr *frame) mentions(obj types.Object) bool {
	for f := fr; f != nil; f = f.parent {
		if f.derived[obj] {
			return true
		}
	}
	return false
}

// Package implements Analyzer.
func (a *CtxFlow) Package(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				a.walkFunc(p, fd.Type, fd.Body, nil)
			}
		}
	}
}

// walkFunc analyzes one function body under a fresh frame.
func (a *CtxFlow) walkFunc(p *Pass, ft *ast.FuncType, body *ast.BlockStmt, parent *frame) {
	fr := &frame{parent: parent, derived: make(map[types.Object]bool)}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := p.Pkg.Info.Defs[name]; obj != nil && isContextType(obj.Type()) {
					fr.derived[obj] = true
				}
			}
		}
	}
	fr.hasCtx = len(fr.derived) > 0 || (parent != nil && parent.hasCtx)
	a.collectDerived(p, body, fr)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			a.walkFunc(p, n.Type, n.Body, fr)
			return false
		case *ast.CallExpr:
			a.checkCall(p, n, fr)
		}
		return true
	})
}

// collectDerived fixpoints over assignments in body, adding
// context-typed locals whose right-hand side mentions an already
// derived context (ctx2 := context.WithTimeout(ctx, d) and chains).
func (a *CtxFlow) collectDerived(p *Pass, body *ast.BlockStmt, fr *frame) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Pkg.Info.Defs[id]
				if obj == nil {
					obj = p.Pkg.Info.Uses[id]
				}
				if obj == nil || !isContextType(obj.Type()) || fr.derived[obj] {
					continue
				}
				rhs := as.Rhs[0]
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				}
				if exprMentionsDerived(p, rhs, fr) {
					fr.derived[obj] = true
					changed = true
				}
			}
			return true
		})
	}
}

// checkCall applies both rules to one call site.
func (a *CtxFlow) checkCall(p *Pass, call *ast.CallExpr, fr *frame) {
	if name, ok := freshContextCall(p, call); ok {
		if fr.hasCtx {
			p.Reportf(a.Name(), call.Pos(),
				"function receives a ctx but calls context.%s(), detaching callees from the caller's deadline and chaos seams; propagate the incoming ctx", name)
		}
		return
	}
	if !fr.hasCtx {
		return
	}
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return // conversion or builtin
	}
	params := sig.Params()
	for i := 0; i < params.Len() && i < len(call.Args); i++ {
		if !isContextType(params.At(i).Type()) {
			continue
		}
		arg := call.Args[i]
		if _, fresh := freshContextCall(p, argAsCall(arg)); fresh {
			continue // rule 1 already reported it
		}
		if !exprMentionsDerived(p, arg, fr) {
			p.Reportf(a.Name(), arg.Pos(),
				"call passes a context not derived from the incoming ctx parameter; thread the caller's ctx through")
		}
	}
}

func argAsCall(e ast.Expr) *ast.CallExpr {
	call, _ := e.(*ast.CallExpr)
	return call
}

// freshContextCall reports whether call is context.Background() or
// context.TODO().
func freshContextCall(p *Pass, call *ast.CallExpr) (string, bool) {
	if call == nil {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn := pkgLevelFunc(p, sel)
	if fn == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}

// exprMentionsDerived reports whether any identifier inside e resolves
// to a derived context in fr's frame chain.
func exprMentionsDerived(p *Pass, e ast.Expr, fr *frame) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Pkg.Info.Uses[id]; obj != nil && fr.mentions(obj) {
				found = true
			}
		}
		return true
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
