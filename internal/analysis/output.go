package analysis

import (
	"encoding/json"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Record is one finding rendered for machine consumption: gaplint
// -json emits one Record per line (NDJSON), in the driver's total
// (file, line, col, analyzer, message) order, so CI annotators and
// dashboards can diff runs byte-for-byte.
type Record struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Records converts findings to Records with base-relative slash paths.
func Records(findings []Finding, base string) []Record {
	out := make([]Record, len(findings))
	for i, f := range findings {
		out[i] = Record{
			File:     relTo(base, f.Pos.Filename),
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
	}
	return out
}

// FormatJSON renders findings as newline-delimited JSON, one Record
// per line.
func FormatJSON(findings []Finding, base string) (string, error) {
	var b strings.Builder
	for _, r := range Records(findings, base) {
		line, err := json.Marshal(r)
		if err != nil {
			return "", err
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// Allow is one //gaplint:allow directive, for the -list-allows audit:
// every deliberate exception in the module, with the reason its author
// gave, in one reviewable listing.
type Allow struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

// CollectAllows lists every suppression directive in the packages with
// base-relative paths, sorted by (file, line). Reasonless directives
// are included — the audit is exactly where they should be visible.
func CollectAllows(pkgs []*Package, base string) []Allow {
	var out []Allow
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			pos := pkg.Fset.Position(f.Pos())
			for _, a := range parseAllows(pkg.Fset, f) {
				out = append(out, Allow{
					File:     relTo(base, pos.Filename),
					Line:     a.pos.Line,
					Analyzer: a.analyzer,
					Reason:   a.reason,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// FormatAllows renders the audit listing as "file:line: [analyzer]
// reason" lines; a missing reason is called out.
func FormatAllows(allows []Allow) string {
	var b strings.Builder
	for _, a := range allows {
		reason := a.Reason
		if reason == "" {
			reason = "(no reason given — this directive does not suppress)"
		}
		b.WriteString(a.File)
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(a.Line))
		b.WriteString(": [")
		b.WriteString(a.Analyzer)
		b.WriteString("] ")
		b.WriteString(reason)
		b.WriteByte('\n')
	}
	return b.String()
}

// relTo renders name relative to base (slash-separated) when it is
// inside base, mirroring Format.
func relTo(base, name string) string {
	if base != "" {
		if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return filepath.ToSlash(name)
}
