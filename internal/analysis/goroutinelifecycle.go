package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// GoroutineLifecycle requires every go statement in the configured
// service packages to have a provable shutdown path. The repo's
// availability story (drains, rolling restarts, zero-loss shutdown)
// rests on goroutines that actually stop: a fire-and-forget goroutine
// still running after Close returns races the teardown it was supposed
// to precede, and -race only catches the interleavings the tests
// happen to hit.
//
// A go statement passes when any of these holds:
//
//  1. ctx-aware: its body selects on (or receives from) ctx.Done() or
//     a stop channel captured from outside the goroutine, or it hands
//     a cancelable context captured from the enclosing scope to a
//     callee. A context minted inside the goroutine (or a literal
//     context.Background()/TODO() at the spawn site) does not count —
//     nothing outside can cancel it.
//  2. WaitGroup-tracked: the body calls Done on a sync.WaitGroup whose
//     Wait is reachable — same function for a local WaitGroup, or any
//     function in the package (a Close/Stop/drain method) for a field.
//  3. Annotated: //gaplint:allow goroutinelifecycle — <reason> at the
//     spawn site, making the deliberate abandonment visible in review.
//
// go pkg.Method(...) spawns resolve one level into same-package callee
// bodies, so `go s.flusher()` is judged by what flusher does.
type GoroutineLifecycle struct {
	pkgs map[string]bool
}

// NewGoroutineLifecycle builds the analyzer for the given package
// import paths; packages outside the list are ignored.
func NewGoroutineLifecycle(pkgPaths ...string) *GoroutineLifecycle {
	m := make(map[string]bool, len(pkgPaths))
	for _, p := range pkgPaths {
		m[p] = true
	}
	return &GoroutineLifecycle{pkgs: m}
}

// Name implements Analyzer.
func (a *GoroutineLifecycle) Name() string { return "goroutinelifecycle" }

// Package implements Analyzer.
func (a *GoroutineLifecycle) Package(p *Pass) {
	if !a.pkgs[p.Pkg.Path] {
		return
	}
	decls := indexFuncDecls(p)
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					a.checkGo(p, g, fd, decls)
				}
				return true
			})
		}
	}
}

// indexFuncDecls maps each function object to its declaration so
// `go s.method()` can be judged by the callee's body.
func indexFuncDecls(p *Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// checkGo applies the shutdown-path rules to one go statement inside
// enclosing (the top-level function declaration containing it).
func (a *GoroutineLifecycle) checkGo(p *Pass, g *ast.GoStmt, enclosing *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) {
	var body *ast.BlockStmt
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn := calleeFunc(p, g.Call); fn != nil {
			if fd, ok := decls[fn]; ok {
				body = fd.Body
			}
		}
	}

	// A cancelable context handed to the goroutine at the spawn site.
	for _, arg := range g.Call.Args {
		if tv, ok := p.Pkg.Info.Types[arg]; ok && isContextType(tv.Type) {
			if _, fresh := freshContextCall(p, argAsCall(arg)); !fresh {
				return
			}
		}
	}
	if body != nil {
		if a.bodyHasShutdownPath(p, body) {
			return
		}
		if wg := bodyWaitGroupDone(p, body); wg != nil && waitReachable(p, wg, enclosing) {
			return
		}
	}

	msg := "goroutine has no provable shutdown path: it neither selects on a ctx.Done()/stop channel, nor hands off a cancelable context, nor is tracked by a WaitGroup with a reachable Wait"
	if caps := capturedMutables(p, g); caps != "" {
		msg += fmt.Sprintf("; it captures %s", caps)
	}
	msg += " — tie it to a lifecycle or annotate with //gaplint:allow goroutinelifecycle — <reason>"
	p.Reportf(a.Name(), g.Pos(), "%s", msg)
}

// calleeFunc resolves the called function of a non-literal go
// statement to a same-package *types.Func.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Pkg.Info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != p.Pkg.Path {
		return nil
	}
	return fn
}

// bodyHasShutdownPath scans a goroutine body for a ctx.Done() call, a
// receive (or range) over a channel declared outside the body, or a
// call passing an outside context to a callee.
func (a *GoroutineLifecycle) bodyHasShutdownPath(p *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if tv, ok := p.Pkg.Info.Types[sel.X]; ok && isContextType(tv.Type) {
					if outsideObject(p, body, sel.X) {
						found = true
						return false
					}
				}
			}
			for _, arg := range n.Args {
				if tv, ok := p.Pkg.Info.Types[arg]; ok && isContextType(tv.Type) {
					if outsideObject(p, body, arg) {
						found = true
						return false
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isOutsideChannel(p, body, n.X) {
				found = true
				return false
			}
		case *ast.RangeStmt:
			if isOutsideChannel(p, body, n.X) {
				found = true
			}
		}
		return true
	})
	return found
}

// isOutsideChannel reports whether e is a channel-typed expression
// rooted at an object declared outside body — a stop/work channel the
// outside world can close.
func isOutsideChannel(p *Pass, body *ast.BlockStmt, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	return outsideObject(p, body, e)
}

// outsideObject reports whether the root object of e (an identifier or
// a selector chain's base) is declared outside body — i.e. captured
// from the enclosing scope, a parameter, or a receiver field, rather
// than minted inside the goroutine.
func outsideObject(p *Pass, body *ast.BlockStmt, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
			continue
		case *ast.Ident:
			obj := p.Pkg.Info.Uses[x]
			if obj == nil {
				return false
			}
			return obj.Pos() < body.Pos() || obj.Pos() > body.End()
		default:
			return false
		}
	}
}

// bodyWaitGroupDone finds a wg.Done() call in body (plain or deferred)
// and returns the WaitGroup's object.
func bodyWaitGroupDone(p *Pass, body *ast.BlockStmt) types.Object {
	var wg types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if wg != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := waitGroupMethodTarget(p, call, "Done"); obj != nil {
			wg = obj
			return false
		}
		return true
	})
	return wg
}

// waitGroupMethodTarget matches x.<method>() where x is a
// sync.WaitGroup (possibly a field selection) and returns the root
// object identifying the WaitGroup: the field var for fields, the
// local/param var otherwise.
func waitGroupMethodTarget(p *Pass, call *ast.CallExpr, method string) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	recv := sel.X
	tv, ok := p.Pkg.Info.Types[recv]
	if !ok || !isWaitGroup(tv.Type) {
		return nil
	}
	switch r := recv.(type) {
	case *ast.Ident:
		return p.Pkg.Info.Uses[r]
	case *ast.SelectorExpr:
		if fsel, ok := p.Pkg.Info.Selections[r]; ok && fsel.Kind() == types.FieldVal {
			return fsel.Obj()
		}
	}
	return nil
}

// isWaitGroup reports whether t is sync.WaitGroup (or a pointer to it).
func isWaitGroup(t types.Type) bool {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// waitReachable reports whether Wait is called on the same WaitGroup
// object: anywhere in the package for a struct field (the Close/Stop
// side), or within the enclosing function for a local.
func waitReachable(p *Pass, wg types.Object, enclosing *ast.FuncDecl) bool {
	v, ok := wg.(*types.Var)
	if !ok {
		return false
	}
	var roots []ast.Node
	if v.IsField() {
		for _, file := range p.Pkg.Files {
			roots = append(roots, file)
		}
	} else {
		roots = []ast.Node{enclosing}
	}
	found := false
	for _, root := range roots {
		ast.Inspect(root, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if waitGroupMethodTarget(p, call, "Wait") == wg {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// capturedMutables names the enclosing-scope variables (including any
// receiver) a goroutine literal captures, for the diagnostic.
func capturedMutables(p *Pass, g *ast.GoStmt) string {
	fl, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return ""
	}
	seen := map[string]bool{}
	var names []string
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil {
			return true
		}
		// Captured: declared outside the literal but not package-level.
		if obj.Parent() == obj.Pkg().Scope() {
			return true
		}
		if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
			return true
		}
		if !seen[obj.Name()] {
			seen[obj.Name()] = true
			names = append(names, obj.Name())
		}
		return true
	})
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	return "enclosing-scope variable(s) " + strings.Join(names, ", ")
}
