package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanHygiene catches the channel misuse patterns that -race cannot:
// they are not data races but leaks and panics-in-waiting.
//
//   - time.After inside a loop: each iteration allocates a timer the
//     runtime only reclaims when it fires, so a tight retry loop with a
//     long interval pins an unbounded timer population. Hoist a
//     time.NewTimer/NewTicker outside the loop.
//   - close of a channel received as a parameter: the closer must be
//     the owner (the sender side); a callee closing a channel it was
//     handed invites double-close panics and sends on closed channels.
//   - double-close-prone shapes: the same channel variable or field
//     closed at more than one site in the package, or a close inside a
//     loop body — each a single refactor away from a close panic.
//   - sends on channels with no reachable receiver: a send on an
//     unbuffered channel that never escapes the function (no goroutine,
//     no call, no return, no select) blocks forever.
type ChanHygiene struct {
	pkgs map[string]bool
}

// NewChanHygiene builds the analyzer for the given package import
// paths; packages outside the list are ignored.
func NewChanHygiene(pkgPaths ...string) *ChanHygiene {
	m := make(map[string]bool, len(pkgPaths))
	for _, p := range pkgPaths {
		m[p] = true
	}
	return &ChanHygiene{pkgs: m}
}

// Name implements Analyzer.
func (a *ChanHygiene) Name() string { return "chanhygiene" }

// closeSite is one close(x) call on a resolved channel object.
type closeSite struct {
	obj    types.Object
	pos    token.Pos
	inLoop bool
}

// Package implements Analyzer.
func (a *ChanHygiene) Package(p *Pass) {
	if !a.pkgs[p.Pkg.Path] {
		return
	}
	var closes []closeSite
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkTimeAfterInLoops(p, fd.Body)
			closes = append(closes, a.collectCloses(p, fd)...)
			a.checkDeadSends(p, fd)
		}
	}
	// Double-close-prone: the same channel object closed at >1 site.
	firstClose := make(map[types.Object]token.Pos)
	for _, c := range closes {
		if c.obj == nil {
			continue
		}
		if first, ok := firstClose[c.obj]; ok {
			p.Reportf(a.Name(), c.pos,
				"channel %s is also closed at %s; a second close panics — funnel all closes through one owner (or a sync.Once)",
				objectName(c.obj), shortPos(p.Pkg.Fset.Position(first)))
			continue
		}
		firstClose[c.obj] = c.pos
	}
}

// checkTimeAfterInLoops reports time.After calls lexically inside a
// for/range body (excluding nested function literals, which run on
// their own schedule).
func (a *ChanHygiene) checkTimeAfterInLoops(p *Pass, body *ast.BlockStmt) {
	var inLoop func(n ast.Node, depth int)
	inLoop = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				inLoop(m.Body, 0)
				return false
			case *ast.ForStmt:
				inLoop(m.Body, depth+1)
				return false
			case *ast.RangeStmt:
				inLoop(m.Body, depth+1)
				return false
			case *ast.CallExpr:
				if depth > 0 {
					if sel, ok := m.Fun.(*ast.SelectorExpr); ok {
						if fn := pkgLevelFunc(p, sel); fn != nil && fn.Pkg().Path() == "time" && fn.Name() == "After" {
							p.Reportf(a.Name(), m.Pos(),
								"time.After inside a loop allocates a timer per iteration that is only reclaimed when it fires; hoist a time.NewTimer/NewTicker outside the loop")
						}
					}
				}
			}
			return true
		})
	}
	inLoop(body, 0)
}

// collectCloses records every close(x) in fd, flags closes of
// parameter channels immediately, and reports closes inside loops.
func (a *ChanHygiene) collectCloses(p *Pass, fd *ast.FuncDecl) []closeSite {
	params := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := p.Pkg.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	var sites []closeSite
	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch m := m.(type) {
			case *ast.ForStmt:
				walk(m.Body, loopDepth+1)
				return false
			case *ast.RangeStmt:
				walk(m.Body, loopDepth+1)
				return false
			case *ast.CallExpr:
				id, ok := m.Fun.(*ast.Ident)
				if !ok || id.Name != "close" || len(m.Args) != 1 {
					return true
				}
				if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				obj := channelObject(p, m.Args[0])
				if obj != nil && params[obj] {
					p.Reportf(a.Name(), m.Pos(),
						"closing channel parameter %s: the sender owns the close; a callee closing a channel it was handed risks double close and send-on-closed panics",
						obj.Name())
				}
				if loopDepth > 0 {
					p.Reportf(a.Name(), m.Pos(),
						"close inside a loop: the second iteration closes a closed channel and panics")
				}
				sites = append(sites, closeSite{obj: obj, pos: m.Pos(), inLoop: loopDepth > 0})
			}
			return true
		})
	}
	walk(fd.Body, 0)
	return sites
}

// channelObject resolves a close/send operand to a stable object: a
// local/param var for identifiers, the field var for selector chains.
func channelObject(p *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := p.Pkg.Info.Uses[e]; obj != nil {
			return obj
		}
		return p.Pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		if fsel, ok := p.Pkg.Info.Selections[e]; ok && fsel.Kind() == types.FieldVal {
			return fsel.Obj()
		}
	}
	return nil
}

func objectName(obj types.Object) string {
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return "field " + v.Name()
	}
	return obj.Name()
}

// checkDeadSends flags sends on unbuffered channels that provably have
// no receiver: the channel is made locally with no buffer, never
// escapes the function (no call argument, return, assignment source,
// goroutine capture, select case, or defer), and a plain send on it
// exists — that send blocks forever.
func (a *ChanHygiene) checkDeadSends(p *Pass, fd *ast.FuncDecl) {
	// Find locals built by make(chan T) with no (or zero) buffer.
	unbuffered := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.Pkg.Info.Defs[id]
			if obj == nil || !isUnbufferedMake(p, as.Rhs[i]) {
				continue
			}
			unbuffered[obj] = true
		}
		return true
	})
	if len(unbuffered) == 0 {
		return
	}
	// Disqualify channels that escape or are received from anywhere.
	escaped := make(map[types.Object]bool)
	received := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.SelectStmt, *ast.DeferStmt:
			for obj := range unbuffered {
				if nodeMentions(p, n, obj) {
					escaped[obj] = true
				}
			}
			return false
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if obj := channelObject(p, arg); obj != nil && unbuffered[obj] {
					escaped[obj] = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj := channelObject(p, res); obj != nil && unbuffered[obj] {
					escaped[obj] = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := channelObject(p, n.X); obj != nil {
					received[obj] = true
				}
			}
		case *ast.RangeStmt:
			if obj := channelObject(p, n.X); obj != nil {
				received[obj] = true
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if _, isMake := rhs.(*ast.CallExpr); isMake {
					continue
				}
				if obj := channelObject(p, rhs); obj != nil && unbuffered[obj] {
					escaped[obj] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return true
		}
		obj := channelObject(p, send.Chan)
		if obj == nil || !unbuffered[obj] || escaped[obj] || received[obj] {
			return true
		}
		p.Reportf(a.Name(), send.Pos(),
			"send on unbuffered channel %s which never escapes this function and has no receiver: this send blocks forever",
			obj.Name())
		return true
	})
}

// isUnbufferedMake matches make(chan T) and make(chan T, 0).
func isUnbufferedMake(p *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	tv, ok := p.Pkg.Info.Types[call]
	if !ok {
		return false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	if len(call.Args) == 2 {
		if sz, ok := p.Pkg.Info.Types[call.Args[1]]; ok && sz.Value != nil {
			return sz.Value.String() == "0"
		}
	}
	return false
}

// nodeMentions reports whether obj is referenced anywhere under n.
func nodeMentions(p *Pass, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}
