// Package analysis is gaplint's from-scratch, stdlib-only static
// analysis framework. It loads every package in the module from source
// (load.go), runs registered analyzers over the type-checked ASTs, and
// reports findings as "file:line: [analyzer] message" — the machine
// check behind the repo's determinism, error-taxonomy, and
// context-propagation invariants (see DESIGN.md "Static analysis").
//
// Deliberate exceptions are suppressed in the source with
//
//	//gaplint:allow <analyzer> — <reason>
//
// on the finding line or the line directly above it. The reason is
// mandatory: an allow without one does not suppress, and an allow that
// suppresses nothing is itself reported, so stale annotations cannot
// accumulate.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Finding is one diagnostic at a resolved source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Pass hands one package to one analyzer and collects its reports.
type Pass struct {
	Pkg    *Package
	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(name string, pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer checks one package at a time. Analyzers that need a
// module-wide view (metricname uniqueness) also implement Finisher.
type Analyzer interface {
	Name() string
	// Package inspects one type-checked package, reporting findings
	// through the pass.
	Package(p *Pass)
}

// Finisher is implemented by analyzers that report only after seeing
// every package in the run.
type Finisher interface {
	Finish(report func(Finding))
}

// allow is one parsed //gaplint:allow comment.
type allow struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

const allowPrefix = "//gaplint:allow"

// parseAllows scans a file's comments for suppression directives,
// keyed by line number.
func parseAllows(fset *token.FileSet, f *ast.File) map[int]*allow {
	out := make(map[int]*allow)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, allowPrefix)
			if !ok {
				continue
			}
			rest = strings.TrimSpace(rest)
			name := rest
			reason := ""
			for _, sep := range []string{"—", "--", "-"} {
				if i := strings.Index(rest, sep); i >= 0 {
					name = strings.TrimSpace(rest[:i])
					reason = strings.TrimSpace(rest[i+len(sep):])
					break
				}
			}
			pos := fset.Position(c.Pos())
			out[pos.Line] = &allow{analyzer: name, reason: reason, pos: pos}
		}
	}
	return out
}

// Run executes the analyzers over the packages with the default worker
// count, applies suppressions, and returns the surviving findings
// sorted by position. Driver-level diagnostics (malformed or unused
// suppressions) are reported under the "gaplint" pseudo-analyzer.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	return RunWorkers(pkgs, analyzers, 0)
}

// RunWorkers is Run with an explicit worker count: the (analyzer,
// package) units fan out over a bounded pool (workers <= 0 means
// GOMAXPROCS; 1 is the serial debugging mode). The type-checked
// packages are shared read-only across workers; each analyzer's
// Package method must therefore be safe for concurrent calls on
// different packages (stateless, or internally locked like
// MetricName's site accumulator). The final sort key — file, line,
// column, analyzer, message — is total, so the output is byte-
// identical at any worker count.
func RunWorkers(pkgs []*Package, analyzers []Analyzer, workers int) []Finding {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type unit struct {
		az  Analyzer
		pkg *Package
	}
	units := make([]unit, 0, len(analyzers)*len(pkgs))
	for _, az := range analyzers {
		for _, pkg := range pkgs {
			units = append(units, unit{az, pkg})
		}
	}
	if workers > len(units) {
		workers = len(units)
	}
	if workers < 1 {
		workers = 1
	}
	perUnit := make([][]Finding, len(units))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(units) {
					return
				}
				u := units[i]
				u.az.Package(&Pass{Pkg: u.pkg, report: func(f Finding) {
					perUnit[i] = append(perUnit[i], f)
				}})
			}
		}()
	}
	wg.Wait()

	var raw []Finding
	for _, fs := range perUnit {
		raw = append(raw, fs...)
	}
	collect := func(f Finding) { raw = append(raw, f) }
	for _, az := range analyzers {
		if fin, ok := az.(Finisher); ok {
			fin.Finish(collect)
		}
	}

	// Suppression table: file -> line -> allow.
	allows := make(map[string]map[int]*allow)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			pos := pkg.Fset.Position(f.Pos())
			allows[pos.Filename] = parseAllows(pkg.Fset, f)
		}
	}

	var out []Finding
	for _, f := range raw {
		if a := matchAllow(allows, f); a != nil {
			if a.reason == "" {
				// Reported once below as a malformed suppression; the
				// underlying finding still stands.
				out = append(out, f)
				continue
			}
			a.used = true
			continue
		}
		out = append(out, f)
	}
	for _, fileAllows := range allows {
		for _, a := range fileAllows {
			switch {
			case a.reason == "":
				out = append(out, Finding{Pos: a.pos, Analyzer: "gaplint",
					Message: fmt.Sprintf("suppression for %q is missing a reason (want //gaplint:allow %s — <reason>)", a.analyzer, a.analyzer)})
			case !a.used:
				out = append(out, Finding{Pos: a.pos, Analyzer: "gaplint",
					Message: fmt.Sprintf("unused suppression for %q — nothing on this or the next line triggers it", a.analyzer)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// matchAllow finds a suppression covering f: same analyzer, same file,
// on the finding line or the line directly above.
func matchAllow(allows map[string]map[int]*allow, f Finding) *allow {
	fileAllows, ok := allows[f.Pos.Filename]
	if !ok {
		return nil
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if a, ok := fileAllows[line]; ok && a.analyzer == f.Analyzer {
			return a
		}
	}
	return nil
}

// Format renders findings one per line as "file:line: [analyzer]
// message", with file paths relative to base when possible.
func Format(findings []Finding, base string) string {
	var b strings.Builder
	for _, f := range findings {
		name := f.Pos.Filename
		if base != "" {
			if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Fprintf(&b, "%s:%d: [%s] %s\n", filepath.ToSlash(name), f.Pos.Line, f.Analyzer, f.Message)
	}
	return b.String()
}
