package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// fixtureCases pairs each analyzer configuration with the fixture
// packages it runs over and the golden file holding its exact expected
// diagnostics.
var fixtureCases = []struct {
	name      string
	dirs      []string
	analyzers func() []Analyzer
}{
	{
		name: "determinism",
		dirs: []string{"det", "notcore"},
		analyzers: func() []Analyzer {
			return []Analyzer{NewDeterminism("fixture/det")}
		},
	},
	{
		name: "errtaxonomy",
		dirs: []string{"errtax"},
		analyzers: func() []Analyzer {
			return []Analyzer{NewErrTaxonomy("fixture/errtax")}
		},
	},
	{
		name: "ctxflow",
		dirs: []string{"ctxflow"},
		analyzers: func() []Analyzer {
			return []Analyzer{NewCtxFlow()}
		},
	},
	{
		name: "metricname",
		dirs: []string{"metricname", "metricname2"},
		analyzers: func() []Analyzer {
			return []Analyzer{NewMetricName()}
		},
	},
	{
		name: "lockdiscipline",
		dirs: []string{"lockdisc"},
		analyzers: func() []Analyzer {
			return []Analyzer{NewLockDiscipline("fixture/lockdisc")}
		},
	},
	{
		name: "goroutinelifecycle",
		dirs: []string{"goroutine"},
		analyzers: func() []Analyzer {
			return []Analyzer{NewGoroutineLifecycle("fixture/goroutine")}
		},
	},
	{
		name: "chanhygiene",
		dirs: []string{"chanhyg"},
		analyzers: func() []Analyzer {
			return []Analyzer{NewChanHygiene("fixture/chanhyg")}
		},
	},
	{
		// Driver-level behaviour: reasoned allows suppress, reasonless
		// allows don't (and are reported), stale allows are reported.
		name: "suppress",
		dirs: []string{"suppress"},
		analyzers: func() []Analyzer {
			return []Analyzer{NewDeterminism("fixture/suppress")}
		},
	},
}

// TestFixtures runs each analyzer over its fixture packages and
// compares the formatted diagnostics byte-for-byte against the golden
// file. Regenerate with: go test ./internal/analysis -run TestFixtures -update
func TestFixtures(t *testing.T) {
	src := filepath.Join("testdata", "src")
	for _, tc := range fixtureCases {
		t.Run(tc.name, func(t *testing.T) {
			pkgs, err := LoadDirs(src, "fixture", tc.dirs...)
			if err != nil {
				t.Fatalf("LoadDirs(%v): %v", tc.dirs, err)
			}
			got := Format(Run(pkgs, tc.analyzers()), mustAbs(t, src))
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestInjectedViolation proves the end-to-end LoadModule path: a
// synthetic module with a wall-clock read in its core package yields
// exactly one determinism finding, and a clean module yields none.
func TestInjectedViolation(t *testing.T) {
	root := t.TempDir()
	writeFile(t, filepath.Join(root, "go.mod"), "module fixturemod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(root, "internal", "sta", "sta.go"),
		"package sta\n\nimport \"time\"\n\n// Probe reads the wall clock.\nfunc Probe() int64 { return time.Now().UnixNano() }\n")
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(pkgs, []Analyzer{NewDeterminism("fixturemod/internal/sta")})
	if len(findings) != 1 {
		t.Fatalf("findings = %v, want exactly one", findings)
	}
	f := findings[0]
	if f.Analyzer != "determinism" || f.Pos.Line != 6 || !strings.Contains(f.Message, "time.Now") {
		t.Fatalf("unexpected finding: %+v", f)
	}
	if got := Format(findings, root); got != "internal/sta/sta.go:6: [determinism] "+f.Message+"\n" {
		t.Fatalf("Format = %q", got)
	}

	// The same module with the read annotated is clean.
	writeFile(t, filepath.Join(root, "internal", "sta", "sta.go"),
		"package sta\n\nimport \"time\"\n\n// Probe reads the wall clock.\nfunc Probe() int64 {\n\t//gaplint:allow determinism — test: sanctioned read\n\treturn time.Now().UnixNano()\n}\n")
	pkgs, err = LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if findings := Run(pkgs, []Analyzer{NewDeterminism("fixturemod/internal/sta")}); len(findings) != 0 {
		t.Fatalf("annotated module should be clean, got %v", findings)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func mustAbs(t *testing.T, p string) string {
	t.Helper()
	abs, err := filepath.Abs(p)
	if err != nil {
		t.Fatal(err)
	}
	return abs
}
