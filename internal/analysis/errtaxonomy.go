package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrTaxonomy enforces the typed failure taxonomy at the service
// boundary. The retry policy, circuit breakers, journal classes, and
// HTTP status mapping all switch on errors.Is against the sentinel set
// in internal/jobs — an error that reaches them unclassified falls into
// ClassFatal, which silently disables retries and feeds the wrong
// breaker. So inside the configured service packages, every exported
// function that returns an error must return classified errors: a
// return statement whose error operand is a bare errors.New(...) call,
// or a fmt.Errorf(...) whose format string has no %w verb, is flagged.
//
// The check is deliberately local (direct returns inside exported
// functions only): package-level sentinel definitions, unexported
// helpers, and error values threaded through variables are out of
// scope, which keeps it free of false positives on the taxonomy's own
// `var ErrX = errors.New(...)` declarations.
type ErrTaxonomy struct {
	svc map[string]bool
}

// NewErrTaxonomy builds the analyzer for the given service-boundary
// package import paths.
func NewErrTaxonomy(svcPkgs ...string) *ErrTaxonomy {
	m := make(map[string]bool, len(svcPkgs))
	for _, p := range svcPkgs {
		m[p] = true
	}
	return &ErrTaxonomy{svc: m}
}

// Name implements Analyzer.
func (a *ErrTaxonomy) Name() string { return "errtaxonomy" }

// Package implements Analyzer.
func (a *ErrTaxonomy) Package(p *Pass) {
	if !a.svc[p.Pkg.Path] {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !returnsError(p, fd) {
				continue
			}
			a.checkBody(p, fd)
		}
	}
}

// returnsError reports whether fd's result list includes an error.
func returnsError(p *Pass, fd *ast.FuncDecl) bool {
	obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	res := obj.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// checkBody flags bare error constructions returned directly from fd.
// Returns inside nested function literals belong to the literal, not
// the exported boundary, and are skipped.
func (a *ErrTaxonomy) checkBody(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				a.checkResult(p, name, res)
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// checkResult flags res when it is a bare errors.New or a %w-less
// fmt.Errorf call in error position.
func (a *ErrTaxonomy) checkResult(p *Pass, fn string, res ast.Expr) {
	call, ok := res.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	callee := pkgLevelFunc(p, sel)
	if callee == nil {
		return
	}
	switch {
	case callee.Pkg().Path() == "errors" && callee.Name() == "New":
		p.Reportf(a.Name(), res.Pos(),
			"exported %s returns a bare errors.New error; wrap a taxonomy sentinel (fmt.Errorf(\"%%w: ...\", ErrX)) so Classify can bucket it", fn)
	case callee.Pkg().Path() == "fmt" && callee.Name() == "Errorf":
		if len(call.Args) == 0 {
			return
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return // dynamic format string: out of scope
		}
		if !strings.Contains(lit.Value, "%w") {
			p.Reportf(a.Name(), res.Pos(),
				"exported %s returns fmt.Errorf without %%w; wrap a taxonomy sentinel so the error stays classifiable", fn)
		}
	}
}
