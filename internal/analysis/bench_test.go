package analysis

import (
	"path/filepath"
	"testing"
)

// BenchmarkGaplint measures one full gaplint pass over the real module
// — source loading, type checking (full bodies for module packages,
// declarations only for stdlib), all four analyzers, and suppression
// filtering. This is the marginal cost `make lint` adds to tier1;
// EXPERIMENTS.md tracks it.
func BenchmarkGaplint(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pkgs, err := LoadModule(root)
		if err != nil {
			b.Fatal(err)
		}
		if findings := Run(pkgs, RepoAnalyzers("repro")); len(findings) != 0 {
			b.Fatalf("module not lint-clean: %d findings", len(findings))
		}
	}
}
