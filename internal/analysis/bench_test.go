package analysis

import (
	"path/filepath"
	"testing"
)

// BenchmarkGaplint measures one full gaplint pass over the real module
// — source loading, type checking (full bodies for module packages,
// declarations only for stdlib), all seven analyzers, and suppression
// filtering. This is the marginal cost `make lint` adds to tier1;
// EXPERIMENTS.md tracks it. The Serial/Parallel split isolates what
// the worker pool buys: loading and type checking are shared, only the
// analyzer fan-out differs.
func BenchmarkGaplint(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"Serial", 1},
		{"Parallel", 0}, // GOMAXPROCS — the make lint configuration
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pkgs, err := LoadModule(root)
				if err != nil {
					b.Fatal(err)
				}
				if findings := RunWorkers(pkgs, RepoAnalyzers("repro"), bench.workers); len(findings) != 0 {
					b.Fatalf("module not lint-clean: %d findings", len(findings))
				}
			}
		})
	}
}

// BenchmarkGaplintAnalyzeOnly loads and type-checks the module once,
// then times just the analyzer fan-out — the part the worker pool
// parallelizes. Analyzers are rebuilt per iteration because MetricName
// accumulates state across packages.
func BenchmarkGaplintAnalyzeOnly(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"Serial", 1},
		{"Parallel", 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if findings := RunWorkers(pkgs, RepoAnalyzers("repro"), bench.workers); len(findings) != 0 {
					b.Fatalf("module not lint-clean: %d findings", len(findings))
				}
			}
		})
	}
}
