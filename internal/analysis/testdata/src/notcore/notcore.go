// Package notcore is outside the determinism analyzer's core package
// list: its wall-clock read must not be flagged.
package notcore

import "time"

// Stamp reads the wall clock legally.
func Stamp() time.Time { return time.Now() }
