// Package goroutine is the goroutinelifecycle fixture: every go
// statement must have a provable shutdown path — a select on a
// ctx.Done()/stop channel declared outside the body, a cancelable
// context handed through the spawn, or a WaitGroup Done with a
// reachable Wait. Fire-and-forget spawns are flagged.
package goroutine

import (
	"context"
	"sync"
)

type Server struct {
	jobs chan int
	done chan struct{}
	wg   sync.WaitGroup
}

// Leak is the positive: the spawned loop has no way to learn the
// server is shutting down.
func (s *Server) Leak() {
	go func() {
		for v := range make([]int, 8) {
			s.handle(v) // keeps s alive forever
		}
	}() // want "no provable shutdown path"
}

func (s *Server) handle(int) {}

// Run is the negative everyone writes: the body selects on ctx.Done.
func (s *Server) Run(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-s.jobs:
				s.handle(v)
			}
		}
	}()
}

// Pump is the stop-channel negative: receiving from a channel declared
// outside the body (a struct field) counts as a shutdown signal.
func (s *Server) Pump() {
	go func() {
		for {
			select {
			case <-s.done:
				return
			case v := <-s.jobs:
				s.handle(v)
			}
		}
	}()
}

// Drain is the range negative: ranging an outside channel ends when
// the owner closes it.
func (s *Server) Drain() {
	go func() {
		for v := range s.jobs {
			s.handle(v)
		}
	}()
}

// Tracked is the WaitGroup negative: Done in the body, Wait reachable
// on the same field elsewhere in the package (Close).
func (s *Server) Tracked() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.handle(0)
	}()
}

func (s *Server) Close() {
	close(s.done)
	s.wg.Wait()
}

// Handoff is the context-passing negative: the spawn hands a cancelable
// ctx to the callee, which is then responsible for honoring it.
func (s *Server) Handoff(ctx context.Context) {
	go s.worker(ctx)
}

func (s *Server) worker(ctx context.Context) {
	<-ctx.Done()
}

// Detached is the positive twin of Handoff: context.Background() at the
// spawn site severs the cancellation chain, and the callee body (looked
// up one level, same package) has no other shutdown path.
func (s *Server) Detached() {
	go s.spin(context.Background()) // want "no provable shutdown path"
}

func (s *Server) spin(context.Context) {
	for {
		s.handle(1)
	}
}

// ViaCallee is the method-resolution negative: the go statement names a
// method whose body selects on the stop field.
func (s *Server) ViaCallee() {
	go s.loop()
}

func (s *Server) loop() {
	for {
		select {
		case <-s.done:
			return
		case v := <-s.jobs:
			s.handle(v)
		}
	}
}

// Sanctioned is the suppressed positive: genuinely fire-and-forget, but
// annotated with a reasoned allow.
func (s *Server) Sanctioned() {
	//gaplint:allow goroutinelifecycle — best-effort telemetry flush; process exit reclaims it
	go func() {
		s.handle(2)
	}()
}
