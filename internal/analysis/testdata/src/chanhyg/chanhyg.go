// Package chanhyg is the chanhygiene fixture: timer leaks in retry
// loops, closes of handed-in channels, double-close-prone shapes, and
// sends no receiver can ever reach.
package chanhyg

import "time"

type Worker struct {
	quit chan struct{}
	out  chan int
}

// RetryLoop allocates one timer per iteration; only firing reclaims it.
func (w *Worker) RetryLoop(attempts int) {
	for i := 0; i < attempts; i++ {
		select {
		case <-w.quit:
			return
		case <-time.After(time.Second): // want "time.After inside a loop"
		}
	}
}

// HoistedTicker is the fix shape: one ticker serves every iteration.
func (w *Worker) HoistedTicker(attempts int) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for i := 0; i < attempts; i++ {
		select {
		case <-w.quit:
			return
		case <-t.C:
		}
	}
}

// OneShot: time.After outside a loop is the intended use.
func (w *Worker) OneShot() {
	select {
	case <-w.quit:
	case <-time.After(time.Second):
	}
}

// Sanctioned polls on a multi-hour interval; the reasoned allow keeps
// the deliberate timer-per-pass visible in review.
func (w *Worker) Sanctioned() {
	for {
		select {
		case <-w.quit:
			return
		//gaplint:allow chanhygiene — poll interval is hours; at most one extra timer is ever live
		case <-time.After(6 * time.Hour):
		}
	}
}

// CloseParam closes a channel it was handed: the sender owns the close.
func CloseParam(results chan int) {
	close(results) // want "closing channel parameter"
}

// Shutdown and Abort both close out — one refactor away from a
// double-close panic.
func (w *Worker) Shutdown() {
	close(w.out)
}

func (w *Worker) Abort() {
	close(w.out) // want "also closed at"
}

// FanIn closes inside the loop: the second iteration panics.
func FanIn(n int) {
	agg := make(chan int, n)
	for i := 0; i < n; i++ {
		close(agg) // want "close inside a loop"
	}
}

// DeadSend: the channel never escapes this function and nothing ever
// receives — the send blocks forever.
func DeadSend() {
	ready := make(chan struct{})
	ready <- struct{}{} // want "blocks forever"
}

// HandedOff is the negative: the goroutine is the receiver's peer, so
// the send completes.
func HandedOff() int {
	ch := make(chan int)
	go func() { ch <- 1 }()
	return <-ch
}

// Buffered sends never block while the buffer has room; out of scope.
func Buffered() {
	done := make(chan int, 1)
	done <- 1
}
