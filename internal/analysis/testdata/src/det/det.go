// Package det exercises the determinism analyzer: wall-clock reads and
// global rand draws are flagged; seeded generators stay legal.
package det

import (
	"math/rand"
	"time"
)

// Elapsed reads the wall clock twice; both reads are findings.
func Elapsed() (time.Time, time.Duration) {
	now := time.Now()
	d := time.Since(now)
	return now, d
}

// GlobalDraw pulls from the process-global rand stream.
func GlobalDraw() int {
	return rand.Intn(6)
}

var src rand.Source

// Unseeded builds a generator whose seed is invisible at the
// construction site.
func Unseeded() *rand.Rand {
	return rand.New(src)
}

// Seeded is the blessed pattern: an explicit seed and methods on the
// resulting *rand.Rand.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Stamp documents its sanctioned wall-clock read.
func Stamp() time.Time {
	//gaplint:allow determinism — fixture: sanctioned wall-clock read
	return time.Now()
}
