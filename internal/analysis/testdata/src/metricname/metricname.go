// Package metricname exercises the metric-name analyzer: literal
// registrations must be snake_case and unique module-wide.
package metricname

// Metrics mimics the repo's metric sets.
type Metrics struct{}

// Observe registers a histogram name.
func (m *Metrics) Observe(name string, v float64) {}

// Counters registers the flat counter names.
func (m *Metrics) Counters() map[string]int64 {
	return map[string]int64{
		"good_total":   1,
		"BadCamelName": 2,
		"dup_name":     3,
		"dup_name2":    4,
	}
}

// Use registers histogram names at call sites.
func Use(m *Metrics, stage string) {
	m.Observe("ok_metric", 1)
	m.Observe("Bad-Metric", 2)
	m.Observe("dup_name", 3)
	//gaplint:allow metricname — fixture: deliberate duplicate registration
	m.Observe("dup_name2", 4)
	m.Observe("stage_"+stage, 5) // dynamic: out of scope by design
}
