// Package ctxflow exercises the context-propagation analyzer.
package ctxflow

import (
	"context"
	"time"
)

func helper(ctx context.Context, n int) int { return n }

func noCtx(n int) int { return n }

// Fresh re-mints contexts it already has; both calls are findings.
func Fresh(ctx context.Context) int {
	a := helper(context.Background(), 1)
	b := helper(context.TODO(), 2)
	return a + b
}

// Propagates passes the incoming ctx and a derivation of it.
func Propagates(ctx context.Context) int {
	c2, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return helper(c2, 3) + helper(ctx, 4) + noCtx(5)
}

type holder struct{ ctx context.Context }

// Stored passes a stashed context instead of the incoming one.
func Stored(ctx context.Context, h holder) int {
	return helper(h.ctx, 6)
}

// Detached documents background work that outlives its caller.
func Detached(ctx context.Context) {
	//gaplint:allow ctxflow — fixture: background work outlives the request
	go helper(context.Background(), 7)
}

// NoParam has no incoming ctx and may mint fresh ones freely.
func NoParam() int {
	return helper(context.Background(), 8)
}

// Closure inherits the enclosing function's ctx obligation.
func Closure(ctx context.Context) func() int {
	return func() int {
		return helper(context.TODO(), 9)
	}
}
