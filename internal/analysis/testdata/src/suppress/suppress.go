// Package suppress exercises the driver's suppression handling: a
// reasoned allow suppresses, a reasonless allow does not (and is itself
// reported), and a stale allow that matches nothing is reported.
package suppress

import "time"

// Reasoned is suppressed correctly.
func Reasoned() time.Time {
	//gaplint:allow determinism — fixture: documented exception
	return time.Now()
}

// Reasonless keeps its finding and earns a second one for the
// malformed suppression.
func Reasonless() time.Time {
	//gaplint:allow determinism
	return time.Now()
}

// Stale has an allow with nothing to suppress.
func Stale() int {
	//gaplint:allow determinism — fixture: stale suppression
	return 1
}
