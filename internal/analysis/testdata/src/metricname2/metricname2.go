// Package metricname2 registers a name that package metricname already
// owns — the cross-package collision the uniqueness rule exists for.
package metricname2

// Metrics mimics a second package's metric set.
type Metrics struct{}

// Counters registers this package's counter names.
func (m *Metrics) Counters() map[string]int64 {
	return map[string]int64{
		"good_total": 1,
	}
}
