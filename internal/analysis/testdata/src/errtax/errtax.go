// Package errtax exercises the errtaxonomy analyzer: exported
// functions returning unclassified errors are flagged; sentinels,
// unexported helpers, and %w wraps are not.
package errtax

import (
	"errors"
	"fmt"
)

// ErrBad is a sentinel: a package-level errors.New is the taxonomy
// itself, not a violation.
var ErrBad = errors.New("errtax: bad input")

// Bare returns an unclassified error.
func Bare() error {
	return errors.New("unclassified")
}

// NoVerb formats without %w, so errors.Is can never bucket it.
func NoVerb(n int) error {
	return fmt.Errorf("bad n %d", n)
}

// Wrapped stays classifiable.
func Wrapped(n int) error {
	return fmt.Errorf("%w: n %d", ErrBad, n)
}

// bare is unexported: inside the package boundary, out of scope.
func bare() error { return errors.New("internal") }

// Closure returns a literal whose own returns belong to the literal,
// not the exported boundary.
func Closure() (func() error, error) {
	f := func() error { return errors.New("inner") }
	return f, nil
}

// Suppressed documents its deliberate bare error.
func Suppressed() error {
	//gaplint:allow errtaxonomy — fixture: deliberate bare error
	return errors.New("deliberate")
}
