// Package lockdisc is the lockdiscipline fixture: Counter.count is
// guarded by mu at a strict majority of its access sites, so the
// analyzer must infer the contract and flag the stragglers — while the
// construction path, locked helpers, and the no-majority struct stay
// silent.
package lockdisc

import "sync"

type Counter struct {
	mu    sync.Mutex
	count int
	name  string
}

// NewCounter builds a Counter. Everything reachable only from here runs
// pre-publication: no other goroutine can hold the value yet, so the
// unguarded writes are exempt — transitively, through init and reset.
func NewCounter(name string) *Counter {
	c := &Counter{}
	c.init(name)
	return c
}

func (c *Counter) init(name string) {
	c.name = name
	c.reset()
}

// reset is dual-use: called pre-publication by init and under mu by
// Zero. The pre-publication site must not drag its inferred entry set
// down to empty.
func (c *Counter) reset() {
	c.count = 0
}

func (c *Counter) Zero() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reset()
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.count++
	c.mu.Unlock()
}

func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Add returns early while holding a bare Lock: the locked-return shape
// that deadlocks the next caller once someone extends the early path.
func (c *Counter) Add(n int) int {
	c.mu.Lock()
	c.count += n
	if n > 100 {
		return c.count // want "return while Counter.mu is locked"
	}
	c.mu.Unlock()
	return 0
}

// Racy reads count without the lock the other sites hold.
func (c *Counter) Racy() int {
	return c.count // want "guarded by mu at .. of .. access sites but not here"
}

// AsyncInc touches count from a goroutine: the spawned body runs with
// no lock held regardless of the spawner's state.
func (c *Counter) AsyncInc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.count++ // want "guarded by mu"
	}()
}

// SnapshotUnlocked is a sanctioned torn read; the reasoned allow
// suppresses the finding.
func (c *Counter) SnapshotUnlocked() int {
	//gaplint:allow lockdiscipline — monitoring-only read; a torn value is acceptable here
	return c.count
}

// Loose has a mutex but no majority-guarded field: without a dominant
// contract there is nothing to enforce.
type Loose struct {
	mu sync.Mutex
	n  int
}

func (l *Loose) A() int { return l.n }
func (l *Loose) B() int { return l.n }
func (l *Loose) Touch() {
	l.mu.Lock()
	l.mu.Unlock()
}
