// load.go implements the package loader behind gaplint: a from-scratch
// source importer built on go/build (file discovery honoring build
// constraints), go/parser, and go/types. It deliberately avoids
// golang.org/x/tools so the module keeps its zero-dependency property —
// the trade is that we re-implement the small slice of package loading
// the analyzers need:
//
//   - module-internal packages ("repro/...") resolve by path mapping
//     against the module root, never by GOPATH lookup, and are
//     type-checked in full with types.Info populated, because analyzers
//     inspect their function bodies;
//   - everything else (stdlib, including GOROOT-vendored packages) is
//     type-checked with IgnoreFuncBodies, which skips the vast majority
//     of the work while still producing exact object identities for
//     Uses/Selections — enough to tell time.Now from a local Now.
//
// Cgo is disabled in the build context so constraint evaluation picks
// the pure-Go fallbacks (netgo, osusergo) that type-check from source.
package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked module package ready for analysis.
type Package struct {
	Path  string // import path ("repro/internal/core")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files, parsed with comments
	Types *types.Package
	Info  *types.Info
}

type loader struct {
	fset     *token.FileSet
	buildCtx build.Context
	modPath  string                    // module path from go.mod
	modDir   string                    // absolute module root
	imported map[string]*types.Package // every package, by resolved import path
	full     map[string]*Package       // module packages with bodies + Info
	loading  map[string]bool           // import-cycle guard
}

func newLoader(modDir, modPath string) *loader {
	ctx := build.Default
	ctx.CgoEnabled = false
	return &loader{
		fset:     token.NewFileSet(),
		buildCtx: ctx,
		modPath:  modPath,
		modDir:   modDir,
		imported: make(map[string]*types.Package),
		full:     make(map[string]*Package),
		loading:  make(map[string]bool),
	}
}

// LoadModule discovers every non-testdata package under root (a module
// root containing go.mod) and returns them fully type-checked, sorted
// by import path.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)
	var paths []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			rel, err := filepath.Rel(root, p)
			if err != nil {
				return err
			}
			ip := modPath
			if rel != "." {
				ip = modPath + "/" + filepath.ToSlash(rel)
			}
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, ip := range paths {
		p, err := l.loadFull(ip)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", ip, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDirs type-checks the given fixture directories as a tiny synthetic
// module rooted at root with module path modPath — the test harness for
// analyzer fixtures under testdata/src. Each dir is addressed as
// modPath/<relative-dir>.
func LoadDirs(root, modPath string, dirs ...string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, filepath.Join(root, dir))
		if err != nil {
			return nil, err
		}
		p, err := l.loadFull(modPath + "/" + filepath.ToSlash(rel))
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", dir, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", gomod)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadFull type-checks a module-internal package with bodies and Info.
func (l *loader) loadFull(path string) (*Package, error) {
	if p, ok := l.full[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.modDir
	if path != l.modPath {
		rel, ok := strings.CutPrefix(path, l.modPath+"/")
		if !ok {
			return nil, fmt.Errorf("%s is not inside module %s", path, l.modPath)
		}
		dir = filepath.Join(l.modDir, filepath.FromSlash(rel))
	}
	names, err := l.goFileNames(dir)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor(l.buildCtx.Compiler, l.buildCtx.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.full[path] = p
	l.imported[path] = tpkg
	return p, nil
}

// goFileNames lists the buildable non-test Go files of dir, honoring
// build constraints under the loader's context.
func (l *loader) goFileNames(dir string) ([]string, error) {
	bp, err := l.buildCtx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	return bp.GoFiles, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modDir, 0)
}

// ImportFrom implements types.ImporterFrom. srcDir drives GOROOT vendor
// resolution (net/http importing golang.org/x/net/http/httpguts).
func (l *loader) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.loadFull(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if tp, ok := l.imported[path]; ok {
		return tp, nil
	}
	bp, err := l.buildCtx.Import(path, srcDir, 0)
	if err != nil {
		return nil, err
	}
	if tp, ok := l.imported[bp.ImportPath]; ok {
		l.imported[path] = tp
		return tp, nil
	}
	if l.loading[bp.ImportPath] {
		return nil, fmt.Errorf("import cycle through %s", bp.ImportPath)
	}
	l.loading[bp.ImportPath] = true
	defer delete(l.loading, bp.ImportPath)

	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(bp.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: true, // declarations are enough for imports
		Sizes:            types.SizesFor(l.buildCtx.Compiler, l.buildCtx.GOARCH),
	}
	tpkg, err := conf.Check(bp.ImportPath, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("type-check dependency %s: %w", bp.ImportPath, err)
	}
	l.imported[bp.ImportPath] = tpkg
	l.imported[path] = tpkg
	return tpkg, nil
}
