package power

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/dynlogic"
	"repro/internal/units"
)

func TestPowerScalesWithFrequency(t *testing.T) {
	ad, err := circuits.CarryLookahead(cell.RichASIC(), 16)
	if err != nil {
		t.Fatal(err)
	}
	p100 := Estimate(ad.N, units.ASIC025, DefaultOptions(100))
	p200 := Estimate(ad.N, units.ASIC025, DefaultOptions(200))
	if p200.DynamicW <= p100.DynamicW*1.9 {
		t.Fatalf("dynamic power should double with frequency: %.3g -> %.3g",
			p100.DynamicW, p200.DynamicW)
	}
	// Leakage must not depend on frequency.
	if p200.LeakageW != p100.LeakageW {
		t.Fatal("leakage changed with frequency")
	}
}

func TestPowerScalesWithVoltageSquared(t *testing.T) {
	ad, err := circuits.CarryLookahead(cell.RichASIC(), 16)
	if err != nil {
		t.Fatal(err)
	}
	lo := units.ASIC025
	hi := units.ASIC025
	hi.Vdd = lo.Vdd * 2
	pl := Estimate(ad.N, lo, DefaultOptions(100))
	ph := Estimate(ad.N, hi, DefaultOptions(100))
	ratio := ph.DynamicW / pl.DynamicW
	if ratio < 3.99 || ratio > 4.01 {
		t.Fatalf("V^2 scaling broken: ratio %.3f, want 4", ratio)
	}
}

func TestDominoRaisesClockPower(t *testing.T) {
	ad, err := circuits.CarryLookahead(cell.RichASIC(), 16)
	if err != nil {
		t.Fatal(err)
	}
	before := Estimate(ad.N, units.ASIC025, DefaultOptions(250))
	if _, err := dynlogic.Dominoize(ad.N, dynlogic.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	after := Estimate(ad.N, units.ASIC025, DefaultOptions(250))
	if after.ClockW <= before.ClockW {
		t.Fatalf("domino conversion must add precharge clock power: %.3g -> %.3g",
			before.ClockW, after.ClockW)
	}
	if after.TotalW() <= before.TotalW() {
		t.Fatal("domino designs burn more total power")
	}
}

func TestRegisteredDesignHasClockPower(t *testing.T) {
	n, err := circuits.DatapathChain(cell.RichASIC(), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep := Estimate(n, units.ASIC025, DefaultOptions(150))
	if rep.ClockW <= 0 {
		t.Fatal("registers must load the clock")
	}
	if rep.String() == "" {
		t.Fatal("empty report")
	}
	if rep.TotalW() != rep.DynamicW+rep.ClockW+rep.LeakageW {
		t.Fatal("total does not sum components")
	}
}

func TestPowerMagnitudePlausible(t *testing.T) {
	// A ~500-gate block at 250 MHz should be milliwatts, not watts —
	// scaling to the paper's 90 W Alpha requires ~10^6 gates plus wire,
	// so per-gate power must be ~10-100 uW.
	ad, err := circuits.CarryLookahead(cell.RichASIC(), 16)
	if err != nil {
		t.Fatal(err)
	}
	rep := Estimate(ad.N, units.ASIC025, DefaultOptions(250))
	w := rep.TotalW()
	if w < 1e-5 || w > 0.1 {
		t.Fatalf("adder power = %g W, want between 10 uW and 100 mW", w)
	}
}
