// Package power estimates chip power: dynamic switching (alpha*C*V^2*f
// over every net), clock-tree power (register and domino precharge clock
// pins switch every cycle), and leakage. The paper's section 2 data points
// anchor the sanity band: a 750 MHz Alpha 21264A burned 90 W across
// 2.25 cm^2 of dynamic-logic-heavy silicon, while the lean 1.0 GHz IBM
// integer core drew 6.3 W in under 10 mm^2 — power tracks switched
// capacitance, not speed alone.
package power

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/units"
)

// Options configures an estimate.
type Options struct {
	// FreqMHz is the clock frequency.
	FreqMHz float64
	// Activity is the average switching activity of logic nets (0..1
	// transitions per cycle); 0.15 is a common datapath assumption.
	Activity float64
}

// DefaultOptions uses a 0.15 activity factor.
func DefaultOptions(freqMHz float64) Options {
	return Options{FreqMHz: freqMHz, Activity: 0.15}
}

// Report breaks an estimate into its components, in watts.
type Report struct {
	DynamicW float64
	ClockW   float64
	LeakageW float64
}

// TotalW is the summed estimate.
func (r Report) TotalW() float64 { return r.DynamicW + r.ClockW + r.LeakageW }

func (r Report) String() string {
	return fmt.Sprintf("%.2f W (dynamic %.2f + clock %.2f + leakage %.2f)",
		r.TotalW(), r.DynamicW, r.ClockW, r.LeakageW)
}

// leakScaleW converts a cell's normalized leak units to watts: tuned so a
// million-transistor 0.25 um design leaks well under a watt, as it did.
const leakScaleW = 10e-9

// Estimate computes the power of a netlist in the given process at the
// given clock.
func Estimate(n *netlist.Netlist, p units.Process, opt Options) Report {
	fHz := opt.FreqMHz * 1e6
	vv := p.Vdd * p.Vdd

	var rep Report
	// Dynamic: every net's total load (gate pins + wire) switches with
	// the activity factor — except domino outputs, whose precharged
	// node cycles nearly every clock regardless of data (the section 7
	// power cost of dynamic logic).
	const dominoActivity = 0.75
	for _, nt := range n.Nets() {
		act := opt.Activity
		if nt.Driver != netlist.None && n.Gate(nt.Driver).Cell.Family == cell.Domino {
			act = dominoActivity
		}
		cF := float64(n.Load(nt.ID)) * p.CinFF * 1e-15
		rep.DynamicW += act * cF * vv * fHz
	}
	// Clock: register clock pins and domino precharge devices switch
	// every cycle (activity 1), twice per period (rise and fall count
	// once in CV^2f with full swing).
	var clkCap units.Cap
	for _, r := range n.Regs() {
		clkCap += r.Cell.ClkCap
	}
	for _, g := range n.Gates() {
		if g.Cell.Family == cell.Domino {
			clkCap += units.Cap(0.5 * g.Cell.Drive)
		}
	}
	rep.ClockW = float64(clkCap) * p.CinFF * 1e-15 * vv * fHz

	for _, g := range n.Gates() {
		rep.LeakageW += g.Cell.LeakNW * leakScaleW
	}
	for _, r := range n.Regs() {
		rep.LeakageW += r.Cell.LeakNW * leakScaleW
	}
	return rep
}
