// Package units provides the physical-unit conventions shared by the whole
// toolkit: time, capacitance and resistance scalars, and the fanout-of-four
// (FO4) normalization the paper uses to compare designs across processes.
//
// All combinational delay inside the toolkit is computed in tau, the
// technology-independent logical-effort time unit (the delay of a minimum
// inverter driving zero load is one parasitic delay, p_inv = 1 tau, and its
// effort delay driving a copy of itself is g_inv * 1 = 1 tau). One FO4 delay
// is the delay of an inverter driving four copies of itself:
//
//	FO4 = p_inv + g_inv*4 = 5 tau.
//
// Conversion to absolute time uses the paper's rule of thumb
// FO4(ns) = 0.5 * Leff(um), e.g. Leff = 0.15 um gives FO4 = 75 ps
// (the 1.0 GHz IBM PowerPC process) and Leff = 0.18 um gives FO4 = 90 ps
// (a typical 0.25 um ASIC process).
package units

import (
	"fmt"
	"math"
)

// Tau is the dimensionless logical-effort delay unit. One FO4 = 5 Tau.
type Tau float64

// TauPerFO4 is the number of tau units in one fanout-of-four inverter delay.
const TauPerFO4 = 5.0

// FO4 converts a delay in tau to FO4 units.
func (t Tau) FO4() float64 { return float64(t) / TauPerFO4 }

// Picoseconds converts the delay to absolute time in the given process.
func (t Tau) Picoseconds(p Process) float64 { return t.FO4() * p.FO4Picoseconds() }

// Seconds converts the delay to absolute time in seconds in the given process.
func (t Tau) Seconds(p Process) float64 { return t.Picoseconds(p) * 1e-12 }

// FromFO4 converts a delay expressed in FO4 units to tau.
func FromFO4(fo4 float64) Tau { return Tau(fo4 * TauPerFO4) }

// Cap is capacitance in units of the minimum inverter input capacitance.
type Cap float64

// Femtofarads converts a normalized capacitance to fF in the given process.
func (c Cap) Femtofarads(p Process) float64 { return float64(c) * p.CinFF }

// Res is resistance in units of the minimum inverter output resistance.
type Res float64

// Process captures the handful of technology parameters the toolkit needs.
// Everything else is derived from Leff via the FO4 rule of thumb, so two
// processes with the same design rules but different effective channel
// lengths (the paper's "accessibility" distinction) differ only here.
type Process struct {
	Name string

	// LeffUm is the effective transistor channel length in microns.
	// The paper's 0.25 um generation spans Leff 0.15 um (best custom
	// fabs) to 0.18 um (typical ASIC fabs).
	LeffUm float64

	// DrawnUm is the drawn feature size of the generation (0.25 for all
	// processes considered by the paper's comparison).
	DrawnUm float64

	// Vdd is the nominal supply voltage in volts.
	Vdd float64

	// CinFF is the input capacitance of a minimum inverter in fF.
	CinFF float64

	// RdrvOhm is the output resistance of a minimum inverter in ohms.
	RdrvOhm float64

	// Metal gives the global-layer interconnect parasitics. The paper's
	// 0.25 um comparison is aluminum interconnect throughout.
	Metal Interconnect
}

// Interconnect holds per-length wire parasitics for a routing layer.
type Interconnect struct {
	// ROhmPerMm is wire resistance per millimeter at minimum width.
	ROhmPerMm float64
	// CfFPerMm is wire capacitance per millimeter at minimum width.
	CfFPerMm float64
	// MaxWidthMult is the largest width multiple the router permits when
	// widening wires to cut resistance.
	MaxWidthMult float64
}

// FO4Picoseconds returns the FO4 inverter delay for this process using the
// paper's rule of thumb FO4(ns) = 0.5 * Leff(um).
func (p Process) FO4Picoseconds() float64 { return 0.5 * p.LeffUm * 1000 }

// TauPicoseconds returns the absolute duration of one tau.
func (p Process) TauPicoseconds() float64 { return p.FO4Picoseconds() / TauPerFO4 }

// FrequencyMHz converts a cycle time in tau to a clock frequency in MHz.
func (p Process) FrequencyMHz(cycle Tau) float64 {
	ps := cycle.Picoseconds(p)
	if ps <= 0 {
		return math.Inf(1)
	}
	return 1e6 / ps
}

// CycleTau converts a clock frequency in MHz to a cycle time in tau.
func (p Process) CycleTau(mhz float64) Tau {
	ps := 1e6 / mhz
	return FromFO4(ps / p.FO4Picoseconds())
}

func (p Process) String() string {
	return fmt.Sprintf("%s (%.2fum drawn, Leff %.2fum, FO4 %.0fps, %.1fV)",
		p.Name, p.DrawnUm, p.LeffUm, p.FO4Picoseconds(), p.Vdd)
}

// The paper's 0.25 um generation, parameterized three ways. Interconnect
// values are representative published 0.25 um aluminum numbers (BACPAC-era):
// global-layer Al at minimum width runs on the order of 75 ohm/mm and
// 200 fF/mm with adjacent-line coupling included.
var (
	// ASIC025 is a typical 0.25 um ASIC foundry process: conservative
	// Leff, worst-case characterized libraries.
	ASIC025 = Process{
		Name:    "asic-0.25um",
		LeffUm:  0.18,
		DrawnUm: 0.25,
		Vdd:     2.5,
		CinFF:   3.0,
		RdrvOhm: 9000,
		Metal:   Interconnect{ROhmPerMm: 75, CfFPerMm: 200, MaxWidthMult: 4},
	}

	// Custom025 is a leading-edge 0.25 um custom process of the kind the
	// Alpha 21264A and IBM 1 GHz PowerPC were fabricated in.
	Custom025 = Process{
		Name:    "custom-0.25um",
		LeffUm:  0.15,
		DrawnUm: 0.25,
		Vdd:     2.1,
		CinFF:   2.6,
		RdrvOhm: 7800,
		Metal:   Interconnect{ROhmPerMm: 70, CfFPerMm: 195, MaxWidthMult: 8},
	}

	// ASIC018 is a mature 0.18 um ASIC process (IBM SA-27E class,
	// Leff 0.11-0.12 um, FO4 about 55-60 ps) used by the paper's closing
	// observation that refreshed ASIC libraries track custom processes.
	ASIC018 = Process{
		Name:    "asic-0.18um",
		LeffUm:  0.115,
		DrawnUm: 0.18,
		Vdd:     1.8,
		CinFF:   2.0,
		RdrvOhm: 7000,
		Metal:   Interconnect{ROhmPerMm: 55, CfFPerMm: 190, MaxWidthMult: 8},
	}
)
