package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFO4Conversion(t *testing.T) {
	d := FromFO4(13)
	if got := d.FO4(); math.Abs(got-13) > 1e-12 {
		t.Fatalf("FO4 round trip: got %g, want 13", got)
	}
	if got := Tau(TauPerFO4).FO4(); got != 1 {
		t.Fatalf("5 tau should be 1 FO4, got %g", got)
	}
}

func TestProcessFO4RuleOfThumb(t *testing.T) {
	// The paper: Leff 0.15um -> FO4 75ps (IBM 1 GHz PowerPC process).
	if got := Custom025.FO4Picoseconds(); math.Abs(got-75) > 1e-9 {
		t.Fatalf("custom 0.25um FO4 = %g ps, want 75", got)
	}
	// Typical ASIC 0.25um: Leff 0.18um -> FO4 90ps.
	if got := ASIC025.FO4Picoseconds(); math.Abs(got-90) > 1e-9 {
		t.Fatalf("asic 0.25um FO4 = %g ps, want 90", got)
	}
	// 0.18um ASIC refresh: FO4 in the 55-60 ps band of IBM CMOS7S.
	if got := ASIC018.FO4Picoseconds(); got < 55 || got > 60 {
		t.Fatalf("asic 0.18um FO4 = %g ps, want 55-60", got)
	}
}

func TestPaperFrequencyCalibration(t *testing.T) {
	// 13 FO4 per cycle at 75ps FO4 is the paper's footnote-1 derivation
	// of the 1.0 GHz IBM PowerPC.
	cycle := FromFO4(13)
	mhz := Custom025.FrequencyMHz(cycle)
	if mhz < 1000 || mhz > 1030 {
		t.Fatalf("13 FO4 at 75ps = %.0f MHz, want ~1026 (1.0 GHz)", mhz)
	}
	// 44 FO4 at 90ps is the Xtensa-class ASIC: ~250 MHz.
	mhz = ASIC025.FrequencyMHz(FromFO4(44))
	if mhz < 245 || mhz > 260 {
		t.Fatalf("44 FO4 at 90ps = %.0f MHz, want ~252 (250 MHz class)", mhz)
	}
}

func TestCycleTauRoundTrip(t *testing.T) {
	f := func(mhz float64) bool {
		mhz = 50 + math.Mod(math.Abs(mhz), 2000) // clamp to a sane band
		cycle := ASIC025.CycleTau(mhz)
		back := ASIC025.FrequencyMHz(cycle)
		return math.Abs(back-mhz)/mhz < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrequencyMonotoneInCycle(t *testing.T) {
	f := func(a, b float64) bool {
		a = 1 + math.Mod(math.Abs(a), 100)
		b = 1 + math.Mod(math.Abs(b), 100)
		fa := ASIC025.FrequencyMHz(FromFO4(a))
		fb := ASIC025.FrequencyMHz(FromFO4(b))
		if a < b {
			return fa >= fb
		}
		return fb >= fa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCycleIsInfiniteFrequency(t *testing.T) {
	if !math.IsInf(ASIC025.FrequencyMHz(0), 1) {
		t.Fatal("zero cycle should report +Inf frequency")
	}
}

func TestPicoseconds(t *testing.T) {
	// One FO4 in the ASIC 0.25um process is 90ps.
	if got := FromFO4(1).Picoseconds(ASIC025); math.Abs(got-90) > 1e-9 {
		t.Fatalf("1 FO4 = %g ps, want 90", got)
	}
	if got := FromFO4(2).Seconds(ASIC025); math.Abs(got-180e-12) > 1e-20 {
		t.Fatalf("2 FO4 = %g s, want 1.8e-10", got)
	}
}

func TestProcessString(t *testing.T) {
	s := ASIC025.String()
	if s == "" {
		t.Fatal("empty process description")
	}
}
