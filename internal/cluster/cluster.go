// Package cluster turns N independent gapd processes into one sharded
// evaluation service. Membership is a static peer list health-probed
// over /healthz; ownership is rendezvous hashing over the job's
// content address (a pure function of the peer set and the spec hash,
// so every node agrees with zero coordination); requests for specs
// another node owns are forwarded over HTTP with hedged reads (race the
// owner against the next node in rendezvous order once it runs slow —
// exact, because evaluation is deterministic and content-addressed);
// and when the owner is dead the next node in order computes locally,
// trading warm-cache throughput for availability, never the reverse.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/jobs"
)

// ErrConfig marks invalid cluster configuration caught at startup
// (peer-list parsing, self-id mismatches). It is deliberately outside
// the jobs failure taxonomy — a config error aborts boot and never
// crosses the retry/breaker path — but wrapping it keeps every exported
// cluster error classifiable with errors.Is, which gaplint's
// errtaxonomy analyzer enforces.
var ErrConfig = errors.New("cluster: invalid configuration")

// ForwardedHeader marks a request already proxied once by a peer. A
// receiving node serves such a request locally no matter who owns it —
// the one-hop loop guard that makes divergent health views safe.
const ForwardedHeader = "X-Gapd-Forwarded"

// Peer is one static cluster member.
type Peer struct {
	// ID names the node (must be unique across the cluster).
	ID string `json:"id"`
	// URL is the node's base HTTP address (e.g. http://host:8080).
	URL string `json:"url"`
	// Weight scales the node's ownership share via virtual nodes
	// (default 1).
	Weight int `json:"weight,omitempty"`
}

// Options configures a Cluster.
type Options struct {
	// SelfID names this node; it must appear in Peers.
	SelfID string
	// Peers is the full static membership, including this node.
	Peers []Peer
	// HedgeAfter is how long a forwarded request may sit unanswered
	// before a hedge is raced against the next node in rendezvous order
	// (default 50ms; negative disables hedging).
	HedgeAfter time.Duration
	// RequestTimeout caps one forwarded request (default 2 minutes).
	RequestTimeout time.Duration
	// ProbeInterval spaces the periodic /healthz probes (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout caps one probe (default 1s).
	ProbeTimeout time.Duration
	// DeadAfter is the consecutive probe/forward failures that declare
	// a peer dead (default 3).
	DeadAfter int
	// MaxConnsPerPeer bounds the connection pool per peer (default 16).
	MaxConnsPerPeer int
	// MaxTargets caps the forward chain per request: the acting owner
	// plus hedge/fallback candidates in rendezvous order (default 3).
	MaxTargets int
	// VNodes is the virtual-node multiplier per unit of peer weight
	// (default DefaultVNodes).
	VNodes int
	// Metrics receives the routing counters; nil allocates a private
	// set (retrievable via Cluster.Metrics).
	Metrics *Metrics
	// AliveAfter is the consecutive probe/forward successes a dead peer
	// must produce before flap damping promotes it back to alive
	// (default 2; 1 disables damping).
	AliveAfter int
	// Replicas is the replication factor R: a completed result lives on
	// the first R nodes in its rendezvous order (owner included), pushed
	// asynchronously at completion time and repaired by anti-entropy
	// (default 1 — replication off; every result lives only where it was
	// computed).
	Replicas int
	// AntiEntropyInterval spaces the background repair sweeps that
	// re-push cached results to replica peers that missed the
	// completion-time push (a partition, a restart). Zero disables the
	// loop; AntiEntropyNow remains callable either way.
	AntiEntropyInterval time.Duration
	// DeadlineMargin is subtracted from the caller's deadline at each
	// forward hop before it is stamped onto the wire, reserving budget
	// for this hop's own marshalling and transit (default 10ms).
	DeadlineMargin time.Duration
	// Results exposes this node's completed-result store to replication
	// and anti-entropy (typically the pool's cache). Nil disables the
	// /v1/results serving path, replica fallback reads, and
	// anti-entropy.
	Results ResultStore
	// WrapTransport, when non-nil, wraps the HTTP transport used for
	// every peer request — forwards, probes, replication pushes, and
	// replica reads alike. The netfault injector hooks in here.
	WrapTransport func(http.RoundTripper) http.RoundTripper
}

// ResultStore is the completed-result view replication reads from:
// enumerate the content addresses this node holds and fetch one by
// address. *jobs.Cache satisfies it.
type ResultStore interface {
	Keys() []string
	Get(id string) (*jobs.Result, bool)
}

// Cluster is one node's view of the sharded service: the ownership
// ring, the health-tracked membership, and the forwarding client.
type Cluster struct {
	self           string
	hedgeAfter     time.Duration
	maxTargets     int
	replicas       int
	aeInterval     time.Duration
	deadlineMargin time.Duration
	peers          map[string]Peer
	ring           *Ring
	members        *membership
	results        ResultStore
	hc             *http.Client
	reqTimeout     time.Duration
	metrics        *Metrics

	aeCancel context.CancelFunc
	aeDone   chan struct{}
}

// New validates opt and builds the node's cluster view. Call Start to
// begin health probing and Close to stop it.
func New(opt Options) (*Cluster, error) {
	if len(opt.Peers) == 0 {
		return nil, fmt.Errorf("%w: empty peer list", ErrConfig)
	}
	byID := make(map[string]Peer, len(opt.Peers))
	for _, p := range opt.Peers {
		if p.ID == "" || p.URL == "" {
			return nil, fmt.Errorf("%w: peer with empty id or url: %+v", ErrConfig, p)
		}
		if _, dup := byID[p.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate peer id %q", ErrConfig, p.ID)
		}
		p.URL = strings.TrimRight(p.URL, "/")
		byID[p.ID] = p
	}
	if _, ok := byID[opt.SelfID]; !ok {
		return nil, fmt.Errorf("%w: self id %q not in peer list", ErrConfig, opt.SelfID)
	}
	if opt.HedgeAfter == 0 {
		opt.HedgeAfter = 50 * time.Millisecond
	}
	if opt.RequestTimeout <= 0 {
		opt.RequestTimeout = 2 * time.Minute
	}
	if opt.ProbeInterval <= 0 {
		opt.ProbeInterval = 2 * time.Second
	}
	if opt.ProbeTimeout <= 0 {
		opt.ProbeTimeout = time.Second
	}
	if opt.DeadAfter <= 0 {
		opt.DeadAfter = 3
	}
	if opt.MaxConnsPerPeer <= 0 {
		opt.MaxConnsPerPeer = 16
	}
	if opt.MaxTargets <= 0 {
		opt.MaxTargets = 3
	}
	if opt.Metrics == nil {
		opt.Metrics = NewMetrics()
	}
	if opt.AliveAfter <= 0 {
		opt.AliveAfter = 2
	}
	if opt.Replicas <= 0 {
		opt.Replicas = 1
	}
	if opt.DeadlineMargin <= 0 {
		opt.DeadlineMargin = 10 * time.Millisecond
	}
	normalized := make([]Peer, 0, len(byID))
	for _, p := range opt.Peers {
		normalized = append(normalized, byID[p.ID])
	}
	// One shared transport for every peer-facing request — forwards,
	// probes, replication, replica reads — so a netfault wrapper sees
	// (and can partition) all of them.
	var rt http.RoundTripper = &http.Transport{
		MaxIdleConns:        opt.MaxConnsPerPeer * len(byID),
		MaxIdleConnsPerHost: opt.MaxConnsPerPeer,
		MaxConnsPerHost:     opt.MaxConnsPerPeer,
		IdleConnTimeout:     90 * time.Second,
	}
	if opt.WrapTransport != nil {
		rt = opt.WrapTransport(rt)
	}
	c := &Cluster{
		self:           opt.SelfID,
		hedgeAfter:     opt.HedgeAfter,
		maxTargets:     opt.MaxTargets,
		replicas:       opt.Replicas,
		aeInterval:     opt.AntiEntropyInterval,
		deadlineMargin: opt.DeadlineMargin,
		peers:          byID,
		ring:           NewRing(normalized, opt.VNodes),
		members: newMembership(opt.SelfID, normalized, opt.ProbeInterval,
			opt.ProbeTimeout, opt.DeadAfter, opt.AliveAfter, opt.Metrics, rt),
		results:    opt.Results,
		reqTimeout: opt.RequestTimeout,
		metrics:    opt.Metrics,
		hc:         &http.Client{Transport: rt},
	}
	return c, nil
}

// ParsePeers parses the -peers flag format: comma-separated id=url
// pairs, e.g. "a=http://h1:8080,b=http://h2:8080".
func ParsePeers(s string) ([]Peer, error) {
	var peers []Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("%w: bad peer %q (want id=url)", ErrConfig, part)
		}
		peers = append(peers, Peer{ID: strings.TrimSpace(id), URL: strings.TrimSpace(url)})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("%w: empty peer list %q", ErrConfig, s)
	}
	return peers, nil
}

// Start begins periodic health probing and, when configured with an
// interval and a result store, the background anti-entropy loop.
func (c *Cluster) Start(ctx context.Context) {
	c.members.start(ctx)
	if c.aeInterval > 0 && c.results != nil && c.replicas > 1 {
		aeCtx, cancel := context.WithCancel(ctx)
		c.aeCancel = cancel
		c.aeDone = make(chan struct{})
		go func() {
			defer close(c.aeDone)
			t := time.NewTicker(c.aeInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					c.AntiEntropyNow(aeCtx)
				case <-aeCtx.Done():
					return
				}
			}
		}()
	}
}

// Close stops health probing, the anti-entropy loop, and releases idle
// connections.
func (c *Cluster) Close() {
	c.members.stop()
	if c.aeCancel != nil {
		c.aeCancel()
		<-c.aeDone
	}
	c.hc.CloseIdleConnections()
}

// Self returns this node's ID.
func (c *Cluster) Self() string { return c.self }

// Metrics returns the cluster's routing counters.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Ring returns the ownership ring (for tests and ownership stats).
func (c *Cluster) Ring() *Ring { return c.ring }

// Route is one routing decision for a spec hash.
type Route struct {
	// Owner is the true owner: first in rendezvous order over the full
	// static peer set, dead or alive.
	Owner string
	// Local reports that this node should compute the job itself.
	Local bool
	// Fallback reports that the serving node is not the true owner —
	// the owner was dead at route time, so the cluster trades the warm
	// cache for availability.
	Fallback bool
	// Targets are the forward candidates in rendezvous order (acting
	// owner first), set only when Local is false.
	Targets []Peer
}

// Route decides where the spec with the given content address runs:
// locally when this node is the first usable peer in rendezvous order,
// otherwise forwarded along Targets. Dead peers are skipped (degraded
// ones are not); if every peer looks dead the node serves locally, so
// the cluster can lose throughput but never availability.
func (c *Cluster) Route(hash string) Route {
	rank := c.ring.Rank(hash)
	rt := Route{Owner: rank[0]}
	acting := c.self
	for _, id := range rank {
		if c.members.usable(id) {
			acting = id
			break
		}
	}
	rt.Fallback = acting != rt.Owner
	if acting == c.self {
		rt.Local = true
		return rt
	}
	started := false
	for _, id := range rank {
		if !started {
			if id != acting {
				continue
			}
			started = true
		}
		if id == c.self || !c.members.usable(id) {
			continue
		}
		rt.Targets = append(rt.Targets, c.peers[id])
		if len(rt.Targets) == c.maxTargets {
			break
		}
	}
	return rt
}

// OwnershipStats summarizes the ring balance for GET /v1/cluster.
type OwnershipStats struct {
	Sample int                `json:"sample"`
	Shares map[string]float64 `json:"shares"`
}

// Status is the GET /v1/cluster payload: membership with live health,
// ownership balance, and the routing counters.
type Status struct {
	Self         string           `json:"self"`
	HedgeAfterMS float64          `json:"hedge_after_ms"`
	Peers        []PeerStatus     `json:"peers"`
	Ownership    OwnershipStats   `json:"ownership"`
	Counters     map[string]int64 `json:"counters"`
}

// Status snapshots the node's cluster view.
func (c *Cluster) Status() Status {
	const sample = 1024
	return Status{
		Self:         c.self,
		HedgeAfterMS: float64(c.hedgeAfter) / float64(time.Millisecond),
		Peers:        c.members.snapshot(),
		Ownership:    OwnershipStats{Sample: sample, Shares: c.ring.Shares(sample)},
		Counters:     c.metrics.Counters(),
	}
}

// MetricsSnapshot renders the cluster block of GET /metrics: the
// routing counters plus a per-peer health gauge (up: 1 for alive or
// degraded, 0 for dead).
func (c *Cluster) MetricsSnapshot() map[string]any {
	snap := make(map[string]any, 8)
	for k, v := range c.metrics.Counters() {
		snap[k] = v
	}
	peers := make(map[string]any, len(c.peers))
	for _, ps := range c.members.snapshot() {
		up := 1
		if ps.Health == HealthDead {
			up = 0
		}
		peers[ps.ID] = map[string]any{
			"health":               string(ps.Health),
			"up":                   up,
			"consecutive_failures": ps.ConsecutiveFails,
		}
	}
	snap["peers"] = peers
	return snap
}
