// Package cluster turns N independent gapd processes into one sharded
// evaluation service. Membership is either a static peer list
// health-probed over /healthz or — with Options.Gossip — a dynamic
// SWIM-style view (internal/gossip) where nodes join, drain, and leave
// at runtime, ownership re-ranks live as the view changes, and
// completed results migrate to their new owners over the replication
// endpoints instead of being recomputed. Ownership is rendezvous
// hashing over the job's
// content address (a pure function of the peer set and the spec hash,
// so every node agrees with zero coordination); requests for specs
// another node owns are forwarded over HTTP with hedged reads (race the
// owner against the next node in rendezvous order once it runs slow —
// exact, because evaluation is deterministic and content-addressed);
// and when the owner is dead the next node in order computes locally,
// trading warm-cache throughput for availability, never the reverse.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/gossip"
	"repro/internal/jobs"
)

// ErrConfig marks invalid cluster configuration caught at startup
// (peer-list parsing, self-id mismatches). It is deliberately outside
// the jobs failure taxonomy — a config error aborts boot and never
// crosses the retry/breaker path — but wrapping it keeps every exported
// cluster error classifiable with errors.Is, which gaplint's
// errtaxonomy analyzer enforces.
var ErrConfig = errors.New("cluster: invalid configuration")

// ForwardedHeader marks a request already proxied once by a peer. A
// receiving node serves such a request locally no matter who owns it —
// the one-hop loop guard that makes divergent health views safe.
const ForwardedHeader = "X-Gapd-Forwarded"

// Peer is one static cluster member.
type Peer struct {
	// ID names the node (must be unique across the cluster).
	ID string `json:"id"`
	// URL is the node's base HTTP address (e.g. http://host:8080).
	URL string `json:"url"`
	// Weight scales the node's ownership share via virtual nodes
	// (default 1).
	Weight int `json:"weight,omitempty"`
}

// GossipOptions enables dynamic SWIM-style membership in place of the
// static health-probed peer list.
type GossipOptions struct {
	// SelfURL is this node's advertised base HTTP address — what other
	// members will dial. Required.
	SelfURL string
	// Seed drives the deterministic probe/ping-req target selection
	// (see internal/gossip). Nodes may use different seeds.
	Seed int64
	// Interval spaces protocol rounds (default 250ms).
	Interval time.Duration
	// ProbeTimeout caps one gossip exchange, direct or proxied
	// (default 1s).
	ProbeTimeout time.Duration
	// SuspectRounds / PingReqFanout tune the failure detector; zero
	// selects the gossip package defaults.
	SuspectRounds int
	PingReqFanout int
	// Weight is this node's rendezvous weight (default 1).
	Weight int
}

// Options configures a Cluster.
type Options struct {
	// SelfID names this node; with static membership it must appear in
	// Peers.
	SelfID string
	// Peers is the full static membership, including this node. Under
	// Gossip it is instead the seed contact list — addresses to
	// announce the join to — and may omit self (or, for the first node
	// of a new cluster, be empty).
	Peers []Peer
	// Gossip, when non-nil, replaces static membership with the
	// SWIM-style dynamic view: seeded probe/ping-req rounds over
	// POST /v1/gossip, incarnation-numbered alive/suspect/dead states,
	// live ring re-ranking, and ownership handoff on join/drain.
	Gossip *GossipOptions
	// HedgeAfter is how long a forwarded request may sit unanswered
	// before a hedge is raced against the next node in rendezvous order
	// (default 50ms; negative disables hedging).
	HedgeAfter time.Duration
	// RequestTimeout caps one forwarded request (default 2 minutes).
	RequestTimeout time.Duration
	// ProbeInterval spaces the periodic /healthz probes (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout caps one probe (default 1s).
	ProbeTimeout time.Duration
	// DeadAfter is the consecutive probe/forward failures that declare
	// a peer dead (default 3).
	DeadAfter int
	// MaxConnsPerPeer bounds the connection pool per peer (default 16).
	MaxConnsPerPeer int
	// MaxTargets caps the forward chain per request: the acting owner
	// plus hedge/fallback candidates in rendezvous order (default 3).
	MaxTargets int
	// VNodes is the virtual-node multiplier per unit of peer weight
	// (default DefaultVNodes).
	VNodes int
	// Metrics receives the routing counters; nil allocates a private
	// set (retrievable via Cluster.Metrics).
	Metrics *Metrics
	// AliveAfter is the consecutive probe/forward successes a dead peer
	// must produce before flap damping promotes it back to alive
	// (default 2; 1 disables damping).
	AliveAfter int
	// Replicas is the replication factor R: a completed result lives on
	// the first R nodes in its rendezvous order (owner included), pushed
	// asynchronously at completion time and repaired by anti-entropy
	// (default 1 — replication off; every result lives only where it was
	// computed).
	Replicas int
	// AntiEntropyInterval spaces the background repair sweeps that
	// re-push cached results to replica peers that missed the
	// completion-time push (a partition, a restart). Zero disables the
	// loop; AntiEntropyNow remains callable either way.
	AntiEntropyInterval time.Duration
	// DeadlineMargin is subtracted from the caller's deadline at each
	// forward hop before it is stamped onto the wire, reserving budget
	// for this hop's own marshalling and transit (default 10ms).
	DeadlineMargin time.Duration
	// Results exposes this node's completed-result store to replication
	// and anti-entropy (typically the pool's cache). Nil disables the
	// /v1/results serving path, replica fallback reads, and
	// anti-entropy.
	Results ResultStore
	// WrapTransport, when non-nil, wraps the HTTP transport used for
	// every peer request — forwards, probes, replication pushes, and
	// replica reads alike. The netfault injector hooks in here.
	WrapTransport func(http.RoundTripper) http.RoundTripper
}

// ResultStore is the completed-result view replication reads from:
// enumerate the content addresses this node holds and fetch one by
// address. *jobs.Cache satisfies it.
type ResultStore interface {
	Keys() []string
	Get(id string) (*jobs.Result, bool)
}

// ringView is one immutable generation of the ownership view: the ring
// plus the peer records it ranks over. Static clusters build it once;
// gossip clusters rebuild and atomically swap it whenever the
// membership view's ring-eligible set changes, so routing reads are
// lock-free either way.
type ringView struct {
	ring  *Ring
	peers map[string]Peer
}

// Cluster is one node's view of the sharded service: the ownership
// ring, the health-tracked membership, and the forwarding client.
type Cluster struct {
	self           string
	hedgeAfter     time.Duration
	maxTargets     int
	replicas       int
	vnodes         int
	aeInterval     time.Duration
	deadlineMargin time.Duration
	view           atomic.Pointer[ringView]
	members        *membership // static mode only
	gossip         *gossipRunner
	results        ResultStore
	hc             *http.Client
	reqTimeout     time.Duration
	metrics        *Metrics

	aeCancel context.CancelFunc
	aeDone   chan struct{}
}

// rv returns the current ring view (never nil).
func (c *Cluster) rv() *ringView { return c.view.Load() }

// usable reports whether id may be routed to under the active
// membership mode.
func (c *Cluster) usable(id string) bool {
	if id == c.self {
		return true
	}
	if c.gossip != nil {
		return c.gossip.routable(id)
	}
	return c.members.usable(id)
}

// reportSuccess is the passive health signal from a successful peer
// request.
func (c *Cluster) reportSuccess(id string) {
	if c.gossip != nil {
		c.gossip.view.ObserveAlive(id)
		return
	}
	c.members.reportSuccess(id)
}

// reportFailure is the passive health signal from a failed peer
// request. Under gossip it opens the suspicion window — the member
// stays in the ring and has SuspectRounds to refute via incarnation
// bump before being declared dead, which subsumes the static mode's
// consecutive-failure flap damping.
func (c *Cluster) reportFailure(id string, err error) {
	if c.gossip != nil {
		if c.gossip.view.ObserveFailure(id) {
			c.gossip.syncStats()
		}
		return
	}
	c.members.reportFailure(id, err)
}

// New validates opt and builds the node's cluster view. Call Start to
// begin health probing (static) or the gossip loop, and Close to stop.
func New(opt Options) (*Cluster, error) {
	if opt.Gossip == nil && len(opt.Peers) == 0 {
		return nil, fmt.Errorf("%w: empty peer list", ErrConfig)
	}
	byID := make(map[string]Peer, len(opt.Peers))
	for _, p := range opt.Peers {
		if p.ID == "" || p.URL == "" {
			return nil, fmt.Errorf("%w: peer with empty id or url: %+v", ErrConfig, p)
		}
		if _, dup := byID[p.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate peer id %q", ErrConfig, p.ID)
		}
		p.URL = strings.TrimRight(p.URL, "/")
		byID[p.ID] = p
	}
	if opt.Gossip == nil {
		if _, ok := byID[opt.SelfID]; !ok {
			return nil, fmt.Errorf("%w: self id %q not in peer list", ErrConfig, opt.SelfID)
		}
	} else {
		if opt.SelfID == "" {
			return nil, fmt.Errorf("%w: gossip mode requires a node id", ErrConfig)
		}
		if opt.Gossip.SelfURL == "" {
			return nil, fmt.Errorf("%w: gossip mode requires an advertised self URL", ErrConfig)
		}
	}
	if opt.HedgeAfter == 0 {
		opt.HedgeAfter = 50 * time.Millisecond
	}
	if opt.RequestTimeout <= 0 {
		opt.RequestTimeout = 2 * time.Minute
	}
	if opt.ProbeInterval <= 0 {
		opt.ProbeInterval = 2 * time.Second
	}
	if opt.ProbeTimeout <= 0 {
		opt.ProbeTimeout = time.Second
	}
	if opt.DeadAfter <= 0 {
		opt.DeadAfter = 3
	}
	if opt.MaxConnsPerPeer <= 0 {
		opt.MaxConnsPerPeer = 16
	}
	if opt.MaxTargets <= 0 {
		opt.MaxTargets = 3
	}
	if opt.Metrics == nil {
		opt.Metrics = NewMetrics()
	}
	if opt.AliveAfter <= 0 {
		opt.AliveAfter = 2
	}
	if opt.Replicas <= 0 {
		opt.Replicas = 1
	}
	if opt.DeadlineMargin <= 0 {
		opt.DeadlineMargin = 10 * time.Millisecond
	}
	normalized := make([]Peer, 0, len(byID))
	for _, p := range opt.Peers {
		normalized = append(normalized, byID[p.ID])
	}
	// One shared transport for every peer-facing request — forwards,
	// probes, replication, replica reads — so a netfault wrapper sees
	// (and can partition) all of them.
	var rt http.RoundTripper = &http.Transport{
		MaxIdleConns:        opt.MaxConnsPerPeer * len(byID),
		MaxIdleConnsPerHost: opt.MaxConnsPerPeer,
		MaxConnsPerHost:     opt.MaxConnsPerPeer,
		IdleConnTimeout:     90 * time.Second,
	}
	if opt.WrapTransport != nil {
		rt = opt.WrapTransport(rt)
	}
	c := &Cluster{
		self:           opt.SelfID,
		hedgeAfter:     opt.HedgeAfter,
		maxTargets:     opt.MaxTargets,
		replicas:       opt.Replicas,
		vnodes:         opt.VNodes,
		aeInterval:     opt.AntiEntropyInterval,
		deadlineMargin: opt.DeadlineMargin,
		results:        opt.Results,
		reqTimeout:     opt.RequestTimeout,
		metrics:        opt.Metrics,
		hc:             &http.Client{Transport: rt},
	}
	if opt.Gossip != nil {
		g, err := newGossipRunner(c, opt, normalized)
		if err != nil {
			return nil, err
		}
		c.gossip = g
		// The boot view contains only self; seeds are contacts, not
		// members — the first exchange merges the real cluster in and
		// swaps a wider ring. Until then the node serves locally, which
		// is only a cache-affinity cost: results are content-addressed,
		// so early answers are byte-identical regardless of routing.
		self := Peer{ID: opt.SelfID, URL: opt.Gossip.SelfURL, Weight: opt.Gossip.Weight}
		c.view.Store(&ringView{
			ring:  NewRing([]Peer{self}, opt.VNodes),
			peers: map[string]Peer{opt.SelfID: self},
		})
		return c, nil
	}
	c.view.Store(&ringView{ring: NewRing(normalized, opt.VNodes), peers: byID})
	c.members = newMembership(opt.SelfID, normalized, opt.ProbeInterval,
		opt.ProbeTimeout, opt.DeadAfter, opt.AliveAfter, opt.Metrics, rt)
	return c, nil
}

// ParsePeers parses the -peers flag format: comma-separated id=url
// pairs, e.g. "a=http://h1:8080,b=http://h2:8080".
func ParsePeers(s string) ([]Peer, error) {
	var peers []Peer
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("%w: bad peer %q (want id=url)", ErrConfig, part)
		}
		peers = append(peers, Peer{ID: strings.TrimSpace(id), URL: strings.TrimSpace(url)})
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("%w: empty peer list %q", ErrConfig, s)
	}
	return peers, nil
}

// Start begins membership maintenance — static health probing, or the
// gossip loop (join announcement to the seed contacts, then periodic
// probe/ping-req rounds) — and, when configured with an interval and a
// result store, the background anti-entropy loop.
func (c *Cluster) Start(ctx context.Context) {
	if c.gossip != nil {
		c.gossip.start(ctx)
	} else {
		c.members.start(ctx)
	}
	if c.aeInterval > 0 && c.results != nil && c.replicas > 1 {
		aeCtx, cancel := context.WithCancel(ctx)
		c.aeCancel = cancel
		c.aeDone = make(chan struct{})
		go func() {
			defer close(c.aeDone)
			t := time.NewTicker(c.aeInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					c.AntiEntropyNow(aeCtx)
				case <-aeCtx.Done():
					return
				}
			}
		}()
	}
}

// Close stops membership maintenance, the anti-entropy loop, and
// releases idle connections.
func (c *Cluster) Close() {
	if c.gossip != nil {
		c.gossip.stop()
	} else {
		c.members.stop()
	}
	if c.aeCancel != nil {
		c.aeCancel()
		<-c.aeDone
	}
	c.hc.CloseIdleConnections()
}

// Self returns this node's ID.
func (c *Cluster) Self() string { return c.self }

// Metrics returns the cluster's routing counters.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Ring returns the current ownership ring (for tests and ownership
// stats). Under gossip the returned ring is one immutable generation;
// it does not track later membership changes.
func (c *Cluster) Ring() *Ring { return c.rv().ring }

// GossipEnabled reports whether this cluster runs dynamic membership.
func (c *Cluster) GossipEnabled() bool { return c.gossip != nil }

// Route is one routing decision for a spec hash.
type Route struct {
	// Owner is the true owner: first in rendezvous order over the full
	// static peer set, dead or alive.
	Owner string
	// Local reports that this node should compute the job itself.
	Local bool
	// Fallback reports that the serving node is not the true owner —
	// the owner was dead at route time, so the cluster trades the warm
	// cache for availability.
	Fallback bool
	// Targets are the forward candidates in rendezvous order (acting
	// owner first), set only when Local is false.
	Targets []Peer
}

// Route decides where the spec with the given content address runs:
// locally when this node is the first usable peer in rendezvous order,
// otherwise forwarded along Targets. Dead peers are skipped (degraded
// ones are not); if every peer looks dead the node serves locally, so
// the cluster can lose throughput but never availability.
func (c *Cluster) Route(hash string) Route {
	rv := c.rv()
	rank := rv.ring.Rank(hash)
	if len(rank) == 0 {
		// A draining singleton owns nothing, but something must answer:
		// availability beats drain purity, and the serve layer's drain
		// gate decides whether to admit.
		return Route{Owner: c.self, Local: true}
	}
	rt := Route{Owner: rank[0]}
	acting := c.self
	for _, id := range rank {
		if c.usable(id) {
			acting = id
			break
		}
	}
	rt.Fallback = acting != rt.Owner
	if acting == c.self {
		rt.Local = true
		return rt
	}
	started := false
	for _, id := range rank {
		if !started {
			if id != acting {
				continue
			}
			started = true
		}
		if id == c.self || !c.usable(id) {
			continue
		}
		rt.Targets = append(rt.Targets, rv.peers[id])
		if len(rt.Targets) == c.maxTargets {
			break
		}
	}
	return rt
}

// OwnershipStats summarizes the ring balance for GET /v1/cluster.
type OwnershipStats struct {
	Sample int                `json:"sample"`
	Shares map[string]float64 `json:"shares"`
}

// Status is the GET /v1/cluster payload: membership with live health,
// ownership balance, and the routing counters. Static clusters report
// Peers (probe-fed health); gossip clusters report Members — the live
// gossip view with state, incarnation, and last-heard round — plus the
// current protocol round and ring generation.
type Status struct {
	Self         string                `json:"self"`
	Mode         string                `json:"mode"`
	HedgeAfterMS float64               `json:"hedge_after_ms"`
	Peers        []PeerStatus          `json:"peers,omitempty"`
	Members      []gossip.MemberStatus `json:"members,omitempty"`
	GossipRound  uint64                `json:"gossip_round,omitempty"`
	RingGen      uint64                `json:"ring_generation,omitempty"`
	Ownership    OwnershipStats        `json:"ownership"`
	Counters     map[string]int64      `json:"counters"`
}

// Status snapshots the node's cluster view.
func (c *Cluster) Status() Status {
	const sample = 1024
	st := Status{
		Self:         c.self,
		Mode:         "static",
		HedgeAfterMS: float64(c.hedgeAfter) / float64(time.Millisecond),
		Ownership:    OwnershipStats{Sample: sample, Shares: c.rv().ring.Shares(sample)},
		Counters:     c.metrics.Counters(),
	}
	if c.gossip != nil {
		st.Mode = "gossip"
		st.Members = c.gossip.view.Snapshot()
		st.GossipRound = c.gossip.view.Round()
		st.RingGen = c.gossip.view.Gen()
		return st
	}
	st.Peers = c.members.snapshot()
	return st
}

// MetricsSnapshot renders the cluster block of GET /metrics: the
// routing counters plus a per-peer availability gauge (up: 1 when the
// peer may be routed to, 0 when dead/left).
func (c *Cluster) MetricsSnapshot() map[string]any {
	snap := make(map[string]any, 8)
	for k, v := range c.metrics.Counters() {
		snap[k] = v
	}
	peers := make(map[string]any, 4)
	if c.gossip != nil {
		for _, ms := range c.gossip.view.Snapshot() {
			up := 0
			if ms.State.Routable() {
				up = 1
			}
			peers[ms.ID] = map[string]any{
				"state":       string(ms.State),
				"up":          up,
				"incarnation": ms.Incarnation,
				"last_heard":  ms.LastHeardRound,
			}
		}
	} else {
		for _, ps := range c.members.snapshot() {
			up := 1
			if ps.Health == HealthDead {
				up = 0
			}
			peers[ps.ID] = map[string]any{
				"health":               string(ps.Health),
				"up":                   up,
				"consecutive_failures": ps.ConsecutiveFails,
			}
		}
	}
	snap["peers"] = peers
	return snap
}
