package cluster

import (
	"fmt"
	"testing"
	"time"
)

// testMembership builds a two-peer membership (self a, peer b) with the
// given thresholds, no probe loop.
func testMembership(deadAfter, aliveAfter int, m *Metrics) *membership {
	peers := []Peer{{ID: "a", URL: "http://a"}, {ID: "b", URL: "http://b"}}
	return newMembership("a", peers, time.Hour, time.Second, deadAfter, aliveAfter, m, nil)
}

// TestFlapDampingSuppressesOscillation: a dead peer whose link is
// up-down-up-down must stay dead — one success between failures never
// reaches the aliveAfter streak, every suppressed promotion is counted,
// and routing (usable) never oscillates.
func TestFlapDampingSuppressesOscillation(t *testing.T) {
	metrics := NewMetrics()
	m := testMembership(1, 3, metrics)

	m.record("b", HealthDead, "down")
	if m.health("b") != HealthDead {
		t.Fatalf("health = %s, want dead", m.health("b"))
	}

	// Ten up-down cycles: each lone success is swallowed by damping.
	for i := 0; i < 10; i++ {
		m.record("b", HealthAlive, "")
		if m.health("b") != HealthDead {
			t.Fatalf("cycle %d: one success resurrected the peer", i)
		}
		if m.usable("b") {
			t.Fatalf("cycle %d: flapping peer became routable", i)
		}
		m.record("b", HealthDead, "down again")
	}
	if got := metrics.FlapsSuppressed.Load(); got != 10 {
		t.Errorf("FlapsSuppressed = %d, want 10", got)
	}

	// A genuine recovery — aliveAfter consecutive successes — promotes.
	m.record("b", HealthAlive, "")
	m.record("b", HealthAlive, "")
	if m.health("b") != HealthDead {
		t.Fatal("promoted one success early")
	}
	m.record("b", HealthAlive, "")
	if m.health("b") != HealthAlive {
		t.Fatalf("health = %s after %d consecutive successes, want alive", m.health("b"), 3)
	}
	if !m.usable("b") {
		t.Fatal("recovered peer not routable")
	}
}

// TestFlapDampingOnlyGuardsDeadPeers: damping exists to stop dead->alive
// bouncing; transitions among the live states (alive <-> degraded) must
// stay immediate, and a live peer's failures must still kill it after
// deadAfter.
func TestFlapDampingOnlyGuardsDeadPeers(t *testing.T) {
	m := testMembership(2, 3, NewMetrics())

	m.record("b", HealthDegraded, "")
	if m.health("b") != HealthDegraded {
		t.Fatalf("health = %s, want degraded immediately", m.health("b"))
	}
	m.record("b", HealthAlive, "")
	if m.health("b") != HealthAlive {
		t.Fatalf("health = %s, want alive immediately (no damping among live states)", m.health("b"))
	}
	m.record("b", HealthDead, "x")
	if m.health("b") != HealthAlive {
		t.Fatal("one failure killed the peer with deadAfter=2")
	}
	m.record("b", HealthDead, "x")
	if m.health("b") != HealthDead {
		t.Fatal("two failures did not kill the peer")
	}
}

// TestFlapDampingRouteStability: at the Cluster level, a flapping peer
// must not flip Route decisions — once its owner is dead, a spec keeps
// routing to the same survivor through every up-blip until the owner
// has a full success streak.
func TestFlapDampingRouteStability(t *testing.T) {
	peers := []Peer{
		{ID: "a", URL: "http://a"},
		{ID: "b", URL: "http://b"},
		{ID: "c", URL: "http://c"},
	}
	c, err := New(Options{SelfID: "a", Peers: peers, DeadAfter: 1, AliveAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Find a key owned by a non-self peer.
	var key, owner string
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("%064d", i)
		if o := c.Ring().Owner(k); o != "a" {
			key, owner = k, o
			break
		}
	}
	if key == "" {
		t.Fatal("no key owned by a peer")
	}

	c.members.reportFailure(owner, fmt.Errorf("down"))
	first := c.Route(key)
	if len(first.Targets) > 0 && first.Targets[0].ID == owner {
		t.Fatal("dead owner still first target")
	}
	for i := 0; i < 5; i++ {
		c.members.reportSuccess(owner) // one blip...
		c.members.reportFailure(owner, fmt.Errorf("down"))
		rt := c.Route(key)
		if rt.Local != first.Local || len(rt.Targets) != len(first.Targets) {
			t.Fatalf("blip %d: route oscillated: %+v vs %+v", i, rt, first)
		}
		for j := range rt.Targets {
			if rt.Targets[j].ID != first.Targets[j].ID {
				t.Fatalf("blip %d: target order changed", i)
			}
		}
	}
}
