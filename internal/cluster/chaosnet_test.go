// Chaos-net: the partition-tolerance acceptance suite. Each test wires
// a deterministic netfault injector into every node's peer transport
// and asserts the cluster's invariants under network faults, for the
// fixed seed matrix {1, 7, 42}:
//
//   - an owner partitioned away mid-run cannot take its finished work
//     with it — a replica (or the fallback path) serves byte-identical
//     results;
//   - a corrupted peer response is rejected by digest verification and
//     never cached or relayed;
//   - a replica push lost to a partition is repaired by anti-entropy
//     within one sweep after the link heals.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/netfault"
)

// netTweak builds a startCluster tweak that wires the shared injector
// into each node's peer transport (keyed by the node's own id as src)
// and enables replication at factor 2.
func netTweak(t *testing.T, inj *netfault.Injector, more func(*cluster.Options)) func(*cluster.Options) {
	t.Helper()
	return func(o *cluster.Options) {
		hosts := make(map[string]string, len(o.Peers))
		for _, p := range o.Peers {
			u, err := url.Parse(p.URL)
			if err != nil {
				t.Fatal(err)
			}
			hosts[u.Host] = p.ID
		}
		self := o.SelfID
		o.Replicas = 2
		o.WrapTransport = func(rt http.RoundTripper) http.RoundTripper {
			return inj.Transport(self, netfault.HostResolver(hosts), rt)
		}
		if more != nil {
			more(o)
		}
	}
}

// waitCached polls until the node's result cache holds id.
func waitCached(t *testing.T, nd *node, id string, what string) *jobs.Result {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if res, ok := nd.pool.Cache().Get(id); ok {
			return res
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s: node %s never cached %.12s", what, nd.id, id)
	return nil
}

// allIDs lists every node id.
func allIDs(nodes []*node) []string {
	ids := make([]string, len(nodes))
	for i, nd := range nodes {
		ids[i] = nd.id
	}
	return ids
}

// TestChaosNetPartitionedOwnerReplicaServes: the tentpole scenario. The
// owner computes a result and replicates it; then the owner is
// partitioned away and the next replica holder refuses job traffic
// (torn POSTs). The entry node — last in rendezvous order — must still
// answer byte-identically to the serial reference, by fetching the
// finished result from the replica over GET /v1/results instead of
// recomputing: a partition cannot un-finish replicated work.
func TestChaosNetPartitionedOwnerReplicaServes(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			specs := clusterBatch(seed)
			ref := serialReference(t, specs)
			for _, spec := range specs {
				inj := netfault.New(netfault.Plan{Seed: seed})
				nodes := startCluster(t, 3, netTweak(t, inj, nil))
				rank := nodes[0].clu.Ring().Rank(spec.Hash())
				owner := byID(t, nodes, rank[0])
				replica := byID(t, nodes, rank[1])
				entry := byID(t, nodes, rank[2])

				// The owner computes and (asynchronously) replicates.
				res := submit(t, owner, spec)
				if got, want := normalizedJSON(t, res), ref[res.ID]; !bytes.Equal(got, want) {
					t.Fatalf("%s: owner result differs from serial reference", spec.Kind)
				}
				rres := waitCached(t, replica, res.ID, string(spec.Kind)+" replication")
				if got, want := normalizedJSON(t, rres), ref[res.ID]; !bytes.Equal(got, want) {
					t.Errorf("%s: replica copy differs from serial reference", spec.Kind)
				}

				// Partition the owner away; the replica holder stays
				// reachable but tears every job POST — so only the
				// replica-read path can avoid recomputing.
				inj.Isolate(owner.id, allIDs(nodes)...)
				replica.abortPosts.Store(true)

				res2 := submit(t, entry, spec)
				if got, want := normalizedJSON(t, res2), ref[res2.ID]; !bytes.Equal(got, want) {
					t.Errorf("%s: partitioned-owner result differs from serial reference\n got: %s\nwant: %s",
						spec.Kind, got, want)
				}
				if got := entry.clu.Metrics().Counters()["cluster_replica_hits"]; got < 1 {
					t.Errorf("%s: cluster_replica_hits = %d, want >= 1", spec.Kind, got)
				}
				if got := entry.pool.Metrics().JobsStarted.Load(); got != 0 {
					t.Errorf("%s: entry node started %d jobs, want 0 (replica read must avoid recompute)",
						spec.Kind, got)
				}
				if inj.Partitions.Load() < 1 {
					t.Errorf("%s: no partition faults fired", spec.Kind)
				}
			}
		})
	}
}

// TestChaosNetCorruptedResponseRejected: every response the owner sends
// is bit-corrupted in flight. Digest verification must convert each
// corruption into a transient peer failure — the entry node retries
// down the rendezvous order and still answers byte-identically — and no
// node's cache may ever hold bytes that differ from the reference.
func TestChaosNetCorruptedResponseRejected(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			specs := clusterBatch(seed)
			ref := serialReference(t, specs)
			for _, spec := range specs {
				// Resolve ownership with a throwaway ring: Match must name
				// the owner before the cluster exists.
				probe := startCluster(t, 3, nil)
				ownerID := probe[0].clu.Ring().Owner(spec.Hash())

				inj := netfault.New(netfault.Plan{
					Seed:        seed,
					CorruptRate: 1, // every response from the owner is corrupted
					Match:       "->" + ownerID + "/",
				})
				nodes := startCluster(t, 3, netTweak(t, inj, nil))
				owner := byID(t, nodes, ownerID)
				entry := otherThan(nodes, owner)

				res := submit(t, entry, spec)
				if got, want := normalizedJSON(t, res), ref[res.ID]; !bytes.Equal(got, want) {
					t.Errorf("%s: result served through corruption differs from serial reference\n got: %s\nwant: %s",
						spec.Kind, got, want)
				}
				if got := entry.clu.Metrics().Counters()["cluster_digest_rejected"]; got < 1 {
					t.Errorf("%s: cluster_digest_rejected = %d, want >= 1", spec.Kind, got)
				}
				if inj.Corruptions.Load() < 1 {
					t.Errorf("%s: no corruption faults fired", spec.Kind)
				}
				// The corrupted bytes must not have been cached anywhere:
				// every cached copy of this result is reference-identical.
				for _, nd := range nodes {
					if cached, ok := nd.pool.Cache().Get(res.ID); ok {
						if got := normalizedJSON(t, cached); !bytes.Equal(got, ref[res.ID]) {
							t.Errorf("%s: node %s cached a corrupted result", spec.Kind, nd.id)
						}
					}
				}
			}
		})
	}
}

// TestChaosNetAntiEntropyRepairs: the completion-time replica push is
// lost to a directed partition; after the link heals, the background
// anti-entropy loop must converge the replica within one interval
// (counted in cluster_antientropy_repaired), after which the replica
// serves the result from cache even with the owner fully partitioned.
func TestChaosNetAntiEntropyRepairs(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			spec := clusterBatch(seed)[0]
			ref := serialReference(t, []jobs.Spec{spec})

			inj := netfault.New(netfault.Plan{Seed: seed})
			const aeInterval = 25 * time.Millisecond
			nodes := startCluster(t, 3, netTweak(t, inj, func(o *cluster.Options) {
				o.AntiEntropyInterval = aeInterval
			}))
			rank := nodes[0].clu.Ring().Rank(spec.Hash())
			owner := byID(t, nodes, rank[0])
			replica := byID(t, nodes, rank[1])
			entry := byID(t, nodes, rank[2])

			// Cut owner->replica before the job runs: the completion-time
			// push fails, the result exists only on the owner. The async
			// push is the only owner->replica traffic, so the injector's
			// partition counter observing >= 1 proves it fired and died —
			// only then is healing safe (healing earlier would let a slow
			// push goroutine replicate through the healed link and leave
			// anti-entropy nothing to repair).
			inj.Partition(owner.id, replica.id)
			res := submit(t, owner, spec)
			pushDeadline := time.Now().Add(5 * time.Second)
			for inj.Partitions.Load() == 0 && time.Now().Before(pushDeadline) {
				time.Sleep(2 * time.Millisecond)
			}
			if inj.Partitions.Load() == 0 {
				t.Fatal("completion-time push never hit the cut link")
			}
			if _, ok := replica.pool.Cache().Get(res.ID); ok {
				t.Fatal("replica received the push through a cut link")
			}

			// Heal and start the owner's background loops; one sweep must
			// repair the replica.
			inj.Heal(owner.id, replica.id)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			owner.clu.Start(ctx)
			waitCached(t, replica, res.ID, "anti-entropy repair")
			// The replica's cache fills inside the PUT handler, before the
			// owner's push sees the 201 — poll the sender-side counter.
			repairDeadline := time.Now().Add(5 * time.Second)
			for owner.clu.Metrics().Counters()["cluster_antientropy_repaired"] == 0 &&
				time.Now().Before(repairDeadline) {
				time.Sleep(2 * time.Millisecond)
			}
			if got := owner.clu.Metrics().Counters()["cluster_antientropy_repaired"]; got < 1 {
				t.Errorf("cluster_antientropy_repaired = %d, want >= 1", got)
			}

			// With the owner now fully partitioned, the repaired replica
			// carries the slice: the entry node forwards to it and gets the
			// cached, reference-identical result.
			inj.Isolate(owner.id, allIDs(nodes)...)
			res2 := submit(t, entry, spec)
			if got, want := normalizedJSON(t, res2), ref[res2.ID]; !bytes.Equal(got, want) {
				t.Errorf("post-repair result differs from serial reference\n got: %s\nwant: %s", got, want)
			}
			if res2.ID != res.ID {
				t.Errorf("ids differ: %s vs %s", res.ID, res2.ID)
			}
		})
	}
}

// TestHedgeLoserCanceled: the moment a hedge race has a winner, the
// losing leg's request must be canceled — observed here as the slow
// owner's handler seeing its context die long before its injected delay
// elapses, instead of sleeping out the full 10s holding a worker.
func TestHedgeLoserCanceled(t *testing.T) {
	nodes := startCluster(t, 3, func(o *cluster.Options) {
		o.HedgeAfter = 10 * time.Millisecond
	})
	spec := clusterBatch(13)[0]
	owner := byID(t, nodes, nodes[0].clu.Ring().Owner(spec.Hash()))
	entry := otherThan(nodes, owner)
	owner.delayPosts.Store(int64(10 * time.Second))

	start := time.Now()
	res := submit(t, entry, spec)
	if res.ID != spec.Hash() {
		t.Fatalf("wrong result id %.12s", res.ID)
	}

	// The losing leg must be canceled promptly after the winner returns,
	// not when the 10s delay expires.
	deadline := time.Now().Add(2 * time.Second)
	for owner.abortedDelays.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if owner.abortedDelays.Load() == 0 {
		t.Fatal("losing hedge leg was never canceled")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, delay is 10s — loser ran to completion", elapsed)
	}
	if got := entry.clu.Metrics().Counters()["cluster_hedged"]; got < 1 {
		t.Errorf("cluster_hedged = %d, want >= 1", got)
	}
}

// TestDeadlineSuppressesHedging: a propagated deadline smaller than the
// hedge threshold disables hedging for the request — a hedge that
// cannot answer before the caller's deadline is pure load — counted in
// cluster_hedges_suppressed.
func TestDeadlineSuppressesHedging(t *testing.T) {
	nodes := startCluster(t, 3, func(o *cluster.Options) {
		o.HedgeAfter = 2 * time.Second
	})
	spec := clusterBatch(17)[0]
	owner := byID(t, nodes, nodes[0].clu.Ring().Owner(spec.Hash()))
	entry := otherThan(nodes, owner)

	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, entry.srv.URL+"/v1/evaluate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.DeadlineHeader, time.Now().Add(1*time.Second).UTC().Format(time.RFC3339Nano))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (deadline has room for the job, just not for a hedge)", resp.StatusCode)
	}
	c := entry.clu.Metrics().Counters()
	if c["cluster_hedges_suppressed"] < 1 {
		t.Errorf("cluster_hedges_suppressed = %d, want >= 1", c["cluster_hedges_suppressed"])
	}
	if c["cluster_hedged"] != 0 {
		t.Errorf("cluster_hedged = %d, want 0 (hedging was suppressed)", c["cluster_hedged"])
	}
}
