package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/gossip"
)

// GossipPath is the membership exchange endpoint. Every message is a
// push-pull of full views: the sender POSTs its records, the receiver
// merges them and answers with its own, so one round-trip converges
// both sides and join/leave/drain announcements ride the same channel
// as failure detection.
const GossipPath = "/v1/gossip"

// maxGossipBody bounds one gossip message (a full view of a large
// cluster is a few KiB; 1 MiB leaves two orders of magnitude of room).
const maxGossipBody = 1 << 20

// GossipMsg is the POST /v1/gossip request body.
type GossipMsg struct {
	// From names the sender, whose own record travels in Records.
	From string `json:"from"`
	// Records is the sender's full membership view.
	Records []gossip.Member `json:"records"`
	// PingReq, when set, asks the receiver to probe the named member on
	// the sender's behalf — SWIM's indirect probe, which keeps one
	// broken link from condemning a healthy node.
	PingReq *PingReq `json:"ping_req,omitempty"`
}

// PingReq names the target of an indirect probe.
type PingReq struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// GossipAck is the POST /v1/gossip response body.
type GossipAck struct {
	From    string          `json:"from"`
	Records []gossip.Member `json:"records"`
	// PingReqOK reports that the requested indirect probe reached its
	// target.
	PingReqOK bool `json:"ping_req_ok,omitempty"`
}

// gossipRunner drives the internal/gossip state machine over HTTP: the
// periodic probe/ping-req loop, the join announcement, ring rebuilds
// when the view's ring generation moves, and the handoff sweeps that
// migrate results to their new owners.
type gossipRunner struct {
	c        *Cluster
	view     *gossip.View
	interval time.Duration
	timeout  time.Duration
	seeds    []Peer // boot contacts, self excluded

	// mu serializes ring rebuilds and the view→metrics stat sync.
	mu        sync.Mutex
	lastGen   uint64
	lastRefut uint64
	lastSusp  uint64

	// sweepCh single-flights background handoff sweeps: a rebuild that
	// happens mid-sweep queues exactly one follow-up.
	sweepCh   chan struct{}
	cancel    context.CancelFunc
	done      chan struct{}
	sweepDone chan struct{}
}

func newGossipRunner(c *Cluster, opt Options, seeds []Peer) (*gossipRunner, error) {
	g := &gossipRunner{
		c:        c,
		interval: opt.Gossip.Interval,
		timeout:  opt.Gossip.ProbeTimeout,
		sweepCh:  make(chan struct{}, 1),
	}
	if g.interval <= 0 {
		g.interval = 250 * time.Millisecond
	}
	if g.timeout <= 0 {
		g.timeout = time.Second
	}
	for _, p := range seeds {
		if p.ID != opt.SelfID {
			g.seeds = append(g.seeds, p)
		}
	}
	view, err := gossip.NewView(gossip.Config{
		SelfID:        opt.SelfID,
		SelfURL:       strings.TrimRight(opt.Gossip.SelfURL, "/"),
		Weight:        opt.Gossip.Weight,
		Seed:          opt.Gossip.Seed,
		SuspectRounds: opt.Gossip.SuspectRounds,
		PingReqFanout: opt.Gossip.PingReqFanout,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	g.view = view
	g.lastGen = view.Gen()
	return g, nil
}

// routable reports whether the view allows routing to id.
func (g *gossipRunner) routable(id string) bool {
	st, ok := g.view.State(id)
	return ok && st.Routable()
}

// draining reports whether this node has announced a drain.
func (g *gossipRunner) draining() bool {
	return g.view.Self().State == gossip.StateDraining
}

// start launches the protocol loop: an immediate join announcement to
// every seed contact, then one probe round per interval.
func (g *gossipRunner) start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	g.cancel = cancel
	g.done = make(chan struct{})
	g.sweepDone = make(chan struct{})
	go g.sweepLoop(ctx)
	go func() {
		defer close(g.done)
		g.join(ctx)
		t := time.NewTicker(g.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				g.round(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
}

// stop ends the loops and waits for them to exit.
func (g *gossipRunner) stop() {
	if g.cancel == nil {
		return
	}
	g.cancel()
	<-g.done
	<-g.sweepDone
}

// join announces this node to every seed contact. Best effort: one
// reachable seed is enough (its merged view disseminates from there),
// and zero reachable seeds just means this node starts a cluster of one
// that others will join.
func (g *gossipRunner) join(ctx context.Context) {
	for _, p := range g.seeds {
		jctx, cancel := context.WithTimeout(ctx, g.timeout)
		_, err := g.exchange(jctx, p.URL, nil)
		cancel()
		_ = err // unreachable seed: the periodic loop keeps trying via merged members
	}
	g.syncStats()
	g.maybeRebuild()
}

// round runs one protocol round: probe the next target in the seeded
// scan order, fall back to indirect ping-req probes through up to
// fanout proxies, and suspect the target when both fail.
func (g *gossipRunner) round(ctx context.Context) {
	_, target, ok := g.view.BeginRound()
	g.c.metrics.GossipRounds.Add(1)
	if ok {
		pctx, cancel := context.WithTimeout(ctx, g.timeout)
		_, err := g.exchange(pctx, target.URL, nil)
		cancel()
		if err != nil {
			acked := false
			for _, proxy := range g.view.PingReqProxies(target.ID) {
				ictx, icancel := context.WithTimeout(ctx, g.timeout)
				ack, ierr := g.exchange(ictx, proxy.URL, &PingReq{ID: target.ID, URL: target.URL})
				icancel()
				if ierr == nil && ack.PingReqOK {
					acked = true
					g.view.ObserveAlive(target.ID)
					break
				}
			}
			if !acked {
				g.view.ObserveFailure(target.ID)
			}
		}
	}
	g.syncStats()
	g.maybeRebuild()
}

// exchange POSTs this node's view to url and merges the answer.
func (g *gossipRunner) exchange(ctx context.Context, url string, pr *PingReq) (GossipAck, error) {
	msg := GossipMsg{From: g.c.self, Records: g.view.Records(), PingReq: pr}
	body, err := json.Marshal(msg)
	if err != nil {
		return GossipAck{}, fmt.Errorf("cluster: marshal gossip: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(url, "/")+GossipPath, bytes.NewReader(body))
	if err != nil {
		return GossipAck{}, peerUnavailable(url, 0, err.Error())
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.c.hc.Do(req)
	if err != nil {
		return GossipAck{}, peerUnavailable(url, 0, err.Error())
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxGossipBody))
	if err != nil {
		return GossipAck{}, peerUnavailable(url, 0, "reading gossip ack: "+err.Error())
	}
	if resp.StatusCode != http.StatusOK {
		return GossipAck{}, peerUnavailable(url, resp.StatusCode, "gossip rejected")
	}
	var ack GossipAck
	if err := json.Unmarshal(raw, &ack); err != nil {
		return GossipAck{}, peerUnavailable(url, resp.StatusCode, "undecodable gossip ack: "+err.Error())
	}
	g.view.Merge(ack.Records)
	if ack.From != "" {
		g.view.ObserveAlive(ack.From)
	}
	return ack, nil
}

// handle answers one incoming exchange: merge the sender's records,
// run a requested indirect probe, reply with our view.
func (g *gossipRunner) handle(ctx context.Context, msg GossipMsg) GossipAck {
	g.view.Merge(msg.Records)
	if msg.From != "" {
		g.view.ObserveAlive(msg.From)
	}
	ack := GossipAck{From: g.c.self, Records: g.view.Records()}
	if pr := msg.PingReq; pr != nil && pr.ID != g.c.self && pr.URL != "" {
		pctx, cancel := context.WithTimeout(ctx, g.timeout)
		_, err := g.exchange(pctx, pr.URL, nil)
		cancel()
		if err == nil {
			g.view.ObserveAlive(pr.ID)
			ack.PingReqOK = true
			ack.Records = g.view.Records()
		}
	}
	g.syncStats()
	g.maybeRebuild()
	return ack
}

// syncStats mirrors the view's refutation/suspicion counts into the
// cluster metrics.
func (g *gossipRunner) syncStats() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if r := g.view.Refutations(); r > g.lastRefut {
		g.c.metrics.Refutations.Add(int64(r - g.lastRefut))
		g.lastRefut = r
	}
	if s := g.view.Suspected(); s > g.lastSusp {
		g.c.metrics.Suspected.Add(int64(s - g.lastSusp))
		g.lastSusp = s
	}
}

// maybeRebuild swaps in a new ring when the view's ring-eligible set
// changed since the last build, then queues a handoff sweep — results
// this node holds may have new homes under the new ranking.
func (g *gossipRunner) maybeRebuild() {
	g.mu.Lock()
	gen := g.view.Gen()
	if gen == g.lastGen {
		g.mu.Unlock()
		return
	}
	g.lastGen = gen
	members := g.view.RingMembers()
	peers := make([]Peer, 0, len(members))
	byID := make(map[string]Peer, len(members))
	for _, m := range members {
		p := Peer{ID: m.ID, URL: strings.TrimRight(m.URL, "/"), Weight: m.Weight}
		peers = append(peers, p)
		byID[p.ID] = p
	}
	// A draining singleton yields an empty ring; Route's empty-rank
	// guard keeps the node answering locally.
	g.c.view.Store(&ringView{ring: NewRing(peers, g.c.vnodes), peers: byID})
	g.mu.Unlock()
	g.triggerSweep()
}

// triggerSweep queues a background handoff sweep (single-flight).
func (g *gossipRunner) triggerSweep() {
	select {
	case g.sweepCh <- struct{}{}:
	default:
	}
}

// sweepLoop runs queued handoff sweeps until ctx ends.
func (g *gossipRunner) sweepLoop(ctx context.Context) {
	defer close(g.sweepDone)
	for {
		select {
		case <-ctx.Done():
			return
		case <-g.sweepCh:
			g.handoffSweep(ctx)
		}
	}
}

// handoffSweep re-offers every result this node holds to that result's
// current rightful holders (the first max(replicas,1) nodes in its
// rendezvous order under the live ring, self excluded). Receivers dedup
// — 201 means the result was actually missing at its new home and is
// counted as a migration; an unreachable or rejecting target counts as
// unplaced so a drain can retry until clean.
func (g *gossipRunner) handoffSweep(ctx context.Context) (migrated, unplaced int) {
	c := g.c
	if c.results == nil {
		return 0, 0
	}
	for _, id := range c.results.Keys() {
		if ctx.Err() != nil {
			return migrated, unplaced
		}
		res, ok := c.results.Get(id)
		if !ok {
			continue
		}
		for _, p := range c.handoffTargets(id) {
			if !g.routable(p.ID) {
				unplaced++
				continue
			}
			created, err := c.pushResult(ctx, p, res)
			if err != nil {
				c.metrics.HandoffFailed.Add(1)
				unplaced++
				continue
			}
			if created {
				c.metrics.HandoffMigrated.Add(1)
				migrated++
			}
		}
	}
	return migrated, unplaced
}

// drain announces the drain, re-ranks the ring without this node, and
// migrates every held result to its new home, retrying until a full
// sweep places everything or ctx expires.
func (g *gossipRunner) drain(ctx context.Context) (int, error) {
	g.view.Drain()
	g.syncStats()
	g.maybeRebuild()
	g.announce(ctx)
	total := 0
	// One ticker for the whole retry loop: time.After here would leak a
	// timer per failed sweep until each fired.
	retry := time.NewTicker(g.interval)
	defer retry.Stop()
	for {
		migrated, unplaced := g.handoffSweep(ctx)
		total += migrated
		if unplaced == 0 {
			return total, nil
		}
		select {
		case <-ctx.Done():
			return total, fmt.Errorf("cluster: drain handoff incomplete, %d replica pushes unplaced: %w", unplaced, ctx.Err())
		case <-retry.C:
		}
	}
}

// announce pushes this node's view to every routable member — how a
// drain or leave reaches the whole cluster faster than probe-order
// dissemination would.
func (g *gossipRunner) announce(ctx context.Context) {
	for _, m := range g.view.Records() {
		if m.ID == g.c.self || !m.State.Routable() {
			continue
		}
		actx, cancel := context.WithTimeout(ctx, g.timeout)
		_, err := g.exchange(actx, m.URL, nil)
		cancel()
		_ = err // unreachable members learn the announcement by gossip
	}
}

// leave announces clean departure.
func (g *gossipRunner) leave(ctx context.Context) {
	g.view.Leave()
	g.syncStats()
	g.maybeRebuild()
	g.announce(ctx)
}

// HandleGossip folds one incoming POST /v1/gossip exchange into the
// membership view and returns the ack to send back. It is the serve
// layer's entry point; calling it on a static-membership node is a
// config error the handler maps to 404.
func (c *Cluster) HandleGossip(ctx context.Context, msg GossipMsg) (GossipAck, error) {
	if c.gossip == nil {
		return GossipAck{}, fmt.Errorf("%w: gossip membership disabled on this node", ErrConfig)
	}
	return c.gossip.handle(ctx, msg), nil
}

// Drain announces that this node is leaving the ring, migrates every
// held result to its new home, and returns the number of replicas
// actually created elsewhere. The node keeps serving (and finishing
// in-flight work) throughout — drain changes ownership, not liveness.
// An error means the handoff could not complete before ctx expired;
// results already replicated elsewhere are still safe, and anti-entropy
// on the survivors converges the rest.
func (c *Cluster) Drain(ctx context.Context) (int, error) {
	if c.gossip == nil {
		return 0, fmt.Errorf("%w: drain requires gossip membership", ErrConfig)
	}
	return c.gossip.drain(ctx)
}

// Draining reports whether this node has announced a drain.
func (c *Cluster) Draining() bool {
	return c.gossip != nil && c.gossip.draining()
}

// Leave announces clean departure to the cluster (best effort). Call
// after the final handoff, immediately before process exit.
func (c *Cluster) Leave(ctx context.Context) {
	if c.gossip != nil {
		c.gossip.leave(ctx)
	}
}

// HandoffNow runs one synchronous handoff sweep and returns the number
// of results newly placed elsewhere. The shutdown path calls it after
// the HTTP server has quiesced so results completed during the drain
// window migrate too.
func (c *Cluster) HandoffNow(ctx context.Context) int {
	if c.gossip == nil {
		return 0
	}
	migrated, _ := c.gossip.handoffSweep(ctx)
	return migrated
}
