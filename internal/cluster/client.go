package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/jobs"
)

// maxPeerResponse bounds a forwarded response body (a full ladder
// result is well under 1 MiB; 8 MiB leaves room without letting a
// misbehaving peer balloon memory).
const maxPeerResponse = 8 << 20

// DigestHeader carries the SHA-256 of the exact response body bytes.
// The forwarding node recomputes the hash before caching or relaying a
// peer response; a mismatch means the wire (or the peer) corrupted the
// payload, and the response is discarded as a transient peer failure
// instead of being served as a wrong answer.
const DigestHeader = "X-Gapd-Result-Digest"

// DeadlineHeader carries the caller's absolute deadline (RFC3339Nano)
// across a forward hop. Each hop shrinks it by the configured margin
// before re-forwarding, and the receiving node enforces it at admission
// — so a forwarded job can never outlive the client that asked for it.
const DeadlineHeader = "X-Gapd-Deadline"

// ErrCorruptReply marks a peer response rejected by integrity checking:
// body bytes that do not hash to the carried digest, or a payload whose
// content address is not the one the forwarder asked for. It wraps
// jobs.ErrPeerUnavailable, so corruption is handled exactly like an
// unreachable peer — retry the next node in rendezvous order — never
// cached, never relayed.
var ErrCorruptReply = fmt.Errorf("cluster: corrupt peer reply: %w", jobs.ErrPeerUnavailable)

// PeerError is a failed peer request, carrying the peer, the HTTP
// status (0 for transport failures), and a wrapped marker from the
// jobs failure taxonomy so callers can errors.Is their way to a verdict:
// jobs.ErrSpec means the peer ran the job and the job itself is invalid
// (relay, do not retry elsewhere — determinism makes the verdict exact
// on every node); jobs.ErrPeerUnavailable means the peer could not
// answer (try the next node in rendezvous order, or compute locally).
type PeerError struct {
	Peer   string
	Status int
	Msg    string
	err    error
}

func (e *PeerError) Error() string {
	if e.Status == 0 {
		return fmt.Sprintf("cluster: peer %s: %s", e.Peer, e.Msg)
	}
	return fmt.Sprintf("cluster: peer %s answered %d: %s", e.Peer, e.Status, e.Msg)
}

func (e *PeerError) Unwrap() error { return e.err }

// peerUnavailable builds the availability-class PeerError.
func peerUnavailable(peer string, status int, msg string) *PeerError {
	return &PeerError{Peer: peer, Status: status, Msg: msg, err: jobs.ErrPeerUnavailable}
}

// bodyDigest is the hex SHA-256 the digest header carries.
func bodyDigest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// decodePeerResponse turns one peer reply (status, digest header, raw
// body) into a result or a taxonomy-classified error. It is a pure
// function of its inputs — the fuzz target FuzzPeerResponseDecode
// drives it directly. Verification order: the digest first (nothing
// from a corrupt body is trusted, not even its error envelope), then
// the status-code mapping, then the payload's content address against
// expectID (when non-empty), so a confused peer cannot answer with the
// wrong job's result.
func decodePeerResponse(peer string, status int, digest string, body []byte, expectID string) (*jobs.Result, error) {
	if digest != "" && bodyDigest(body) != digest {
		return nil, &PeerError{Peer: peer, Status: status,
			Msg: "response bytes do not match their digest", err: ErrCorruptReply}
	}
	if status != http.StatusOK {
		msg := http.StatusText(status)
		var envelope struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &envelope) == nil && envelope.Error != "" {
			msg = envelope.Error
		}
		if status == http.StatusBadRequest {
			// The peer ran the spec and rejected it; every node would —
			// evaluation is deterministic — so the verdict is terminal.
			return nil, &PeerError{Peer: peer, Status: status, Msg: msg, err: jobs.ErrSpec}
		}
		// 429 (peer shedding), 5xx (peer breaker open, internal error,
		// peer-side timeout): the peer cannot answer this request now.
		// Availability beats affinity — the caller moves down the
		// rendezvous order or computes locally.
		return nil, peerUnavailable(peer, status, msg)
	}
	var res jobs.Result
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, &PeerError{Peer: peer, Status: status,
			Msg: "undecodable response: " + err.Error(), err: ErrCorruptReply}
	}
	if expectID != "" && res.ID != expectID {
		return nil, &PeerError{Peer: peer, Status: status,
			Msg: fmt.Sprintf("response is for %.12s, asked for %.12s", res.ID, expectID),
			err: ErrCorruptReply}
	}
	return &res, nil
}

// setDeadlineHeader stamps ctx's deadline, shrunk by the per-hop
// margin, onto the outgoing request. The shrink reserves budget for
// this hop's own marshalling and wire time, so the downstream node's
// view of "time left" is never more optimistic than the caller's.
func (c *Cluster) setDeadlineHeader(ctx context.Context, req *http.Request) {
	dl, ok := ctx.Deadline()
	if !ok {
		return
	}
	req.Header.Set(DeadlineHeader, dl.Add(-c.deadlineMargin).UTC().Format(time.RFC3339Nano))
}

// doRequest proxies one spec to one peer and maps the outcome onto the
// jobs error taxonomy, verifying the response digest and content
// address before trusting the payload.
func (c *Cluster) doRequest(ctx context.Context, p Peer, path string, body []byte, expectID string) (*jobs.Result, error) {
	rctx, cancel := context.WithTimeout(ctx, c.reqTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, p.URL+path, bytes.NewReader(body))
	if err != nil {
		return nil, peerUnavailable(p.ID, 0, err.Error())
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, c.self)
	c.setDeadlineHeader(rctx, req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, peerUnavailable(p.ID, 0, err.Error())
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponse))
	if err != nil {
		return nil, peerUnavailable(p.ID, 0, "reading response: "+err.Error())
	}
	res, derr := decodePeerResponse(p.ID, resp.StatusCode, resp.Header.Get(DigestHeader), raw, expectID)
	if errors.Is(derr, ErrCorruptReply) {
		c.metrics.DigestRejected.Add(1)
	}
	return res, derr
}

// Forward proxies the spec to the route's targets with hedged reads:
// the acting owner is asked first; if it sits unanswered past
// HedgeAfter, the next node in rendezvous order is raced against it and
// the first success wins — exact, because evaluation is deterministic
// and content-addressed, so any node computes byte-identical results.
// The moment a winner returns, every outstanding leg's context is
// canceled, so losing hedges release their peer-client pool slots
// immediately instead of running to completion. A target that fails
// with an availability error is replaced by the next one immediately
// (no hedge wait). Terminal verdicts (the peer ran the job and the spec
// itself is bad) are returned as-is. When the request's remaining
// deadline budget is smaller than the hedge threshold, hedging is
// disabled for the request — a hedge that cannot finish before the
// caller's deadline is pure load. When every target is unavailable, the
// first availability error is returned wrapping jobs.ErrPeerUnavailable
// — the caller's cue to compute locally.
func (c *Cluster) Forward(ctx context.Context, path string, spec jobs.Spec, rt Route) (*jobs.Result, error) {
	if len(rt.Targets) == 0 {
		return nil, peerUnavailable(rt.Owner, 0, "no usable peer")
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal spec: %w", err)
	}
	expectID := spec.Hash()
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel() // the winner cancels every straggler

	type attempt struct {
		peer Peer
		res  *jobs.Result
		err  error
	}
	out := make(chan attempt, len(rt.Targets))
	next := 0
	launch := func() {
		p := rt.Targets[next]
		next++
		go func() {
			res, err := c.doRequest(raceCtx, p, path, body, expectID)
			out <- attempt{p, res, err}
		}()
	}
	launch()

	hedge := time.NewTimer(c.hedgeDelay(ctx))
	defer hedge.Stop()
	outstanding := 1
	var firstErr error
	for {
		select {
		case a := <-out:
			outstanding--
			if a.err == nil {
				// Cancel the losing legs before anything else: a hedge
				// that lost the race must stop consuming a peer's worker
				// and this node's connection-pool slot right now, not
				// when the caller eventually returns.
				cancel()
				c.reportSuccess(a.peer.ID)
				return a.res, nil
			}
			if errors.Is(a.err, jobs.ErrSpec) {
				cancel()
				return nil, a.err
			}
			if raceCtx.Err() == nil {
				// A real peer failure, not a canceled straggler.
				c.reportFailure(a.peer.ID, a.err)
				c.metrics.ForwardErrors.Add(1)
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if next < len(rt.Targets) {
				launch()
				outstanding++
			} else if outstanding == 0 {
				return nil, firstErr
			}
		case <-hedge.C:
			if next < len(rt.Targets) {
				c.metrics.Hedged.Add(1)
				launch()
				outstanding++
				hedge.Reset(c.hedgeDelay(ctx))
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// neverHedge is the effective threshold when hedging is off for a
// request: far enough out that the timer cannot fire.
const neverHedge = 365 * 24 * time.Hour

// hedgeDelay returns the hedge threshold for one request: the
// configured HedgeAfter, except when hedging is disabled outright
// (negative HedgeAfter) or the request's remaining deadline budget is
// already smaller than the threshold — a hedge launched then could
// never answer before the caller's deadline, so it is suppressed (and
// counted).
func (c *Cluster) hedgeDelay(ctx context.Context) time.Duration {
	if c.hedgeAfter < 0 {
		return neverHedge
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < c.hedgeAfter {
		c.metrics.HedgesSuppressed.Add(1)
		return neverHedge
	}
	return c.hedgeAfter
}
