package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/jobs"
)

// maxPeerResponse bounds a forwarded response body (a full ladder
// result is well under 1 MiB; 8 MiB leaves room without letting a
// misbehaving peer balloon memory).
const maxPeerResponse = 8 << 20

// PeerError is a failed peer request, carrying the peer, the HTTP
// status (0 for transport failures), and a wrapped marker from the
// jobs failure taxonomy so callers can errors.Is their way to a verdict:
// jobs.ErrSpec means the peer ran the job and the job itself is invalid
// (relay, do not retry elsewhere — determinism makes the verdict exact
// on every node); jobs.ErrPeerUnavailable means the peer could not
// answer (try the next node in rendezvous order, or compute locally).
type PeerError struct {
	Peer   string
	Status int
	Msg    string
	err    error
}

func (e *PeerError) Error() string {
	if e.Status == 0 {
		return fmt.Sprintf("cluster: peer %s: %s", e.Peer, e.Msg)
	}
	return fmt.Sprintf("cluster: peer %s answered %d: %s", e.Peer, e.Status, e.Msg)
}

func (e *PeerError) Unwrap() error { return e.err }

// peerUnavailable builds the availability-class PeerError.
func peerUnavailable(peer string, status int, msg string) *PeerError {
	return &PeerError{Peer: peer, Status: status, Msg: msg, err: jobs.ErrPeerUnavailable}
}

// doRequest proxies one spec to one peer and maps the outcome onto the
// jobs error taxonomy.
func (c *Cluster) doRequest(ctx context.Context, p Peer, path string, body []byte) (*jobs.Result, error) {
	rctx, cancel := context.WithTimeout(ctx, c.reqTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, p.URL+path, bytes.NewReader(body))
	if err != nil {
		return nil, peerUnavailable(p.ID, 0, err.Error())
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, c.self)
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, peerUnavailable(p.ID, 0, err.Error())
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponse))
	if err != nil {
		return nil, peerUnavailable(p.ID, 0, "reading response: "+err.Error())
	}
	if resp.StatusCode != http.StatusOK {
		msg := resp.Status
		var envelope struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
			msg = envelope.Error
		}
		if resp.StatusCode == http.StatusBadRequest {
			// The peer ran the spec and rejected it; every node would —
			// evaluation is deterministic — so the verdict is terminal.
			return nil, &PeerError{Peer: p.ID, Status: resp.StatusCode, Msg: msg, err: jobs.ErrSpec}
		}
		// 429 (peer shedding), 5xx (peer breaker open, internal error,
		// peer-side timeout): the peer cannot answer this request now.
		// Availability beats affinity — the caller moves down the
		// rendezvous order or computes locally.
		return nil, peerUnavailable(p.ID, resp.StatusCode, msg)
	}
	var res jobs.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, peerUnavailable(p.ID, resp.StatusCode, "undecodable response: "+err.Error())
	}
	return &res, nil
}

// Forward proxies the spec to the route's targets with hedged reads:
// the acting owner is asked first; if it sits unanswered past
// HedgeAfter, the next node in rendezvous order is raced against it and
// the first success wins — exact, because evaluation is deterministic
// and content-addressed, so any node computes byte-identical results.
// A target that fails with an availability error is replaced by the
// next one immediately (no hedge wait). Terminal verdicts (the peer ran
// the job and the spec itself is bad) are returned as-is. When every
// target is unavailable, the first availability error is returned
// wrapping jobs.ErrPeerUnavailable — the caller's cue to compute
// locally.
func (c *Cluster) Forward(ctx context.Context, path string, spec jobs.Spec, rt Route) (*jobs.Result, error) {
	if len(rt.Targets) == 0 {
		return nil, peerUnavailable(rt.Owner, 0, "no usable peer")
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal spec: %w", err)
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel() // the winner cancels every straggler

	type attempt struct {
		peer Peer
		res  *jobs.Result
		err  error
	}
	out := make(chan attempt, len(rt.Targets))
	next := 0
	launch := func() {
		p := rt.Targets[next]
		next++
		go func() {
			res, err := c.doRequest(raceCtx, p, path, body)
			out <- attempt{p, res, err}
		}()
	}
	launch()

	hedge := time.NewTimer(c.hedgeDelay())
	defer hedge.Stop()
	outstanding := 1
	var firstErr error
	for {
		select {
		case a := <-out:
			outstanding--
			if a.err == nil {
				c.members.reportSuccess(a.peer.ID)
				return a.res, nil
			}
			if errors.Is(a.err, jobs.ErrSpec) {
				return nil, a.err
			}
			if raceCtx.Err() == nil {
				// A real peer failure, not a canceled straggler.
				c.members.reportFailure(a.peer.ID, a.err)
				c.metrics.ForwardErrors.Add(1)
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if next < len(rt.Targets) {
				launch()
				outstanding++
			} else if outstanding == 0 {
				return nil, firstErr
			}
		case <-hedge.C:
			if next < len(rt.Targets) {
				c.metrics.Hedged.Add(1)
				launch()
				outstanding++
				hedge.Reset(c.hedgeDelay())
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// hedgeDelay returns the hedge threshold, with hedging effectively
// disabled by a negative HedgeAfter.
func (c *Cluster) hedgeDelay() time.Duration {
	if c.hedgeAfter < 0 {
		return 365 * 24 * time.Hour
	}
	return c.hedgeAfter
}
