// Rolling-restart and dynamic-membership chaos suite. Where
// cluster_test.go drives static clusters through owner-kill and
// slow-owner chaos, this file drives gossip-mode clusters through the
// full membership lifecycle — join, suspicion, refutation, drain,
// departure, rejoin — and asserts the headline invariant of dynamic
// membership: a rolling restart of every node in the cluster loses
// zero completed results, answers stay byte-identical to the serial
// reference, and handed-off addresses are never recomputed (the
// JobsStarted total across every pool incarnation is the oracle).
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/gossip"
	"repro/internal/jobs"
	"repro/internal/loadgen"
	"repro/internal/netfault"
	"repro/internal/serve"
)

// gossipSeedFor derives a per-node protocol seed from the node ID:
// every node shuffles its probe order differently but reproducibly.
func gossipSeedFor(id string) int64 { return int64(id[0]) }

// newGossipNode allocates a node shell and its listener. The URL must
// exist before any cluster references it (as a seed contact or a
// netfault host-table entry), so shell creation is split from boot.
func newGossipNode(t testing.TB, id string) *node {
	t.Helper()
	nd := &node{id: id}
	nd.inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "booting", http.StatusServiceUnavailable)
	})
	nd.srv = httptest.NewServer(nd)
	t.Cleanup(nd.srv.Close)
	return nd
}

// bootGossipNode builds the pool, gossip-mode cluster, and serve
// handler for a shell and starts the protocol loop. seeds are the join
// contacts (self entries are filtered by the cluster). The gossip
// interval is short (15ms) so membership converges in test time.
func bootGossipNode(t testing.TB, nd *node, seeds []cluster.Peer, popt jobs.Options, tweak func(*cluster.Options)) {
	t.Helper()
	if popt.Workers == 0 {
		popt.Workers = 2
	}
	nd.pool = jobs.NewPool(popt)
	opt := cluster.Options{
		SelfID:         nd.id,
		Peers:          seeds,
		HedgeAfter:     -1,
		RequestTimeout: 30 * time.Second,
		Replicas:       2,
		Results:        nd.pool.Cache(),
		Gossip: &cluster.GossipOptions{
			SelfURL:      nd.srv.URL,
			Seed:         gossipSeedFor(nd.id),
			Interval:     15 * time.Millisecond,
			ProbeTimeout: 500 * time.Millisecond,
		},
	}
	if tweak != nil {
		tweak(&opt)
	}
	clu, err := cluster.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(clu.Close)
	nd.clu = clu
	h := serve.NewHandler(serve.Options{Pool: nd.pool, Cluster: clu})
	nd.mu.Lock()
	nd.inner = h
	nd.mu.Unlock()
	clu.Start(context.Background())
}

// startGossipCluster boots len(ids) nodes that all seed off each other.
func startGossipCluster(t testing.TB, ids []string, tweak func(id string, o *cluster.Options)) []*node {
	t.Helper()
	nodes := make([]*node, len(ids))
	seeds := make([]cluster.Peer, len(ids))
	for i, id := range ids {
		nodes[i] = newGossipNode(t, id)
		seeds[i] = cluster.Peer{ID: id, URL: nodes[i].srv.URL}
	}
	for _, nd := range nodes {
		var tw func(*cluster.Options)
		if tweak != nil {
			id := nd.id
			tw = func(o *cluster.Options) { tweak(id, o) }
		}
		bootGossipNode(t, nd, seeds, jobs.Options{}, tw)
	}
	return nodes
}

// aliveSet returns the sorted IDs a node's view holds as alive.
func aliveSet(nd *node) []string {
	var ids []string
	for _, m := range nd.clu.Status().Members {
		if m.State == gossip.StateAlive {
			ids = append(ids, m.ID)
		}
	}
	sort.Strings(ids)
	return ids
}

// waitAlive blocks until every listed node's alive set is exactly want.
func waitAlive(t *testing.T, nodes []*node, want ...string) {
	t.Helper()
	sort.Strings(want)
	deadline := time.Now().Add(20 * time.Second)
	for {
		converged := true
		for _, nd := range nodes {
			if !slices.Equal(aliveSet(nd), want) {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		if time.Now().After(deadline) {
			for _, nd := range nodes {
				t.Logf("node %s sees alive %v", nd.id, aliveSet(nd))
			}
			t.Fatalf("cluster never converged on alive set %v", want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// memberRecord returns nd's view of member id.
func memberRecord(nd *node, id string) (gossip.MemberStatus, bool) {
	for _, m := range nd.clu.Status().Members {
		if m.ID == id {
			return m, true
		}
	}
	return gossip.MemberStatus{}, false
}

// waitMemberState blocks until nd's view holds member id in state want.
func waitMemberState(t *testing.T, nd *node, id string, want gossip.State) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if m, ok := memberRecord(nd, id); ok && m.State == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	m, _ := memberRecord(nd, id)
	t.Fatalf("node %s never saw %s reach state %q (stuck at %+v)", nd.id, id, want, m.Member)
}

// corpusSpecs draws the rolling-restart workload from the gapload
// scenario corpus — the same seeded spec generator the load harness
// uses — so the chaos suite exercises the mix of job shapes a real
// campaign would.
func corpusSpecs(t *testing.T, size int) []jobs.Spec {
	t.Helper()
	c, err := loadgen.BuildCorpus(loadgen.CorpusSpec{Family: "mixed", Size: size, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]jobs.Spec, len(c.Items))
	for i, it := range c.Items {
		specs[i] = it.Spec
	}
	return specs
}

// startedTotal sums compute starts across every pool incarnation —
// the recompute oracle: cache hits, forwards, and replica fetches all
// leave it untouched.
func startedTotal(pools []*jobs.Pool) int64 {
	var n int64
	for _, p := range pools {
		n += p.Metrics().JobsStarted.Load()
	}
	return n
}

// postSpec submits a spec with full control over the forwarded header
// and returns the raw response (body drained and closed).
func postSpec(t *testing.T, nd *node, spec jobs.Spec, forwarded bool) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, nd.srv.URL+"/v1/"+string(spec.Kind), bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if forwarded {
		req.Header.Set(cluster.ForwardedHeader, "test-origin")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// drainNode POSTs /v1/drain?wait=1 and requires a clean 200: every held
// result placed at its new home before the call returns — the guarantee
// the zero-loss asserts lean on.
func drainNode(t *testing.T, nd *node) int {
	t.Helper()
	resp, err := http.Post(nd.srv.URL+"/v1/drain?wait=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Status   string `json:"status"`
		Migrated int    `json:"migrated"`
		Error    string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding drain response from %s: %v", nd.id, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain %s: status %d, body %+v", nd.id, resp.StatusCode, out)
	}
	return out.Migrated
}

// TestChaosRollingRestart is the acceptance test for dynamic
// membership: a 5-node gossip cluster answers a seeded gapload corpus,
// then every node in turn is drained (handoff must run clean), killed,
// and rejoined under the same ID with a cold cache at a new URL. After
// every step the full corpus is re-answered through the survivors —
// and through the rejoined node — byte-identical to the serial
// reference with zero recomputes: every answer after the initial pass
// comes from a cache, a forward, or a replica fetch, never from
// running the job again.
func TestChaosRollingRestart(t *testing.T) {
	specs := corpusSpecs(t, 8)
	ref := serialReference(t, specs)

	ids := []string{"a", "b", "c", "d", "e"}
	nodes := make(map[string]*node, len(ids))
	var pools []*jobs.Pool      // every pool incarnation, dead or alive
	var clus []*cluster.Cluster // every cluster incarnation, for metrics
	seeds := make([]cluster.Peer, 0, len(ids))
	for _, id := range ids {
		nd := newGossipNode(t, id)
		seeds = append(seeds, cluster.Peer{ID: id, URL: nd.srv.URL})
		nodes[id] = nd
	}
	current := func() []*node {
		out := make([]*node, 0, len(ids))
		for _, id := range ids {
			out = append(out, nodes[id])
		}
		return out
	}
	for _, id := range ids {
		bootGossipNode(t, nodes[id], seeds, jobs.Options{}, nil)
		pools = append(pools, nodes[id].pool)
		clus = append(clus, nodes[id].clu)
	}
	waitAlive(t, current(), ids...)

	// Initial pass: every spec computed exactly once somewhere.
	for i, spec := range specs {
		entry := nodes[ids[i%len(ids)]]
		res := submit(t, entry, spec)
		if got, want := normalizedJSON(t, res), ref[res.ID]; !bytes.Equal(got, want) {
			t.Fatalf("initial pass %d: result differs from serial reference\n got: %s\nwant: %s", i, got, want)
		}
	}
	if got, want := startedTotal(pools), int64(len(ref)); got != want {
		t.Fatalf("initial pass computed %d jobs, want %d", got, want)
	}

	totalMigrated := 0
	for _, id := range ids {
		nd := nodes[id]

		// Drain: must return clean, meaning every result nd held now
		// lives at its post-drain rendezvous rank. The drain's own
		// reported count can be zero when the background sweep (queued
		// by the ring rebuild the drain itself caused) wins the race to
		// push — cluster_handoff_migrated counts both, so the final
		// assert reads the metric, not this return.
		totalMigrated += drainNode(t, nd)
		resp, err := http.Get(nd.srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("roll %s: draining healthz status %d, want 503", id, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("roll %s: draining healthz missing Retry-After", id)
		}

		// Kill: the process is gone; survivors already re-ranked at the
		// drain announcement, so nothing routes here.
		nd.srv.Close()
		nd.clu.Close()
		survivors := make([]*node, 0, len(ids)-1)
		wantAlive := make([]string, 0, len(ids)-1)
		for _, sid := range ids {
			if sid != id {
				survivors = append(survivors, nodes[sid])
				wantAlive = append(wantAlive, sid)
			}
		}
		waitAlive(t, survivors, wantAlive...)

		// Zero loss with the node down: the survivors answer the full
		// corpus byte-identically without recomputing anything — the
		// drained node's results were migrated, not lost.
		before := startedTotal(pools)
		for j, spec := range specs {
			entry := survivors[j%len(survivors)]
			res := submit(t, entry, spec)
			if got, want := normalizedJSON(t, res), ref[res.ID]; !bytes.Equal(got, want) {
				t.Fatalf("roll %s: survivor answer differs from serial reference\n got: %s\nwant: %s", id, got, want)
			}
		}
		if got := startedTotal(pools); got != before {
			t.Errorf("roll %s: survivors recomputed %d handed-off jobs, want 0", id, got-before)
		}

		// Rejoin: same ID, cold cache, new URL, one live seed. The old
		// departure record forces the incarnation bump past it.
		nd2 := newGossipNode(t, id)
		bootGossipNode(t, nd2, []cluster.Peer{{ID: survivors[0].id, URL: survivors[0].srv.URL}}, jobs.Options{}, nil)
		nodes[id] = nd2
		pools = append(pools, nd2.pool)
		clus = append(clus, nd2.clu)
		waitAlive(t, current(), ids...)

		// Zero recompute through the rejoined node: addresses it now
		// owns again are served by replica fetch, not by running jobs.
		before = startedTotal(pools)
		for _, spec := range specs {
			res := submit(t, nd2, spec)
			if got, want := normalizedJSON(t, res), ref[res.ID]; !bytes.Equal(got, want) {
				t.Fatalf("roll %s: rejoined answer differs from serial reference\n got: %s\nwant: %s", id, got, want)
			}
		}
		if got := startedTotal(pools); got != before {
			t.Errorf("roll %s: rejoined node caused %d recomputes, want 0", id, got-before)
		}
	}

	// The whole rolling restart computed nothing beyond the initial
	// pass, and the machinery that made that possible actually ran.
	if got, want := startedTotal(pools), int64(len(ref)); got != want {
		t.Errorf("total computes across the rolling restart = %d, want %d (zero recompute)", got, want)
	}
	var migrated, rounds int64
	for _, c := range clus {
		cnt := c.Metrics().Counters()
		migrated += cnt["cluster_handoff_migrated"]
		rounds += cnt["cluster_gossip_rounds"]
	}
	if migrated == 0 {
		t.Error("cluster_handoff_migrated = 0 across all nodes, want > 0")
	}
	t.Logf("rolling restart: %d results migrated (drain-reported %d), %d gossip rounds", migrated, totalMigrated, rounds)
	if rounds == 0 {
		t.Error("cluster_gossip_rounds = 0 across all nodes, want > 0")
	}
}

// TestGossipDrainShedsNewWorkWhileFinishing is the drain-mode
// regression test: once a node announces a drain, (1) jobs already in
// flight run to completion and their results migrate, (2) no new
// compute is admitted — an uncached local request gets 503 with
// Retry-After, (3) fresh work entering through the draining node is
// shed to the next rendezvous rank, and (4) cached results stay
// readable throughout.
func TestGossipDrainShedsNewWorkWhileFinishing(t *testing.T) {
	a := newGossipNode(t, "a")
	b := newGossipNode(t, "b")
	seeds := []cluster.Peer{{ID: "a", URL: a.srv.URL}, {ID: "b", URL: b.srv.URL}}
	// Node a computes slowly — every fault site sleeps 200ms — so a job
	// is still genuinely in flight when the drain lands.
	bootGossipNode(t, a, seeds, jobs.Options{
		Injector: faultinject.New(faultinject.Plan{Seed: 1, LatencyRate: 1, Latency: 200 * time.Millisecond}),
	}, nil)
	bootGossipNode(t, b, seeds, jobs.Options{}, nil)
	waitAlive(t, []*node{a, b}, "a", "b")

	inflight := clusterBatch(3)[0]
	shedded := clusterBatch(4)[0]
	fresh := clusterBatch(5)[0]
	ref := serialReference(t, []jobs.Spec{inflight, shedded, fresh})

	// Start the in-flight job on a (the forwarded header pins it local).
	type reply struct {
		status int
		body   []byte
	}
	inflightC := make(chan reply, 1)
	go func() {
		resp, raw := postSpec(t, a, inflight, true)
		inflightC <- reply{resp.StatusCode, raw}
	}()
	time.Sleep(100 * time.Millisecond) // admitted and inside the pool by now

	if migrated := drainNode(t, a); migrated != 0 {
		t.Logf("drain migrated %d results before the in-flight job finished", migrated)
	}

	// (2) No new admissions: an uncached local request is refused.
	resp, _ := postSpec(t, a, shedded, true)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("uncached submission to draining node: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain refusal missing Retry-After")
	}

	// /healthz reports the drain with a Retry-After hint.
	hresp, err := http.Get(a.srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hraw, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status %d, want 503", hresp.StatusCode)
	}
	if hresp.Header.Get("Retry-After") == "" {
		t.Error("draining healthz missing Retry-After")
	}
	if !strings.Contains(string(hraw), `"draining"`) {
		t.Errorf("draining healthz body %s, want status draining", hraw)
	}

	// (1) The in-flight job finishes and answers correctly.
	rep := <-inflightC
	if rep.status != http.StatusOK {
		t.Fatalf("in-flight job on draining node: status %d, body %s", rep.status, rep.body)
	}
	var inflightRes jobs.Result
	if err := json.Unmarshal(rep.body, &inflightRes); err != nil {
		t.Fatal(err)
	}
	if got, want := normalizedJSON(t, &inflightRes), ref[inflightRes.ID]; !bytes.Equal(got, want) {
		t.Errorf("in-flight result differs from serial reference\n got: %s\nwant: %s", got, want)
	}

	// (3) Fresh work through the draining node is shed to the next
	// rendezvous rank — b computes it, a does not.
	resp, raw := postSpec(t, a, fresh, false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh submission via draining node: status %d, body %s", resp.StatusCode, raw)
	}
	var freshRes jobs.Result
	if err := json.Unmarshal(raw, &freshRes); err != nil {
		t.Fatal(err)
	}
	if got, want := normalizedJSON(t, &freshRes), ref[freshRes.ID]; !bytes.Equal(got, want) {
		t.Errorf("shed result differs from serial reference\n got: %s\nwant: %s", got, want)
	}
	if got := b.pool.Metrics().JobsStarted.Load(); got < 1 {
		t.Errorf("peer JobsStarted = %d, want >= 1 (the shed job)", got)
	}
	if got := a.pool.Metrics().JobsStarted.Load(); got != 1 {
		t.Errorf("draining node JobsStarted = %d, want exactly 1 (the in-flight job)", got)
	}

	// The result completed during the drain migrates to its new home.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, ok := b.pool.Cache().Get(inflightRes.ID); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("result completed during drain never migrated to the surviving node")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// (4) The migrated result stays readable through the draining node:
	// forwarded to b, answered from b's replica, byte-identical.
	resp, raw = postSpec(t, a, inflight, false)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-read of migrated result: status %d, body %s", resp.StatusCode, raw)
	}
	var reread jobs.Result
	if err := json.Unmarshal(raw, &reread); err != nil {
		t.Fatal(err)
	}
	if got, want := normalizedJSON(t, &reread), ref[inflightRes.ID]; !bytes.Equal(got, want) {
		t.Errorf("re-read after migration differs from serial reference\n got: %s\nwant: %s", got, want)
	}
}

// TestGossipSuspectRefutation drives the SWIM refutation cycle over
// real HTTP with a scripted partition: an isolated node is suspected
// (but not evicted — flap damping keeps suspects in the ring), and on
// heal it refutes the suspicion by bumping its own incarnation, which
// propagates and restores it to alive everywhere without the ring ever
// having re-ranked.
func TestGossipSuspectRefutation(t *testing.T) {
	ids := []string{"a", "b", "c"}
	inj := netfault.New(netfault.Plan{})
	hosts := make(map[string]string, len(ids))
	nodes := make([]*node, len(ids))
	seeds := make([]cluster.Peer, len(ids))
	for i, id := range ids {
		nodes[i] = newGossipNode(t, id)
		hosts[strings.TrimPrefix(nodes[i].srv.URL, "http://")] = id
		seeds[i] = cluster.Peer{ID: id, URL: nodes[i].srv.URL}
	}
	resolve := netfault.HostResolver(hosts)
	for _, nd := range nodes {
		id := nd.id
		bootGossipNode(t, nd, seeds, jobs.Options{}, func(o *cluster.Options) {
			// The suspicion window is effectively infinite: this test is
			// about refutation, and a suspect expiring to dead mid-test
			// would change the ring and muddy the flap-damping assert.
			o.Gossip.SuspectRounds = 1 << 20
			o.WrapTransport = func(rt http.RoundTripper) http.RoundTripper {
				return inj.Transport(id, resolve, rt)
			}
		})
	}
	a, b := nodes[0], nodes[1]
	waitAlive(t, nodes, ids...)
	genBefore := a.clu.Status().RingGen

	// Cut b off completely: direct probes and ping-req relays both fail,
	// so a and c suspect it.
	inj.Isolate("b", "a", "c")
	waitMemberState(t, a, "b", gossip.StateSuspect)

	// Flap damping: suspicion must not re-rank the ring.
	if gen := a.clu.Status().RingGen; gen != genBefore {
		t.Errorf("ring generation moved %d -> %d on suspicion; suspects must stay in the ring", genBefore, gen)
	}
	if got := a.clu.Metrics().Counters()["cluster_suspected"]; got < 1 {
		t.Errorf("cluster_suspected = %d on the observer, want >= 1", got)
	}

	// Heal only the inbound half: a and c can reach b (and carry their
	// suspicion records to it), but b's own probes stay dead. The only
	// way b can come back alive everywhere is the SWIM refutation — a
	// bump of its own incarnation past the suspicion.
	inj.HealAll()
	inj.Partition("b", "a")
	inj.Partition("b", "c")
	deadline := time.Now().Add(20 * time.Second)
	for {
		if m, ok := memberRecord(a, "b"); ok && m.State == gossip.StateAlive && m.Incarnation >= 1 {
			break
		}
		if time.Now().After(deadline) {
			m, _ := memberRecord(a, "b")
			t.Fatalf("b never refuted its suspicion; a's record: %+v", m.Member)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := b.clu.Metrics().Counters()["cluster_refutations"]; got < 1 {
		t.Errorf("cluster_refutations = %d on the refuting node, want >= 1", got)
	}

	inj.HealAll()
	waitAlive(t, nodes, ids...)
}

// TestGossipJoinDuringPartition: a new node joins through one seed
// while a link between two existing members is cut. Indirect ping-req
// probes keep the unreachable-but-healthy member alive (one broken
// link must not condemn a node), the join disseminates around the cut,
// and requests entering through the partitioned node still answer
// byte-identically by routing around the dead link.
func TestGossipJoinDuringPartition(t *testing.T) {
	inj := netfault.New(netfault.Plan{})
	hosts := make(map[string]string, 4)
	shells := make(map[string]*node, 4)
	for _, id := range []string{"a", "b", "c", "d"} {
		shells[id] = newGossipNode(t, id)
		hosts[strings.TrimPrefix(shells[id].srv.URL, "http://")] = id
	}
	resolve := netfault.HostResolver(hosts)
	wrap := func(id string) func(*cluster.Options) {
		return func(o *cluster.Options) {
			o.Gossip.SuspectRounds = 1 << 20
			o.WrapTransport = func(rt http.RoundTripper) http.RoundTripper {
				return inj.Transport(id, resolve, rt)
			}
		}
	}
	seeds := []cluster.Peer{
		{ID: "a", URL: shells["a"].srv.URL},
		{ID: "b", URL: shells["b"].srv.URL},
		{ID: "c", URL: shells["c"].srv.URL},
	}
	for _, id := range []string{"a", "b", "c"} {
		bootGossipNode(t, shells[id], seeds, jobs.Options{}, wrap(id))
	}
	trio := []*node{shells["a"], shells["b"], shells["c"]}
	waitAlive(t, trio, "a", "b", "c")

	// Cut a<->c, then join d through b alone while the cut is live.
	inj.PartitionBoth("a", "c")
	bootGossipNode(t, shells["d"], []cluster.Peer{{ID: "b", URL: shells["b"].srv.URL}}, jobs.Options{}, wrap("d"))
	all := []*node{shells["a"], shells["b"], shells["c"], shells["d"]}
	waitAlive(t, all, "a", "b", "c", "d")

	// c is unreachable from a directly, yet a's view holds it alive —
	// the ping-req relays through b and d vouched for it.
	if m, ok := memberRecord(shells["a"], "c"); !ok || m.State != gossip.StateAlive {
		t.Errorf("a's view of c during the partition: %+v, want alive via ping-req", m.Member)
	}

	// Work entering through the partitioned node still answers
	// byte-identically: forwards to c fail fast and race down the
	// rendezvous order instead.
	specs := clusterBatch(7)
	ref := serialReference(t, specs)
	for _, spec := range specs {
		res := submit(t, shells["a"], spec)
		if got, want := normalizedJSON(t, res), ref[res.ID]; !bytes.Equal(got, want) {
			t.Errorf("%s: answer through partitioned node differs from serial reference\n got: %s\nwant: %s",
				spec.Kind, got, want)
		}
	}

	inj.HealAll()
	waitAlive(t, all, "a", "b", "c", "d")
}

// TestGossipStaleViewRejected: departed members stay departed. A stale
// record (the member's pre-departure alive incarnation) arriving over
// the wire must not resurrect it or re-rank the ring; a genuine rejoin
// under the same ID must instead bump its incarnation past the
// departure record it finds waiting.
func TestGossipStaleViewRejected(t *testing.T) {
	a := newGossipNode(t, "a")
	b := newGossipNode(t, "b")
	seeds := []cluster.Peer{{ID: "a", URL: a.srv.URL}, {ID: "b", URL: b.srv.URL}}
	bootGossipNode(t, a, seeds, jobs.Options{}, nil)
	bootGossipNode(t, b, seeds, jobs.Options{}, nil)
	waitAlive(t, []*node{a, b}, "a", "b")

	// b drains, announces a clean departure, and dies.
	drainNode(t, b)
	b.clu.Leave(context.Background())
	oldURL := b.srv.URL
	b.srv.Close()
	b.clu.Close()
	waitMemberState(t, a, "b", gossip.StateLeft)
	left, _ := memberRecord(a, "b")
	genBefore := a.clu.Status().RingGen

	// A stale alive record about b — its incarnation from before the
	// departure — must be rejected: left at a higher incarnation wins.
	stale, err := json.Marshal(cluster.GossipMsg{
		From: "b",
		Records: []gossip.Member{
			{ID: "b", URL: oldURL, State: gossip.StateAlive, Incarnation: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(a.srv.URL+cluster.GossipPath, "application/json", bytes.NewReader(stale))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gossip exchange status %d", resp.StatusCode)
	}
	if m, _ := memberRecord(a, "b"); m.State != gossip.StateLeft || m.Incarnation != left.Incarnation {
		t.Errorf("stale record resurrected b: %+v, want left@%d", m.Member, left.Incarnation)
	}
	if gen := a.clu.Status().RingGen; gen != genBefore {
		t.Errorf("ring generation moved %d -> %d on a stale record", genBefore, gen)
	}

	// A genuine rejoin under the same ID bumps past the departure.
	b2 := newGossipNode(t, "b")
	bootGossipNode(t, b2, []cluster.Peer{{ID: "a", URL: a.srv.URL}}, jobs.Options{}, nil)
	waitAlive(t, []*node{a, b2}, "a", "b")
	if m, _ := memberRecord(a, "b"); m.Incarnation <= left.Incarnation {
		t.Errorf("rejoined b at incarnation %d, want > departure incarnation %d", m.Incarnation, left.Incarnation)
	}
}

// TestDrainRetryHonorsContext pins the drain retry loop's contract:
// when every replica push keeps failing, drain retries on its single
// hoisted ticker (the chanhygiene gate bars the per-iteration
// time.After it used to leak) and returns the incomplete-handoff error
// promptly once ctx expires — it neither spins hot nor hangs past the
// deadline.
func TestDrainRetryHonorsContext(t *testing.T) {
	a := newGossipNode(t, "a")
	b := newGossipNode(t, "b")
	seeds := []cluster.Peer{{ID: "a", URL: a.srv.URL}, {ID: "b", URL: b.srv.URL}}
	bootGossipNode(t, a, seeds, jobs.Options{}, nil)
	bootGossipNode(t, b, seeds, jobs.Options{}, nil)

	// b answers gossip and probes normally but refuses every replica
	// push, so each handoff sweep ends with the result still unplaced.
	// Installed before the compute so the off-path replication at
	// compute time cannot pre-place the result on b either.
	b.mu.Lock()
	inner := b.inner
	b.inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut && strings.HasPrefix(r.URL.Path, "/v1/results/") {
			http.Error(w, `{"error":"disk full"}`, http.StatusInsufficientStorage)
			return
		}
		inner.ServeHTTP(w, r)
	})
	b.mu.Unlock()
	waitAlive(t, []*node{a, b}, "a", "b")

	spec := clusterBatch(11)[0]
	if resp, raw := postSpec(t, a, spec, true); resp.StatusCode != http.StatusOK {
		t.Fatalf("compute on a: status %d: %s", resp.StatusCode, raw)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	migrated, err := a.clu.Drain(ctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("drain reported success while every replica push was refused")
	}
	if !strings.Contains(err.Error(), "drain handoff incomplete") {
		t.Errorf("drain error = %v, want the incomplete-handoff message", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("drain error = %v, want it to wrap context.DeadlineExceeded", err)
	}
	if migrated != 0 {
		t.Errorf("migrated = %d, want 0 (every push was refused)", migrated)
	}
	if elapsed > 5*time.Second {
		t.Errorf("drain returned %v after a 300ms deadline; the retry loop is not honoring ctx", elapsed)
	}
}
