// Package cluster_test drives whole in-process clusters: N httptest
// servers, each running the real serve handler over its own pool and its
// own Cluster view, wired to each other by URL. The chaos tests here are
// the sharding acceptance suite — owner killed mid-run, owner running
// slow — and assert the cluster's one invariant: whatever path a request
// takes (forwarded, hedged, fallback, local), the result is
// byte-identical to the single-node serial reference, for the fixed seed
// matrix {1, 7, 42}.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/serve"
)

// chaosSeeds is the same fixed seed matrix the jobs chaos suite uses.
var chaosSeeds = []int64{1, 7, 42}

// node is one in-process cluster member: the real serve handler behind a
// fault-injecting front door.
type node struct {
	id   string
	srv  *httptest.Server
	pool *jobs.Pool
	clu  *cluster.Cluster

	mu    sync.Mutex
	inner http.Handler

	// abortPosts kills the node mid-request: job submissions run to
	// completion internally, then the connection is torn down before the
	// response is written — the signature of a process killed between
	// compute and reply.
	abortPosts atomic.Bool
	// delayPosts injects ns of latency before job submissions (probes
	// are unaffected), simulating a slow-but-healthy owner.
	delayPosts atomic.Int64
	// abortedDelays counts delayed submissions abandoned because the
	// client canceled the request mid-delay — how a test observes that a
	// losing hedge leg was actually canceled, not just ignored.
	abortedDelays atomic.Int64
	// healthz503 makes the node's /healthz report degraded.
	healthz503 atomic.Bool
}

func (n *node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if n.healthz503.Load() && r.URL.Path == "/healthz" {
		http.Error(w, `{"status":"degraded"}`, http.StatusServiceUnavailable)
		return
	}
	n.mu.Lock()
	h := n.inner
	n.mu.Unlock()
	if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/") {
		if d := n.delayPosts.Load(); d > 0 {
			// Drain the body first: the server's client-disconnect watcher
			// stays unarmed while the body is unread, and the watcher is
			// what cancels r.Context() when a losing hedge straggler is
			// abandoned — without it this handler would sleep out the full
			// delay and wedge server shutdown.
			body, _ := io.ReadAll(r.Body)
			r.Body.Close()
			r.Body = io.NopCloser(bytes.NewReader(body))
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				n.abortedDelays.Add(1)
				return // the racing client already gave up on this node
			}
		}
		if n.abortPosts.Load() {
			h.ServeHTTP(httptest.NewRecorder(), r) // the work happens...
			panic(http.ErrAbortHandler)            // ...the answer is lost
		}
	}
	h.ServeHTTP(w, r)
}

// startCluster boots n nodes that know each other by URL. Probing is off
// by default (ProbeInterval an hour, never started) so health state moves
// only through passive forward reports — deterministic for the chaos
// tests; tweak overrides per-test knobs.
func startCluster(t testing.TB, n int, tweak func(*cluster.Options)) []*node {
	return startClusterPools(t, n, nil, tweak)
}

// startClusterPools is startCluster with per-node pool control: poolOpt
// builds each node's jobs.Options (nil = the default RAM-only pool).
// The store-integrity chaos tests use it to attach a disk tier to every
// node and disable the RAM cache so reads actually exercise the store.
func startClusterPools(t testing.TB, n int, poolOpt func(id string) jobs.Options, tweak func(*cluster.Options)) []*node {
	t.Helper()
	nodes := make([]*node, n)
	peers := make([]cluster.Peer, n)
	for i := range nodes {
		nd := &node{id: string(rune('a' + i))}
		nd.inner = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "booting", http.StatusServiceUnavailable)
		})
		nd.srv = httptest.NewServer(nd)
		t.Cleanup(nd.srv.Close)
		peers[i] = cluster.Peer{ID: nd.id, URL: nd.srv.URL}
		nodes[i] = nd
	}
	for _, nd := range nodes {
		// The pool exists before the cluster so its tiers can back the
		// cluster's replication reads (Results); with the default
		// Replicas of 1 the wiring is inert.
		po := jobs.Options{Workers: 2}
		if poolOpt != nil {
			po = poolOpt(nd.id)
		}
		nd.pool = jobs.NewPool(po)
		opt := cluster.Options{
			SelfID:         nd.id,
			Peers:          peers,
			HedgeAfter:     -1, // hedging off unless the test turns it on
			RequestTimeout: 30 * time.Second,
			ProbeInterval:  time.Hour,
			DeadAfter:      1, // one torn forward = dead, no probe wait
			// The cluster-facing result set is cache ∪ store, the same
			// view gapd wires: anti-entropy and replica reads must cover
			// what the cache evicted but the store still holds.
			Results: nd.pool.StoredView(),
		}
		if tweak != nil {
			tweak(&opt)
		}
		clu, err := cluster.New(opt)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(clu.Close)
		nd.clu = clu
		h := serve.NewHandler(serve.Options{Pool: nd.pool, Cluster: clu})
		nd.mu.Lock()
		nd.inner = h
		nd.mu.Unlock()
	}
	return nodes
}

// byID returns the node with the given cluster ID.
func byID(t *testing.T, nodes []*node, id string) *node {
	t.Helper()
	for _, nd := range nodes {
		if nd.id == id {
			return nd
		}
	}
	t.Fatalf("no node %q", id)
	return nil
}

// otherThan returns the first node that is not the given one.
func otherThan(nodes []*node, not *node) *node {
	for _, nd := range nodes {
		if nd != not {
			return nd
		}
	}
	return nil
}

// clusterBatch is one evaluate, one full ladder, and one sweep — the
// three job kinds the acceptance criteria require — at the given seed.
func clusterBatch(seed int64) []jobs.Spec {
	design := jobs.DesignSpec{Name: "datapath", Width: 8, Depth: 2}
	return []jobs.Spec{
		{Kind: jobs.KindEvaluate, Design: design, Methodology: jobs.MethSpec{Base: "typical"}, Seed: seed},
		{Kind: jobs.KindLadder, Design: design, Seed: seed},
		{Kind: jobs.KindSweep, Design: design, Methodology: jobs.MethSpec{Base: "best-practice"},
			MaxStages: 3, Workload: "integer", Seed: seed},
	}
}

// normalizedJSON is the byte-exact comparison key: canonical envelope
// minus run-dependent fields.
func normalizedJSON(t *testing.T, res *jobs.Result) []byte {
	t.Helper()
	b, err := json.Marshal(res.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// serialReference runs every spec with no cluster, no pool, parallelism
// 1 — the single-node ground truth.
func serialReference(t *testing.T, specs []jobs.Spec) map[string][]byte {
	t.Helper()
	ref := make(map[string][]byte, len(specs))
	for _, s := range specs {
		res, err := jobs.Run(context.Background(), s, 1)
		if err != nil {
			t.Fatalf("serial reference %s: %v", s.Kind, err)
		}
		ref[res.ID] = normalizedJSON(t, res)
	}
	return ref
}

// submit POSTs the spec to the node's public endpoint and decodes the
// result, exactly as an external client would.
func submit(t *testing.T, nd *node, spec jobs.Spec) *jobs.Result {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(nd.srv.URL+"/v1/"+string(spec.Kind), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res jobs.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("decoding %s response: %v", spec.Kind, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s via node %s: status %d", spec.Kind, nd.id, resp.StatusCode)
	}
	return &res
}

// TestChaosClusterOwnerKill is the sharding acceptance test for the
// fallback path: for every spec kind and every chaos seed, the spec's
// true owner is killed mid-run (it computes, then the connection tears
// before the reply), and a surviving node must still answer — first by
// racing down the rendezvous order, then, with the owner marked dead, by
// the route-time fallback — with results byte-identical to the
// single-node serial reference.
func TestChaosClusterOwnerKill(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			specs := clusterBatch(seed)
			ref := serialReference(t, specs)

			// A fresh cluster per spec keeps the health state
			// deterministic: every spec's owner starts presumed-alive, so
			// both failure paths — race-past-torn-forward and route-time
			// fallback — are exercised every time.
			for _, spec := range specs {
				nodes := startCluster(t, 3, nil)
				owner := byID(t, nodes, nodes[0].clu.Ring().Owner(spec.Hash()))
				entry := otherThan(nodes, owner)
				owner.abortPosts.Store(true)

				// First submission: the forward to the owner tears; the
				// client races on to the next node in rendezvous order.
				res := submit(t, entry, spec)
				if got, want := normalizedJSON(t, res), ref[res.ID]; !bytes.Equal(got, want) {
					t.Errorf("%s: killed-owner result differs from serial reference\n got: %s\nwant: %s",
						spec.Kind, got, want)
				}

				// Second submission: the entry node now knows the owner is
				// dead and routes around it at decision time (fallback).
				res2 := submit(t, entry, spec)
				if got, want := normalizedJSON(t, res2), ref[res2.ID]; !bytes.Equal(got, want) {
					t.Errorf("%s: fallback result differs from serial reference", spec.Kind)
				}

				c := entry.clu.Metrics().Counters()
				if c["forward_errors"] < 1 {
					t.Errorf("%s: forward_errors = %d, want >= 1 (the torn forward)",
						spec.Kind, c["forward_errors"])
				}
				if c["cluster_fallback"] < 1 {
					t.Errorf("%s: cluster_fallback = %d, want >= 1 (the dead-owner reroute)",
						spec.Kind, c["cluster_fallback"])
				}
			}
		})
	}
}

// TestChaosClusterHedged is the sharding acceptance test for the hedged
// path: the owner stays healthy but slow, the hedge timer fires, the
// next node in rendezvous order wins the race, and the answer is still
// byte-identical to the serial reference — the property determinism
// buys: a hedge can never return a different result, only an earlier
// one. The slow owner must not be marked dead (slowness is not death).
func TestChaosClusterHedged(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			specs := clusterBatch(seed)
			ref := serialReference(t, specs)
			nodes := startCluster(t, 3, func(o *cluster.Options) {
				o.HedgeAfter = 10 * time.Millisecond
			})

			// The injected owner latency dwarfs any plausible compute time
			// (even under -race), so finishing well inside it proves the
			// hedge answered, not the owner.
			const ownerDelay = 10 * time.Second
			for _, spec := range specs {
				owner := byID(t, nodes, nodes[0].clu.Ring().Owner(spec.Hash()))
				entry := otherThan(nodes, owner)
				owner.delayPosts.Store(int64(ownerDelay))

				start := time.Now()
				res := submit(t, entry, spec)
				elapsed := time.Since(start)
				owner.delayPosts.Store(0)

				if got, want := normalizedJSON(t, res), ref[res.ID]; !bytes.Equal(got, want) {
					t.Errorf("%s: hedged result differs from serial reference\n got: %s\nwant: %s",
						spec.Kind, got, want)
				}
				if elapsed >= ownerDelay/2 {
					t.Errorf("%s: hedged request took %v, owner delay is %v", spec.Kind, elapsed, ownerDelay)
				}

				for _, ps := range entry.clu.Status().Peers {
					if ps.ID == owner.id && ps.Health == cluster.HealthDead {
						t.Errorf("%s: slow owner %s marked dead by a hedge", spec.Kind, owner.id)
					}
				}
			}

			var hedged int64
			for _, nd := range nodes {
				hedged += nd.clu.Metrics().Counters()["cluster_hedged"]
			}
			if hedged < int64(len(specs)) {
				t.Errorf("cluster_hedged = %d, want >= %d (one hedge per slow-owner spec)",
					hedged, len(specs))
			}
		})
	}
}

// TestForwardingWarmsOwnerCache: sharding exists to concentrate each
// spec's cache entry on one node. Two submissions of the same spec
// through a non-owner must both land on the owner — the second served
// from the owner's cache, and the entry node's own cache stays empty.
func TestForwardingWarmsOwnerCache(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	spec := clusterBatch(5)[0]
	owner := byID(t, nodes, nodes[0].clu.Ring().Owner(spec.Hash()))
	entry := otherThan(nodes, owner)

	res := submit(t, entry, spec)
	if res.Cached {
		t.Error("first submission reported cached")
	}
	res2 := submit(t, entry, spec)
	if !res2.Cached {
		t.Error("second forwarded submission missed the owner's cache")
	}
	if res2.ID != res.ID {
		t.Errorf("ids differ: %s vs %s", res.ID, res2.ID)
	}
	if got := owner.pool.Cache().Len(); got != 1 {
		t.Errorf("owner cache entries = %d, want 1", got)
	}
	if got := entry.pool.Cache().Len(); got != 0 {
		t.Errorf("entry-node cache entries = %d, want 0 (affinity broken)", got)
	}
	if got := entry.clu.Metrics().Counters()["cluster_forwarded"]; got != 2 {
		t.Errorf("cluster_forwarded = %d, want 2", got)
	}
}

// TestForwardedLoopGuard: a request already forwarded once is served
// locally no matter who owns the spec — the one-hop guarantee that makes
// divergent health views loop-free.
func TestForwardedLoopGuard(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	spec := clusterBatch(6)[0]
	owner := byID(t, nodes, nodes[0].clu.Ring().Owner(spec.Hash()))
	entry := otherThan(nodes, owner)

	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, entry.srv.URL+"/v1/evaluate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "test-origin")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	c := entry.clu.Metrics().Counters()
	if c["cluster_forwarded"] != 0 || c["cluster_local"] != 1 {
		t.Errorf("forwarded=%d local=%d, want 0/1 (loop guard must serve locally)",
			c["cluster_forwarded"], c["cluster_local"])
	}
	if got := entry.pool.Cache().Len(); got != 1 {
		t.Errorf("entry-node cache entries = %d, want 1", got)
	}
	if got := owner.pool.Cache().Len(); got != 0 {
		t.Errorf("owner cache entries = %d, want 0 (request must not hop again)", got)
	}
}

// TestBadSpecVerdictRelayed: a peer that runs a forwarded job and finds
// the spec invalid produces a terminal verdict; the entry node must
// relay the 400 instead of retrying it around the ring (determinism
// makes the verdict the same everywhere).
func TestBadSpecVerdictRelayed(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	// Valid at decode time on the entry node, rejected at resolve time
	// inside the owner's pool: best-practice has no domino cells.
	frac := 0.5
	spec := jobs.Spec{
		Kind:        jobs.KindEvaluate,
		Design:      jobs.DesignSpec{Name: "cla"},
		Methodology: jobs.MethSpec{Base: "best-practice", DominoFrac: &frac},
	}
	// Find an entry node that does not own the spec so the request is
	// actually forwarded.
	owner := byID(t, nodes, nodes[0].clu.Ring().Owner(spec.Hash()))
	entry := otherThan(nodes, owner)

	body, _ := json.Marshal(spec)
	resp, err := http.Post(entry.srv.URL+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 relayed from the owner", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Fatalf("error envelope: %v %v", e, err)
	}
	if got := entry.clu.Metrics().Counters()["forward_errors"]; got != 0 {
		t.Errorf("forward_errors = %d, want 0 (terminal verdict is not an availability failure)", got)
	}
}

// TestMembershipProbes drives the active health loop: a peer moves
// alive -> degraded (healthz 503) -> dead (server gone) as probes
// observe it, and a dead owner's keys route to the survivor.
func TestMembershipProbes(t *testing.T) {
	nodes := startCluster(t, 2, func(o *cluster.Options) {
		o.ProbeInterval = 10 * time.Millisecond
		o.ProbeTimeout = 250 * time.Millisecond
		o.DeadAfter = 2
	})
	a, b := nodes[0], nodes[1]
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a.clu.Start(ctx)

	waitHealth := func(want cluster.Health) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			for _, ps := range a.clu.Status().Peers {
				if ps.ID == b.id && ps.Health == want {
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("peer %s never became %s", b.id, want)
	}

	waitHealth(cluster.HealthAlive)
	b.healthz503.Store(true)
	waitHealth(cluster.HealthDegraded)
	b.healthz503.Store(false)
	waitHealth(cluster.HealthAlive)
	b.srv.Close()
	waitHealth(cluster.HealthDead)

	// Every key b owned now routes to a, locally, flagged as fallback.
	remapped := false
	for _, spec := range clusterBatch(9) {
		rt := a.clu.Route(spec.Hash())
		if !rt.Local {
			t.Errorf("%s: route with sole survivor not local: %+v", spec.Kind, rt)
		}
		if rt.Owner == b.id {
			remapped = true
			if !rt.Fallback {
				t.Errorf("%s: dead owner's key not flagged fallback", spec.Kind)
			}
		}
	}
	if !remapped {
		t.Skip("no batch key owned by the dead peer; ownership test covers remapping")
	}
}

// TestClusterEndpoints: GET /v1/cluster and the cluster block of
// GET /metrics expose membership, ownership balance, and the routing
// counters; GET /v1/version names the node.
func TestClusterEndpoints(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	spec := clusterBatch(11)[0]
	owner := byID(t, nodes, nodes[0].clu.Ring().Owner(spec.Hash()))
	entry := otherThan(nodes, owner)
	submit(t, entry, spec) // one forwarded request so counters move

	var st struct {
		Self         string  `json:"self"`
		HedgeAfterMS float64 `json:"hedge_after_ms"`
		Peers        []struct {
			ID     string `json:"id"`
			Health string `json:"health"`
		} `json:"peers"`
		Ownership struct {
			Sample int                `json:"sample"`
			Shares map[string]float64 `json:"shares"`
		} `json:"ownership"`
		Counters map[string]int64 `json:"counters"`
	}
	resp, err := http.Get(entry.srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Self != entry.id || len(st.Peers) != 3 {
		t.Errorf("cluster status self=%q peers=%d", st.Self, len(st.Peers))
	}
	total := 0.0
	for _, s := range st.Ownership.Shares {
		total += s
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("ownership shares sum to %.3f", total)
	}
	if st.Counters["cluster_forwarded"] != 1 {
		t.Errorf("counters = %v, want one forward", st.Counters)
	}

	var metrics struct {
		Cluster map[string]json.RawMessage `json:"cluster"`
	}
	resp, err = http.Get(entry.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"cluster_forwarded", "cluster_local", "cluster_hedged",
		"cluster_fallback", "forward_errors", "peers"} {
		if _, ok := metrics.Cluster[key]; !ok {
			t.Errorf("metrics cluster block missing %s", key)
		}
	}

	var v map[string]any
	resp, err = http.Get(entry.srv.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v["node"] != entry.id {
		t.Errorf("version node = %v, want %s", v["node"], entry.id)
	}
	if v["go"] == "" || v["version"] == "" {
		t.Errorf("version payload incomplete: %v", v)
	}
}
