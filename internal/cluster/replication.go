package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"repro/internal/jobs"
)

// ResultsPath is the internal replication endpoint prefix. A result's
// canonical resource is ResultsPath + "/" + its content address:
// GET returns the stored result (404 when absent), PUT stores a
// replica pushed by a peer (201 created, 200 already present).
const ResultsPath = "/v1/results"

// replicaTargets returns the peers (never self) that should hold a
// replica of the result with the given content address: the first R
// nodes in its rendezvous order, minus this node. Health is not
// consulted — the full replica set is the contract; whether a given
// push succeeds right now is the caller's (or anti-entropy's) problem.
func (c *Cluster) replicaTargets(hash string) []Peer {
	if c.replicas <= 1 {
		return nil
	}
	return c.rankTargets(hash, c.replicas)
}

// handoffTargets returns the peers that should hold the result with the
// given content address under the *current* ring, regardless of the
// replication factor: even with replication off, a result whose
// ownership moved (a join re-ranked it, or this node is draining) has
// one rightful home, and handoff pushes it there instead of letting the
// new owner recompute.
func (c *Cluster) handoffTargets(hash string) []Peer {
	return c.rankTargets(hash, max(c.replicas, 1))
}

// rankTargets returns the first n peers (never self) in the hash's
// rendezvous order under the current ring view. Health is not consulted
// — the target set is the contract; whether a given push succeeds right
// now is the caller's (or anti-entropy's) problem.
func (c *Cluster) rankTargets(hash string, n int) []Peer {
	rv := c.rv()
	rank := rv.ring.Rank(hash)
	n = min(n, len(rank))
	out := make([]Peer, 0, n)
	for _, id := range rank[:n] {
		if id == c.self {
			continue
		}
		out = append(out, rv.peers[id])
	}
	return out
}

// pushResult PUTs one normalized result to one peer, digest-stamped so
// the receiver can verify the bytes before storing. Returns whether the
// receiver newly created the replica (201) as opposed to already
// holding it (200).
func (c *Cluster) pushResult(ctx context.Context, p Peer, res *jobs.Result) (created bool, err error) {
	body, err := json.Marshal(res.Normalized())
	if err != nil {
		return false, err
	}
	rctx, cancel := context.WithTimeout(ctx, c.reqTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPut,
		p.URL+ResultsPath+"/"+res.ID, bytes.NewReader(body))
	if err != nil {
		return false, peerUnavailable(p.ID, 0, err.Error())
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DigestHeader, bodyDigest(body))
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, peerUnavailable(p.ID, 0, err.Error())
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, maxPeerResponse))
	switch resp.StatusCode {
	case http.StatusCreated:
		return true, nil
	case http.StatusOK:
		return false, nil
	default:
		return false, peerUnavailable(p.ID, resp.StatusCode, "replica push rejected")
	}
}

// Replicate pushes a freshly completed result to its replica peers
// (best effort — a peer that is down simply misses the push and is
// healed later by anti-entropy). Meant to be called asynchronously
// after local completion; it never blocks the response path.
func (c *Cluster) Replicate(ctx context.Context, res *jobs.Result) {
	if res == nil || res.ID == "" {
		return
	}
	targets := c.replicaTargets(res.ID)
	if c.Draining() {
		// A result completed during a drain must reach its new home even
		// with replication off — the draining node's copy dies with it.
		targets = c.handoffTargets(res.ID)
	}
	for _, p := range targets {
		if created, err := c.pushResult(ctx, p, res); err == nil && created {
			c.metrics.Replicated.Add(1)
		}
	}
}

// FetchResult asks this result's replica peers for an already-computed
// copy over GET /v1/results/{addr}, digest-verified. Every replica-set
// peer except self is asked regardless of health: replica reads are
// cheap cache lookups that bypass admission, and a peer too loaded to
// accept work can still answer one. Returns (nil, false) when no peer
// holds the result — the caller computes locally.
func (c *Cluster) FetchResult(ctx context.Context, hash string) (*jobs.Result, bool) {
	for _, p := range c.replicaTargets(hash) {
		res, err := c.fetchFrom(ctx, p, hash)
		if err != nil || res == nil {
			continue
		}
		c.metrics.ReplicaHits.Add(1)
		return res, true
	}
	return nil, false
}

// fetchFrom GETs one result from one peer; (nil, nil) means the peer
// answered but does not hold it.
func (c *Cluster) fetchFrom(ctx context.Context, p Peer, hash string) (*jobs.Result, error) {
	rctx, cancel := context.WithTimeout(ctx, c.reqTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, p.URL+ResultsPath+"/"+hash, nil)
	if err != nil {
		return nil, peerUnavailable(p.ID, 0, err.Error())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, peerUnavailable(p.ID, 0, err.Error())
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerResponse))
	if err != nil {
		return nil, peerUnavailable(p.ID, 0, "reading response: "+err.Error())
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	res, derr := decodePeerResponse(p.ID, resp.StatusCode, resp.Header.Get(DigestHeader), raw, hash)
	if derr != nil {
		if errors.Is(derr, ErrCorruptReply) {
			c.metrics.DigestRejected.Add(1)
		}
		return nil, derr
	}
	return res, nil
}

// ReadRepair fetches a verified copy of a result this node's store
// condemned (corrupt on read, or quarantined by the scrubber) from its
// replica set — the hook the jobs pool consults before admitting a
// recompute. The fetch path digest-verifies the bytes and checks they
// decode to the requested content address; the pool re-verifies the
// spec hash and re-Puts the body locally, which clears the store's
// quarantine. Each successful fetch counts cluster_read_repaired.
func (c *Cluster) ReadRepair(ctx context.Context, hash string) (*jobs.Result, bool) {
	res, ok := c.FetchResult(ctx, hash)
	if ok {
		c.metrics.ReadRepaired.Add(1)
	}
	return res, ok
}

// ReplicationEnabled reports whether this cluster keeps replicas at
// all (replication factor above one) — when false, a condemned record
// has no peer to be repaired from and /healthz should say so.
func (c *Cluster) ReplicationEnabled() bool {
	return c != nil && c.replicas > 1
}

// AntiEntropyNow runs one repair sweep: every result this node holds
// whose replica set includes peers is re-pushed to the currently usable
// ones. Receivers dedup (200 vs 201), so a sweep over an already
// converged cluster is read-only chatter; each 201 — a replica that was
// actually missing — is counted in cluster_antientropy_repaired.
// Returns the number of replicas repaired.
func (c *Cluster) AntiEntropyNow(ctx context.Context) int {
	if c.results == nil || c.replicas <= 1 {
		return 0
	}
	repaired := 0
	for _, id := range c.results.Keys() {
		if ctx.Err() != nil {
			return repaired
		}
		res, ok := c.results.Get(id)
		if !ok {
			continue
		}
		for _, p := range c.replicaTargets(id) {
			if !c.usable(p.ID) {
				continue // unreachable now; a later sweep will retry
			}
			if created, err := c.pushResult(ctx, p, res); err == nil && created {
				c.metrics.AntiEntropyRepaired.Add(1)
				repaired++
			}
		}
	}
	return repaired
}
