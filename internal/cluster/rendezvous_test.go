package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// testKeys returns n deterministic pseudo-random hex keys shaped like
// spec hashes.
func testKeys(n int) []string {
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%016x%016x%016x%016x",
			rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64())
	}
	return keys
}

func testPeers(ids ...string) []Peer {
	peers := make([]Peer, len(ids))
	for i, id := range ids {
		peers[i] = Peer{ID: id, URL: "http://" + id}
	}
	return peers
}

// TestOwnershipPureFunction is the coordination-free acceptance test:
// rings built from any permutation of the same peer set assign every one
// of 1k keys the same owner and the same full rendezvous order, so N
// nodes agree without talking to each other.
func TestOwnershipPureFunction(t *testing.T) {
	peers := testPeers("a", "b", "c", "d", "e")
	keys := testKeys(1000)
	ref := NewRing(peers, 0)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]Peer(nil), peers...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		r := NewRing(shuffled, 0)
		for _, k := range keys {
			if got, want := r.Owner(k), ref.Owner(k); got != want {
				t.Fatalf("trial %d key %s: owner %q != %q", trial, k[:12], got, want)
			}
			got, want := r.Rank(k), ref.Rank(k)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d key %s: rank %v != %v", trial, k[:12], got, want)
				}
			}
		}
	}
}

// TestRankIsOwnerFirstAndComplete: Rank[0] agrees with Owner and the
// rank covers every peer exactly once.
func TestRankIsOwnerFirstAndComplete(t *testing.T) {
	r := NewRing(testPeers("a", "b", "c"), 0)
	for _, k := range testKeys(200) {
		rank := r.Rank(k)
		if len(rank) != 3 {
			t.Fatalf("rank length %d", len(rank))
		}
		if rank[0] != r.Owner(k) {
			t.Fatalf("key %s: rank[0] %q != owner %q", k[:12], rank[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, id := range rank {
			if seen[id] {
				t.Fatalf("key %s: duplicate %q in rank", k[:12], id)
			}
			seen[id] = true
		}
	}
}

// TestRemovalRemapsOnlyRemovedPeer is the minimal-disruption property
// that keeps caches warm across a peer death: dropping one peer moves
// exactly the keys that peer owned, and every surviving key keeps its
// owner.
func TestRemovalRemapsOnlyRemovedPeer(t *testing.T) {
	full := NewRing(testPeers("a", "b", "c", "d", "e"), 0)
	without := NewRing(testPeers("a", "b", "d", "e"), 0) // "c" removed
	keys := testKeys(1000)

	moved, owned := 0, 0
	for _, k := range keys {
		before, after := full.Owner(k), without.Owner(k)
		if after == "c" {
			t.Fatalf("key %s assigned to removed peer", k[:12])
		}
		if before == "c" {
			owned++
			// The orphaned slice must land on the key's next-in-rank
			// survivor, which is what the fallback path routes to.
			rank := full.Rank(k)
			if rank[1] != after {
				t.Errorf("key %s: remapped to %q, want next-in-rank %q", k[:12], after, rank[1])
			}
			continue
		}
		if before != after {
			moved++
		}
	}
	if owned == 0 {
		t.Fatal("degenerate key set: removed peer owned nothing")
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed peer changed owner", moved)
	}
}

// TestSharesBalancedAndWeighted: equal-weight peers split the key space
// near-evenly, and a double-weight peer wins about twice the share.
func TestSharesBalancedAndWeighted(t *testing.T) {
	even := NewRing(testPeers("a", "b", "c", "d"), 0)
	for id, share := range even.Shares(4096) {
		if share < 0.15 || share > 0.35 {
			t.Errorf("unweighted peer %s share %.3f, want ~0.25", id, share)
		}
	}

	peers := testPeers("a", "b", "c")
	peers[0].Weight = 2 // a holds twice the virtual nodes
	weighted := NewRing(peers, 0)
	shares := weighted.Shares(4096)
	if shares["a"] < 1.4*shares["b"] || shares["a"] < 1.4*shares["c"] {
		t.Errorf("weight-2 peer share %.3f vs %.3f/%.3f, want ~2x", shares["a"], shares["b"], shares["c"])
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:8080, b=http://h2:8080,")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].ID != "a" || peers[1].URL != "http://h2:8080" {
		t.Fatalf("parsed %+v", peers)
	}
	for _, bad := range []string{"", "justanid", "=http://h", "a=", ","} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
	}{
		{"empty", Options{SelfID: "a"}},
		{"self missing", Options{SelfID: "x", Peers: testPeers("a", "b")}},
		{"duplicate id", Options{SelfID: "a", Peers: testPeers("a", "a")}},
		{"empty url", Options{SelfID: "a", Peers: []Peer{{ID: "a"}}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.opt); err == nil {
			t.Errorf("%s: New accepted", tc.name)
		}
	}
	c, err := New(Options{SelfID: "a", Peers: testPeers("a", "b")})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Self() != "a" || c.Ring().Len() != 2 {
		t.Errorf("cluster %q len %d", c.Self(), c.Ring().Len())
	}
}
