package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"repro/internal/jobs"
)

// FuzzPeerResponseDecode hammers the single function every byte from a
// peer passes through. Whatever the wire delivers — corrupt digests,
// hostile JSON, mismatched content addresses, absurd statuses — the
// decoder must never panic, and its safety invariants must hold:
//
//   - a result is returned only for status 200;
//   - a carried digest that does not match the body can never yield a
//     result (integrity beats parsability);
//   - a returned result's ID always equals the requested content
//     address when one was given;
//   - every error is classified: terminal spec verdict, corrupt reply,
//     or peer-unavailable — all of which wrap the jobs taxonomy.
func FuzzPeerResponseDecode(f *testing.F) {
	goodID := "4bf5122f344554c53bde2ebb8cd2b7e3d1600ad631c385a5d7cce23c7785459a"
	good, _ := json.Marshal(&jobs.Result{ID: goodID})
	f.Add(http.StatusOK, "", []byte("{}"), "")
	f.Add(http.StatusOK, bodyDigest(good), good, goodID)
	f.Add(http.StatusOK, bodyDigest([]byte("x")), good, goodID) // digest mismatch
	f.Add(http.StatusBadRequest, "", []byte(`{"error":"bad spec"}`), goodID)
	f.Add(http.StatusServiceUnavailable, "", []byte(`{"error":"breaker open"}`), "")
	f.Add(http.StatusOK, "", []byte(`{"id":"aaaa"}`), goodID) // wrong address
	f.Add(http.StatusOK, "", []byte("not json"), "")
	f.Add(-17, "zzz", []byte{0xff, 0x00}, "id")

	f.Fuzz(func(t *testing.T, status int, digest string, body []byte, expectID string) {
		res, err := decodePeerResponse("fuzz-peer", status, digest, body, expectID)
		if err == nil {
			if res == nil {
				t.Fatal("nil result with nil error")
			}
			if status != http.StatusOK {
				t.Fatalf("result produced from status %d", status)
			}
			if digest != "" && bodyDigest(body) != digest {
				t.Fatal("result produced from a body failing its digest")
			}
			if expectID != "" && res.ID != expectID {
				t.Fatalf("result id %q escaped the expectID %q check", res.ID, expectID)
			}
			return
		}
		if res != nil {
			t.Fatal("non-nil result alongside an error")
		}
		if !errors.Is(err, jobs.ErrSpec) && !errors.Is(err, jobs.ErrPeerUnavailable) {
			t.Fatalf("unclassified peer error: %v", err)
		}
		if digest != "" && bodyDigest(body) != digest && !errors.Is(err, ErrCorruptReply) {
			t.Fatalf("digest mismatch not flagged corrupt: %v", err)
		}
	})
}
