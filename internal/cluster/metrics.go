package cluster

import "sync/atomic"

// Metrics counts the cluster routing decisions GET /metrics exposes.
// All fields are safe for concurrent use.
type Metrics struct {
	// Forwarded counts requests proxied to a peer and answered by one.
	Forwarded atomic.Int64
	// Local counts requests this node served itself (it owned the spec,
	// or the request arrived already forwarded).
	Local atomic.Int64
	// Hedged counts hedge requests launched because the current target
	// sat past the latency threshold.
	Hedged atomic.Int64
	// Fallback counts requests served away from their true owner — the
	// owner was dead or unreachable, so the next node in rendezvous
	// order (possibly this one) computed without the warm cache.
	Fallback atomic.Int64
	// ForwardErrors counts individual peer requests that failed with an
	// availability error (transport failure, 429/5xx).
	ForwardErrors atomic.Int64
	// DigestRejected counts peer responses discarded because their body
	// did not hash to the X-Gapd-Result-Digest they carried (or their
	// payload did not match the expected content address) — wire
	// corruption converted into a retry instead of a wrong answer.
	DigestRejected atomic.Int64
	// Replicated counts completed results successfully pushed to a
	// replica peer at completion time.
	Replicated atomic.Int64
	// ReplicaHits counts requests answered from a peer's replica via
	// GET /v1/results after the owner path failed — finished work a
	// partition could not un-finish.
	ReplicaHits atomic.Int64
	// AntiEntropyRepaired counts results the anti-entropy loop found
	// missing on a replica peer and re-pushed — the convergence signal
	// after a partition heals.
	AntiEntropyRepaired atomic.Int64
	// ReadRepaired counts locally corrupt or quarantined results healed
	// by fetching a verified copy from the replica set on the read path
	// — each one a recompute the scrub + repair machinery did not pay
	// for.
	ReadRepaired atomic.Int64
	// FlapsSuppressed counts dead->alive promotions withheld by flap
	// damping because the peer had not yet produced the required streak
	// of consecutive probe successes.
	FlapsSuppressed atomic.Int64
	// HedgesSuppressed counts forwards whose hedge was disabled because
	// the request's remaining deadline budget was smaller than the hedge
	// threshold — a hedge that cannot finish is load, not insurance.
	HedgesSuppressed atomic.Int64
	// GossipRounds counts completed gossip protocol rounds (probe +
	// dissemination) on this node.
	GossipRounds atomic.Int64
	// HandoffMigrated counts results this node pushed to a new home
	// because ownership moved — a join re-ranked the ring, or this node
	// drained — each one a recompute the cluster did not pay for.
	HandoffMigrated atomic.Int64
	// HandoffFailed counts handoff pushes that could not be delivered
	// (target unreachable or rejecting); anti-entropy or a later sweep
	// retries them.
	HandoffFailed atomic.Int64
	// Suspected counts alive→suspect transitions in this node's gossip
	// view, locally observed or merged from peers.
	Suspected atomic.Int64
	// Refutations counts the times this node bumped its own incarnation
	// to override a peer's claim about it — the SWIM escape hatch that
	// keeps a briefly-unreachable node from being declared dead.
	Refutations atomic.Int64
}

// NewMetrics creates an empty metrics set.
func NewMetrics() *Metrics { return &Metrics{} }

// Counters snapshots the counters under the exact names the /metrics
// contract documents.
func (m *Metrics) Counters() map[string]int64 {
	return map[string]int64{
		"cluster_forwarded":            m.Forwarded.Load(),
		"cluster_local":                m.Local.Load(),
		"cluster_hedged":               m.Hedged.Load(),
		"cluster_fallback":             m.Fallback.Load(),
		"forward_errors":               m.ForwardErrors.Load(),
		"cluster_digest_rejected":      m.DigestRejected.Load(),
		"cluster_replicated":           m.Replicated.Load(),
		"cluster_replica_hits":         m.ReplicaHits.Load(),
		"cluster_antientropy_repaired": m.AntiEntropyRepaired.Load(),
		"cluster_read_repaired":        m.ReadRepaired.Load(),
		"cluster_flaps_suppressed":     m.FlapsSuppressed.Load(),
		"cluster_hedges_suppressed":    m.HedgesSuppressed.Load(),
		"cluster_gossip_rounds":        m.GossipRounds.Load(),
		"cluster_handoff_migrated":     m.HandoffMigrated.Load(),
		"cluster_handoff_failed":       m.HandoffFailed.Load(),
		"cluster_suspected":            m.Suspected.Load(),
		"cluster_refutations":          m.Refutations.Load(),
	}
}
