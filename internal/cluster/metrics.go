package cluster

import "sync/atomic"

// Metrics counts the cluster routing decisions GET /metrics exposes.
// All fields are safe for concurrent use.
type Metrics struct {
	// Forwarded counts requests proxied to a peer and answered by one.
	Forwarded atomic.Int64
	// Local counts requests this node served itself (it owned the spec,
	// or the request arrived already forwarded).
	Local atomic.Int64
	// Hedged counts hedge requests launched because the current target
	// sat past the latency threshold.
	Hedged atomic.Int64
	// Fallback counts requests served away from their true owner — the
	// owner was dead or unreachable, so the next node in rendezvous
	// order (possibly this one) computed without the warm cache.
	Fallback atomic.Int64
	// ForwardErrors counts individual peer requests that failed with an
	// availability error (transport failure, 429/5xx).
	ForwardErrors atomic.Int64
}

// NewMetrics creates an empty metrics set.
func NewMetrics() *Metrics { return &Metrics{} }

// Counters snapshots the counters under the exact names the /metrics
// contract documents.
func (m *Metrics) Counters() map[string]int64 {
	return map[string]int64{
		"cluster_forwarded": m.Forwarded.Load(),
		"cluster_local":     m.Local.Load(),
		"cluster_hedged":    m.Hedged.Load(),
		"cluster_fallback":  m.Fallback.Load(),
		"forward_errors":    m.ForwardErrors.Load(),
	}
}
