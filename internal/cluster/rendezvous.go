package cluster

import "sort"

// Ownership is rendezvous (highest-random-weight) hashing over the job's
// content address: every node, given only the static peer set and a spec
// hash, computes the same owner with zero coordination. Removing a peer
// remaps only the keys that peer owned — every other key keeps its owner
// (and therefore its warm cache entry). Virtual nodes smooth the split
// and implement capacity weighting: a peer with Weight w holds w times
// the virtual nodes and so wins ~w times the key space.
//
// The hot path is Owner: one FNV-1a pass over the key, then one cheap
// integer mix per virtual node against precomputed per-vnode hashes.
// Nothing allocates, so a lookup stays deep in sub-microsecond territory
// (see BenchmarkOwnerLookup).

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211

	// DefaultVNodes is the virtual-node multiplier per unit of peer
	// weight. 16 vnodes/peer keeps the worst-case share skew of an
	// unweighted ring within a few percent without slowing Owner.
	DefaultVNodes = 16
)

// fnv64a hashes s with FNV-1a (allocation-free).
func fnv64a(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection used to
// combine a precomputed vnode hash with the key hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Ring is an immutable rendezvous-hash view of a peer set. Construction
// sorts peers by ID, so two rings built from any permutation of the same
// peer set are identical — the property that makes ownership a pure
// function of (peer set, key).
type Ring struct {
	ids     []string
	vhashes [][]uint64 // per peer: precomputed hash per virtual node
}

// NewRing builds a ring over peers with vnodesPerWeight virtual nodes
// per unit of weight (<=0 selects DefaultVNodes; a peer's Weight <=0
// counts as 1).
func NewRing(peers []Peer, vnodesPerWeight int) *Ring {
	if vnodesPerWeight <= 0 {
		vnodesPerWeight = DefaultVNodes
	}
	sorted := append([]Peer(nil), peers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	r := &Ring{
		ids:     make([]string, len(sorted)),
		vhashes: make([][]uint64, len(sorted)),
	}
	for i, p := range sorted {
		w := p.Weight
		if w <= 0 {
			w = 1
		}
		vh := make([]uint64, w*vnodesPerWeight)
		base := fnv64a(p.ID)
		for v := range vh {
			vh[v] = mix64(base + uint64(v)*0x9e3779b97f4a7c15)
		}
		r.ids[i] = p.ID
		r.vhashes[i] = vh
	}
	return r
}

// Len reports the number of peers on the ring.
func (r *Ring) Len() int { return len(r.ids) }

// Peers returns the ring's peer IDs in sorted order.
func (r *Ring) Peers() []string { return append([]string(nil), r.ids...) }

// score is the peer's HRW score for a pre-hashed key: the max over its
// virtual nodes of the mixed (vnode, key) hash.
func (r *Ring) score(i int, keyHash uint64) uint64 {
	best := uint64(0)
	for _, vh := range r.vhashes[i] {
		if s := mix64(vh ^ keyHash); s > best {
			best = s
		}
	}
	return best
}

// Owner returns the peer that owns key: the highest HRW score, ties
// broken by the smaller ID (ids are sorted, so the first winner stands).
// Owner is the allocation-free hot path.
func (r *Ring) Owner(key string) string {
	if len(r.ids) == 0 {
		return ""
	}
	kh := fnv64a(key)
	bestIdx, bestScore := 0, r.score(0, kh)
	for i := 1; i < len(r.ids); i++ {
		if s := r.score(i, kh); s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	return r.ids[bestIdx]
}

// Rank returns every peer in descending HRW order for key: Rank[0] is
// the owner, Rank[1] the first fallback/hedge target, and so on. The
// order is the same on every node, which is what lets a hedged read race
// the owner against "the next node in rendezvous order" without
// coordination.
func (r *Ring) Rank(key string) []string {
	kh := fnv64a(key)
	type scored struct {
		id    string
		score uint64
	}
	s := make([]scored, len(r.ids))
	for i, id := range r.ids {
		s[i] = scored{id, r.score(i, kh)}
	}
	sort.Slice(s, func(i, j int) bool {
		if s[i].score != s[j].score {
			return s[i].score > s[j].score
		}
		return s[i].id < s[j].id
	})
	out := make([]string, len(s))
	for i := range s {
		out[i] = s[i].id
	}
	return out
}

// Shares estimates each peer's ownership fraction by ranking sample
// synthetic keys — the balance figure GET /v1/cluster reports.
func (r *Ring) Shares(sample int) map[string]float64 {
	if sample <= 0 {
		sample = 1024
	}
	counts := make(map[string]int, len(r.ids))
	var key [24]byte
	for i := 0; i < sample; i++ {
		n := i
		k := key[:0]
		k = append(k, "share-"...)
		for {
			k = append(k, byte('a'+n%16))
			n /= 16
			if n == 0 {
				break
			}
		}
		counts[r.Owner(string(k))]++
	}
	shares := make(map[string]float64, len(r.ids))
	for _, id := range r.ids {
		shares[id] = float64(counts[id]) / float64(sample)
	}
	return shares
}
