package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"repro/internal/cluster"
)

// BenchmarkOwnerLookup measures the routing hot path: one Owner call per
// request on every node. The acceptance bar is sub-microsecond with zero
// allocations — cheap enough that sharding adds no measurable CPU to a
// request (numbers recorded in EXPERIMENTS.md).
func BenchmarkOwnerLookup(b *testing.B) {
	for _, peers := range []int{3, 5, 16} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			ps := make([]cluster.Peer, peers)
			for i := range ps {
				ps[i] = cluster.Peer{ID: fmt.Sprintf("node-%02d", i), URL: "http://x"}
			}
			r := cluster.NewRing(ps, 0)
			keys := make([]string, 256)
			for i := range keys {
				keys[i] = fmt.Sprintf("%064x", i*2654435761)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r.Owner(keys[i%len(keys)]) == "" {
					b.Fatal("empty owner")
				}
			}
		})
	}
}

// BenchmarkRank measures the full routing decision (owner plus the
// hedge/fallback order) — the path taken when a request must forward.
func BenchmarkRank(b *testing.B) {
	ps := make([]cluster.Peer, 5)
	for i := range ps {
		ps[i] = cluster.Peer{ID: fmt.Sprintf("node-%02d", i), URL: "http://x"}
	}
	r := cluster.NewRing(ps, 0)
	key := fmt.Sprintf("%064x", 123456789)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.Rank(key)) != 5 {
			b.Fatal("short rank")
		}
	}
}

// BenchmarkClusterForwarding measures one whole forwarded request — an
// entry node proxying a cache-warm evaluate to its owner over real HTTP —
// which bounds the latency tax of landing on the wrong shard.
func BenchmarkClusterForwarding(b *testing.B) {
	nodes := startCluster(b, 2, nil)
	spec := clusterBatch(13)[0]
	owner := nodes[0]
	if nodes[0].clu.Ring().Owner(spec.Hash()) != nodes[0].id {
		owner = nodes[1]
	}
	entry := otherThan(nodes, owner)
	body, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}
	post := func() {
		resp, err := http.Post(entry.srv.URL+"/v1/evaluate", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	post() // warm the owner's cache so the benchmark isolates forwarding
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post()
	}
	b.StopTimer()
	if got := entry.clu.Metrics().Counters()["cluster_forwarded"]; got < int64(b.N) {
		b.Fatalf("forwarded %d < %d requests", got, b.N)
	}
}
