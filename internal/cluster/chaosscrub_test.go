// Storage-integrity chaos suite (`make chaos-scrub`): seeded bit-flips
// are injected into live segment files under a running 3-node cluster,
// and the self-healing pipeline — deterministic scrub, quarantine,
// read-repair from the replica set, recompute as last resort — must
// detect every injected fault, heal it exactly once, and never serve a
// corrupt byte: every answer stays byte-identical to the single-node
// serial reference for the fixed seed matrix {1, 7, 42}.
package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/cluster"
	"repro/internal/jobs"
)

// storeNodes boots n cluster nodes that each carry a disk tier and no
// RAM cache (CacheEntries -1), so every read actually crosses the
// store's verification path. Returns the nodes and each node's store
// directory for on-disk fault injection.
func storeNodes(t *testing.T, n int, seed int64, tweak func(*cluster.Options)) ([]*node, map[string]string) {
	t.Helper()
	dirs := map[string]string{}
	nodes := startClusterPools(t, n, func(id string) jobs.Options {
		dir := t.TempDir()
		st, err := cas.Open(cas.Options{Dir: dir, SegmentBytes: 1 << 20, ScrubSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		dirs[id] = dir
		return jobs.Options{Workers: 2, CacheEntries: -1, Store: st}
	}, tweak)
	return nodes, dirs
}

// corruptRecords flips one byte of each target record's on-disk bytes
// inside dir: targets maps content address -> rel, the flip position
// past the record start. Offsets are located in a single clean scan per
// segment file before any byte is touched (an already-flipped record
// would stop a decode walk cold). GCS1 layout for picking rel: magic
// 0:4, content address 4:36, SHA-256 digest 36:68, body length + header
// CRC 68:76, body from 76, body CRC trailing — so rel 5 rots the
// address, rel 40 the digest, rel 78 the body.
func corruptRecords(t *testing.T, dir string, targets map[string]int64) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.cas"))
	if err != nil {
		t.Fatal(err)
	}
	hit := map[string]bool{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		type flip struct {
			pos int64
			b   byte
		}
		var flips []flip
		for off := 0; off < len(data); {
			rec, n, derr := cas.DecodeRecord(data[off:])
			if derr != nil {
				break // torn tail or end of records
			}
			if rel, ok := targets[rec.Addr]; ok && !hit[rec.Addr] {
				if rel >= int64(n) {
					t.Fatalf("rel %d past record size %d", rel, n)
				}
				flips = append(flips, flip{int64(off) + rel, data[int64(off)+rel] ^ 0x40})
				hit[rec.Addr] = true
			}
			off += n
		}
		if len(flips) == 0 {
			continue
		}
		f, err := os.OpenFile(p, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, fl := range flips {
			if _, err := f.WriteAt([]byte{fl.b}, fl.pos); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for addr := range targets {
		if !hit[addr] {
			t.Fatalf("record %s not found under %s", addr[:12], dir)
		}
	}
}

// corruptRecord is corruptRecords for a single address.
func corruptRecord(t *testing.T, dir, addr string, rel int64) {
	t.Helper()
	corruptRecords(t, dir, map[string]int64{addr: rel})
}

// scrubPasses drives the store through `passes` complete scrub passes
// (the first-ever pass starts at the seeded origin and covers a suffix;
// the second is always a full sweep, so two passes = full coverage).
func scrubPasses(t *testing.T, st *cas.Store, passes int) {
	t.Helper()
	done := 0
	for i := 0; i < 10_000 && done < passes; i++ {
		if st.Stats().Records == 0 {
			return // nothing live left to walk (empty, or all condemned)
		}
		if pr := st.ScrubStep(64); pr.PassComplete {
			done++
		}
	}
	if done < passes {
		t.Fatalf("scrub completed %d of %d passes", done, passes)
	}
}

// waitStoredOn polls until the result is durably held by at least want
// nodes — how a test observes the asynchronous completion-time
// replica push without racing it.
func waitStoredOn(t *testing.T, nodes []*node, id string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		n := 0
		for _, nd := range nodes {
			if nd.pool.HasStored(id) {
				n++
			}
		}
		if n >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("result %s never reached %d nodes", id[:12], want)
}

// corruptionTargets are the byte offsets the injection rotates through:
// a body byte (body CRC catches it), an address byte and a digest byte
// (header CRC catches both). Offsets per the GCS1 layout in
// corruptRecord's comment.
var corruptionTargets = []int64{78, 5, 40}

// TestChaosScrubReadRepair is the storage-integrity acceptance drill:
// a 3-node cluster (replication factor 2, RAM caches off) computes the
// full spec batch, then every result's owner copy is bit-flipped on
// disk — body, address, and digest bytes, chosen by the seeded
// schedule. Two full scrub passes per store must condemn exactly the
// injected records; re-submission must heal each one by fetching the
// replica's verified copy (zero recomputes) and serve bytes identical
// to the serial reference; and the counter chain must match the fault
// count exactly: scrub_corrupt == cas_corrupt_reads ==
// cluster_read_repaired == scrub_repaired == injected, with nothing
// left in quarantine.
func TestChaosScrubReadRepair(t *testing.T) {
	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			specs := clusterBatch(seed)
			ref := serialReference(t, specs)
			nodes, dirs := storeNodes(t, 3, seed, func(o *cluster.Options) {
				o.Replicas = 2
			})

			// Phase 1: compute everything through the true owners and wait
			// for the completion-time push to land on each replica.
			owners := map[string]*node{}
			for _, spec := range specs {
				owner := byID(t, nodes, nodes[0].clu.Ring().Owner(spec.Hash()))
				res := submit(t, owner, spec)
				if got, want := normalizedJSON(t, res), ref[res.ID]; !bytes.Equal(got, want) {
					t.Fatalf("%s: pre-fault result differs from serial reference", spec.Kind)
				}
				owners[res.ID] = owner
				waitStoredOn(t, nodes, res.ID, 2)
			}

			started := map[string]int64{}
			for _, nd := range nodes {
				started[nd.id] = nd.pool.Metrics().JobsStarted.Load()
			}

			// Phase 2: rot the owner's copy of every result — the byte
			// chosen by the seeded schedule rotates across body, address,
			// and digest targets.
			rng := rand.New(rand.NewSource(seed))
			injected := 0
			perDir := map[string]map[string]int64{}
			for _, spec := range specs { // spec order: the schedule is seed-deterministic
				id := spec.Hash()
				owner := owners[id]
				if perDir[owner.id] == nil {
					perDir[owner.id] = map[string]int64{}
				}
				perDir[owner.id][id] = corruptionTargets[rng.Intn(len(corruptionTargets))]
				injected++
			}
			for nid, targets := range perDir {
				corruptRecords(t, dirs[nid], targets)
			}

			// Phase 3: two full scrub passes per store. Replica copies are
			// clean; only the injected records may be condemned.
			for _, nd := range nodes {
				scrubPasses(t, nd.pool.Store(), 2)
			}
			var scrubCorrupt, quarantined int64
			for _, nd := range nodes {
				st := nd.pool.Store().Stats()
				scrubCorrupt += st.ScrubCorrupt
				quarantined += int64(st.Quarantined)
			}
			if scrubCorrupt != int64(injected) {
				t.Errorf("scrub_corrupt = %d, want %d (one per injected fault)", scrubCorrupt, injected)
			}
			if quarantined != int64(injected) {
				t.Errorf("quarantined = %d, want %d before repair", quarantined, injected)
			}

			// Phase 4: re-submission through the owner must repair from the
			// replica — byte-identical answers, zero recomputes.
			for _, spec := range specs {
				res := submit(t, owners[spec.Hash()], spec)
				if got, want := normalizedJSON(t, res), ref[res.ID]; !bytes.Equal(got, want) {
					t.Errorf("%s: post-repair result differs from serial reference\n got: %s\nwant: %s",
						spec.Kind, got, want)
				}
				if !res.Cached {
					t.Errorf("%s: repaired result not served as a hit", spec.Kind)
				}
			}

			var corruptReads, readRepaired, scrubRepaired, leftover int64
			for _, nd := range nodes {
				if d := nd.pool.Metrics().JobsStarted.Load() - started[nd.id]; d != 0 {
					t.Errorf("node %s recomputed %d jobs; read-repair must cost zero", nd.id, d)
				}
				corruptReads += nd.pool.Metrics().CASCorruptReads.Load()
				readRepaired += nd.clu.Metrics().Counters()["cluster_read_repaired"]
				st := nd.pool.Store().Stats()
				scrubRepaired += st.ScrubRepaired
				leftover += int64(st.Quarantined)
				if rep := nd.pool.Store().ScrubReport(); int64(len(rep)) != int64(st.Quarantined) {
					t.Errorf("node %s: scrub report %d entries, stats say %d", nd.id, len(rep), st.Quarantined)
				}
			}
			if corruptReads != int64(injected) {
				t.Errorf("cas_corrupt_reads = %d, want %d", corruptReads, injected)
			}
			if readRepaired != int64(injected) {
				t.Errorf("cluster_read_repaired = %d, want %d", readRepaired, injected)
			}
			if scrubRepaired != int64(injected) {
				t.Errorf("scrub_repaired = %d, want %d", scrubRepaired, injected)
			}
			if leftover != 0 {
				t.Errorf("quarantined = %d after repair, want 0", leftover)
			}
		})
	}
}

// TestReadRepairPrefersReplica pins the repair ordering contract for
// the healthy-replica case: corrupt local copy + clean replica =
// read-repair, not recompute.
func TestReadRepairPrefersReplica(t *testing.T) {
	spec := clusterBatch(7)[0]
	nodes, dirs := storeNodes(t, 2, 7, func(o *cluster.Options) { o.Replicas = 2 })
	owner := byID(t, nodes, nodes[0].clu.Ring().Owner(spec.Hash()))

	res := submit(t, owner, spec)
	waitStoredOn(t, nodes, res.ID, 2)
	want := normalizedJSON(t, res)
	started := owner.pool.Metrics().JobsStarted.Load()

	corruptRecord(t, dirs[owner.id], res.ID, corruptionTargets[0])
	scrubPasses(t, owner.pool.Store(), 2)
	if !owner.pool.Store().Quarantined(res.ID) {
		t.Fatal("scrub did not quarantine the corrupted record")
	}

	res2 := submit(t, owner, spec)
	if !bytes.Equal(normalizedJSON(t, res2), want) {
		t.Error("repaired result differs from the original")
	}
	if d := owner.pool.Metrics().JobsStarted.Load() - started; d != 0 {
		t.Errorf("recomputed %d jobs with a healthy replica available", d)
	}
	if got := owner.clu.Metrics().Counters()["cluster_read_repaired"]; got != 1 {
		t.Errorf("cluster_read_repaired = %d, want 1", got)
	}
	if owner.pool.Store().Quarantined(res.ID) {
		t.Error("quarantine not cleared by the repairing re-Put")
	}
	if got := owner.pool.Store().Stats().ScrubRepaired; got != 1 {
		t.Errorf("scrub_repaired = %d, want 1", got)
	}
}

// TestReadRepairNoReplicaRecomputesOnce pins the last-resort contract:
// with no replica to fetch from (replication factor 1), a quarantined
// record costs exactly one recompute, which itself heals the store.
func TestReadRepairNoReplicaRecomputesOnce(t *testing.T) {
	spec := clusterBatch(1)[0]
	nodes, dirs := storeNodes(t, 1, 1, nil) // Replicas defaults to 1: off
	nd := nodes[0]

	res := submit(t, nd, spec)
	want := normalizedJSON(t, res)
	started := nd.pool.Metrics().JobsStarted.Load()

	corruptRecord(t, dirs[nd.id], res.ID, corruptionTargets[1])
	scrubPasses(t, nd.pool.Store(), 2)
	if !nd.pool.Store().Quarantined(res.ID) {
		t.Fatal("scrub did not quarantine the corrupted record")
	}

	res2 := submit(t, nd, spec)
	if !bytes.Equal(normalizedJSON(t, res2), want) {
		t.Error("recomputed result differs from the original")
	}
	if d := nd.pool.Metrics().JobsStarted.Load() - started; d != 1 {
		t.Errorf("JobsStarted delta = %d, want exactly 1 recompute", d)
	}
	if nd.pool.Store().Quarantined(res.ID) {
		t.Error("recompute's re-Put did not clear the quarantine")
	}

	// The healed store serves the third submission without computing.
	res3 := submit(t, nd, spec)
	if !res3.Cached {
		t.Error("healed record not served as a hit")
	}
	if d := nd.pool.Metrics().JobsStarted.Load() - started; d != 1 {
		t.Errorf("JobsStarted delta = %d after heal, want still 1", d)
	}
}

// TestReadRepairBothCorrupt pins the worst case: every copy of a
// result rots. The owner recomputes exactly once (a corrupt replica
// 404s rather than serve rot), and the next anti-entropy sweep re-pushes
// the recomputed result so both stores end healed.
func TestReadRepairBothCorrupt(t *testing.T) {
	spec := clusterBatch(42)[0]
	nodes, dirs := storeNodes(t, 2, 42, func(o *cluster.Options) { o.Replicas = 2 })
	owner := byID(t, nodes, nodes[0].clu.Ring().Owner(spec.Hash()))
	replica := otherThan(nodes, owner)

	res := submit(t, owner, spec)
	waitStoredOn(t, nodes, res.ID, 2)
	want := normalizedJSON(t, res)
	started := owner.pool.Metrics().JobsStarted.Load()

	corruptRecord(t, dirs[owner.id], res.ID, corruptionTargets[0])
	corruptRecord(t, dirs[replica.id], res.ID, corruptionTargets[2])
	scrubPasses(t, owner.pool.Store(), 2)
	scrubPasses(t, replica.pool.Store(), 2)

	res2 := submit(t, owner, spec)
	if !bytes.Equal(normalizedJSON(t, res2), want) {
		t.Error("recovered result differs from the original")
	}
	if d := owner.pool.Metrics().JobsStarted.Load() - started; d != 1 {
		t.Errorf("JobsStarted delta = %d, want exactly 1 (replica rot must not double-compute)", d)
	}
	if owner.pool.Store().Quarantined(res.ID) {
		t.Error("owner quarantine not cleared by the recompute")
	}

	// The replica's condemned copy heals on the next repair round: the
	// recompute's own completion-time push may land first, and the
	// anti-entropy sweep is the backstop — drive sweeps until the
	// verified result is back and the quarantine is gone.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if replica.pool.HasStored(res.ID) && !replica.pool.Store().Quarantined(res.ID) {
			break
		}
		owner.clu.AntiEntropyNow(context.Background())
		time.Sleep(5 * time.Millisecond)
	}
	if replica.pool.Store().Quarantined(res.ID) {
		t.Error("replica quarantine never cleared by repair push")
	}
	if !replica.pool.HasStored(res.ID) {
		t.Error("replica does not hold the repaired result")
	}
}
