package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// Health is a peer's observed availability.
type Health string

// Peer health states. Degraded peers are still routed to — a node whose
// breaker is open or whose journal is unwritable answers cached reads
// fine — only dead peers are skipped at route time.
const (
	HealthAlive    Health = "alive"
	HealthDegraded Health = "degraded"
	HealthDead     Health = "dead"
)

// PeerStatus is the JSON view of one peer's membership state
// (GET /v1/cluster).
type PeerStatus struct {
	ID               string `json:"id"`
	URL              string `json:"url"`
	Weight           int    `json:"weight"`
	Health           Health `json:"health"`
	ConsecutiveFails int    `json:"consecutive_failures"`
	LastProbe        string `json:"last_probe,omitempty"`
	LastError        string `json:"last_error,omitempty"`
}

// peerState is one peer's mutable health record.
type peerState struct {
	peer      Peer
	health    Health
	fails     int
	succs     int // consecutive successes while dead (flap damping)
	lastProbe time.Time
	lastErr   string
}

// membership tracks the static peer list and each peer's health, fed by
// two signals: periodic /healthz probes, and passive reports from the
// forwarding client (a failed forward counts like a failed probe, so a
// crashed peer is declared dead without waiting out probe intervals).
type membership struct {
	self       string
	order      []string // peer ids in config order (for stable snapshots)
	interval   time.Duration
	timeout    time.Duration
	deadAfter  int
	aliveAfter int // consecutive successes required to promote dead->alive
	metrics    *Metrics
	hc         *http.Client

	mu     sync.Mutex
	states map[string]*peerState

	cancel context.CancelFunc
	done   chan struct{}
}

func newMembership(self string, peers []Peer, interval, timeout time.Duration,
	deadAfter, aliveAfter int, metrics *Metrics, rt http.RoundTripper) *membership {
	m := &membership{
		self:       self,
		interval:   interval,
		timeout:    timeout,
		deadAfter:  deadAfter,
		aliveAfter: aliveAfter,
		metrics:    metrics,
		hc:         &http.Client{Timeout: timeout, Transport: rt},
		states:     make(map[string]*peerState, len(peers)),
	}
	for _, p := range peers {
		m.order = append(m.order, p.ID)
		// Optimistic start: peers are presumed alive until probes or
		// forward failures say otherwise, so a cold cluster routes
		// immediately.
		m.states[p.ID] = &peerState{peer: p, health: HealthAlive}
	}
	return m
}

// start launches the probe loop: one immediate sweep, then one per
// interval, until ctx is canceled or stop is called.
func (m *membership) start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	m.cancel = cancel
	m.done = make(chan struct{})
	go func() {
		defer close(m.done)
		m.probeAll(ctx)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.probeAll(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
}

// stop ends the probe loop and waits for it to exit.
func (m *membership) stop() {
	if m.cancel == nil {
		return
	}
	m.cancel()
	<-m.done
}

// probeAll probes every non-self peer concurrently.
func (m *membership) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	//gaplint:allow lockdiscipline — order is written once in newMembership before the value is published and is immutable thereafter; lock-free iteration is safe
	for _, id := range m.order {
		if id == m.self {
			continue
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			m.probe(ctx, id)
		}(id)
	}
	wg.Wait()
}

// probe GETs one peer's /healthz and folds the verdict into its state:
// 200 is alive, 503 is degraded-but-answering, anything else (including
// transport errors) counts toward the dead threshold.
func (m *membership) probe(ctx context.Context, id string) {
	m.mu.Lock()
	url := m.states[id].peer.URL
	m.mu.Unlock()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		m.record(id, HealthDead, err.Error())
		return
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		m.record(id, HealthDead, err.Error())
		return
	}
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		m.record(id, HealthAlive, "")
	case http.StatusServiceUnavailable:
		m.record(id, HealthDegraded, "")
	default:
		m.record(id, HealthDead, resp.Status)
	}
}

// record folds one observation into the peer's state. Failure verdicts
// (HealthDead) only demote the peer after deadAfter consecutive
// failures. Success verdicts on a live peer take effect immediately,
// but a dead peer is flap-damped: it must produce aliveAfter
// consecutive successes before being promoted, so a link that is
// up-down-up-down does not bounce ownership (and every spec's warm
// cache) back and forth on each blip. Suppressed promotions are counted
// in cluster_flaps_suppressed.
func (m *membership) record(id string, verdict Health, errMsg string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.states[id]
	if !ok {
		return
	}
	st.lastProbe = time.Now()
	st.lastErr = errMsg
	switch verdict {
	case HealthAlive, HealthDegraded:
		st.fails = 0
		if st.health == HealthDead {
			st.succs++
			if st.succs < m.aliveAfter {
				if m.metrics != nil {
					m.metrics.FlapsSuppressed.Add(1)
				}
				return
			}
		}
		st.succs = 0
		st.health = verdict
	case HealthDead:
		st.fails++
		st.succs = 0
		if st.fails >= m.deadAfter {
			st.health = HealthDead
		}
	}
}

// reportSuccess is the passive health signal from a successful forward.
func (m *membership) reportSuccess(id string) { m.record(id, HealthAlive, "") }

// reportFailure is the passive health signal from a failed forward.
func (m *membership) reportFailure(id string, err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	m.record(id, HealthDead, msg)
}

// usable reports whether id may be routed to: self is always usable,
// other peers until they are declared dead.
func (m *membership) usable(id string) bool {
	if id == m.self {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.states[id]
	return ok && st.health != HealthDead
}

// health returns the peer's current state (self is always alive).
func (m *membership) health(id string) Health {
	if id == m.self {
		return HealthAlive
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.states[id]; ok {
		return st.health
	}
	return HealthDead
}

// snapshot renders every peer's state in config order.
func (m *membership) snapshot() []PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerStatus, 0, len(m.order))
	for _, id := range m.order {
		st := m.states[id]
		ps := PeerStatus{
			ID:               id,
			URL:              st.peer.URL,
			Weight:           max(st.peer.Weight, 1),
			Health:           st.health,
			ConsecutiveFails: st.fails,
			LastError:        st.lastErr,
		}
		if id == m.self {
			ps.Health = HealthAlive
			ps.ConsecutiveFails = 0
			ps.LastError = ""
		}
		if !st.lastProbe.IsZero() {
			ps.LastProbe = st.lastProbe.UTC().Format(time.RFC3339Nano)
		}
		out = append(out, ps)
	}
	return out
}
