package sizing

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/wire"
)

// loadedAdder builds a CLA with wire loads so sizing has something to do.
func loadedAdder(t *testing.T, lib *cell.Library, w int) *netlist.Netlist {
	t.Helper()
	ad, err := circuits.CarryLookahead(lib, w)
	if err != nil {
		t.Fatal(err)
	}
	wl := wire.LoadModel{M: wire.NewModel(units.ASIC025), BlockAreaMM2: 1}
	for _, nt := range ad.N.Nets() {
		fo := len(nt.Sinks) + len(nt.RegSinks)
		if fo > 0 {
			nt.WireCap = wl.NetCap(fo)
		}
	}
	return ad.N
}

func worst(t *testing.T, n *netlist.Netlist) units.Tau {
	t.Helper()
	r, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r.WorstComb
}

func TestTILOSImprovesCriticalPath(t *testing.T) {
	lib := cell.Custom()
	n := loadedAdder(t, lib, 16)
	res, err := ContinuousTILOS(n, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup() < 1.15 {
		t.Fatalf("TILOS speedup = %.2f, want >= 1.15 (paper: 20%% or more)", res.Speedup())
	}
	if res.AreaAfter <= res.AreaBefore {
		t.Fatal("upsizing must cost area")
	}
	if res.Iters == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestTILOSNeverHurts(t *testing.T) {
	lib := cell.Custom()
	n := loadedAdder(t, lib, 8)
	before := worst(t, n)
	res, err := ContinuousTILOS(n, lib, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	after := worst(t, n)
	if after > before {
		t.Fatalf("TILOS made the design slower: %.1f -> %.1f FO4", before.FO4(), after.FO4())
	}
	if res.After != after {
		t.Fatalf("result After (%.2f) disagrees with reanalysis (%.2f)", res.After.FO4(), after.FO4())
	}
}

func TestDiscreteSnapCostsLittleOnRichLibrary(t *testing.T) {
	// Section 6.1: with a rich library of sizes, discrete drives cost
	// only 2-7% against continuous sizing.
	custom := cell.Custom()
	rich := cell.RichASIC()
	n := loadedAdder(t, custom, 16)
	res, err := ContinuousTILOS(n, custom, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	snapped, err := SnapToLibrary(n, rich, SnapNearest)
	if err != nil {
		t.Fatal(err)
	}
	penalty := float64(snapped)/float64(res.After) - 1
	if penalty < -0.02 {
		t.Fatalf("snap somehow improved timing by %.1f%%", -penalty*100)
	}
	if penalty > 0.12 {
		t.Fatalf("rich-library snap penalty = %.1f%%, want single digits (paper: 2-7%%)", penalty*100)
	}
}

func TestDiscreteSnapHurtsMoreOnTwoDriveLibrary(t *testing.T) {
	custom := cell.Custom()
	rich := cell.RichASIC()
	two := cell.RestrictDrives(rich, 1, 4)

	n1 := loadedAdder(t, custom, 16)
	res, err := ContinuousTILOS(n1, custom, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n2 := n1.Clone()
	richSnap, err := SnapToLibrary(n1, rich, SnapNearest)
	if err != nil {
		t.Fatal(err)
	}
	twoSnap, err := SnapToLibrary(n2, two, SnapNearest)
	if err != nil {
		t.Fatal(err)
	}
	if twoSnap <= richSnap {
		t.Fatalf("two-drive snap (%.1f FO4) should hurt more than rich snap (%.1f FO4)",
			twoSnap.FO4(), richSnap.FO4())
	}
	_ = res
}

func TestSnapUpNeverSlowerThanRequestedDrive(t *testing.T) {
	lib := cell.RichASIC()
	c, err := snapUp(lib, cell.FuncNand2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Drive < 5 {
		t.Fatalf("snap-up returned drive %g < 5", c.Drive)
	}
	// Beyond the ladder it returns the largest.
	c, _ = snapUp(lib, cell.FuncNand2, 1000)
	if c.Drive != 32 {
		t.Fatalf("snap-up beyond ladder = %g, want 32", c.Drive)
	}
}

func TestPowerAwareDownsizesOffCriticalGates(t *testing.T) {
	lib := cell.RichASIC()
	n := loadedAdder(t, lib, 8)
	// First upsize everything to X8 to create slack everywhere.
	for _, g := range n.Gates() {
		c, err := lib.ForDrive(g.Cell.Func, 8)
		if err != nil {
			t.Fatal(err)
		}
		g.Cell = c
	}
	areaBefore := n.TotalArea()
	before := worst(t, n)
	down, err := PowerAware(n, lib, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if down == 0 {
		t.Fatal("power-aware sizing downsized nothing on an oversized design")
	}
	if n.TotalArea() >= areaBefore {
		t.Fatal("downsizing must reduce area")
	}
	after := worst(t, n)
	if float64(after) > float64(before)*1.021 {
		t.Fatalf("power-aware sizing blew the slack budget: %.2f -> %.2f FO4", before.FO4(), after.FO4())
	}
}

func TestResynthesize(t *testing.T) {
	lib := cell.Custom()
	n := loadedAdder(t, lib, 16)
	res, err := Resynthesize(n, lib, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.After > res.Before {
		t.Fatal("resynthesis made things worse")
	}
	if res.String() == "" {
		t.Fatal("empty result description")
	}
}

func TestTILOSRespectsMaxDrive(t *testing.T) {
	lib := cell.Custom()
	n := loadedAdder(t, lib, 8)
	opt := DefaultOptions()
	opt.MaxDrive = 4
	if _, err := ContinuousTILOS(n, lib, opt); err != nil {
		t.Fatal(err)
	}
	for _, g := range n.Gates() {
		if g.Cell.Drive > 4+1e-9 {
			t.Fatalf("gate %d sized to %g, above cap 4", g.ID, g.Cell.Drive)
		}
	}
}
