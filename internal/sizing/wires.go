package sizing

import (
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/wire"
)

// WireResult reports a wire-sizing run.
type WireResult struct {
	Widened       int
	Before, After units.Tau
}

// Speedup is Before/After.
func (r WireResult) Speedup() float64 {
	if r.After == 0 {
		return 1
	}
	return float64(r.Before) / float64(r.After)
}

// WidenWires implements the paper's section 6 wire sizing: wires on the
// critical path are widened (within the process's width ladder) when the
// resistance reduction beats the capacitance increase. It requires the
// netlist to carry placement annotations (Net.LengthMM from
// place.Annotate); nets without length are skipped.
//
// The pass walks the critical path after each accepted widening, like
// TILOS does for gates, and stops when no critical wire benefits.
func WidenWires(n *netlist.Netlist, m wire.Model, maxIters int) (WireResult, error) {
	if maxIters <= 0 {
		maxIters = 100
	}
	first, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		return WireResult{}, err
	}
	res := WireResult{Before: first.WorstComb, After: first.WorstComb}

	reannotate := func(nt *netlist.Net, width float64) {
		nt.WidthMult = width
		nt.WireCap = m.CapOfLength(nt.LengthMM, width)
		load := n.Load(nt.ID) - nt.WireCap
		drive := 2.0
		if nt.Driver != netlist.None {
			drive = n.Gate(nt.Driver).Cell.Drive
		} else if nt.DriverReg != netlist.None {
			drive = n.Reg(nt.DriverReg).Cell.Drive
		}
		full := m.UnbufferedDelay(nt.LengthMM, width, drive, load)
		lumped := m.UnbufferedDelay(0, width, drive, load+nt.WireCap)
		extra := full - lumped
		if extra < 0 {
			extra = 0
		}
		nt.ExtraDelay = extra
	}

	// localDelay is the wire's own contribution: the driver's effort
	// into the net's total load plus the distributed extra.
	localDelay := func(nt *netlist.Net) float64 {
		drive := 2.0
		switch {
		case nt.Driver != netlist.None:
			drive = n.Gate(nt.Driver).Cell.Drive
		case nt.DriverReg != netlist.None:
			drive = n.Reg(nt.DriverReg).Cell.Drive
		}
		return float64(n.Load(nt.ID))/drive + float64(nt.ExtraDelay)
	}

	// Designs with symmetric parallel paths tie exactly, so a
	// strictly-global acceptance test starves: instead widen every net
	// whose *local* wire delay improves, as long as the global worst
	// path does not regress. Repeat passes until a pass changes nothing.
	worst := first.WorstComb
	for pass := 0; pass < 6; pass++ {
		changed := 0
		for _, nt := range n.Nets() {
			if res.Widened >= maxIters {
				break
			}
			if nt.LengthMM <= 0.2 || nt.WidthMult <= 0 {
				continue
			}
			if nt.WidthMult*2 > m.P.Metal.MaxWidthMult {
				continue
			}
			before := localDelay(nt)
			oldWidth, oldCap, oldExtra := nt.WidthMult, nt.WireCap, nt.ExtraDelay
			reannotate(nt, oldWidth*2)
			if localDelay(nt) >= before {
				nt.WidthMult, nt.WireCap, nt.ExtraDelay = oldWidth, oldCap, oldExtra
				continue
			}
			next, err := sta.Analyze(n, sta.Options{})
			if err != nil {
				return res, err
			}
			if next.WorstComb > worst {
				nt.WidthMult, nt.WireCap, nt.ExtraDelay = oldWidth, oldCap, oldExtra
				continue
			}
			worst = next.WorstComb
			res.Widened++
			changed++
		}
		if changed == 0 {
			break
		}
	}
	res.After = worst
	return res, nil
}
