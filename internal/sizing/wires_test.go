package sizing

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/units"
	"repro/internal/wire"
)

func TestWidenWiresHelpsResistiveNets(t *testing.T) {
	lib := cell.RichASIC()
	n, err := circuits.DatapathChain(lib, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := wire.NewModel(units.ASIC025)
	pl := place.Floorplan(n, place.Die{SideMM: 10}, place.Naive, 3)
	// No repeaters: long wires stay resistive, widening has headroom.
	pl.Annotate(n, place.AnnotateOptions{WireModel: m, Repeaters: false, LocalMM: 0.05})
	// Size the drivers first: against minimum-size drivers the driver
	// resistance dominates and widening (which adds capacitance) can
	// never win — wire sizing is a strong-driver optimization.
	if err := synth.SelectDrives(n, lib, nil); err != nil {
		t.Fatal(err)
	}

	before, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := WidenWires(n, m, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Widened == 0 {
		t.Fatal("no wires widened on a wire-dominated design")
	}
	if res.After >= before.WorstComb {
		t.Fatalf("widening did not help: %.1f -> %.1f FO4", before.CombFO4(), res.After.FO4())
	}
	// Against well-sized drivers, widening is a percent-level
	// optimization (the wire-cap effort grows as the resistance
	// shrinks) — consistent with the paper treating simultaneous
	// gate-and-wire sizing as marginal, future-tool territory (its
	// reference [6]).
	if res.Speedup() < 1.0005 {
		t.Fatalf("speedup %.4f too small", res.Speedup())
	}
	// Width ladder respected.
	for _, nt := range n.Nets() {
		if nt.WidthMult > m.P.Metal.MaxWidthMult {
			t.Fatalf("net %d widened to %.0fx, beyond process max %.0fx",
				nt.ID, nt.WidthMult, m.P.Metal.MaxWidthMult)
		}
	}
}

func TestWidenWiresNoOpWithoutAnnotation(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := wire.NewModel(units.ASIC025)
	res, err := WidenWires(ad.N, m, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Widened != 0 {
		t.Fatal("unannotated netlist must not be touched")
	}
	if res.Before != res.After {
		t.Fatal("timing changed without any widening")
	}
}

func TestWidenWiresNeverHurts(t *testing.T) {
	lib := cell.RichASIC()
	n, err := circuits.DatapathChain(lib, 16, 6)
	if err != nil {
		t.Fatal(err)
	}
	m := wire.NewModel(units.ASIC025)
	pl := place.Floorplan(n, place.Die{SideMM: 10}, place.Careful, 1)
	pl.Annotate(n, place.AnnotateOptions{WireModel: m, Repeaters: true, LocalMM: 0.05})
	if err := synth.SelectDrives(n, lib, nil); err != nil {
		t.Fatal(err)
	}
	res, err := WidenWires(n, m, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.After > res.Before {
		t.Fatalf("wire sizing made things worse: %.1f -> %.1f FO4",
			res.Before.FO4(), res.After.FO4())
	}
}
