// Package sizing implements transistor/gate sizing: a TILOS-style
// sensitivity-driven upsizing loop on the critical path (Fishburn &
// Dunlop's posynomial heuristic, the paper's reference [7]), discrete
// snapping back to library drives, power-aware minimum sizing off the
// critical path, and the iterative resize-and-reanalyze loop the paper
// calls resynthesis (reference [8], "improve speeds by 20%").
//
// Continuous sizing is the custom-design capability; the gap between a
// continuously sized netlist and its discrete snap measures the paper's
// section 6 claim that discrete drives cost only 2-7% against continuous
// sizing when the library is rich.
package sizing

import (
	"fmt"
	"math"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/units"
)

// Options tunes the sizing loops.
type Options struct {
	// MaxIters bounds the TILOS upsizing iterations.
	MaxIters int
	// StepFactor is the multiplicative bump applied to the most
	// sensitive gate each iteration.
	StepFactor float64
	// MaxDrive caps any gate's drive.
	MaxDrive float64
	// Patience is how many consecutive non-improving iterations to
	// tolerate before stopping. Designs with many parallel critical
	// paths need dozens of bumps before the worst path moves.
	Patience int
}

// DefaultOptions are sensible TILOS settings.
func DefaultOptions() Options {
	return Options{MaxIters: 2000, StepFactor: 1.15, MaxDrive: 64, Patience: 80}
}

// Result reports a sizing run.
type Result struct {
	Before, After units.Tau
	Iters         int
	AreaBefore    float64
	AreaAfter     float64
}

// Speedup is Before/After.
func (r Result) Speedup() float64 {
	if r.After == 0 {
		return math.Inf(1)
	}
	return float64(r.Before) / float64(r.After)
}

func (r Result) String() string {
	return fmt.Sprintf("sizing: %.1f -> %.1f FO4 (%.2fx) in %d iters, area %.0f -> %.0f",
		r.Before.FO4(), r.After.FO4(), r.Speedup(), r.Iters, r.AreaBefore, r.AreaAfter)
}

// ContinuousTILOS runs sensitivity-driven continuous upsizing: repeatedly
// analyze, walk the critical path, and bump the gate whose upsizing most
// reduces the path delay (accounting for the extra load presented to its
// driver). Requires a library permitting continuous drives for exact
// realization; with a discrete library the result is later snapped.
func ContinuousTILOS(n *netlist.Netlist, lib *cell.Library, opt Options) (Result, error) {
	if opt.MaxIters <= 0 {
		opt = DefaultOptions()
	}
	first, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		return Result{}, err
	}
	res := Result{Before: first.WorstComb, AreaBefore: n.TotalArea()}

	snapshot := func() []*cell.Cell {
		cells := make([]*cell.Cell, n.NumGates())
		for i, g := range n.Gates() {
			cells[i] = g.Cell
		}
		return cells
	}
	restore := func(cells []*cell.Cell) {
		for i, g := range n.Gates() {
			g.Cell = cells[i]
		}
	}

	cur := first
	best := first.WorstComb
	bestCells := snapshot()
	noGain := 0
	for iter := 0; iter < opt.MaxIters; iter++ {
		gate, gain := bestBump(n, cur, opt)
		if gate == netlist.None || gain <= 1e-9 {
			break
		}
		g := n.Gate(gate)
		newDrive := math.Min(g.Cell.Drive*opt.StepFactor, opt.MaxDrive)
		if newDrive <= g.Cell.Drive {
			break
		}
		c, err := lib.ForDrive(g.Cell.Func, newDrive)
		if err != nil {
			return res, err
		}
		g.Cell = c
		next, err := sta.Analyze(n, sta.Options{})
		if err != nil {
			return res, err
		}
		res.Iters = iter + 1
		if next.WorstComb < best {
			best = next.WorstComb
			bestCells = snapshot()
			noGain = 0
		} else {
			noGain++
			if opt.Patience > 0 && noGain > opt.Patience {
				break
			}
		}
		cur = next
	}
	restore(bestCells)
	res.After = best
	res.AreaAfter = n.TotalArea()
	return res, nil
}

// bestBump scans the critical path and estimates, for each gate on it, the
// delay change from multiplying its drive by the step factor: the gate's
// own effort delay shrinks, but its input capacitance grows, loading the
// upstream path gate. Returns the best candidate and its estimated gain.
func bestBump(n *netlist.Netlist, r *sta.Result, opt Options) (netlist.GateID, float64) {
	best := netlist.GateID(netlist.None)
	bestGain := 0.0
	for i, step := range r.Critical {
		if step.Gate == netlist.None {
			continue
		}
		g := n.Gate(step.Gate)
		if g.Cell.Drive*opt.StepFactor > opt.MaxDrive {
			continue
		}
		load := float64(n.Load(g.Out))
		oldSelf := load / g.Cell.Drive
		newSelf := load / (g.Cell.Drive * opt.StepFactor)
		gain := oldSelf - newSelf

		// Penalty: the upstream critical gate sees our input cap grow.
		if i > 0 && r.Critical[i-1].Gate != netlist.None {
			up := n.Gate(r.Critical[i-1].Gate)
			dCin := g.Cell.InputCap()*units.Cap(opt.StepFactor) - g.Cell.InputCap()
			gain -= float64(dCin) / up.Cell.Drive
		}
		if gain > bestGain {
			bestGain = gain
			best = step.Gate
		}
	}
	return best, bestGain
}

// SnapMode selects how continuous drives map to discrete library cells.
type SnapMode int

// Snap modes, ablated in the benchmarks: rounding up wastes area and load;
// nearest is the usual choice.
const (
	SnapNearest SnapMode = iota
	SnapUp
)

// SnapToLibrary replaces every gate's (possibly continuous) cell with a
// discrete cell from lib. Returns the resulting worst-path delay.
func SnapToLibrary(n *netlist.Netlist, lib *cell.Library, mode SnapMode) (units.Tau, error) {
	for _, g := range n.Gates() {
		var c *cell.Cell
		var err error
		switch mode {
		case SnapUp:
			c, err = snapUp(lib, g.Cell.Func, g.Cell.Drive)
		default:
			c, err = lib.ForDrive(g.Cell.Func, g.Cell.Drive)
		}
		if err != nil {
			return 0, err
		}
		g.Cell = c
	}
	r, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		return 0, err
	}
	return r.WorstComb, nil
}

func snapUp(lib *cell.Library, f cell.Func, drive float64) (*cell.Cell, error) {
	cells := lib.Cells(f)
	if len(cells) == 0 {
		return nil, fmt.Errorf("sizing: no %v in %s", f, lib.Name)
	}
	for _, c := range cells {
		if c.Drive >= drive-1e-12 {
			return c, nil
		}
	}
	return cells[len(cells)-1], nil
}

// PowerAware downsizes every gate with positive slack to the smallest
// drive that keeps the design's worst path within the given fraction of
// its current value. This is the paper's "sizing transistors minimally to
// reduce power consumption, except on critical paths" (section 6.2);
// the returned count is the number of gates downsized.
func PowerAware(n *netlist.Netlist, lib *cell.Library, slackFrac float64) (int, error) {
	r, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		return 0, err
	}
	budget := units.Tau(float64(r.WorstComb) * (1 + slackFrac))
	down := 0
	for _, g := range n.Gates() {
		cells := lib.Cells(g.Cell.Func)
		// Try drives from smallest up; keep the first that stays
		// within budget.
		orig := g.Cell
		for _, c := range cells {
			if c.Drive >= orig.Drive {
				break
			}
			g.Cell = c
			nr, err := sta.Analyze(n, sta.Options{})
			if err != nil {
				return down, err
			}
			if nr.WorstComb <= budget {
				down++
				break
			}
			g.Cell = orig
		}
	}
	return down, nil
}

// Resynthesize runs the iterative resize loop of the paper's reference
// [8]: alternate TILOS upsizing on the critical path with power-aware
// relaxation off it, until an iteration stops helping. Returns the
// combined result.
func Resynthesize(n *netlist.Netlist, lib *cell.Library, rounds int) (Result, error) {
	first, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		return Result{}, err
	}
	res := Result{Before: first.WorstComb, AreaBefore: n.TotalArea()}
	prev := first.WorstComb
	for i := 0; i < rounds; i++ {
		tr, err := ContinuousTILOS(n, lib, DefaultOptions())
		if err != nil {
			return res, err
		}
		res.Iters += tr.Iters
		if tr.After >= prev {
			break
		}
		prev = tr.After
	}
	r, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		return res, err
	}
	res.After = r.WorstComb
	res.AreaAfter = n.TotalArea()
	return res, nil
}
