package gossip

import (
	"reflect"
	"testing"
)

func newTestView(t *testing.T, self string, seed int64, peers ...Member) *View {
	t.Helper()
	v, err := NewView(Config{SelfID: self, SelfURL: "http://" + self, Seed: seed})
	if err != nil {
		t.Fatalf("NewView: %v", err)
	}
	if len(peers) > 0 {
		v.Merge(peers)
	}
	return v
}

func alive(id string, inc uint64) Member {
	return Member{ID: id, URL: "http://" + id, State: StateAlive, Incarnation: inc}
}

func withState(m Member, s State) Member { m.State = s; return m }

func stateOf(v *View, id string) (State, uint64) {
	for _, m := range v.Records() {
		if m.ID == id {
			return m.State, m.Incarnation
		}
	}
	return "", 0
}

func TestMergePrecedence(t *testing.T) {
	cases := []struct {
		name      string
		cur, in   Member
		wantState State
		wantInc   uint64
	}{
		{"higher incarnation wins regardless of state",
			withState(alive("b", 3), StateDead), alive("b", 4), StateAlive, 4},
		{"lower incarnation loses regardless of state",
			alive("b", 4), withState(alive("b", 2), StateDead), StateAlive, 4},
		{"equal incarnation: suspect beats alive",
			alive("b", 2), withState(alive("b", 2), StateSuspect), StateSuspect, 2},
		{"equal incarnation: dead beats suspect",
			withState(alive("b", 2), StateSuspect), withState(alive("b", 2), StateDead), StateDead, 2},
		{"equal incarnation: left beats dead",
			withState(alive("b", 2), StateDead), withState(alive("b", 2), StateLeft), StateLeft, 2},
		{"equal incarnation: suspect beats draining",
			withState(alive("b", 2), StateDraining), withState(alive("b", 2), StateSuspect), StateSuspect, 2},
		{"equal incarnation: alive does not beat suspect",
			withState(alive("b", 2), StateSuspect), alive("b", 2), StateSuspect, 2},
		{"equal incarnation and state: no-op",
			alive("b", 2), alive("b", 2), StateAlive, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := newTestView(t, "a", 1, tc.cur)
			v.Merge([]Member{tc.in})
			st, inc := stateOf(v, "b")
			if st != tc.wantState || inc != tc.wantInc {
				t.Fatalf("after merge: got %s@%d, want %s@%d", st, inc, tc.wantState, tc.wantInc)
			}
		})
	}
}

func TestMergeRejectsInvalidRecords(t *testing.T) {
	v := newTestView(t, "a", 1, alive("b", 1))
	changed := v.Merge([]Member{
		{ID: "", State: StateAlive, Incarnation: 9},
		{ID: "b", State: State("zombie"), Incarnation: 9},
	})
	if changed {
		t.Fatal("invalid records must not change the view")
	}
	if st, inc := stateOf(v, "b"); st != StateAlive || inc != 1 {
		t.Fatalf("b corrupted by invalid record: %s@%d", st, inc)
	}
}

func TestSelfRefutationBumpsIncarnation(t *testing.T) {
	v := newTestView(t, "a", 1, alive("b", 1))
	// A peer suspects us at our own incarnation: refute by bumping past.
	v.Merge([]Member{withState(alive("a", 0), StateSuspect)})
	self := v.Self()
	if self.State != StateAlive || self.Incarnation != 1 {
		t.Fatalf("self after refutation: %s@%d, want alive@1", self.State, self.Incarnation)
	}
	if v.Refutations() != 1 {
		t.Fatalf("refutations = %d, want 1", v.Refutations())
	}
	// A stale claim below our incarnation is ignored outright.
	v.Merge([]Member{withState(alive("a", 0), StateDead)})
	if got := v.Self(); got.Incarnation != 1 || got.State != StateAlive {
		t.Fatalf("stale self claim changed record: %s@%d", got.State, got.Incarnation)
	}
	if v.Refutations() != 1 {
		t.Fatalf("stale claim counted as refutation: %d", v.Refutations())
	}
}

func TestRejoinBumpsPastDeparture(t *testing.T) {
	// A rebooted node starts at incarnation 0 and learns the cluster
	// still remembers its previous life as left@5. It must outrank that
	// verdict, not resurrect under it.
	v := newTestView(t, "a", 1)
	v.Merge([]Member{withState(alive("a", 5), StateLeft), alive("b", 2)})
	self := v.Self()
	if self.State != StateAlive || self.Incarnation != 6 {
		t.Fatalf("rejoined self: %s@%d, want alive@6", self.State, self.Incarnation)
	}
}

func TestStaleRecordCannotResurrectDeparted(t *testing.T) {
	v := newTestView(t, "a", 1, alive("b", 1))
	v.Merge([]Member{withState(alive("b", 5), StateLeft)})
	if changed := v.Merge([]Member{alive("b", 3)}); changed {
		t.Fatal("stale alive record resurrected a departed member")
	}
	if st, inc := stateOf(v, "b"); st != StateLeft || inc != 5 {
		t.Fatalf("b = %s@%d, want left@5", st, inc)
	}
	// Departure verdicts about members we never knew are remembered for
	// the same reason, without touching the ring.
	gen := v.Gen()
	v.Merge([]Member{withState(alive("c", 7), StateDead)})
	if v.Gen() != gen {
		t.Fatal("recording an unknown dead member changed the ring generation")
	}
	if changed := v.Merge([]Member{alive("c", 4)}); changed {
		t.Fatal("stale alive record resurrected an unknown-dead member")
	}
}

func TestProbeOrderDeterministicAndFair(t *testing.T) {
	peers := []Member{alive("b", 0), alive("c", 0), alive("d", 0), alive("e", 0)}
	seq := func(seed int64, rounds int) []string {
		v := newTestView(t, "a", seed, peers...)
		var out []string
		for i := 0; i < rounds; i++ {
			_, tgt, ok := v.BeginRound()
			if !ok {
				t.Fatal("no probe target with four routable peers")
			}
			out = append(out, tgt.ID)
		}
		return out
	}
	a, b := seq(42, 12), seq(42, 12)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	// Round-robin fairness: each full cycle visits every peer once.
	for cycle := 0; cycle < 3; cycle++ {
		seen := map[string]int{}
		for _, id := range a[cycle*4 : cycle*4+4] {
			seen[id]++
		}
		if len(seen) != 4 {
			t.Fatalf("cycle %d did not visit all peers once: %v", cycle, a[cycle*4:cycle*4+4])
		}
	}
	if other := seq(7, 12); reflect.DeepEqual(a, other) {
		t.Fatalf("seeds 42 and 7 produced identical 12-round orders: %v", a)
	}
}

func TestSuspectExpiresToDeadAfterWindow(t *testing.T) {
	v, err := NewView(Config{SelfID: "a", Seed: 1, SuspectRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	v.Merge([]Member{alive("b", 0), alive("c", 0)})
	v.BeginRound()
	if !v.ObserveFailure("b") {
		t.Fatal("ObserveFailure did not suspect b")
	}
	if st, _ := stateOf(v, "b"); st != StateSuspect {
		t.Fatalf("b = %s, want suspect", st)
	}
	gen := v.Gen()
	v.BeginRound()
	v.BeginRound()
	if st, _ := stateOf(v, "b"); st != StateSuspect {
		t.Fatal("b expired before the suspicion window closed")
	}
	v.BeginRound()
	if st, _ := stateOf(v, "b"); st != StateDead {
		t.Fatalf("b = %s after window, want dead", st)
	}
	if v.Gen() == gen {
		t.Fatal("declaring a member dead must bump the ring generation")
	}
	if v.Suspected() != 1 {
		t.Fatalf("suspected = %d, want 1", v.Suspected())
	}
}

func TestObserveAliveClearsLocalSuspicion(t *testing.T) {
	v, err := NewView(Config{SelfID: "a", Seed: 1, SuspectRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	v.Merge([]Member{alive("b", 0)})
	v.BeginRound()
	v.ObserveFailure("b")
	v.ObserveAlive("b")
	if st, _ := stateOf(v, "b"); st != StateAlive {
		t.Fatalf("b = %s after direct ack, want alive", st)
	}
	v.BeginRound()
	v.BeginRound()
	v.BeginRound()
	if st, _ := stateOf(v, "b"); st != StateAlive {
		t.Fatal("cleared suspicion still expired to dead")
	}
}

func TestDrainAndLeaveAnnouncements(t *testing.T) {
	v := newTestView(t, "a", 1, alive("b", 0))
	gen := v.Gen()
	d := v.Drain()
	if d.State != StateDraining || d.Incarnation != 1 {
		t.Fatalf("drain announcement = %s@%d, want draining@1", d.State, d.Incarnation)
	}
	if v.Gen() == gen {
		t.Fatal("drain must change the ring generation")
	}
	for _, m := range v.RingMembers() {
		if m.ID == "a" {
			t.Fatal("draining self still in RingMembers")
		}
	}
	// Idempotent: a second drain does not burn another incarnation.
	if again := v.Drain(); again.Incarnation != 1 {
		t.Fatalf("second drain bumped incarnation to %d", again.Incarnation)
	}
	l := v.Leave()
	if l.State != StateLeft || l.Incarnation != 2 {
		t.Fatalf("leave announcement = %s@%d, want left@2", l.State, l.Incarnation)
	}
}

func TestPingReqProxiesExcludeSelfAndTarget(t *testing.T) {
	v, err := NewView(Config{SelfID: "a", Seed: 9, PingReqFanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	v.Merge([]Member{alive("b", 0), alive("c", 0), alive("d", 0), alive("e", 0)})
	v.BeginRound()
	p1 := v.PingReqProxies("b")
	p2 := v.PingReqProxies("b")
	if !reflect.DeepEqual(p1, p2) {
		t.Fatalf("proxy pick not deterministic within a round: %v vs %v", p1, p2)
	}
	if len(p1) != 2 {
		t.Fatalf("fanout = %d, want 2", len(p1))
	}
	for _, m := range p1 {
		if m.ID == "a" || m.ID == "b" {
			t.Fatalf("proxy set contains self or target: %v", p1)
		}
	}
}

func TestRingMembersIncludesSuspects(t *testing.T) {
	// Suspicion alone must not evict an owner — that is the flap the
	// incarnation machinery damps. Only death/drain/leave re-rank.
	v := newTestView(t, "a", 1, alive("b", 0), alive("c", 0))
	gen := v.Gen()
	v.BeginRound()
	v.ObserveFailure("b")
	ids := map[string]bool{}
	for _, m := range v.RingMembers() {
		ids[m.ID] = true
	}
	if !ids["a"] || !ids["b"] || !ids["c"] {
		t.Fatalf("ring after suspicion = %v, want all three", ids)
	}
	if v.Gen() != gen {
		t.Fatal("suspicion changed the ring generation")
	}
}

func TestSnapshotReportsLastHeardRound(t *testing.T) {
	v := newTestView(t, "a", 1, alive("b", 0))
	v.BeginRound()
	v.BeginRound()
	v.ObserveAlive("b")
	for _, row := range v.Snapshot() {
		if row.ID == "b" && row.LastHeardRound != 2 {
			t.Fatalf("b last heard round = %d, want 2", row.LastHeardRound)
		}
		if row.AsOf.IsZero() {
			t.Fatal("snapshot row missing display timestamp")
		}
	}
}
