// Package gossip is the SWIM-style membership state machine for the
// gapd cluster: incarnation-numbered member records, the merge rules
// that let any two views converge without coordination, and seeded
// deterministic probe/ping-req target selection. The package is pure
// protocol — it never touches the network; internal/cluster drives it
// over POST /v1/gossip — and it is covered by gaplint's determinism
// policy like the core evaluation packages: every protocol decision
// (probe order, suspicion expiry, merge outcomes) is a function of the
// seed, the round counter, and the records observed, never the wall
// clock. The single sanctioned clock seam (clock.go) stamps snapshot
// timestamps for humans; no decision reads it.
//
// The state machine follows SWIM (Das et al., 2002) with the failure
// detector folded into the dissemination channel: every exchange is a
// push-pull of full views (fine at gapd's cluster sizes), so a probe
// doubles as an update and convergence is O(log n) rounds without a
// separate piggyback buffer. Two states are added to SWIM's
// alive/suspect/dead: draining (the node announced it is shedding
// ownership ahead of a restart — still serving, no longer owning) and
// left (the node departed cleanly; distinguishes "done" from "lost" so
// a rejoin can be told apart from a flap).
package gossip

import "fmt"

// State is a member's lifecycle state. Ordering matters: at equal
// incarnation a higher-precedence state wins a merge (see overrides).
type State string

// Member lifecycle states.
const (
	// StateAlive: the member answers probes and owns its rendezvous
	// share.
	StateAlive State = "alive"
	// StateDraining: the member announced a drain — it finishes
	// in-flight work and still gossips, but owns nothing new and is
	// handing its results off. Voluntary, self-announced.
	StateDraining State = "draining"
	// StateSuspect: a probe and its ping-req proxies all failed; the
	// member has SuspectRounds to refute with a higher incarnation
	// before being declared dead.
	StateSuspect State = "suspect"
	// StateDead: the failure detector gave up on the member. Only a
	// higher incarnation (a rejoin) resurrects it.
	StateDead State = "dead"
	// StateLeft: the member departed cleanly after a drain. Terminal
	// like dead, but deliberate — a rejoin bumps past it.
	StateLeft State = "left"
)

// precedence ranks states for same-incarnation merges: voluntary
// departure > failure-detector verdicts > voluntary drain > alive.
// Suspect must outrank draining so suspicion of a draining node is
// recordable (the node refutes with a bump, staying draining).
func (s State) precedence() int {
	switch s {
	case StateAlive:
		return 0
	case StateDraining:
		return 1
	case StateSuspect:
		return 2
	case StateDead:
		return 3
	case StateLeft:
		return 4
	}
	return -1
}

// Valid reports whether s is one of the five protocol states.
func (s State) Valid() bool { return s.precedence() >= 0 }

// InRing reports whether a member in this state participates in
// rendezvous ownership. Draining members are excluded — that is what
// drain means — and suspect members stay in: a suspicion is usually a
// blip, and evicting the owner (and its warm cache) on every blip is
// the flap the incarnation machinery exists to damp.
func (s State) InRing() bool { return s == StateAlive || s == StateSuspect }

// Routable reports whether a member in this state may still be sent
// traffic (probes, forwards, replica reads). Draining members remain
// routable — they answer reads and finish in-flight work — only
// dead/left members are unreachable by decree.
func (s State) Routable() bool {
	return s == StateAlive || s == StateSuspect || s == StateDraining
}

// Member is one gossiped membership record: the wire unit of the
// protocol. Everything a node needs to route to (URL, weight) and
// reason about (state, incarnation) a peer travels in the record, so a
// joining node is fully described by its own announcement.
type Member struct {
	ID     string `json:"id"`
	URL    string `json:"url"`
	Weight int    `json:"weight,omitempty"`
	State  State  `json:"state"`
	// Incarnation is the record's freshness token, bumped only by the
	// member it names: to refute a suspicion, to announce a drain or a
	// clean leave, or to rejoin past a dead/left verdict. Any node may
	// *report* any state about a member, but only the member itself can
	// outrank those reports.
	Incarnation uint64 `json:"incarnation"`
}

// Validate rejects records that cannot enter a view.
func (m Member) Validate() error {
	if m.ID == "" {
		return fmt.Errorf("gossip: member with empty id")
	}
	if !m.State.Valid() {
		return fmt.Errorf("gossip: member %s has invalid state %q", m.ID, m.State)
	}
	return nil
}

// overrides reports whether record r supersedes record cur under the
// SWIM merge rules: a higher incarnation always wins (only the member
// itself can bump, so a higher incarnation is newer information from
// the source of truth); at equal incarnation the higher-precedence
// state wins (suspicion beats the alive claim it doubts, death beats
// suspicion, departure beats everything). Equal incarnation and equal
// precedence is a no-op — there is nothing new to learn.
func overrides(r, cur Member) bool {
	if r.Incarnation != cur.Incarnation {
		return r.Incarnation > cur.Incarnation
	}
	return r.State.precedence() > cur.State.precedence()
}
