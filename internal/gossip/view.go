package gossip

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Config seeds a View.
type Config struct {
	// SelfID / SelfURL identify and advertise this node. SelfURL is what
	// other members will dial, so in multi-process deployments it must
	// be the externally reachable address, not the listen address.
	SelfID  string
	SelfURL string
	// Weight is this node's rendezvous weight (share of ownership).
	// Zero means default weight.
	Weight int
	// Seed drives every probe-order and proxy-pick decision. Two views
	// with the same seed observing the same membership events make the
	// same choices in the same order.
	Seed int64
	// SuspectRounds is how many protocol rounds a suspect member has to
	// refute before it is declared dead. Zero means DefaultSuspectRounds.
	SuspectRounds int
	// PingReqFanout is how many proxies an indirect probe goes through.
	// Zero means DefaultPingReqFanout.
	PingReqFanout int
}

// Defaults for Config zero values.
const (
	DefaultSuspectRounds = 4
	DefaultPingReqFanout = 2
)

// View is one node's membership view: its own record plus everything it
// has heard about its peers, keyed by member ID. All methods are
// safe for concurrent use. The view is advanced by rounds, not by time:
// the caller (internal/cluster's gossip loop) decides how often a round
// happens; the view only decides what happens in it. That split is what
// makes the protocol unit-testable under the determinism policy — tests
// call BeginRound in a plain loop and every outcome is reproducible.
type View struct {
	mu      sync.Mutex
	self    string
	seed    int64
	susRnds int
	fanout  int

	members map[string]Member
	// lastHeard is the round at which we last got direct evidence about
	// a member: a successful probe, a gossip exchange with it, or a
	// record bearing a new incarnation/state.
	lastHeard map[string]uint64
	// suspectAt is the round a member entered suspect state; after
	// susRnds more rounds without refutation it is declared dead.
	suspectAt map[string]uint64

	round uint64
	// gen increments whenever the ring-eligible set (or a member URL or
	// weight inside it) changes; the cluster layer compares it to decide
	// when to rebuild the rendezvous ring.
	gen uint64

	// probe order: a seeded permutation of the routable peers, consumed
	// one per round and reshuffled when exhausted or when the peer set
	// changes — SWIM's round-robin-with-random-order scan, which bounds
	// worst-case detection time at one full cycle.
	order    []string
	orderIdx int
	// perm counts reshuffles so each cycle draws from a fresh seeded
	// stream: cycle k shuffles with seed^k mixed, reproducibly.
	perm uint64

	refutations uint64
	suspected   uint64
}

// NewView builds a view containing only the self record (alive,
// incarnation 0). Seed members are learned by merging the first gossip
// exchange, not at construction — a boot list is just a list of
// addresses to talk to, not a claim those nodes are alive.
func NewView(cfg Config) (*View, error) {
	if cfg.SelfID == "" {
		return nil, fmt.Errorf("gossip: config requires SelfID")
	}
	v := &View{
		self:      cfg.SelfID,
		seed:      cfg.Seed,
		susRnds:   cfg.SuspectRounds,
		fanout:    cfg.PingReqFanout,
		members:   make(map[string]Member),
		lastHeard: make(map[string]uint64),
		suspectAt: make(map[string]uint64),
	}
	if v.susRnds <= 0 {
		v.susRnds = DefaultSuspectRounds
	}
	if v.fanout <= 0 {
		v.fanout = DefaultPingReqFanout
	}
	v.members[cfg.SelfID] = Member{
		ID:     cfg.SelfID,
		URL:    cfg.SelfURL,
		Weight: cfg.Weight,
		State:  StateAlive,
	}
	v.gen = 1
	return v, nil
}

// Self returns this node's current record.
func (v *View) Self() Member {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.members[v.self]
}

// Round returns the current protocol round.
func (v *View) Round() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.round
}

// Gen returns the ring generation: it changes exactly when RingMembers
// would return a different set (or different URLs/weights within it).
func (v *View) Gen() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.gen
}

// Refutations returns how many times this view bumped its own
// incarnation to override a peer's claim about it.
func (v *View) Refutations() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.refutations
}

// Suspected returns how many alive→suspect transitions this view has
// recorded (locally observed or merged).
func (v *View) Suspected() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.suspected
}

// BeginRound advances the protocol one round: suspects past their
// refutation window are declared dead, and the next probe target is
// drawn from the seeded scan order. ok is false when there is no peer
// to probe (singleton cluster, or everyone dead/left).
func (v *View) BeginRound() (round uint64, target Member, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.round++

	// Expire suspicion. Same incarnation, dead outranks suspect — any
	// node holding a fresher record will override this verdict on merge.
	for id, at := range v.suspectAt {
		m := v.members[id]
		if m.State != StateSuspect {
			delete(v.suspectAt, id)
			continue
		}
		if v.round-at >= uint64(v.susRnds) {
			m.State = StateDead
			v.members[id] = m
			delete(v.suspectAt, id)
			v.bumpGenLocked()
		}
	}

	id, found := v.nextProbeLocked()
	if !found {
		return v.round, Member{}, false
	}
	return v.round, v.members[id], true
}

// nextProbeLocked draws the next routable peer from the scan order,
// reshuffling a fresh seeded permutation when the current one is
// exhausted or no longer matches the routable set.
func (v *View) nextProbeLocked() (string, bool) {
	eligible := make([]string, 0, len(v.members))
	for id, m := range v.members {
		if id != v.self && m.State.Routable() {
			eligible = append(eligible, id)
		}
	}
	if len(eligible) == 0 {
		return "", false
	}
	sort.Strings(eligible)
	if v.orderIdx >= len(v.order) || !sameSet(v.order, eligible) {
		v.order = append([]string(nil), eligible...)
		v.perm++
		r := rand.New(rand.NewSource(v.seed ^ int64(v.perm*0x9e3779b97f4a7c15)))
		r.Shuffle(len(v.order), func(i, j int) { v.order[i], v.order[j] = v.order[j], v.order[i] })
		v.orderIdx = 0
	}
	id := v.order[v.orderIdx]
	v.orderIdx++
	return id, true
}

// sameSet reports whether order (any order) and eligible (sorted)
// contain the same IDs.
func sameSet(order, eligible []string) bool {
	if len(order) != len(eligible) {
		return false
	}
	s := append([]string(nil), order...)
	sort.Strings(s)
	for i := range s {
		if s[i] != eligible[i] {
			return false
		}
	}
	return true
}

// PingReqProxies picks up to PingReqFanout routable peers (excluding
// self and the unreachable target) to relay an indirect probe through.
// The pick is a pure function of the seed and the current round.
func (v *View) PingReqProxies(target string) []Member {
	v.mu.Lock()
	defer v.mu.Unlock()
	var ids []string
	for id, m := range v.members {
		if id != v.self && id != target && m.State.Routable() {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	r := rand.New(rand.NewSource(v.seed ^ int64(v.round*0xbf58476d1ce4e5b9)))
	r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	if len(ids) > v.fanout {
		ids = ids[:v.fanout]
	}
	out := make([]Member, 0, len(ids))
	for _, id := range ids {
		out = append(out, v.members[id])
	}
	return out
}

// ObserveAlive records direct positive evidence about a member: a probe
// ack or a gossip exchange it answered. A suspect observed alive is
// cleared at the same incarnation — direct evidence beats hearsay we
// ourselves produced; a remote suspicion still needs the member's own
// incarnation bump to clear, which Merge handles.
func (v *View) ObserveAlive(id string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	m, known := v.members[id]
	if !known || id == v.self {
		return
	}
	v.lastHeard[id] = v.round
	if m.State == StateSuspect {
		m.State = StateAlive
		v.members[id] = m
		delete(v.suspectAt, id)
		// suspect and alive are both InRing; the ring is unchanged.
	}
}

// ObserveFailure records a failed probe (direct and indirect both
// exhausted): an alive or draining member becomes suspect and its
// refutation window opens. Returns true when this observation newly
// suspected the member.
func (v *View) ObserveFailure(id string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	m, known := v.members[id]
	if !known || id == v.self {
		return false
	}
	if m.State != StateAlive && m.State != StateDraining {
		return false
	}
	wasInRing := m.State.InRing()
	m.State = StateSuspect
	v.members[id] = m
	v.suspectAt[id] = v.round
	v.suspected++
	if wasInRing != m.State.InRing() {
		v.bumpGenLocked()
	}
	return true
}

// Merge folds a batch of remote records into the view under the SWIM
// precedence rules and returns whether anything changed. Records about
// self never overwrite the self record: if a remote claim would outrank
// ours (a suspicion to refute, a stale dead/left verdict to rejoin
// past), we bump our incarnation above it and keep our own state — the
// bumped record then wins everywhere on the next exchange.
func (v *View) Merge(records []Member) (changed bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, r := range records {
		if r.Validate() != nil {
			continue
		}
		if r.ID == v.self {
			if v.refuteLocked(r) {
				changed = true
			}
			continue
		}
		cur, known := v.members[r.ID]
		if known && !overrides(r, cur) {
			continue
		}
		if !known && (r.State == StateLeft || r.State == StateDead) {
			// Learning that a node we never knew is gone changes
			// nothing we route on; record it only so a later stale
			// alive record cannot resurrect it through us.
			v.members[r.ID] = r
			continue
		}
		wasInRing := known && cur.State.InRing()
		v.members[r.ID] = r
		v.lastHeard[r.ID] = v.round
		if r.State == StateSuspect {
			if _, already := v.suspectAt[r.ID]; !already {
				v.suspectAt[r.ID] = v.round
				v.suspected++
			}
		} else {
			delete(v.suspectAt, r.ID)
		}
		if wasInRing != r.State.InRing() ||
			(r.State.InRing() && known && (cur.URL != r.URL || cur.Weight != r.Weight)) ||
			(!known && r.State.InRing()) {
			v.bumpGenLocked()
		}
		changed = true
	}
	return changed
}

// refuteLocked handles a remote record about self. Any claim at our
// incarnation or above that differs from our own view of ourselves is
// outranked by bumping past it; stale claims are ignored.
func (v *View) refuteLocked(r Member) bool {
	mine := v.members[v.self]
	if r.Incarnation < mine.Incarnation {
		return false
	}
	if r.Incarnation == mine.Incarnation && r.State.precedence() <= mine.State.precedence() {
		return false
	}
	mine.Incarnation = r.Incarnation + 1
	v.members[v.self] = mine
	v.refutations++
	return true
}

// Drain marks self as draining with a fresh incarnation: the
// announcement outranks every alive record peers hold, so the next
// gossip exchange removes us from every ring. Idempotent.
func (v *View) Drain() Member {
	return v.announce(StateDraining)
}

// Leave marks self as cleanly departed with a fresh incarnation. The
// record persists in peers' views so a crashed-and-wiped rejoin under
// the same ID is forced to bump past it (see refuteLocked) instead of
// resurrecting at incarnation zero with a stale view.
func (v *View) Leave() Member {
	return v.announce(StateLeft)
}

func (v *View) announce(s State) Member {
	v.mu.Lock()
	defer v.mu.Unlock()
	mine := v.members[v.self]
	if mine.State != s {
		wasInRing := mine.State.InRing()
		mine.State = s
		mine.Incarnation++
		v.members[v.self] = mine
		if wasInRing != s.InRing() {
			v.bumpGenLocked()
		}
	}
	return mine
}

// bumpGenLocked notes a change to the ring-eligible set.
func (v *View) bumpGenLocked() { v.gen++ }

// State returns a member's current state, or ok=false for an ID the
// view has never heard of.
func (v *View) State(id string) (State, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	m, ok := v.members[id]
	return m.State, ok
}

// Records returns every record in the view (self included), sorted by
// ID — the payload of a push-pull gossip exchange.
func (v *View) Records() []Member {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Member, 0, len(v.members))
	for _, m := range v.members {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RingMembers returns the members that currently participate in
// rendezvous ownership (self included when eligible), sorted by ID.
func (v *View) RingMembers() []Member {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]Member, 0, len(v.members))
	for _, m := range v.members {
		if m.State.InRing() {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MemberStatus is one row of Snapshot: the record plus observability
// fields that are not part of the protocol.
type MemberStatus struct {
	Member
	// LastHeardRound is the protocol round at which this view last got
	// direct evidence about the member (zero for self and for members
	// never directly heard from).
	LastHeardRound uint64 `json:"last_heard_round"`
	// AsOf is a display-only wall timestamp for the snapshot; protocol
	// decisions never read it.
	AsOf time.Time `json:"as_of"`
}

// Snapshot returns the full view for /v1/cluster, sorted by ID.
func (v *View) Snapshot() []MemberStatus {
	ts := now()
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]MemberStatus, 0, len(v.members))
	for _, m := range v.members {
		out = append(out, MemberStatus{Member: m, LastHeardRound: v.lastHeard[m.ID], AsOf: ts})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
