package gossip

import "time"

// This file is the package's only wall-clock seam, mirroring
// loadgen/clock.go. The membership protocol is round-driven — suspicion
// windows, probe order, and merge outcomes are functions of the seed
// and the round counter — so the clock appears exactly once, to stamp
// human-facing snapshot rows, and gaplint's determinism analyzer proves
// nothing else in the package reads it.

// now reads the wall clock for snapshot display timestamps.
func now() time.Time {
	//gaplint:allow determinism — the sanctioned wall-clock seam: snapshot rows carry a display timestamp; no protocol decision reads it
	return time.Now()
}
