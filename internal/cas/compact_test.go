package cas

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompactReclaimsDeadBytes(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 1024})
	// Write each address twice: half the bytes are superseded.
	for round := 0; round < 2; round++ {
		for i := 0; i < 20; i++ {
			addr := testAddr(fmt.Sprintf("cr-%d", i))
			body := []byte(fmt.Sprintf(`{"round":%d,"i":%d}`, round, i))
			if err := s.Put(addr, body); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := s.Stats()
	if before.DeadBytes == 0 {
		t.Fatal("no dead bytes to reclaim; test is vacuous")
	}
	st, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.TotalBytes >= before.TotalBytes {
		t.Errorf("compaction did not shrink the store: %d -> %d", before.TotalBytes, after.TotalBytes)
	}
	if st.Rewritten == 0 || st.ReclaimedBytes == 0 {
		t.Errorf("compact stats look wrong: %+v", st)
	}
	if after.Compactions != 1 {
		t.Errorf("compactions = %d, want 1", after.Compactions)
	}
	// Every record still serves its newest body.
	for i := 0; i < 20; i++ {
		addr := testAddr(fmt.Sprintf("cr-%d", i))
		body, ok := s.Get(addr)
		if !ok {
			t.Fatalf("record %d lost by compaction", i)
		}
		if want := fmt.Sprintf(`{"round":1,"i":%d}`, i); string(body) != want {
			t.Fatalf("record %d: got %s, want %s", i, body, want)
		}
	}
	// And survives a reopen of the compacted layout.
	s.Close()
	s2 := openTest(t, dir, Options{SegmentBytes: 1024})
	for i := 0; i < 20; i++ {
		if _, ok := s2.Get(testAddr(fmt.Sprintf("cr-%d", i))); !ok {
			t.Fatalf("record %d lost across reopen after compaction", i)
		}
	}
}

func TestCompactDropsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 1 << 20})
	for i := 0; i < 5; i++ {
		if err := s.Put(testAddr(fmt.Sprintf("cc-%d", i)), testBody(fmt.Sprintf("cc-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Rot one body on disk (CRC and digest both now lie).
	path := filepath.Join(dir, fmt.Sprintf(segPattern, uint32(0)))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+3] ^= 0x10 // first record's body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{SegmentBytes: 1 << 20})
	st, err := s2.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedCorrupt != 1 {
		t.Errorf("dropped_corrupt = %d, want 1", st.DroppedCorrupt)
	}
	if st.Rewritten != 4 {
		t.Errorf("rewritten = %d, want 4", st.Rewritten)
	}
	if s2.Has(testAddr("cc-0")) {
		t.Error("corrupt record survived compaction")
	}
	for i := 1; i < 5; i++ {
		if _, ok := s2.Get(testAddr(fmt.Sprintf("cc-%d", i))); !ok {
			t.Errorf("healthy record %d lost", i)
		}
	}
}

func TestCompactEnforcesMaxBytes(t *testing.T) {
	dir := t.TempDir()
	body := []byte(strings.Repeat("x", 256))
	recSize := recordSize(len(body))
	// Budget for ~6 records; write 12, touching half of them hot.
	// Automatic compaction is disabled (CompactDeadFrac < 0) so the
	// explicit Compact below is the only pass — otherwise a background
	// pass could evict before the hot set is touched.
	s := openTest(t, dir, Options{
		SegmentBytes:    16 << 10,
		MaxBytes:        6 * recSize,
		CompactDeadFrac: -1,
	})
	for i := 0; i < 12; i++ {
		addr := testAddr(fmt.Sprintf("mb-%d", i))
		if err := s.Put(addr, body); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ { // heat the even records
		for j := 0; j < 8; j++ {
			s.Touch(testAddr(fmt.Sprintf("mb-%d", 2*i)))
		}
	}
	st, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted == 0 {
		t.Fatalf("budget eviction did not trigger: %+v", st)
	}
	after := s.Stats()
	if after.LiveBytes > 6*recSize {
		t.Errorf("live bytes %d still over budget %d", after.LiveBytes, 6*recSize)
	}
	// The hot (touched) records survived; evictions came from the cold.
	survivingHot := 0
	for i := 0; i < 6; i++ {
		if s.Has(testAddr(fmt.Sprintf("mb-%d", 2*i))) {
			survivingHot++
		}
	}
	if survivingHot != 6 {
		t.Errorf("only %d/6 hot records survived the budget eviction", survivingHot)
	}
}

func TestBackgroundCompactionTrigger(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{
		SegmentBytes:    2048,
		CompactDeadFrac: 0.3,
	})
	// Supersede the same addresses repeatedly until most bytes are dead;
	// the Put path should fire the background pass on its own.
	for round := 0; round < 30; round++ {
		for i := 0; i < 8; i++ {
			addr := testAddr(fmt.Sprintf("bg-%d", i))
			body := []byte(fmt.Sprintf(`{"round":%d,"i":%d,"pad":"0123456789abcdef"}`, round, i))
			if err := s.Put(addr, body); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Wait for any in-flight background pass, then check at least one ran.
	s.compactMu.Lock()
	s.compactMu.Unlock()
	if s.Compactions() == 0 {
		t.Error("background compaction never triggered despite heavy dead bytes")
	}
	for i := 0; i < 8; i++ {
		if _, ok := s.Get(testAddr(fmt.Sprintf("bg-%d", i))); !ok {
			t.Errorf("record %d lost under background compaction", i)
		}
	}
}

// TestCloseWaitsForBackgroundCompaction pins the shutdown contract the
// goroutinelifecycle gate enforces: Close must wait out a background
// pass (which is still reading the sealed segment handles) before it
// closes those handles, and a trigger that wins the single-flight
// latch after Close must decline to spawn and release the latch.
func TestCloseWaitsForBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 1024})
	for round := 0; round < 2; round++ {
		for i := 0; i < 20; i++ {
			addr := testAddr(fmt.Sprintf("cw-%d", i))
			body := []byte(fmt.Sprintf(`{"round":%d,"i":%d}`, round, i))
			if err := s.Put(addr, body); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !s.compactMu.TryLock() {
		t.Fatal("compaction latch unexpectedly held")
	}
	s.spawnCompact() // background pass now owns the latch
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Close waited for the pass, so the latch must already be free —
	// asserted immediately, no sleeps or polling.
	if !s.compactMu.TryLock() {
		t.Fatal("background compaction still running after Close returned")
	}
	s.compactMu.Unlock()

	if !s.compactMu.TryLock() {
		t.Fatal("compaction latch held after Close")
	}
	s.spawnCompact() // store is closed: must not start a pass
	if !s.compactMu.TryLock() {
		t.Fatal("post-Close spawnCompact kept the single-flight latch locked")
	}
	s.compactMu.Unlock()
}
