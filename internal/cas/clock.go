package cas

import "time"

// This file is the package's only wall-clock seam, mirroring
// loadgen/clock.go and gossip/clock.go. The store's behaviour — what
// gets written, indexed, compacted, evicted, admitted — is a pure
// function of the operation sequence and the sketch state, proven by
// gaplint's determinism analyzer covering this package
// (analysis.StoragePackages). The clock appears exactly once, to stamp
// the human-facing opened_at field in Stats; no storage decision reads
// it.

// displayNow reads the wall clock for display timestamps only.
func displayNow() string {
	//gaplint:allow determinism — the sanctioned wall-clock seam: Stats carries an opened_at display timestamp; no storage decision reads the clock
	return time.Now().UTC().Format(time.RFC3339Nano)
}
