package cas

import (
	"fmt"
	"testing"
)

func TestSketchCountsAndSaturates(t *testing.T) {
	s := NewSketch(256)
	hot := testAddr("hot")
	if got := s.Estimate(hot); got != 0 {
		t.Fatalf("fresh estimate = %d, want 0", got)
	}
	for i := 0; i < 5; i++ {
		s.Touch(hot)
	}
	if got := s.Estimate(hot); got != 5 {
		t.Errorf("estimate after 5 touches = %d, want 5", got)
	}
	for i := 0; i < 100; i++ {
		s.Touch(hot)
	}
	if got := s.Estimate(hot); got != 15 {
		t.Errorf("estimate after saturation = %d, want 15 (4-bit cap)", got)
	}
}

func TestSketchDistinguishesHotFromCold(t *testing.T) {
	s := NewSketch(1024)
	hot, cold := testAddr("hot-key"), testAddr("cold-key")
	for i := 0; i < 12; i++ {
		s.Touch(hot)
	}
	s.Touch(cold)
	if he, ce := s.Estimate(hot), s.Estimate(cold); he <= ce {
		t.Errorf("hot estimate %d not above cold %d", he, ce)
	}
}

func TestSketchHalving(t *testing.T) {
	// capacity 64 → sample threshold 640 touches triggers halving.
	s := NewSketch(64)
	key := testAddr("aging")
	for i := 0; i < 14; i++ {
		s.Touch(key)
	}
	before := s.Estimate(key)
	// Drive unrelated traffic past the sample threshold.
	for i := 0; i < 640; i++ {
		s.Touch(testAddr(fmt.Sprintf("filler-%d", i)))
	}
	after := s.Estimate(key)
	if after >= before {
		t.Errorf("halving did not age the counter: %d -> %d", before, after)
	}
	if after < before/2 {
		// One halving at most in this window (collisions can add noise
		// upward, never land below half).
		t.Errorf("counter aged too far: %d -> %d", before, after)
	}
}

func TestSketchDeterministic(t *testing.T) {
	// Two sketches fed the identical touch sequence report identical
	// estimates — the property gaplint's determinism policy leans on.
	a, b := NewSketch(256), NewSketch(256)
	seq := []string{}
	for i := 0; i < 500; i++ {
		seq = append(seq, testAddr(fmt.Sprintf("k-%d", i%37)))
	}
	for _, k := range seq {
		a.Touch(k)
		b.Touch(k)
	}
	for i := 0; i < 37; i++ {
		k := testAddr(fmt.Sprintf("k-%d", i))
		if a.Estimate(k) != b.Estimate(k) {
			t.Fatalf("estimates diverge for %s: %d vs %d", k[:12], a.Estimate(k), b.Estimate(k))
		}
	}
}

func TestAdmitPrefersHot(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SketchEntries: 256})
	hot, cold := testAddr("admit-hot"), testAddr("admit-cold")
	for i := 0; i < 10; i++ {
		s.Touch(hot)
	}
	s.Touch(cold)
	if !s.Admit(hot, cold) {
		t.Error("hot candidate rejected against cold victim")
	}
	if s.Admit(cold, hot) {
		t.Error("cold candidate admitted against hot victim")
	}
	// Ties admit (cold boot must not wedge the cache shut).
	fresh1, fresh2 := testAddr("f1"), testAddr("f2")
	if !s.Admit(fresh1, fresh2) {
		t.Error("tie did not admit")
	}
}
