package cas

import (
	"hash/fnv"
	"sync"
)

// Sketch is a TinyLFU-style frequency sketch: a 4-bit count-min sketch
// with periodic halving. Touch records one access to a content address;
// Estimate answers "how hot is this address?" with a small, bounded
// overestimate. The RAM-tier admission policy compares a candidate's
// estimate against the LRU victim's, so one-shot scans cannot flush the
// cache of genuinely hot entries.
//
// Counters saturate at 15 (4 bits, two packed per byte). After
// sampleSize touches every counter is halved — the aging step that lets
// yesterday's hot set decay — which keeps estimates a property of the
// recent access stream. Everything is a pure function of the touch
// sequence: no clock, no randomness, so a seeded replay drives the
// sketch through identical states.
type Sketch struct {
	mu      sync.Mutex
	rows    [sketchRows][]byte // 4-bit counters, two per byte
	mask    uint64
	touches int
	sample  int
}

const sketchRows = 4

// NewSketch sizes a sketch for roughly capacity distinct hot entries.
// Width rounds up to a power of two with ~8 counters per expected entry;
// halving triggers every 10×capacity touches.
func NewSketch(capacity int) *Sketch {
	if capacity < 64 {
		capacity = 64
	}
	width := uint64(1)
	for width < uint64(capacity)*8 {
		width <<= 1
	}
	s := &Sketch{mask: width - 1, sample: capacity * 10}
	for i := range s.rows {
		s.rows[i] = make([]byte, width/2)
	}
	return s
}

// Touch records one access to addr.
func (s *Sketch) Touch(addr string) {
	if s == nil {
		return
	}
	h := sketchHash(addr)
	s.mu.Lock()
	for i := range s.rows {
		idx := sketchIndex(h, i) & s.mask
		if v := s.get(i, idx); v < 15 {
			s.set(i, idx, v+1)
		}
	}
	s.touches++
	if s.touches >= s.sample {
		s.halveLocked()
	}
	s.mu.Unlock()
}

// Estimate reports the sketch's frequency estimate for addr (0-15).
func (s *Sketch) Estimate(addr string) uint8 {
	if s == nil {
		return 0
	}
	h := sketchHash(addr)
	s.mu.Lock()
	defer s.mu.Unlock()
	est := uint8(15)
	for i := range s.rows {
		if v := s.get(i, sketchIndex(h, i)&s.mask); v < est {
			est = v
		}
	}
	return est
}

// get reads the 4-bit counter at idx in row r. Caller holds s.mu.
func (s *Sketch) get(r int, idx uint64) uint8 {
	b := s.rows[r][idx>>1]
	if idx&1 == 0 {
		return b & 0x0f
	}
	return b >> 4
}

// set writes the 4-bit counter at idx in row r. Caller holds s.mu.
func (s *Sketch) set(r int, idx uint64, v uint8) {
	p := &s.rows[r][idx>>1]
	if idx&1 == 0 {
		*p = (*p &^ 0x0f) | (v & 0x0f)
	} else {
		*p = (*p &^ 0xf0) | (v << 4)
	}
}

// halveLocked ages every counter by dividing it by two — the TinyLFU
// reset that keeps the sketch tracking the recent stream. Caller holds
// s.mu.
func (s *Sketch) halveLocked() {
	for r := range s.rows {
		row := s.rows[r]
		for i, b := range row {
			// Halve both packed counters in place: clear the bits that
			// would shift across the nibble boundary, then shift.
			row[i] = (b >> 1) & 0x77
		}
	}
	s.touches /= 2
}

// sketchHash derives the base 64-bit hash for an address.
func sketchHash(addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	return h.Sum64()
}

// sketchIndex derives row i's counter index from the base hash via a
// splitmix64-style finalizer, so the rows probe independent positions.
func sketchIndex(h uint64, i int) uint64 {
	z := h + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
