package cas

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
)

// TestSoakCAS is the storage endurance drill (`make soak-cas`, not part
// of tier1): a million-record churn of puts, supersedes, reads, budget
// evictions, compactions, and a concurrently running scrubber, ending
// with the invariants that matter for a store trusted with the only
// durable copy of results:
//
//   - index-vs-disk consistency: every address the index claims resolves,
//     verifies, and matches the last body written under it — including
//     after a full close-and-reopen (the boot-scan path);
//   - the scrubber never condemns healthy data, no matter how much the
//     index churns underneath it;
//   - the dead-byte fraction stays bounded by the compaction policy.
//
// Gated on GAP_SOAK=1 so CI stays fast; GAP_SOAK_RECORDS overrides the
// record count.
func TestSoakCAS(t *testing.T) {
	if os.Getenv("GAP_SOAK") == "" {
		t.Skip("soak drill: set GAP_SOAK=1 (and optionally GAP_SOAK_RECORDS) to run")
	}
	records := 1_000_000
	if v := os.Getenv("GAP_SOAK_RECORDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("GAP_SOAK_RECORDS = %q", v)
		}
		records = n
	}

	dir := t.TempDir()
	const writers = 8
	// Live bytes land around 190 B x unique addresses; a budget of
	// ~100 B per record guarantees the MaxBytes pass must evict at any
	// soak size.
	maxBytes := int64(records) * 100
	s := openTest(t, dir, Options{
		Dir:          dir,
		SegmentBytes: 4 << 20,
		MaxBytes:     maxBytes,
		ScrubSeed:    42,
	})

	// The scrubber runs against the live churn for the whole soak: every
	// record it manages to verify is healthy by construction, so a single
	// condemnation is a store bug (a torn read under mu, a stale index
	// entry served, a CRC seam).
	stop := make(chan struct{})
	var scrubWG sync.WaitGroup
	scrubWG.Add(1)
	go func() {
		defer scrubWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.ScrubStep(128)
			}
		}
	}()

	// Each writer owns a disjoint address space and supersedes only its
	// own records, so "last body written" is well-defined per address
	// without cross-writer coordination.
	type finalState = map[string][]byte
	models := make([]finalState, writers)
	var wg sync.WaitGroup
	perWriter := records / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			model := finalState{}
			live := make([]string, 0, perWriter)
			for i := 0; i < perWriter; i++ {
				var addr string
				if len(live) > 0 && rng.Intn(5) == 0 {
					addr = live[rng.Intn(len(live))] // supersede: rewrite under the same address
				} else {
					addr = testAddr(fmt.Sprintf("soak-%d-%d", w, i))
					live = append(live, addr)
				}
				body := make([]byte, 64+rng.Intn(192))
				rng.Read(body)
				if err := s.Put(addr, body); err != nil {
					t.Errorf("writer %d put %d: %v", w, i, err)
					return
				}
				model[addr] = body
				if rng.Intn(7) == 0 { // interleaved reads keep the sketch warm
					ra := live[rng.Intn(len(live))]
					if b, err := s.GetE(ra); err == nil {
						if !bytes.Equal(b, model[ra]) {
							t.Errorf("writer %d: read of %s returned stale/foreign bytes", w, ra[:12])
							return
						}
					} else if err != ErrNotFound {
						t.Errorf("writer %d: read of %s: %v", w, ra[:12], err)
						return
					}
				}
			}
			models[w] = model
		}(w)
	}
	wg.Wait()
	close(stop)
	scrubWG.Wait()
	if t.Failed() {
		return
	}

	// Quiesce: a background compaction triggered by the last puts (dead
	// fraction or budget pass) may still be evicting records; the verify
	// below needs a stable view. Nothing re-triggers once puts stop, so
	// the lock barrier is enough.
	s.compactMu.Lock()
	s.compactMu.Unlock()

	model := finalState{}
	for _, m := range models {
		for a, b := range m {
			model[a] = b
		}
	}

	verify := func(label string, st *Store) {
		t.Helper()
		keys := st.Keys()
		for _, addr := range keys {
			want, ok := model[addr]
			if !ok {
				t.Fatalf("%s: store holds %s, never written", label, addr[:12])
			}
			got, err := st.GetE(addr)
			if err != nil {
				t.Fatalf("%s: read %s: %v", label, addr[:12], err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: %s does not match the last body written", label, addr[:12])
			}
		}
		stats := st.Stats()
		if stats.Records != len(keys) {
			t.Fatalf("%s: stats records %d != %d index keys", label, stats.Records, len(keys))
		}
	}

	stats := s.Stats()
	if stats.ScrubCorrupt != 0 || stats.Quarantined != 0 {
		t.Fatalf("scrub condemned %d healthy records (%d quarantined)", stats.ScrubCorrupt, stats.Quarantined)
	}
	if stats.Evicted == 0 {
		t.Error("budget never evicted: soak did not exercise the MaxBytes pass")
	}
	if stats.Rewrites == 0 {
		t.Error("no supersedes recorded: soak did not exercise rewrites")
	}
	verify("live store", s)

	// One explicit compaction bounds the garbage, then prove it.
	if _, err := s.Compact(); err != nil {
		t.Fatalf("final compaction: %v", err)
	}
	stats = s.Stats()
	if stats.TotalBytes > 0 {
		frac := float64(stats.DeadBytes) / float64(stats.TotalBytes)
		if frac > 0.5 {
			t.Errorf("dead-byte fraction %.3f after compaction, want <= 0.5", frac)
		}
	}
	// The budget is a compaction-time contract (churn may overshoot
	// between passes); after an explicit pass it must hold.
	if stats.LiveBytes > maxBytes {
		t.Errorf("live bytes %d exceed the %d budget after compaction", stats.LiveBytes, maxBytes)
	}
	verify("compacted store", s)

	// The boot scan must rebuild the exact same view from disk alone.
	keysBefore := s.Keys()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s2 := openTest(t, dir, Options{Dir: dir, SegmentBytes: 4 << 20, MaxBytes: maxBytes, ScrubSeed: 42})
	keysAfter := s2.Keys()
	if len(keysBefore) != len(keysAfter) {
		t.Fatalf("reopen: %d keys before, %d after", len(keysBefore), len(keysAfter))
	}
	for i := range keysBefore {
		if keysBefore[i] != keysAfter[i] {
			t.Fatalf("reopen: key %d differs: %s vs %s", i, keysBefore[i][:12], keysAfter[i][:12])
		}
	}
	verify("reopened store", s2)
	t.Logf("soak: %d records, %d puts (%d rewrites), %d evicted, %d compactions, %d scrub-verified",
		records, stats.Puts, stats.Rewrites, stats.Evicted, stats.Compactions, stats.ScrubVerified)
}
