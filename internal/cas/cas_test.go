package cas

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// testAddr derives a deterministic content address from a label — the
// same way real addresses arise (SHA-256 of canonical content).
func testAddr(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

// testBody builds a distinctive body for a label.
func testBody(label string) []byte {
	return []byte(fmt.Sprintf(`{"id":%q,"payload":"body of %s"}`, testAddr(label), label))
}

func openTest(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	opt.Dir = dir
	s, err := Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	for i := 0; i < 20; i++ {
		label := fmt.Sprintf("rec-%d", i)
		if err := s.Put(testAddr(label), testBody(label)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 20; i++ {
		label := fmt.Sprintf("rec-%d", i)
		body, ok := s.Get(testAddr(label))
		if !ok {
			t.Fatalf("get %d: missing", i)
		}
		if string(body) != string(testBody(label)) {
			t.Fatalf("get %d: body mismatch", i)
		}
	}
	if _, ok := s.Get(testAddr("never-stored")); ok {
		t.Error("get of absent address reported a hit")
	}
	if got := s.Len(); got != 20 {
		t.Errorf("len = %d, want 20", got)
	}
}

func TestPutIdempotentAndSupersede(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	addr := testAddr("x")
	if err := s.Put(addr, testBody("x")); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	// Same digest: a no-op, no new bytes.
	if err := s.Put(addr, testBody("x")); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got.LiveBytes != before.LiveBytes || got.DeadBytes != before.DeadBytes {
		t.Errorf("idempotent put changed accounting: %+v -> %+v", before, got)
	}
	// Different body under the same address supersedes: old bytes die.
	if err := s.Put(addr, []byte(`{"new":"body"}`)); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.DeadBytes == 0 {
		t.Error("supersede left no dead bytes")
	}
	if after.Rewrites != 1 {
		t.Errorf("rewrites = %d, want 1", after.Rewrites)
	}
	body, ok := s.Get(addr)
	if !ok || string(body) != `{"new":"body"}` {
		t.Errorf("get after supersede = %q, %v", body, ok)
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 512}) // force several segments
	const n = 40
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("rec-%d", i)
		if err := s.Put(testAddr(label), testBody(label)); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := s.Stats().Segments
	if segsBefore < 3 {
		t.Fatalf("expected several segments, got %d", segsBefore)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{SegmentBytes: 512})
	if got := s2.Len(); got != n {
		t.Fatalf("reopened index holds %d records, want %d", got, n)
	}
	if got := s2.Stats().BootRecords; got != int64(n) {
		t.Errorf("boot_records = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("rec-%d", i)
		body, ok := s2.Get(testAddr(label))
		if !ok || string(body) != string(testBody(label)) {
			t.Fatalf("rec %d lost or corrupted across reopen", i)
		}
	}
	// The reopened store keeps appending into the same lineage.
	if err := s2.Put(testAddr("post-reopen"), testBody("post-reopen")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(testAddr("post-reopen")); !ok {
		t.Error("post-reopen put not readable")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{SegmentBytes: 4096})
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				label := fmt.Sprintf("w%d-%d", w, i)
				if err := s.Put(testAddr(label), testBody(label)); err != nil {
					t.Errorf("put %s: %v", label, err)
					return
				}
				if body, ok := s.Get(testAddr(label)); !ok || string(body) != string(testBody(label)) {
					t.Errorf("read-own-write failed for %s", label)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != writers*perWriter {
		t.Errorf("len = %d, want %d", got, writers*perWriter)
	}
}

func TestCorruptBodyDetectedOnGet(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	addr := testAddr("victim")
	if err := s.Put(addr, testBody("victim")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testAddr("bystander"), testBody("bystander")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one body byte of the first record on disk.
	path := filepath.Join(dir, fmt.Sprintf(segPattern, uint32(0)))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{})
	// Boot indexes by header only, so the record is present — but Get
	// verifies and refuses to serve it.
	if _, ok := s2.Get(addr); ok {
		t.Fatal("corrupt body served")
	}
	if got := s2.Stats().CorruptDropped; got != 1 {
		t.Errorf("corrupt_dropped = %d, want 1", got)
	}
	// Dropped from the index: the next Get misses fast.
	if s2.Has(addr) {
		t.Error("corrupt record still indexed")
	}
	// The bystander record is unaffected.
	if _, ok := s2.Get(testAddr("bystander")); !ok {
		t.Error("bystander record lost")
	}
}

func TestKeysSortedDeterministic(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	want := []string{}
	for i := 0; i < 10; i++ {
		label := fmt.Sprintf("k-%d", i)
		if err := s.Put(testAddr(label), testBody(label)); err != nil {
			t.Fatal(err)
		}
		want = append(want, testAddr(label))
	}
	keys := s.Keys()
	if len(keys) != len(want) {
		t.Fatalf("keys = %d, want %d", len(keys), len(want))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys not sorted at %d", i)
		}
	}
}

func TestPutRejectsBadAddress(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{})
	for _, addr := range []string{
		"", "abc", testAddr("x")[:63],
		"G" + testAddr("x")[1:], // non-hex
	} {
		if err := s.Put(addr, []byte("body")); err == nil {
			t.Errorf("put with address %q accepted", addr)
		}
	}
}
