package cas

import (
	"errors"
	"fmt"
	"os"
	"testing"
	"time"
)

// corruptOnDisk flips one byte of addr's live record at relative
// offset rel inside its segment file, simulating bit rot under a
// running store.
func corruptOnDisk(t *testing.T, s *Store, addr string, rel int64) {
	t.Helper()
	s.mu.Lock()
	loc, ok := s.index[addr]
	var path string
	if ok {
		path = s.segs[loc.seg].path
	}
	s.mu.Unlock()
	if !ok {
		t.Fatalf("corruptOnDisk: %s not indexed", addr)
	}
	if rel < 0 || rel >= loc.size {
		t.Fatalf("corruptOnDisk: rel %d outside record of %d bytes", rel, loc.size)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], loc.off+rel); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], loc.off+rel); err != nil {
		t.Fatal(err)
	}
}

// scrubFullPass drives ScrubStep in small increments until a pass
// completes, returning the total scanned/corrupt for the pass.
func scrubFullPass(t *testing.T, s *Store, step int) ScrubProgress {
	t.Helper()
	var total ScrubProgress
	for i := 0; i < 100000; i++ {
		pr := s.ScrubStep(step)
		total.Scanned += pr.Scanned
		total.Corrupt += pr.Corrupt
		if pr.PassComplete {
			total.PassComplete = true
			return total
		}
	}
	t.Fatal("scrub pass never completed")
	return total
}

func TestScrubCleanPass(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{ScrubSeed: 7})
	const n = 50
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("clean-%d", i)
		if err := s.Put(testAddr(label), testBody(label)); err != nil {
			t.Fatal(err)
		}
	}
	// Pass 1 starts at the seeded position; pass 2 covers the full set.
	scrubFullPass(t, s, 7)
	second := scrubFullPass(t, s, 7)
	if second.Scanned != n {
		t.Errorf("second pass scanned %d records, want %d", second.Scanned, n)
	}
	st := s.Stats()
	if st.ScrubCorrupt != 0 || st.Quarantined != 0 {
		t.Errorf("clean store reported corrupt=%d quarantined=%d", st.ScrubCorrupt, st.Quarantined)
	}
	if st.ScrubPasses != 2 {
		t.Errorf("passes = %d, want 2", st.ScrubPasses)
	}
	if st.ScrubVerified < n {
		t.Errorf("verified = %d, want >= %d", st.ScrubVerified, n)
	}
	if st.ScrubCursor == "" {
		t.Error("stats did not render a scrub cursor")
	}
}

func TestScrubDetectsQuarantinesAndRepairs(t *testing.T) {
	// Automatic compaction disabled so the damaged segment stays put
	// for inspection; the trigger path is covered separately below.
	s := openTest(t, t.TempDir(), Options{CompactDeadFrac: -1, ScrubSeed: 1})
	const n = 20
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("rot-%d", i)
		if err := s.Put(testAddr(label), testBody(label)); err != nil {
			t.Fatal(err)
		}
	}
	// Three flavors of rot: a body byte, a header (address) byte, and a
	// byte of the stored digest.
	bad := []string{testAddr("rot-3"), testAddr("rot-8"), testAddr("rot-15")}
	corruptOnDisk(t, s, bad[0], headerSize+2) // body
	corruptOnDisk(t, s, bad[1], 5)            // addr inside the header
	corruptOnDisk(t, s, bad[2], 40)           // digest inside the header

	scrubFullPass(t, s, 3)
	scrubFullPass(t, s, 3) // second pass covers any seeded-start skip

	st := s.Stats()
	if st.ScrubCorrupt != 3 {
		t.Fatalf("scrub found %d corrupt records, want 3", st.ScrubCorrupt)
	}
	if st.Quarantined != 3 {
		t.Fatalf("quarantined = %d, want 3", st.Quarantined)
	}
	rep := s.ScrubReport()
	if len(rep) != 3 {
		t.Fatalf("scrub report has %d entries, want 3", len(rep))
	}
	for i, e := range rep {
		if e.Reason == "" {
			t.Errorf("report entry %d has no reason", i)
		}
		if i > 0 && rep[i-1].Addr >= e.Addr {
			t.Error("scrub report not sorted by address")
		}
	}
	for _, addr := range bad {
		if !s.Quarantined(addr) {
			t.Errorf("%s not quarantined", addr)
		}
		if _, ok := s.Get(addr); ok {
			t.Errorf("%s served after being condemned", addr)
		}
	}
	// Healthy records are untouched.
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("rot-%d", i)
		if i == 3 || i == 8 || i == 15 {
			continue
		}
		if body, ok := s.Get(testAddr(label)); !ok || string(body) != string(testBody(label)) {
			t.Fatalf("healthy record %d damaged by scrub", i)
		}
	}

	// A verified re-Put heals the quarantine and counts the repair.
	if err := s.Put(bad[0], testBody("rot-3")); err != nil {
		t.Fatal(err)
	}
	if s.Quarantined(bad[0]) {
		t.Error("re-Put did not clear the quarantine")
	}
	if got := s.Stats().ScrubRepaired; got != 1 {
		t.Errorf("scrub_repaired = %d, want 1", got)
	}
	if body, ok := s.Get(bad[0]); !ok || string(body) != string(testBody("rot-3")) {
		t.Error("repaired record not served")
	}
}

func TestScrubTriggersCompaction(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{SegmentBytes: 4 << 10})
	const n = 30
	for i := 0; i < n; i++ {
		label := fmt.Sprintf("tc-%d", i)
		if err := s.Put(testAddr(label), testBody(label)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Compactions()
	corruptOnDisk(t, s, testAddr("tc-4"), headerSize+1)
	scrubFullPass(t, s, 64)
	scrubFullPass(t, s, 64)
	deadline := time.Now().Add(5 * time.Second)
	for s.Compactions() == before {
		if time.Now().After(deadline) {
			t.Fatal("scrub-detected corruption did not trigger a compaction")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The rewrite must carry every healthy record and stay serviceable.
	for i := 0; i < n; i++ {
		if i == 4 {
			continue
		}
		label := fmt.Sprintf("tc-%d", i)
		if body, ok := s.Get(testAddr(label)); !ok || string(body) != string(testBody(label)) {
			t.Fatalf("record %d lost across the corruption-triggered compaction", i)
		}
	}
	if !s.Quarantined(testAddr("tc-4")) {
		t.Error("compaction cleared the quarantine without a repair")
	}
}

func TestScrubCursorDeterministic(t *testing.T) {
	build := func(dir string) *Store {
		s := openTest(t, dir, Options{ScrubSeed: 42, CompactDeadFrac: -1})
		for i := 0; i < 40; i++ {
			label := fmt.Sprintf("det-%d", i)
			if err := s.Put(testAddr(label), testBody(label)); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	a, b := build(t.TempDir()), build(t.TempDir())
	for step := 0; step < 25; step++ {
		pa, pb := a.ScrubStep(3), b.ScrubStep(3)
		if pa != pb {
			t.Fatalf("step %d diverged: %+v vs %+v", step, pa, pb)
		}
		ca, cb := a.Stats().ScrubCursor, b.Stats().ScrubCursor
		if ca != cb {
			t.Fatalf("step %d cursor diverged: %s vs %s", step, ca, cb)
		}
	}
}

func TestGetEClassifiesCorruptVsAbsent(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{CompactDeadFrac: -1})
	addr := testAddr("gete")
	if err := s.Put(addr, testBody("gete")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetE(testAddr("never")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("absent address: got %v, want ErrNotFound", err)
	}
	corruptOnDisk(t, s, addr, headerSize+3)
	_, err := s.GetE(addr)
	if err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt read: got %v, want a verification error", err)
	}
	if !s.Quarantined(addr) {
		t.Error("corrupt read did not quarantine the address")
	}
	// The corruption is surfaced exactly once; afterwards it is a miss.
	if _, err := s.GetE(addr); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second read: got %v, want ErrNotFound", err)
	}
}
