package cas

import (
	"fmt"
	"os"
	"sort"
)

// CompactStats summarizes one compaction pass.
type CompactStats struct {
	// SegmentsIn/SegmentsOut count sealed segments consumed and fresh
	// segments produced.
	SegmentsIn  int
	SegmentsOut int
	// Rewritten counts live records carried into fresh segments.
	Rewritten int
	// ReclaimedBytes counts dead bytes (superseded records) whose space
	// was reclaimed with the retired segments.
	ReclaimedBytes int64
	// DroppedCorrupt counts records failing their CRC or SHA-256 digest
	// during the rewrite — compaction is also the scrubber.
	DroppedCorrupt int
	// Evicted counts live records dropped to honour the MaxBytes
	// budget: the coldest by sketch estimate, oldest first.
	Evicted int
	// BytesBefore/BytesAfter are the on-disk totals around the pass.
	BytesBefore int64
	BytesAfter  int64
}

// maybeCompact triggers a background compaction when dead bytes exceed
// the configured fraction of the store, or the live bytes exceed the
// MaxBytes budget. Single-flight: a pass already running absorbs the
// trigger.
func (s *Store) maybeCompact() {
	if s.opt.CompactDeadFrac < 0 {
		return // automatic compaction disabled (tests drive it directly)
	}
	s.mu.Lock()
	total := s.liveBytes + s.deadBytes
	needDead := total > 0 &&
		float64(s.deadBytes) > s.opt.CompactDeadFrac*float64(total) &&
		s.deadBytes > s.opt.SegmentBytes/4
	needBudget := s.opt.MaxBytes > 0 && s.liveBytes > s.opt.MaxBytes
	s.mu.Unlock()
	if !needDead && !needBudget {
		return
	}
	if !s.compactMu.TryLock() {
		return // a pass is already running; it absorbs this trigger
	}
	s.spawnCompact()
}

// spawnCompact launches the single background compaction pass. Caller
// holds s.compactMu, which the pass releases when it finishes. The
// closed re-check and the WaitGroup Add share one mu critical section,
// so Close (which sets closed under mu, then waits) either sees the
// Add or prevents the spawn — never a pass it did not wait for.
func (s *Store) spawnCompact() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.compactMu.Unlock()
		return
	}
	s.compactWG.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.compactWG.Done()
		defer s.compactMu.Unlock()
		_, _ = s.compact()
	}()
}

// Compact synchronously rewrites every live record from sealed segments
// into fresh ones, drops superseded and corrupt records, evicts the
// coldest live records past the MaxBytes budget, and deletes the
// consumed segment files. Concurrent Puts and Gets stay correct
// throughout: the rewrite works from a snapshot, and the index swap
// skips any address overwritten mid-pass.
func (s *Store) Compact() (CompactStats, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	return s.compact()
}

// compact is the single-flight body. Caller holds s.compactMu.
func (s *Store) compact() (CompactStats, error) {
	var st CompactStats

	// Snapshot: seal the active segment so every record to move lives
	// in a read-only file, then list the live set.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return st, fmt.Errorf("cas: compact: store closed")
	}
	if err := s.rollLocked(); err != nil {
		s.mu.Unlock()
		return st, err
	}
	activeID := s.active.id
	st.BytesBefore = s.liveBytes + s.deadBytes
	type liveRec struct {
		addr string
		loc  recordLoc
	}
	live := make([]liveRec, 0, len(s.index))
	for addr, loc := range s.index {
		if loc.seg != activeID {
			live = append(live, liveRec{addr, loc})
		}
	}
	oldSegs := make([]*segment, 0, len(s.segs))
	for id, seg := range s.segs {
		if id != activeID {
			oldSegs = append(oldSegs, seg)
			st.SegmentsIn++
			st.ReclaimedBytes += seg.size - seg.live
		}
	}
	s.mu.Unlock()

	// Deterministic order: oldest record first (segment id, offset), so
	// two stores that saw the same operation sequence compact to
	// byte-identical segment contents.
	sort.Slice(live, func(i, j int) bool {
		if live[i].loc.seg != live[j].loc.seg {
			return live[i].loc.seg < live[j].loc.seg
		}
		return live[i].loc.off < live[j].loc.off
	})

	// MaxBytes budget: evict the coldest live records first — lowest
	// sketch estimate, ties broken oldest-first — until what remains
	// fits. Records in the active segment are not evicted (they are the
	// newest writes; the next pass sees them sealed).
	evict := map[string]bool{}
	if s.opt.MaxBytes > 0 {
		var liveTotal int64
		for _, lr := range live {
			liveTotal += lr.loc.size
		}
		byCold := append([]liveRec(nil), live...)
		sort.SliceStable(byCold, func(i, j int) bool {
			ei, ej := s.sketch.Estimate(byCold[i].addr), s.sketch.Estimate(byCold[j].addr)
			if ei != ej {
				return ei < ej
			}
			if byCold[i].loc.seg != byCold[j].loc.seg {
				return byCold[i].loc.seg < byCold[j].loc.seg
			}
			return byCold[i].loc.off < byCold[j].loc.off
		})
		for _, lr := range byCold {
			if liveTotal <= s.opt.MaxBytes {
				break
			}
			evict[lr.addr] = true
			liveTotal -= lr.loc.size
		}
	}

	// Rewrite the survivors into fresh compaction segments, verifying
	// each body against its stored digest — DecodeRecord recomputes the
	// SHA-256, so a record that rotted on disk is dropped here instead
	// of being carried forward.
	type moved struct {
		addr string
		from recordLoc
		to   recordLoc
	}
	var moves []moved
	var outSegs []*segment
	var out *segment
	var outW *os.File
	closeOut := func() error {
		if outW == nil {
			return nil
		}
		if err := outW.Sync(); err != nil {
			return err
		}
		return outW.Close()
	}
	fail := func(err error) (CompactStats, error) {
		_ = closeOut()
		for _, seg := range outSegs {
			if seg.r != nil {
				seg.r.Close()
			}
			os.Remove(seg.path)
		}
		return st, err
	}
	for _, lr := range live {
		if evict[lr.addr] {
			st.Evicted++
			continue
		}
		s.mu.Lock()
		cur, ok := s.index[lr.addr]
		seg := s.segs[lr.loc.seg]
		s.mu.Unlock()
		if !ok || cur != lr.loc || seg == nil {
			continue // overwritten or dropped mid-pass; nothing to carry
		}
		buf := make([]byte, lr.loc.size)
		if _, err := seg.r.ReadAt(buf, lr.loc.off); err != nil {
			st.DroppedCorrupt++
			s.dropCorrupt(lr.addr, lr.loc, fmt.Errorf("cas: compact read: %w", err))
			continue
		}
		if err := VerifyRecord(buf, lr.addr); err != nil {
			st.DroppedCorrupt++
			s.dropCorrupt(lr.addr, lr.loc, err)
			continue
		}
		if out == nil || out.size+int64(len(buf)) > s.opt.SegmentBytes {
			if err := closeOut(); err != nil {
				return fail(fmt.Errorf("cas: compact: %w", err))
			}
			outW = nil
			var nerr error
			out, outW, nerr = s.newCompactionSegment()
			if nerr != nil {
				return fail(nerr)
			}
			outSegs = append(outSegs, out)
			st.SegmentsOut++
		}
		if _, err := outW.Write(buf); err != nil {
			return fail(fmt.Errorf("cas: compact: %w", err))
		}
		moves = append(moves, moved{
			addr: lr.addr,
			from: lr.loc,
			to:   recordLoc{seg: out.id, off: out.size, size: lr.loc.size, digest: lr.loc.digest},
		})
		out.size += int64(len(buf))
		out.live += int64(len(buf))
		st.Rewritten++
	}
	if err := closeOut(); err != nil {
		return fail(fmt.Errorf("cas: compact: %w", err))
	}

	// Swap: point the index at the fresh segments (skipping addresses
	// overwritten mid-pass), install the new segments, retire the old.
	s.mu.Lock()
	for _, seg := range outSegs {
		s.segs[seg.id] = seg
	}
	for _, mv := range moves {
		if cur, ok := s.index[mv.addr]; ok && cur == mv.from {
			s.index[mv.addr] = mv.to
		} else {
			// A Put superseded this record while it was being copied;
			// the fresh copy is dead on arrival.
			s.segs[mv.to.seg].live -= mv.to.size
		}
	}
	for _, seg := range oldSegs {
		delete(s.segs, seg.id)
	}
	// Eviction removes index entries whose segments are being retired.
	for addr := range evict {
		if cur, ok := s.index[addr]; ok {
			stillOld := true
			for _, seg := range outSegs {
				if cur.seg == seg.id {
					stillOld = false
					break
				}
			}
			if cur.seg == activeID {
				stillOld = false
			}
			if stillOld {
				delete(s.index, addr)
				s.evicted.Add(1)
			}
		}
	}
	// Recompute byte accounting from the surviving segments — simpler
	// and safer than deltas across a concurrent pass.
	s.liveBytes, s.deadBytes = 0, 0
	for _, seg := range s.segs {
		if seg.live < 0 {
			seg.live = 0
		}
		s.liveBytes += seg.live
		s.deadBytes += seg.size - seg.live
	}
	st.BytesAfter = s.liveBytes + s.deadBytes
	s.mu.Unlock()

	for _, seg := range oldSegs {
		if seg.r != nil {
			seg.r.Close()
		}
		os.Remove(seg.path)
	}
	s.compactions.Add(1)
	s.compGen.Add(1)
	return st, nil
}

// newCompactionSegment opens a fresh segment for compaction output.
func (s *Store) newCompactionSegment() (*segment, *os.File, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextSeg
	s.nextSeg++
	path := s.segPath(id)
	w, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("cas: compact segment: %w", err)
	}
	r, err := os.Open(path)
	if err != nil {
		w.Close()
		return nil, nil, fmt.Errorf("cas: compact segment: %w", err)
	}
	return &segment{id: id, path: path, r: r}, w, nil
}

// segPath names segment id's file.
func (s *Store) segPath(id uint32) string {
	return fmt.Sprintf("%s/"+segPattern, s.opt.Dir, id)
}

// Compactions reports completed compaction passes.
func (s *Store) Compactions() int64 { return s.compactions.Load() }
