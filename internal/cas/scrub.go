package cas

import (
	"fmt"
	"sort"
)

// The scrubber walks the live record set in deterministic (segment id,
// offset) order, re-reading and fully verifying each record — header
// CRC, body CRC, SHA-256 body digest, and agreement with the index —
// so a bit that rots in a cold segment is found on the next pass, not
// on the next unlucky read. A record that fails verification is
// dropped from the index (its bytes become dead), quarantined in the
// scrub report, and a compaction is triggered to rewrite the damaged
// segment; the quarantine entry is cleared — and counted
// scrub_repaired — when a verified copy is re-Put under the same
// address by read-repair or recompute.
//
// Determinism: ScrubStep is a pure function of the operation sequence
// and the seed. The only randomness is the seeded choice of where the
// very first pass begins (so a fleet of stores does not scrub the same
// region in lockstep); pacing — how often steps run — is the caller's
// business (cmd/gapd drives it from a ticker), keeping this package
// free of wall-clock reads per the gaplint determinism policy.

// scrubPos orders records for the cursor walk.
type scrubPos struct {
	seg uint32
	off int64
}

func (p scrubPos) less(q scrubPos) bool {
	if p.seg != q.seg {
		return p.seg < q.seg
	}
	return p.off < q.off
}

// ScrubProgress summarizes one ScrubStep call.
type ScrubProgress struct {
	// Scanned counts records read and verified (or failed) this step.
	Scanned int
	// Corrupt counts records that failed verification this step.
	Corrupt int
	// PassComplete reports that this step reached the end of the live
	// set; the next step begins a fresh pass from the first record.
	PassComplete bool
}

// QuarantineEntry is one corrupt record awaiting repair: where it was
// found and why it was condemned. Entries persist across compactions
// (the damaged bytes are gone, the obligation to heal the address is
// not) until a verified copy is re-Put.
type QuarantineEntry struct {
	Addr    string `json:"addr"`
	Segment uint32 `json:"segment"`
	Offset  int64  `json:"offset"`
	Reason  string `json:"reason"`
}

// VerifyRecord is the scrubber's per-record verdict: buf must decode
// as a complete, CRC- and digest-clean record whose content address is
// addr. A nil return means the bytes are serviceable; any error means
// the record must be quarantined, classified by the codec error
// taxonomy (ErrShortRecord, ErrBadMagic, ErrHeaderCRC, ErrBodyCRC,
// ErrDigestMismatch, ErrBadAddress).
func VerifyRecord(buf []byte, addr string) error {
	rec, _, err := DecodeRecord(buf)
	if err != nil {
		return err
	}
	if rec.Addr != addr {
		return fmt.Errorf("%w: record holds %s, index expected %s", ErrBadAddress, rec.Addr, addr)
	}
	return nil
}

// ScrubStep verifies up to maxRecords live records, advancing the
// cursor; it is the unit of work a pacing loop schedules. Corrupt
// records are dropped, quarantined, and — if any were found — a
// background compaction is triggered to rewrite the damaged segments.
// Safe to call concurrently with Puts, Gets, and compaction: a record
// the index no longer points at (superseded or moved mid-step) is
// skipped, not condemned.
func (s *Store) ScrubStep(maxRecords int) ScrubProgress {
	var pr ScrubProgress
	if s == nil || maxRecords <= 0 {
		return pr
	}
	s.scrubMu.Lock()
	defer s.scrubMu.Unlock()

	// Snapshot the live set in cursor order.
	type target struct {
		addr string
		loc  recordLoc
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return pr
	}
	live := make([]target, 0, len(s.index))
	for addr, loc := range s.index {
		live = append(live, target{addr, loc})
	}
	s.mu.Unlock()
	sort.Slice(live, func(i, j int) bool {
		return scrubPos{live[i].loc.seg, live[i].loc.off}.less(scrubPos{live[j].loc.seg, live[j].loc.off})
	})

	endPass := func() {
		s.scrubInPass = false
		s.scrubPasses.Add(1)
		pr.PassComplete = true
	}
	if len(live) == 0 {
		if s.scrubInPass {
			endPass()
		}
		return pr
	}

	start := 0
	switch {
	case s.scrubInPass:
		// Resume after the cursor. Everything at or before it was
		// either verified or has moved (a moved record is re-verified
		// next pass at its new position).
		cur := s.scrubCursor
		start = sort.Search(len(live), func(i int) bool {
			return cur.less(scrubPos{live[i].loc.seg, live[i].loc.off})
		})
		if start >= len(live) {
			endPass()
			return pr
		}
	case !s.scrubStarted:
		// Seeded first-pass start; later passes always cover the full
		// set from the beginning.
		s.scrubStarted = true
		s.scrubInPass = true
		start = s.scrubRng.Intn(len(live))
	default:
		s.scrubInPass = true
	}

	i := start
	for ; i < len(live) && pr.Scanned < maxRecords; i++ {
		t := live[i]
		pos := scrubPos{t.loc.seg, t.loc.off}

		s.mu.Lock()
		cur, ok := s.index[t.addr]
		seg := s.segs[t.loc.seg]
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return pr
		}
		if !ok || cur != t.loc || seg == nil || seg.r == nil {
			s.advanceCursor(pos)
			continue // superseded, dropped, or compacted away mid-step
		}

		buf := make([]byte, t.loc.size)
		_, err := seg.r.ReadAt(buf, t.loc.off)
		if err != nil {
			err = fmt.Errorf("cas: scrub read seg %d off %d: %w", t.loc.seg, t.loc.off, err)
		} else {
			err = VerifyRecord(buf, t.addr)
			if err == nil {
				var rec Record
				rec, _, _ = DecodeRecord(buf)
				if rec.Digest != t.loc.digest {
					err = fmt.Errorf("%w: disk digest disagrees with index", ErrDigestMismatch)
				}
			}
		}
		pr.Scanned++
		if err != nil {
			// A read error against a store that closed mid-step is
			// shutdown, not rot: leave the record alone.
			s.mu.Lock()
			closed = s.closed
			s.mu.Unlock()
			if closed {
				return pr
			}
			pr.Corrupt++
			s.scrubCorrupt.Add(1)
			s.dropCorrupt(t.addr, t.loc, err)
		} else {
			s.scrubVerified.Add(1)
		}
		s.advanceCursor(pos)
	}
	if i >= len(live) {
		endPass()
	}
	if pr.Corrupt > 0 {
		s.triggerCompact()
	}
	return pr
}

// advanceCursor records the last position the walk covered. Caller
// holds scrubMu; the atomic mirror lets Stats render the cursor
// without taking the scrub lock.
func (s *Store) advanceCursor(p scrubPos) {
	s.scrubCursor = p
	s.scrubCursorSeg.Store(int64(p.seg))
	s.scrubCursorOff.Store(p.off)
}

// triggerCompact starts a background compaction to rewrite segments
// holding freshly condemned records. Single-flight, and honours the
// CompactDeadFrac < 0 escape hatch (tests drive compaction directly).
func (s *Store) triggerCompact() {
	if s.opt.CompactDeadFrac < 0 {
		return
	}
	if !s.compactMu.TryLock() {
		return // a pass is already running; it absorbs this trigger
	}
	s.spawnCompact()
}

// Quarantined reports whether addr is awaiting repair: its record was
// condemned (by scrub, read, or compaction) and no verified copy has
// been re-Put since. The jobs layer uses this to route a miss through
// read-repair before admitting a recompute.
func (s *Store) Quarantined(addr string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.quarantine[addr]
	return ok
}

// ScrubReport snapshots the quarantine — every condemned address not
// yet healed — in deterministic (sorted by address) order.
func (s *Store) ScrubReport() []QuarantineEntry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]QuarantineEntry, 0, len(s.quarantine))
	for _, e := range s.quarantine {
		out = append(out, e)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
