package cas

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	addr := testAddr("round-trip")
	body := testBody("round-trip")
	enc, err := EncodeRecord(addr, body)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(enc)) != recordSize(len(body)) {
		t.Fatalf("encoded %d bytes, want %d", len(enc), recordSize(len(body)))
	}
	rec, n, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d, want %d", n, len(enc))
	}
	if rec.Addr != addr || string(rec.Body) != string(body) {
		t.Error("round trip lost data")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	addr := testAddr("c")
	body := testBody("c")
	enc, err := EncodeRecord(addr, body)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mangle func([]byte)
		want   error
	}{
		{"bad magic", func(b []byte) { b[0] ^= 0xff }, ErrBadMagic},
		{"flipped addr bit", func(b []byte) { b[10] ^= 0x01 }, ErrHeaderCRC},
		{"flipped digest bit", func(b []byte) { b[40] ^= 0x01 }, ErrHeaderCRC},
		{"flipped length", func(b []byte) { b[68] ^= 0x01 }, ErrHeaderCRC},
		{"flipped header crc", func(b []byte) { b[72] ^= 0x01 }, ErrHeaderCRC},
		{"flipped body bit", func(b []byte) { b[headerSize+1] ^= 0x01 }, ErrBodyCRC},
		{"flipped body crc", func(b []byte) { b[len(b)-1] ^= 0x01 }, ErrBodyCRC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mangled := append([]byte(nil), enc...)
			tc.mangle(mangled)
			if _, _, err := DecodeRecord(mangled); !errors.Is(err, tc.want) {
				t.Errorf("decode = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestDecodeDigestMismatch crafts a record whose CRCs are valid but
// whose digest field lies about the body — the case only the SHA-256
// end-to-end check catches.
func TestDecodeDigestMismatch(t *testing.T) {
	addr := testAddr("d")
	body := testBody("d")
	enc, err := EncodeRecord(addr, body)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the digest, then re-seal the header CRC so the header
	// parses clean.
	enc[40] ^= 0x01
	binary.LittleEndian.PutUint32(enc[72:76], crc32.ChecksumIEEE(enc[:72]))
	if _, _, err := DecodeRecord(enc); !errors.Is(err, ErrDigestMismatch) {
		t.Errorf("decode = %v, want ErrDigestMismatch", err)
	}
}

func TestDecodeShortInputs(t *testing.T) {
	enc, err := EncodeRecord(testAddr("s"), testBody("s"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, _, derr := DecodeRecord(enc[:cut]); !errors.Is(derr, ErrShortRecord) {
			t.Fatalf("decode of %d/%d bytes = %v, want ErrShortRecord", cut, len(enc), derr)
		}
	}
}

// TestSegmentTornTail is the satellite acceptance test: a segment
// truncated mid-record at any byte boundary must boot cleanly, indexing
// only the complete records before the tear — mirroring the journal's
// torn-tail handling. The table walks every truncation point inside the
// final record (header bytes, body bytes, trailer bytes) plus exact
// record boundaries.
func TestSegmentTornTail(t *testing.T) {
	// Build a reference segment of three records in memory.
	labels := []string{"tt-0", "tt-1", "tt-2"}
	var full []byte
	var bounds []int64 // clean end after each record
	for _, l := range labels {
		enc, err := EncodeRecord(testAddr(l), testBody(l))
		if err != nil {
			t.Fatal(err)
		}
		full = append(full, enc...)
		bounds = append(bounds, int64(len(full)))
	}

	// Truncation points: every byte of the last record, plus each exact
	// boundary. wantRecords is how many complete records survive.
	type tornCase struct {
		cut  int64
		want int
	}
	var cases []tornCase
	for cut := bounds[1]; cut <= bounds[2]; cut++ {
		want := 2
		if cut == bounds[2] {
			want = 3
		}
		cases = append(cases, tornCase{cut, want})
	}
	cases = append(cases,
		tornCase{0, 0},
		tornCase{1, 0},
		tornCase{bounds[0] - 1, 0},
		tornCase{bounds[0], 1},
		tornCase{bounds[0] + headerSize/2, 1},
	)

	for _, tc := range cases {
		t.Run(fmt.Sprintf("cut%d", tc.cut), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, fmt.Sprintf(segPattern, uint32(0)))
			if err := os.WriteFile(path, full[:tc.cut], 0o644); err != nil {
				t.Fatal(err)
			}
			s, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("boot with tail torn at %d failed: %v", tc.cut, err)
			}
			defer s.Close()
			if got := s.Len(); got != tc.want {
				t.Fatalf("indexed %d records, want %d", got, tc.want)
			}
			for i := 0; i < tc.want; i++ {
				body, ok := s.Get(testAddr(labels[i]))
				if !ok || string(body) != string(testBody(labels[i])) {
					t.Fatalf("record %d unreadable after torn-tail boot", i)
				}
			}
			torn := tc.cut != 0 && tc.cut != bounds[len(bounds)-1] &&
				!(tc.want > 0 && tc.cut == bounds[tc.want-1])
			if got := s.Stats().TornTails > 0; got != torn {
				t.Errorf("torn_tails reported %v, want %v (cut %d)", got, torn, tc.cut)
			}
			// The tear was physically truncated: appending lands on a
			// clean boundary and survives another reopen.
			if err := s.Put(testAddr("after-tear"), testBody("after-tear")); err != nil {
				t.Fatal(err)
			}
			s.Close()
			s2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer s2.Close()
			if got := s2.Len(); got != tc.want+1 {
				t.Fatalf("after append+reopen: %d records, want %d", got, tc.want+1)
			}
			if _, ok := s2.Get(testAddr("after-tear")); !ok {
				t.Error("append after tear lost on reopen")
			}
		})
	}
}

// TestMidFileCorruptionStopsScan: a corrupted header mid-file means
// later boundaries cannot be trusted; boot indexes the clean prefix
// only.
func TestMidFileCorruptionStopsScan(t *testing.T) {
	labels := []string{"m-0", "m-1", "m-2"}
	var full []byte
	var bounds []int
	for _, l := range labels {
		enc, err := EncodeRecord(testAddr(l), testBody(l))
		if err != nil {
			t.Fatal(err)
		}
		full = append(full, enc...)
		bounds = append(bounds, len(full))
	}
	// Smash record 1's magic.
	full[bounds[0]] ^= 0xff

	dir := t.TempDir()
	path := filepath.Join(dir, fmt.Sprintf(segPattern, uint32(0)))
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Len(); got != 1 {
		t.Fatalf("indexed %d records past corruption, want 1", got)
	}
	if _, ok := s.Get(testAddr("m-0")); !ok {
		t.Error("clean prefix record lost")
	}
}
