package cas

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSegmentDecode drives the pure record decoder with arbitrary
// bytes: it must never panic, never allocate past the declared bounds,
// and classify every input as exactly one of valid / short / corrupt.
// Valid decodes must round-trip through EncodeRecord to the identical
// bytes — the property the boot scan and compaction rewrite rely on.
func FuzzSegmentDecode(f *testing.F) {
	good, err := EncodeRecord(testAddr("seed"), testBody("seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-3])  // torn trailer
	f.Add(good[:headerSize-1]) // torn header
	f.Add([]byte{})
	f.Add([]byte("GCS1 but not really a record"))
	mangled := append([]byte(nil), good...)
	mangled[40] ^= 0x08 // digest bit
	f.Add(mangled)
	two := append(append([]byte(nil), good...), good...)
	f.Add(two)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			// Every failure must be one of the typed codec errors.
			switch {
			case errors.Is(err, ErrShortRecord),
				errors.Is(err, ErrBadMagic),
				errors.Is(err, ErrHeaderCRC),
				errors.Is(err, ErrBodyCRC),
				errors.Is(err, ErrDigestMismatch):
			default:
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A valid record re-encodes to the exact bytes it was read from.
		enc, eerr := EncodeRecord(rec.Addr, rec.Body)
		if eerr != nil {
			t.Fatalf("decoded record does not re-encode: %v", eerr)
		}
		if !bytes.Equal(enc, data[:n]) {
			t.Fatal("decode/encode round trip is not byte-identical")
		}
	})
}

// FuzzScrubRecord drives the scrubber's verify/quarantine decision.
// Two properties: (1) VerifyRecord classifies arbitrary bytes with the
// typed codec taxonomy and never panics; (2) every single-byte
// mutation of a valid record is condemned — the record format leaves
// no byte uncovered (header CRC over the fixed prefix, body CRC and
// SHA-256 digest over the payload), so the scrubber's quarantine
// decision cannot pass rotted bytes.
func FuzzScrubRecord(f *testing.F) {
	addr := testAddr("scrub-seed")
	good, err := EncodeRecord(addr, testBody("scrub-seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{}, uint16(0), byte(1))
	f.Add(good, uint16(1), byte(0x80))            // addr byte
	f.Add(good, uint16(40), byte(0x08))           // digest byte
	f.Add(good, uint16(70), byte(0x01))           // bodyLen byte
	f.Add(good, uint16(headerSize+5), byte(0x40)) // body byte
	f.Add(good, uint16(len(good)-1), byte(0x02))  // trailer CRC byte
	f.Add([]byte("GCS1 but not a record"), uint16(3), byte(4))

	f.Fuzz(func(t *testing.T, data []byte, pos uint16, flip byte) {
		// Arbitrary bytes: no panic, and every failure is typed.
		if err := VerifyRecord(data, addr); err != nil {
			switch {
			case errors.Is(err, ErrShortRecord),
				errors.Is(err, ErrBadMagic),
				errors.Is(err, ErrHeaderCRC),
				errors.Is(err, ErrBodyCRC),
				errors.Is(err, ErrDigestMismatch),
				errors.Is(err, ErrBadAddress):
			default:
				t.Fatalf("untyped verify error: %v", err)
			}
		}
		// The quarantine decision: flipping any bit of a valid record
		// must fail verification.
		if flip == 0 {
			flip = 1
		}
		mut := append([]byte(nil), good...)
		i := int(pos) % len(mut)
		mut[i] ^= flip
		if err := VerifyRecord(mut, addr); err == nil {
			t.Fatalf("record mutated at byte %d (xor %#x) passed verification", i, flip)
		}
	})
}
