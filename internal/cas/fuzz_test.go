package cas

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzSegmentDecode drives the pure record decoder with arbitrary
// bytes: it must never panic, never allocate past the declared bounds,
// and classify every input as exactly one of valid / short / corrupt.
// Valid decodes must round-trip through EncodeRecord to the identical
// bytes — the property the boot scan and compaction rewrite rely on.
func FuzzSegmentDecode(f *testing.F) {
	good, err := EncodeRecord(testAddr("seed"), testBody("seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-3])  // torn trailer
	f.Add(good[:headerSize-1]) // torn header
	f.Add([]byte{})
	f.Add([]byte("GCS1 but not really a record"))
	mangled := append([]byte(nil), good...)
	mangled[40] ^= 0x08 // digest bit
	f.Add(mangled)
	two := append(append([]byte(nil), good...), good...)
	f.Add(two)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			// Every failure must be one of the typed codec errors.
			switch {
			case errors.Is(err, ErrShortRecord),
				errors.Is(err, ErrBadMagic),
				errors.Is(err, ErrHeaderCRC),
				errors.Is(err, ErrBodyCRC),
				errors.Is(err, ErrDigestMismatch):
			default:
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A valid record re-encodes to the exact bytes it was read from.
		enc, eerr := EncodeRecord(rec.Addr, rec.Body)
		if eerr != nil {
			t.Fatalf("decoded record does not re-encode: %v", eerr)
		}
		if !bytes.Equal(enc, data[:n]) {
			t.Fatal("decode/encode round trip is not byte-identical")
		}
	})
}
