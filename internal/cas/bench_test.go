package cas

import (
	"fmt"
	"testing"
)

// benchBody is a realistic normalized-result envelope size (~1 KiB).
var benchBody = func() []byte {
	b := []byte(`{"id":"bench","kind":"evaluate","payload":"`)
	for len(b) < 1024 {
		b = append(b, "0123456789abcdef"...)
	}
	return append(b, '"', '}')
}()

// BenchmarkStorePut measures the durable append path (group-committed
// fsync included — this is the write cost a computed result pays).
func BenchmarkStorePut(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(testAddr(fmt.Sprintf("p-%d", i)), benchBody); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreGet measures a disk-tier read: index lookup, ReadAt,
// CRC + SHA-256 verification, body copy.
func BenchmarkStoreGet(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const n = 1024
	for i := 0; i < n; i++ {
		if err := s.Put(testAddr(fmt.Sprintf("g-%d", i)), benchBody); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(testAddr(fmt.Sprintf("g-%d", i%n))); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkStoreOpen measures warm-restart cost — the index rebuild by
// header scan — as a function of store size. This is the number that
// replaces journal replay time: it grows with record count, not with
// recompute cost.
func BenchmarkStoreOpen(b *testing.B) {
	for _, records := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("records%d", records), func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(Options{Dir: dir})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < records; i++ {
				if err := s.Put(testAddr(fmt.Sprintf("o-%d", i)), benchBody); err != nil {
					b.Fatal(err)
				}
			}
			s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s2, err := Open(Options{Dir: dir})
				if err != nil {
					b.Fatal(err)
				}
				if s2.Len() != records {
					b.Fatalf("index rebuilt %d records, want %d", s2.Len(), records)
				}
				b.StopTimer()
				s2.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkSketchTouch measures the admission sketch's hot-path cost.
func BenchmarkSketchTouch(b *testing.B) {
	s := NewSketch(4096)
	addrs := make([]string, 256)
	for i := range addrs {
		addrs[i] = testAddr(fmt.Sprintf("s-%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Touch(addrs[i%len(addrs)])
	}
}

// BenchmarkScrubStep measures the scrubber's per-record cost (index
// snapshot + sort amortized over the step, ReadAt, CRC + SHA-256
// verification) — the number the -scrub-rate flag budgets against.
func BenchmarkScrubStep(b *testing.B) {
	s, err := Open(Options{Dir: b.TempDir(), CompactDeadFrac: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	const n = 4096
	for i := 0; i < n; i++ {
		if err := s.Put(testAddr(fmt.Sprintf("s-%d", i)), benchBody); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	records := 0
	for i := 0; i < b.N; i++ {
		pr := s.ScrubStep(256)
		records += pr.Scanned
		if pr.Corrupt != 0 {
			b.Fatalf("clean store reported %d corrupt records", pr.Corrupt)
		}
	}
	b.StopTimer()
	if records > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(records), "ns/record")
	}
}
