// Package cas is a tiered content-addressed result store: the disk tier
// under the gapd RAM result cache. Results are appended to rolling
// segment files as fixed-format records (address, digest, length, CRC,
// body) with group-committed fsyncs; an in-memory index (address →
// segment/offset) is rebuilt on boot by scanning record headers, so a
// warm restart is an index rebuild, not a recompute. Background
// compaction rewrites live records into fresh segments and drops
// superseded and corrupt ones, using the stored SHA-256 digest as the
// integrity check, and a TinyLFU-style frequency sketch decides which
// results deserve the RAM tier versus being served from disk.
//
// Only the standard library is used. Everything the store does is a
// pure function of the operation sequence (no clock in any decision —
// the single annotated wall-clock seam stamps display timestamps only),
// so seeded chaos runs drive it through identical states.
package cas

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Options configures a Store.
type Options struct {
	// Dir is the segment directory (required; created if absent).
	Dir string
	// SegmentBytes rolls the active segment when it would exceed this
	// size (default 64 MiB).
	SegmentBytes int64
	// MaxBytes caps the store's live bytes; compaction evicts the
	// coldest records (lowest sketch estimate, oldest first) past it.
	// 0 means unlimited.
	MaxBytes int64
	// CompactDeadFrac triggers background compaction when dead bytes
	// exceed this fraction of the store (default 0.5; negative disables
	// every automatic trigger, including the MaxBytes budget pass —
	// Compact can still be called directly).
	CompactDeadFrac float64
	// SketchEntries sizes the admission sketch (default 4096 expected
	// hot entries).
	SketchEntries int
	// ScrubSeed seeds the scrubber's starting position (default 1), so
	// a fleet of stores opened with different seeds scrubs different
	// regions first instead of sweeping in lockstep. The walk itself is
	// a pure function of the operation sequence; see scrub.go.
	ScrubSeed int64
}

// recordLoc locates one live record.
type recordLoc struct {
	seg    uint32
	off    int64
	size   int64
	digest [32]byte
}

// segment is one on-disk segment file.
type segment struct {
	id   uint32
	path string
	r    *os.File // read handle (ReadAt)
	size int64
	live int64 // bytes of records the index still points at
}

// Store is the content-addressed segment store. All methods are safe
// for concurrent use.
type Store struct {
	opt    Options
	sketch *Sketch

	mu         sync.Mutex
	index      map[string]recordLoc
	segs       map[uint32]*segment
	active     *segment
	w          *os.File // append handle for the active segment
	nextSeg    uint32
	closed     bool
	quarantine map[string]QuarantineEntry // corrupt drops awaiting repair

	liveBytes int64
	deadBytes int64

	// Group commit: Put appends under mu, then queues a sync request;
	// the flusher drains the queue and answers a whole batch with one
	// fsync of the active segment (a rolled segment was synced before
	// it was sealed, so earlier bytes are already durable).
	syncCh chan chan error
	done   chan struct{}

	compactMu sync.Mutex // single-flights compaction passes
	// compactWG tracks the background pass spawned by maybeCompact /
	// triggerCompact so Close can wait for it before closing the
	// segment read handles the pass is still copying from. Adds happen
	// under mu with closed checked first, so no pass starts after Close
	// begins waiting.
	compactWG sync.WaitGroup
	compGen   atomic.Int64 // bumps on every completed compaction

	// Counters surfaced in Stats (and from there in /metrics).
	puts           atomic.Int64
	rewrites       atomic.Int64 // puts that superseded an existing record
	compactions    atomic.Int64
	evicted        atomic.Int64 // live records dropped by the MaxBytes budget
	corruptDropped atomic.Int64 // records failing CRC/digest on read or compaction
	tornTails      atomic.Int64 // segments truncated at boot
	bootRecords    int64
	createdAt      string // display only; see clock.go

	// Scrub state (scrub.go). scrubMu single-flights scrub steps and
	// guards the cursor walk; the counters are atomics so Stats reads
	// them without touching the scrub lock (lock order is always
	// scrubMu → mu, never the reverse).
	scrubMu      sync.Mutex
	scrubRng     *rand.Rand
	scrubCursor  scrubPos
	scrubInPass  bool
	scrubStarted bool

	scrubVerified  atomic.Int64
	scrubCorrupt   atomic.Int64
	scrubPasses    atomic.Int64
	scrubRepaired  atomic.Int64
	scrubCursorSeg atomic.Int64 // Stats mirror of scrubCursor
	scrubCursorOff atomic.Int64
}

// Stats is the store's operational snapshot.
type Stats struct {
	Segments       int    `json:"segments"`
	Records        int    `json:"records"`
	LiveBytes      int64  `json:"live_bytes"`
	DeadBytes      int64  `json:"dead_bytes"`
	TotalBytes     int64  `json:"total_bytes"`
	SegmentBytes   int64  `json:"segment_bytes"`
	MaxBytes       int64  `json:"max_bytes"`
	Puts           int64  `json:"puts"`
	Rewrites       int64  `json:"rewrites"`
	Compactions    int64  `json:"compactions"`
	Evicted        int64  `json:"evicted"`
	CorruptDropped int64  `json:"corrupt_dropped"`
	TornTails      int64  `json:"torn_tails"`
	BootRecords    int64  `json:"boot_records"`
	ScrubVerified  int64  `json:"scrub_verified"`
	ScrubCorrupt   int64  `json:"scrub_corrupt"`
	ScrubRepaired  int64  `json:"scrub_repaired"`
	ScrubPasses    int64  `json:"scrub_passes"`
	ScrubCursor    string `json:"scrub_cursor"`
	Quarantined    int    `json:"quarantined"`
	OpenedAt       string `json:"opened_at,omitempty"`
}

// segPattern names segment files; ids are monotonic.
const segPattern = "seg-%08d.cas"

// Open opens (creating if needed) the store in opt.Dir and rebuilds the
// in-memory index by scanning every segment's record headers. A segment
// truncated mid-record — a crash during append — is indexed up to its
// last complete record; the active segment's torn tail is physically
// truncated so new appends land on a clean boundary.
func Open(opt Options) (*Store, error) {
	if opt.Dir == "" {
		return nil, errors.New("cas: Options.Dir is required")
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 64 << 20
	}
	if opt.CompactDeadFrac == 0 {
		opt.CompactDeadFrac = 0.5
	}
	if opt.SketchEntries <= 0 {
		opt.SketchEntries = 4096
	}
	if opt.ScrubSeed == 0 {
		opt.ScrubSeed = 1
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: dir: %w", err)
	}
	s := &Store{
		opt:        opt,
		sketch:     NewSketch(opt.SketchEntries),
		index:      make(map[string]recordLoc),
		segs:       make(map[uint32]*segment),
		quarantine: make(map[string]QuarantineEntry),
		syncCh:     make(chan chan error, 128),
		done:       make(chan struct{}),
		createdAt:  displayNow(),
		scrubRng:   rand.New(rand.NewSource(opt.ScrubSeed)),
	}
	if err := s.boot(); err != nil {
		return nil, err
	}
	go s.flusher()
	return s, nil
}

// boot scans existing segments in id order and rebuilds the index; a
// later record for the same address supersedes an earlier one (its
// bytes become dead, reclaimed by the next compaction).
func (s *Store) boot() error {
	entries, err := os.ReadDir(s.opt.Dir)
	if err != nil {
		return fmt.Errorf("cas: boot: %w", err)
	}
	var ids []uint32
	for _, e := range entries {
		var id uint32
		if n, _ := fmt.Sscanf(e.Name(), segPattern, &id); n == 1 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		path := filepath.Join(s.opt.Dir, fmt.Sprintf(segPattern, id))
		res, err := scanSegment(path)
		if err != nil {
			return err
		}
		if res.torn {
			s.tornTails.Add(1)
		}
		seg := &segment{id: id, path: path, size: res.cleanEnd}
		for _, rec := range res.records {
			if old, ok := s.index[rec.addr]; ok {
				s.segs[old.seg].live -= old.size
				s.deadBytes += old.size
				s.liveBytes -= old.size
			}
			s.index[rec.addr] = recordLoc{seg: id, off: rec.off, size: rec.size, digest: rec.digest}
			seg.live += rec.size
			s.liveBytes += rec.size
			s.bootRecords++
		}
		s.deadBytes += seg.size - seg.live
		r, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("cas: boot: %w", err)
		}
		seg.r = r
		s.segs[id] = seg
		if id >= s.nextSeg {
			s.nextSeg = id + 1
		}
	}

	// Reuse the newest segment as the active one when it has room;
	// truncate its torn tail (if any) so the next append starts at a
	// record boundary — the same torn-tail discipline as the journal.
	if len(ids) > 0 {
		last := s.segs[ids[len(ids)-1]]
		if last.size < s.opt.SegmentBytes {
			w, err := os.OpenFile(last.path, os.O_WRONLY, 0o644)
			if err != nil {
				return fmt.Errorf("cas: boot: %w", err)
			}
			if err := w.Truncate(last.size); err != nil {
				w.Close()
				return fmt.Errorf("cas: boot truncate: %w", err)
			}
			if _, err := w.Seek(last.size, 0); err != nil {
				w.Close()
				return fmt.Errorf("cas: boot seek: %w", err)
			}
			s.active, s.w = last, w
			return nil
		}
	}
	return s.rollLocked()
}

// rollLocked seals the active segment (final fsync, keep the read
// handle) and opens a fresh one. Caller holds s.mu (or is boot, which
// runs before concurrency starts).
func (s *Store) rollLocked() error {
	if s.w != nil {
		if err := s.w.Sync(); err != nil {
			return fmt.Errorf("cas: roll sync: %w", err)
		}
		if err := s.w.Close(); err != nil {
			return fmt.Errorf("cas: roll close: %w", err)
		}
		s.w = nil
	}
	id := s.nextSeg
	s.nextSeg++
	path := filepath.Join(s.opt.Dir, fmt.Sprintf(segPattern, id))
	w, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("cas: new segment: %w", err)
	}
	r, err := os.Open(path)
	if err != nil {
		w.Close()
		return fmt.Errorf("cas: new segment: %w", err)
	}
	seg := &segment{id: id, path: path, r: r}
	s.segs[id] = seg
	s.active, s.w = seg, w
	return nil
}

// Put stores body under its content address. The write is durable when
// Put returns: the record is covered by a group-committed fsync shared
// with every concurrent Put. Storing an address that already holds the
// same digest is a no-op; a different digest supersedes the old record.
func (s *Store) Put(addr string, body []byte) error {
	if _, err := parseAddr(addr); err != nil {
		return err
	}
	rec, err := EncodeRecord(addr, body)
	if err != nil {
		return err
	}
	var digest [32]byte
	copy(digest[:], rec[36:68])

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("cas: store closed")
	}
	if old, ok := s.index[addr]; ok {
		if old.digest == digest {
			s.mu.Unlock()
			return nil
		}
		s.segs[old.seg].live -= old.size
		s.deadBytes += old.size
		s.liveBytes -= old.size
		s.rewrites.Add(1)
	}
	if s.active.size > 0 && s.active.size+int64(len(rec)) > s.opt.SegmentBytes {
		if err := s.rollLocked(); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	if _, err := s.w.Write(rec); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("cas: append: %w", err)
	}
	loc := recordLoc{seg: s.active.id, off: s.active.size, size: int64(len(rec)), digest: digest}
	s.active.size += loc.size
	s.active.live += loc.size
	s.index[addr] = loc
	s.liveBytes += loc.size
	s.puts.Add(1)
	if _, q := s.quarantine[addr]; q {
		// A fresh verified copy heals the quarantined address — whether
		// it arrived by read-repair from a replica or by recompute.
		delete(s.quarantine, addr)
		s.scrubRepaired.Add(1)
	}
	s.mu.Unlock()

	if err := s.waitSynced(); err != nil {
		return err
	}
	s.maybeCompact()
	return nil
}

// waitSynced queues a sync request and blocks until the flusher's next
// group commit covers it.
func (s *Store) waitSynced() error {
	req := make(chan error, 1)
	select {
	case s.syncCh <- req:
	case <-s.done:
		return errors.New("cas: store closed")
	}
	select {
	case err := <-req:
		return err
	case <-s.done:
		return errors.New("cas: store closed")
	}
}

// flusher is the group-commit loop: it drains every queued sync request
// and answers the whole batch with a single fsync of the active
// segment. A segment rolled since a batch member's append was already
// synced by rollLocked, so one fsync of the current active file covers
// every queued write.
func (s *Store) flusher() {
	for {
		var batch []chan error
		select {
		case req := <-s.syncCh:
			batch = append(batch, req)
		case <-s.done:
			return
		}
	drain:
		for {
			select {
			case req := <-s.syncCh:
				batch = append(batch, req)
			default:
				break drain
			}
		}
		s.mu.Lock()
		w := s.w
		var err error
		if w == nil {
			err = errors.New("cas: store closed")
		} else {
			err = w.Sync()
		}
		s.mu.Unlock()
		if err != nil && w != nil {
			err = fmt.Errorf("cas: sync: %w", err)
		}
		for _, req := range batch {
			req <- err
		}
	}
}

// ErrNotFound reports an address with no live record. Every other
// error from GetE means a record existed but failed verification — the
// corrupt-read case callers may want to repair rather than recompute.
var ErrNotFound = errors.New("cas: not found")

// Get returns the stored body for addr. The record's CRC and SHA-256
// digest are verified on every read; a record that fails verification
// is dropped from the index (counted corrupt_dropped) and reported as a
// miss, so a flipped bit degrades to one recompute, never a wrong
// answer.
func (s *Store) Get(addr string) ([]byte, bool) {
	b, err := s.GetE(addr)
	return b, err == nil
}

// GetE is Get with the failure class preserved: ErrNotFound for an
// absent address, a codec error (ErrHeaderCRC, ErrBodyCRC,
// ErrDigestMismatch, ...) for a record that existed but failed
// verification. A corrupt record is dropped from the index and
// quarantined before GetE returns, so the caller sees the corruption
// exactly once and a repair path (replica fetch or recompute) can
// re-Put under the same address.
func (s *Store) GetE(addr string) ([]byte, error) {
	if s == nil {
		return nil, ErrNotFound
	}
	s.mu.Lock()
	loc, ok := s.index[addr]
	if !ok {
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	seg := s.segs[loc.seg]
	r := seg.r
	s.mu.Unlock()

	buf := make([]byte, loc.size)
	if _, err := r.ReadAt(buf, loc.off); err != nil {
		err = fmt.Errorf("cas: read seg %d off %d: %w", loc.seg, loc.off, err)
		s.dropCorrupt(addr, loc, err)
		return nil, err
	}
	rec, _, err := DecodeRecord(buf)
	if err == nil && rec.Addr != addr {
		err = fmt.Errorf("%w: record holds %s, index expected %s", ErrBadAddress, rec.Addr, addr)
	}
	if err != nil {
		s.dropCorrupt(addr, loc, err)
		return nil, err
	}
	return rec.Body, nil
}

// Has reports whether addr is indexed (without reading the body).
func (s *Store) Has(addr string) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[addr]
	return ok
}

// Len reports the number of live records.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Keys snapshots the live content addresses in deterministic (sorted)
// order — what anti-entropy and drain handoff sweep.
func (s *Store) Keys() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	keys := make([]string, 0, len(s.index))
	for addr := range s.index {
		keys = append(keys, addr)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Touch records one access to addr in the admission sketch.
func (s *Store) Touch(addr string) {
	if s == nil {
		return
	}
	s.sketch.Touch(addr)
}

// Admit is the TinyLFU gate the RAM tier consults before evicting
// victim to admit candidate: the candidate wins ties, so an empty
// sketch (a cold boot) admits everything, and a one-shot scan key
// (estimate 1) cannot displace a proven-hot victim.
func (s *Store) Admit(candidate, victim string) bool {
	if s == nil {
		return true
	}
	return s.sketch.Estimate(candidate) >= s.sketch.Estimate(victim)
}

// Sketch returns the store's admission sketch.
func (s *Store) Sketch() *Sketch { return s.sketch }

// dropCorrupt removes addr from the index if it still points at loc,
// marking the record's bytes dead and quarantining the address: the
// entry stays in the scrub report until a verified copy is re-Put (by
// read-repair or recompute), which clears it and counts scrub_repaired.
func (s *Store) dropCorrupt(addr string, loc recordLoc, reason error) {
	s.mu.Lock()
	if cur, ok := s.index[addr]; ok && cur == loc {
		delete(s.index, addr)
		s.segs[loc.seg].live -= loc.size
		s.liveBytes -= loc.size
		s.deadBytes += loc.size
		s.corruptDropped.Add(1)
		why := "unknown"
		if reason != nil {
			why = reason.Error()
		}
		s.quarantine[addr] = QuarantineEntry{
			Addr: addr, Segment: loc.seg, Offset: loc.off, Reason: why,
		}
	}
	s.mu.Unlock()
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	st := Stats{
		Segments:    len(s.segs),
		Records:     len(s.index),
		LiveBytes:   s.liveBytes,
		DeadBytes:   s.deadBytes,
		Quarantined: len(s.quarantine),
	}
	s.mu.Unlock()
	st.TotalBytes = st.LiveBytes + st.DeadBytes
	st.SegmentBytes = s.opt.SegmentBytes
	st.MaxBytes = s.opt.MaxBytes
	st.Puts = s.puts.Load()
	st.Rewrites = s.rewrites.Load()
	st.Compactions = s.compactions.Load()
	st.Evicted = s.evicted.Load()
	st.CorruptDropped = s.corruptDropped.Load()
	st.TornTails = s.tornTails.Load()
	st.BootRecords = s.bootRecords
	st.ScrubVerified = s.scrubVerified.Load()
	st.ScrubCorrupt = s.scrubCorrupt.Load()
	st.ScrubRepaired = s.scrubRepaired.Load()
	st.ScrubPasses = s.scrubPasses.Load()
	st.ScrubCursor = fmt.Sprintf("%d:%d", s.scrubCursorSeg.Load(), s.scrubCursorOff.Load())
	st.OpenedAt = s.createdAt
	return st
}

// Sync forces an fsync of the active segment.
func (s *Store) Sync() error {
	if s == nil {
		return nil
	}
	return s.waitSynced()
}

// Close syncs and closes every segment handle. Puts after Close fail.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	var err error
	if s.w != nil {
		if serr := s.w.Sync(); serr != nil && err == nil {
			err = serr
		}
		if cerr := s.w.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.w = nil
	}
	s.mu.Unlock()

	// A background compaction pass may still be copying records out of
	// the sealed segments; closing their read handles under its feet
	// turns the pass's reads into failures on a closed fd. closed is
	// already set, so the pass aborts at its next mu acquisition and no
	// new pass can start — wait it out, then drop the handles.
	s.compactWG.Wait()

	s.mu.Lock()
	for _, seg := range s.segs {
		if seg.r != nil {
			seg.r.Close()
		}
	}
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("cas: close: %w", err)
	}
	return nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.opt.Dir }
