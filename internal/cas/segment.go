package cas

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Segment record layout (little-endian), append-only:
//
//	magic    [4]byte   "GCS1"
//	addr     [32]byte  content address (SHA-256 of the canonical spec)
//	digest   [32]byte  SHA-256 of the body bytes
//	bodyLen  uint32
//	headCRC  uint32    CRC32 (IEEE) of the 72 bytes above
//	body     [bodyLen]byte
//	bodyCRC  uint32    CRC32 (IEEE) of the body
//
// The header CRC makes a record boundary self-validating, so a boot
// scan can index a segment without reading bodies (it seeks past them),
// and a tail torn at any byte — the crash-mid-append signature — is
// detected as an incomplete record, never misread as data. The body CRC
// catches bit rot cheaply on read; the digest is the end-to-end check
// shared with the replication layer, recomputed on every Get and during
// compaction.

// Codec errors, ordered from "incomplete" to "provably corrupt". Only
// ErrShortRecord is recoverable by waiting for more bytes; everything
// else means the record can never be served.
var (
	// ErrShortRecord means the buffer ends before the record does — the
	// torn-tail case. More bytes could complete it.
	ErrShortRecord = errors.New("cas: short record")
	// ErrBadMagic means the bytes at this offset are not a record start.
	ErrBadMagic = errors.New("cas: bad record magic")
	// ErrHeaderCRC means the header bytes fail their CRC.
	ErrHeaderCRC = errors.New("cas: header crc mismatch")
	// ErrBodyCRC means the body bytes fail their CRC.
	ErrBodyCRC = errors.New("cas: body crc mismatch")
	// ErrDigestMismatch means the body hashes to a different SHA-256
	// than the record claims — the end-to-end integrity failure.
	ErrDigestMismatch = errors.New("cas: body digest mismatch")
	// ErrBadAddress means the content address is not 64 lowercase hex.
	ErrBadAddress = errors.New("cas: bad content address")
)

var recordMagic = [4]byte{'G', 'C', 'S', '1'}

const (
	headerSize  = 4 + 32 + 32 + 4 + 4
	trailerSize = 4
	// maxBodyLen bounds one stored body (same order as the replica-body
	// cap at the HTTP layer); a header declaring more is corrupt, not
	// merely short, so a flipped length bit cannot stall a boot scan
	// waiting for gigabytes that never come.
	maxBodyLen = 64 << 20
)

// Record is one decoded segment entry.
type Record struct {
	// Addr is the content address as 64 lowercase hex characters.
	Addr string
	// Digest is the SHA-256 of Body.
	Digest [32]byte
	// Body is the stored payload (a normalized result envelope, JSON).
	Body []byte
}

// recordSize is the encoded length of a record with the given body.
func recordSize(bodyLen int) int64 {
	return int64(headerSize + bodyLen + trailerSize)
}

// EncodeRecord renders one record. addr must be a 64-hex content
// address; the digest is computed from body.
func EncodeRecord(addr string, body []byte) ([]byte, error) {
	raw, err := parseAddr(addr)
	if err != nil {
		return nil, err
	}
	if len(body) > maxBodyLen {
		return nil, fmt.Errorf("%w: body %d bytes exceeds %d", ErrBadAddress, len(body), maxBodyLen)
	}
	buf := make([]byte, recordSize(len(body)))
	copy(buf[0:4], recordMagic[:])
	copy(buf[4:36], raw[:])
	digest := sha256.Sum256(body)
	copy(buf[36:68], digest[:])
	binary.LittleEndian.PutUint32(buf[68:72], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[72:76], crc32.ChecksumIEEE(buf[:72]))
	copy(buf[76:], body)
	binary.LittleEndian.PutUint32(buf[76+len(body):], crc32.ChecksumIEEE(body))
	return buf, nil
}

// DecodeRecord decodes the record at the start of b, returning the
// bytes consumed. The body is copied out of b. Errors classify the
// failure: ErrShortRecord (incomplete — a torn tail), ErrBadMagic /
// ErrHeaderCRC (not a record boundary), ErrBodyCRC / ErrDigestMismatch
// (a complete but corrupt record).
func DecodeRecord(b []byte) (Record, int, error) {
	hdr, err := decodeHeader(b)
	if err != nil {
		return Record{}, 0, err
	}
	total := int(recordSize(int(hdr.bodyLen)))
	if len(b) < total {
		return Record{}, 0, ErrShortRecord
	}
	body := make([]byte, hdr.bodyLen)
	copy(body, b[headerSize:headerSize+int(hdr.bodyLen)])
	stored := binary.LittleEndian.Uint32(b[headerSize+int(hdr.bodyLen) : total])
	if crc32.ChecksumIEEE(body) != stored {
		return Record{}, 0, ErrBodyCRC
	}
	if sha256.Sum256(body) != hdr.digest {
		return Record{}, 0, ErrDigestMismatch
	}
	return Record{Addr: hdr.addr, Digest: hdr.digest, Body: body}, total, nil
}

// header is the parsed fixed-size record prefix.
type header struct {
	addr    string
	digest  [32]byte
	bodyLen uint32
}

// decodeHeader validates the fixed-size prefix of a record.
func decodeHeader(b []byte) (header, error) {
	if len(b) < headerSize {
		return header{}, ErrShortRecord
	}
	if [4]byte(b[0:4]) != recordMagic {
		return header{}, ErrBadMagic
	}
	if crc32.ChecksumIEEE(b[:72]) != binary.LittleEndian.Uint32(b[72:76]) {
		return header{}, ErrHeaderCRC
	}
	var h header
	h.addr = hex.EncodeToString(b[4:36])
	copy(h.digest[:], b[36:68])
	h.bodyLen = binary.LittleEndian.Uint32(b[68:72])
	if h.bodyLen > maxBodyLen {
		return header{}, ErrHeaderCRC
	}
	return h, nil
}

// parseAddr validates and decodes a 64-hex content address.
func parseAddr(addr string) ([32]byte, error) {
	var raw [32]byte
	if len(addr) != 64 {
		return raw, fmt.Errorf("%w: %q", ErrBadAddress, addr)
	}
	b, err := hex.DecodeString(addr)
	if err != nil {
		return raw, fmt.Errorf("%w: %q", ErrBadAddress, addr)
	}
	for _, c := range addr {
		if c >= 'A' && c <= 'F' {
			return raw, fmt.Errorf("%w: uppercase hex in %q", ErrBadAddress, addr)
		}
	}
	copy(raw[:], b)
	return raw, nil
}

// indexedRecord is what a boot scan learns about one record without
// reading its body: where it lives and what it claims to hold.
type indexedRecord struct {
	addr   string
	digest [32]byte
	off    int64
	size   int64 // full encoded size including header and trailer
}

// scanResult summarizes one segment scan.
type scanResult struct {
	records []indexedRecord
	// cleanEnd is the offset just past the last complete record; bytes
	// beyond it are a torn tail (or mid-file corruption — scanning stops
	// either way, because record boundaries after a bad header cannot be
	// trusted).
	cleanEnd int64
	// torn reports that the file extended past cleanEnd.
	torn bool
}

// scanSegment indexes one segment file by walking record headers and
// seeking past bodies; bodies are verified lazily on Get and during
// compaction, keeping a warm restart proportional to the record count,
// not the store size. The scan stops at the first incomplete or invalid
// header — everything before it is indexed, everything after is
// ignored.
func scanSegment(path string) (scanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return scanResult{}, fmt.Errorf("cas: scan %s: %w", path, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return scanResult{}, fmt.Errorf("cas: scan %s: %w", path, err)
	}
	size := fi.Size()

	var res scanResult
	r := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, headerSize)
	off := int64(0)
	for off < size {
		if _, err := io.ReadFull(r, hdr); err != nil {
			break // short header: torn tail
		}
		h, err := decodeHeader(hdr)
		if err != nil {
			break // not a valid boundary: stop indexing here
		}
		total := recordSize(int(h.bodyLen))
		if off+total > size {
			break // body or trailer torn off
		}
		if _, err := r.Discard(int(h.bodyLen) + trailerSize); err != nil {
			break
		}
		res.records = append(res.records, indexedRecord{
			addr: h.addr, digest: h.digest, off: off, size: total,
		})
		off += total
	}
	res.cleanEnd = off
	res.torn = off < size
	return res, nil
}
