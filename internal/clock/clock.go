// Package clock models clock distribution: an H-tree over the die,
// buffered at every level, whose skew emerges from buffer-delay variation
// and load imbalance instead of being assumed. The paper's section 4.1
// numbers — 10%+ skew for ASIC clock trees, ~5% for a carefully designed
// custom distribution (75 ps on the 600 MHz Alpha) — become outputs here:
// the custom tree's tuned buffers and balanced loads halve both error
// terms.
package clock

import (
	"fmt"
	"math"

	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/wire"
)

// Quality captures how carefully the tree is engineered.
type Quality struct {
	// BufferSigma is the per-buffer delay mismatch (random process
	// variation on the clock buffers), as a fraction of buffer delay.
	BufferSigma float64
	// SigmaBudget is how many sigmas of random mismatch the skew
	// number covers (custom teams measure and tune; ASIC signoff
	// budgets more).
	SigmaBudget float64
	// ImbalanceFrac is the systematic skew from unequal subtree loads,
	// as a fraction of total insertion delay.
	ImbalanceFrac float64
	// PVTFrac is the across-die supply/temperature gradient seen by
	// the insertion delay — the dominant real skew term. Custom chips
	// suppress it with power grids and regulation.
	PVTFrac float64
	// BufDrive and BufStageFO4 describe the clock buffers: synthesized
	// ASIC trees use smaller, slower, margin-laden buffers.
	BufDrive    float64
	BufStageFO4 float64
	// ShieldedWires reduces wire-delay uncertainty (custom trees shield
	// and balance their routes).
	ShieldedWires bool
}

// ASICTree is a synthesized clock tree: automatic buffering, unshielded
// routes, loads balanced only approximately, unregulated gradients.
func ASICTree() Quality {
	return Quality{BufferSigma: 0.08, SigmaBudget: 3, ImbalanceFrac: 0.030,
		PVTFrac: 0.10, BufDrive: 8, BufStageFO4: 2.0}
}

// CustomTree is a hand-tuned distribution: matched buffers, shielded and
// width-tuned routes, loads balanced by simulation, gridded power.
func CustomTree() Quality {
	return Quality{BufferSigma: 0.04, SigmaBudget: 2, ImbalanceFrac: 0.010,
		PVTFrac: 0.02, BufDrive: 24, BufStageFO4: 1.0, ShieldedWires: true}
}

// Tree is a constructed H-tree.
type Tree struct {
	Levels int
	// InsertionDelay is source-to-leaf delay.
	InsertionDelay units.Tau
	// SkewTau is the expected leaf-to-leaf skew.
	SkewTau units.Tau
	// BufferCount and TotalWireMM drive the power estimate.
	BufferCount int
	TotalWireMM float64
	// ClockCapUnits is the total capacitance the clock source switches
	// every cycle (buffers plus wire), in Cin units.
	ClockCapUnits float64
}

func (t Tree) String() string {
	return fmt.Sprintf("H-tree: %d levels, insertion %.1f FO4, skew %.2f FO4, %d buffers, %.1f mm wire",
		t.Levels, t.InsertionDelay.FO4(), t.SkewTau.FO4(), t.BufferCount, t.TotalWireMM)
}

// Build constructs an H-tree over a square die of the given side feeding
// the given number of sinks, with 64 leaves per final cluster.
func Build(m wire.Model, dieSideMM float64, sinks int, q Quality) Tree {
	if sinks < 1 {
		sinks = 1
	}
	const leafCluster = 64
	levels := 0
	for (1<<uint(2*levels))*leafCluster < sinks {
		levels++
	}
	if levels < 1 {
		levels = 1
	}

	// Per-level wire segments: an H-tree segment at level k spans
	// side/2^ceil((k+1)/2).
	bufDrive := q.BufDrive
	if bufDrive <= 0 {
		bufDrive = 16
	}
	stageFO4 := q.BufStageFO4
	if stageFO4 <= 0 {
		stageFO4 = 1.5
	}
	bufDelayBase := units.FromFO4(stageFO4)
	var insertion units.Tau
	totalWire := 0.0
	bufCount := 0
	clockCap := 0.0
	for k := 0; k < levels; k++ {
		segMM := dieSideMM / math.Pow(2, math.Ceil(float64(k+1)/2))
		// 2^(k+1) segments at this level (each node spawns two).
		nseg := math.Pow(2, float64(k+1))
		totalWire += segMM * nseg
		nbuf := 1 << uint(k)
		bufCount += nbuf
		clockCap += float64(nbuf) * bufDrive
		clockCap += float64(m.CapOfLength(segMM, 2)) * nseg

		wireDelay := m.UnbufferedDelay(segMM, 2, bufDrive, units.Cap(bufDrive))
		if !q.ShieldedWires {
			// Unshielded routes see coupling: effective delay varies;
			// charge the mean penalty.
			wireDelay = units.Tau(float64(wireDelay) * 1.15)
		}
		insertion += bufDelayBase + wireDelay
	}
	// Leaf cluster distribution: local buffer driving the sink cluster.
	leafLoad := units.Cap(float64(minInt(sinks, leafCluster)))
	leafDelay := bufDelayBase + units.Tau(float64(leafLoad)/bufDrive)
	insertion += leafDelay
	bufCount += (sinks + leafCluster - 1) / leafCluster
	clockCap += float64(sinks) // sink clock pins

	// Skew: random buffer mismatch accumulates along the two distinct
	// halves of any leaf pair (sqrt(2*(levels+1)) independent stages),
	// the systematic load imbalance takes its share of insertion delay,
	// and the across-die PVT gradient modulates the whole insertion
	// path differently at distant leaves.
	sigmas := q.SigmaBudget
	if sigmas <= 0 {
		sigmas = 3
	}
	perStage := float64(bufDelayBase) * q.BufferSigma
	random := perStage * math.Sqrt(2*float64(levels+1)) * sigmas
	systematic := (q.ImbalanceFrac + q.PVTFrac) * float64(insertion)
	return Tree{
		Levels:         levels,
		InsertionDelay: insertion,
		SkewTau:        units.Tau(random + systematic),
		BufferCount:    bufCount,
		TotalWireMM:    totalWire,
		ClockCapUnits:  clockCap,
	}
}

// Clocking converts the tree's absolute skew into the cycle-fraction form
// the timing engine uses, at the given cycle.
func (t Tree) Clocking(cycle units.Tau) sta.Clocking {
	if cycle <= 0 {
		return sta.Clocking{}
	}
	frac := float64(t.SkewTau) / float64(cycle)
	if frac > 0.45 {
		frac = 0.45 // beyond this the clock is unusable; clamp for the solver
	}
	return sta.Clocking{SkewFrac: frac}
}

// PowerW estimates the tree's own dynamic power at the given frequency:
// the full clock cap swings every cycle.
func (t Tree) PowerW(p units.Process, freqMHz float64) float64 {
	cF := t.ClockCapUnits * p.CinFF * 1e-15
	return cF * p.Vdd * p.Vdd * freqMHz * 1e6
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
