package clock

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
	"repro/internal/wire"
)

func model() wire.Model { return wire.NewModel(units.ASIC025) }

func TestSkewBandsMatchPaper(t *testing.T) {
	// A full 10mm chip with tens of thousands of registers, clocked at
	// a typical-ASIC 82 FO4 cycle: the synthesized tree should burn
	// around 10% of the cycle in skew; the custom tree about half that.
	m := model()
	asic := Build(m, 10, 40000, ASICTree())
	custom := Build(m, 10, 40000, CustomTree())

	cycleASIC := units.FromFO4(82)
	fracASIC := asic.Clocking(cycleASIC).SkewFrac
	if fracASIC < 0.05 || fracASIC > 0.18 {
		t.Fatalf("ASIC tree skew = %.0f%% of an 82 FO4 cycle, want ~10%%", 100*fracASIC)
	}
	// Custom chips clock much shorter cycles; the Alpha's 15 FO4 cycle
	// carried ~5% skew (75 ps at 600 MHz) thanks to the tuned tree.
	cycleCustom := units.FromFO4(15)
	fracCustom := custom.Clocking(cycleCustom).SkewFrac
	if fracCustom < 0.02 || fracCustom > 0.10 {
		t.Fatalf("custom tree skew = %.0f%% of a 15 FO4 cycle, want ~5%%", 100*fracCustom)
	}
	if custom.SkewTau >= asic.SkewTau {
		t.Fatal("custom tree must have less absolute skew")
	}
}

func TestSkewGrowsWithSinksAndDie(t *testing.T) {
	m := model()
	f := func(a, b uint8) bool {
		sa := 1000 * (1 + int(a%40))
		sb := 1000 * (1 + int(b%40))
		ta := Build(m, 10, sa, ASICTree())
		tb := Build(m, 10, sb, ASICTree())
		if sa <= sb {
			return ta.SkewTau <= tb.SkewTau+units.Tau(1e-9)
		}
		return tb.SkewTau <= ta.SkewTau+units.Tau(1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	small := Build(m, 2, 10000, ASICTree())
	big := Build(m, 10, 10000, ASICTree())
	if small.InsertionDelay >= big.InsertionDelay {
		t.Fatal("bigger die must have deeper insertion delay")
	}
}

func TestTreeAccounting(t *testing.T) {
	m := model()
	tr := Build(m, 10, 20000, ASICTree())
	if tr.BufferCount <= 0 || tr.TotalWireMM <= 0 || tr.ClockCapUnits <= 0 {
		t.Fatalf("empty accounting: %+v", tr)
	}
	if tr.String() == "" {
		t.Fatal("empty description")
	}
	// Clock power at 250 MHz on a real chip is watts-class.
	w := tr.PowerW(units.ASIC025, 250)
	if w < 0.05 || w > 20 {
		t.Fatalf("clock power = %.2f W, expected fractions-of-a-watt to watts", w)
	}
}

func TestClockingClamps(t *testing.T) {
	m := model()
	tr := Build(m, 10, 40000, ASICTree())
	// At an absurdly short cycle the fraction clamps rather than
	// exceeding 1.
	c := tr.Clocking(units.FromFO4(1))
	if c.SkewFrac > 0.45 {
		t.Fatalf("skew fraction %.2f not clamped", c.SkewFrac)
	}
	if tr.Clocking(0).SkewFrac != 0 {
		t.Fatal("zero cycle should produce zero clocking")
	}
}

func TestSingleSinkTree(t *testing.T) {
	m := model()
	tr := Build(m, 1, 1, CustomTree())
	if tr.Levels < 1 {
		t.Fatal("tree must have at least one level")
	}
	if tr.SkewTau <= 0 {
		t.Fatal("even a small tree has nonzero mismatch")
	}
}
