package dynlogic

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/sta"
	"repro/internal/units"
)

func TestPhaseCheckStaticDesignHasNoFloor(t *testing.T) {
	n := adder(t, 16)
	rep, err := PhaseCheck(n, SinglePhase)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DominoChain != 0 || rep.MinCycle != 0 {
		t.Fatalf("static design has a domino floor: %v", rep)
	}
}

func TestPhaseFloorGrowsWithConversion(t *testing.T) {
	n := adder(t, 32)
	if _, err := Dominoize(n, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	single, err := PhaseCheck(n, SinglePhase)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := PhaseCheck(n, SkewTolerant)
	if err != nil {
		t.Fatal(err)
	}
	if single.DominoChain == 0 {
		t.Fatal("converted design must have a domino chain")
	}
	if single.MinCycle < 2*multi.MinCycle-units.Tau(1e-6) {
		t.Fatalf("single-phase floor %.1f should be ~2x multi-phase %.1f",
			single.MinCycle.FO4(), multi.MinCycle.FO4())
	}
}

func TestSinglePhaseCanEraseDominoGains(t *testing.T) {
	// The section 7.1 trap: convert aggressively, then clock with a
	// naive single-phase scheme — the precharge wall gives back much of
	// the win, while skew-tolerant phasing keeps it.
	n := adder(t, 32)
	res, err := Dominoize(n, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	single, err := PhaseCheck(n, SinglePhase)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := PhaseCheck(n, SkewTolerant)
	if err != nil {
		t.Fatal(err)
	}
	effSingle := EffectiveCycle(r.WorstComb, single)
	effMulti := EffectiveCycle(r.WorstComb, multi)
	if effMulti > effSingle {
		t.Fatal("multi-phase cannot be worse than single-phase")
	}
	speedupSingle := float64(res.Before) / float64(effSingle)
	speedupMulti := float64(res.Before) / float64(effMulti)
	if speedupSingle >= speedupMulti {
		t.Fatalf("the precharge wall should cost speed: single %.2fx vs multi %.2fx",
			speedupSingle, speedupMulti)
	}
	if rep := single.String(); rep == "" {
		t.Fatal("empty phase report")
	}
}

func TestEffectiveCycleTakesMax(t *testing.T) {
	p := PhaseReport{MinCycle: 10}
	if EffectiveCycle(5, p) != 10 {
		t.Fatal("phase floor must bind when larger")
	}
	if EffectiveCycle(20, p) != 20 {
		t.Fatal("sta cycle must bind when larger")
	}
}

func TestPhaseOnMixedPath(t *testing.T) {
	// Only domino gates count toward the chain.
	lib := cell.RichASIC()
	dom, err := cell.NewDomino(cell.FuncAnd2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ad, err := circuits.CarryLookahead(lib, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := ad.N
	// Convert exactly one gate.
	g := n.Gates()[0]
	for _, cand := range n.Gates() {
		if cand.Cell.Func == cell.FuncAnd2 {
			g = cand
			break
		}
	}
	if g.Cell.Func != cell.FuncAnd2 {
		t.Skip("no AND2 in this construction")
	}
	if err := n.ReplaceCell(g.ID, dom); err != nil {
		t.Fatal(err)
	}
	rep, err := PhaseCheck(n, SinglePhase)
	if err != nil {
		t.Fatal(err)
	}
	want := dom.Delay(n.Load(g.Out))
	if rep.DominoChain != want {
		t.Fatalf("chain = %g, want the single gate's delay %g",
			float64(rep.DominoChain), float64(want))
	}
}
