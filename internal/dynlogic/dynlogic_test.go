package dynlogic

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/units"
)

func adder(t *testing.T, w int) *netlist.Netlist {
	t.Helper()
	ad, err := circuits.CarryLookahead(cell.RichASIC(), w)
	if err != nil {
		t.Fatal(err)
	}
	return ad.N
}

func TestDominoizeSpeedsUpCriticalPath(t *testing.T) {
	n := adder(t, 32)
	res, err := Dominoize(n, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Converted == 0 {
		t.Fatal("nothing converted")
	}
	// Section 7: sequential circuitry with domino on critical paths is
	// about 50% faster. Allow a band around 1.5x.
	if s := res.Speedup(); s < 1.25 || s > 2.0 {
		t.Fatalf("domino speedup = %.2f, want within [1.25, 2.0] (paper: ~1.5)", s)
	}
}

func TestDominoizeWithoutDualRailConvertsLess(t *testing.T) {
	n1 := adder(t, 16)
	n2 := n1.Clone()
	full, err := Dominoize(n1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.AllowDualRail = false
	single, err := Dominoize(n2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if single.Converted >= full.Converted {
		t.Fatalf("single-rail converted %d, dual-rail %d: dual-rail should reach more gates",
			single.Converted, full.Converted)
	}
	if single.Speedup() > full.Speedup() {
		t.Fatal("single-rail cannot beat dual-rail conversion")
	}
}

func TestDominoizeRespectsBudget(t *testing.T) {
	n := adder(t, 16)
	opt := DefaultOptions()
	opt.Fraction = 0.05
	res, err := Dominoize(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	budget := int(0.05*float64(n.NumGates())) + 1
	if res.Converted > budget {
		t.Fatalf("converted %d gates, budget %d", res.Converted, budget)
	}
}

func TestDominoAreaAccounting(t *testing.T) {
	n := adder(t, 16)
	res, err := Dominoize(n, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.AreaAfter == res.AreaBefore {
		t.Fatal("area unchanged despite conversions")
	}
}

func TestNoiseAuditFlagsExposedDomino(t *testing.T) {
	lib := cell.RichASIC()
	n := netlist.New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	dom, err := cell.NewDomino(cell.FuncAnd2, 2)
	if err != nil {
		t.Fatal(err)
	}
	x := n.MustGate(dom, a, b) // fed by PIs: two violations
	y := n.MustGate(lib.Smallest(cell.FuncInv), x)
	n.MarkOutput(y)
	v := NoiseAudit(n, 5)
	if len(v) != 2 {
		t.Fatalf("got %d violations, want 2 (both PI-fed pins)", len(v))
	}
	// Add a long wire onto an internal domino input.
	dom2, _ := cell.NewDomino(cell.FuncOr2, 2)
	z := n.MustGate(dom2, x, x)
	n.MarkOutput(z)
	n.Net(x).WireCap = 50
	v = NoiseAudit(n, 5)
	found := false
	for _, viol := range v {
		if viol.Gate == n.Net(z).Driver {
			found = true
		}
	}
	if !found {
		t.Fatal("long-wire domino input not flagged")
	}
}

func TestNoiseAuditIgnoresStatic(t *testing.T) {
	lib := cell.RichASIC()
	n := netlist.New("t")
	a := n.AddInput("a")
	x := n.MustGate(lib.Smallest(cell.FuncInv), a)
	n.MarkOutput(x)
	if v := NoiseAudit(n, 1); len(v) != 0 {
		t.Fatalf("static gates flagged: %v", v)
	}
}

func TestPrechargeOverheadGrowsWithConversion(t *testing.T) {
	n := adder(t, 16)
	if PrechargeOverhead(n) != 0 {
		t.Fatal("static design must have zero precharge load")
	}
	if _, err := Dominoize(n, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if PrechargeOverhead(n) <= 0 {
		t.Fatal("converted design must load the clock")
	}
}

func TestDominoizeIdempotentOnConverted(t *testing.T) {
	n := adder(t, 8)
	if _, err := Dominoize(n, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	r1, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Dominoize(n, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Second run may convert a few remaining off-path gates but must
	// not slow the design down.
	if res.After > r1.WorstComb+units.Tau(1e-9) {
		t.Fatal("re-dominoizing slowed the design")
	}
}
