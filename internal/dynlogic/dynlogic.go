// Package dynlogic converts critical-path logic to domino (precharged
// dynamic) gates, the paper's section 7 factor (x1.50): domino
// combinational logic runs 50-100% faster than static CMOS with the same
// function, at the cost of noise sensitivity, precharge clocking, and
// power. The package also provides the noise audit that explains why no
// merchant ASIC domino libraries existed: any glitch on a domino input
// can falsely discharge the dynamic node.
package dynlogic

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/units"
)

// Options tunes domino conversion.
type Options struct {
	// MaxIters bounds the convert-and-reanalyze iterations.
	MaxIters int
	// AllowDualRail permits converting inverting and XOR-class gates
	// using dual-rail domino (double area/power). Without it only
	// AND/OR-class gates convert, as in single-rail domino synthesis.
	AllowDualRail bool
	// Fraction caps the fraction of gates converted (custom designs
	// domino only the critical paths, not the whole chip).
	Fraction float64
}

// DefaultOptions converts critical paths with dual-rail allowed, capped at
// a third of the design.
func DefaultOptions() Options {
	return Options{MaxIters: 400, AllowDualRail: true, Fraction: 0.35}
}

// Result reports a conversion.
type Result struct {
	Converted     int
	Before, After units.Tau
	AreaBefore    float64
	AreaAfter     float64
}

// Speedup is Before/After.
func (r Result) Speedup() float64 {
	if r.After == 0 {
		return 1
	}
	return float64(r.Before) / float64(r.After)
}

func (r Result) String() string {
	return fmt.Sprintf("domino: %d gates converted, %.1f -> %.1f FO4 (%.2fx)",
		r.Converted, r.Before.FO4(), r.After.FO4(), r.Speedup())
}

// dominoFor returns the domino replacement for a static cell, or nil when
// the options forbid it.
func dominoFor(c *cell.Cell, opt Options) (*cell.Cell, error) {
	if c.Family == cell.Domino {
		return nil, nil // already converted
	}
	if !c.Func.Inverting() && c.Func != cell.FuncXor2 {
		d, err := cell.NewDomino(c.Func, c.Drive)
		if err != nil {
			return nil, err
		}
		return d, nil
	}
	if !opt.AllowDualRail {
		return nil, nil
	}
	return cell.NewDominoDualRail(c.Func, c.Drive)
}

// Dominoize repeatedly analyzes the netlist and converts the static gates
// on the worst path to domino cells until the path is fully dynamic, the
// conversion budget is exhausted, or conversions stop helping.
func Dominoize(n *netlist.Netlist, opt Options) (Result, error) {
	if opt.MaxIters <= 0 {
		opt = DefaultOptions()
	}
	first, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		return Result{}, err
	}
	res := Result{Before: first.WorstComb, AreaBefore: n.TotalArea()}
	budget := int(opt.Fraction * float64(n.NumGates()))
	if budget < 1 {
		budget = 1
	}

	cur := first
	for iter := 0; iter < opt.MaxIters && res.Converted < budget; iter++ {
		converted := 0
		for _, step := range cur.Critical {
			if step.Gate == netlist.None || res.Converted+converted >= budget {
				continue
			}
			g := n.Gate(step.Gate)
			d, err := dominoFor(g.Cell, opt)
			if err != nil {
				return res, err
			}
			if d == nil {
				continue
			}
			g.Cell = d
			converted++
		}
		if converted == 0 {
			break // worst path is fully converted or blocked
		}
		res.Converted += converted
		cur, err = sta.Analyze(n, sta.Options{})
		if err != nil {
			return res, err
		}
	}
	res.After = cur.WorstComb
	res.AreaAfter = n.TotalArea()
	return res, nil
}

// NoiseViolation flags a domino gate at glitch risk.
type NoiseViolation struct {
	Gate   netlist.GateID
	Reason string
}

// NoiseAudit returns the domino gates whose inputs are exposed to noise:
// fed by long resistive wires (coupling), fed directly by primary inputs
// (uncontrolled external timing), or fed by another family's glitchy
// static logic with high fanout. This is the checking burden the paper
// says makes merchant domino libraries impractical (section 7.1).
func NoiseAudit(n *netlist.Netlist, wireCapThreshold units.Cap) []NoiseViolation {
	var out []NoiseViolation
	for _, g := range n.Gates() {
		if g.Cell.Family != cell.Domino {
			continue
		}
		for _, in := range g.In {
			nt := n.Net(in)
			switch {
			case nt.WireCap > wireCapThreshold:
				out = append(out, NoiseViolation{Gate: g.ID,
					Reason: fmt.Sprintf("input net %s carries %.1f units of wire (coupling risk)", nt.Name, float64(nt.WireCap))})
			case nt.IsInput:
				out = append(out, NoiseViolation{Gate: g.ID,
					Reason: fmt.Sprintf("input net %s is a primary input (uncontrolled glitches)", nt.Name)})
			}
		}
	}
	return out
}

// PrechargeOverhead returns the extra clock load of the domino gates: each
// precharged gate hangs its clock transistor on the clock network, which
// is part of why domino designs need custom clock distribution.
func PrechargeOverhead(n *netlist.Netlist) units.Cap {
	var total units.Cap
	for _, g := range n.Gates() {
		if g.Cell.Family == cell.Domino {
			total += units.Cap(0.5 * g.Cell.Drive)
		}
	}
	return total
}
