package dynlogic

import (
	"fmt"
	"math"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/units"
)

// PhaseScheme is how the domino evaluate window relates to the cycle.
type PhaseScheme int

const (
	// SinglePhase precharges on the clock low phase: all domino
	// evaluation must fit in half the cycle. This is what a naive
	// ASIC-style clocking could offer, and it throttles domino.
	SinglePhase PhaseScheme = iota
	// SkewTolerant is the Harris/Horowitz overlapping multi-phase
	// scheme (the paper's reference [15]): domino chains evaluate
	// across the whole cycle with no hard precharge wall.
	SkewTolerant
)

func (p PhaseScheme) String() string {
	if p == SkewTolerant {
		return "skew-tolerant multi-phase"
	}
	return "single-phase"
}

// evalFrac is the fraction of the cycle available for domino evaluation.
func (p PhaseScheme) evalFrac() float64 {
	if p == SkewTolerant {
		return 1.0
	}
	return 0.5
}

// PhaseReport is the outcome of domino phase analysis.
type PhaseReport struct {
	Scheme PhaseScheme
	// DominoChain is the longest cumulative domino delay on any path.
	DominoChain units.Tau
	// MinCycle is the cycle floor implied by fitting the chain in the
	// evaluate window.
	MinCycle units.Tau
}

func (r PhaseReport) String() string {
	return fmt.Sprintf("domino phasing (%v): chain %.1f FO4 -> cycle floor %.1f FO4",
		r.Scheme, r.DominoChain.FO4(), r.MinCycle.FO4())
}

// PhaseCheck computes the longest domino evaluation chain in the netlist
// and the cycle-time floor it implies under the given phasing scheme.
// With single-phase clocking a heavily dominoized path can end up
// *slower* than static — which is exactly why merchant flows without
// custom clock generators couldn't adopt domino (section 7.1).
func PhaseCheck(n *netlist.Netlist, scheme PhaseScheme) (PhaseReport, error) {
	order, err := n.Levelize()
	if err != nil {
		return PhaseReport{}, err
	}
	depth := make([]units.Tau, n.NumNets())
	var worst units.Tau
	for _, gid := range order {
		g := n.Gate(gid)
		in := units.Tau(0)
		for _, net := range g.In {
			if depth[net] > in {
				in = depth[net]
			}
		}
		d := in
		if g.Cell.Family == cell.Domino {
			d += g.Cell.Delay(n.Load(g.Out)) + n.Net(g.Out).ExtraDelay
		}
		depth[g.Out] = d
		if d > worst {
			worst = d
		}
	}
	rep := PhaseReport{Scheme: scheme, DominoChain: worst}
	frac := scheme.evalFrac()
	if frac <= 0 {
		return rep, fmt.Errorf("dynlogic: invalid evaluate fraction")
	}
	rep.MinCycle = units.Tau(math.Ceil(float64(worst)/frac*1e9) / 1e9)
	return rep, nil
}

// EffectiveCycle combines a design's static-timing cycle with the domino
// phase floor: the clock can run no faster than either allows.
func EffectiveCycle(staCycle units.Tau, phase PhaseReport) units.Tau {
	if phase.MinCycle > staCycle {
		return phase.MinCycle
	}
	return staCycle
}
