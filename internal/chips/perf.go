package chips

import "repro/internal/pipeline"

// Performance estimates a chip's relative throughput on a workload:
// clock times sustained instructions per cycle. The paper's section 4
// notes the Alpha 21264 issues up to six instructions per cycle with
// out-of-order and speculative execution, "giving it significantly
// faster performance when instruction parallelism can be exploited" —
// clock alone understates the real gap on parallel code and overstates
// it on serial code.
func Performance(c Chip, w pipeline.Workload) float64 {
	eff := w
	// Machine width caps exploitable ILP; out-of-order, multi-issue
	// machines (issue width > 1) also hide more dependence latency,
	// modeled as halving the dependent fraction.
	eff.ILP = sustainableILP(c, w)
	if c.IssueWidth > 1 {
		eff.DependentFrac = w.DependentFrac / 2
	}
	return c.ReportedMHz / eff.CPI(c.PipelineStages)
}

// sustainableILP is the smaller of what the machine issues and what the
// workload offers (wide machines rarely sustain their peak).
func sustainableILP(c Chip, w pipeline.Workload) float64 {
	offered := 1.0
	switch {
	case w.DependentFrac < 0.1: // streaming/DSP-like
		offered = 3.0
	case w.DependentFrac < 0.5: // general integer
		offered = 1.8
	default: // serial control
		offered = 1.1
	}
	machine := float64(c.IssueWidth)
	if machine < 1 {
		machine = 1
	}
	// Sustained is well below peak: half the machine width plus one.
	sustained := machine/2 + 0.5
	if sustained < 1 {
		sustained = 1
	}
	if offered < sustained {
		return offered
	}
	return sustained
}

// PerformanceGap is the throughput ratio between two chips on a workload.
func PerformanceGap(fast, slow Chip, w pipeline.Workload) float64 {
	s := Performance(slow, w)
	if s == 0 {
		return 0
	}
	return Performance(fast, w) / s
}
