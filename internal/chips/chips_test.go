package chips

import (
	"math"
	"testing"
)

func TestFO4CalibrationMatchesReportedClocks(t *testing.T) {
	// The paper's own consistency rule: reported MHz should follow from
	// FO4-per-cycle and the process FO4 delay, within ~20%. The Alpha
	// 21264A is the loosest row: its 15-FO4 design point implies ~890
	// MHz at a 75 ps FO4, while initial parts shipped at 750 MHz (the
	// line later binned to 833 MHz) — bin conservatism, not a modeling
	// error.
	for _, c := range Survey() {
		pred := c.PredictedMHz()
		if c.ReportedMHz == 0 {
			t.Fatalf("%s has no reported clock", c.Name)
		}
		err := math.Abs(pred-c.ReportedMHz) / c.ReportedMHz
		if err > 0.20 {
			t.Errorf("%s: predicted %.0f MHz vs reported %.0f MHz (%.0f%% off)",
				c.Name, pred, c.ReportedMHz, 100*err)
		}
	}
}

func TestIBMFootnoteDerivation(t *testing.T) {
	// Footnote 1: 0.15 um Leff -> 75 ps FO4 -> 13 FO4 per 1.0 GHz cycle.
	got := IBMPowerPC1GHz.PredictedMHz()
	if got < 1000 || got > 1050 {
		t.Fatalf("IBM predicted clock = %.0f MHz, want ~1026", got)
	}
}

func TestSurveyGapBand(t *testing.T) {
	// Section 2: custom runs 6-8x faster than average ASICs.
	g := Gap(IBMPowerPC1GHz, TypicalASIC)
	if g < 6 || g > 8.5 {
		t.Fatalf("IBM/typical gap = %.1f, want 6-8.5", g)
	}
	g = Gap(Alpha21264A, TypicalASIC)
	if g < 5 || g > 7 {
		t.Fatalf("Alpha/typical gap = %.1f, want ~5.6", g)
	}
	// Tensilica is the mid-point: faster than typical, well behind
	// custom.
	if Gap(TensilicaXtensa, TypicalASIC) < 1.5 {
		t.Fatal("Xtensa should clearly beat a typical ASIC")
	}
	if Gap(IBMPowerPC1GHz, TensilicaXtensa) < 3 {
		t.Fatal("custom should clearly beat the ASIC processor")
	}
}

func TestSurveyOrderingAndMetadata(t *testing.T) {
	s := Survey()
	if len(s) != 5 {
		t.Fatalf("survey has %d rows, want 5", len(s))
	}
	for _, c := range s {
		if c.String() == "" {
			t.Fatalf("%s: empty description", c.Name)
		}
		if c.Custom && c.Family != DominoHeavy {
			t.Errorf("%s: surveyed custom chips all use dynamic logic", c.Name)
		}
		if !c.Custom && c.Family != StaticCMOS {
			t.Errorf("%s: surveyed ASICs are static CMOS", c.Name)
		}
		if c.Custom && c.SkewFrac > 0.05 {
			t.Errorf("%s: custom skew budget should be ~5%%", c.Name)
		}
	}
}

func TestGapZeroDenominator(t *testing.T) {
	if Gap(Alpha21264A, Chip{}) != 0 {
		t.Fatal("gap against zero-clock chip should be 0")
	}
}

func TestPowerDensityDirection(t *testing.T) {
	// Alpha: 90 W over 225 mm^2 = 0.4 W/mm^2; IBM: 6.3 W over 9.8 mm^2
	// = 0.64 W/mm^2. Both far above ASIC-class density.
	alpha := Alpha21264A.PowerW / Alpha21264A.AreaMM2
	ibm := IBMPowerPC1GHz.PowerW / IBMPowerPC1GHz.AreaMM2
	if alpha < 0.2 || ibm < 0.2 {
		t.Fatal("custom power densities should be high")
	}
}
