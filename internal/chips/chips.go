// Package chips records the published 0.25 um-generation silicon the
// paper's section 2 survey is built on, as parameter sets: process,
// clock-cycle depth in FO4, pipeline organization, logic family, and
// reported frequency. The FO4 calibration check — that reported MHz
// follows from FO4-per-cycle times the process FO4 delay — is the paper's
// own footnote-1 method, and anchors every cross-chip comparison the
// toolkit makes.
package chips

import (
	"fmt"

	"repro/internal/units"
)

// Family is the dominant logic family of a design.
type Family int

// Logic family classifications for surveyed chips.
const (
	StaticCMOS Family = iota
	DominoHeavy
)

func (f Family) String() string {
	if f == DominoHeavy {
		return "dynamic/domino"
	}
	return "static CMOS"
}

// Chip is one surveyed design.
type Chip struct {
	Name    string
	Process units.Process
	// ReportedMHz is the published clock rate.
	ReportedMHz float64
	// FO4PerCycle is the cycle time in FO4 units (15 for the Alpha
	// 21264, 13 for the IBM 1.0 GHz PowerPC, about 44 for a Tensilica
	// Xtensa-class ASIC core).
	FO4PerCycle float64
	// PipelineStages is the integer pipeline depth.
	PipelineStages int
	// IssueWidth is instructions per cycle issued.
	IssueWidth int
	// Family is the critical-path logic family.
	Family Family
	// SkewFrac is the clock skew budget as a cycle fraction.
	SkewFrac float64
	// AreaMM2 and PowerW are the published physicals.
	AreaMM2 float64
	PowerW  float64
	// Custom reports full-custom (vs. synthesized ASIC) methodology.
	Custom bool
}

// PredictedMHz derives the clock from FO4 depth and process speed — the
// consistency check between the survey rows.
func (c Chip) PredictedMHz() float64 {
	return c.Process.FrequencyMHz(units.FromFO4(c.FO4PerCycle))
}

func (c Chip) String() string {
	return fmt.Sprintf("%s: %d-stage %v, %.0f FO4/cycle, %.0f MHz reported",
		c.Name, c.PipelineStages, c.Family, c.FO4PerCycle, c.ReportedMHz)
}

// The survey rows of section 2.
var (
	// Alpha21264A: 750 MHz in 0.25 um CMOS at 2.1 V, 90 W, 2.25 cm^2;
	// seven-stage out-of-order core, domino on critical paths, 15 FO4
	// cycles, ~5% skew.
	Alpha21264A = Chip{
		Name:           "Alpha 21264A",
		Process:        units.Custom025,
		ReportedMHz:    750,
		FO4PerCycle:    15,
		PipelineStages: 7,
		IssueWidth:     6,
		Family:         DominoHeavy,
		SkewFrac:       0.05,
		AreaMM2:        225,
		PowerW:         90,
		Custom:         true,
	}

	// IBMPowerPC1GHz: the 1.0 GHz integer processor, 1.8 V, 6.3 W,
	// 9.8 mm^2; four-stage single-issue pipeline, dynamic logic, 13 FO4.
	IBMPowerPC1GHz = Chip{
		Name:           "IBM 1.0GHz integer",
		Process:        units.Custom025,
		ReportedMHz:    1000,
		FO4PerCycle:    13,
		PipelineStages: 4,
		IssueWidth:     1,
		Family:         DominoHeavy,
		SkewFrac:       0.05,
		AreaMM2:        9.8,
		PowerW:         6.3,
		Custom:         true,
	}

	// TensilicaXtensa: the 250 MHz configurable ASIC processor, ~4 mm^2,
	// five-stage single-issue pipeline, static cells, ~44 FO4.
	TensilicaXtensa = Chip{
		Name:           "Tensilica Xtensa",
		Process:        units.ASIC025,
		ReportedMHz:    250,
		FO4PerCycle:    44,
		PipelineStages: 5,
		IssueWidth:     1,
		Family:         StaticCMOS,
		SkewFrac:       0.10,
		AreaMM2:        4,
		Custom:         false,
	}

	// TypicalASIC: the anecdotal 120-150 MHz average ASIC (135 MHz
	// midpoint), little or no pipelining.
	TypicalASIC = Chip{
		Name:           "typical ASIC",
		Process:        units.ASIC025,
		ReportedMHz:    135,
		FO4PerCycle:    82,
		PipelineStages: 1,
		IssueWidth:     1,
		Family:         StaticCMOS,
		SkewFrac:       0.10,
		Custom:         false,
	}

	// FastNetworkASIC: the high-speed network ASICs reaching 200 MHz.
	FastNetworkASIC = Chip{
		Name:           "fast network ASIC",
		Process:        units.ASIC025,
		ReportedMHz:    200,
		FO4PerCycle:    55,
		PipelineStages: 2,
		IssueWidth:     1,
		Family:         StaticCMOS,
		SkewFrac:       0.10,
		Custom:         false,
	}
)

// Survey returns the section 2 rows in presentation order.
func Survey() []Chip {
	return []Chip{Alpha21264A, IBMPowerPC1GHz, TensilicaXtensa, FastNetworkASIC, TypicalASIC}
}

// Gap returns the speed ratio between two chips' reported clocks.
func Gap(fast, slow Chip) float64 {
	if slow.ReportedMHz == 0 {
		return 0
	}
	return fast.ReportedMHz / slow.ReportedMHz
}
