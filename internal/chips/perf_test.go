package chips

import (
	"testing"

	"repro/internal/pipeline"
)

func TestAlphaWidthPaysOnParallelCode(t *testing.T) {
	// On parallel work the 6-issue Alpha beats the single-issue IBM
	// core despite a 25% slower clock; on serial control code the
	// faster clock wins.
	dsp := pipeline.DSPWorkload()
	bus := pipeline.BusInterfaceWorkload()
	if Performance(Alpha21264A, dsp) <= Performance(IBMPowerPC1GHz, dsp) {
		t.Fatalf("Alpha should win DSP: %.0f vs %.0f",
			Performance(Alpha21264A, dsp), Performance(IBMPowerPC1GHz, dsp))
	}
	if Performance(IBMPowerPC1GHz, bus) <= Performance(Alpha21264A, bus) {
		t.Fatalf("IBM's clock should win serial code: %.0f vs %.0f",
			Performance(IBMPowerPC1GHz, bus), Performance(Alpha21264A, bus))
	}
}

func TestPerformanceGapVsClockGap(t *testing.T) {
	// The custom/ASIC throughput gap on integer code exceeds the raw
	// clock gap once issue width counts (the paper's architecture
	// factor includes more than pipeline depth).
	integer := pipeline.IntegerWorkload()
	clockGap := Gap(Alpha21264A, TypicalASIC)
	perfGap := PerformanceGap(Alpha21264A, TypicalASIC, integer)
	if perfGap <= clockGap {
		t.Fatalf("multi-issue should widen the gap: perf %.1fx vs clock %.1fx", perfGap, clockGap)
	}
	if perfGap > 4*clockGap {
		t.Fatalf("perf gap %.1fx implausibly large vs clock %.1fx", perfGap, clockGap)
	}
}

func TestPerformancePositive(t *testing.T) {
	for _, c := range Survey() {
		for _, w := range []pipeline.Workload{
			pipeline.DSPWorkload(), pipeline.IntegerWorkload(), pipeline.BusInterfaceWorkload(),
		} {
			if Performance(c, w) <= 0 {
				t.Fatalf("%s has non-positive performance", c.Name)
			}
		}
	}
	if PerformanceGap(Alpha21264A, Chip{}, pipeline.IntegerWorkload()) != 0 {
		t.Fatal("zero-clock denominator should give 0")
	}
}
