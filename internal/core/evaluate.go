package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/dynlogic"
	"repro/internal/netlist"
	"repro/internal/pipeline"
	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/procvar"
	"repro/internal/sizing"
	"repro/internal/sta"
	"repro/internal/synth"
	"repro/internal/units"
	"repro/internal/wire"
)

// Evaluation is the outcome of pushing one design through one methodology.
type Evaluation struct {
	Design      string
	Methodology string

	// Cycle is the nominal minimum clock period.
	Cycle units.Tau
	// NominalMHz is the clock at nominal silicon in the flow's process.
	NominalMHz float64
	// RatingMult is the silicon-speed multiplier from the fab sample
	// under the flow's rating policy.
	RatingMult float64
	// ShippedMHz is what the datasheet says: NominalMHz * RatingMult.
	ShippedMHz float64

	// StageDelays are the per-stage worst delays.
	StageDelays []units.Tau
	// CombFO4 is the unpipelined logic depth of the design in this
	// flow's library, for FO4-per-cycle comparisons with the survey.
	CombFO4 float64
	// FO4PerCycle is Cycle in FO4.
	FO4PerCycle float64

	Gates, Regs int
	AreaMM2     float64
	PowerW      float64
	Converted   int // domino gates

	// HoldPadded counts registers that needed min-delay padding to
	// survive the skew budget (section 4.1's hold-tolerance cost).
	HoldPadded int
	// PhaseLimited reports that the domino precharge window, not the
	// critical path, set the cycle (section 7.1's clocking trap).
	PhaseLimited bool
}

func (e Evaluation) String() string {
	return fmt.Sprintf("%s on %s: %.1f FO4/cycle -> %.0f MHz nominal x %.2f rating = %.0f MHz shipped",
		e.Design, e.Methodology, e.FO4PerCycle, e.NominalMHz, e.RatingMult, e.ShippedMHz)
}

// DatapathDesign is the standard evaluation workload: a deep data-parallel
// pipeline-able datapath (w-bit slices chained `depth` times).
func DatapathDesign(w, depth int) Design {
	return Design{
		Name: fmt.Sprintf("datapath%dx%d", w, depth),
		Build: func(lib *cell.Library) (*netlist.Netlist, error) {
			return circuits.DatapathComb(lib, w, depth)
		},
	}
}

// ALUDesign is a single-execution-unit workload (section 9's whole-path
// point: individual fast elements matter less inside a full path).
func ALUDesign(w int) Design {
	return Design{
		Name: fmt.Sprintf("alu%d", w),
		Build: func(lib *cell.Library) (*netlist.Netlist, error) {
			a, err := circuits.NewALU(lib, w)
			if err != nil {
				return nil, err
			}
			return a.N, nil
		},
	}
}

// Evaluate runs the full flow for the methodology on the design.
func Evaluate(d Design, m Methodology) (Evaluation, error) {
	return EvaluateCtx(context.Background(), d, m)
}

// EvaluateCtx is Evaluate with cooperative cancellation: the context is
// checked between flow stages (generate/map, size, place, pipeline,
// resize, dominoize, rate), so a cancelled or timed-out job stops at the
// next stage boundary instead of running the flow to completion. The
// flow itself never mutates shared state, so abandoning it mid-stage is
// safe; stage granularity just bounds the wasted work.
func EvaluateCtx(ctx context.Context, d Design, m Methodology) (Evaluation, error) {
	ev := Evaluation{Design: d.Name, Methodology: m.Name}
	if m.Seq == nil {
		return ev, fmt.Errorf("core: methodology %s has no sequential cell", m.Name)
	}
	if err := ctx.Err(); err != nil {
		return ev, err
	}
	obs := stageObserver(ctx)

	// 1. Generate, sweep (constant folding + DCE on the generator's
	// tie-offs), and technology-map the logic.
	stageDone, err := stageEnter(ctx, obs, "synthesize")
	if err != nil {
		return ev, err
	}
	raw, err := d.Build(m.Library)
	if err != nil {
		return ev, err
	}
	raw, err = synth.Sweep(raw)
	if err != nil {
		return ev, err
	}
	comb, err := synth.Map(raw, m.Library, synth.MapOptions{Objective: synth.MinDelay})
	if err != nil {
		return ev, err
	}
	stageDone()

	if err := ctx.Err(); err != nil {
		return ev, err
	}

	// 2. Pre-layout sizing against the wire-load model.
	if stageDone, err = stageEnter(ctx, obs, "presize"); err != nil {
		return ev, err
	}
	wm := wire.NewModel(m.Process)
	blockArea := comb.TotalArea() * place.CellAreaUnitMM2
	wl := &wire.LoadModel{M: wm, BlockAreaMM2: maxf(blockArea, 0.25)}
	if err := synth.SelectDrives(comb, m.Library, wl); err != nil {
		return ev, err
	}
	if _, err := synth.InsertBuffers(comb, m.Library); err != nil {
		return ev, err
	}
	if err := synth.SelectDrives(comb, m.Library, nil); err != nil {
		return ev, err
	}
	stageDone()

	if err := ctx.Err(); err != nil {
		return ev, err
	}

	// 3. Floorplan the combinational design and annotate parasitics, so
	// both the pipeline cut and the sizing passes see wire delay. A
	// zero DieSideMM derives the die from the design's own area at
	// block-level utilization (blocks plus routing/whitespace spread
	// over ~40x their cell area), so wire lengths stay proportionate to
	// the design instead of to an arbitrary chip.
	if stageDone, err = stageEnter(ctx, obs, "floorplan"); err != nil {
		return ev, err
	}
	side := m.DieSideMM
	if side <= 0 {
		side = clampf(sqrtf(comb.TotalArea()*place.CellAreaUnitMM2*40), 0.8, 10)
	}
	annotate := func(n *netlist.Netlist) {
		pl := place.Floorplan(n, place.Die{SideMM: side}, m.Floorplan, m.Seed+1)
		pl.Annotate(n, place.AnnotateOptions{
			WireModel: wm, Repeaters: m.Repeaters, LocalMM: 0.05,
		})
	}
	annotate(comb)
	if err := synth.SelectDrives(comb, m.Library, nil); err != nil {
		return ev, err
	}

	// Record unpipelined placed depth for FO4-per-cycle bookkeeping.
	if r, err := sta.Analyze(comb, sta.Options{}); err == nil {
		ev.CombFO4 = r.CombFO4()
	}
	stageDone()

	if err := ctx.Err(); err != nil {
		return ev, err
	}

	// 4. Pipeline on the wire-annotated timing (the balanced cut now
	// accounts for inter-block wire delay), then re-place and
	// re-annotate the pipelined netlist.
	if stageDone, err = stageEnter(ctx, obs, "pipeline"); err != nil {
		return ev, err
	}
	piped, err := pipeline.Pipeline(comb, pipeline.Options{
		Stages: m.Stages, Seq: m.Seq, Method: m.Cut, Refine: m.RefineCut,
	})
	if err != nil {
		return ev, err
	}
	annotate(piped)
	stageDone()

	if err := ctx.Err(); err != nil {
		return ev, err
	}

	// 5. Post-layout sizing. Every flow at least re-selects drives
	// against the extracted parasitics (the standard ECO resize);
	// better flows add post-layout buffering of the now-visible long
	// nets, and custom flows run continuous sensitivity sizing.
	if stageDone, err = stageEnter(ctx, obs, "postsize"); err != nil {
		return ev, err
	}
	if err := synth.SelectDrives(piped, m.Library, nil); err != nil {
		return ev, err
	}
	if m.Sizing >= SizePostLayout {
		if _, err := synth.InsertBuffers(piped, m.Library); err != nil {
			return ev, err
		}
		if err := synth.SelectDrives(piped, m.Library, nil); err != nil {
			return ev, err
		}
	}
	if m.Sizing >= SizeContinuous {
		if _, err := sizing.ContinuousTILOS(piped, m.Library, sizing.DefaultOptions()); err != nil {
			return ev, err
		}
		if !m.Library.Continuous {
			if _, err := sizing.SnapToLibrary(piped, m.Library, sizing.SnapNearest); err != nil {
				return ev, err
			}
		}
	}
	stageDone()

	if err := ctx.Err(); err != nil {
		return ev, err
	}

	// 6. Dynamic logic on critical paths.
	if stageDone, err = stageEnter(ctx, obs, "domino"); err != nil {
		return ev, err
	}
	if m.DominoFrac > 0 {
		opt := dynlogic.DefaultOptions()
		opt.Fraction = m.DominoFrac
		dres, err := dynlogic.Dominoize(piped, opt)
		if err != nil {
			return ev, err
		}
		ev.Converted = dres.Converted
	}
	stageDone()

	if err := ctx.Err(); err != nil {
		return ev, err
	}

	// 7. Final timing and cycle.
	if stageDone, err = stageEnter(ctx, obs, "timing"); err != nil {
		return ev, err
	}
	r, err := sta.Analyze(piped, sta.Options{})
	if err != nil {
		return ev, err
	}
	ev.StageDelays = pipeline.StageDelays(piped, r, m.Stages)
	if m.Borrow {
		ev.Cycle = pipeline.BorrowedCycle(ev.StageDelays, m.Clocking)
	} else {
		ev.Cycle = pipeline.FFCycle(ev.StageDelays, m.Clocking)
	}

	// Domino phasing: with custom (low-skew, multi-phase) clocking the
	// evaluate window spans the cycle; an ASIC-style single-phase clock
	// walls the domino chain at half a cycle.
	if ev.Converted > 0 {
		scheme := dynlogic.SinglePhase
		if m.Clocking.SkewFrac <= 0.05 {
			scheme = dynlogic.SkewTolerant
		}
		phase, err := dynlogic.PhaseCheck(piped, scheme)
		if err != nil {
			return ev, err
		}
		if eff := dynlogic.EffectiveCycle(ev.Cycle, phase); eff > ev.Cycle {
			ev.Cycle = eff
			ev.PhaseLimited = true
		}
	}

	// Hold: pad races against the skew budget at the final cycle (the
	// min-delay fix every real flow runs), then confirm timing did not
	// move.
	padded, err := sta.PadHold(piped, m.Library, m.Clocking, ev.Cycle)
	if err != nil {
		return ev, err
	}
	ev.HoldPadded = padded
	if padded > 0 {
		r, err = sta.Analyze(piped, sta.Options{})
		if err != nil {
			return ev, err
		}
		ev.StageDelays = pipeline.StageDelays(piped, r, m.Stages)
		recycled := pipeline.FFCycle(ev.StageDelays, m.Clocking)
		if m.Borrow {
			recycled = pipeline.BorrowedCycle(ev.StageDelays, m.Clocking)
		}
		if recycled > ev.Cycle {
			ev.Cycle = recycled
		}
	}

	ev.FO4PerCycle = ev.Cycle.FO4()
	ev.NominalMHz = m.Process.FrequencyMHz(ev.Cycle)
	stageDone()

	// 8. Process rating.
	if stageDone, err = stageEnter(ctx, obs, "rate"); err != nil {
		return ev, err
	}
	speeds := m.Fab.Sample(4000, m.Seed+7)
	switch m.Rating {
	case RateTested:
		ev.RatingMult = procvar.Quantile(speeds, 0.5)
	case RateFastBin:
		ev.RatingMult = procvar.Quantile(speeds, 0.99)
	default:
		ev.RatingMult = procvar.ASICRating(speeds)
	}
	ev.ShippedMHz = ev.NominalMHz * ev.RatingMult

	ev.Gates = piped.NumGates()
	ev.Regs = piped.NumRegs()
	ev.AreaMM2 = piped.TotalArea() * place.CellAreaUnitMM2
	ev.PowerW = power.Estimate(piped, m.Process, power.DefaultOptions(ev.ShippedMHz)).TotalW()
	stageDone()
	return ev, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func sqrtf(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
