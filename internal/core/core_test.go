package core

import (
	"math"
	"testing"

	"repro/internal/pipeline"
)

func TestEvaluateTypicalASIC(t *testing.T) {
	ev, err := Evaluate(DatapathDesign(16, 4), TypicalASIC2000())
	if err != nil {
		t.Fatal(err)
	}
	if ev.NominalMHz <= 0 || ev.ShippedMHz <= 0 {
		t.Fatalf("non-positive clocks: %+v", ev)
	}
	if math.Abs(ev.ShippedMHz-ev.NominalMHz*ev.RatingMult) > 1e-9 {
		t.Fatal("shipped != nominal * rating")
	}
	if ev.RatingMult >= 1 {
		t.Fatalf("worst-case rating multiplier %.2f should be well below 1", ev.RatingMult)
	}
	if len(ev.StageDelays) != 1 {
		t.Fatalf("unpipelined flow should report 1 stage, got %d", len(ev.StageDelays))
	}
	if ev.Gates == 0 || ev.Regs == 0 {
		t.Fatal("missing structure counts")
	}
	if ev.String() == "" {
		t.Fatal("empty evaluation description")
	}
}

func TestEvaluateOrdering(t *testing.T) {
	// Typical ASIC < best-practice ASIC < full custom, on shipped MHz.
	d := DatapathDesign(16, 4)
	typ, err := Evaluate(d, TypicalASIC2000())
	if err != nil {
		t.Fatal(err)
	}
	best, err := Evaluate(d, BestPracticeASIC())
	if err != nil {
		t.Fatal(err)
	}
	custom, err := Evaluate(d, FullCustom())
	if err != nil {
		t.Fatal(err)
	}
	if !(typ.ShippedMHz < best.ShippedMHz && best.ShippedMHz < custom.ShippedMHz) {
		t.Fatalf("ordering violated: %.0f / %.0f / %.0f MHz",
			typ.ShippedMHz, best.ShippedMHz, custom.ShippedMHz)
	}
	// The full gap should be far beyond the observed 6-8x (it is the
	// ceiling: observed ASICs are not maximally naive, observed customs
	// do not exploit everything).
	gap := custom.ShippedMHz / typ.ShippedMHz
	if gap < 10 || gap > 80 {
		t.Fatalf("ceiling gap = %.1fx, want 10-80x", gap)
	}
	// Best-practice ASIC vs typical should itself be a big win: the
	// paper's optimistic reading.
	if best.ShippedMHz/typ.ShippedMHz < 2 {
		t.Fatal("best-practice ASIC should at least double typical ASIC speed")
	}
}

func TestEvaluateConvertsDominoOnlyWhenAsked(t *testing.T) {
	d := DatapathDesign(16, 2)
	typ, err := Evaluate(d, TypicalASIC2000())
	if err != nil {
		t.Fatal(err)
	}
	if typ.Converted != 0 {
		t.Fatal("static flow converted domino gates")
	}
	custom, err := Evaluate(d, FullCustom())
	if err != nil {
		t.Fatal(err)
	}
	if custom.Converted == 0 {
		t.Fatal("custom flow converted nothing to domino")
	}
}

func TestFactorLadderShape(t *testing.T) {
	l, err := FactorLadder(DatapathDesign(16, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Steps) != 5 {
		t.Fatalf("ladder has %d steps, want 5", len(l.Steps))
	}
	get := func(name string) Factor {
		for _, s := range l.Steps {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("missing step %s", name)
		return Factor{}
	}
	pipe := get(StepPipelining)
	floor := get(StepFloorplan)
	_ = get(StepSizing)
	dom := get(StepDomino)
	proc := get(StepProcess)

	// Every factor must help.
	for _, s := range l.Steps {
		if s.Mult <= 1.0 {
			t.Errorf("step %s multiplier %.2f <= 1", s.Name, s.Mult)
		}
	}
	// Section 9's ranking: pipelining and process are the two largest.
	for _, other := range []Factor{floor, dom} {
		if pipe.Mult <= other.Mult || proc.Mult <= other.Mult {
			t.Errorf("pipelining (%.2f) and process (%.2f) should dominate %s (%.2f)",
				pipe.Mult, proc.Mult, other.Name, other.Mult)
		}
	}
	// Bands (wide: these are measurements on a simulated substrate,
	// compared against the paper's ceiling estimates).
	bands := map[string][3]float64{
		StepPipelining: {2.2, 4.6, 4.00},
		StepFloorplan:  {1.05, 1.9, 1.25},
		StepSizing:     {1.4, 3.4, 1.25},
		StepDomino:     {1.05, 1.8, 1.50},
		StepProcess:    {1.7, 2.9, 1.90},
	}
	for name, b := range bands {
		f := get(name)
		if f.Mult < b[0] || f.Mult > b[1] {
			t.Errorf("%s = %.2f, want in [%.2f, %.2f] (paper %.2f)", name, f.Mult, b[0], b[1], b[2])
		}
		if f.PaperMult != b[2] {
			t.Errorf("%s paper estimate = %.2f, want %.2f", name, f.PaperMult, b[2])
		}
	}
	if pt := l.PaperTotal(); math.Abs(pt-17.8) > 0.05 {
		t.Errorf("paper total = %.2f, want ~17.8", pt)
	}
	// The measured total equals the product of the steps and the ratio
	// of endpoint evaluations.
	wantTotal := l.Steps[len(l.Steps)-1].Eval.ShippedMHz / l.Baseline.ShippedMHz
	if math.Abs(l.Total()-wantTotal)/wantTotal > 1e-9 {
		t.Errorf("total %.3f != endpoint ratio %.3f", l.Total(), wantTotal)
	}
	if l.String() == "" {
		t.Error("empty ladder description")
	}
}

func TestResidualArithmetic(t *testing.T) {
	l, err := FactorLadder(DatapathDesign(16, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	all := l.Total()
	r := l.Residual(StepPipelining, StepProcess)
	var pipe, proc float64
	for _, s := range l.Steps {
		switch s.Name {
		case StepPipelining:
			pipe = s.Mult
		case StepProcess:
			proc = s.Mult
		}
	}
	if math.Abs(r-all/(pipe*proc)) > 1e-9 {
		t.Fatalf("residual arithmetic broken: %.3f vs %.3f", r, all/(pipe*proc))
	}
	// Section 9: pipelining and process leave a residual of roughly
	// 2-3x; adding dynamic logic leaves about 1.6x. Our bands are
	// wider because the sizing rung bundles library richness.
	if r < 1.5 || r > 6 {
		t.Errorf("residual after pipe+process = %.2f, want 1.5-6 (paper: 2-3)", r)
	}
	r2 := l.Residual(StepPipelining, StepProcess, StepDomino)
	if r2 >= r {
		t.Error("explaining more must shrink the residual")
	}
}

func TestLadderDeterministicPerSeed(t *testing.T) {
	a, err := FactorLadder(DatapathDesign(8, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FactorLadder(DatapathDesign(8, 2), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Steps {
		if a.Steps[i].Mult != b.Steps[i].Mult {
			t.Fatalf("step %s differs across identical runs", a.Steps[i].Name)
		}
	}
}

func TestALUDesignEvaluates(t *testing.T) {
	m := BestPracticeASIC()
	m.Stages = 2
	ev, err := Evaluate(ALUDesign(16), m)
	if err != nil {
		t.Fatal(err)
	}
	if ev.NominalMHz <= 0 {
		t.Fatal("ALU evaluation produced no clock")
	}
}

func TestEvaluateRejectsMissingSeq(t *testing.T) {
	m := TypicalASIC2000()
	m.Seq = nil
	if _, err := Evaluate(DatapathDesign(8, 1), m); err == nil {
		t.Fatal("missing sequential cell must be rejected")
	}
}

func TestMethodologyDescriptions(t *testing.T) {
	for _, m := range []Methodology{TypicalASIC2000(), BestPracticeASIC(), FullCustom()} {
		if m.String() == "" {
			t.Fatal("empty methodology description")
		}
	}
	if TypicalASIC2000().Cut != pipeline.NaiveLevels {
		t.Fatal("typical ASIC should use the naive cut")
	}
	if !FullCustom().Library.Continuous {
		t.Fatal("custom methodology needs a continuous library")
	}
}

func TestFO4PerCycleConsistency(t *testing.T) {
	ev, err := Evaluate(DatapathDesign(8, 2), BestPracticeASIC())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev.FO4PerCycle-ev.Cycle.FO4()) > 1e-12 {
		t.Fatal("FO4PerCycle disagrees with Cycle")
	}
	// Shipped clock should be slower than the raw process maximum for
	// the same cycle in nominal silicon times rating < 1... but tested
	// rating can exceed 1 only on a hot lot; here it is below ~1.1.
	if ev.RatingMult > 1.2 {
		t.Fatalf("tested rating multiplier %.2f implausible", ev.RatingMult)
	}
}

func TestLadderRobustAcrossDesigns(t *testing.T) {
	// The ladder's qualitative shape holds on a different workload (an
	// ALU instead of the deep datapath): every factor helps, pipelining
	// stays on top, totals remain in the ceiling band.
	l, err := FactorLadder(ALUDesign(16), 9)
	if err != nil {
		t.Fatal(err)
	}
	var topName string
	top := 0.0
	for _, s := range l.Steps {
		// The ALU is a single floorplan block, so the floorplanning
		// rung is legitimately a no-op there; everything else must
		// strictly help.
		if s.Name == StepFloorplan {
			if s.Mult < 0.99 {
				t.Errorf("ALU ladder: floorplanning hurt: %.3f", s.Mult)
			}
		} else if s.Mult <= 1.0 {
			t.Errorf("ALU ladder: factor %s = %.2f <= 1", s.Name, s.Mult)
		}
		if s.Mult > top {
			top, topName = s.Mult, s.Name
		}
	}
	if topName != StepPipelining && topName != StepSizing {
		t.Errorf("ALU ladder: top factor %s (%.2f); expected pipelining or the bundled sizing rung", topName, top)
	}
	if total := l.Total(); total < 8 || total > 80 {
		t.Errorf("ALU ladder total = %.1fx, want 8-80x", total)
	}
}

func TestEvaluateExplicitDie(t *testing.T) {
	// An explicit chip-scale die stretches wires and slows the design
	// relative to the auto-derived compact die.
	d := DatapathDesign(16, 3)
	auto := BestPracticeASIC()
	big := BestPracticeASIC()
	big.DieSideMM = 10
	evAuto, err := Evaluate(d, auto)
	if err != nil {
		t.Fatal(err)
	}
	evBig, err := Evaluate(d, big)
	if err != nil {
		t.Fatal(err)
	}
	if evBig.NominalMHz >= evAuto.NominalMHz {
		t.Fatalf("10mm die (%.0f MHz) should be slower than compact die (%.0f MHz)",
			evBig.NominalMHz, evAuto.NominalMHz)
	}
}
