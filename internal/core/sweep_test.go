package core

import (
	"testing"

	"repro/internal/pipeline"
)

func TestDepthSweepShapes(t *testing.T) {
	m := BestPracticeASIC()
	d := DatapathDesign(16, 3)
	dsp := pipeline.DSPWorkload()
	bus := pipeline.BusInterfaceWorkload()

	pts, err := DepthSweep(d, m, 6, dsp.CPI)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	// Clock rises monotonically-ish with depth; allow small wobble from
	// placement/padding, but depth 6 must clearly beat depth 1.
	if pts[5].Eval.ShippedMHz < 2*pts[0].Eval.ShippedMHz {
		t.Fatalf("6 stages (%.0f MHz) should be >2x 1 stage (%.0f MHz)",
			pts[5].Eval.ShippedMHz, pts[0].Eval.ShippedMHz)
	}
	// DSP keeps gaining with depth; a bus interface saturates earlier.
	bestDSP := BestDepth(pts)
	busPts, err := DepthSweep(d, m, 6, bus.CPI)
	if err != nil {
		t.Fatal(err)
	}
	bestBus := BestDepth(busPts)
	if bestDSP.Stages < bestBus.Stages {
		t.Fatalf("DSP best depth (%d) should be >= bus-interface best depth (%d)",
			bestDSP.Stages, bestBus.Stages)
	}
	// Normalization: depth 1 is 1.0 by construction.
	if pts[0].ThroughputRel != 1 {
		t.Fatalf("depth-1 throughput = %g, want 1", pts[0].ThroughputRel)
	}
}

func TestDepthSweepValidation(t *testing.T) {
	if _, err := DepthSweep(DatapathDesign(8, 1), BestPracticeASIC(), 0, func(int) float64 { return 1 }); err == nil {
		t.Fatal("zero maxStages must be rejected")
	}
}

func TestHoldAndPhaseFieldsPopulated(t *testing.T) {
	// Custom flow converts domino and runs at low skew: multi-phase, so
	// the phase wall should not bind; typical ASIC at 10% skew pads
	// hold races on its register chains.
	d := DatapathDesign(16, 3)
	custom, err := Evaluate(d, FullCustom())
	if err != nil {
		t.Fatal(err)
	}
	if custom.Converted > 0 && custom.PhaseLimited {
		t.Log("custom flow is phase limited — acceptable but unusual with skew-tolerant domino")
	}
	m := BestPracticeASIC()
	ev, err := Evaluate(d, m)
	if err != nil {
		t.Fatal(err)
	}
	// 5-stage ASIC pipelines have register-to-register alignment chains
	// racing a 10%-of-cycle skew: padding should be engaged.
	if ev.HoldPadded == 0 {
		t.Fatal("ASIC pipeline at 10% skew should need hold padding")
	}
}
