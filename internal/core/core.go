// Package core is the paper's primary contribution rebuilt as an
// executable model: a methodology descriptor covering every design-flow
// choice the paper identifies — pipelining depth and cut quality, clock
// distribution, sequential-element style, floorplanning effort, library
// richness and sizing discipline, logic family, and process
// access/rating — plus an evaluation engine that pushes a real gate-level
// design through the corresponding flow (map, size, pipeline, place,
// domino, rate) and reports the achievable shipped clock.
//
// The headline analysis (section 3's factor ladder: x4.00 pipelining,
// x1.25 floorplanning, x1.25 sizing/circuit design, x1.50 dynamic logic,
// x1.90 process — about 18x stacked) is reproduced by FactorLadder, which
// flips one knob at a time from a typical-ASIC methodology to full custom
// and measures each step on silicon-free but structure-faithful circuits.
package core

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/pipeline"
	"repro/internal/place"
	"repro/internal/procvar"
	"repro/internal/sta"
	"repro/internal/units"
)

// Design names a combinational workload generator. Build receives the
// methodology's library so decomposition happens exactly as synthesis to
// that library would.
type Design struct {
	Name  string
	Build func(lib *cell.Library) (*netlist.Netlist, error)
}

// SizingLevel is the sizing discipline of a flow.
type SizingLevel int

const (
	// SizeDrives is drive selection against wire-load estimates only
	// (pre-layout synthesis sizing).
	SizeDrives SizingLevel = iota
	// SizePostLayout re-selects drives against extracted parasitics
	// after placement (the section 6.2 "after layout, transistors can
	// be resized" step).
	SizePostLayout
	// SizeContinuous runs TILOS-style continuous sizing on the placed
	// design — the custom capability; on a discrete library the result
	// is snapped back to the nearest cells.
	SizeContinuous
)

func (s SizingLevel) String() string {
	switch s {
	case SizePostLayout:
		return "post-layout"
	case SizeContinuous:
		return "continuous"
	}
	return "wire-load"
}

// Rating is how shipped silicon speed is quoted.
type Rating int

const (
	// RateWorstCase is the foundry's guard-banded worst-case quote.
	RateWorstCase Rating = iota
	// RateTested ships parts at their individually measured speed
	// (median silicon).
	RateTested
	// RateFastBin ships the binned fast tail (custom practice).
	RateFastBin
)

func (r Rating) String() string {
	switch r {
	case RateTested:
		return "tested"
	case RateFastBin:
		return "fast-bin"
	}
	return "worst-case"
}

// Methodology is a complete description of a design flow's choices.
type Methodology struct {
	Name string

	// Library and sequential/clocking style.
	Library  *cell.Library
	Seq      *cell.SeqCell
	Clocking sta.Clocking

	// Micro-architecture.
	Stages int
	Cut    pipeline.CutMethod
	// Borrow enables latch-based time borrowing across stages.
	Borrow bool
	// RefineCut enables post-cut retiming-lite stage balancing (the
	// custom "balance logic after placement" capability).
	RefineCut bool

	// Physical design.
	Floorplan place.Quality
	Repeaters bool
	DieSideMM float64

	// Sizing and logic family.
	Sizing     SizingLevel
	DominoFrac float64

	// Process access.
	Process units.Process
	Fab     procvar.Components
	Rating  Rating

	// Seed drives every stochastic step (placement, Monte Carlo).
	Seed int64
}

// TypicalASIC2000 is the paper's average ASIC flow: poor library,
// unpipelined, no floorplanning, wire-load sizing only, static logic,
// worst-case rating on an accessible (second-tier) fab.
func TypicalASIC2000() Methodology {
	lib := cell.PoorASIC()
	return Methodology{
		Name:      "typical-asic",
		Library:   lib,
		Seq:       lib.DefaultSeq(2),
		Clocking:  sta.ASICClocking(),
		Stages:    1,
		Cut:       pipeline.NaiveLevels,
		Floorplan: place.Naive,
		Sizing:    SizeDrives,
		Process:   units.ASIC025,
		Fab:       procvar.SecondTierFab(),
		Rating:    RateWorstCase,
	}
}

// BestPracticeASIC is what the paper urges ASIC designers toward: rich
// library, pipelined with balanced cuts, floorplanned and repeated,
// post-layout resizing, tested-speed shipping.
func BestPracticeASIC() Methodology {
	lib := cell.RichASIC()
	return Methodology{
		Name:      "best-practice-asic",
		Library:   lib,
		Seq:       lib.DefaultSeq(2),
		Clocking:  sta.ASICClocking(),
		Stages:    5,
		Cut:       pipeline.BalancedDelay,
		Floorplan: place.Careful,
		Repeaters: true,
		Sizing:    SizePostLayout,
		Process:   units.ASIC025,
		Fab:       procvar.NewProcess(),
		Rating:    RateTested,
	}
}

// FullCustom is the Alpha/IBM-class methodology: continuous sizing,
// domino critical paths, custom latches and clocking, best fab, fast bin.
func FullCustom() Methodology {
	lib := cell.Custom()
	return Methodology{
		Name:       "full-custom",
		Library:    lib,
		Seq:        cell.CustomPulseLatch(2),
		Clocking:   sta.CustomClocking(),
		Stages:     5,
		Cut:        pipeline.BalancedDelay,
		Borrow:     true,
		RefineCut:  true,
		Floorplan:  place.Careful,
		Repeaters:  true,
		Sizing:     SizeContinuous,
		DominoFrac: 0.35,
		Process:    units.Custom025,
		Fab:        procvar.MatureProcess(),
		Rating:     RateFastBin,
	}
}

func (m Methodology) String() string {
	return fmt.Sprintf("%s: %d stages, %v cut, %v floorplan, %v sizing, domino %.0f%%, %v rating",
		m.Name, m.Stages, m.Cut, m.Floorplan, m.Sizing, 100*m.DominoFrac, m.Rating)
}
