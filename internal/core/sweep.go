package core

import (
	"context"
	"fmt"
)

// DepthPoint is one row of a pipeline-depth sweep.
type DepthPoint struct {
	Stages int
	Eval   Evaluation
	// ThroughputRel is relative ops/second on the given workload
	// (clock gain discounted by hazard CPI), normalized to 1 stage.
	ThroughputRel float64
}

// DepthSweep evaluates the methodology at pipeline depths 1..maxStages and
// scores each with the workload model — the paper's full trade-off: deeper
// pipelines clock faster (section 4) but pay dependence and branch
// penalties (section 4.1). The returned points share the methodology's
// every other knob.
func DepthSweep(d Design, m Methodology, maxStages int, cpi func(stages int) float64) ([]DepthPoint, error) {
	return DepthSweepCtx(context.Background(), d, m, maxStages, cpi)
}

// DepthSweepCtx is DepthSweep with cooperative cancellation between (and,
// via EvaluateCtx, inside) per-depth evaluations.
func DepthSweepCtx(ctx context.Context, d Design, m Methodology, maxStages int, cpi func(stages int) float64) ([]DepthPoint, error) {
	if maxStages < 1 {
		return nil, fmt.Errorf("core: sweep needs maxStages >= 1")
	}
	evals := make([]Evaluation, 0, maxStages)
	for s := 1; s <= maxStages; s++ {
		mm := m
		mm.Stages = s
		ev, err := EvaluateCtx(ctx, d, mm)
		if err != nil {
			return nil, fmt.Errorf("core: sweep at %d stages: %w", s, err)
		}
		evals = append(evals, ev)
	}
	return ScoreSweep(evals, cpi), nil
}

// ScoreSweep turns per-depth evaluations (stages 1..len(evals), in order)
// into scored sweep points, normalizing hazard-discounted throughput to
// the 1-stage point. Shared by the serial and concurrent sweep drivers.
func ScoreSweep(evals []Evaluation, cpi func(stages int) float64) []DepthPoint {
	points := make([]DepthPoint, 0, len(evals))
	var base float64
	for i, ev := range evals {
		s := i + 1
		perf := ev.ShippedMHz / cpi(s)
		if s == 1 {
			base = perf
		}
		points = append(points, DepthPoint{Stages: s, Eval: ev, ThroughputRel: perf / base})
	}
	return points
}

// BestDepth returns the sweep point with the highest throughput.
func BestDepth(points []DepthPoint) DepthPoint {
	best := points[0]
	for _, p := range points[1:] {
		if p.ThroughputRel > best.ThroughputRel {
			best = p
		}
	}
	return best
}
