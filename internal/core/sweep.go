package core

import (
	"fmt"
)

// DepthPoint is one row of a pipeline-depth sweep.
type DepthPoint struct {
	Stages int
	Eval   Evaluation
	// ThroughputRel is relative ops/second on the given workload
	// (clock gain discounted by hazard CPI), normalized to 1 stage.
	ThroughputRel float64
}

// DepthSweep evaluates the methodology at pipeline depths 1..maxStages and
// scores each with the workload model — the paper's full trade-off: deeper
// pipelines clock faster (section 4) but pay dependence and branch
// penalties (section 4.1). The returned points share the methodology's
// every other knob.
func DepthSweep(d Design, m Methodology, maxStages int, cpi func(stages int) float64) ([]DepthPoint, error) {
	if maxStages < 1 {
		return nil, fmt.Errorf("core: sweep needs maxStages >= 1")
	}
	points := make([]DepthPoint, 0, maxStages)
	var base float64
	for s := 1; s <= maxStages; s++ {
		mm := m
		mm.Stages = s
		ev, err := Evaluate(d, mm)
		if err != nil {
			return nil, fmt.Errorf("core: sweep at %d stages: %w", s, err)
		}
		perf := ev.ShippedMHz / cpi(s)
		if s == 1 {
			base = perf
		}
		points = append(points, DepthPoint{Stages: s, Eval: ev, ThroughputRel: perf / base})
	}
	return points, nil
}

// BestDepth returns the sweep point with the highest throughput.
func BestDepth(points []DepthPoint) DepthPoint {
	best := points[0]
	for _, p := range points[1:] {
		if p.ThroughputRel > best.ThroughputRel {
			best = p
		}
	}
	return best
}
