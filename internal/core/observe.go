package core

import (
	"context"
	"time"
)

// StageObserver receives the wall-clock duration of each completed flow
// stage inside EvaluateCtx. Observers must be safe for concurrent use:
// one observer is typically shared by every job in a worker pool.
type StageObserver func(stage string, elapsed time.Duration)

type stageObserverKey struct{}

// WithStageObserver returns a context that makes EvaluateCtx report
// per-stage latencies to obs. internal/jobs uses this to feed the
// service's per-stage histograms without core depending on any metrics
// machinery.
func WithStageObserver(ctx context.Context, obs StageObserver) context.Context {
	if obs == nil {
		return ctx
	}
	return context.WithValue(ctx, stageObserverKey{}, obs)
}

// stageObserver extracts the observer, or nil.
func stageObserver(ctx context.Context) StageObserver {
	obs, _ := ctx.Value(stageObserverKey{}).(StageObserver)
	return obs
}

// stageTimer starts timing one named stage; the returned func reports it.
func stageTimer(obs StageObserver, stage string) func() {
	if obs == nil {
		return func() {}
	}
	start := time.Now()
	return func() { obs(stage, time.Since(start)) }
}
