package core

import (
	"context"
	"fmt"
	"time"
)

// StageObserver receives the wall-clock duration of each completed flow
// stage inside EvaluateCtx. Observers must be safe for concurrent use:
// one observer is typically shared by every job in a worker pool.
type StageObserver func(stage string, elapsed time.Duration)

type stageObserverKey struct{}

// WithStageObserver returns a context that makes EvaluateCtx report
// per-stage latencies to obs. internal/jobs uses this to feed the
// service's per-stage histograms without core depending on any metrics
// machinery.
func WithStageObserver(ctx context.Context, obs StageObserver) context.Context {
	if obs == nil {
		return ctx
	}
	return context.WithValue(ctx, stageObserverKey{}, obs)
}

// stageObserver extracts the observer, or nil.
func stageObserver(ctx context.Context) StageObserver {
	obs, _ := ctx.Value(stageObserverKey{}).(StageObserver)
	return obs
}

// stageTimer starts timing one named stage; the returned func reports it.
// The wall-clock reads here are the one sanctioned use in core: stage
// latencies feed the service's histograms and never touch the
// evaluation arithmetic, so replay stays byte-identical.
func stageTimer(obs StageObserver, stage string) func() {
	if obs == nil {
		return func() {}
	}
	start := time.Now() //gaplint:allow determinism — observability only; latencies never feed evaluation results
	//gaplint:allow determinism — observability only; latencies never feed evaluation results
	return func() { obs(stage, time.Since(start)) }
}

// StageHook runs at the entry of each flow stage inside EvaluateCtx and
// may veto it by returning an error, which aborts the evaluation. It is
// the seam chaos testing hangs fault injection on (internal/faultinject):
// errors, panics, and latency injected here land exactly where a real
// tool failure would. Hooks must be safe for concurrent use.
type StageHook func(ctx context.Context, stage string) error

type stageHookKey struct{}

// WithStageHook returns a context that makes EvaluateCtx call hook at
// every stage entry, before any stage work runs.
func WithStageHook(ctx context.Context, hook StageHook) context.Context {
	if hook == nil {
		return ctx
	}
	return context.WithValue(ctx, stageHookKey{}, hook)
}

// stageHook extracts the hook, or nil.
func stageHook(ctx context.Context) StageHook {
	hook, _ := ctx.Value(stageHookKey{}).(StageHook)
	return hook
}

// stageEnter runs the context's stage hook (if any) and starts the
// stage timer. A hook error aborts the stage before it does any work.
func stageEnter(ctx context.Context, obs StageObserver, stage string) (func(), error) {
	if hook := stageHook(ctx); hook != nil {
		if err := hook(ctx, stage); err != nil {
			return nil, fmt.Errorf("core: stage %s: %w", stage, err)
		}
	}
	return stageTimer(obs, stage), nil
}
