package core

import (
	"fmt"
	"strings"

	"repro/internal/cell"
	"repro/internal/pipeline"
	"repro/internal/place"
	"repro/internal/procvar"
	"repro/internal/sta"
	"repro/internal/units"
)

// Factor is one rung of the ladder: the methodology knob flipped and the
// speed multiplier it bought over the previous rung.
type Factor struct {
	Name string
	// PaperMult is the paper's section 3 estimate for this factor.
	PaperMult float64
	// Mult is our measured multiplier.
	Mult float64
	Eval Evaluation
}

// Ladder is the full section 3 decomposition: successive knob flips from
// a typical ASIC methodology to full custom, each measured on the same
// design.
type Ladder struct {
	Design   string
	Baseline Evaluation
	Steps    []Factor
}

// Total is the product of all measured factors (shipped-clock ratio of
// the last rung to the baseline).
func (l Ladder) Total() float64 {
	t := 1.0
	for _, s := range l.Steps {
		t *= s.Mult
	}
	return t
}

// PaperTotal is the product of the paper's estimates (about 17.8x).
func (l Ladder) PaperTotal() float64 {
	t := 1.0
	for _, s := range l.Steps {
		t *= s.PaperMult
	}
	return t
}

// Residual reports the factor left unexplained after accounting for the
// named steps — the paper's section 9 arithmetic ("pipelining and process
// variation alone account for all except a factor of about 2 to 3x").
func (l Ladder) Residual(explained ...string) float64 {
	total := l.Total()
	for _, name := range explained {
		for _, s := range l.Steps {
			if s.Name == name {
				total /= s.Mult
			}
		}
	}
	return total
}

func (l Ladder) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "factor ladder on %s (baseline %.0f MHz shipped):\n", l.Design, l.Baseline.ShippedMHz)
	for _, s := range l.Steps {
		fmt.Fprintf(&b, "  %-14s x%.2f (paper x%.2f) -> %.0f MHz\n",
			s.Name, s.Mult, s.PaperMult, s.Eval.ShippedMHz)
	}
	fmt.Fprintf(&b, "  total         x%.1f (paper x%.1f)\n", l.Total(), l.PaperTotal())
	return b.String()
}

// Ladder step names, used by Residual callers.
const (
	StepPipelining = "pipelining"
	StepFloorplan  = "floorplanning"
	StepSizing     = "sizing/circuit"
	StepDomino     = "dynamic-logic"
	StepProcess    = "process"
)

// FactorLadder measures the section 3 decomposition on the design: starts
// from the typical-ASIC methodology and flips, cumulatively, pipelining,
// floorplanning, sizing/circuit design, dynamic logic, and process
// access/rating, re-running the full flow at every rung.
func FactorLadder(d Design, seed int64) (Ladder, error) {
	m := TypicalASIC2000()
	m.Seed = seed
	base, err := Evaluate(d, m)
	if err != nil {
		return Ladder{}, fmt.Errorf("core: ladder baseline: %w", err)
	}
	l := Ladder{Design: d.Name, Baseline: base}
	prev := base

	step := func(name string, paper float64, mutate func(*Methodology)) error {
		mutate(&m)
		ev, err := Evaluate(d, m)
		if err != nil {
			return fmt.Errorf("core: ladder step %s: %w", name, err)
		}
		mult := 0.0
		if prev.ShippedMHz > 0 {
			mult = ev.ShippedMHz / prev.ShippedMHz
		}
		l.Steps = append(l.Steps, Factor{Name: name, PaperMult: paper, Mult: mult, Eval: ev})
		prev = ev
		return nil
	}

	// x4.00: heavy pipelining / few logic levels between registers.
	if err := step(StepPipelining, 4.00, func(m *Methodology) {
		m.Stages = 5
		m.Cut = pipeline.BalancedDelay
	}); err != nil {
		return l, err
	}
	// x1.25: good floorplanning and placement (plus proper wire driving).
	if err := step(StepFloorplan, 1.25, func(m *Methodology) {
		m.Floorplan = place.Careful
		m.Repeaters = true
	}); err != nil {
		return l, err
	}
	// x1.25: clever transistor/wire sizing and good circuit design —
	// rich continuous-sizable library, TILOS on the placed design,
	// custom latches and clock distribution.
	if err := step(StepSizing, 1.25, func(m *Methodology) {
		m.Library = cell.Custom()
		m.Seq = cell.CustomPulseLatch(2)
		m.Clocking = sta.CustomClocking()
		m.Borrow = true
		m.RefineCut = true
		m.Sizing = SizeContinuous
	}); err != nil {
		return l, err
	}
	// x1.50: dynamic logic on critical paths.
	if err := step(StepDomino, 1.50, func(m *Methodology) {
		m.DominoFrac = 0.35
	}); err != nil {
		return l, err
	}
	// x1.90: process variation and accessibility — best fab, fast bin,
	// leading-edge effective channel length.
	if err := step(StepProcess, 1.90, func(m *Methodology) {
		m.Process = units.Custom025
		m.Fab = procvar.MatureProcess()
		m.Rating = RateFastBin
	}); err != nil {
		return l, err
	}
	return l, nil
}
