package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cell"
	"repro/internal/pipeline"
	"repro/internal/place"
	"repro/internal/procvar"
	"repro/internal/sta"
	"repro/internal/units"
)

// Factor is one rung of the ladder: the methodology knob flipped and the
// speed multiplier it bought over the previous rung.
type Factor struct {
	Name string
	// PaperMult is the paper's section 3 estimate for this factor.
	PaperMult float64
	// Mult is our measured multiplier.
	Mult float64
	Eval Evaluation
}

// Ladder is the full section 3 decomposition: successive knob flips from
// a typical ASIC methodology to full custom, each measured on the same
// design.
type Ladder struct {
	Design   string
	Baseline Evaluation
	Steps    []Factor
}

// Total is the product of all measured factors (shipped-clock ratio of
// the last rung to the baseline).
func (l Ladder) Total() float64 {
	t := 1.0
	for _, s := range l.Steps {
		t *= s.Mult
	}
	return t
}

// PaperTotal is the product of the paper's estimates (about 17.8x).
func (l Ladder) PaperTotal() float64 {
	t := 1.0
	for _, s := range l.Steps {
		t *= s.PaperMult
	}
	return t
}

// Residual reports the factor left unexplained after accounting for the
// named steps — the paper's section 9 arithmetic ("pipelining and process
// variation alone account for all except a factor of about 2 to 3x").
func (l Ladder) Residual(explained ...string) float64 {
	total := l.Total()
	for _, name := range explained {
		for _, s := range l.Steps {
			if s.Name == name {
				total /= s.Mult
			}
		}
	}
	return total
}

func (l Ladder) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "factor ladder on %s (baseline %.0f MHz shipped):\n", l.Design, l.Baseline.ShippedMHz)
	for _, s := range l.Steps {
		fmt.Fprintf(&b, "  %-14s x%.2f (paper x%.2f) -> %.0f MHz\n",
			s.Name, s.Mult, s.PaperMult, s.Eval.ShippedMHz)
	}
	fmt.Fprintf(&b, "  total         x%.1f (paper x%.1f)\n", l.Total(), l.PaperTotal())
	return b.String()
}

// Ladder step names, used by Residual callers.
const (
	StepPipelining = "pipelining"
	StepFloorplan  = "floorplanning"
	StepSizing     = "sizing/circuit"
	StepDomino     = "dynamic-logic"
	StepProcess    = "process"
)

// Rung is one knob flip of the section 3 ladder: a name, the paper's
// estimate for it, and the methodology mutation it applies on top of the
// previous rung. Apply must only replace fields (including pointer
// fields, with freshly built values) — never mutate through existing
// pointers — so that cumulative Methodology snapshots stay independent
// and safe to evaluate concurrently.
type Rung struct {
	Name      string
	PaperMult float64
	Apply     func(*Methodology)
}

// Rungs returns the section 3 decomposition in ladder order. Both the
// serial FactorLadder and the concurrent driver in internal/jobs consume
// this one table, which is what keeps their results rung-for-rung
// identical.
func Rungs() []Rung {
	return []Rung{
		// x4.00: heavy pipelining / few logic levels between registers.
		{Name: StepPipelining, PaperMult: 4.00, Apply: func(m *Methodology) {
			m.Stages = 5
			m.Cut = pipeline.BalancedDelay
		}},
		// x1.25: good floorplanning and placement (plus proper wire
		// driving).
		{Name: StepFloorplan, PaperMult: 1.25, Apply: func(m *Methodology) {
			m.Floorplan = place.Careful
			m.Repeaters = true
		}},
		// x1.25: clever transistor/wire sizing and good circuit design —
		// rich continuous-sizable library, TILOS on the placed design,
		// custom latches and clock distribution.
		{Name: StepSizing, PaperMult: 1.25, Apply: func(m *Methodology) {
			m.Library = cell.Custom()
			m.Seq = cell.CustomPulseLatch(2)
			m.Clocking = sta.CustomClocking()
			m.Borrow = true
			m.RefineCut = true
			m.Sizing = SizeContinuous
		}},
		// x1.50: dynamic logic on critical paths.
		{Name: StepDomino, PaperMult: 1.50, Apply: func(m *Methodology) {
			m.DominoFrac = 0.35
		}},
		// x1.90: process variation and accessibility — best fab, fast
		// bin, leading-edge effective channel length.
		{Name: StepProcess, PaperMult: 1.90, Apply: func(m *Methodology) {
			m.Process = units.Custom025
			m.Fab = procvar.MatureProcess()
			m.Rating = RateFastBin
		}},
	}
}

// LadderMethodologies expands the rung table into concrete methodologies:
// the typical-ASIC baseline plus one cumulative snapshot per rung, all
// carrying the given seed. The snapshots are value copies; Evaluate may
// run on any subset of them concurrently.
func LadderMethodologies(seed int64) (baseline Methodology, rungs []Methodology) {
	m := TypicalASIC2000()
	m.Seed = seed
	baseline = m
	table := Rungs()
	rungs = make([]Methodology, 0, len(table))
	for _, r := range table {
		r.Apply(&m)
		rungs = append(rungs, m)
	}
	return baseline, rungs
}

// AssembleLadder computes the per-rung multipliers from the baseline and
// per-rung evaluations (in Rungs() order). It is the single place ladder
// arithmetic lives, shared by the serial and concurrent drivers.
func AssembleLadder(design string, base Evaluation, evals []Evaluation) Ladder {
	l := Ladder{Design: design, Baseline: base}
	prev := base
	for i, r := range Rungs() {
		if i >= len(evals) {
			break
		}
		mult := 0.0
		if prev.ShippedMHz > 0 {
			mult = evals[i].ShippedMHz / prev.ShippedMHz
		}
		l.Steps = append(l.Steps, Factor{Name: r.Name, PaperMult: r.PaperMult, Mult: mult, Eval: evals[i]})
		prev = evals[i]
	}
	return l
}

// FactorLadder measures the section 3 decomposition on the design: starts
// from the typical-ASIC methodology and flips, cumulatively, pipelining,
// floorplanning, sizing/circuit design, dynamic logic, and process
// access/rating, re-running the full flow at every rung.
func FactorLadder(d Design, seed int64) (Ladder, error) {
	return FactorLadderCtx(context.Background(), d, seed)
}

// FactorLadderCtx is FactorLadder with cooperative cancellation between
// (and, via EvaluateCtx, inside) rung evaluations.
func FactorLadderCtx(ctx context.Context, d Design, seed int64) (Ladder, error) {
	baseM, rungMs := LadderMethodologies(seed)
	base, err := EvaluateCtx(ctx, d, baseM)
	if err != nil {
		return Ladder{}, fmt.Errorf("core: ladder baseline: %w", err)
	}
	evals := make([]Evaluation, 0, len(rungMs))
	for i, m := range rungMs {
		ev, err := EvaluateCtx(ctx, d, m)
		if err != nil {
			return AssembleLadder(d.Name, base, evals),
				fmt.Errorf("core: ladder step %s: %w", Rungs()[i].Name, err)
		}
		evals = append(evals, ev)
	}
	return AssembleLadder(d.Name, base, evals), nil
}
