package serve

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies one gapd build — what GET /v1/version reports and
// `gapd -version` prints, so mixed-version clusters are diagnosable
// node by node.
type BuildInfo struct {
	// Module is the main module path.
	Module string `json:"module"`
	// Version is the main module version ("(devel)" for a source build).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go"`
	// Revision/Time/Modified carry the VCS stamp when the build has one.
	Revision string `json:"vcs_revision,omitempty"`
	Time     string `json:"vcs_time,omitempty"`
	Modified bool   `json:"vcs_modified,omitempty"`
}

// Version reads the binary's build info via runtime/debug.
func Version() BuildInfo {
	info := BuildInfo{Version: "(devel)", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// payload renders the build info as the /v1/version JSON body (a map so
// the handler can add node identity).
func (b BuildInfo) payload() map[string]any {
	body := map[string]any{
		"module":  b.Module,
		"version": b.Version,
		"go":      b.GoVersion,
	}
	if b.Revision != "" {
		body["vcs_revision"] = b.Revision
	}
	if b.Time != "" {
		body["vcs_time"] = b.Time
	}
	if b.Modified {
		body["vcs_modified"] = true
	}
	return body
}
