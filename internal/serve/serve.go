// Package serve exposes the internal/jobs engine as a small JSON HTTP
// API (the gapd service): submit evaluate / ladder / sweep jobs, inspect
// tracked jobs, and scrape service metrics. Only the standard library is
// used; routing relies on Go 1.22 net/http method-and-path patterns.
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
)

// Options configures the HTTP handler.
type Options struct {
	// Pool executes the jobs (required).
	Pool *jobs.Pool
	// Cluster, when set, shards the service: specs owned by a peer are
	// forwarded (with hedged reads), specs owned by this node run
	// locally, and requests already forwarded once are always served
	// locally (the loop guard). Nil keeps the single-node behaviour.
	Cluster *cluster.Cluster
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// RequestTimeout caps one request's job wait (default 5 minutes;
	// the pool's own JobTimeout still applies underneath).
	RequestTimeout time.Duration
	// MaxQueueDepth bounds submissions admitted beyond the worker count;
	// requests past it are shed with 429 and a Retry-After hint instead
	// of growing the queue without bound. Default 4x the pool's workers;
	// negative disables shedding.
	MaxQueueDepth int
	// MaxPerClient caps concurrent submissions per client (keyed by
	// remote host), so one aggressive client cannot monopolize the
	// admission budget. Default 2x the pool's workers; negative disables.
	MaxPerClient int
	// RetryAfter is the backoff hint sent with shed responses (default
	// 1s, rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// CorruptThreshold is how many quarantined (condemned, unrepaired)
	// store records /healthz tolerates before degrading — but only when
	// no replica repair path exists (no cluster, or replication factor
	// 1): with replicas, read-repair and anti-entropy heal quarantined
	// records as a matter of course, while without them every
	// quarantined record is a recompute waiting to happen and operators
	// should know. Default 0 (any unrepairable quarantined record
	// degrades).
	CorruptThreshold int
}

// handler carries the resolved options and the admission state.
type handler struct {
	pool           *jobs.Pool
	cluster        *cluster.Cluster
	maxBodyBytes   int64
	requestTimeout time.Duration
	maxPending     int // workers + MaxQueueDepth; -1 disables
	maxPerClient   int
	retryAfter     time.Duration
	corruptMax     int // quarantined records tolerated sans repair path

	// pending counts admitted-but-unfinished submissions, which strictly
	// bounds the pool-facing queue: a request sheds before entering the
	// pool, never after.
	pending atomic.Int64
	// deadlineRejected counts submissions refused at the door because
	// their propagated X-Gapd-Deadline had already passed — work that
	// would have been computed for a caller no longer waiting.
	deadlineRejected atomic.Int64

	// start anchors the uptime_seconds metric: how long this handler
	// (in practice, this gapd process) has been serving. gapload stamps
	// reports with it so a measurement can be tied to one server
	// incarnation (a restart resets it along with the cache).
	start time.Time

	// draining flips when this node announces a drain (POST /v1/drain
	// or the SIGTERM hook): /healthz answers 503 with Retry-After, new
	// work is shed to the next rendezvous rank (or refused), and only
	// in-flight jobs and cache/replica reads are still served.
	draining atomic.Bool

	mu        sync.Mutex
	perClient map[string]int

	// bg tracks the off-response-path goroutines the handler spawns
	// (replica pushes, async drains) so shutdown can wait for them
	// (Handler.Quiesce) instead of killing a replication mid-push.
	bg sync.WaitGroup
}

// Handler is the gapd HTTP handler plus its operational controls. It
// serves the route table NewHandler documents; StartDrain switches the
// node into drain mode for zero-loss shutdown.
type Handler struct {
	inner *handler
	mux   *http.ServeMux
}

// ServeHTTP implements http.Handler.
func (hd *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	hd.mux.ServeHTTP(w, r)
}

// StartDrain puts the node into drain mode: /healthz degrades to 503,
// fresh submissions are forwarded to the next rendezvous rank (refused
// with 503 when no peer can take them), in-flight jobs keep running,
// and — under gossip membership — the drain is announced to the cluster
// and every held result is migrated to its new home. Returns the number
// of results newly placed elsewhere. Idempotent.
func (hd *Handler) StartDrain(ctx context.Context) (int, error) {
	hd.inner.draining.Store(true)
	cl := hd.inner.cluster
	if cl == nil || !cl.GossipEnabled() {
		return 0, nil
	}
	return cl.Drain(ctx)
}

// Draining reports whether the node is in drain mode.
func (hd *Handler) Draining() bool { return hd.inner.draining.Load() }

// Quiesce blocks until every background goroutine the handler spawned
// (replica pushes off the response path, async drains) has finished.
// Call it after the HTTP server has stopped accepting requests and
// before tearing down the cluster client those goroutines use.
func (hd *Handler) Quiesce() { hd.inner.bg.Wait() }

// NewHandler builds the gapd route table:
//
//	POST /v1/evaluate  run one flow evaluation
//	POST /v1/ladder    run the section 3 factor ladder (rungs in parallel)
//	POST /v1/sweep     run a pipeline-depth sweep (depths in parallel)
//	GET  /v1/jobs/{id} job status by canonical spec hash
//	GET  /v1/results/{id} stored result by content address (replica reads)
//	PUT  /v1/results/{id} store a replica pushed by a peer (digest-checked)
//	POST /v1/gossip    membership exchange (gossip mode; see cluster.GossipMsg)
//	POST /v1/drain     announce drain + migrate held results (?wait=1 blocks)
//	GET  /v1/cluster   cluster membership, health, and ownership stats
//	GET  /v1/version   build info (module, version, Go toolchain, VCS)
//	GET  /healthz      liveness (503 + Retry-After while draining)
//	GET  /metrics      counters, cache traffic, latency histograms (JSON)
func NewHandler(opt Options) *Handler {
	if opt.Pool == nil {
		panic("serve: Options.Pool is required")
	}
	h := &handler{
		pool:           opt.Pool,
		cluster:        opt.Cluster,
		maxBodyBytes:   opt.MaxBodyBytes,
		requestTimeout: opt.RequestTimeout,
		maxPerClient:   opt.MaxPerClient,
		retryAfter:     opt.RetryAfter,
		corruptMax:     opt.CorruptThreshold,
		start:          time.Now(),
		perClient:      map[string]int{},
	}
	if opt.Cluster != nil {
		// Read-repair wiring: a corrupt or quarantined store record is
		// fetched back from its replica set (digest + content-address
		// verified) before the pool admits a recompute.
		opt.Pool.SetReadRepair(opt.Cluster.ReadRepair)
	}
	if h.maxBodyBytes <= 0 {
		h.maxBodyBytes = 1 << 20
	}
	if h.requestTimeout <= 0 {
		h.requestTimeout = 5 * time.Minute
	}
	switch {
	case opt.MaxQueueDepth < 0:
		h.maxPending = -1
	case opt.MaxQueueDepth == 0:
		h.maxPending = opt.Pool.Workers() * 5 // workers + 4x queue
	default:
		h.maxPending = opt.Pool.Workers() + opt.MaxQueueDepth
	}
	if h.maxPerClient == 0 {
		h.maxPerClient = opt.Pool.Workers() * 2
	}
	if h.retryAfter <= 0 {
		h.retryAfter = time.Second
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/evaluate", h.submit(jobs.KindEvaluate))
	mux.HandleFunc("POST /v1/ladder", h.submit(jobs.KindLadder))
	mux.HandleFunc("POST /v1/sweep", h.submit(jobs.KindSweep))
	mux.HandleFunc("GET /v1/jobs/{id}", h.jobStatus)
	mux.HandleFunc("GET /v1/results/{id}", h.getResult)
	mux.HandleFunc("PUT /v1/results/{id}", h.putResult)
	mux.HandleFunc("POST /v1/gossip", h.gossip)
	mux.HandleFunc("POST /v1/drain", h.drain)
	mux.HandleFunc("GET /v1/cluster", h.clusterStatus)
	mux.HandleFunc("GET /v1/version", h.version)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /metrics", h.metrics)
	return &Handler{inner: h, mux: mux}
}

// submit returns the handler for one job-kind endpoint. The body is a
// jobs.Spec; its kind field may be omitted (the endpoint implies it) but
// must match the endpoint when present. Admission control runs before
// the pool sees the request: overload beyond the queue budget and
// clients beyond their concurrency cap are shed with 429 + Retry-After,
// keeping the pool-facing queue bounded.
func (h *handler) submit(kind jobs.Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Deadline admission runs before anything else: a request whose
		// propagated deadline has already passed gets 504 without
		// touching the admission budget or the pool — the caller is no
		// longer waiting, so any work done for it is pure waste.
		deadline, err := parseDeadline(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if !deadline.IsZero() && !deadline.After(time.Now()) {
			h.deadlineRejected.Add(1)
			writeError(w, http.StatusGatewayTimeout,
				fmt.Errorf("deadline %s already passed at admission", deadline.UTC().Format(time.RFC3339Nano)))
			return
		}

		release, err := h.admit(r)
		if err != nil {
			h.pool.Metrics().JobsShed.Add(1)
			h.setRetryAfter(w)
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		defer release()

		spec, status, err := h.decodeSpec(w, r, kind)
		if err != nil {
			writeError(w, status, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), h.requestTimeout)
		defer cancel()
		if !deadline.IsZero() {
			// Chain the propagated deadline under the server's own cap;
			// context.WithDeadline keeps whichever is earlier, so a
			// multi-hop chain can only shrink the time budget.
			var dcancel context.CancelFunc
			ctx, dcancel = context.WithDeadline(ctx, deadline)
			defer dcancel()
		}

		// Forward-or-serve: with clustering on, a spec owned by a peer
		// is proxied to it (hedged); the loop guard serves already-
		// forwarded requests locally no matter who owns them. While
		// draining, the gossip ring already excludes this node, so the
		// same path sheds fresh work to the next rendezvous rank.
		if h.cluster != nil && r.Header.Get(cluster.ForwardedHeader) == "" {
			if done := h.tryForward(ctx, w, spec, r.URL.Path); done {
				return
			}
		}
		// Drain gate: in-flight jobs (admitted before the drain) finish,
		// and already-finished work is still served from RAM or the CAS
		// store, but nothing new is computed — a request no peer could
		// take is refused with 503 + Retry-After rather than admitted.
		if h.draining.Load() {
			if !h.pool.HasStored(spec.Hash()) {
				h.setRetryAfter(w)
				writeError(w, http.StatusServiceUnavailable,
					errors.New("node is draining; retry against another node"))
				return
			}
		}
		if h.cluster != nil {
			h.cluster.Metrics().Local.Add(1)
			// Before computing under gossip membership, ask the result's
			// replica set for an already-finished copy: a node that just
			// joined (or rejoined after a restart) owns addresses whose
			// results live on the previous owners until handoff converges,
			// and fetching one replica read beats recomputing the job.
			if h.cluster.GossipEnabled() {
				if h.serveReplica(ctx, w, spec.Hash()) {
					return
				}
			}
		}
		res, err := h.pool.Do(ctx, spec)
		if err != nil {
			if errors.Is(err, jobs.ErrBreakerOpen) {
				h.setRetryAfter(w)
			}
			writeError(w, statusFor(err), err)
			return
		}
		if h.cluster != nil && !res.Cached {
			// Freshly computed: push copies to the replica peers off the
			// response path. A cached result was replicated when first
			// computed (or arrived via replication itself). The push is
			// bg-tracked so Quiesce can wait for it at shutdown, and
			// bounded by its own timeout rather than the dead request
			// context.
			h.bg.Add(1)
			go func() {
				defer h.bg.Done()
				rctx, cancel := context.WithTimeout(context.Background(), h.requestTimeout)
				defer cancel()
				h.cluster.Replicate(rctx, res)
			}()
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// parseDeadline reads the propagated X-Gapd-Deadline header; the zero
// time means none was sent.
func parseDeadline(r *http.Request) (time.Time, error) {
	v := r.Header.Get(cluster.DeadlineHeader)
	if v == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339Nano, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("invalid %s header %q: %w", cluster.DeadlineHeader, v, err)
	}
	return t, nil
}

// tryForward routes one decoded spec through the cluster. It reports
// true when it wrote the response (a peer answered, or relayed a
// terminal verdict); false means the caller should compute locally —
// either this node is the acting owner, or every peer was unavailable
// and availability wins over cache affinity (the degraded-mode
// fallback).
func (h *handler) tryForward(ctx context.Context, w http.ResponseWriter, spec jobs.Spec, path string) bool {
	cl := h.cluster
	hash := spec.Hash()
	rt := cl.Route(hash)
	if rt.Local {
		if rt.Fallback {
			cl.Metrics().Fallback.Add(1)
			if h.serveReplica(ctx, w, hash) {
				return true
			}
		}
		return false
	}
	res, err := cl.Forward(ctx, path, spec, rt)
	switch {
	case err == nil:
		cl.Metrics().Forwarded.Add(1)
		if rt.Fallback {
			cl.Metrics().Fallback.Add(1)
		}
		writeJSON(w, http.StatusOK, res)
		return true
	case errors.Is(err, jobs.ErrSpec):
		// The peer ran the job and the spec is bad on any node
		// (evaluation is deterministic): relay the verdict.
		writeError(w, http.StatusBadRequest, err)
		return true
	case ctx.Err() != nil:
		writeError(w, statusFor(ctx.Err()), err)
		return true
	default:
		// Every target unavailable: the next node in rendezvous order
		// is us now. Before re-computing, ask the result's replica peers
		// for an already-finished copy — a partition cannot un-finish
		// work that was replicated before it started. Otherwise compute
		// locally — no warm cache, full availability.
		cl.Metrics().Fallback.Add(1)
		if h.serveReplica(ctx, w, hash) {
			return true
		}
		return false
	}
}

// serveReplica answers a fallback request from a peer-held replica of
// an already-computed result, when one exists. Local tiers are checked
// first — RAM cache and CAS store (pool.Do would hit either anyway —
// skip the network); a fetched replica is stored locally so repeated
// requests during the same partition are served without re-fetching.
func (h *handler) serveReplica(ctx context.Context, w http.ResponseWriter, hash string) bool {
	if h.pool.HasStored(hash) {
		return false // pool.Do will serve the local copy
	}
	res, ok := h.cluster.FetchResult(ctx, hash)
	if !ok {
		return false
	}
	if _, err := h.pool.StoreResult(res); err != nil {
		// An integrity failure here means the replica is not the result
		// it claims to be; do not serve it.
		return false
	}
	out := res.Normalized()
	out.Cached = true
	writeJSON(w, http.StatusOK, out)
	return true
}

// gossip serves POST /v1/gossip: one SWIM membership exchange. The
// sender's records are merged into this node's view and the full view
// is returned, so a single round-trip converges both sides.
func (h *handler) gossip(w http.ResponseWriter, r *http.Request) {
	if h.cluster == nil || !h.cluster.GossipEnabled() {
		writeError(w, http.StatusNotFound, errors.New("gossip membership disabled (static -peers)"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	var msg cluster.GossipMsg
	if err := json.Unmarshal(body, &msg); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid gossip body: %w", err))
		return
	}
	ack, err := h.cluster.HandleGossip(r.Context(), msg)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, ack)
}

// drain serves POST /v1/drain: flip the node into drain mode, announce
// it to the cluster, and migrate held results to their new owners. The
// default is asynchronous (202 immediately, handoff in the background);
// ?wait=1 blocks until the handoff sweep is clean and reports how many
// results migrated — what a rolling-restart orchestrator polls before
// killing the process.
func (h *handler) drain(w http.ResponseWriter, r *http.Request) {
	if h.cluster == nil || !h.cluster.GossipEnabled() {
		writeError(w, http.StatusNotFound, errors.New("drain requires gossip membership"))
		return
	}
	h.draining.Store(true)
	if r.URL.Query().Get("wait") == "1" {
		ctx, cancel := context.WithTimeout(r.Context(), h.requestTimeout)
		defer cancel()
		migrated, err := h.cluster.Drain(ctx)
		if err != nil {
			writeJSON(w, http.StatusAccepted, map[string]any{
				"status": "draining", "migrated": migrated, "error": err.Error(),
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "drained", "migrated": migrated})
		return
	}
	h.bg.Add(1)
	go func() {
		defer h.bg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), h.requestTimeout)
		defer cancel()
		_, _ = h.cluster.Drain(ctx)
	}()
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "draining"})
}

// clusterStatus serves GET /v1/cluster.
func (h *handler) clusterStatus(w http.ResponseWriter, r *http.Request) {
	if h.cluster == nil {
		writeError(w, http.StatusNotFound, errors.New("clustering disabled (no -peers)"))
		return
	}
	writeJSON(w, http.StatusOK, h.cluster.Status())
}

// version serves GET /v1/version.
func (h *handler) version(w http.ResponseWriter, r *http.Request) {
	body := Version().payload()
	if h.cluster != nil {
		body["node"] = h.cluster.Self()
	}
	writeJSON(w, http.StatusOK, body)
}

// admit applies the two admission gates — global pending budget and
// per-client concurrency — and returns the release that undoes both.
func (h *handler) admit(r *http.Request) (release func(), err error) {
	if h.maxPending >= 0 {
		if n := h.pending.Add(1); n > int64(h.maxPending) {
			h.pending.Add(-1)
			return nil, fmt.Errorf("overloaded: %d submissions pending (budget %d)",
				n-1, h.maxPending)
		}
	} else {
		h.pending.Add(1)
	}
	client := clientKey(r)
	if h.maxPerClient >= 0 {
		h.mu.Lock()
		if h.perClient[client] >= h.maxPerClient {
			n := h.perClient[client]
			h.mu.Unlock()
			h.pending.Add(-1)
			return nil, fmt.Errorf("client %s has %d submissions in flight (cap %d)",
				client, n, h.maxPerClient)
		}
		h.perClient[client]++
		h.mu.Unlock()
	}
	return func() {
		h.pending.Add(-1)
		if h.maxPerClient >= 0 {
			h.mu.Lock()
			if h.perClient[client]--; h.perClient[client] <= 0 {
				delete(h.perClient, client)
			}
			h.mu.Unlock()
		}
	}, nil
}

// clientKey identifies the client for per-client caps: the remote host,
// or the whole RemoteAddr when it has no port.
func clientKey(r *http.Request) string {
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// setRetryAfter attaches the shed backoff hint, rounded up to whole
// seconds as the header requires.
func (h *handler) setRetryAfter(w http.ResponseWriter) {
	secs := int((h.retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// decodeSpec parses and validates the request body into a canonical spec
// of the endpoint's kind, returning the HTTP status for a rejection:
// 415 for a non-JSON content type, 413 for a body past the size limit,
// and 400 for everything malformed inside the body (bad JSON, trailing
// data, unknown fields, an unknown or mismatched job kind, spec
// validation failures). Every rejection is written as the JSON error
// envelope {"error": "..."}.
func (h *handler) decodeSpec(w http.ResponseWriter, r *http.Request, kind jobs.Kind) (jobs.Spec, int, error) {
	var spec jobs.Spec
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || mt != "application/json" {
			return spec, http.StatusUnsupportedMediaType,
				fmt.Errorf("content type %q not supported; use application/json", ct)
		}
	}
	body := http.MaxBytesReader(w, r.Body, h.maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return spec, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", maxErr.Limit)
		}
		return spec, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return spec, http.StatusBadRequest, errors.New("request body has trailing data")
	}
	if spec.Kind != "" && !strings.EqualFold(string(spec.Kind), string(kind)) {
		return spec, http.StatusBadRequest,
			fmt.Errorf("spec kind %q does not match endpoint %q", spec.Kind, kind)
	}
	spec.Kind = kind
	c, err := spec.Canon()
	if err != nil {
		return spec, http.StatusBadRequest, err
	}
	return c, http.StatusOK, nil
}

// jobStatus serves GET /v1/jobs/{id}.
func (h *handler) jobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if len(id) != 64 || strings.Trim(id, "0123456789abcdef") != "" {
		writeError(w, http.StatusBadRequest, errors.New("id must be 64 lowercase hex characters"))
		return
	}
	j, ok := h.pool.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %s not found", id))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// getResult serves GET /v1/results/{id}: the internal replication read.
// It resolves through every durable tier — result cache, then the CAS
// store's segment index, then the crash-safe journal (a restarted node
// holds its finished work on disk before the cache rewarms) — and 404s
// otherwise. The response carries the digest header like every JSON
// response, so the fetching peer verifies the bytes end to end.
func (h *handler) getResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validAddr(id) {
		writeError(w, http.StatusBadRequest, errors.New("id must be 64 lowercase hex characters"))
		return
	}
	if res, ok := h.pool.FindStored(id); ok {
		writeJSON(w, http.StatusOK, res.Normalized())
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("result %s not held here", id))
}

// putResult serves PUT /v1/results/{id}: a replica push from a peer.
// The body is verified twice before anything is stored — the raw bytes
// against the digest header, then the decoded result's canonical spec
// hash against its claimed content address — so neither wire corruption
// nor a confused peer can seed the cache with a wrong answer. 201 means
// newly stored, 200 already present, 400 failed verification.
func (h *handler) putResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validAddr(id) {
		writeError(w, http.StatusBadRequest, errors.New("id must be 64 lowercase hex characters"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxReplicaBody))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return
	}
	if d := r.Header.Get(cluster.DigestHeader); d != "" {
		sum := sha256.Sum256(body)
		if hex.EncodeToString(sum[:]) != d {
			writeError(w, http.StatusBadRequest,
				errors.New("replica body does not match its digest"))
			return
		}
	}
	var res jobs.Result
	if err := json.Unmarshal(body, &res); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid replica body: %w", err))
		return
	}
	if res.ID != id {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("replica body is for %.12s, path says %.12s", res.ID, id))
		return
	}
	created, err := h.pool.StoreResult(&res)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if created {
		writeJSON(w, http.StatusCreated, map[string]string{"status": "stored"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "exists"})
}

// maxReplicaBody bounds a pushed replica (same bound the cluster client
// applies to peer responses).
const maxReplicaBody = 8 << 20

// validAddr reports whether s is a well-formed content address.
func validAddr(s string) bool {
	return len(s) == 64 && strings.Trim(s, "0123456789abcdef") == ""
}

// healthz serves GET /healthz. It degrades to 503 when the service can
// accept work but should not be trusted with it: a circuit breaker is
// open (a job kind is failing hard) or the journal is unwritable (jobs
// would run without crash safety).
func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":              "ok",
		"workers":             h.pool.Workers(),
		"queue_depth":         h.pool.QueueDepth(),
		"inflight":            h.pool.InFlight(),
		"abandoned_in_flight": h.pool.AbandonedInFlight(),
		"journal_healthy":     h.pool.Journal().Healthy(),
	}
	status := http.StatusOK
	if open, kinds := h.pool.BreakerOpen(); open {
		body["status"] = "degraded"
		body["breaker_open"] = kinds
		status = http.StatusServiceUnavailable
	}
	if !h.pool.Journal().Healthy() {
		body["status"] = "degraded"
		status = http.StatusServiceUnavailable
	}
	if st := h.pool.Store(); st != nil {
		q := st.Stats().Quarantined
		body["quarantined"] = q
		if q > h.corruptMax && (h.cluster == nil || !h.cluster.ReplicationEnabled()) {
			// Condemned records with no replica set to repair from: every
			// one is data this node claimed to hold durably and now can
			// only recompute. With replicas the read-repair path heals
			// them silently and this stays "ok".
			body["status"] = "degraded"
			body["corrupt_quarantined"] = q
			status = http.StatusServiceUnavailable
		}
	}
	if h.draining.Load() {
		// Draining outranks degraded: load balancers and gossip probes
		// should route around this node while it finishes in-flight work,
		// and the Retry-After hint says when to look again.
		body["status"] = "draining"
		status = http.StatusServiceUnavailable
		h.setRetryAfter(w)
	}
	writeJSON(w, status, body)
}

// metrics serves GET /metrics as expvar-style JSON.
func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	snap := h.pool.Metrics().Snapshot()
	snap["cache_entries"] = h.pool.Cache().Len()
	snap["cache_capacity"] = h.pool.Cache().Cap()
	snap["workers"] = h.pool.Workers()
	snap["queue_depth"] = h.pool.QueueDepth()
	snap["inflight"] = h.pool.InFlight()
	snap["abandoned_in_flight"] = h.pool.AbandonedInFlight()
	snap["pending_requests"] = h.pending.Load()
	snap["deadline_rejected"] = h.deadlineRejected.Load()
	// With a disk tier attached, fold the store's own view (segment
	// layout, byte accounting, compaction history) into the cas section
	// the jobs metrics started: one scrape answers both "is the tier
	// hitting" and "how big is it on disk".
	if st := h.pool.Store(); st != nil {
		if cs, ok := snap["cas"].(map[string]any); ok {
			s := st.Stats()
			cs["segments"] = s.Segments
			cs["records"] = s.Records
			cs["live_bytes"] = s.LiveBytes
			cs["dead_bytes"] = s.DeadBytes
			cs["total_bytes"] = s.TotalBytes
			cs["puts"] = s.Puts
			cs["compactions"] = s.Compactions
			cs["evicted"] = s.Evicted
			cs["corrupt_dropped"] = s.CorruptDropped
			cs["torn_tails"] = s.TornTails
			cs["boot_records"] = s.BootRecords
			cs["segment_bytes"] = s.SegmentBytes
			cs["max_bytes"] = s.MaxBytes
			cs["scrub_verified"] = s.ScrubVerified
			cs["scrub_corrupt"] = s.ScrubCorrupt
			cs["scrub_repaired"] = s.ScrubRepaired
			cs["scrub_passes"] = s.ScrubPasses
			cs["scrub_cursor"] = s.ScrubCursor
			cs["quarantined"] = s.Quarantined
		}
	}
	snap["breakers"] = h.pool.BreakerStates()
	snap["uptime_seconds"] = time.Since(h.start).Seconds()
	// build_info lets a load generator stamp its report with the exact
	// server build it measured (see cmd/gapload): a perf number without
	// the build that produced it is not evidence.
	bi := Version().payload()
	if h.cluster != nil {
		bi["node"] = h.cluster.Self()
		snap["cluster"] = h.cluster.MetricsSnapshot()
	}
	snap["build_info"] = bi
	writeJSON(w, http.StatusOK, snap)
}

// statusFor maps pool errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, jobs.ErrSpec):
		return http.StatusBadRequest
	case errors.Is(err, jobs.ErrPeerUnavailable):
		return http.StatusBadGateway
	case errors.Is(err, jobs.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON writes v as indented JSON with the given status, stamped
// with the X-Gapd-Result-Digest of the exact body bytes. Buffering the
// encode (rather than streaming) is what makes the digest possible: the
// hash must cover the same bytes the peer will read. The output is
// byte-identical to the streaming encoder this replaced (MarshalIndent
// plus the trailing newline Encode appends).
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	body = append(body, '\n')
	sum := sha256.Sum256(body)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(cluster.DigestHeader, hex.EncodeToString(sum[:]))
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
