// Package serve exposes the internal/jobs engine as a small JSON HTTP
// API (the gapd service): submit evaluate / ladder / sweep jobs, inspect
// tracked jobs, and scrape service metrics. Only the standard library is
// used; routing relies on Go 1.22 net/http method-and-path patterns.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/jobs"
)

// Options configures the HTTP handler.
type Options struct {
	// Pool executes the jobs (required).
	Pool *jobs.Pool
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// RequestTimeout caps one request's job wait (default 5 minutes;
	// the pool's own JobTimeout still applies underneath).
	RequestTimeout time.Duration
}

// handler carries the resolved options.
type handler struct {
	pool           *jobs.Pool
	maxBodyBytes   int64
	requestTimeout time.Duration
}

// NewHandler builds the gapd route table:
//
//	POST /v1/evaluate  run one flow evaluation
//	POST /v1/ladder    run the section 3 factor ladder (rungs in parallel)
//	POST /v1/sweep     run a pipeline-depth sweep (depths in parallel)
//	GET  /v1/jobs/{id} job status by canonical spec hash
//	GET  /healthz      liveness
//	GET  /metrics      counters, cache traffic, latency histograms (JSON)
func NewHandler(opt Options) http.Handler {
	if opt.Pool == nil {
		panic("serve: Options.Pool is required")
	}
	h := &handler{
		pool:           opt.Pool,
		maxBodyBytes:   opt.MaxBodyBytes,
		requestTimeout: opt.RequestTimeout,
	}
	if h.maxBodyBytes <= 0 {
		h.maxBodyBytes = 1 << 20
	}
	if h.requestTimeout <= 0 {
		h.requestTimeout = 5 * time.Minute
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/evaluate", h.submit(jobs.KindEvaluate))
	mux.HandleFunc("POST /v1/ladder", h.submit(jobs.KindLadder))
	mux.HandleFunc("POST /v1/sweep", h.submit(jobs.KindSweep))
	mux.HandleFunc("GET /v1/jobs/{id}", h.jobStatus)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /metrics", h.metrics)
	return mux
}

// submit returns the handler for one job-kind endpoint. The body is a
// jobs.Spec; its kind field may be omitted (the endpoint implies it) but
// must match the endpoint when present.
func (h *handler) submit(kind jobs.Kind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		spec, err := h.decodeSpec(w, r, kind)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), h.requestTimeout)
		defer cancel()
		res, err := h.pool.Do(ctx, spec)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	}
}

// decodeSpec parses and validates the request body into a canonical spec
// of the endpoint's kind.
func (h *handler) decodeSpec(w http.ResponseWriter, r *http.Request, kind jobs.Kind) (jobs.Spec, error) {
	var spec jobs.Spec
	body := http.MaxBytesReader(w, r.Body, h.maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return spec, fmt.Errorf("request body exceeds %d bytes", maxErr.Limit)
		}
		return spec, fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return spec, errors.New("request body has trailing data")
	}
	if spec.Kind != "" && !strings.EqualFold(string(spec.Kind), string(kind)) {
		return spec, fmt.Errorf("spec kind %q does not match endpoint %q", spec.Kind, kind)
	}
	spec.Kind = kind
	c, err := spec.Canon()
	if err != nil {
		return spec, err
	}
	return c, nil
}

// jobStatus serves GET /v1/jobs/{id}.
func (h *handler) jobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if len(id) != 64 || strings.Trim(id, "0123456789abcdef") != "" {
		writeError(w, http.StatusBadRequest, errors.New("id must be 64 lowercase hex characters"))
		return
	}
	j, ok := h.pool.Lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %s not found", id))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// healthz serves GET /healthz.
func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"workers": h.pool.Workers(),
	})
}

// metrics serves GET /metrics as expvar-style JSON.
func (h *handler) metrics(w http.ResponseWriter, r *http.Request) {
	snap := h.pool.Metrics().Snapshot()
	snap["cache_entries"] = h.pool.Cache().Len()
	snap["cache_capacity"] = h.pool.Cache().Cap()
	snap["workers"] = h.pool.Workers()
	writeJSON(w, http.StatusOK, snap)
}

// statusFor maps pool errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, jobs.ErrSpec):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already written; a mid-stream encode failure can
	// only truncate the body.
	_ = enc.Encode(v)
}

// writeError writes a JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
