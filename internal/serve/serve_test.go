package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/jobs"
)

func newTestServer(t *testing.T) (*httptest.Server, *jobs.Pool) {
	t.Helper()
	pool := jobs.NewPool(jobs.Options{Workers: 4})
	srv := httptest.NewServer(NewHandler(Options{Pool: pool}))
	t.Cleanup(srv.Close)
	return srv, pool
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestEvaluateEndToEnd is the service acceptance test: POST /v1/evaluate
// must return exactly the clock rate a direct core.Evaluate call
// produces, and the repeated identical request must be served from the
// cache with the hit visible in GET /metrics.
func TestEvaluateEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t)
	const body = `{"design":{"name":"datapath","width":8,"depth":2},"methodology":{"base":"typical-asic"},"seed":3}`

	resp, raw := postJSON(t, srv.URL+"/v1/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var res jobs.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Cached || res.Evaluation == nil {
		t.Fatalf("first response: cached=%v eval=%v", res.Cached, res.Evaluation)
	}

	// Reference: the same evaluation straight through internal/core.
	d, err := jobs.DesignSpec{Name: "datapath", Width: 8, Depth: 2}.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	m, err := jobs.MethSpec{Base: "typical-asic"}.Resolve(3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Evaluate(d, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluation.ShippedMHz != want.ShippedMHz {
		t.Errorf("service shipped %.6f MHz != direct %.6f MHz",
			res.Evaluation.ShippedMHz, want.ShippedMHz)
	}

	// The identical request again: must be a cache hit, same numbers.
	resp2, raw2 := postJSON(t, srv.URL+"/v1/evaluate", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp2.StatusCode, raw2)
	}
	var res2 jobs.Result
	if err := json.Unmarshal(raw2, &res2); err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("repeat request was not served from the cache")
	}
	if res2.Evaluation.ShippedMHz != res.Evaluation.ShippedMHz {
		t.Error("cache served a different evaluation")
	}
	if res2.ID != res.ID {
		t.Errorf("ids differ: %s vs %s", res2.ID, res.ID)
	}

	// The hit must be visible in /metrics.
	var metrics struct {
		Jobs struct {
			Started   int64 `json:"started"`
			Completed int64 `json:"completed"`
		} `json:"jobs"`
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		LatencyMS map[string]json.RawMessage `json:"latency_ms"`
	}
	getJSON(t, srv.URL+"/metrics", &metrics)
	if metrics.Cache.Hits != 1 || metrics.Cache.Misses != 1 {
		t.Errorf("cache hits=%d misses=%d, want 1/1", metrics.Cache.Hits, metrics.Cache.Misses)
	}
	if metrics.Jobs.Completed != 1 {
		t.Errorf("jobs completed = %d, want 1", metrics.Jobs.Completed)
	}
	if _, ok := metrics.LatencyMS["job_evaluate"]; !ok {
		t.Error("latency_ms missing job_evaluate histogram")
	}
	if _, ok := metrics.LatencyMS["stage_timing"]; !ok {
		t.Error("latency_ms missing per-stage histograms")
	}
}

func TestLadderAndSweepEndpoints(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, raw := postJSON(t, srv.URL+"/v1/ladder",
		`{"design":{"name":"datapath","width":8,"depth":2},"seed":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ladder status %d: %s", resp.StatusCode, raw)
	}
	var lad jobs.Result
	if err := json.Unmarshal(raw, &lad); err != nil {
		t.Fatal(err)
	}
	if lad.Kind != jobs.KindLadder || lad.Ladder == nil || len(lad.Ladder.Steps) != 5 {
		t.Fatalf("bad ladder result: %+v", lad)
	}

	resp, raw = postJSON(t, srv.URL+"/v1/sweep",
		`{"design":{"name":"datapath","width":8,"depth":2},"max_stages":4,"workload":"integer","seed":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, raw)
	}
	var sw jobs.Result
	if err := json.Unmarshal(raw, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Kind != jobs.KindSweep || len(sw.Sweep) != 4 {
		t.Fatalf("bad sweep result: %+v", sw)
	}
	if sw.Sweep[0].ThroughputRel != 1 {
		t.Errorf("sweep not normalized to 1 stage: %g", sw.Sweep[0].ThroughputRel)
	}
}

func TestJobStatusEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	_, raw := postJSON(t, srv.URL+"/v1/evaluate",
		`{"design":{"name":"datapath","width":8,"depth":2}}`)
	var res jobs.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}

	var st jobs.JobStatus
	resp := getJSON(t, srv.URL+"/v1/jobs/"+res.ID, &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if st.State != jobs.StateDone || st.ID != res.ID || st.Result == nil {
		t.Errorf("job status = %+v", st)
	}

	// Unknown but well-formed id -> 404.
	missing := strings.Repeat("0", 64)
	var e map[string]string
	if resp := getJSON(t, srv.URL+"/v1/jobs/"+missing, &e); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job status = %d", resp.StatusCode)
	}
	// Malformed id -> 400.
	if resp := getJSON(t, srv.URL+"/v1/jobs/nope", &e); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed id status = %d", resp.StatusCode)
	}
}

func TestRequestValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name, path, body string
		wantStatus       int
	}{
		{"bad json", "/v1/evaluate", `{`, http.StatusBadRequest},
		{"unknown field", "/v1/evaluate", `{"design":{"name":"cla"},"frobnicate":1}`, http.StatusBadRequest},
		{"unknown design", "/v1/evaluate", `{"design":{"name":"teapot"}}`, http.StatusBadRequest},
		{"kind mismatch", "/v1/evaluate", `{"kind":"sweep","design":{"name":"cla"}}`, http.StatusBadRequest},
		{"width too big", "/v1/evaluate", `{"design":{"name":"cla","width":1000}}`, http.StatusBadRequest},
		{"procvar rejected", "/v1/sweep", `{"kind":"procvar","design":{"name":"cla"}}`, http.StatusBadRequest},
		// Spec errors only detectable at resolve time (inside the pool)
		// must still surface as 400, not 500.
		{"domino without domino cells", "/v1/evaluate",
			`{"design":{"name":"cla"},"methodology":{"base":"best-practice","domino_frac":0.5}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, raw := postJSON(t, srv.URL+tc.path, tc.body)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, raw)
		}
		var e map[string]string
		if err := json.Unmarshal(raw, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body %q", tc.name, raw)
		}
	}

	// Method not allowed comes from the ServeMux patterns.
	resp, err := http.Get(srv.URL + "/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/evaluate status = %d", resp.StatusCode)
	}
}

func TestBodySizeLimit(t *testing.T) {
	pool := jobs.NewPool(jobs.Options{Workers: 1})
	srv := httptest.NewServer(NewHandler(Options{Pool: pool, MaxBodyBytes: 128}))
	defer srv.Close()
	big := `{"design":{"name":"datapath"},"workload":"` + strings.Repeat("x", 256) + `"}`
	resp, raw := postJSON(t, srv.URL+"/v1/sweep", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d (%s)", resp.StatusCode, raw)
	}
	var e map[string]string
	if err := json.Unmarshal(raw, &e); err != nil || e["error"] == "" {
		t.Errorf("413 body is not the error envelope: %q", raw)
	}
}

// TestDecodeErrorEnvelopes pins the documented decode-rejection contract:
// each malformed-request class maps to its status — 415 for a non-JSON
// content type, 413 for an oversized body, 400 for anything broken
// inside the body — and every rejection is the JSON {"error": ...}
// envelope.
func TestDecodeErrorEnvelopes(t *testing.T) {
	pool := jobs.NewPool(jobs.Options{Workers: 1})
	srv := httptest.NewServer(NewHandler(Options{Pool: pool, MaxBodyBytes: 256}))
	defer srv.Close()

	valid := `{"design":{"name":"datapath","width":8,"depth":2}}`
	cases := []struct {
		name, path, contentType, body string
		wantStatus                    int
	}{
		{"wrong content type", "/v1/evaluate", "text/plain", valid, http.StatusUnsupportedMediaType},
		{"unparsable content type", "/v1/evaluate", "application/;;", valid, http.StatusUnsupportedMediaType},
		{"json with params accepted", "/v1/evaluate", "application/json; charset=utf-8", valid, http.StatusOK},
		{"no content type accepted", "/v1/evaluate", "", valid, http.StatusOK},
		{"oversized body", "/v1/evaluate", "application/json",
			`{"design":{"name":"datapath"},"workload":"` + strings.Repeat("x", 512) + `"}`,
			http.StatusRequestEntityTooLarge},
		{"malformed json", "/v1/evaluate", "application/json", `{"design":`, http.StatusBadRequest},
		{"trailing data", "/v1/evaluate", "application/json", valid + `{"x":1}`, http.StatusBadRequest},
		{"unknown job kind", "/v1/evaluate", "application/json",
			`{"kind":"transmogrify","design":{"name":"cla"}}`, http.StatusBadRequest},
		{"kind/endpoint mismatch", "/v1/ladder", "application/json",
			`{"kind":"evaluate","design":{"name":"cla"}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(http.MethodPost, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		if tc.contentType != "" {
			req.Header.Set("Content-Type", tc.contentType)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, buf.Bytes())
		}
		if tc.wantStatus != http.StatusOK {
			var e map[string]string
			if err := json.Unmarshal(buf.Bytes(), &e); err != nil || e["error"] == "" {
				t.Errorf("%s: rejection body is not the error envelope: %q", tc.name, buf.Bytes())
			}
		}
	}
}

// TestVersionEndpoint: GET /v1/version reports the build's module, Go
// toolchain, and version; without clustering there is no node field, and
// GET /v1/cluster is a 404.
func TestVersionEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	var v map[string]any
	resp := getJSON(t, srv.URL+"/v1/version", &v)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("version status %d", resp.StatusCode)
	}
	if v["go"] == "" || v["version"] == "" {
		t.Errorf("version payload incomplete: %v", v)
	}
	if _, ok := v["node"]; ok {
		t.Errorf("unclustered version payload has node: %v", v)
	}

	var e map[string]string
	if resp := getJSON(t, srv.URL+"/v1/cluster", &e); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unclustered /v1/cluster status = %d", resp.StatusCode)
	} else if e["error"] == "" {
		t.Error("unclustered /v1/cluster missing error envelope")
	}
}

func TestHealthz(t *testing.T) {
	srv, pool := newTestServer(t)
	var h map[string]any
	resp := getJSON(t, srv.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, h)
	}
	if int(h["workers"].(float64)) != pool.Workers() {
		t.Errorf("workers = %v", h["workers"])
	}
	if h["journal_healthy"] != true {
		t.Errorf("journal_healthy = %v", h["journal_healthy"])
	}
}

// stallServer builds a server whose every job attempt stalls for d
// before completing (a deterministic way to hold workers busy), with the
// given admission limits.
func stallServer(t *testing.T, workers int, d time.Duration, opt Options) *httptest.Server {
	t.Helper()
	in := faultinject.New(faultinject.Plan{
		Seed: 1, StallRate: 1, Latency: d, Match: "pool/",
	})
	opt.Pool = jobs.NewPool(jobs.Options{
		Workers: workers, MaxAttempts: 1, BreakerThreshold: -1, Injector: in,
	})
	srv := httptest.NewServer(NewHandler(opt))
	t.Cleanup(srv.Close)
	return srv
}

// TestOverloadShedsWithRetryAfter is the overload acceptance test: at 4x
// the admission budget, excess submissions are shed with 429 and a
// Retry-After hint, the pool-facing queue stays bounded by the budget,
// and the sheds are counted in /metrics.
func TestOverloadShedsWithRetryAfter(t *testing.T) {
	// Budget: 1 worker + queue depth 2 = 3 pending; offer 12 (4x).
	srv := stallServer(t, 1, 300*time.Millisecond, Options{MaxQueueDepth: 2})

	const offered = 12
	codes := make([]int, offered)
	retryAfter := make([]string, offered)
	var wg sync.WaitGroup
	for i := 0; i < offered; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(
				`{"design":{"name":"datapath","width":8,"depth":2},"seed":%d}`, i)
			resp, err := http.Post(srv.URL+"/v1/evaluate", "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if retryAfter[i] == "" {
				t.Error("429 without Retry-After header")
			}
		default:
			t.Errorf("request %d: status %d", i, code)
		}
	}
	// Every offered request resolved one way or the other (none lost),
	// and the queue stayed bounded: at most budget-many ran.
	if ok+shed != offered {
		t.Errorf("ok %d + shed %d != offered %d", ok, shed, offered)
	}
	if ok > 3 {
		t.Errorf("%d requests admitted, budget is 3", ok)
	}
	if shed < offered-3 {
		t.Errorf("shed %d, want >= %d", shed, offered-3)
	}

	var metrics struct {
		Jobs struct {
			Shed int64 `json:"shed"`
		} `json:"jobs"`
		QueueDepth      int64          `json:"queue_depth"`
		PendingRequests int64          `json:"pending_requests"`
		Breakers        map[string]any `json:"breakers"`
	}
	getJSON(t, srv.URL+"/metrics", &metrics)
	if metrics.Jobs.Shed != int64(shed) {
		t.Errorf("metrics shed = %d, want %d", metrics.Jobs.Shed, shed)
	}
	if metrics.PendingRequests != 0 || metrics.QueueDepth != 0 {
		t.Errorf("admission state leaked: pending=%d queued=%d",
			metrics.PendingRequests, metrics.QueueDepth)
	}
	if metrics.Breakers == nil {
		t.Error("metrics missing breaker states")
	}
}

// TestPerClientCap: one client may not hold more than its cap of
// concurrent submissions even when the global budget has room.
func TestPerClientCap(t *testing.T) {
	srv := stallServer(t, 4, 300*time.Millisecond,
		Options{MaxQueueDepth: 64, MaxPerClient: 1})

	const offered = 4
	codes := make([]int, offered)
	var wg sync.WaitGroup
	for i := 0; i < offered; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(
				`{"design":{"name":"datapath","width":8,"depth":2},"seed":%d}`, i)
			resp, err := http.Post(srv.URL+"/v1/evaluate", "application/json",
				strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for _, code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		}
	}
	// All requests share the test client's address, so exactly one may
	// be in flight at a time; the stall guarantees overlap.
	if ok > 1 || shed < offered-1 {
		t.Errorf("ok=%d shed=%d with per-client cap 1", ok, shed)
	}
}

// TestHealthzDegradesWhenBreakerOpen: a tripped breaker turns /healthz
// into 503 "degraded" naming the open kind, and open-breaker rejections
// carry Retry-After.
func TestHealthzDegradesWhenBreakerOpen(t *testing.T) {
	in := faultinject.New(faultinject.Plan{Seed: 1, ErrorRate: 1, Match: "pool/"})
	pool := jobs.NewPool(jobs.Options{
		Workers: 1, MaxAttempts: 1, BreakerThreshold: 2, Injector: in,
	})
	srv := httptest.NewServer(NewHandler(Options{Pool: pool}))
	defer srv.Close()

	// Two failing jobs trip the evaluate breaker.
	for i := 0; i < 2; i++ {
		body := fmt.Sprintf(
			`{"design":{"name":"datapath","width":8,"depth":2},"seed":%d}`, i)
		resp, _ := postJSON(t, srv.URL+"/v1/evaluate", body)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failing job status = %d", resp.StatusCode)
		}
	}

	var h map[string]any
	resp := getJSON(t, srv.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusServiceUnavailable || h["status"] != "degraded" {
		t.Fatalf("healthz with open breaker = %d %v", resp.StatusCode, h)
	}
	if open, ok := h["breaker_open"].([]any); !ok || len(open) != 1 || open[0] != "evaluate" {
		t.Errorf("breaker_open = %v", h["breaker_open"])
	}

	// Submissions of the broken kind short-circuit with 503 + Retry-After.
	resp2, err := http.Post(srv.URL+"/v1/evaluate", "application/json",
		strings.NewReader(`{"design":{"name":"datapath","width":8,"depth":2},"seed":99}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("open-breaker submit = %d", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("open-breaker rejection missing Retry-After")
	}
}

// TestHealthzDegradesWhenJournalUnwritable: losing journal durability
// flips /healthz to 503 while jobs keep being served.
func TestHealthzDegradesWhenJournalUnwritable(t *testing.T) {
	j, err := jobs.OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := jobs.NewPool(jobs.Options{Workers: 1, Journal: j})
	srv := httptest.NewServer(NewHandler(Options{Pool: pool}))
	defer srv.Close()
	j.Close() // durability lost out from under the service

	resp, raw := postJSON(t, srv.URL+"/v1/evaluate",
		`{"design":{"name":"datapath","width":8,"depth":2}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job failed on journal loss: %d %s", resp.StatusCode, raw)
	}

	var h map[string]any
	hresp := getJSON(t, srv.URL+"/healthz", &h)
	if hresp.StatusCode != http.StatusServiceUnavailable || h["status"] != "degraded" {
		t.Errorf("healthz = %d %v", hresp.StatusCode, h)
	}
	if h["journal_healthy"] != false {
		t.Errorf("journal_healthy = %v", h["journal_healthy"])
	}

	var metrics struct {
		Journal struct {
			Errors int64 `json:"errors"`
		} `json:"journal"`
	}
	getJSON(t, srv.URL+"/metrics", &metrics)
	if metrics.Journal.Errors == 0 {
		t.Error("journal errors not surfaced in /metrics")
	}
}

// TestMetricsExposesRobustnessCounters: the retry/shed/breaker/journal
// counter families are all present in /metrics even at zero.
func TestMetricsExposesRobustnessCounters(t *testing.T) {
	srv, _ := newTestServer(t)
	var snap map[string]any
	getJSON(t, srv.URL+"/metrics", &snap)
	jobsBlock, ok := snap["jobs"].(map[string]any)
	if !ok {
		t.Fatalf("metrics jobs block: %v", snap["jobs"])
	}
	for _, key := range []string{"retried", "shed", "abandoned"} {
		if _, ok := jobsBlock[key]; !ok {
			t.Errorf("jobs.%s missing from /metrics", key)
		}
	}
	breaker, ok := snap["breaker"].(map[string]any)
	if !ok {
		t.Fatalf("metrics breaker block: %v", snap["breaker"])
	}
	for _, key := range []string{"trips", "short_circuits"} {
		if _, ok := breaker[key]; !ok {
			t.Errorf("breaker.%s missing from /metrics", key)
		}
	}
	journal, ok := snap["journal"].(map[string]any)
	if !ok {
		t.Fatalf("metrics journal block: %v", snap["journal"])
	}
	for _, key := range []string{"accepted", "completed", "failed", "errors",
		"replayed_done", "replayed_pending", "replays_exhausted"} {
		if _, ok := journal[key]; !ok {
			t.Errorf("journal.%s missing from /metrics", key)
		}
	}
	for _, key := range []string{"queue_depth", "inflight", "abandoned_in_flight",
		"pending_requests", "breakers"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("%s missing from /metrics", key)
		}
	}
}

// TestMetricsBuildInfo: /metrics must carry uptime_seconds and
// build_info so a load generator can stamp its report with the exact
// server incarnation it measured.
func TestMetricsBuildInfo(t *testing.T) {
	srv, _ := newTestServer(t)
	var snap map[string]any
	getJSON(t, srv.URL+"/metrics", &snap)
	up, ok := snap["uptime_seconds"].(float64)
	if !ok || up < 0 {
		t.Fatalf("uptime_seconds = %v, want non-negative float", snap["uptime_seconds"])
	}
	bi, ok := snap["build_info"].(map[string]any)
	if !ok {
		t.Fatalf("build_info block: %v", snap["build_info"])
	}
	for _, key := range []string{"module", "version", "go"} {
		if v, ok := bi[key].(string); !ok || v == "" {
			t.Errorf("build_info.%s = %v, want non-empty string", key, bi[key])
		}
	}
	// Uptime must advance between scrapes: it identifies an incarnation.
	time.Sleep(5 * time.Millisecond)
	var snap2 map[string]any
	getJSON(t, srv.URL+"/metrics", &snap2)
	if up2 := snap2["uptime_seconds"].(float64); up2 <= up {
		t.Errorf("uptime did not advance: %v then %v", up, up2)
	}
}

// TestHealthzDegradesOnUnrepairableQuarantine: a record the scrubber
// condemned, on a node with no replica set to repair from, flips
// /healthz to 503 (every such record is a recompute waiting to happen);
// a handler with a tolerant CorruptThreshold stays ok. Also pins the
// scrub counters and store geometry the /metrics cas block exposes.
func TestHealthzDegradesOnUnrepairableQuarantine(t *testing.T) {
	dir := t.TempDir()
	st, err := cas.Open(cas.Options{Dir: dir, ScrubSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	body := []byte(`{"payload":"storage integrity probe"}`)
	sum := sha256.Sum256(body)
	addr := hex.EncodeToString(sum[:])
	if err := st.Put(addr, body); err != nil {
		t.Fatal(err)
	}

	pool := jobs.NewPool(jobs.Options{Workers: 1, CacheEntries: -1, Store: st})
	srv := httptest.NewServer(NewHandler(Options{Pool: pool}))
	defer srv.Close()

	var h map[string]any
	if resp := getJSON(t, srv.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before damage = %d %v", resp.StatusCode, h)
	}
	if int(h["quarantined"].(float64)) != 0 {
		t.Errorf("quarantined = %v before damage", h["quarantined"])
	}

	// Rot one body byte on disk (the record header is 76 bytes) and let
	// the scrubber find and condemn it.
	segs, err := filepath.Glob(filepath.Join(dir, "*.cas"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segment files = %v (%v)", segs, err)
	}
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, 80); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x40
	if _, err := f.WriteAt(buf, 80); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for i := 0; i < 100; i++ {
		if pr := st.ScrubStep(16); pr.PassComplete {
			break
		}
	}
	if got := st.Stats().Quarantined; got != 1 {
		t.Fatalf("quarantined = %d after scrub, want 1", got)
	}

	hresp := getJSON(t, srv.URL+"/healthz", &h)
	if hresp.StatusCode != http.StatusServiceUnavailable || h["status"] != "degraded" {
		t.Errorf("healthz with unrepairable quarantine = %d %v", hresp.StatusCode, h)
	}
	if int(h["corrupt_quarantined"].(float64)) != 1 {
		t.Errorf("corrupt_quarantined = %v, want 1", h["corrupt_quarantined"])
	}

	var m struct {
		CAS map[string]any `json:"cas"`
	}
	getJSON(t, srv.URL+"/metrics", &m)
	for _, k := range []string{"scrub_verified", "scrub_corrupt", "scrub_repaired",
		"scrub_passes", "scrub_cursor", "quarantined", "segment_bytes", "max_bytes"} {
		if _, ok := m.CAS[k]; !ok {
			t.Errorf("metrics cas block missing %s", k)
		}
	}
	if got, ok := m.CAS["scrub_corrupt"].(float64); !ok || got != 1 {
		t.Errorf("metrics cas.scrub_corrupt = %v, want 1", m.CAS["scrub_corrupt"])
	}

	// The same store behind a threshold of 1 is tolerated.
	srv2 := httptest.NewServer(NewHandler(Options{Pool: pool, CorruptThreshold: 1}))
	defer srv2.Close()
	if resp := getJSON(t, srv2.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz within threshold = %d %v", resp.StatusCode, h)
	}
}

// TestQuiesceWaitsForReplication pins Handler.Quiesce's contract — the
// shutdown path the goroutinelifecycle gate demands for the off-path
// replica push: after a fresh compute's response returns, Quiesce must
// block until the background push to the replica peer has finished,
// not abandon it mid-flight.
func TestQuiesceWaitsForReplication(t *testing.T) {
	var pushStarted, pushFinished atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut && strings.HasPrefix(r.URL.Path, "/v1/results/") {
			pushStarted.Store(true)
			// Long enough that a Quiesce that does not actually wait
			// observes the push still unfinished.
			time.Sleep(150 * time.Millisecond)
			pushFinished.Store(true)
			w.WriteHeader(http.StatusCreated)
			return
		}
		http.NotFound(w, r)
	}))
	t.Cleanup(peer.Close)

	pool := jobs.NewPool(jobs.Options{Workers: 2})
	clu, err := cluster.New(cluster.Options{
		SelfID:         "self",
		Peers:          []cluster.Peer{{ID: "self", URL: "http://self.invalid"}, {ID: "peer", URL: peer.URL}},
		Replicas:       2,
		HedgeAfter:     -1,
		RequestTimeout: 5 * time.Second,
		Results:        pool.Cache(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(clu.Close)
	h := NewHandler(Options{Pool: pool, Cluster: clu})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	body := `{"design":{"name":"datapath","width":8,"depth":2},"methodology":{"base":"typical-asic"},"seed":9}`
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/evaluate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.ForwardedHeader, "test-origin") // pin the compute local
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d", resp.StatusCode)
	}

	// The push must actually start, or the Quiesce assertion below
	// passes vacuously.
	deadline := time.Now().Add(5 * time.Second)
	for !pushStarted.Load() {
		if time.Now().After(deadline) {
			t.Fatal("replication push never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.Quiesce()
	if !pushFinished.Load() {
		t.Fatal("Quiesce returned while the replica push was still in flight")
	}
}
