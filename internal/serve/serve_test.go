package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/jobs"
)

func newTestServer(t *testing.T) (*httptest.Server, *jobs.Pool) {
	t.Helper()
	pool := jobs.NewPool(jobs.Options{Workers: 4})
	srv := httptest.NewServer(NewHandler(Options{Pool: pool}))
	t.Cleanup(srv.Close)
	return srv, pool
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestEvaluateEndToEnd is the service acceptance test: POST /v1/evaluate
// must return exactly the clock rate a direct core.Evaluate call
// produces, and the repeated identical request must be served from the
// cache with the hit visible in GET /metrics.
func TestEvaluateEndToEnd(t *testing.T) {
	srv, _ := newTestServer(t)
	const body = `{"design":{"name":"datapath","width":8,"depth":2},"methodology":{"base":"typical-asic"},"seed":3}`

	resp, raw := postJSON(t, srv.URL+"/v1/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var res jobs.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Cached || res.Evaluation == nil {
		t.Fatalf("first response: cached=%v eval=%v", res.Cached, res.Evaluation)
	}

	// Reference: the same evaluation straight through internal/core.
	d, err := jobs.DesignSpec{Name: "datapath", Width: 8, Depth: 2}.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	m, err := jobs.MethSpec{Base: "typical-asic"}.Resolve(3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Evaluate(d, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluation.ShippedMHz != want.ShippedMHz {
		t.Errorf("service shipped %.6f MHz != direct %.6f MHz",
			res.Evaluation.ShippedMHz, want.ShippedMHz)
	}

	// The identical request again: must be a cache hit, same numbers.
	resp2, raw2 := postJSON(t, srv.URL+"/v1/evaluate", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp2.StatusCode, raw2)
	}
	var res2 jobs.Result
	if err := json.Unmarshal(raw2, &res2); err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("repeat request was not served from the cache")
	}
	if res2.Evaluation.ShippedMHz != res.Evaluation.ShippedMHz {
		t.Error("cache served a different evaluation")
	}
	if res2.ID != res.ID {
		t.Errorf("ids differ: %s vs %s", res2.ID, res.ID)
	}

	// The hit must be visible in /metrics.
	var metrics struct {
		Jobs struct {
			Started   int64 `json:"started"`
			Completed int64 `json:"completed"`
		} `json:"jobs"`
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		LatencyMS map[string]json.RawMessage `json:"latency_ms"`
	}
	getJSON(t, srv.URL+"/metrics", &metrics)
	if metrics.Cache.Hits != 1 || metrics.Cache.Misses != 1 {
		t.Errorf("cache hits=%d misses=%d, want 1/1", metrics.Cache.Hits, metrics.Cache.Misses)
	}
	if metrics.Jobs.Completed != 1 {
		t.Errorf("jobs completed = %d, want 1", metrics.Jobs.Completed)
	}
	if _, ok := metrics.LatencyMS["job_evaluate"]; !ok {
		t.Error("latency_ms missing job_evaluate histogram")
	}
	if _, ok := metrics.LatencyMS["stage_timing"]; !ok {
		t.Error("latency_ms missing per-stage histograms")
	}
}

func TestLadderAndSweepEndpoints(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, raw := postJSON(t, srv.URL+"/v1/ladder",
		`{"design":{"name":"datapath","width":8,"depth":2},"seed":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ladder status %d: %s", resp.StatusCode, raw)
	}
	var lad jobs.Result
	if err := json.Unmarshal(raw, &lad); err != nil {
		t.Fatal(err)
	}
	if lad.Kind != jobs.KindLadder || lad.Ladder == nil || len(lad.Ladder.Steps) != 5 {
		t.Fatalf("bad ladder result: %+v", lad)
	}

	resp, raw = postJSON(t, srv.URL+"/v1/sweep",
		`{"design":{"name":"datapath","width":8,"depth":2},"max_stages":4,"workload":"integer","seed":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, raw)
	}
	var sw jobs.Result
	if err := json.Unmarshal(raw, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Kind != jobs.KindSweep || len(sw.Sweep) != 4 {
		t.Fatalf("bad sweep result: %+v", sw)
	}
	if sw.Sweep[0].ThroughputRel != 1 {
		t.Errorf("sweep not normalized to 1 stage: %g", sw.Sweep[0].ThroughputRel)
	}
}

func TestJobStatusEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	_, raw := postJSON(t, srv.URL+"/v1/evaluate",
		`{"design":{"name":"datapath","width":8,"depth":2}}`)
	var res jobs.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}

	var st jobs.JobStatus
	resp := getJSON(t, srv.URL+"/v1/jobs/"+res.ID, &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if st.State != jobs.StateDone || st.ID != res.ID || st.Result == nil {
		t.Errorf("job status = %+v", st)
	}

	// Unknown but well-formed id -> 404.
	missing := strings.Repeat("0", 64)
	var e map[string]string
	if resp := getJSON(t, srv.URL+"/v1/jobs/"+missing, &e); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job status = %d", resp.StatusCode)
	}
	// Malformed id -> 400.
	if resp := getJSON(t, srv.URL+"/v1/jobs/nope", &e); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed id status = %d", resp.StatusCode)
	}
}

func TestRequestValidation(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name, path, body string
		wantStatus       int
	}{
		{"bad json", "/v1/evaluate", `{`, http.StatusBadRequest},
		{"unknown field", "/v1/evaluate", `{"design":{"name":"cla"},"frobnicate":1}`, http.StatusBadRequest},
		{"unknown design", "/v1/evaluate", `{"design":{"name":"teapot"}}`, http.StatusBadRequest},
		{"kind mismatch", "/v1/evaluate", `{"kind":"sweep","design":{"name":"cla"}}`, http.StatusBadRequest},
		{"width too big", "/v1/evaluate", `{"design":{"name":"cla","width":1000}}`, http.StatusBadRequest},
		{"procvar rejected", "/v1/sweep", `{"kind":"procvar","design":{"name":"cla"}}`, http.StatusBadRequest},
		// Spec errors only detectable at resolve time (inside the pool)
		// must still surface as 400, not 500.
		{"domino without domino cells", "/v1/evaluate",
			`{"design":{"name":"cla"},"methodology":{"base":"best-practice","domino_frac":0.5}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, raw := postJSON(t, srv.URL+tc.path, tc.body)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.wantStatus, raw)
		}
		var e map[string]string
		if err := json.Unmarshal(raw, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body %q", tc.name, raw)
		}
	}

	// Method not allowed comes from the ServeMux patterns.
	resp, err := http.Get(srv.URL + "/v1/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/evaluate status = %d", resp.StatusCode)
	}
}

func TestBodySizeLimit(t *testing.T) {
	pool := jobs.NewPool(jobs.Options{Workers: 1})
	srv := httptest.NewServer(NewHandler(Options{Pool: pool, MaxBodyBytes: 128}))
	defer srv.Close()
	big := `{"design":{"name":"datapath"},"workload":"` + strings.Repeat("x", 256) + `"}`
	resp, raw := postJSON(t, srv.URL+"/v1/sweep", big)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized body status = %d (%s)", resp.StatusCode, raw)
	}
}

func TestHealthz(t *testing.T) {
	srv, pool := newTestServer(t)
	var h map[string]any
	resp := getJSON(t, srv.URL+"/healthz", &h)
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Errorf("healthz = %d %v", resp.StatusCode, h)
	}
	if int(h["workers"].(float64)) != pool.Workers() {
		t.Errorf("workers = %v", h["workers"])
	}
}
