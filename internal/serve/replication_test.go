package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
)

// evalBody is a tiny valid evaluate spec shared by these tests.
const evalBody = `{"design":{"name":"datapath","width":8,"depth":2},"methodology":{"base":"typical-asic"},"seed":21}`

// TestDeadlineExpiredRejectedAtAdmission: a request whose propagated
// deadline already passed must be refused with 504 before admission —
// no job starts, no shed counter moves (it never competed for the
// budget), and the refusal is counted in deadline_rejected.
func TestDeadlineExpiredRejectedAtAdmission(t *testing.T) {
	srv, pool := newTestServer(t)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/evaluate", strings.NewReader(evalBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.DeadlineHeader, time.Now().Add(-time.Second).UTC().Format(time.RFC3339Nano))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e["error"], "deadline") {
		t.Fatalf("error envelope %v (%v), want a deadline message", e, err)
	}
	if got := pool.Metrics().JobsStarted.Load(); got != 0 {
		t.Errorf("JobsStarted = %d, want 0 (expired request must not reach the pool)", got)
	}
	if got := pool.Metrics().JobsShed.Load(); got != 0 {
		t.Errorf("JobsShed = %d, want 0 (deadline rejection is not shedding)", got)
	}
	var m map[string]any
	getJSON(t, srv.URL+"/metrics", &m)
	if got := m["deadline_rejected"]; got != float64(1) {
		t.Errorf("deadline_rejected = %v, want 1", got)
	}
}

// TestDeadlineHeaderMalformed: an unparsable deadline is a client error,
// not a silent pass-through.
func TestDeadlineHeaderMalformed(t *testing.T) {
	srv, _ := newTestServer(t)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/evaluate", strings.NewReader(evalBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.DeadlineHeader, "half past never")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestResponseDigestHeader: every JSON response carries the SHA-256 of
// its exact body bytes — the integrity contract peers verify.
func TestResponseDigestHeader(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, body := postJSON(t, srv.URL+"/v1/evaluate", evalBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	sum := sha256.Sum256(body)
	if got, want := resp.Header.Get(cluster.DigestHeader), hex.EncodeToString(sum[:]); got != want {
		t.Errorf("digest header %q does not hash the body (%q)", got, want)
	}
}

// TestResultsEndpointRoundTrip: a result computed on one node can be
// read back over GET /v1/results/{id} (digest-stamped) and pushed to a
// second node over PUT, which verifies, stores, and dedups it.
func TestResultsEndpointRoundTrip(t *testing.T) {
	srvA, _ := newTestServer(t)
	poolB := jobs.NewPool(jobs.Options{Workers: 2})
	srvB := httptest.NewServer(NewHandler(Options{Pool: poolB}))
	t.Cleanup(srvB.Close)

	_, body := postJSON(t, srvA.URL+"/v1/evaluate", evalBody)
	var res jobs.Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}

	// GET the stored result from A, digest verified.
	resp, err := http.Get(srvA.URL + "/v1/results/" + res.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stored result: status %d", resp.StatusCode)
	}
	sum := sha256.Sum256(raw)
	if got := resp.Header.Get(cluster.DigestHeader); got != hex.EncodeToString(sum[:]) {
		t.Errorf("results digest header %q does not hash the body", got)
	}

	// Unknown-but-valid address 404s; malformed address 400s.
	resp, err = http.Get(srvA.URL + "/v1/results/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown result: status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(srvA.URL + "/v1/results/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET bad address: status %d, want 400", resp.StatusCode)
	}

	// PUT the copy to B: first push stores (201), second dedups (200).
	put := func(id string, payload []byte, digest string) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, srvB.URL+"/v1/results/"+id, bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if digest != "" {
			req.Header.Set(cluster.DigestHeader, digest)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := put(res.ID, raw, hex.EncodeToString(sum[:])); got != http.StatusCreated {
		t.Fatalf("first PUT: status %d, want 201", got)
	}
	if got := put(res.ID, raw, hex.EncodeToString(sum[:])); got != http.StatusOK {
		t.Fatalf("second PUT: status %d, want 200 (dedup)", got)
	}
	if got := poolB.Metrics().ReplicasStored.Load(); got != 1 {
		t.Errorf("ReplicasStored = %d, want 1", got)
	}
	if _, ok := poolB.Cache().Get(res.ID); !ok {
		t.Error("pushed replica not in B's cache")
	}

	// A push whose bytes fail their digest is refused before decoding.
	if got := put(res.ID, raw, hex.EncodeToString(bytes.Repeat([]byte{1}, 32))); got != http.StatusBadRequest {
		t.Errorf("corrupt-digest PUT: status %d, want 400", got)
	}
	// A push whose payload is not the result it claims to be is refused
	// by the content-address check.
	tampered := bytes.Replace(raw, []byte(`"seed": 21`), []byte(`"seed": 22`), 1)
	if !bytes.Equal(tampered, raw) {
		tsum := sha256.Sum256(tampered)
		if got := put(res.ID, tampered, hex.EncodeToString(tsum[:])); got != http.StatusBadRequest {
			t.Errorf("tampered PUT: status %d, want 400", got)
		}
	}
	// A push under a path that contradicts the body's ID is refused.
	if got := put(strings.Repeat("a", 64), raw, hex.EncodeToString(sum[:])); got != http.StatusBadRequest {
		t.Errorf("mismatched-path PUT: status %d, want 400", got)
	}
}
