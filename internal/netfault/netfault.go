// Package netfault is a deterministic, seedable network fault layer
// for the gapd cluster. Where internal/faultinject chaos-tests the
// compute path (pool and flow-stage seams), netfault chaos-tests the
// wire: it wraps the cluster peer client's http.RoundTripper and
// injects partitions (full and asymmetric), added latency, connection
// resets, truncated bodies, and bit-corrupted responses.
//
// Determinism follows the faultinject model: a fault decision is a pure
// function of (plan seed, site key), where the site key names a
// directed (src, dst, attempt) triple — "a->b/a3" is the fourth request
// node a ever sent node b. Two runs of the same chaos test with the
// same seed draw the same faults on the same links regardless of
// goroutine interleaving. Because the site key is directional, a
// drawn partition on a->b says nothing about b->a: asymmetric
// partitions fall out of the keying for free.
//
// On top of the rate-drawn faults, an explicit directed partition table
// (Partition/PartitionBoth/Isolate/Heal/HealAll) lets scripted chaos
// scenarios cut and heal specific links mid-test, which is how the
// cluster suite partitions an owner mid-run and later heals it for
// anti-entropy repair.
package netfault

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks every transport error the layer fabricates. The
// cluster client maps any transport failure onto jobs.ErrPeerUnavailable,
// so injected network faults exercise exactly the retry/fallback path a
// real flaky network would.
var ErrInjected = errors.New("netfault: injected network fault")

// Kind enumerates the faults the layer can inject on one request.
type Kind int

// Fault kinds, in drawing order (see Decide).
const (
	// None: the request proceeds untouched.
	None Kind = iota
	// Partition: the request fails before reaching the wire, as if the
	// link were down. The server never sees it.
	Partition
	// Latency: the request is delayed by Plan.Latency before being
	// sent, honouring context cancellation (a slow link, not a dead one).
	Latency
	// Reset: the request reaches the server and is fully processed, but
	// the response is torn down as if the connection reset mid-reply —
	// the work happened, the answer is lost.
	Reset
	// Truncate: the response body is cut in half on the way back.
	Truncate
	// Corrupt: one deterministic byte of the response body is bit-flipped
	// on the way back. Without digest verification this would be a wrong
	// answer served as a right one; with it, it converts to a retry.
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Partition:
		return "partition"
	case Latency:
		return "latency"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("netfault.Kind(%d)", int(k))
}

// Plan fixes the layer's behaviour. Rates are probabilities in [0,1],
// drawn independently per site key in the declared order; they are
// effectively cumulative, so their sum should stay <= 1.
type Plan struct {
	// Seed drives every fault decision. The same seed and site keys
	// reproduce the same fault schedule.
	Seed int64

	PartitionRate float64
	LatencyRate   float64
	ResetRate     float64
	TruncateRate  float64
	CorruptRate   float64

	// Latency is the injected delay for Latency faults (default 10ms).
	Latency time.Duration

	// Match restricts injection to site keys containing the substring
	// (e.g. "->b/" corrupts everything sent to node b; "a->" everything
	// node a sends). Empty matches every site. Explicit partitions
	// ignore Match.
	Match string
}

// Injector draws network faults deterministically from a Plan, tracks
// the explicit partition table, and counts what it injected. Safe for
// concurrent use.
type Injector struct {
	plan Plan

	mu       sync.Mutex
	attempts map[string]int  // per directed link: requests sent so far
	blocked  map[string]bool // directed links cut by the partition table

	Partitions  atomic.Int64
	Latencies   atomic.Int64
	Resets      atomic.Int64
	Truncations atomic.Int64
	Corruptions atomic.Int64
}

// New builds an injector for the plan.
func New(plan Plan) *Injector {
	if plan.Latency <= 0 {
		plan.Latency = 10 * time.Millisecond
	}
	return &Injector{
		plan:     plan,
		attempts: make(map[string]int),
		blocked:  make(map[string]bool),
	}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// link names the directed src->dst edge.
func link(src, dst string) string { return src + "->" + dst }

// Partition cuts the directed link src->dst: requests from src to dst
// fail as if the link were down; dst->src is untouched (an asymmetric
// partition).
func (in *Injector) Partition(src, dst string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.blocked[link(src, dst)] = true
}

// PartitionBoth cuts both directions between a and b (a full partition
// of the pair).
func (in *Injector) PartitionBoth(a, b string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.blocked[link(a, b)] = true
	in.blocked[link(b, a)] = true
}

// Isolate cuts both directions between id and every peer in peers —
// the "owner partitioned away from the cluster" scenario.
func (in *Injector) Isolate(id string, peers ...string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, p := range peers {
		if p == id {
			continue
		}
		in.blocked[link(id, p)] = true
		in.blocked[link(p, id)] = true
	}
}

// Heal restores both directions between a and b.
func (in *Injector) Heal(a, b string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.blocked, link(a, b))
	delete(in.blocked, link(b, a))
}

// HealAll clears the explicit partition table (rate-drawn faults keep
// firing).
func (in *Injector) HealAll() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.blocked = make(map[string]bool)
}

// Blocked reports whether the directed link src->dst is explicitly cut.
func (in *Injector) Blocked(src, dst string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.blocked[link(src, dst)]
}

// nextAttempt returns the 0-based sequence number of the next request
// on the directed link.
func (in *Injector) nextAttempt(src, dst string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.attempts[link(src, dst)]
	in.attempts[link(src, dst)] = n + 1
	return n
}

// Decide maps a site key ("src->dst/aN") to the fault it draws. Pure:
// the same key always draws the same fault under the same plan.
func (in *Injector) Decide(key string) Kind {
	if in == nil {
		return None
	}
	if in.plan.Match != "" && !strings.Contains(key, in.plan.Match) {
		return None
	}
	u := in.uniform(key)
	for _, step := range []struct {
		rate float64
		kind Kind
	}{
		{in.plan.PartitionRate, Partition},
		{in.plan.LatencyRate, Latency},
		{in.plan.ResetRate, Reset},
		{in.plan.TruncateRate, Truncate},
		{in.plan.CorruptRate, Corrupt},
	} {
		if u < step.rate {
			return step.kind
		}
		u -= step.rate
	}
	return None
}

// uniform hashes (seed, key) into [0,1) — same construction as
// internal/faultinject: FNV-1a over the seed bytes and key, then a
// splitmix64 finalizer before taking 53 bits.
func (in *Injector) uniform(key string) float64 {
	h := fnv.New64a()
	var seed [8]byte
	s := uint64(in.plan.Seed)
	for i := range seed {
		seed[i] = byte(s >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Resolver maps a request's URL host ("127.0.0.1:41234") to the peer id
// it belongs to, or "" for hosts outside the cluster (passed through
// untouched).
type Resolver func(host string) string

// HostResolver builds a Resolver from a host->id table.
func HostResolver(byHost map[string]string) Resolver {
	return func(host string) string { return byHost[host] }
}

// Transport returns an http.RoundTripper that applies the injector's
// faults to every request src sends to a resolvable peer. next is the
// real transport underneath (nil selects http.DefaultTransport).
func (in *Injector) Transport(src string, resolve Resolver, next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &transport{src: src, resolve: resolve, next: next, in: in}
}

type transport struct {
	src     string
	resolve Resolver
	next    http.RoundTripper
	in      *Injector
}

// RoundTrip applies the link's fault, if any, around the real request.
func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	dst := ""
	if t.resolve != nil {
		dst = t.resolve(req.URL.Host)
	}
	if dst == "" {
		// Not a cluster peer — the fault layer only shapes peer traffic.
		return t.next.RoundTrip(req)
	}
	in := t.in
	if in.Blocked(t.src, dst) {
		in.Partitions.Add(1)
		return nil, fmt.Errorf("%w: partition %s (explicit)", ErrInjected, link(t.src, dst))
	}
	key := fmt.Sprintf("%s/a%d", link(t.src, dst), in.nextAttempt(t.src, dst))
	switch in.Decide(key) {
	case Partition:
		in.Partitions.Add(1)
		return nil, fmt.Errorf("%w: partition at %s", ErrInjected, key)
	case Latency:
		in.Latencies.Add(1)
		timer := time.NewTimer(in.plan.Latency)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.next.RoundTrip(req)
	case Reset:
		// The request reaches the server and runs; the reply is lost —
		// the wire signature of a connection reset between compute and
		// response, which is what replication must survive.
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		in.Resets.Add(1)
		return nil, fmt.Errorf("%w: connection reset at %s", ErrInjected, key)
	case Truncate:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		in.Truncations.Add(1)
		return replaceBody(resp, body[:len(body)/2]), nil
	case Corrupt:
		resp, err := t.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(body) > 0 {
			// Flip one deterministic bit: offset and mask drawn from the
			// site key, so the corruption itself reproduces exactly.
			h := fnv.New64a()
			h.Write([]byte(key))
			x := h.Sum64()
			body[x%uint64(len(body))] ^= 1 << ((x >> 32) % 8)
		}
		in.Corruptions.Add(1)
		return replaceBody(resp, body), nil
	}
	return t.next.RoundTrip(req)
}

// replaceBody swaps resp's body for b, fixing the length metadata so
// the client reads exactly the shaped bytes.
func replaceBody(resp *http.Response, b []byte) *http.Response {
	resp.Body = io.NopCloser(bytes.NewReader(b))
	resp.ContentLength = int64(len(b))
	resp.Header.Del("Content-Length")
	resp.TransferEncoding = nil
	return resp
}

// Counters snapshots the injected-fault counts, keyed for logs and
// assertions.
func (in *Injector) Counters() map[string]int64 {
	return map[string]int64{
		"partitions":  in.Partitions.Load(),
		"latencies":   in.Latencies.Load(),
		"resets":      in.Resets.Load(),
		"truncations": in.Truncations.Load(),
		"corruptions": in.Corruptions.Load(),
	}
}

// ParsePlan parses the GAPD_NETFAULT environment hook format:
// comma-separated key=value pairs, e.g.
//
//	seed=7,partition=0.05,latency-rate=0.1,latency=25ms,reset=0.02,truncate=0.01,corrupt=0.01,match=->b/
//
// Unknown keys are an error so typos fail loudly instead of silently
// running a clean-network "chaos" test.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return p, fmt.Errorf("netfault: bad plan term %q (want key=value)", part)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "partition":
			p.PartitionRate, err = strconv.ParseFloat(v, 64)
		case "latency-rate":
			p.LatencyRate, err = strconv.ParseFloat(v, 64)
		case "reset":
			p.ResetRate, err = strconv.ParseFloat(v, 64)
		case "truncate":
			p.TruncateRate, err = strconv.ParseFloat(v, 64)
		case "corrupt":
			p.CorruptRate, err = strconv.ParseFloat(v, 64)
		case "latency":
			p.Latency, err = time.ParseDuration(v)
		case "match":
			p.Match = v
		default:
			return p, fmt.Errorf("netfault: unknown plan key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("netfault: bad plan value %q for %q: %v", v, k, err)
		}
	}
	return p, nil
}
