package netfault

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// TestDecideDeterministic: the fault drawn at a site is a pure function
// of (seed, key) — the reproducibility property the chaos suite rests on.
func TestDecideDeterministic(t *testing.T) {
	plan := Plan{Seed: 42, PartitionRate: 0.2, LatencyRate: 0.2, ResetRate: 0.2, TruncateRate: 0.2, CorruptRate: 0.2}
	a, b := New(plan), New(plan)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("a->b/a%d", i)
		if got, want := a.Decide(key), b.Decide(key); got != want {
			t.Fatalf("Decide(%q) differs across injectors: %v vs %v", key, got, want)
		}
		// Repeated draws of the same key are stable.
		if first, again := a.Decide(key), a.Decide(key); first != again {
			t.Fatalf("Decide(%q) unstable: %v then %v", key, first, again)
		}
	}
}

// TestDecideSeedAndDirection: changing the seed reshuffles the schedule,
// and a drawn fault on a->b implies nothing about b->a (asymmetry).
func TestDecideSeedAndDirection(t *testing.T) {
	mk := func(seed int64) *Injector {
		return New(Plan{Seed: seed, PartitionRate: 0.5})
	}
	in1, in2 := mk(1), mk(2)
	diff, asym := 0, 0
	for i := 0; i < 200; i++ {
		fwd := fmt.Sprintf("a->b/a%d", i)
		rev := fmt.Sprintf("b->a/a%d", i)
		if in1.Decide(fwd) != in2.Decide(fwd) {
			diff++
		}
		if in1.Decide(fwd) != in1.Decide(rev) {
			asym++
		}
	}
	if diff == 0 {
		t.Error("seeds 1 and 2 draw identical schedules")
	}
	if asym == 0 {
		t.Error("forward and reverse links draw identical schedules (no asymmetry)")
	}
}

// TestDecideRates: over many sites the empirical fault mix tracks the
// plan's rates (loose bounds; the draw is hash-uniform, not sampled).
func TestDecideRates(t *testing.T) {
	in := New(Plan{Seed: 7, PartitionRate: 0.3, CorruptRate: 0.2})
	counts := map[Kind]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[in.Decide(fmt.Sprintf("x->y/a%d", i))]++
	}
	frac := func(k Kind) float64 { return float64(counts[k]) / n }
	if f := frac(Partition); f < 0.25 || f > 0.35 {
		t.Errorf("partition fraction %.3f, want ~0.30", f)
	}
	if f := frac(Corrupt); f < 0.15 || f > 0.25 {
		t.Errorf("corrupt fraction %.3f, want ~0.20", f)
	}
	if f := frac(None); f < 0.45 || f > 0.55 {
		t.Errorf("none fraction %.3f, want ~0.50", f)
	}
}

// TestMatchRestricts: a Match substring confines injection to matching
// links.
func TestMatchRestricts(t *testing.T) {
	in := New(Plan{Seed: 3, PartitionRate: 1, Match: "->b/"})
	if got := in.Decide("a->b/a0"); got != Partition {
		t.Errorf("matching key drew %v, want partition", got)
	}
	if got := in.Decide("a->c/a0"); got != None {
		t.Errorf("non-matching key drew %v, want none", got)
	}
}

// fakePeer runs a tiny server returning a fixed body, and a transport
// wrapped to treat it as peer "b" as seen from "a".
func fakePeer(t *testing.T, in *Injector, body string) (*httptest.Server, http.RoundTripper) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	u, err := url.Parse(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	rt := in.Transport("a", HostResolver(map[string]string{u.Host: "b"}), nil)
	return srv, rt
}

// TestTransportExplicitPartitionAndHeal: an explicit directed cut fails
// requests without touching the server; healing restores the link.
func TestTransportExplicitPartitionAndHeal(t *testing.T) {
	in := New(Plan{Seed: 1})
	srv, rt := fakePeer(t, in, "hello")
	client := &http.Client{Transport: rt}

	in.Partition("a", "b")
	if _, err := client.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "partition") {
		t.Fatalf("partitioned request err = %v, want injected partition", err)
	}
	if got := in.Partitions.Load(); got != 1 {
		t.Errorf("partitions counter = %d, want 1", got)
	}

	in.Heal("a", "b")
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("healed request failed: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != "hello" {
		t.Errorf("healed body = %q", b)
	}
}

// TestTransportCorruptAndTruncate: drawn corruption flips exactly one
// bit of the body; truncation halves it. Both are deterministic per
// attempt.
func TestTransportCorruptAndTruncate(t *testing.T) {
	const body = "the quick brown fox jumps over the lazy dog"

	in := New(Plan{Seed: 5, CorruptRate: 1})
	srv, rt := fakePeer(t, in, body)
	client := &http.Client{Transport: rt}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) == body {
		t.Error("corrupt-rate-1 response unchanged")
	}
	if len(got) != len(body) {
		t.Errorf("corruption changed length: %d vs %d", len(got), len(body))
	}
	diff := 0
	for i := range got {
		if got[i] != body[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption touched %d bytes, want exactly 1", diff)
	}
	if in.Corruptions.Load() == 0 {
		t.Error("corruptions counter unmoved")
	}

	in2 := New(Plan{Seed: 5, TruncateRate: 1})
	srv2, rt2 := fakePeer(t, in2, body)
	client2 := &http.Client{Transport: rt2}
	resp2, err := client2.Get(srv2.URL)
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if len(got2) != len(body)/2 {
		t.Errorf("truncated body length %d, want %d", len(got2), len(body)/2)
	}
}

// TestTransportReset: the server processes the request (the work
// happens) but the client sees a transport error (the answer is lost).
func TestTransportReset(t *testing.T) {
	in := New(Plan{Seed: 9, ResetRate: 1})
	served := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		io.WriteString(w, "done")
	}))
	t.Cleanup(srv.Close)
	u, _ := url.Parse(srv.URL)
	rt := in.Transport("a", HostResolver(map[string]string{u.Host: "b"}), nil)
	client := &http.Client{Transport: rt}

	if _, err := client.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "reset") {
		t.Fatalf("reset request err = %v, want injected reset", err)
	}
	if served != 1 {
		t.Errorf("server handled %d requests, want 1 (reset loses the reply, not the work)", served)
	}
}

// TestTransportPassThrough: hosts the resolver does not know are not
// shaped at all.
func TestTransportPassThrough(t *testing.T) {
	in := New(Plan{Seed: 1, PartitionRate: 1})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "clean")
	}))
	t.Cleanup(srv.Close)
	rt := in.Transport("a", HostResolver(map[string]string{}), nil)
	client := &http.Client{Transport: rt}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("pass-through request failed: %v", err)
	}
	resp.Body.Close()
	if in.Partitions.Load() != 0 {
		t.Error("unresolvable host drew a fault")
	}
}

// TestParsePlan covers the env-hook format, including rejection of
// unknown keys.
func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7, partition=0.05, latency-rate=0.1, latency=25ms, reset=0.02, truncate=0.01, corrupt=0.03, match=->b/")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.PartitionRate != 0.05 || p.LatencyRate != 0.1 ||
		p.Latency != 25*time.Millisecond || p.ResetRate != 0.02 ||
		p.TruncateRate != 0.01 || p.CorruptRate != 0.03 || p.Match != "->b/" {
		t.Errorf("parsed plan %+v", p)
	}
	if _, err := ParsePlan("sneed=7"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ParsePlan("seed"); err == nil {
		t.Error("bare key accepted")
	}
	if _, err := ParsePlan("seed=x"); err == nil {
		t.Error("bad int accepted")
	}
}
