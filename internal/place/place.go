// Package place provides block-level floorplanning and the back-annotation
// of wire parasitics onto a netlist. It implements the paper's section 5
// comparison: careful floorplanning keeps critical paths local to a block,
// while poor floorplanning strings them across a 100 mm^2 die and pays
// millimeters of global wire on every hop.
//
// Gates carry a Block tag (see netlist.Gate.Block); the floorplanner
// places blocks on a grid over the die, minimizing half-perimeter
// wirelength of inter-block nets by simulated annealing, or scattering
// them randomly to model a floorplanning-unaware flow. Annotate then
// converts net lengths into lumped capacitance plus distributed-RC extra
// delay using internal/wire (with optimal repeaters on long nets).
package place

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/netlist"
	"repro/internal/units"
	"repro/internal/wire"
)

// CellAreaUnitMM2 converts netlist area units (half-minimum-inverter
// equivalents) to silicon area: a minimum inverter in a 0.25 um process
// occupies roughly 10 um^2, i.e. 5e-6 mm^2 per unit.
const CellAreaUnitMM2 = 5e-6

// Die describes the target silicon.
type Die struct {
	// SideMM is the edge length of the square die in millimeters.
	// The paper's floorplanning study uses a 100 mm^2 (10 mm) die.
	SideMM float64
}

// AreaMM2 returns the die area.
func (d Die) AreaMM2() float64 { return d.SideMM * d.SideMM }

// Quality selects the floorplanning effort.
type Quality int

const (
	// Careful is simulated-annealing floorplanning: connected blocks
	// end up adjacent (the custom/manual-floorplan result).
	Careful Quality = iota
	// Naive scatters blocks randomly over the die (no floorplanning).
	Naive
)

func (q Quality) String() string {
	if q == Naive {
		return "naive"
	}
	return "careful"
}

// Point is a position on the die in millimeters.
type Point struct{ X, Y float64 }

// Placement maps floorplan blocks to die positions.
type Placement struct {
	Die    Die
	Blocks map[string]Point
	// gridN is the grid dimension used during placement.
	gridN int
}

// blocksOf collects the distinct block names in deterministic order, with
// the empty tag treated as one anonymous block.
func blocksOf(n *netlist.Netlist) []string {
	seen := map[string]bool{}
	var names []string
	add := func(b string) {
		if !seen[b] {
			seen[b] = true
			names = append(names, b)
		}
	}
	for _, g := range n.Gates() {
		add(g.Block)
	}
	for _, r := range n.Regs() {
		add(r.Block)
	}
	sort.Strings(names)
	return names
}

// interBlockNets returns, per net, the set of distinct blocks it touches
// (driver plus sinks); nets touching fewer than two blocks are local.
func interBlockNets(n *netlist.Netlist) map[netlist.NetID][]string {
	out := make(map[netlist.NetID][]string)
	for _, nt := range n.Nets() {
		blocks := map[string]bool{}
		if nt.Driver != netlist.None {
			blocks[n.Gate(nt.Driver).Block] = true
		}
		if nt.DriverReg != netlist.None {
			blocks[n.Reg(nt.DriverReg).Block] = true
		}
		for _, p := range nt.Sinks {
			blocks[n.Gate(p.Gate).Block] = true
		}
		for _, r := range nt.RegSinks {
			blocks[n.Reg(r).Block] = true
		}
		if len(blocks) < 2 {
			continue
		}
		var names []string
		for b := range blocks {
			names = append(names, b)
		}
		sort.Strings(names)
		out[nt.ID] = names
	}
	return out
}

// Floorplan places the netlist's blocks on the die. The seed drives both
// the naive scatter and the annealing schedule, making runs reproducible.
func Floorplan(n *netlist.Netlist, die Die, q Quality, seed int64) *Placement {
	names := blocksOf(n)
	gridN := 1
	for gridN*gridN < len(names) {
		gridN++
	}
	rng := rand.New(rand.NewSource(seed))

	// Slot i -> grid cell (i%gridN, i/gridN), centered in the cell.
	slotPos := func(slot int) Point {
		cellW := die.SideMM / float64(gridN)
		return Point{
			X: (float64(slot%gridN) + 0.5) * cellW,
			Y: (float64(slot/gridN) + 0.5) * cellW,
		}
	}

	// Initial assignment: shuffled slots.
	slots := rng.Perm(gridN * gridN)[:len(names)]
	assign := make(map[string]int, len(names))
	for i, b := range names {
		assign[b] = slots[i]
	}

	p := &Placement{Die: die, Blocks: make(map[string]Point), gridN: gridN}
	nets := interBlockNets(n)

	if q == Careful && len(names) > 1 {
		anneal(assign, nets, slotPos, gridN, rng)
	}
	for b, s := range assign {
		p.Blocks[b] = slotPos(s)
	}
	return p
}

// hpwl computes half-perimeter wirelength of a net over block positions.
func hpwl(blocks []string, pos func(string) Point) float64 {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, b := range blocks {
		pt := pos(b)
		minX, maxX = math.Min(minX, pt.X), math.Max(maxX, pt.X)
		minY, maxY = math.Min(minY, pt.Y), math.Max(maxY, pt.Y)
	}
	return (maxX - minX) + (maxY - minY)
}

// anneal runs simulated annealing over slot assignments, swapping block
// pairs (or moving to free slots) to minimize total inter-block HPWL.
func anneal(assign map[string]int, nets map[netlist.NetID][]string, slotPos func(int) Point, gridN int, rng *rand.Rand) {
	names := make([]string, 0, len(assign))
	for b := range assign {
		names = append(names, b)
	}
	sort.Strings(names)

	// Iterate nets in sorted id order: float addition is order
	// dependent, and map-order sums would make near-tie annealing
	// decisions (and thus placements) nondeterministic.
	netIDs := make([]netlist.NetID, 0, len(nets))
	for id := range nets {
		netIDs = append(netIDs, id)
	}
	sort.Slice(netIDs, func(i, j int) bool { return netIDs[i] < netIDs[j] })
	cost := func() float64 {
		total := 0.0
		for _, id := range netIDs {
			total += hpwl(nets[id], func(b string) Point { return slotPos(assign[b]) })
		}
		return total
	}

	cur := cost()
	temp := cur / float64(len(nets)+1) * 2
	if temp <= 0 {
		temp = 1
	}
	iters := 200 * len(names) * len(names)
	if iters < 2000 {
		iters = 2000
	}
	for i := 0; i < iters; i++ {
		a := names[rng.Intn(len(names))]
		b := names[rng.Intn(len(names))]
		if a == b {
			continue
		}
		assign[a], assign[b] = assign[b], assign[a]
		next := cost()
		d := next - cur
		if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
			cur = next
		} else {
			assign[a], assign[b] = assign[b], assign[a]
		}
		temp *= 0.9995
	}
}

// TotalHPWL reports the summed inter-block half-perimeter wirelength of
// the placement, in millimeters — the annealer's objective, exposed for
// reports and tests.
func (p *Placement) TotalHPWL(n *netlist.Netlist) float64 {
	nets := interBlockNets(n)
	ids := make([]netlist.NetID, 0, len(nets))
	for id := range nets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	total := 0.0
	for _, id := range ids {
		total += hpwl(nets[id], func(b string) Point { return p.Blocks[b] })
	}
	return total
}

// NetLengthMM estimates the routed length of a net: inter-block HPWL plus
// a local component proportional to the block's own extent.
func (p *Placement) NetLengthMM(n *netlist.Netlist, id netlist.NetID, localMM float64) float64 {
	nets := interBlockNets(n)
	if blocks, ok := nets[id]; ok {
		return hpwl(blocks, func(b string) Point { return p.Blocks[b] }) + localMM
	}
	return localMM
}

// AnnotateOptions controls parasitic back-annotation.
type AnnotateOptions struct {
	// WireModel evaluates RC delay.
	WireModel wire.Model
	// Repeaters enables optimal repeater insertion on inter-block nets
	// (part of "proper driving of a wire", section 5).
	Repeaters bool
	// LocalMM is the average local (intra-block) net length.
	LocalMM float64
}

// Annotate writes WireCap and ExtraDelay onto every net from the
// placement. Local nets get the local length; inter-block nets get their
// HPWL plus the local tail, with repeaters when enabled and profitable.
func (p *Placement) Annotate(n *netlist.Netlist, opt AnnotateOptions) {
	m := opt.WireModel
	nets := interBlockNets(n)
	for _, nt := range n.Nets() {
		lenMM := opt.LocalMM
		if blocks, ok := nets[nt.ID]; ok {
			lenMM += hpwl(blocks, func(b string) Point { return p.Blocks[b] })
		}
		nt.LengthMM = lenMM
		nt.WidthMult = 1
		if lenMM <= 0 {
			nt.WireCap = 0
			nt.ExtraDelay = 0
			continue
		}
		nt.WireCap = m.CapOfLength(lenMM, 1)
		// Distributed-RC component beyond the lumped cap: the Rw term
		// of the Elmore delay, or the best repeated solution on long
		// nets. The driver's own Rd*(Cw+CL) share is already modeled
		// by STA through WireCap, so subtract the zero-length
		// baseline.
		load := n.Load(nt.ID) - nt.WireCap
		drive := 2.0
		if nt.Driver != netlist.None {
			drive = n.Gate(nt.Driver).Cell.Drive
		} else if nt.DriverReg != netlist.None {
			drive = n.Reg(nt.DriverReg).Cell.Drive
		}
		full := m.UnbufferedDelay(lenMM, 1, drive, load)
		lumped := m.UnbufferedDelay(0, 1, drive, load+nt.WireCap)
		extra := full - lumped
		if opt.Repeaters && lenMM > 0.5 {
			rep := m.RepeatersForDriver(drive, lenMM, load)
			if rep.Count >= 1 && rep.Delay < full {
				// The driver now sees only the first segment plus
				// the first repeater's input; the rest of the
				// chain is charged as extra delay.
				nt.WireCap = m.CapOfLength(lenMM/float64(rep.Count+1), 1) + units.Cap(rep.Size)
				lumped = m.UnbufferedDelay(0, 1, drive, load+nt.WireCap)
				extra = rep.Delay - lumped
			}
		}
		if extra < 0 {
			extra = 0
		}
		nt.ExtraDelay = extra
	}
}

// ClearAnnotation zeroes all wire parasitics (pre-placement state).
func ClearAnnotation(n *netlist.Netlist) {
	for _, nt := range n.Nets() {
		nt.WireCap = 0
		nt.ExtraDelay = 0
		nt.LengthMM = 0
		nt.WidthMult = 0
	}
}

func (p *Placement) String() string {
	return fmt.Sprintf("placement on %.0fx%.0fmm die, %d blocks (grid %dx%d)",
		p.Die.SideMM, p.Die.SideMM, len(p.Blocks), p.gridN, p.gridN)
}

// BlockAreasMM2 reports each block's silicon area from its cell areas.
func BlockAreasMM2(n *netlist.Netlist) map[string]float64 {
	areas := map[string]float64{}
	for _, g := range n.Gates() {
		areas[g.Block] += g.Cell.Area * CellAreaUnitMM2
	}
	for _, r := range n.Regs() {
		areas[r.Block] += r.Cell.Area * CellAreaUnitMM2
	}
	return areas
}

// LocalNetMM estimates the average intra-block net length for a block of
// the given area: a tenth of its side, matching the wire-load model.
func LocalNetMM(blockAreaMM2 float64) float64 {
	return 0.1 * math.Sqrt(blockAreaMM2)
}
