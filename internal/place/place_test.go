package place

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/wire"
)

func chainNetlist(t *testing.T, slices int) *netlist.Netlist {
	t.Helper()
	n, err := circuits.DatapathChain(cell.RichASIC(), 16, slices)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCarefulBeatsNaiveHPWL(t *testing.T) {
	n := chainNetlist(t, 8)
	die := Die{SideMM: 10}
	careful := Floorplan(n, die, Careful, 1)
	naive := Floorplan(n, die, Naive, 1)
	hc := careful.TotalHPWL(n)
	hn := naive.TotalHPWL(n)
	if hc >= hn {
		t.Fatalf("careful HPWL %.1f mm should beat naive %.1f mm", hc, hn)
	}
	// A chain places as a snake; annealing should find most of the
	// available improvement over a random scatter.
	if hn/hc < 1.3 {
		t.Fatalf("careful HPWL %.1f mm vs naive %.1f mm: improvement %.2fx, want >= 1.3x",
			hc, hn, hn/hc)
	}
	// Lower bound: every inter-block net spans at least one grid cell
	// when its blocks differ; careful must be within 3x of that.
	nInter := 0
	for range interBlockNets(n) {
		nInter++
	}
	cellW := die.SideMM / 3 // 8 blocks -> 3x3 grid
	if hc > 3*float64(nInter)*cellW {
		t.Fatalf("careful HPWL %.1f mm far above %d-net lower bound %.1f mm",
			hc, nInter, float64(nInter)*cellW)
	}
}

func TestFloorplanDeterministic(t *testing.T) {
	n := chainNetlist(t, 6)
	die := Die{SideMM: 10}
	a := Floorplan(n, die, Careful, 7)
	b := Floorplan(n, die, Careful, 7)
	for k, v := range a.Blocks {
		if b.Blocks[k] != v {
			t.Fatalf("same seed, different placement for %s", k)
		}
	}
}

func TestAnnotateAddsParasitics(t *testing.T) {
	n := chainNetlist(t, 4)
	die := Die{SideMM: 10}
	p := Floorplan(n, die, Naive, 3)
	m := wire.NewModel(units.ASIC025)
	p.Annotate(n, AnnotateOptions{WireModel: m, LocalMM: 0.05})
	anyCap := false
	for _, nt := range n.Nets() {
		if nt.WireCap > 0 {
			anyCap = true
		}
		if nt.ExtraDelay < 0 {
			t.Fatal("negative extra delay")
		}
	}
	if !anyCap {
		t.Fatal("annotation added no wire capacitance")
	}
	ClearAnnotation(n)
	for _, nt := range n.Nets() {
		if nt.WireCap != 0 || nt.ExtraDelay != 0 {
			t.Fatal("clear left parasitics behind")
		}
	}
}

func TestFloorplanningSpeedup(t *testing.T) {
	// Section 5: careful floorplanning and placement may buy up to 25%
	// on a critical path spread over a 100 mm^2 die. Our datapath chain
	// crosses blocks between slices; scattering the slices stretches
	// every crossing.
	n := chainNetlist(t, 8)
	die := Die{SideMM: 10}
	m := wire.NewModel(units.ASIC025)
	local := 0.05

	careful := Floorplan(n, die, Careful, 1)
	careful.Annotate(n, AnnotateOptions{WireModel: m, Repeaters: true, LocalMM: local})
	rc, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}

	naive := Floorplan(n, die, Naive, 99)
	naive.Annotate(n, AnnotateOptions{WireModel: m, Repeaters: true, LocalMM: local})
	rn, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}

	speedup := float64(rn.WorstComb) / float64(rc.WorstComb)
	if speedup < 1.02 {
		t.Fatalf("floorplanning speedup = %.3f, want measurable gain", speedup)
	}
	if speedup > 2.0 {
		t.Fatalf("floorplanning speedup = %.3f, implausibly large", speedup)
	}
}

func TestRepeatersHelpNaivePlacement(t *testing.T) {
	n := chainNetlist(t, 8)
	die := Die{SideMM: 10}
	m := wire.NewModel(units.ASIC025)
	naive := Floorplan(n, die, Naive, 5)

	naive.Annotate(n, AnnotateOptions{WireModel: m, Repeaters: false, LocalMM: 0.05})
	noRep, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive.Annotate(n, AnnotateOptions{WireModel: m, Repeaters: true, LocalMM: 0.05})
	withRep, err := sta.Analyze(n, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if withRep.WorstComb > noRep.WorstComb {
		t.Fatalf("repeaters made things worse: %.1f vs %.1f FO4",
			withRep.CombFO4(), noRep.CombFO4())
	}
}

func TestBlockAreas(t *testing.T) {
	n := chainNetlist(t, 4)
	areas := BlockAreasMM2(n)
	if len(areas) < 4 {
		t.Fatalf("expected >=4 blocks, got %d", len(areas))
	}
	for b, a := range areas {
		if a <= 0 {
			t.Fatalf("block %q has non-positive area", b)
		}
	}
	if LocalNetMM(1) <= 0 {
		t.Fatal("local net length must be positive")
	}
}

func TestSingleBlockPlacement(t *testing.T) {
	// A netlist with all gates in one (empty-named) block still places.
	lib := cell.RichASIC()
	n := netlist.New("one")
	a := n.AddInput("a")
	x := n.MustGate(lib.Smallest(cell.FuncInv), a)
	n.MarkOutput(x)
	p := Floorplan(n, Die{SideMM: 10}, Careful, 1)
	if len(p.Blocks) != 1 {
		t.Fatalf("got %d blocks, want 1", len(p.Blocks))
	}
	if p.TotalHPWL(n) != 0 {
		t.Fatal("single block has no inter-block wire")
	}
	if p.String() == "" {
		t.Fatal("empty placement description")
	}
}
