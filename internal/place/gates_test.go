package place

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/wire"
)

func TestPlaceGatesCarefulBeatsNaive(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 16)
	if err != nil {
		t.Fatal(err)
	}
	careful, err := PlaceGates(ad.N, Careful, 1)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := PlaceGates(ad.N, Naive, 1)
	if err != nil {
		t.Fatal(err)
	}
	wc, wn := careful.TotalWireMM(), naive.TotalWireMM()
	if wc >= wn {
		t.Fatalf("careful placement (%.2f mm) should beat naive (%.2f mm)", wc, wn)
	}
	if wn/wc < 1.3 {
		t.Fatalf("improvement %.2fx too small — annealer not working", wn/wc)
	}
}

func TestPlaceGatesDeterministic(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := PlaceGates(ad.N, Careful, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlaceGates(ad.N, Careful, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalWireMM() != b.TotalWireMM() {
		t.Fatal("same seed must give identical placement")
	}
}

func TestGateAnnotateSetsLengths(t *testing.T) {
	lib := cell.RichASIC()
	ad, err := circuits.CarryLookahead(lib, 16)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := PlaceGates(ad.N, Careful, 1)
	if err != nil {
		t.Fatal(err)
	}
	gp.Annotate(AnnotateOptions{WireModel: wire.NewModel(units.ASIC025)})
	withLen := 0
	for _, nt := range ad.N.Nets() {
		if nt.LengthMM > 0 {
			withLen++
			if nt.WireCap <= 0 {
				t.Fatal("length without capacitance")
			}
		}
	}
	if withLen == 0 {
		t.Fatal("no nets annotated")
	}
	// Timing still analyzes and is slower than the unannotated netlist.
	r, err := sta.Analyze(ad.N, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clean := ad.N.Clone()
	ClearAnnotation(clean)
	r0, err := sta.Analyze(clean, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.WorstComb <= r0.WorstComb {
		t.Fatal("annotated wires must add delay")
	}
}

func TestGatePlacementTimingBeatsNaive(t *testing.T) {
	// The end-to-end point of detailed placement: careful gate placement
	// yields faster timing than a random scatter of the same gates.
	lib := cell.RichASIC()
	m := wire.NewModel(units.ASIC025)
	measure := func(q Quality) float64 {
		ad, err := circuits.CarryLookahead(lib, 16)
		if err != nil {
			t.Fatal(err)
		}
		gp, err := PlaceGates(ad.N, q, 3)
		if err != nil {
			t.Fatal(err)
		}
		gp.Annotate(AnnotateOptions{WireModel: m})
		r, err := sta.Analyze(ad.N, sta.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.WorstComb)
	}
	careful := measure(Careful)
	naive := measure(Naive)
	if careful >= naive {
		t.Fatalf("careful placement timing (%.1f) should beat naive (%.1f)", careful, naive)
	}
}

func TestPlaceGatesEmptyNetlist(t *testing.T) {
	n := netlist.New("empty")
	gp, err := PlaceGates(n, Careful, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gp != nil {
		t.Fatal("empty netlist should place to nil")
	}
}

func TestNetLengthMMBlockLevel(t *testing.T) {
	lib := cell.RichASIC()
	n, err := circuits.DatapathChain(lib, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl := Floorplan(n, Die{SideMM: 10}, Careful, 1)
	// An inter-block net is at least one grid hop long; local nets get
	// only the local tail.
	sawInter := false
	for _, nt := range n.Nets() {
		l := pl.NetLengthMM(n, nt.ID, 0.05)
		if l < 0.05 {
			t.Fatalf("net %d length %.3f below local floor", nt.ID, l)
		}
		if l > 0.05 {
			sawInter = true
		}
	}
	if !sawInter {
		t.Fatal("no inter-block nets measured")
	}
}
