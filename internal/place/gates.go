package place

import (
	"math"
	"math/rand"

	"repro/internal/netlist"
	"repro/internal/units"
)

// GatePlacement assigns every gate and register of a netlist a position
// inside a block of the given area — the detailed-placement counterpart
// of the block-level floorplanner, replacing the statistical local-net
// guess with measured half-perimeter lengths per net.
type GatePlacement struct {
	// AreaMM2 is the placed block's area (cells plus routing overhead).
	AreaMM2 float64
	// Pos is indexed by gate id; RegPos by register id.
	Pos    []Point
	RegPos []Point
	// sideMM is the block edge.
	sideMM float64
	n      *netlist.Netlist
}

// PlaceGates performs detailed placement: gates are arranged on a grid
// over the block, seeded in topological order (which is already close to
// optimal for datapath-shaped logic) and refined by annealing swaps when
// quality is Careful; Naive shuffles them randomly, the strawman of a
// placement-unaware flow.
func PlaceGates(n *netlist.Netlist, q Quality, seed int64) (*GatePlacement, error) {
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	total := n.NumGates() + n.NumRegs()
	if total == 0 {
		return nil, nil
	}
	// Block area: cell area at ~50% utilization.
	areaMM2 := n.TotalArea() * CellAreaUnitMM2 * 2
	side := math.Sqrt(areaMM2)
	cols := int(math.Ceil(math.Sqrt(float64(total))))
	pitch := side / float64(cols)

	slotOf := make([]int, total) // entity index -> slot
	// Entity order: topological gates first, then registers.
	entities := make([]int, 0, total)
	for _, gid := range order {
		entities = append(entities, int(gid))
	}
	for r := 0; r < n.NumRegs(); r++ {
		entities = append(entities, n.NumGates()+r)
	}
	rng := rand.New(rand.NewSource(seed))
	if q == Naive {
		rng.Shuffle(len(entities), func(i, j int) {
			entities[i], entities[j] = entities[j], entities[i]
		})
	}
	for slot, ent := range entities {
		slotOf[ent] = slot
	}

	posOf := func(slot int) Point {
		row := slot / cols
		col := slot % cols
		// Snake rows so consecutive slots are always adjacent.
		if row%2 == 1 {
			col = cols - 1 - col
		}
		return Point{X: (float64(col) + 0.5) * pitch, Y: (float64(row) + 0.5) * pitch}
	}

	gp := &GatePlacement{AreaMM2: areaMM2, sideMM: side, n: n}
	build := func() {
		gp.Pos = make([]Point, n.NumGates())
		gp.RegPos = make([]Point, n.NumRegs())
		for ent, slot := range slotOf {
			if ent < n.NumGates() {
				gp.Pos[ent] = posOf(slot)
			} else {
				gp.RegPos[ent-n.NumGates()] = posOf(slot)
			}
		}
	}
	build()

	if q == Careful && total > 2 {
		gp.refine(slotOf, posOf, rng)
		build()
	}
	return gp, nil
}

// netEntities lists the entity ids (gate or numGates+reg) touching a net.
func netEntities(n *netlist.Netlist, nt *netlist.Net) []int {
	var ents []int
	if nt.Driver != netlist.None {
		ents = append(ents, int(nt.Driver))
	}
	if nt.DriverReg != netlist.None {
		ents = append(ents, n.NumGates()+int(nt.DriverReg))
	}
	for _, p := range nt.Sinks {
		ents = append(ents, int(p.Gate))
	}
	for _, r := range nt.RegSinks {
		ents = append(ents, n.NumGates()+int(r))
	}
	return ents
}

// refine anneals pairwise swaps with incremental cost over only the nets
// touching the swapped entities.
func (gp *GatePlacement) refine(slotOf []int, posOf func(int) Point, rng *rand.Rand) {
	n := gp.n
	total := len(slotOf)
	// nets touching each entity.
	touch := make([][]*netlist.Net, total)
	for _, nt := range n.Nets() {
		for _, e := range netEntities(n, nt) {
			touch[e] = append(touch[e], nt)
		}
	}
	netCost := func(nt *netlist.Net) float64 {
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, e := range netEntities(n, nt) {
			p := posOf(slotOf[e])
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
		return (maxX - minX) + (maxY - minY)
	}
	localCost := func(a, b int) float64 {
		c := 0.0
		for _, nt := range touch[a] {
			c += netCost(nt)
		}
		for _, nt := range touch[b] {
			c += netCost(nt)
		}
		return c
	}

	iters := 25 * total
	if iters > 120000 {
		iters = 120000
	}
	temp := gp.sideMM / 4
	for i := 0; i < iters; i++ {
		a := rng.Intn(total)
		b := rng.Intn(total)
		if a == b {
			continue
		}
		before := localCost(a, b)
		slotOf[a], slotOf[b] = slotOf[b], slotOf[a]
		after := localCost(a, b)
		d := after - before
		if d > 0 && rng.Float64() >= math.Exp(-d/temp) {
			slotOf[a], slotOf[b] = slotOf[b], slotOf[a]
		}
		temp *= 0.99995
		if temp < 1e-6 {
			temp = 1e-6
		}
	}
}

// NetLength returns the half-perimeter length of a net in this placement,
// in millimeters.
func (gp *GatePlacement) NetLength(nt *netlist.Net) float64 {
	ents := netEntities(gp.n, nt)
	if len(ents) < 2 {
		return 0
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, e := range ents {
		var p Point
		if e < gp.n.NumGates() {
			p = gp.Pos[e]
		} else {
			p = gp.RegPos[e-gp.n.NumGates()]
		}
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	return (maxX - minX) + (maxY - minY)
}

// TotalWireMM sums net lengths — the detailed-placement objective.
func (gp *GatePlacement) TotalWireMM() float64 {
	t := 0.0
	for _, nt := range gp.n.Nets() {
		t += gp.NetLength(nt)
	}
	return t
}

// Annotate back-annotates measured per-net lengths as wire parasitics,
// the gate-level analogue of Placement.Annotate.
func (gp *GatePlacement) Annotate(opt AnnotateOptions) {
	m := opt.WireModel
	n := gp.n
	for _, nt := range n.Nets() {
		lenMM := gp.NetLength(nt)
		nt.LengthMM = lenMM
		nt.WidthMult = 1
		if lenMM <= 0 {
			nt.WireCap = 0
			nt.ExtraDelay = 0
			continue
		}
		nt.WireCap = m.CapOfLength(lenMM, 1)
		load := n.Load(nt.ID) - nt.WireCap
		drive := 2.0
		if nt.Driver != netlist.None {
			drive = n.Gate(nt.Driver).Cell.Drive
		} else if nt.DriverReg != netlist.None {
			drive = n.Reg(nt.DriverReg).Cell.Drive
		}
		full := m.UnbufferedDelay(lenMM, 1, drive, load)
		lumped := m.UnbufferedDelay(0, 1, drive, load+nt.WireCap)
		extra := full - lumped
		if opt.Repeaters && lenMM > 0.5 {
			rep := m.RepeatersForDriver(drive, lenMM, load)
			if rep.Count >= 1 && rep.Delay < full {
				nt.WireCap = m.CapOfLength(lenMM/float64(rep.Count+1), 1) + units.Cap(rep.Size)
				lumped = m.UnbufferedDelay(0, 1, drive, load+nt.WireCap)
				extra = rep.Delay - lumped
			}
		}
		if extra < 0 {
			extra = 0
		}
		nt.ExtraDelay = extra
	}
}
