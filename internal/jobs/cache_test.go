package jobs

import "testing"

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", &Result{ID: "a"})
	c.Put("b", &Result{ID: "b"})
	if _, ok := c.Get("a"); !ok { // touch a -> b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", &Result{ID: "c"}) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put("a", &Result{ID: "a"})
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestCacheOverwrite(t *testing.T) {
	c := NewCache(2)
	c.Put("a", &Result{ID: "a", ElapsedMS: 1})
	c.Put("a", &Result{ID: "a", ElapsedMS: 2})
	r, ok := c.Get("a")
	if !ok || r.ElapsedMS != 2 {
		t.Errorf("overwrite lost: %+v ok=%v", r, ok)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}
