package jobs

// The chaos-cas suite: crash drills for the tiered result store. The
// acceptance properties are the ISSUE's — a cache-cold restart serves
// the full corpus with zero recomputes (the pool's JobsStarted delta is
// exactly zero), a kill mid-segment-write costs at most a torn-tail
// truncation and never a wrong or duplicated result, every served body
// stays byte-identical to the serial fault-free reference, and a
// working set 4x the RAM cache capacity sustains >90% combined-tier
// hits. Seeds follow the fixed chaos matrix; `make chaos-cas` runs the
// suite under -race.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cas"
	"repro/internal/faultinject"
)

// casCorpus is the evaluate-only working set sized against the RAM
// cache: with casCacheEntries=8, the 32 distinct specs are exactly 4x
// the cache capacity, so a full sweep cannot be served from RAM alone.
const (
	casCacheEntries = 8
	casCorpusSize   = 4 * casCacheEntries
)

func casCorpus() []Spec {
	specs := make([]Spec, 0, casCorpusSize)
	for s := int64(0); s < casCorpusSize; s++ {
		specs = append(specs, Spec{
			Kind:        KindEvaluate,
			Design:      DesignSpec{Name: "datapath", Width: 8, Depth: 2},
			Methodology: MethSpec{Base: "typical"},
			Seed:        s,
		})
	}
	return specs
}

// openTestStore opens a CAS store with small segments so the corpus
// spans several files (the restart scan and torn-tail logic get real
// work). Automatic compaction stays enabled — the drill must hold under
// the production write path.
func openTestStore(t *testing.T, dir string) *cas.Store {
	t.Helper()
	s, err := cas.Open(cas.Options{Dir: dir, SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestChaosCASColdRestartZeroRecompute is the warm-restart acceptance
// drill: a corpus 4x the RAM cache is computed once, the process
// "dies" cleanly, and a restarted pool with a cold cache must re-serve
// every result from the rebuilt segment index — JobsStarted stays
// exactly zero, every body is byte-identical to the serial reference,
// and the combined RAM+CAS hit rate over the sweep exceeds 90%.
func TestChaosCASColdRestartZeroRecompute(t *testing.T) {
	specs := casCorpus()
	ref := serialReference(t, specs)

	dir := t.TempDir()
	journalDir := filepath.Join(dir, "journal")
	storeDir := filepath.Join(dir, "store")

	j1, err := OpenJournal(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := openTestStore(t, storeDir)
	p1 := NewPool(Options{
		Workers: 4, CacheEntries: casCacheEntries,
		BreakerThreshold: -1, Journal: j1, Store: s1,
	})
	for i, s := range specs {
		if _, err := p1.Do(context.Background(), s); err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
	}
	if got := p1.Metrics().JournalStored.Load(); got != int64(len(specs)) {
		t.Fatalf("journal stored pointers = %d, want %d (results not going to the store?)",
			got, len(specs))
	}
	s1.Close()
	j1.Close() // the "process" dies after a clean run

	// Restart: the journal replay resolves every stored pointer from
	// the rebuilt segment index; nothing is recomputed at boot.
	j2, err := OpenJournal(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := openTestStore(t, storeDir)
	defer s2.Close()
	if got := s2.Len(); got != len(specs) {
		t.Fatalf("index rebuilt %d records, want %d", got, len(specs))
	}
	p2 := NewPool(Options{
		Workers: 4, CacheEntries: casCacheEntries,
		BreakerThreshold: -1, Journal: j2, Store: s2,
	})
	stats, err := RecoverFromJournal(context.Background(), p2, journalDir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WarmedStore != len(specs) {
		t.Errorf("warmed from store = %d, want %d", stats.WarmedStore, len(specs))
	}
	if stats.Resubmitted != 0 {
		t.Errorf("recovery re-ran %d jobs, want 0", stats.Resubmitted)
	}
	if got := p2.Metrics().JobsStarted.Load(); got != 0 {
		t.Fatalf("recovery recomputed %d jobs", got)
	}

	// The full-corpus sweep: the cache holds at most 1/4 of the working
	// set, so most answers come off disk — but none are recomputed.
	m := p2.Metrics()
	ramBefore, casBefore := m.CacheHits.Load(), m.CASHits.Load()
	for i, s := range specs {
		res, err := p2.Do(context.Background(), s)
		if err != nil {
			t.Fatalf("spec %d after restart: %v", i, err)
		}
		if !res.Cached {
			t.Errorf("spec %d recomputed after restart", i)
		}
		if !bytes.Equal(normalizedJSON(t, res), ref[res.ID]) {
			t.Errorf("spec %d: restart result differs from serial reference", i)
		}
	}
	if got := m.JobsStarted.Load(); got != 0 {
		t.Fatalf("cold-cache sweep recomputed %d jobs, want exactly 0", got)
	}
	hits := (m.CacheHits.Load() - ramBefore) + (m.CASHits.Load() - casBefore)
	if rate := float64(hits) / float64(len(specs)); rate <= 0.9 {
		t.Errorf("combined-tier hit rate %.2f, want > 0.90", rate)
	}

	// The compacted journal is slim: stored pointers only, no bodies.
	rep, err := ReplayJournal(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.StoredIDs) != len(specs) || len(rep.Completed) != 0 || len(rep.Pending) != 0 {
		t.Errorf("post-recovery journal: %d stored, %d full done, %d pending; want %d/0/0",
			len(rep.StoredIDs), len(rep.Completed), len(rep.Pending), len(specs))
	}
}

// TestChaosCASKillMidWrite is the torn-tail drill, per chaos seed: jobs
// are killed mid-run by injected process kills, the crash additionally
// lands mid-append on the store's active segment (a half-written record
// at the tail — exactly what a power cut leaves), and the restarted
// store must truncate the tear, serve every completed result with no
// recompute, and re-run only the killed jobs — byte-identical outputs
// throughout.
func TestChaosCASKillMidWrite(t *testing.T) {
	specs := casCorpus()
	ref := serialReference(t, specs)

	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			journalDir := filepath.Join(dir, "journal")
			storeDir := filepath.Join(dir, "store")

			j1, err := OpenJournal(journalDir)
			if err != nil {
				t.Fatal(err)
			}
			s1 := openTestStore(t, storeDir)
			in := faultinject.New(faultinject.Plan{
				Seed: seed, KillRate: 0.3, Match: "pool/",
			})
			p1 := NewPool(Options{
				Workers: 2, MaxAttempts: 1, CacheEntries: casCacheEntries,
				BreakerThreshold: -1, Journal: j1, Store: s1, Injector: in,
			})
			killed := 0
			for i, s := range specs {
				if _, err := p1.Do(context.Background(), s); err != nil {
					if !errors.Is(err, ErrKilled) {
						t.Fatalf("spec %d: unexpected failure: %v", i, err)
					}
					killed++
				}
			}
			if killed == 0 || killed == len(specs) {
				t.Fatalf("kill schedule degenerate: %d/%d killed", killed, len(specs))
			}
			s1.Close()
			j1.Close()

			// The crash lands mid-append: half of one record reaches the
			// active segment — a Put that was never acknowledged.
			tornAddr := sha256.Sum256([]byte(fmt.Sprintf("torn-%d", seed)))
			enc, err := cas.EncodeRecord(hex.EncodeToString(tornAddr[:]), []byte(`{"torn":true}`))
			if err != nil {
				t.Fatal(err)
			}
			seg := newestSegment(t, storeDir)
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(enc[:len(enc)/2]); err != nil {
				t.Fatal(err)
			}
			f.Close()

			// Restart: the tear is truncated, the index rebuilds, the
			// journal replay re-runs exactly the killed jobs.
			j2, err := OpenJournal(journalDir)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			s2 := openTestStore(t, storeDir)
			defer s2.Close()
			if got := s2.Stats().TornTails; got != 1 {
				t.Errorf("torn tails on reopen = %d, want 1", got)
			}
			if got := s2.Len(); got != len(specs)-killed {
				t.Errorf("index rebuilt %d records, want %d", got, len(specs)-killed)
			}
			p2 := NewPool(Options{
				Workers: 2, CacheEntries: casCacheEntries,
				BreakerThreshold: -1, Journal: j2, Store: s2,
			})
			stats, err := RecoverFromJournal(context.Background(), p2, journalDir)
			if err != nil {
				t.Fatal(err)
			}
			if stats.WarmedStore != len(specs)-killed {
				t.Errorf("warmed from store = %d, want %d", stats.WarmedStore, len(specs)-killed)
			}
			if stats.Resubmitted != killed || stats.FailedReplays != 0 {
				t.Errorf("resubmitted = %d (failed %d), want %d",
					stats.Resubmitted, stats.FailedReplays, killed)
			}
			if got := p2.Metrics().JobsStarted.Load(); got != int64(killed) {
				t.Errorf("recovery ran %d jobs, want exactly the %d killed", got, killed)
			}

			// After recovery the full corpus serves without another
			// compute, byte-identical to the uninterrupted reference.
			started := p2.Metrics().JobsStarted.Load()
			for i, s := range specs {
				res, err := p2.Do(context.Background(), s)
				if err != nil {
					t.Fatalf("spec %d after recovery: %v", i, err)
				}
				if !res.Cached {
					t.Errorf("spec %d recomputed after recovery", i)
				}
				if !bytes.Equal(normalizedJSON(t, res), ref[res.ID]) {
					t.Errorf("spec %d: recovered result differs from uninterrupted run", i)
				}
			}
			if got := p2.Metrics().JobsStarted.Load(); got != started {
				t.Errorf("post-recovery sweep recomputed %d jobs, want 0", got-started)
			}
		})
	}
}

// TestChaosCASCrashBetweenStorePutAndJournal covers the narrowest
// window: the CAS write is durable but the process dies before the slim
// "stored" journal line lands. The accept looks pending on replay, but
// recovery must resolve it from the store index — a recompute here
// would double-run a job whose result already exists on disk.
func TestChaosCASCrashBetweenStorePutAndJournal(t *testing.T) {
	spec, err := Spec{
		Kind:        KindEvaluate,
		Design:      DesignSpec{Name: "datapath", Width: 8, Depth: 2},
		Methodology: MethSpec{Base: "typical"},
		Seed:        1,
	}.Canon()
	if err != nil {
		t.Fatal(err)
	}
	ref := serialReference(t, []Spec{spec})

	dir := t.TempDir()
	journalDir := filepath.Join(dir, "journal")
	storeDir := filepath.Join(dir, "store")

	// Simulate the window by hand: journal the accept (fsynced, as the
	// pool would before running) and put the result body into the store,
	// but never write the stored pointer.
	j1, err := OpenJournal(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Accept(spec.Hash(), spec); err != nil {
		t.Fatal(err)
	}
	s1 := openTestStore(t, storeDir)
	res, err := Run(context.Background(), spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	p0 := NewPool(Options{Workers: 1, Store: s1})
	if err := p0.storePut(res); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	j1.Close()

	j2, err := OpenJournal(journalDir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := openTestStore(t, storeDir)
	defer s2.Close()
	p2 := NewPool(Options{Workers: 1, Journal: j2, Store: s2})
	stats, err := RecoverFromJournal(context.Background(), p2, journalDir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resubmitted != 0 {
		t.Errorf("recovery re-ran %d jobs despite a durable store body", stats.Resubmitted)
	}
	if stats.WarmedStore != 1 {
		t.Errorf("warmed from store = %d, want 1", stats.WarmedStore)
	}
	if got := p2.Metrics().JobsStarted.Load(); got != 0 {
		t.Fatalf("recovery recomputed %d jobs, want 0", got)
	}
	got, err := p2.Do(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normalizedJSON(t, got), ref[got.ID]) {
		t.Error("recovered result differs from serial reference")
	}
}

// newestSegment returns the path of the highest-numbered (active)
// segment file in dir.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".cas" && e.Name() > newest {
			newest = e.Name()
		}
	}
	if newest == "" {
		t.Fatal("no segment files found")
	}
	return filepath.Join(dir, newest)
}
