package jobs

import (
	"testing"

	"repro/internal/core"
)

func TestCanonFillsDefaultsAndNormalizes(t *testing.T) {
	s := Spec{
		Kind:        "Evaluate",
		Design:      DesignSpec{Name: " Datapath "},
		Methodology: MethSpec{Base: "typical"},
	}
	c, err := s.Canon()
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != KindEvaluate {
		t.Errorf("kind = %q", c.Kind)
	}
	if c.Design.Name != "datapath" || c.Design.Width != 16 || c.Design.Depth != 4 {
		t.Errorf("design = %+v", c.Design)
	}
	if c.Methodology.Base != "typical-asic" {
		t.Errorf("base = %q", c.Methodology.Base)
	}
}

func TestHashIdentifiesEquivalentSpecs(t *testing.T) {
	a := Spec{Kind: "evaluate", Design: DesignSpec{Name: "datapath"}, Methodology: MethSpec{Base: "typical"}}
	b := Spec{Kind: "EVALUATE", Design: DesignSpec{Name: "datapath", Width: 16, Depth: 4},
		Methodology: MethSpec{Base: "typical-asic"}}
	if a.Hash() != b.Hash() {
		t.Errorf("equivalent specs hash differently:\n%s\n%s", a.Hash(), b.Hash())
	}
	c := b
	c.Seed = 7
	if c.Hash() == b.Hash() {
		t.Error("different seeds must hash differently")
	}
	d := b
	d.Kind = KindLadder
	if d.Hash() == b.Hash() {
		t.Error("different kinds must hash differently")
	}
}

func TestCanonZeroesIrrelevantFields(t *testing.T) {
	// An evaluate job's hash must not depend on sweep-only fields.
	a := Spec{Kind: KindEvaluate, Design: DesignSpec{Name: "cla"}, MaxStages: 9, Workload: "dsp"}
	b := Spec{Kind: KindEvaluate, Design: DesignSpec{Name: "cla"}}
	if a.Hash() != b.Hash() {
		t.Error("evaluate hash depends on sweep fields")
	}
	// A ladder job's hash must not depend on the methodology.
	la := Spec{Kind: KindLadder, Design: DesignSpec{Name: "cla"}, Methodology: MethSpec{Base: "custom"}}
	lb := Spec{Kind: KindLadder, Design: DesignSpec{Name: "cla"}}
	if la.Hash() != lb.Hash() {
		t.Error("ladder hash depends on methodology")
	}
}

func TestCanonRejectsBadSpecs(t *testing.T) {
	cases := []Spec{
		{Kind: "nope", Design: DesignSpec{Name: "cla"}},
		{Kind: KindEvaluate, Design: DesignSpec{Name: "teapot"}},
		{Kind: KindEvaluate, Design: DesignSpec{Name: "cla", Width: 1000}},
		{Kind: KindEvaluate, Design: DesignSpec{Name: "cla"}, Methodology: MethSpec{Base: "alien"}},
		{Kind: KindEvaluate, Design: DesignSpec{Name: "cla"}, Methodology: MethSpec{Sizing: "psychic"}},
		{Kind: KindSweep, Design: DesignSpec{Name: "cla"}, MaxStages: 99},
		{Kind: KindSweep, Design: DesignSpec{Name: "cla"}, Workload: "crypto"},
		{Kind: KindProcvar, Design: DesignSpec{Name: "cla"}},
	}
	for _, s := range cases {
		if _, err := s.Canon(); err == nil {
			t.Errorf("Canon accepted %+v", s)
		}
	}
}

func TestResolveAppliesOverrides(t *testing.T) {
	frac := 0.5
	ms := MethSpec{Base: "best-practice", Stages: 7, Sizing: "continuous", Rating: "fast-bin", DominoFrac: &frac}
	m, err := ms.Resolve(3)
	if err == nil {
		// best-practice-asic has no domino cells, so domino_frac>0 must
		// be rejected rather than failing deep inside the flow.
		t.Fatal("expected domino_frac rejection on a domino-less library")
	}
	ms.DominoFrac = nil
	m, err = ms.Resolve(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Stages != 7 || m.Sizing != core.SizeContinuous || m.Seed != 3 {
		t.Errorf("overrides not applied: %+v", m)
	}
	mc, err := MethSpec{Base: "custom", DominoFrac: &frac}.Resolve(1)
	if err != nil {
		t.Fatal(err)
	}
	if mc.DominoFrac != 0.5 {
		t.Errorf("domino frac = %g", mc.DominoFrac)
	}
}

func TestDesignBuilderCoversRegistry(t *testing.T) {
	for name := range designDefaults {
		s := Spec{Kind: KindEvaluate, Design: DesignSpec{Name: name}}
		c, err := s.Canon()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, err := c.Design.BuildDesign()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Name == "" || d.Build == nil {
			t.Errorf("%s: incomplete design %+v", name, d)
		}
	}
}
