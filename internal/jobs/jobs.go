// Package jobs is the evaluation-service job engine: canonical,
// deterministically-hashable job specifications (a methodology, a named
// workload, and parameters), a bounded worker pool with per-job timeouts,
// panic recovery and context cancellation, a content-addressed LRU result
// cache so identical flow evaluations are never recomputed, and
// concurrent drivers that run factor-ladder rungs and depth-sweep points
// in parallel while producing results identical to the serial paths in
// internal/core.
//
// A Spec is pure data: every library, sequential cell, and fab model is
// named, not pointed to, and is rebuilt fresh inside the job that needs
// it. That is what makes specs safe to hash, ship over HTTP, and execute
// on any worker.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// Kind is the type of evaluation a job performs.
type Kind string

// Job kinds the service executes. KindProcvar appears only in CLI -json
// envelopes (cmd/procmc); the service rejects it.
const (
	KindEvaluate Kind = "evaluate"
	KindLadder   Kind = "ladder"
	KindSweep    Kind = "sweep"
	KindProcvar  Kind = "procvar"
)

// Spec is a canonical job description. Two specs that canonicalize
// equal have the same Hash and therefore share one cache entry.
type Spec struct {
	Kind   Kind       `json:"kind"`
	Design DesignSpec `json:"design"`

	// Methodology applies to evaluate and sweep jobs; ladder jobs fix
	// their own methodology sequence (the section 3 rungs).
	Methodology MethSpec `json:"methodology"`

	// MaxStages is the deepest pipeline of a sweep job (default 8).
	MaxStages int `json:"max_stages,omitempty"`
	// Workload names the sweep's hazard/CPI model: dsp, integer, bus,
	// or flat (CPI 1). Default integer.
	Workload string `json:"workload,omitempty"`

	// Seed drives every stochastic step (placement, Monte Carlo).
	Seed int64 `json:"seed,omitempty"`
}

// DesignSpec names a workload generator from internal/circuits.
type DesignSpec struct {
	// Name is one of: datapath, chain, alu, cla, rca, csel, ks, mult,
	// wallace, shifter.
	Name string `json:"name"`
	// Width is the word width (default per design).
	Width int `json:"width,omitempty"`
	// Depth is the slice depth of datapath/chain designs (default 4).
	Depth int `json:"depth,omitempty"`
}

// MethSpec names a methodology: a base flow plus optional overrides.
type MethSpec struct {
	// Base is typical-asic, best-practice-asic, or full-custom.
	Base string `json:"base"`
	// Stages overrides the base pipeline depth when > 0.
	Stages int `json:"stages,omitempty"`
	// Sizing overrides the sizing discipline: wire-load, post-layout,
	// or continuous.
	Sizing string `json:"sizing,omitempty"`
	// Rating overrides the shipping policy: worst-case, tested, or
	// fast-bin.
	Rating string `json:"rating,omitempty"`
	// DominoFrac overrides the fraction of critical paths converted to
	// domino; nil keeps the base value.
	DominoFrac *float64 `json:"domino_frac,omitempty"`
	// DieSideMM overrides the die side when > 0 (0 derives it from the
	// design area).
	DieSideMM float64 `json:"die_side_mm,omitempty"`
}

// designDefaults gives the default width (and depth where applicable)
// per design name.
var designDefaults = map[string]struct{ width, depth int }{
	"datapath": {16, 4},
	"chain":    {16, 8},
	"alu":      {16, 0},
	"cla":      {32, 0},
	"rca":      {32, 0},
	"csel":     {32, 0},
	"ks":       {32, 0},
	"mult":     {8, 0},
	"wallace":  {8, 0},
	"shifter":  {32, 0},
}

// methBases maps accepted base names (including short aliases) to the
// canonical name.
var methBases = map[string]string{
	"typical-asic":       "typical-asic",
	"typical":            "typical-asic",
	"best-practice-asic": "best-practice-asic",
	"best-practice":      "best-practice-asic",
	"full-custom":        "full-custom",
	"custom":             "full-custom",
}

// Canon validates the spec and returns its canonical form: names
// lowercased and de-aliased, defaults filled in, and fields that the
// kind does not consume zeroed so they cannot split cache entries.
func (s Spec) Canon() (Spec, error) {
	c := s
	c.Kind = Kind(strings.ToLower(strings.TrimSpace(string(s.Kind))))
	switch c.Kind {
	case KindEvaluate, KindLadder, KindSweep:
	default:
		return c, fmt.Errorf("%w: unknown kind %q", ErrSpec, s.Kind)
	}

	c.Design.Name = strings.ToLower(strings.TrimSpace(s.Design.Name))
	def, ok := designDefaults[c.Design.Name]
	if !ok {
		return c, fmt.Errorf("%w: unknown design %q", ErrSpec, s.Design.Name)
	}
	if c.Design.Width < 0 || c.Design.Depth < 0 {
		return c, fmt.Errorf("%w: negative design dimensions", ErrSpec)
	}
	if c.Design.Width == 0 {
		c.Design.Width = def.width
	}
	if c.Design.Width > 64 {
		return c, fmt.Errorf("%w: design width %d exceeds limit 64", ErrSpec, c.Design.Width)
	}
	if def.depth == 0 {
		c.Design.Depth = 0
	} else {
		if c.Design.Depth == 0 {
			c.Design.Depth = def.depth
		}
		if c.Design.Depth > 16 {
			return c, fmt.Errorf("%w: design depth %d exceeds limit 16", ErrSpec, c.Design.Depth)
		}
	}

	switch c.Kind {
	case KindEvaluate:
		c.MaxStages = 0
		c.Workload = ""
	case KindLadder:
		// The ladder owns its methodology sequence.
		c.Methodology = MethSpec{}
		c.MaxStages = 0
		c.Workload = ""
	case KindSweep:
		if c.MaxStages == 0 {
			c.MaxStages = 8
		}
		if c.MaxStages < 1 || c.MaxStages > 16 {
			return c, fmt.Errorf("%w: max_stages %d out of range [1,16]", ErrSpec, c.MaxStages)
		}
		c.Workload = strings.ToLower(strings.TrimSpace(c.Workload))
		if c.Workload == "" {
			c.Workload = "integer"
		}
		if _, err := workloadCPI(c.Workload); err != nil {
			return c, err
		}
	}

	if c.Kind != KindLadder {
		mc, err := s.Methodology.canon()
		if err != nil {
			return c, err
		}
		c.Methodology = mc
	}
	return c, nil
}

func (ms MethSpec) canon() (MethSpec, error) {
	c := ms
	base := strings.ToLower(strings.TrimSpace(ms.Base))
	if base == "" {
		base = "typical-asic"
	}
	canonical, ok := methBases[base]
	if !ok {
		return c, fmt.Errorf("%w: unknown methodology base %q", ErrSpec, ms.Base)
	}
	c.Base = canonical
	if c.Stages < 0 || c.Stages > 16 {
		return c, fmt.Errorf("%w: stages %d out of range [0,16]", ErrSpec, c.Stages)
	}
	c.Sizing = strings.ToLower(strings.TrimSpace(ms.Sizing))
	switch c.Sizing {
	case "", "wire-load", "post-layout", "continuous":
	default:
		return c, fmt.Errorf("%w: unknown sizing %q", ErrSpec, ms.Sizing)
	}
	c.Rating = strings.ToLower(strings.TrimSpace(ms.Rating))
	switch c.Rating {
	case "", "worst-case", "tested", "fast-bin":
	default:
		return c, fmt.Errorf("%w: unknown rating %q", ErrSpec, ms.Rating)
	}
	if c.DominoFrac != nil && (*c.DominoFrac < 0 || *c.DominoFrac > 1) {
		return c, fmt.Errorf("%w: domino_frac %g out of range [0,1]", ErrSpec, *c.DominoFrac)
	}
	if c.DieSideMM < 0 || c.DieSideMM > 20 {
		return c, fmt.Errorf("%w: die_side_mm %g out of range [0,20]", ErrSpec, c.DieSideMM)
	}
	return c, nil
}

// Hash returns the content address of the canonical spec: the hex
// SHA-256 of its canonical JSON encoding. Identical evaluations —
// however they were phrased — share a hash, which is the cache and job
// registry key. Hash panics on a non-canonicalizable spec; call Canon
// first on untrusted input.
func (s Spec) Hash() string {
	c, err := s.Canon()
	if err != nil {
		panic(fmt.Sprintf("jobs: Hash on invalid spec: %v", err))
	}
	// encoding/json emits struct fields in declaration order, so the
	// encoding of a canonical spec is itself canonical.
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("jobs: canonical spec not marshalable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// BuildDesign resolves the design spec into a core.Design whose Build
// constructs a fresh netlist per call (no shared mutable state).
func (d DesignSpec) BuildDesign() (core.Design, error) {
	c := d
	if c.Width == 0 || (c.Depth == 0 && (c.Name == "datapath" || c.Name == "chain")) {
		// Fill defaults for direct callers that skipped Spec.Canon.
		if def, ok := designDefaults[c.Name]; ok {
			if c.Width == 0 {
				c.Width = def.width
			}
			if c.Depth == 0 {
				c.Depth = def.depth
			}
		}
	}
	b, err := designBuilder(c)
	if err != nil {
		return core.Design{}, err
	}
	return b, nil
}

// Resolve builds the concrete methodology the spec names, stamping the
// job seed into it. Libraries and sequential cells are constructed fresh
// so concurrent jobs never share anything mutable.
func (ms MethSpec) Resolve(seed int64) (core.Methodology, error) {
	c, err := ms.canon()
	if err != nil {
		return core.Methodology{}, err
	}
	var m core.Methodology
	switch c.Base {
	case "typical-asic":
		m = core.TypicalASIC2000()
	case "best-practice-asic":
		m = core.BestPracticeASIC()
	case "full-custom":
		m = core.FullCustom()
	}
	if c.Stages > 0 {
		m.Stages = c.Stages
	}
	switch c.Sizing {
	case "wire-load":
		m.Sizing = core.SizeDrives
	case "post-layout":
		m.Sizing = core.SizePostLayout
	case "continuous":
		m.Sizing = core.SizeContinuous
	}
	switch c.Rating {
	case "worst-case":
		m.Rating = core.RateWorstCase
	case "tested":
		m.Rating = core.RateTested
	case "fast-bin":
		m.Rating = core.RateFastBin
	}
	if c.DominoFrac != nil {
		m.DominoFrac = *c.DominoFrac
		if m.DominoFrac > 0 && !m.Library.HasDomino() {
			return m, fmt.Errorf("%w: methodology %s has no domino cells for domino_frac %g",
				ErrSpec, c.Base, m.DominoFrac)
		}
	}
	if c.DieSideMM > 0 {
		m.DieSideMM = c.DieSideMM
	}
	m.Seed = seed
	return m, nil
}

// workloadCPI maps a workload name to its CPI-vs-depth model.
func workloadCPI(name string) (func(stages int) float64, error) {
	switch name {
	case "dsp":
		return pipeline.DSPWorkload().CPI, nil
	case "integer":
		return pipeline.IntegerWorkload().CPI, nil
	case "bus":
		return pipeline.BusInterfaceWorkload().CPI, nil
	case "flat":
		return func(int) float64 { return 1 }, nil
	}
	return nil, fmt.Errorf("%w: unknown workload %q", ErrSpec, name)
}
