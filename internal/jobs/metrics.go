package jobs

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates service counters: job lifecycle counts, cache
// traffic, and latency histograms per job kind and per flow stage (the
// stages of core.EvaluateCtx, fed through core.WithStageObserver). All
// methods are safe for concurrent use; a zero value is not usable — call
// NewMetrics.
type Metrics struct {
	JobsStarted   atomic.Int64
	JobsCompleted atomic.Int64
	JobsFailed    atomic.Int64
	JobsTimedOut  atomic.Int64
	JobsPanicked  atomic.Int64
	CacheHits     atomic.Int64
	CacheMisses   atomic.Int64

	// Disk-tier (CAS store) counters: a CacheMiss that resolves from
	// the store is a CASHit (no recompute); CASMisses proceed to
	// compute; CASErrors count store reads/writes that failed or
	// decoded to a mismatched envelope. CASCorruptReads count reads on
	// the serve path that hit a record failing CRC/digest verification
	// (or an address still quarantined from a scrub) — treated as a
	// miss, never served, and routed through read-repair before a
	// recompute is admitted.
	CASHits         atomic.Int64
	CASMisses       atomic.Int64
	CASErrors       atomic.Int64
	CASCorruptReads atomic.Int64

	// Fault-handling counters (retry/backoff, watchdog, admission
	// control, circuit breaker, journal).
	JobsRetried   atomic.Int64 // transient failures given another attempt
	JobsShed      atomic.Int64 // submissions rejected by load shedding (429)
	JobsAbandoned atomic.Int64 // attempts the watchdog reclaimed from wedged workers

	BreakerTrips         atomic.Int64 // breaker transitions to open
	BreakerShortCircuits atomic.Int64 // submissions rejected by an open breaker

	JournalAccepted         atomic.Int64 // accept records fsynced
	JournalCompleted        atomic.Int64 // done records written
	JournalStored           atomic.Int64 // slim CAS-pointer records written
	JournalFailed           atomic.Int64 // terminal fail records written
	JournalErrors           atomic.Int64 // journal writes that failed (degraded durability)
	JournalReplayedDone     atomic.Int64 // completed results re-warmed from the journal
	JournalReplayedPending  atomic.Int64 // pending jobs re-executed from the journal
	JournalReplaysExhausted atomic.Int64 // poison jobs failed terminally after MaxReplayGenerations

	ReplicasStored atomic.Int64 // peer-computed results accepted by StoreResult

	mu    sync.Mutex
	hists map[string]*Histogram
}

// NewMetrics creates an empty metrics set.
func NewMetrics() *Metrics {
	return &Metrics{hists: make(map[string]*Histogram)}
}

// latencyBucketsMS are the upper bounds (milliseconds) of the shared
// histogram layout; the implicit final bucket is +Inf.
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// Observe records one latency sample under the named histogram
// (e.g. "job_evaluate" or "stage_floorplan").
func (m *Metrics) Observe(name string, d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h, ok := m.hists[name]
	if !ok {
		h = newHistogram()
		m.hists[name] = h
	}
	m.mu.Unlock()
	h.Observe(float64(d) / float64(time.Millisecond))
}

// StageObserver adapts the metrics set to core.WithStageObserver.
func (m *Metrics) StageObserver() func(stage string, elapsed time.Duration) {
	return func(stage string, elapsed time.Duration) {
		m.Observe("stage_"+stage, elapsed)
	}
}

// Snapshot renders every counter and histogram as a JSON-ready tree (the
// expvar-style payload of GET /metrics).
func (m *Metrics) Snapshot() map[string]any {
	jobs := map[string]any{
		"started":   m.JobsStarted.Load(),
		"completed": m.JobsCompleted.Load(),
		"failed":    m.JobsFailed.Load(),
		"timed_out": m.JobsTimedOut.Load(),
		"panicked":  m.JobsPanicked.Load(),
		"retried":   m.JobsRetried.Load(),
		"shed":      m.JobsShed.Load(),
		"abandoned": m.JobsAbandoned.Load(),
	}
	cache := map[string]any{
		"hits":            m.CacheHits.Load(),
		"misses":          m.CacheMisses.Load(),
		"replicas_stored": m.ReplicasStored.Load(),
	}
	cas := map[string]any{
		"hits":          m.CASHits.Load(),
		"misses":        m.CASMisses.Load(),
		"errors":        m.CASErrors.Load(),
		"corrupt_reads": m.CASCorruptReads.Load(),
	}
	breaker := map[string]any{
		"trips":          m.BreakerTrips.Load(),
		"short_circuits": m.BreakerShortCircuits.Load(),
	}
	journal := map[string]any{
		"accepted":          m.JournalAccepted.Load(),
		"completed":         m.JournalCompleted.Load(),
		"stored":            m.JournalStored.Load(),
		"failed":            m.JournalFailed.Load(),
		"errors":            m.JournalErrors.Load(),
		"replayed_done":     m.JournalReplayedDone.Load(),
		"replayed_pending":  m.JournalReplayedPending.Load(),
		"replays_exhausted": m.JournalReplaysExhausted.Load(),
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.hists))
	for name := range m.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	lat := make(map[string]any, len(names))
	for _, name := range names {
		lat[name] = m.hists[name].snapshot()
	}
	m.mu.Unlock()
	return map[string]any{
		"jobs":       jobs,
		"cache":      cache,
		"cas":        cas,
		"breaker":    breaker,
		"journal":    journal,
		"latency_ms": lat,
	}
}

// ServiceCounters snapshots the fault-handling counters into the form
// job-result envelopes carry (Result.Service), so a -json CLI run and a
// gapd HTTP response expose the same keys.
func (m *Metrics) ServiceCounters() *ServiceCounters {
	if m == nil {
		return &ServiceCounters{}
	}
	return &ServiceCounters{
		Retries:         m.JobsRetried.Load(),
		Shed:            m.JobsShed.Load(),
		BreakerTrips:    m.BreakerTrips.Load(),
		JournalReplayed: m.JournalReplayedDone.Load() + m.JournalReplayedPending.Load(),
	}
}

// Histogram is a fixed-bucket latency histogram in milliseconds.
type Histogram struct {
	mu     sync.Mutex
	counts []int64 // one per bucket bound, plus trailing +Inf bucket
	count  int64
	sumMS  float64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]int64, len(latencyBucketsMS)+1)}
}

// Observe records one sample in milliseconds.
func (h *Histogram) Observe(ms float64) {
	i := sort.SearchFloat64s(latencyBucketsMS, ms)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sumMS += ms
	h.mu.Unlock()
}

// snapshot renders cumulative bucket counts, Prometheus-style.
func (h *Histogram) snapshot() map[string]any {
	h.mu.Lock()
	defer h.mu.Unlock()
	buckets := make([]map[string]any, 0, len(h.counts))
	cum := int64(0)
	for i, c := range h.counts {
		cum += c
		le := "+Inf"
		if i < len(latencyBucketsMS) {
			le = strconv.FormatFloat(latencyBucketsMS[i], 'f', -1, 64)
		}
		buckets = append(buckets, map[string]any{"le": le, "count": cum})
	}
	return map[string]any{
		"count":   h.count,
		"sum_ms":  h.sumMS,
		"buckets": buckets,
	}
}
