package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
)

// ErrSpec marks failures caused by the job specification itself (as
// opposed to the flow computation), so callers — the HTTP layer in
// particular — can report them as client errors.
var ErrSpec = errors.New("invalid job spec")

// RunService executes one spec through a single-shot pool, so CLI
// callers get the same retry/backoff, watchdog, and panic-fence
// behaviour as the gapd daemon, and the returned envelope carries the
// attempt count and service counters (retries, sheds, breaker trips,
// journal replays) that gapd's own responses report.
func RunService(ctx context.Context, s Spec, parallelism int) (*Result, error) {
	p := NewPool(Options{Workers: 1, Parallelism: parallelism})
	return p.Do(ctx, s)
}

// Run executes one canonical spec and fills the matching payload.
// parallelism bounds the concurrent flow evaluations inside ladder and
// sweep jobs (1 = serial; the results are identical either way, because
// both paths share core's rung table and assembly arithmetic).
func Run(ctx context.Context, s Spec, parallelism int) (*Result, error) {
	// Canon, BuildDesign, Resolve, and workloadCPI wrap ErrSpec at the
	// validation site, so their errors arrive pre-classified.
	c, err := s.Canon()
	if err != nil {
		return nil, err
	}
	d, err := c.Design.BuildDesign()
	if err != nil {
		return nil, err
	}
	res := &Result{ID: c.Hash(), Kind: c.Kind, Spec: c}
	start := time.Now()
	switch c.Kind {
	case KindEvaluate:
		m, err := c.Methodology.Resolve(c.Seed)
		if err != nil {
			return nil, err
		}
		ev, err := core.EvaluateCtx(ctx, d, m)
		if err != nil {
			return nil, err
		}
		res.Evaluation = &ev
	case KindLadder:
		l, err := ParallelLadder(ctx, d, c.Seed, parallelism)
		if err != nil {
			return nil, err
		}
		res.Ladder = &l
	case KindSweep:
		m, err := c.Methodology.Resolve(c.Seed)
		if err != nil {
			return nil, err
		}
		cpi, err := workloadCPI(c.Workload)
		if err != nil {
			return nil, err
		}
		points, err := ParallelSweep(ctx, d, m, c.MaxStages, cpi, parallelism)
		if err != nil {
			return nil, err
		}
		res.Sweep = points
	default:
		return nil, fmt.Errorf("%w: kind %q is not executable", ErrSpec, c.Kind)
	}
	res.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return res, nil
}

// ParallelLadder measures the section 3 factor ladder with the rung
// evaluations running concurrently. Each rung's cumulative methodology
// comes from core.LadderMethodologies and the multipliers from
// core.AssembleLadder — the same table and arithmetic as the serial
// core.FactorLadder — so the result is rung-for-rung identical; only the
// wall-clock differs.
func ParallelLadder(ctx context.Context, d core.Design, seed int64, workers int) (core.Ladder, error) {
	baseM, rungMs := core.LadderMethodologies(seed)
	all := make([]core.Methodology, 0, 1+len(rungMs))
	all = append(all, baseM)
	all = append(all, rungMs...)
	evals := make([]core.Evaluation, len(all))
	err := forEachLimited(ctx, workers, len(all), func(ctx context.Context, i int) error {
		ev, err := core.EvaluateCtx(ctx, d, all[i])
		if err != nil {
			if i == 0 {
				return fmt.Errorf("jobs: ladder baseline: %w", err)
			}
			return fmt.Errorf("jobs: ladder rung %s: %w", core.Rungs()[i-1].Name, err)
		}
		evals[i] = ev
		return nil
	})
	if err != nil {
		return core.Ladder{}, err
	}
	return core.AssembleLadder(d.Name, evals[0], evals[1:]), nil
}

// ParallelSweep evaluates pipeline depths 1..maxStages concurrently and
// scores them with core.ScoreSweep, matching core.DepthSweep exactly.
func ParallelSweep(ctx context.Context, d core.Design, m core.Methodology, maxStages int, cpi func(stages int) float64, workers int) ([]core.DepthPoint, error) {
	if maxStages < 1 {
		return nil, fmt.Errorf("%w: sweep needs maxStages >= 1", ErrSpec)
	}
	evals := make([]core.Evaluation, maxStages)
	err := forEachLimited(ctx, workers, maxStages, func(ctx context.Context, i int) error {
		mm := m
		mm.Stages = i + 1
		ev, err := core.EvaluateCtx(ctx, d, mm)
		if err != nil {
			return fmt.Errorf("jobs: sweep at %d stages: %w", i+1, err)
		}
		evals[i] = ev
		return nil
	})
	if err != nil {
		return nil, err
	}
	return core.ScoreSweep(evals, cpi), nil
}

// forEachLimited runs fn(ctx, i) for i in [0, n) on at most `workers`
// goroutines. The first failure cancels the remaining work. The reported
// error prefers a real failure over the cancellations it caused.
func forEachLimited(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Each unit runs behind its own panic fence: a panic in one rung or
	// sweep-point evaluation (a bug, or injected chaos) fails that unit
	// with a typed, retryable error instead of crashing the process —
	// the inner goroutines here are outside the pool's own recover.
	runUnit := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%w: %v\n%s", ErrPanicked, r, debug.Stack())
			}
		}()
		return fn(ctx, i)
	}

	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if errs[i] = runUnit(i); errs[i] != nil {
					cancel()
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	var firstCancel error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if !errors.Is(e, context.Canceled) {
			return e
		}
		if firstCancel == nil {
			firstCancel = e
		}
	}
	if firstCancel != nil {
		return firstCancel
	}
	return ctx.Err()
}
