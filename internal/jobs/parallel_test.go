package jobs

import (
	"context"
	"testing"

	"repro/internal/core"
)

// TestParallelLadderMatchesSerial is the determinism acceptance test: the
// concurrent ladder driver must reproduce the serial core.FactorLadder
// rung for rung — same names, same multipliers, same shipped clocks —
// because both consume core.Rungs and core.AssembleLadder.
func TestParallelLadderMatchesSerial(t *testing.T) {
	d, err := DesignSpec{Name: "datapath", Width: 8, Depth: 2}.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	const seed = 11
	serial, err := core.FactorLadder(d, seed)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelLadder(context.Background(), d, seed, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Design != serial.Design {
		t.Errorf("design %q != %q", par.Design, serial.Design)
	}
	if par.Baseline.ShippedMHz != serial.Baseline.ShippedMHz {
		t.Errorf("baseline %.6f != %.6f", par.Baseline.ShippedMHz, serial.Baseline.ShippedMHz)
	}
	if len(par.Steps) != len(serial.Steps) {
		t.Fatalf("step count %d != %d", len(par.Steps), len(serial.Steps))
	}
	for i := range serial.Steps {
		s, p := serial.Steps[i], par.Steps[i]
		if p.Name != s.Name {
			t.Errorf("rung %d name %q != %q", i, p.Name, s.Name)
		}
		if p.Mult != s.Mult {
			t.Errorf("rung %s mult %.9f != serial %.9f", s.Name, p.Mult, s.Mult)
		}
		if p.Eval.ShippedMHz != s.Eval.ShippedMHz {
			t.Errorf("rung %s shipped %.6f != serial %.6f", s.Name, p.Eval.ShippedMHz, s.Eval.ShippedMHz)
		}
	}
	if par.Total() != serial.Total() {
		t.Errorf("total %.9f != %.9f", par.Total(), serial.Total())
	}
}

// TestParallelSweepMatchesSerial checks the concurrent depth sweep against
// core.DepthSweep point for point.
func TestParallelSweepMatchesSerial(t *testing.T) {
	d, err := DesignSpec{Name: "datapath", Width: 8, Depth: 2}.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	m, err := MethSpec{Base: "best-practice"}.Resolve(5)
	if err != nil {
		t.Fatal(err)
	}
	cpi, err := workloadCPI("integer")
	if err != nil {
		t.Fatal(err)
	}
	const maxStages = 6
	serial, err := core.DepthSweep(d, m, maxStages, cpi)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelSweep(context.Background(), d, m, maxStages, cpi, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("point count %d != %d", len(par), len(serial))
	}
	for i := range serial {
		if par[i].Stages != serial[i].Stages {
			t.Errorf("point %d stages %d != %d", i, par[i].Stages, serial[i].Stages)
		}
		if par[i].Eval.ShippedMHz != serial[i].Eval.ShippedMHz {
			t.Errorf("stage %d shipped %.6f != %.6f", serial[i].Stages, par[i].Eval.ShippedMHz, serial[i].Eval.ShippedMHz)
		}
		if par[i].ThroughputRel != serial[i].ThroughputRel {
			t.Errorf("stage %d throughput %.9f != %.9f", serial[i].Stages, par[i].ThroughputRel, serial[i].ThroughputRel)
		}
	}
}

// TestForEachLimitedReportsRealError checks the helper prefers a genuine
// failure over the cancellations it caused.
func TestForEachLimitedReportsRealError(t *testing.T) {
	err := forEachLimited(context.Background(), 4, 16, func(ctx context.Context, i int) error {
		if i == 3 {
			return errFake
		}
		return nil
	})
	if err != errFake {
		t.Errorf("err = %v, want errFake", err)
	}
}

// TestForEachLimitedHonorsCancel checks an already-cancelled context short
// circuits without running work.
func TestForEachLimitedHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := forEachLimited(ctx, 2, 8, func(ctx context.Context, i int) error {
		ran = true
		return nil
	})
	if err == nil {
		t.Error("cancelled context reported success")
	}
	_ = ran // workers may observe cancellation before or after a first item
}

var errFake = errFakeType{}

type errFakeType struct{}

func (errFakeType) Error() string { return "fake failure" }
