package jobs

import (
	"context"
	"testing"

	"repro/internal/cas"
)

// benchSpec is one cheap evaluate, canonicalized once.
func benchSpec(b *testing.B, seed int64) Spec {
	b.Helper()
	c, err := Spec{
		Kind:        KindEvaluate,
		Design:      DesignSpec{Name: "datapath", Width: 8, Depth: 2},
		Methodology: MethSpec{Base: "typical"},
		Seed:        seed,
	}.Canon()
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkTierHitRAM measures a full Pool.Do round trip answered from
// the RAM cache — canonicalization, hash, sketch touch, LRU hit,
// envelope copy. The baseline the disk tier is compared against.
func BenchmarkTierHitRAM(b *testing.B) {
	s, err := cas.Open(cas.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	p := NewPool(Options{Workers: 1, BreakerThreshold: -1, Store: s})
	spec := benchSpec(b, 1)
	if _, err := p.Do(context.Background(), spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Do(context.Background(), spec)
		if err != nil || !res.Cached {
			b.Fatalf("not a cache hit: %v", err)
		}
	}
}

// BenchmarkTierHitCAS measures the same round trip answered from the
// disk tier: RAM miss, segment ReadAt, CRC + SHA-256 verification,
// JSON decode of the stored envelope. The cache is disabled so every
// iteration exercises the store path — the number to hold against
// BenchmarkTierHitRAM when deciding how much RAM the cache deserves.
func BenchmarkTierHitCAS(b *testing.B) {
	s, err := cas.Open(cas.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	warm := NewPool(Options{Workers: 1, BreakerThreshold: -1, Store: s})
	spec := benchSpec(b, 1)
	if _, err := warm.Do(context.Background(), spec); err != nil {
		b.Fatal(err)
	}
	// CacheEntries < 0 disables the RAM tier: every Do is a CAS hit.
	p := NewPool(Options{Workers: 1, CacheEntries: -1, BreakerThreshold: -1, Store: s})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Do(context.Background(), spec)
		if err != nil || !res.Cached {
			b.Fatalf("not a store hit: %v", err)
		}
	}
}
