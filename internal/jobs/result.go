package jobs

import (
	"repro/internal/core"
)

// Result is the one envelope every evaluation produces, whether it ran
// through the HTTP service or a CLI's -json flag — which is what makes
// the two diffable. Exactly one payload field is set, matching Kind.
// Results are immutable once published: the cache and concurrent readers
// share them.
type Result struct {
	// ID is the content address (Spec.Hash) of the canonical spec.
	ID   string `json:"id"`
	Kind Kind   `json:"kind"`
	// Spec is the canonical spec that produced the payload.
	Spec Spec `json:"spec"`

	// Cached reports that this response was served from the result
	// cache rather than recomputed.
	Cached bool `json:"cached,omitempty"`
	// ElapsedMS is the wall-clock compute time of the original run.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// Attempts counts pool attempts behind this result (1 = the first
	// try succeeded; >1 means transient failures were retried).
	Attempts int `json:"attempts,omitempty"`
	// Service snapshots the service's fault-handling counters when the
	// envelope was produced (see ServiceCounters).
	Service *ServiceCounters `json:"service,omitempty"`

	Evaluation *core.Evaluation  `json:"evaluation,omitempty"`
	Ladder     *core.Ladder      `json:"ladder,omitempty"`
	Sweep      []core.DepthPoint `json:"sweep,omitempty"`

	// Tables carries named scalar results for CLI-only kinds (e.g.
	// procvar Monte Carlo summaries) that have no structured payload.
	Tables map[string]float64 `json:"tables,omitempty"`
}

// ServiceCounters is the fault-handling slice of the service metrics
// every result envelope carries: the same retry/shed/breaker/journal
// numbers GET /metrics reports, at the moment the envelope was built.
// CLI -json runs carry it too (all zeros for a clean direct run), so
// envelopes from either path stay diffable key-for-key.
type ServiceCounters struct {
	Retries         int64 `json:"retries"`
	Shed            int64 `json:"shed"`
	BreakerTrips    int64 `json:"breaker_trips"`
	JournalReplayed int64 `json:"journal_replayed"`
}

// shallowCopy returns a copy of r suitable for mutating envelope fields
// (Cached) without touching the shared cached value. Payloads stay
// shared and must be treated as immutable.
func (r *Result) shallowCopy() *Result {
	cp := *r
	return &cp
}

// Normalized returns a copy with the run-dependent envelope fields
// (Cached, ElapsedMS, Attempts, Service) zeroed, leaving only the
// deterministic content: spec, id, and payload. Two runs of the same
// spec — serial or parallel, fresh or recovered from a journal — must
// produce byte-identical JSON for their normalized results; the chaos
// and recovery suites assert exactly that.
func (r *Result) Normalized() *Result {
	cp := r.shallowCopy()
	cp.Cached = false
	cp.ElapsedMS = 0
	cp.Attempts = 0
	cp.Service = nil
	return cp
}
