package jobs

import (
	"repro/internal/core"
)

// Result is the one envelope every evaluation produces, whether it ran
// through the HTTP service or a CLI's -json flag — which is what makes
// the two diffable. Exactly one payload field is set, matching Kind.
// Results are immutable once published: the cache and concurrent readers
// share them.
type Result struct {
	// ID is the content address (Spec.Hash) of the canonical spec.
	ID   string `json:"id"`
	Kind Kind   `json:"kind"`
	// Spec is the canonical spec that produced the payload.
	Spec Spec `json:"spec"`

	// Cached reports that this response was served from the result
	// cache rather than recomputed.
	Cached bool `json:"cached,omitempty"`
	// ElapsedMS is the wall-clock compute time of the original run.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`

	Evaluation *core.Evaluation  `json:"evaluation,omitempty"`
	Ladder     *core.Ladder      `json:"ladder,omitempty"`
	Sweep      []core.DepthPoint `json:"sweep,omitempty"`

	// Tables carries named scalar results for CLI-only kinds (e.g.
	// procvar Monte Carlo summaries) that have no structured payload.
	Tables map[string]float64 `json:"tables,omitempty"`
}

// shallowCopy returns a copy of r suitable for mutating envelope fields
// (Cached) without touching the shared cached value. Payloads stay
// shared and must be treated as immutable.
func (r *Result) shallowCopy() *Result {
	cp := *r
	return &cp
}
