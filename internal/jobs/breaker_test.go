package jobs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestBreakerReleaseFreesProbe: a half-open probe that ends without a
// recordable outcome must free the probe slot via Release, so the next
// submission can probe instead of being rejected until restart.
func TestBreakerReleaseFreesProbe(t *testing.T) {
	b := newBreaker(1, 10*time.Millisecond)
	now := time.Now()
	if tripped := b.Record(false, now); !tripped {
		t.Fatal("threshold-1 failure did not trip the breaker")
	}
	if ok, _ := b.Allow(now); ok {
		t.Fatal("open breaker inside cooldown allowed a job")
	}
	later := now.Add(20 * time.Millisecond)
	ok, probe := b.Allow(later)
	if !ok || !probe {
		t.Fatalf("Allow after cooldown = (%v, %v), want a half-open probe", ok, probe)
	}
	if ok, _ := b.Allow(later); ok {
		t.Fatal("second probe admitted while the first is in flight")
	}
	// The probe ends with no outcome (join / cancel / spec error):
	// Release must hand the slot to the next submission.
	b.Release()
	ok, probe = b.Allow(later)
	if !ok || !probe {
		t.Fatalf("Allow after Release = (%v, %v), want a fresh probe", ok, probe)
	}
	b.Record(true, later)
	if b.State() != breakerClosed {
		t.Errorf("state after successful probe = %s", b.State())
	}
}

// TestBreakerProbeReleasedWithoutOutcome is the pool-level regression
// for the probe leak: a half-open probe whose failure is not the kind's
// fault (here a spec error, which the breaker never records) must not
// pin the breaker half-open — the next submission probes and a healthy
// backend closes the breaker.
func TestBreakerProbeReleasedWithoutOutcome(t *testing.T) {
	p := NewPool(Options{
		Workers: 2, MaxAttempts: 1,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
	})
	mode := "fail" // Do calls below are sequential; no locking needed
	p.runFn = func(ctx context.Context, c Spec, _ int) (*Result, error) {
		switch mode {
		case "fail":
			return nil, fmt.Errorf("%w: backend down", ErrTransient)
		case "spec":
			return nil, fmt.Errorf("%w: malformed netlist", ErrSpec)
		}
		return &Result{ID: c.Hash(), Kind: c.Kind, Spec: c}, nil
	}

	for i := 0; i < 2; i++ {
		if _, err := p.Do(context.Background(), smallEval(int64(i))); err == nil {
			t.Fatal("expected failure while tripping the breaker")
		}
	}
	if open, _ := p.BreakerOpen(); !open {
		t.Fatal("breaker did not trip")
	}

	// After the cooldown the half-open probe runs but ends in a spec
	// error — no breaker outcome is recorded.
	time.Sleep(30 * time.Millisecond)
	mode = "spec"
	if _, err := p.Do(context.Background(), smallEval(10)); !errors.Is(err, ErrSpec) {
		t.Fatalf("probe err = %v, want ErrSpec", err)
	}

	// Before the fix the probe slot leaked here and every further
	// submission of the kind got ErrBreakerOpen until restart.
	mode = "ok"
	if _, err := p.Do(context.Background(), smallEval(11)); err != nil {
		t.Fatalf("submission after unrecorded probe rejected: %v", err)
	}
	if open, _ := p.BreakerOpen(); open {
		t.Error("breaker still open after successful follow-up probe")
	}
}

// TestCallerDeadlineDoesNotTripBreaker: a client deadline shorter than
// JobTimeout means the caller hung up — classified canceled, so it must
// not count as a timeout or feed the kind's breaker.
func TestCallerDeadlineDoesNotTripBreaker(t *testing.T) {
	p := NewPool(Options{
		Workers: 1, MaxAttempts: 3,
		JobTimeout:       time.Second,
		BreakerThreshold: 1,
		RetryBase:        time.Millisecond, RetryMax: time.Millisecond,
	})
	p.runFn = func(ctx context.Context, c Spec, _ int) (*Result, error) {
		<-ctx.Done() // slow but healthy: honours cancellation
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := p.Do(ctx, smallEval(1))
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if class := Classify(ctx, err); class != ClassCanceled {
		t.Errorf("class = %s, want canceled (the caller's deadline, not the attempt's)", class)
	}
	if open, kinds := p.BreakerOpen(); open {
		t.Errorf("an impatient client tripped the breaker: %v", kinds)
	}
	if got := p.Metrics().BreakerTrips.Load(); got != 0 {
		t.Errorf("breaker trips = %d, want 0", got)
	}
	if got := p.Metrics().JobsTimedOut.Load(); got != 0 {
		t.Errorf("timeouts = %d, want 0 (the job did not exceed JobTimeout)", got)
	}
}
