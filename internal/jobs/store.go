package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"repro/internal/cas"
)

// This file is the glue between the pool and the disk tier
// (internal/cas): results are persisted as content-addressed records —
// the canonical spec hash is the address, the normalized JSON envelope
// is the body — so a restart rebuilds the full result corpus from the
// segment index without recomputing anything, and the RAM cache
// becomes a promotion tier over the store rather than the only copy.

// Store returns the pool's disk-tier result store, or nil when the
// pool runs RAM-only.
func (p *Pool) Store() *cas.Store { return p.store }

// storeGet reads and decodes the stored result for a content address.
// The store verifies CRC and SHA-256 on read; this layer additionally
// rejects an envelope whose ID disagrees with its address, so a stored
// body can never surface under the wrong key.
func (p *Pool) storeGet(id string) (*Result, bool) {
	res, err := p.storeGetE(id)
	return res, err == nil
}

// storeGetE is storeGet with the failure class preserved: ErrNotFound
// for an absent address, anything else for a record that existed but
// failed verification — the signal Do routes through read-repair.
func (p *Pool) storeGetE(id string) (*Result, error) {
	if p.store == nil {
		return nil, cas.ErrNotFound
	}
	body, err := p.store.GetE(id)
	if err != nil {
		return nil, err
	}
	var res Result
	if uerr := json.Unmarshal(body, &res); uerr != nil || res.ID != id {
		// The bytes verified but the envelope is wrong — a writer bug,
		// not bit rot. Counted as a CAS error and treated as corrupt so
		// the repair path can fetch a sane copy.
		p.metrics.CASErrors.Add(1)
		return nil, fmt.Errorf("cas: stored envelope does not decode to its address %s", id[:min(12, len(id))])
	}
	return &res, nil
}

// storePut persists the result's normalized envelope under its content
// address. Returns after the record is durably on disk (group-committed
// fsync inside the store).
func (p *Pool) storePut(res *Result) error {
	if p.store == nil || res == nil || res.ID == "" {
		return nil
	}
	body, err := json.Marshal(res.Normalized())
	if err != nil {
		return err
	}
	return p.store.Put(res.ID, body)
}

// persistResult makes a completed result durable. With a store, the
// body goes into the CAS (fsynced) and the journal records only a slim
// "stored" line — the journal is then a write-ahead log, not the result
// archive, and compaction can truncate it to pointers. Without a store
// (or when the store write fails) the full result is journaled as a
// done record, the pre-store behavior.
func (p *Pool) persistResult(id string, res *Result) {
	if p.store != nil {
		if err := p.storePut(res); err == nil {
			p.journalStored(id)
			return
		}
		p.metrics.CASErrors.Add(1)
	}
	p.journalDone(id, res)
}

// SetReadRepair installs the read-repair hook — in production, the
// cluster layer's replica fetch (digest and content-address verified
// on its side of the wire). When a store read finds a corrupt or
// quarantined record, Do consults the hook before admitting a
// recompute; a repaired result is re-verified, re-Put into the local
// store (clearing the quarantine), and served as a cached hit. Install
// before traffic starts; a nil hook disables repair.
func (p *Pool) SetReadRepair(fn func(ctx context.Context, id string) (*Result, bool)) {
	p.mu.Lock()
	p.repair = fn
	p.mu.Unlock()
}

// readRepair runs the installed hook for id and adopts the fetched
// result after verifying it the same way StoreResult verifies a
// replica write: the payload's canonical spec must hash to the
// address. Adoption persists the body (the re-Put that heals the
// quarantine) and promotes it to RAM.
func (p *Pool) readRepair(ctx context.Context, id string) (*Result, bool) {
	p.mu.Lock()
	fn := p.repair
	p.mu.Unlock()
	if fn == nil {
		return nil, false
	}
	res, ok := fn(ctx, id)
	if !ok || res == nil || res.ID != id {
		return nil, false
	}
	canon, err := res.Spec.Canon()
	if err != nil || canon.Hash() != id {
		p.metrics.CASErrors.Add(1)
		return nil, false
	}
	cp := res.Normalized()
	p.cache.Put(cp.ID, cp)
	p.persistResult(cp.ID, cp)
	return cp, true
}

// probeCorrupt classifies a failed store read: true when the address
// held a record that failed verification, or is still quarantined from
// an earlier condemnation (by scrub, read, or compaction) — the cases
// where a replica fetch should precede a recompute.
func (p *Pool) probeCorrupt(readErr error, id string) bool {
	if p.store == nil {
		return false
	}
	if readErr != nil && !errors.Is(readErr, cas.ErrNotFound) {
		return true
	}
	return p.store.Quarantined(id)
}

// FindStored resolves a content address through every durable tier:
// RAM cache, then the CAS store, then the journal's done records. The
// read path behind GET /v1/results/{id} and replica fetches.
func (p *Pool) FindStored(id string) (*Result, bool) {
	if res, ok := p.cache.Get(id); ok {
		return res, true
	}
	if res, ok := p.storeGet(id); ok {
		return res, true
	}
	if j := p.opt.Journal; j != nil {
		return j.FindResult(id)
	}
	return nil, false
}

// HasStored reports whether the id resolves in RAM or on disk without
// reading the body — the cheap membership check replica GETs use.
func (p *Pool) HasStored(id string) bool {
	if _, ok := p.cache.Get(id); ok {
		return true
	}
	return p.store != nil && p.store.Has(id)
}

// StoredView is the cluster-facing result set: the union of the RAM
// cache and the disk store. It satisfies the cluster layer's ResultStore
// contract structurally (jobs does not import cluster), so anti-entropy
// repair and ownership handoff walk the full durable corpus, not just
// what happens to be hot in RAM.
type StoredView struct{ p *Pool }

// StoredView returns the pool's cluster-facing result set.
func (p *Pool) StoredView() *StoredView { return &StoredView{p: p} }

// Keys snapshots every stored content address, deduplicated and sorted
// for deterministic repair sweeps.
func (v *StoredView) Keys() []string {
	seen := map[string]bool{}
	var keys []string
	for _, k := range v.p.cache.Keys() {
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	if v.p.store != nil {
		for _, k := range v.p.store.Keys() { // already sorted
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// Get resolves a content address from RAM or disk (not the journal —
// repair sweeps are hot-path reads; the journal backstop stays behind
// FindStored).
func (v *StoredView) Get(id string) (*Result, bool) {
	if res, ok := v.p.cache.Get(id); ok {
		return res, true
	}
	return v.p.storeGet(id)
}
