package jobs

import (
	"container/list"
	"sync"
)

// Cache is a content-addressed LRU result cache: keys are canonical spec
// hashes, so two jobs that describe the same flow evaluation — however
// phrased — share one entry and the second is never recomputed. Safe for
// concurrent use.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
	// admit, when set, gates inserts at capacity: the candidate key is
	// admitted only if admit(candidate, victim) is true, where victim is
	// the LRU entry it would displace. Nil admits everything (plain LRU).
	admit func(candidate, victim string) bool
}

type cacheEntry struct {
	key string
	res *Result
}

// NewCache creates a cache holding up to capacity results. A capacity
// <= 0 disables caching (every Get misses, Put is a no-op).
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the cached result for key, marking it most recently used.
func (c *Cache) Get(key string) (*Result, bool) {
	if c == nil || c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// Put stores the result under key, evicting the least recently used
// entry when full. The cache takes shared ownership: callers must not
// mutate res afterwards.
func (c *Cache) Put(key string, res *Result) {
	if c == nil || c.cap <= 0 || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	if c.admit != nil && c.order.Len() >= c.cap {
		if victim := c.order.Back(); victim != nil &&
			!c.admit(key, victim.Value.(*cacheEntry).key) {
			return // the victim is hotter; the candidate stays disk-only
		}
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// SetAdmission installs the admission policy consulted when a Put at
// capacity would evict the LRU victim (TinyLFU-style: the disk tier's
// frequency sketch decides promotion). Call before the cache is shared;
// nil restores plain LRU.
func (c *Cache) SetAdmission(admit func(candidate, victim string) bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.admit = admit
	c.mu.Unlock()
}

// Keys snapshots the cached content addresses, most recently used
// first. The anti-entropy repair loop walks this to find results whose
// replica sets may have holes after a partition.
func (c *Cache) Keys() []string {
	if c == nil || c.cap <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*cacheEntry).key)
	}
	return keys
}

// Len reports the number of cached results.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Cap reports the cache capacity.
func (c *Cache) Cap() int {
	if c == nil {
		return 0
	}
	return c.cap
}
