package jobs

import (
	"sync"
	"time"
)

// breakerState is a circuit breaker's position.
type breakerState string

const (
	breakerClosed   breakerState = "closed"
	breakerOpen     breakerState = "open"
	breakerHalfOpen breakerState = "half-open"
)

// breaker is a per-job-kind circuit breaker: after Threshold consecutive
// non-spec failures it opens and rejects submissions of that kind for
// Cooldown, then half-opens to let one probe job through. The probe's
// outcome closes or re-opens it. Spec errors never count — a client
// posting garbage must not take the kind down for everyone else.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, state: breakerClosed}
}

// Allow reports whether a job may run now. In half-open state only one
// probe is admitted at a time; probe is true when this call took the
// probe slot, and the caller must then end the probe with Record (an
// outcome) or Release (no outcome — the job joined an in-flight twin,
// the caller hung up, or the failure was not the kind's fault). A probe
// left dangling would pin the breaker half-open and reject the kind
// forever.
func (b *breaker) Allow(now time.Time) (allowed, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	case breakerHalfOpen:
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
	return true, false
}

// Release ends a half-open probe that finished without a recordable
// outcome, freeing the probe slot so the next submission can probe
// instead of being rejected until restart.
func (b *breaker) Release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
	}
}

// Record reports a finished job's outcome. Returns true when this
// outcome tripped the breaker open (for metrics).
func (b *breaker) Record(ok bool, now time.Time) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = breakerClosed
		b.failures = 0
		b.probing = false
		return false
	}
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: straight back to open.
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		return true
	default:
		b.failures++
		if b.state == breakerClosed && b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			return true
		}
	}
	return false
}

// State snapshots the breaker's position.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
