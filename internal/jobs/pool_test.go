package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// smallEval is a cheap evaluate spec for pool plumbing tests.
func smallEval(seed int64) Spec {
	return Spec{
		Kind:        KindEvaluate,
		Design:      DesignSpec{Name: "datapath", Width: 8, Depth: 2},
		Methodology: MethSpec{Base: "typical"},
		Seed:        seed,
	}
}

func TestPoolCachesIdenticalSpecs(t *testing.T) {
	p := NewPool(Options{Workers: 2})
	ctx := context.Background()

	r1, err := p.Do(ctx, smallEval(1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Error("first run reported cached")
	}
	r2, err := p.Do(ctx, smallEval(1))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("identical rerun was not a cache hit")
	}
	if r1.Evaluation.ShippedMHz != r2.Evaluation.ShippedMHz {
		t.Error("cache returned a different evaluation")
	}
	if hits := p.Metrics().CacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d", hits)
	}
	if done := p.Metrics().JobsCompleted.Load(); done != 1 {
		t.Errorf("jobs completed = %d, want 1", done)
	}
}

func TestPoolDeduplicatesInflight(t *testing.T) {
	p := NewPool(Options{Workers: 4})
	started := make(chan struct{})
	release := make(chan struct{})
	var runs int
	var mu sync.Mutex
	p.runFn = func(ctx context.Context, c Spec, _ int) (*Result, error) {
		mu.Lock()
		runs++
		mu.Unlock()
		close(started)
		<-release
		return &Result{ID: c.Hash(), Kind: c.Kind, Spec: c}, nil
	}

	var wg sync.WaitGroup
	results := make([]*Result, 2)
	errs := make([]error, 2)
	wg.Add(1)
	go func() { defer wg.Done(); results[0], errs[0] = p.Do(context.Background(), smallEval(1)) }()
	<-started
	wg.Add(1)
	go func() { defer wg.Done(); results[1], errs[1] = p.Do(context.Background(), smallEval(1)) }()
	// Give the joiner a moment to attach to the in-flight job.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			t.Fatalf("do %d: %v", i, errs[i])
		}
		if results[i] == nil {
			t.Fatalf("do %d returned nil", i)
		}
	}
	if runs != 1 {
		t.Errorf("identical in-flight specs ran %d times, want 1", runs)
	}
}

func TestPoolRecoversPanics(t *testing.T) {
	p := NewPool(Options{Workers: 1, MaxAttempts: 1})
	p.runFn = func(context.Context, Spec, int) (*Result, error) {
		panic("boom")
	}
	_, err := p.Do(context.Background(), smallEval(1))
	if err == nil || !errors.Is(err, ErrPanicked) {
		t.Fatalf("err = %v, want ErrPanicked", err)
	}
	if n := p.Metrics().JobsPanicked.Load(); n != 1 {
		t.Errorf("panics = %d", n)
	}
	// The pool must still work afterwards.
	p.runFn = nil
	if _, err := p.Do(context.Background(), smallEval(2)); err != nil {
		t.Fatalf("pool dead after panic: %v", err)
	}
}

func TestPoolTimesOutSlowJobs(t *testing.T) {
	p := NewPool(Options{Workers: 1, JobTimeout: 30 * time.Millisecond, MaxAttempts: 1})
	p.runFn = func(ctx context.Context, c Spec, _ int) (*Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	_, err := p.Do(context.Background(), smallEval(1))
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if n := p.Metrics().JobsTimedOut.Load(); n != 1 {
		t.Errorf("timeouts = %d", n)
	}
	j, ok := p.Lookup(smallEval(1).Hash())
	if !ok {
		t.Fatal("timed-out job missing from registry")
	}
	if st := j.Status(); st.State != StateFailed || st.Error == "" {
		t.Errorf("status = %+v", st)
	}
}

func TestPoolRegistryTracksJobs(t *testing.T) {
	p := NewPool(Options{Workers: 2})
	res, err := p.Do(context.Background(), smallEval(1))
	if err != nil {
		t.Fatal(err)
	}
	j, ok := p.Lookup(res.ID)
	if !ok {
		t.Fatal("job not in registry")
	}
	st := j.Status()
	if st.State != StateDone || st.Result == nil || st.Kind != KindEvaluate {
		t.Errorf("status = %+v", st)
	}
	if st.ElapsedMS <= 0 {
		t.Errorf("elapsed = %v", st.ElapsedMS)
	}
}

func TestPoolRejectsInvalidSpec(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	if _, err := p.Do(context.Background(), Spec{Kind: "bogus"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if n := p.Metrics().JobsStarted.Load(); n != 0 {
		t.Errorf("invalid spec started a job: %d", n)
	}
}

func TestPoolRegistryEviction(t *testing.T) {
	p := NewPool(Options{Workers: 1, RegistryLimit: 2, CacheEntries: -1})
	p.runFn = func(ctx context.Context, c Spec, _ int) (*Result, error) {
		return &Result{ID: c.Hash(), Kind: c.Kind, Spec: c}, nil
	}
	ids := make([]string, 4)
	for i := range ids {
		res, err := p.Do(context.Background(), smallEval(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = res.ID
	}
	if _, ok := p.Lookup(ids[0]); ok {
		t.Error("oldest job should have been evicted")
	}
	if _, ok := p.Lookup(ids[3]); !ok {
		t.Error("newest job missing")
	}
}

// TestAbandonedAttemptsBounded: under a persistent wedge, watchdog
// retries stop once more than Workers abandoned goroutines are parked —
// the job fails fast instead of stacking concurrent evaluations without
// bound — and the AbandonedInFlight gauge drains once the wedge lets go.
func TestAbandonedAttemptsBounded(t *testing.T) {
	block := make(chan struct{})
	p := NewPool(Options{
		Workers: 1, MaxAttempts: 5,
		JobTimeout:    10 * time.Millisecond,
		WatchdogGrace: 10 * time.Millisecond,
		RetryBase:     time.Millisecond, RetryMax: time.Millisecond,
	})
	p.runFn = func(ctx context.Context, c Spec, _ int) (*Result, error) {
		<-block // wedged: ignores cancellation entirely
		return nil, errors.New("wedge released")
	}
	_, err := p.Do(context.Background(), smallEval(1))
	if err == nil || !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	// Workers=1 admits one parked goroutine: the first abandon retries,
	// the second fails fast rather than parking a third.
	if got := p.Metrics().JobsAbandoned.Load(); got != 2 {
		t.Errorf("abandoned = %d, want 2 (one retry, then fail-fast)", got)
	}
	if got := p.Metrics().JobsRetried.Load(); got != 1 {
		t.Errorf("retried = %d, want 1", got)
	}
	if got := p.AbandonedInFlight(); got != 2 {
		t.Errorf("abandoned in flight = %d, want 2", got)
	}

	// Releasing the wedge lets the parked goroutines finish and drain
	// the gauge back to zero.
	close(block)
	deadline := time.Now().Add(2 * time.Second)
	for p.AbandonedInFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("abandoned in flight stuck at %d", p.AbandonedInFlight())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
