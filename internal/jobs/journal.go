package jobs

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// journalFile is the segment name inside the journal directory.
const journalFile = "journal.jsonl"

// JournalRecord is one line of the append-only job journal: a write-ahead
// log of accepted and finished jobs. "accept" records carry the full
// canonical spec and are fsynced before the job runs, so a crash between
// accept and done leaves enough on disk to re-run the job; "done"
// records carry the full result, so replay re-warms the cache without
// recomputing anything; "fail" records close out jobs whose failure was
// terminal (spec errors, exhausted retries) so replay does not chase
// them forever. "stored" records are slim terminal pointers written
// when the result body is durable in the CAS store instead: the journal
// then carries only the content address, and replay resolves the body
// from the store's own index.
type JournalRecord struct {
	Op     string  `json:"op"` // accept | done | fail | stored
	ID     string  `json:"id"`
	Spec   *Spec   `json:"spec,omitempty"`
	Result *Result `json:"result,omitempty"`
	Error  string  `json:"error,omitempty"`
	Class  Class   `json:"class,omitempty"`
	T      string  `json:"t,omitempty"` // RFC3339Nano append time
}

// Journal is the crash-safe job log. All methods are safe for concurrent
// use; a write failure marks the journal unhealthy (visible to /healthz)
// but never blocks job execution — losing durability degrades the
// service, it does not stop it.
type Journal struct {
	dir  string
	path string

	mu      sync.Mutex
	f       *os.File
	healthy atomic.Bool
}

// OpenJournal opens (creating if needed) the journal in dir.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: journal open: %w", err)
	}
	j := &Journal{dir: dir, path: path, f: f}
	j.healthy.Store(true)
	return j, nil
}

// Dir returns the journal directory.
func (j *Journal) Dir() string { return j.dir }

// Healthy reports whether the last journal write succeeded. The HTTP
// layer degrades /healthz to 503 when this goes false.
func (j *Journal) Healthy() bool {
	if j == nil {
		return true
	}
	return j.healthy.Load()
}

// Accept journals a job acceptance and fsyncs: after Accept returns nil
// the job survives a process kill.
func (j *Journal) Accept(id string, spec Spec) error {
	return j.append(JournalRecord{Op: "accept", ID: id, Spec: &spec}, true)
}

// Done journals a completed job with its full result, fsynced, so a
// restart can re-warm the cache entry instead of recomputing.
func (j *Journal) Done(id string, res *Result) error {
	return j.append(JournalRecord{Op: "done", ID: id, Result: res}, true)
}

// Stored journals that a job's result is durable in the CAS store — a
// pointer, not a body. Unsynced by design: the CAS record it references
// already hit disk (the store group-commits its fsyncs), and recovery
// consults the store before re-running any pending accept, so a lost
// stored line is re-derived from the store index, never recomputed.
func (j *Journal) Stored(id string) error {
	return j.append(JournalRecord{Op: "stored", ID: id}, false)
}

// Fail journals a terminal failure so replay does not resubmit a job
// that can never succeed (spec errors) or already burned its retries.
func (j *Journal) Fail(id string, msg string, class Class) error {
	return j.append(JournalRecord{Op: "fail", ID: id, Error: msg, Class: class}, true)
}

// append writes one record line; sync forces it to disk.
func (j *Journal) append(rec JournalRecord, sync bool) error {
	if j == nil {
		return nil
	}
	rec.T = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(rec)
	if err != nil {
		j.healthy.Store(false)
		return fmt.Errorf("jobs: journal marshal: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		j.healthy.Store(false)
		return errors.New("jobs: journal closed")
	}
	if _, err := j.f.Write(line); err != nil {
		j.healthy.Store(false)
		return fmt.Errorf("jobs: journal write: %w", err)
	}
	if sync {
		if err := j.f.Sync(); err != nil {
			j.healthy.Store(false)
			return fmt.Errorf("jobs: journal sync: %w", err)
		}
	}
	j.healthy.Store(true)
	return nil
}

// Sync flushes the journal to disk.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Appends after Close fail and mark
// the journal unhealthy.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// MaxReplayGenerations bounds boot-time re-executions of one pending
// job. Every replay re-journals the job's accept record, so the accept
// count is a crash-generation marker: a job whose accept count keeps
// growing without a terminal record is taking the process down on every
// boot (OOM, runtime fatal — outside the panic fence). Rather than
// crash-loop the daemon forever, recovery journals such a job as a
// terminal failure and moves on.
const MaxReplayGenerations = 3

// Replayed is what a journal replay recovered.
type Replayed struct {
	// Pending are accepted jobs with no terminal record — work a crash
	// interrupted, in acceptance order.
	Pending []Spec
	// PendingAccepts holds, parallel to Pending, how many accept records
	// the journal carries for each pending job — one per boot that tried
	// it, so accepts-1 is the number of replays already attempted.
	PendingAccepts []int
	// PendingIDs holds, parallel to Pending, the journaled job IDs
	// (canonical spec hashes), so callers need not re-derive them.
	PendingIDs []string
	// Completed are finished results, newest record winning, in
	// completion order; replaying them re-warms the cache.
	Completed []*Result
	// StoredIDs are jobs whose terminal record is a slim CAS pointer:
	// the result body lives in the store, keyed by this content address.
	StoredIDs []string
	// Failed counts jobs whose terminal record was a failure.
	Failed int
	// Truncated reports that the final line was a partial write (the
	// crash landed mid-append) and was ignored.
	Truncated bool
}

// ReplayJournal reads dir's journal and classifies every job it
// mentions. It tolerates a truncated final line — the signature of a
// crash during append — and an absent journal (nothing to recover).
func ReplayJournal(dir string) (Replayed, error) {
	var rep Replayed
	f, err := os.Open(filepath.Join(dir, journalFile))
	if errors.Is(err, os.ErrNotExist) {
		return rep, nil
	}
	if err != nil {
		return rep, fmt.Errorf("jobs: journal replay: %w", err)
	}
	defer f.Close()

	type entry struct {
		spec     *Spec
		result   *Result
		failed   bool
		stored   bool
		order    int
		terminal bool
		accepts  int
	}
	byID := map[string]*entry{}
	var order []string

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn line can only be the last one the process wrote;
			// anything after it would have failed the same way, so stop
			// here and report the truncation.
			rep.Truncated = true
			break
		}
		e, ok := byID[rec.ID]
		if !ok {
			e = &entry{order: len(order)}
			byID[rec.ID] = e
			order = append(order, rec.ID)
		}
		switch rec.Op {
		case "accept":
			e.spec = rec.Spec
			e.accepts++
		case "done":
			e.result = rec.Result
			e.failed = false
			e.terminal = true
		case "stored":
			e.stored = true
			e.failed = false
			e.terminal = true
		case "fail":
			e.failed = true
			e.terminal = true
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			rep.Truncated = true
		} else if !errors.Is(err, io.EOF) {
			return rep, fmt.Errorf("jobs: journal replay: %w", err)
		}
	}

	for _, id := range order {
		e := byID[id]
		switch {
		case e.terminal && e.failed:
			rep.Failed++
		case e.terminal && e.result != nil:
			rep.Completed = append(rep.Completed, e.result)
		case e.stored:
			rep.StoredIDs = append(rep.StoredIDs, id)
		case e.spec != nil:
			rep.Pending = append(rep.Pending, *e.spec)
			rep.PendingAccepts = append(rep.PendingAccepts, e.accepts)
			rep.PendingIDs = append(rep.PendingIDs, id)
		}
	}
	return rep, nil
}

// FindResult scans the journal for the completed result with the given
// content address — the durable backstop behind GET /v1/results/{id}
// when the in-memory cache has evicted (or never held) the entry. The
// newest done record wins, matching replay semantics. A missing or
// unreadable journal simply reports not-found: result lookup is a
// best-effort read path, never an error source.
func (j *Journal) FindResult(id string) (*Result, bool) {
	if j == nil {
		return nil, false
	}
	rep, err := ReplayJournal(j.dir)
	if err != nil {
		return nil, false
	}
	for _, res := range rep.Completed {
		if res != nil && res.ID == id {
			return res, true
		}
	}
	return nil, false
}

// Compact atomically rewrites the journal to hold only done records for
// the given results plus slim stored pointers for results durable in
// the CAS store, dropping the acceptance/failure history. Called after
// a successful replay so the journal does not grow without bound across
// restarts — with a store attached, the rewrite is mostly pointers.
func (j *Journal) Compact(completed []*Result, storedIDs []string) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	now := time.Now().UTC().Format(time.RFC3339Nano)
	lines, err := doneLines(completed, now)
	if err != nil {
		return err
	}
	stored, err := storedLines(storedIDs, now)
	if err != nil {
		return err
	}
	return j.rewriteLocked(append(lines, stored...))
}

// storedLines marshals slim stored-pointer records.
func storedLines(ids []string, now string) ([][]byte, error) {
	lines := make([][]byte, 0, len(ids))
	for _, id := range ids {
		line, err := json.Marshal(JournalRecord{Op: "stored", ID: id, T: now})
		if err != nil {
			return nil, fmt.Errorf("jobs: journal compact: %w", err)
		}
		lines = append(lines, line)
	}
	return lines, nil
}

// doneLines marshals done records for the completed results.
func doneLines(completed []*Result, now string) ([][]byte, error) {
	lines := make([][]byte, 0, len(completed))
	for _, res := range completed {
		line, err := json.Marshal(JournalRecord{Op: "done", ID: res.ID, Result: res, T: now})
		if err != nil {
			return nil, fmt.Errorf("jobs: journal compact: %w", err)
		}
		lines = append(lines, line)
	}
	return lines, nil
}

// rewriteLocked atomically replaces the journal with the given record
// lines (tmp file + fsync + rename) and reopens the append handle.
// Caller holds j.mu.
func (j *Journal) rewriteLocked(lines [][]byte) error {
	tmp, err := os.CreateTemp(j.dir, journalFile+".tmp*")
	if err != nil {
		return fmt.Errorf("jobs: journal compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for _, line := range lines {
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: journal compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobs: journal compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobs: journal compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("jobs: journal compact: %w", err)
	}
	if j.f != nil {
		j.f.Close()
	}
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.f = nil
		j.healthy.Store(false)
		return fmt.Errorf("jobs: journal reopen: %w", err)
	}
	j.f = f
	j.healthy.Store(true)
	return nil
}

// CompactStats summarizes one on-demand compaction.
type CompactStats struct {
	// BeforeBytes/AfterBytes are the journal file sizes around the
	// rewrite.
	BeforeBytes int64
	AfterBytes  int64
	// Completed counts done records kept (one per completed job, the
	// newest result winning).
	Completed int
	// StoredKept counts slim CAS-pointer records carried through.
	StoredKept int
	// PendingKept counts in-flight jobs whose accept records were
	// preserved — compacting a live journal must not orphan work a
	// crash would need to recover.
	PendingKept int
	// DroppedFailed counts terminally failed jobs whose history was
	// discarded.
	DroppedFailed int
}

// CompactNow compacts the live journal on demand (the SIGHUP path):
// duplicate accepts, superseded done records, and terminal-failure
// history collapse to one done record per completed job, while pending
// jobs keep their accept records — repeated per replay generation, so
// the poison-job crash-loop marker survives compaction. Appends are
// blocked for the duration, giving the rewrite a consistent snapshot.
func (j *Journal) CompactNow() (CompactStats, error) {
	if j == nil {
		return CompactStats{}, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var st CompactStats
	if fi, err := os.Stat(j.path); err == nil {
		st.BeforeBytes = fi.Size()
	}
	rep, err := ReplayJournal(j.dir)
	if err != nil {
		return st, err
	}
	now := time.Now().UTC().Format(time.RFC3339Nano)
	lines, err := doneLines(rep.Completed, now)
	if err != nil {
		return st, err
	}
	stored, err := storedLines(rep.StoredIDs, now)
	if err != nil {
		return st, err
	}
	lines = append(lines, stored...)
	for i := range rep.Pending {
		spec := rep.Pending[i]
		line, err := json.Marshal(JournalRecord{Op: "accept", ID: rep.PendingIDs[i], Spec: &spec, T: now})
		if err != nil {
			return st, fmt.Errorf("jobs: journal compact: %w", err)
		}
		for n := 0; n < rep.PendingAccepts[i]; n++ {
			lines = append(lines, line)
		}
	}
	st.Completed = len(rep.Completed)
	st.StoredKept = len(rep.StoredIDs)
	st.PendingKept = len(rep.Pending)
	st.DroppedFailed = rep.Failed
	if err := j.rewriteLocked(lines); err != nil {
		return st, err
	}
	if fi, err := os.Stat(j.path); err == nil {
		st.AfterBytes = fi.Size()
	}
	return st, nil
}

// RecoverStats summarizes a boot-time journal recovery.
type RecoverStats struct {
	// WarmedCache counts completed results replayed into the cache.
	WarmedCache int
	// WarmedStore counts results resolved from the CAS store during
	// recovery — stored pointers re-warmed and pending jobs whose
	// bodies were already durable on disk (no recompute needed).
	WarmedStore int
	// Resubmitted counts pending jobs re-run through the pool.
	Resubmitted int
	// FailedReplays counts resubmitted jobs that failed again.
	FailedReplays int
	// SkippedTerminal counts journal jobs with terminal failure records
	// (not re-run).
	SkippedTerminal int
	// ReplaysExhausted counts pending jobs skipped because they had
	// already been replayed MaxReplayGenerations times — the poison-job
	// signature of a boot-time crash loop. They are journaled as
	// terminal failures, not re-run.
	ReplaysExhausted int
	// Truncated reports a torn final journal line was discarded.
	Truncated bool
}

// RecoverFromJournal replays dir's journal into the pool: completed
// results re-warm the result cache (no recomputation), pending jobs —
// accepted before a crash but never finished — are re-executed through
// the pool, and the journal is compacted to the surviving state.
// Results recovered this way are exact: the cache entry a replay warms
// is byte-for-byte the entry the original run produced, and re-executed
// jobs recompute from the same canonical spec.
func RecoverFromJournal(ctx context.Context, p *Pool, dir string) (RecoverStats, error) {
	var stats RecoverStats
	rep, err := ReplayJournal(dir)
	if err != nil {
		return stats, err
	}
	stats.Truncated = rep.Truncated
	stats.SkippedTerminal = rep.Failed
	for _, res := range rep.Completed {
		p.Cache().Put(res.ID, res)
		p.metrics.JournalReplayedDone.Add(1)
		stats.WarmedCache++
	}
	// Stored pointers resolve through the CAS index — the body never
	// left disk, so warming is a read, not a recompute. A pointer whose
	// body the store no longer holds (budget-evicted, dropped corrupt)
	// is silently released: the job recomputes on next demand.
	for _, id := range rep.StoredIDs {
		if res, ok := p.storeGet(id); ok {
			p.Cache().Put(id, res)
			p.metrics.JournalReplayedDone.Add(1)
			stats.WarmedStore++
		}
	}
	for i, spec := range rep.Pending {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		// A crash can land between the CAS fsync and the stored journal
		// line: the accept looks pending but the body is already
		// durable. Check the store before re-running.
		if res, ok := p.storeGet(spec.Hash()); ok {
			p.Cache().Put(res.ID, res)
			p.journalStored(res.ID)
			p.metrics.JournalReplayedDone.Add(1)
			stats.WarmedStore++
			continue
		}
		// A pending job whose accept count already shows
		// MaxReplayGenerations replays is crash-looping the boot path:
		// journal it terminal (fsynced before any re-run, so the verdict
		// survives yet another crash) and skip it.
		if rep.PendingAccepts[i]-1 >= MaxReplayGenerations {
			p.metrics.JournalReplaysExhausted.Add(1)
			stats.ReplaysExhausted++
			p.journalFail(spec.Hash(), fmt.Errorf(
				"jobs: replay budget exhausted after %d generations (poison job)",
				rep.PendingAccepts[i]-1), ClassFatal)
			continue
		}
		p.metrics.JournalReplayedPending.Add(1)
		stats.Resubmitted++
		if _, err := p.Do(ctx, spec); err != nil {
			stats.FailedReplays++
		}
	}
	// Compact the journal to the surviving state: the replayed results
	// plus whatever the resubmissions just completed, dropping the
	// pre-crash accept/fail history so the file does not grow without
	// bound across restarts. With a store attached, every survivor is
	// migrated into the CAS and the journal keeps only slim pointers —
	// the write-ahead log truncates to the store index.
	if j := p.opt.Journal; j != nil && j.Dir() == dir {
		var keep []*Result
		var storedIDs []string
		seen := map[string]bool{}
		add := func(res *Result) {
			if res == nil || res.ID == "" || seen[res.ID] {
				return
			}
			seen[res.ID] = true
			if p.store != nil {
				if err := p.storePut(res); err == nil {
					storedIDs = append(storedIDs, res.ID)
					return
				}
				p.metrics.CASErrors.Add(1)
			}
			keep = append(keep, res)
		}
		for _, res := range rep.Completed {
			add(res)
		}
		for _, spec := range rep.Pending {
			if res, ok := p.Cache().Get(spec.Hash()); ok {
				add(res)
			}
		}
		for _, id := range rep.StoredIDs {
			if !seen[id] && p.store != nil && p.store.Has(id) {
				seen[id] = true
				storedIDs = append(storedIDs, id)
			}
		}
		if err := j.Compact(keep, storedIDs); err != nil {
			return stats, err
		}
	}
	return stats, nil
}
