package jobs

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/netlist"
)

// designBuilder maps a canonical DesignSpec onto the internal/circuits
// generators. Each Build closure constructs a fresh netlist from the
// methodology's library, exactly as synthesis to that library would.
func designBuilder(d DesignSpec) (core.Design, error) {
	w, depth := d.Width, d.Depth
	wrap := func(name string, build func(lib *cell.Library) (*netlist.Netlist, error)) core.Design {
		return core.Design{Name: name, Build: build}
	}
	switch d.Name {
	case "datapath":
		return core.DatapathDesign(w, depth), nil
	case "chain":
		return wrap(fmt.Sprintf("chain%dx%d", w, depth), func(lib *cell.Library) (*netlist.Netlist, error) {
			return circuits.DatapathChain(lib, w, depth)
		}), nil
	case "alu":
		return core.ALUDesign(w), nil
	case "cla":
		return wrap(fmt.Sprintf("cla%d", w), func(lib *cell.Library) (*netlist.Netlist, error) {
			a, err := circuits.CarryLookahead(lib, w)
			if err != nil {
				return nil, err
			}
			return a.N, nil
		}), nil
	case "rca":
		return wrap(fmt.Sprintf("rca%d", w), func(lib *cell.Library) (*netlist.Netlist, error) {
			a, err := circuits.RippleCarry(lib, w)
			if err != nil {
				return nil, err
			}
			return a.N, nil
		}), nil
	case "csel":
		return wrap(fmt.Sprintf("csel%d", w), func(lib *cell.Library) (*netlist.Netlist, error) {
			a, err := circuits.CarrySelect(lib, w, 4)
			if err != nil {
				return nil, err
			}
			return a.N, nil
		}), nil
	case "ks":
		return wrap(fmt.Sprintf("ks%d", w), func(lib *cell.Library) (*netlist.Netlist, error) {
			a, err := circuits.KoggeStone(lib, w)
			if err != nil {
				return nil, err
			}
			return a.N, nil
		}), nil
	case "mult":
		return wrap(fmt.Sprintf("mult%d", w), func(lib *cell.Library) (*netlist.Netlist, error) {
			m, err := circuits.ArrayMultiplier(lib, w)
			if err != nil {
				return nil, err
			}
			return m.N, nil
		}), nil
	case "wallace":
		return wrap(fmt.Sprintf("wallace%d", w), func(lib *cell.Library) (*netlist.Netlist, error) {
			m, err := circuits.WallaceMultiplier(lib, w)
			if err != nil {
				return nil, err
			}
			return m.N, nil
		}), nil
	case "shifter":
		return wrap(fmt.Sprintf("shifter%d", w), func(lib *cell.Library) (*netlist.Netlist, error) {
			s, err := circuits.BarrelShifter(lib, w)
			if err != nil {
				return nil, err
			}
			return s.N, nil
		}), nil
	}
	return core.Design{}, fmt.Errorf("%w: unknown design %q", ErrSpec, d.Name)
}
