package jobs

// Fuzz target for spec canonicalization — the trust boundary every gapd
// submission, journal replay, and CLI flag set passes through. Whatever
// JSON arrives, Canon must either reject it with an error or produce a
// fixed point: canonicalizing a canonical spec changes nothing, and the
// content hash (the job identity, the cache key, and the journal key)
// is stable across the round trip through JSON — the property journal
// recovery relies on to match replayed records to resubmitted jobs.
//
// Run with: go test ./internal/jobs/ -run=^$ -fuzz=FuzzJobSpecCanonical

import (
	"encoding/json"
	"strings"
	"testing"
)

func FuzzJobSpecCanonical(f *testing.F) {
	// Seeds: the spec shapes the service and CLIs actually submit, plus
	// boundary and garbage cases.
	for _, s := range []string{
		`{"kind":"evaluate","design":{"name":"datapath","width":8,"depth":2},"methodology":{"base":"typical"},"seed":3}`,
		`{"kind":"ladder","design":{"name":"datapath","width":16,"depth":4},"seed":1}`,
		`{"kind":"sweep","design":{"name":"datapath"},"methodology":{"base":"best-practice"},"max_stages":6,"workload":"integer"}`,
		`{"kind":"evaluate","design":{"name":"cla"}}`,
		`{"kind":"EVALUATE","design":{"name":" DataPath "},"methodology":{"base":" Typical-ASIC "}}`,
		`{"kind":"evaluate","design":{"name":"datapath","width":64,"depth":16}}`,
		`{"kind":"evaluate","design":{"name":"datapath","width":-1}}`,
		`{"kind":"evaluate","design":{"name":"datapath"},"methodology":{"base":"best-practice","domino_frac":0.5}}`,
		`{"kind":"evaluate","design":{"name":"datapath"},"methodology":{"stages":-3,"skew_frac":2.5}}`,
		`{"kind":"sweep","design":{"name":"datapath"},"max_stages":-1,"workload":"nope"}`,
		`{"kind":"procvar"}`,
		`{"seed":9223372036854775807}`,
		`{}`,
		`null`,
	} {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, raw string) {
		var s Spec
		if err := json.Unmarshal([]byte(raw), &s); err != nil {
			return
		}
		c, err := s.Canon()
		if err != nil {
			return // rejection is fine; panicking is the bug
		}

		// Canon is a fixed point: canonicalizing again changes nothing.
		c2, err := c.Canon()
		if err != nil {
			t.Fatalf("canonical spec rejected on second pass: %v\nspec: %+v", err, c)
		}
		h, h2 := c.Hash(), c2.Hash()
		if h != h2 {
			t.Fatalf("hash not stable under re-canonicalization: %s vs %s", h, h2)
		}
		if len(h) != 64 || strings.Trim(h, "0123456789abcdef") != "" {
			t.Fatalf("hash %q is not 64 lowercase hex chars", h)
		}

		// The identity survives the JSON round trip the journal and the
		// HTTP API put every spec through.
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("canonical spec failed to marshal: %v", err)
		}
		var back Spec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("canonical spec failed to unmarshal: %v", err)
		}
		if back.Hash() != h {
			t.Fatalf("hash changed across JSON round trip: %s vs %s", back.Hash(), h)
		}
	})
}
