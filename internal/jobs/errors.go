package jobs

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// The failure taxonomy. Every job failure the pool reports wraps exactly
// one of these markers (or ErrSpec from run.go), so callers can switch on
// errors.Is instead of matching strings, and the retry policy and HTTP
// status mapping stay mechanical.
var (
	// ErrTransient marks failures worth retrying: flaky dependencies,
	// injected chaos, cancellation storms that were not the caller's.
	ErrTransient = errors.New("jobs: transient failure")
	// ErrPanicked marks a job attempt that panicked and was fenced by
	// the pool. Retryable: the next attempt runs on fresh state.
	ErrPanicked = errors.New("jobs: job panicked")
	// ErrWatchdog marks an attempt the watchdog reclaimed because the
	// evaluation ignored its deadline (a wedged worker). Retryable.
	ErrWatchdog = errors.New("jobs: watchdog killed job")
	// ErrBreakerOpen reports that the job kind's circuit breaker is
	// open and the job was rejected without running. Not retryable
	// here; the client should back off and retry later (HTTP 503).
	ErrBreakerOpen = errors.New("jobs: circuit breaker open")
	// ErrKilled reports a simulated process kill from the fault
	// injector: the job was abandoned with no terminal journal record,
	// exactly as if gapd had died mid-job. Recovery tests replay the
	// journal to pick these up.
	ErrKilled = errors.New("jobs: worker killed")
	// ErrPeerUnavailable reports that a cluster peer could not answer a
	// forwarded request (transport failure, shedding, breaker open, or
	// peer-side timeout). Transient: the forwarder falls down the
	// rendezvous order and ultimately computes locally, so the cluster
	// loses throughput, never availability.
	ErrPeerUnavailable = errors.New("jobs: peer unavailable")
	// ErrBadReplica reports that a replicated result failed its
	// integrity check on arrival: the payload's canonical spec does not
	// hash to the claimed content address, so storing it would poison
	// the cache with a wrong answer under a right key. Terminal for the
	// replication write — the sender should recompute or re-send, never
	// force the store.
	ErrBadReplica = errors.New("jobs: replica failed integrity check")
)

// Class buckets a job failure for the retry policy and the journal.
type Class string

// Failure classes.
const (
	// ClassTransient failures are retried with backoff up to
	// Options.MaxAttempts.
	ClassTransient Class = "transient"
	// ClassSpec failures are the client's fault; retrying cannot help.
	ClassSpec Class = "spec"
	// ClassCanceled failures mean the caller gave up; the work is
	// abandoned, not retried.
	ClassCanceled Class = "canceled"
	// ClassFatal failures are internal errors with no retry story.
	ClassFatal Class = "fatal"
)

// Classify buckets err. ctx is the job's outer context: an injected
// context.Canceled while the caller is still waiting is a cancellation
// storm (transient), whereas context.Canceled with ctx dead is the
// caller hanging up (canceled). The same split applies to deadlines —
// DeadlineExceeded with the caller's own deadline expired is the caller
// hanging up, not an attempt timeout.
func Classify(ctx context.Context, err error) Class {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrSpec):
		return ClassSpec
	case errors.Is(err, ErrBreakerOpen), errors.Is(err, ErrKilled):
		return ClassFatal
	case errors.Is(err, ErrTransient),
		errors.Is(err, ErrPanicked),
		errors.Is(err, ErrWatchdog),
		errors.Is(err, ErrPeerUnavailable),
		errors.Is(err, faultinject.ErrInjected):
		return ClassTransient
	case errors.Is(err, context.DeadlineExceeded):
		// The attempt deadline (JobTimeout) is the pool's own and worth
		// a retry; the caller's outer deadline means the caller gave up
		// — an impatient client must not feed the kind's breaker.
		if ctx != nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return ClassCanceled
		}
		return ClassTransient
	case errors.Is(err, context.Canceled):
		if ctx != nil && ctx.Err() == nil {
			return ClassTransient
		}
		return ClassCanceled
	default:
		return ClassFatal
	}
}

// Retryable reports whether the class is worth another attempt.
func (c Class) Retryable() bool { return c == ClassTransient }

// Backoff is the retry schedule for transient failures: exponential
// growth from Base capped at Max, with up to Jitter fraction of random
// spread so retry storms decorrelate.
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Jitter float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff builds a schedule, applying defaults (base 50ms, max 2s,
// jitter 0.25; pass a negative jitter to disable it). seed fixes the
// jitter stream for reproducible tests.
func NewBackoff(base, max time.Duration, jitter float64, seed int64) *Backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if jitter == 0 {
		jitter = 0.25
	}
	if jitter < 0 || jitter > 1 {
		jitter = 0
	}
	return &Backoff{Base: base, Max: max, Jitter: jitter, rng: rand.New(rand.NewSource(seed))}
}

// Delay returns the wait before retry attempt `attempt` (0 = first
// retry): Base<<attempt capped at Max, minus up to Jitter of itself.
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.Base
	for i := 0; i < attempt && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	if b.Jitter > 0 {
		b.mu.Lock()
		f := 1 - b.Jitter*b.rng.Float64()
		b.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// Sleep waits Delay(attempt) or until ctx is done, reporting ctx's
// error if the caller hung up mid-backoff.
func (b *Backoff) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(b.Delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
