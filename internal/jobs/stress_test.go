package jobs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestPoolStressMixedJobs drives >= 32 concurrent mixed evaluate / ladder
// / sweep jobs through one pool. Run under -race this is the proof that
// the evaluation flow (internal/core, internal/cell, and everything
// below) shares no mutable state between concurrent jobs. Specs repeat on
// purpose so cache hits and in-flight joins race against fresh runs.
func TestPoolStressMixedJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	p := NewPool(Options{Workers: 8, Parallelism: 2, CacheEntries: 64})

	specs := make([]Spec, 0, 48)
	for i := 0; i < 48; i++ {
		switch i % 6 {
		case 0, 1:
			specs = append(specs, Spec{
				Kind:        KindEvaluate,
				Design:      DesignSpec{Name: "datapath", Width: 8, Depth: 2},
				Methodology: MethSpec{Base: "typical"},
				Seed:        int64(i % 4),
			})
		case 2:
			specs = append(specs, Spec{
				Kind:        KindEvaluate,
				Design:      DesignSpec{Name: "cla", Width: 16},
				Methodology: MethSpec{Base: "custom"},
				Seed:        int64(i % 3),
			})
		case 3:
			specs = append(specs, Spec{
				Kind:   KindLadder,
				Design: DesignSpec{Name: "datapath", Width: 8, Depth: 2},
				Seed:   int64(i % 2),
			})
		case 4:
			specs = append(specs, Spec{
				Kind:      KindSweep,
				Design:    DesignSpec{Name: "datapath", Width: 8, Depth: 2},
				MaxStages: 4,
				Workload:  "integer",
				Seed:      int64(i % 2),
			})
		case 5:
			specs = append(specs, Spec{
				Kind:      KindSweep,
				Design:    DesignSpec{Name: "rca", Width: 16},
				MaxStages: 3,
				Workload:  "dsp",
				Seed:      1,
			})
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	results := make([]*Result, len(specs))
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s Spec) {
			defer wg.Done()
			results[i], errs[i] = p.Do(context.Background(), s)
		}(i, s)
	}
	wg.Wait()

	byID := make(map[string]*Result)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d (%s %s): %v", i, specs[i].Kind, specs[i].Design.Name, err)
		}
		r := results[i]
		if r == nil {
			t.Fatalf("job %d returned nil result", i)
		}
		switch r.Kind {
		case KindEvaluate:
			if r.Evaluation == nil || r.Evaluation.ShippedMHz <= 0 {
				t.Fatalf("job %d: bad evaluation %+v", i, r.Evaluation)
			}
		case KindLadder:
			if r.Ladder == nil || len(r.Ladder.Steps) != 5 {
				t.Fatalf("job %d: bad ladder", i)
			}
		case KindSweep:
			if len(r.Sweep) == 0 {
				t.Fatalf("job %d: empty sweep", i)
			}
		}
		// Identical specs must agree exactly however they were served
		// (fresh run, cache hit, or in-flight join).
		if prev, ok := byID[r.ID]; ok {
			if fmt.Sprintf("%+v", summarize(prev)) != fmt.Sprintf("%+v", summarize(r)) {
				t.Fatalf("job %d: divergent result for id %s", i, r.ID[:12])
			}
		} else {
			byID[r.ID] = r
		}
	}

	m := p.Metrics()
	started := m.JobsStarted.Load()
	if started <= 0 || started > int64(len(byID)) {
		t.Errorf("jobs started = %d, distinct specs = %d", started, len(byID))
	}
	if m.JobsFailed.Load() != 0 || m.JobsPanicked.Load() != 0 {
		t.Errorf("failures = %d panics = %d", m.JobsFailed.Load(), m.JobsPanicked.Load())
	}
	if m.CacheHits.Load()+m.CacheMisses.Load() != int64(len(specs)) {
		t.Errorf("cache traffic %d+%d != %d submissions",
			m.CacheHits.Load(), m.CacheMisses.Load(), len(specs))
	}
}

// summarize projects the numeric payload of a result for equality checks,
// ignoring Cached and ElapsedMS which legitimately differ.
func summarize(r *Result) []float64 {
	var out []float64
	if r.Evaluation != nil {
		out = append(out, r.Evaluation.ShippedMHz)
	}
	if r.Ladder != nil {
		out = append(out, r.Ladder.Baseline.ShippedMHz)
		for _, s := range r.Ladder.Steps {
			out = append(out, s.Mult, s.Eval.ShippedMHz)
		}
	}
	for _, pt := range r.Sweep {
		out = append(out, float64(pt.Stages), pt.Eval.ShippedMHz, pt.ThroughputRel)
	}
	return out
}
