package jobs

// The chaos suite: deterministic fault injection at every pool and
// flow-stage seam, proving the acceptance properties of the failure
// layer — no job lost or double-reported, the cache never holds a
// partial result, and ladder/sweep outputs stay byte-identical to the
// serial, fault-free reference. Every test uses a fixed seed matrix
// (chaosSeeds), and the injector's fault schedule is a pure function of
// (seed, job, attempt, stage), so these tests are reproducible and
// non-flaky by construction: `make chaos` runs them under -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// chaosSeeds is the fixed seed matrix the chaos suite runs under.
var chaosSeeds = []int64{1, 7, 42}

// chaosBatch is a mixed workload: cheap evaluates, a factor ladder, and
// a depth sweep, all small enough to run under -race in CI.
func chaosBatch() []Spec {
	specs := []Spec{
		{Kind: KindLadder, Design: DesignSpec{Name: "datapath", Width: 8, Depth: 2}, Seed: 3},
		{Kind: KindSweep, Design: DesignSpec{Name: "datapath", Width: 8, Depth: 2},
			Methodology: MethSpec{Base: "best-practice"}, MaxStages: 3, Workload: "integer", Seed: 3},
	}
	for s := int64(0); s < 4; s++ {
		specs = append(specs, Spec{
			Kind:        KindEvaluate,
			Design:      DesignSpec{Name: "datapath", Width: 8, Depth: 2},
			Methodology: MethSpec{Base: "typical"},
			Seed:        s,
		})
	}
	return specs
}

// normalizedJSON is the byte-exact comparison key for a result: the
// canonical envelope minus run-dependent fields (timing, attempts,
// cache/service annotations).
func normalizedJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := json.Marshal(res.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// serialReference runs every spec serially with no pool, no injection,
// and parallelism 1 — the ground truth the chaos runs must match.
func serialReference(t *testing.T, specs []Spec) map[string][]byte {
	t.Helper()
	ref := make(map[string][]byte, len(specs))
	for _, s := range specs {
		res, err := Run(context.Background(), s, 1)
		if err != nil {
			t.Fatalf("serial reference %s: %v", s.Kind, err)
		}
		ref[res.ID] = normalizedJSON(t, res)
	}
	return ref
}

// TestChaosExactUnderFaults is the acceptance test for the fault layer:
// with errors, panics, latency spikes, and cancellation storms injected
// at every pool and stage seam, every job in a concurrent mixed batch
// must still complete (via retries) with output byte-identical to the
// serial fault-free reference, with no lost or double-reported job and
// no partial cache entry.
func TestChaosExactUnderFaults(t *testing.T) {
	specs := chaosBatch()
	ref := serialReference(t, specs)

	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			in := faultinject.New(faultinject.Plan{
				Seed:        seed,
				ErrorRate:   0.010,
				PanicRate:   0.006,
				LatencyRate: 0.010,
				CancelRate:  0.006,
				Latency:     2 * time.Millisecond,
			})
			p := NewPool(Options{
				Workers:          4,
				Parallelism:      2,
				MaxAttempts:      8,
				RetryBase:        time.Millisecond,
				RetryMax:         4 * time.Millisecond,
				BreakerThreshold: -1, // breaker behaviour has its own tests
				Injector:         in,
			})

			var wg sync.WaitGroup
			results := make([]*Result, len(specs))
			errs := make([]error, len(specs))
			for i, s := range specs {
				wg.Add(1)
				go func(i int, s Spec) {
					defer wg.Done()
					results[i], errs[i] = p.Do(context.Background(), s)
				}(i, s)
			}
			wg.Wait()

			for i, err := range errs {
				if err != nil {
					t.Fatalf("spec %d (%s) failed under chaos: %v", i, specs[i].Kind, err)
				}
				got := normalizedJSON(t, results[i])
				want, ok := ref[results[i].ID]
				if !ok {
					t.Fatalf("spec %d returned unknown id %s", i, results[i].ID)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("spec %d (%s): chaos result differs from serial reference\n got: %s\nwant: %s",
						i, specs[i].Kind, got, want)
				}
			}

			m := p.Metrics()
			// No lost or double-reported jobs: every spec maps to
			// exactly one completion, whatever the retry count was.
			if got := m.JobsCompleted.Load(); got != int64(len(specs)) {
				t.Errorf("completed = %d, want %d", got, len(specs))
			}
			if got := m.JobsFailed.Load(); got != 0 {
				t.Errorf("failed = %d, want 0", got)
			}
			// Every injected fault must be accounted for as a retry —
			// attempts minus retries is one run per job.
			totalAttempts := int64(0)
			for _, res := range results {
				totalAttempts += int64(res.Attempts)
			}
			if totalAttempts != int64(len(specs))+m.JobsRetried.Load() {
				t.Errorf("attempts %d != jobs %d + retries %d",
					totalAttempts, len(specs), m.JobsRetried.Load())
			}
			// The cache holds exactly the completed results, never a
			// partial one: every entry round-trips to the reference.
			if p.Cache().Len() != len(specs) {
				t.Errorf("cache entries = %d, want %d", p.Cache().Len(), len(specs))
			}
			for id, want := range ref {
				res, ok := p.Cache().Get(id)
				if !ok {
					t.Errorf("cache missing %s", id[:12])
					continue
				}
				if !bytes.Equal(normalizedJSON(t, res), want) {
					t.Errorf("cache entry %s differs from reference", id[:12])
				}
			}
		})
	}
}

// TestChaosScheduleDeterministic: the same seed injects the same faults
// regardless of run — the property that makes the suite non-flaky.
func TestChaosScheduleDeterministic(t *testing.T) {
	specs := chaosBatch()
	counts := func() (panics, retries, injected int64) {
		in := faultinject.New(faultinject.Plan{
			Seed:      7,
			ErrorRate: 0.08,
			PanicRate: 0.04,
		})
		p := NewPool(Options{
			Workers: 1, Parallelism: 1, MaxAttempts: 8,
			RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond, RetryJitter: -1,
			BreakerThreshold: -1,
			Injector:         in,
		})
		for _, s := range specs {
			if _, err := p.Do(context.Background(), s); err != nil {
				t.Fatalf("%s: %v", s.Kind, err)
			}
		}
		return p.Metrics().JobsPanicked.Load(), p.Metrics().JobsRetried.Load(),
			in.Errors.Load() + in.Panics.Load()
	}
	p1, r1, i1 := counts()
	p2, r2, i2 := counts()
	if p1 != p2 || r1 != r2 || i1 != i2 {
		t.Errorf("schedules diverged: (%d,%d,%d) vs (%d,%d,%d)", p1, r1, i1, p2, r2, i2)
	}
	if i1 == 0 {
		t.Error("plan injected nothing; rates too low to test anything")
	}
}

// TestChaosFailedJobsNeverCached: when retries are exhausted the job
// fails with a typed error and the cache must hold nothing for it.
func TestChaosFailedJobsNeverCached(t *testing.T) {
	in := faultinject.New(faultinject.Plan{Seed: 1, PanicRate: 1})
	p := NewPool(Options{
		Workers: 2, MaxAttempts: 2,
		RetryBase: time.Millisecond, RetryMax: time.Millisecond,
		BreakerThreshold: -1,
		Injector:         in,
	})
	_, err := p.Do(context.Background(), smallEval(1))
	if err == nil {
		t.Fatal("job with 100% panic injection succeeded")
	}
	if !errors.Is(err, ErrPanicked) {
		t.Errorf("err = %v, want ErrPanicked in chain", err)
	}
	if Classify(context.Background(), err) != ClassTransient {
		t.Errorf("classified %v", Classify(context.Background(), err))
	}
	if p.Cache().Len() != 0 {
		t.Errorf("failed job left %d cache entries", p.Cache().Len())
	}
	if got := p.Metrics().JobsRetried.Load(); got != 1 {
		t.Errorf("retries = %d, want 1 (MaxAttempts 2)", got)
	}
	if got := p.Metrics().JobsFailed.Load(); got != 1 {
		t.Errorf("failed = %d, want exactly one report", got)
	}
}

// TestWatchdogReclaimsWedgedJob: a Stall fault sleeps through
// cancellation; the watchdog must reclaim the slot with a typed,
// transient error instead of wedging the worker forever.
func TestWatchdogReclaimsWedgedJob(t *testing.T) {
	in := faultinject.New(faultinject.Plan{
		Seed: 1, StallRate: 1, Latency: 2 * time.Second, Match: "pool/",
	})
	p := NewPool(Options{
		Workers: 1, MaxAttempts: 1,
		JobTimeout:       20 * time.Millisecond,
		WatchdogGrace:    30 * time.Millisecond,
		BreakerThreshold: -1,
		Injector:         in,
	})
	start := time.Now()
	_, err := p.Do(context.Background(), smallEval(1))
	if err == nil || !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("watchdog took %v to reclaim a wedged job", elapsed)
	}
	if got := p.Metrics().JobsAbandoned.Load(); got != 1 {
		t.Errorf("abandoned = %d", got)
	}
	// The worker slot was reclaimed: the pool still runs jobs.
	if _, err := p.Do(context.Background(), smallEval(99)); err == nil {
		t.Log("note: follow-up job also stalled (same injector), as planned")
	}
}

// TestWatchdogErrorRequeues: with retry budget, a watchdog kill requeues
// the attempt and a clean second attempt succeeds.
func TestWatchdogErrorRequeues(t *testing.T) {
	var calls int
	var mu sync.Mutex
	p := NewPool(Options{
		Workers: 1, MaxAttempts: 2,
		JobTimeout:    20 * time.Millisecond,
		WatchdogGrace: 20 * time.Millisecond,
		RetryBase:     time.Millisecond, RetryMax: time.Millisecond,
		BreakerThreshold: -1,
	})
	p.runFn = func(ctx context.Context, c Spec, _ int) (*Result, error) {
		mu.Lock()
		calls++
		wedge := calls == 1
		mu.Unlock()
		if wedge {
			time.Sleep(500 * time.Millisecond) // ignores ctx: wedged
		}
		return &Result{ID: c.Hash(), Kind: c.Kind, Spec: c}, nil
	}
	res, err := p.Do(context.Background(), smallEval(1))
	if err != nil {
		t.Fatalf("requeued job failed: %v", err)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", res.Attempts)
	}
	if got := p.Metrics().JobsAbandoned.Load(); got != 1 {
		t.Errorf("abandoned = %d", got)
	}
}

// TestBreakerTripsPerKind: repeated terminal failures of one kind trip
// that kind's breaker; other kinds keep running; after the cooldown a
// successful probe closes it again.
func TestBreakerTripsPerKind(t *testing.T) {
	var failEvaluate sync.Map
	failEvaluate.Store("on", true)
	p := NewPool(Options{
		Workers: 2, MaxAttempts: 1,
		BreakerThreshold: 3,
		BreakerCooldown:  30 * time.Millisecond,
	})
	p.runFn = func(ctx context.Context, c Spec, _ int) (*Result, error) {
		if on, _ := failEvaluate.Load("on"); on.(bool) && c.Kind == KindEvaluate {
			return nil, fmt.Errorf("%w: backend down", ErrTransient)
		}
		return &Result{ID: c.Hash(), Kind: c.Kind, Spec: c}, nil
	}

	// Three terminal failures trip the evaluate breaker.
	for i := 0; i < 3; i++ {
		if _, err := p.Do(context.Background(), smallEval(int64(i))); err == nil {
			t.Fatal("expected failure")
		}
	}
	if open, kinds := p.BreakerOpen(); !open || len(kinds) != 1 || kinds[0] != KindEvaluate {
		t.Fatalf("breaker open = %v %v, want evaluate open", open, kinds)
	}
	if got := p.Metrics().BreakerTrips.Load(); got != 1 {
		t.Errorf("trips = %d", got)
	}

	// While open: evaluate is rejected without running, other kinds pass.
	_, err := p.Do(context.Background(), smallEval(50))
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v", err)
	}
	if got := p.Metrics().BreakerShortCircuits.Load(); got != 1 {
		t.Errorf("short circuits = %d", got)
	}
	if _, err := p.Do(context.Background(), Spec{
		Kind: KindLadder, Design: DesignSpec{Name: "datapath", Width: 8, Depth: 2},
	}); err != nil {
		t.Fatalf("ladder took evaluate's breaker: %v", err)
	}

	// After the cooldown the half-open probe runs; with the backend
	// healthy again it closes the breaker for everyone.
	failEvaluate.Store("on", false)
	time.Sleep(40 * time.Millisecond)
	if _, err := p.Do(context.Background(), smallEval(60)); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if open, _ := p.BreakerOpen(); open {
		t.Error("breaker still open after successful probe")
	}
	if _, err := p.Do(context.Background(), smallEval(61)); err != nil {
		t.Fatalf("breaker did not close: %v", err)
	}
}

// TestKillAndRestartRecovery is the crash-safety acceptance test: a
// batch is interrupted by injected process kills (jobs journaled as
// accepted, no terminal record — the crash signature), a second pool
// replays the journal, and the recovered results are byte-identical to
// an uninterrupted run with completed work served from the warmed cache
// and only the killed jobs re-executed.
func TestKillAndRestartRecovery(t *testing.T) {
	specs := chaosBatch()
	ref := serialReference(t, specs)

	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			j1, err := OpenJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			in := faultinject.New(faultinject.Plan{
				Seed: seed, KillRate: 0.5, Match: "pool/",
			})
			p1 := NewPool(Options{
				Workers: 2, MaxAttempts: 1, BreakerThreshold: -1,
				Journal: j1, Injector: in,
			})
			killed := 0
			for _, s := range specs {
				if _, err := p1.Do(context.Background(), s); err != nil {
					if !errors.Is(err, ErrKilled) {
						t.Fatalf("unexpected failure: %v", err)
					}
					killed++
				}
			}
			if killed == 0 || killed == len(specs) {
				t.Fatalf("kill schedule degenerate: %d/%d killed (adjust seed matrix)",
					killed, len(specs))
			}
			j1.Close() // the "process" dies

			// Restart: fresh journal handle, fresh pool, replay.
			j2, err := OpenJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			p2 := NewPool(Options{Workers: 2, Journal: j2})
			stats, err := RecoverFromJournal(context.Background(), p2, dir)
			if err != nil {
				t.Fatal(err)
			}
			if stats.WarmedCache != len(specs)-killed {
				t.Errorf("warmed = %d, want %d", stats.WarmedCache, len(specs)-killed)
			}
			if stats.Resubmitted != killed || stats.FailedReplays != 0 {
				t.Errorf("resubmitted = %d (failed %d), want %d",
					stats.Resubmitted, stats.FailedReplays, killed)
			}
			// Only the killed jobs were re-executed; completed work came
			// back through the cache with no duplicate side effects.
			if got := p2.Metrics().JobsStarted.Load(); got != int64(killed) {
				t.Errorf("restart ran %d jobs, want %d", got, killed)
			}
			if got := p2.Metrics().JournalReplayedDone.Load(); got != int64(len(specs)-killed) {
				t.Errorf("replayed_done = %d", got)
			}

			// Every spec now resolves byte-identical to the
			// uninterrupted reference, entirely from the recovered state.
			for i, s := range specs {
				res, err := p2.Do(context.Background(), s)
				if err != nil {
					t.Fatalf("spec %d after recovery: %v", i, err)
				}
				if !res.Cached {
					t.Errorf("spec %d recomputed after recovery", i)
				}
				if !bytes.Equal(normalizedJSON(t, res), ref[res.ID]) {
					t.Errorf("spec %d (%s): recovered result differs from uninterrupted run",
						i, s.Kind)
				}
			}

			// The journal was compacted to the surviving state: replay
			// again shows everything completed, nothing pending.
			rep, err := ReplayJournal(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Pending) != 0 || len(rep.Completed) != len(specs) {
				t.Errorf("post-recovery journal: %d pending, %d completed",
					len(rep.Pending), len(rep.Completed))
			}
		})
	}
}
